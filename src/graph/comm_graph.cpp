#include "graph/comm_graph.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "farm/artifact_cache.h"
#include "support/check.h"
#include "support/prng.h"

namespace omx::graph {

CommGraph::CommGraph(std::vector<std::vector<Vertex>> adjacency) {
  const auto n = static_cast<Vertex>(adjacency.size());
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  for (Vertex v = 0; v < n; ++v) {
    auto& nb = adjacency[v];
    std::sort(nb.begin(), nb.end());
    OMX_REQUIRE(std::adjacent_find(nb.begin(), nb.end()) == nb.end(),
                "duplicate edge in adjacency list");
    for (Vertex u : nb) {
      OMX_REQUIRE(u < n, "neighbor out of range");
      OMX_REQUIRE(u != v, "self-loop in adjacency list");
    }
    offsets_[v + 1] = offsets_[v] + static_cast<std::uint32_t>(nb.size());
    num_edges_ += nb.size();
  }
  flat_.reserve(offsets_[n]);
  for (Vertex v = 0; v < n; ++v) {
    flat_.insert(flat_.end(), adjacency[v].begin(), adjacency[v].end());
  }
  // Symmetry check (binary search per directed edge).
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex u : neighbors(v)) {
      const auto nb = neighbors(u);
      OMX_REQUIRE(std::binary_search(nb.begin(), nb.end(), v),
                  "adjacency is not symmetric");
    }
  }
  num_edges_ /= 2;
}

bool CommGraph::has_edge(Vertex u, Vertex v) const {
  OMX_REQUIRE(u < n() && v < n(), "vertex out of range");
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

CommGraph CommGraph::erdos_renyi(std::uint32_t n, double edge_prob,
                                 std::uint64_t seed) {
  OMX_REQUIRE(edge_prob >= 0.0 && edge_prob <= 1.0,
              "edge probability out of [0,1]");
  Xoshiro256 gen(seed);
  std::vector<std::vector<Vertex>> adj(n);
  // Geometric skipping: expected O(n^2 * p) work instead of O(n^2).
  if (edge_prob > 0.0 && n >= 2) {
    const double log1mp = std::log1p(-edge_prob);
    // Iterate over the upper-triangular pair index space.
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t idx = 0;
    auto advance = [&]() -> bool {
      if (edge_prob >= 1.0) {
        ++idx;
        return idx <= total;
      }
      const double u = std::max(gen.uniform01(), 1e-300);
      const auto skip =
          static_cast<std::uint64_t>(std::floor(std::log(u) / log1mp));
      idx += skip + 1;
      return idx <= total;
    };
    while (advance()) {
      // Map linear index (1-based) to pair (i, j), i < j.
      const std::uint64_t k = idx - 1;
      // Row i satisfies: offset(i) <= k < offset(i+1), offset(i) =
      // i*n - i*(i+1)/2. Solve by binary search for robustness.
      std::uint32_t lo = 0, hi = n - 1;
      auto offset = [&](std::uint64_t i) {
        return i * n - i * (i + 1) / 2;
      };
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo + 1) / 2;
        if (offset(mid) <= k) lo = mid;
        else hi = mid - 1;
      }
      const std::uint32_t i = lo;
      const auto j = static_cast<std::uint32_t>(k - offset(i) + i + 1);
      adj[i].push_back(j);
      adj[j].push_back(i);
    }
  }
  return CommGraph(std::move(adj));
}

CommGraph CommGraph::common_for(std::uint32_t n, std::uint32_t delta) {
  OMX_REQUIRE(n >= 2, "common graph needs n >= 2");
  const double p = std::min(1.0, static_cast<double>(delta) /
                                     static_cast<double>(n - 1));
  // Fixed tag so the graph is a deterministic function of (n, delta) only:
  // this is the "common knowledge" object all processes agree on.
  const std::uint64_t seed = mix64(0x0C0FFEEULL ^ n, delta);
  return erdos_renyi(n, p, seed);
}

namespace {
struct CacheEntry {
  std::once_flag once;
  std::shared_ptr<const CommGraph> graph;
};
std::atomic<std::uint64_t> shared_builds{0};
std::atomic<std::uint64_t> shared_disk_loads{0};

std::string graph_cache_key(std::uint32_t n, std::uint32_t delta) {
  return "graph-n" + std::to_string(n) + "-d" + std::to_string(delta);
}
}  // namespace

std::shared_ptr<const CommGraph> CommGraph::common_for_shared(
    std::uint32_t n, std::uint32_t delta) {
  using Key = std::pair<std::uint32_t, std::uint32_t>;
  static std::mutex mu;
  static std::map<Key, CacheEntry> cache;  // node-stable addresses

  CacheEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu);
    entry = &cache[Key{n, delta}];
  }
  // Build outside the map lock (construction is the expensive part), but
  // exactly once per key: concurrent first touches collapse into one build,
  // the losers block here until the graph is ready.
  std::call_once(entry->once, [&] {
    // Disk layer first: the graph is a pure function of (n, Δ), so any
    // process that points OMX_ARTIFACT_CACHE at a shared directory (the
    // farm does, for all its workers) loads the CSR blob instead of
    // regenerating. A corrupt or unparseable entry falls through to a
    // rebuild — the cache can cost time, never correctness.
    if (auto* disk = farm::ArtifactCache::process_cache()) {
      if (auto blob = disk->get(graph_cache_key(n, delta))) {
        if (auto g = from_csr_blob(blob->bytes()); g && g->n() == n) {
          entry->graph = std::make_shared<const CommGraph>(*std::move(g));
          shared_disk_loads.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
    entry->graph = std::make_shared<const CommGraph>(common_for(n, delta));
    shared_builds.fetch_add(1, std::memory_order_relaxed);
    if (auto* disk = farm::ArtifactCache::process_cache()) {
      const auto blob = entry->graph->to_csr_blob();
      disk->put(graph_cache_key(n, delta), blob);
    }
  });
  return entry->graph;
}

std::uint64_t CommGraph::common_for_shared_builds() {
  return shared_builds.load(std::memory_order_relaxed);
}

std::uint64_t CommGraph::common_for_shared_disk_loads() {
  return shared_disk_loads.load(std::memory_order_relaxed);
}

// --- CSR blob codec (artifact cache payloads) ------------------------------
//
// Layout, all little-endian host order (the cache is a per-machine object,
// not a wire format): u32 n, u32 reserved, u64 num_edges, u32 offsets[n+1],
// u32 flat[offsets[n]].

std::vector<std::uint8_t> CommGraph::to_csr_blob() const {
  const std::uint32_t nn = n();
  const std::uint64_t flat_words = offsets_[nn];
  std::vector<std::uint8_t> out;
  out.reserve(16 + (offsets_.size() + flat_words) * sizeof(std::uint32_t));
  const auto append = [&out](const void* p, std::size_t len) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out.insert(out.end(), b, b + len);
  };
  const std::uint32_t reserved = 0;
  append(&nn, sizeof nn);
  append(&reserved, sizeof reserved);
  append(&num_edges_, sizeof num_edges_);
  append(offsets_.data(), offsets_.size() * sizeof(std::uint32_t));
  append(flat_.data(), flat_.size() * sizeof(Vertex));
  return out;
}

std::optional<CommGraph> CommGraph::from_csr_blob(
    std::span<const std::uint8_t> blob) {
  std::size_t pos = 0;
  const auto read = [&](void* p, std::size_t len) {
    if (pos + len > blob.size()) return false;
    std::memcpy(p, blob.data() + pos, len);
    pos += len;
    return true;
  };
  std::uint32_t n = 0;
  std::uint32_t reserved = 0;
  std::uint64_t num_edges = 0;
  if (!read(&n, sizeof n) || !read(&reserved, sizeof reserved) ||
      !read(&num_edges, sizeof num_edges)) {
    return std::nullopt;
  }
  CommGraph g;
  g.offsets_.resize(static_cast<std::size_t>(n) + 1);
  if (!read(g.offsets_.data(), g.offsets_.size() * sizeof(std::uint32_t)))
    return std::nullopt;
  for (std::size_t v = 0; v < n; ++v) {
    if (g.offsets_[v] > g.offsets_[v + 1]) return std::nullopt;
  }
  if (g.offsets_[0] != 0) return std::nullopt;
  g.flat_.resize(g.offsets_[n]);
  if (!read(g.flat_.data(), g.flat_.size() * sizeof(Vertex))) {
    return std::nullopt;
  }
  if (pos != blob.size()) return std::nullopt;  // trailing garbage
  if (g.flat_.size() != 2 * num_edges) return std::nullopt;
  for (Vertex v = 0; v < n; ++v) {
    const auto nb = std::span<const Vertex>(g.flat_.data() + g.offsets_[v],
                                            g.offsets_[v + 1] - g.offsets_[v]);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] >= n || nb[i] == v) return std::nullopt;
      if (i > 0 && nb[i - 1] >= nb[i]) return std::nullopt;
    }
  }
  g.num_edges_ = num_edges;
  return g;
}

}  // namespace omx::graph
