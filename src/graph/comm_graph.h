// Communication graph substrate (paper Theorem 4).
//
// The algorithms communicate along a sparse graph G with expected degree
// Δ = Θ(log n) that is (n/10)-expanding, (n/10, Δ/15)-edge-sparse, and has
// concentrated degrees. The paper has every process locally pick "the
// lexicographically smallest graph guaranteed by Theorem 4" — a purely
// combinatorial object derivable from n alone. Finding that graph is
// exponential, so we substitute a *deterministic seeded* Erdős–Rényi graph:
// the seed is a fixed hash of n, so all processes compute the identical
// graph with no communication, and Theorem 4 says it has the needed
// properties whp (our validators in graph/validate.h check them).
//
// Storage is CSR (compressed sparse row): one flat sorted neighbor array
// plus an n+1 offset table. Spreading/gossip touches every neighbor list
// every round; one contiguous allocation beats n separate vectors on cache
// locality and removes a pointer chase per neighbors() call.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace omx::graph {

using Vertex = std::uint32_t;

class CommGraph {
 public:
  /// Build from an explicit adjacency structure (must be symmetric; checked).
  explicit CommGraph(std::vector<std::vector<Vertex>> adjacency);

  /// Erdős–Rényi G(n, p) with the given seed.
  static CommGraph erdos_renyi(std::uint32_t n, double edge_prob,
                               std::uint64_t seed);

  /// The common-knowledge graph for an n-process system: ER with edge
  /// probability Δ/(n-1), seeded deterministically from (n, Δ).
  static CommGraph common_for(std::uint32_t n, std::uint32_t delta);

  /// Memoized common_for: the graph is a pure function of (n, Δ), so
  /// experiment repetitions share one immutable instance instead of
  /// regenerating it. Thread-safe (parallel_map runs experiments
  /// concurrently) with per-key once semantics: concurrent first touches of
  /// the same (n, Δ) build exactly one graph, the rest block until it is
  /// ready. Entries live for the process lifetime.
  static std::shared_ptr<const CommGraph> common_for_shared(
      std::uint32_t n, std::uint32_t delta);

  /// Number of graphs ever constructed by common_for_shared (not cache
  /// hits) — observable evidence of the once-per-key guarantee for tests.
  static std::uint64_t common_for_shared_builds();

  /// Graphs common_for_shared loaded from the on-disk artifact cache
  /// (OMX_ARTIFACT_CACHE) instead of rebuilding.
  static std::uint64_t common_for_shared_disk_loads();

  /// Serialize the CSR arrays for the artifact cache. from_csr_blob
  /// validates structure (monotonic offsets, in-range sorted neighbors)
  /// and rebuilds without re-running the O(E log E) constructor checks;
  /// a malformed blob — the cache's checksum should have caught it first —
  /// yields nullopt, which cache users treat as a miss.
  std::vector<std::uint8_t> to_csr_blob() const;
  static std::optional<CommGraph> from_csr_blob(
      std::span<const std::uint8_t> blob);

  std::uint32_t n() const {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  std::uint64_t num_edges() const { return num_edges_; }
  std::uint32_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  std::span<const Vertex> neighbors(Vertex v) const {
    return std::span<const Vertex>(flat_.data() + offsets_[v],
                                   offsets_[v + 1] - offsets_[v]);
  }
  bool has_edge(Vertex u, Vertex v) const;

 private:
  CommGraph() = default;  // from_csr_blob fills the members directly

  std::vector<std::uint32_t> offsets_;  // n+1 row starts into flat_
  std::vector<Vertex> flat_;            // sorted neighbor lists, concatenated
  std::uint64_t num_edges_ = 0;
};

}  // namespace omx::graph
