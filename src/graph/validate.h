// Validators for the Theorem 4 graph properties and the Lemma 3/4
// machinery built on them.
//
// Exact verification of (ℓ,α)-edge-sparsity and ℓ-expansion quantifies over
// all vertex subsets (exponential), so we provide:
//   * exact checks for tiny graphs (n <= ~20) used in unit tests,
//   * Monte-Carlo sampled checks for experiment-scale graphs,
//   * the constructive Lemma 4 peeling, which is itself an algorithmic
//     object the analysis uses (the surviving dense subgraph A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/comm_graph.h"

namespace omx::graph {

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
};

DegreeStats degree_stats(const CommGraph& g);

/// True iff every degree lies in [lo, hi] (Theorem 4 (iii) with
/// lo = 19Δ/20, hi = 21Δ/20 at paper constants).
bool degrees_within(const CommGraph& g, std::uint32_t lo, std::uint32_t hi);

/// Sampled ℓ-expansion check (Theorem 4 (i)): draw `samples` pairs of
/// disjoint uniformly-random vertex sets of size `set_size` and return the
/// fraction of pairs with NO connecting edge (0.0 = no violation observed).
double sampled_expansion_failure(const CommGraph& g, std::uint32_t set_size,
                                 std::uint32_t samples, std::uint64_t seed);

/// Sampled (ℓ, α)-edge-sparsity check (Theorem 4 (ii)): draw `samples`
/// uniformly-random subsets of each size in {2, ..., max_size} and return
/// the largest observed ratio internal_edges(X) / |X|. The property holds
/// with ratio <= alpha.
double sampled_max_internal_edge_ratio(const CommGraph& g,
                                       std::uint32_t max_size,
                                       std::uint32_t samples,
                                       std::uint64_t seed);

/// Exact edge-sparsity check by exhaustive subset enumeration (n <= 24).
bool exact_edge_sparse(const CommGraph& g, std::uint32_t max_size,
                       double alpha);

/// Exact internal edge count of a subset.
std::uint64_t internal_edges(const CommGraph& g, std::span<const Vertex> set);

/// Lemma 4 peeling: remove `removed`, then iteratively discard any vertex
/// with fewer than `min_degree` surviving neighbors. Returns the surviving
/// set A (sorted). Lemma 4: for |removed| <= n/15 and min_degree = Δ/3, the
/// survivors number at least n - (4/3)|removed| — the operative backbone.
std::vector<Vertex> peel_dense_subgraph(const CommGraph& g,
                                        std::span<const Vertex> removed,
                                        std::uint32_t min_degree);

/// Lemma 3-style neighborhood growth: sizes of the distance-<=d
/// neighborhoods of v inside the subgraph induced by `alive` (all vertices
/// if empty). Index k of the result = |N^k(v)| (k = 0 is {v}).
std::vector<std::uint64_t> neighborhood_growth(const CommGraph& g, Vertex v,
                                               std::uint32_t depth,
                                               std::span<const Vertex> alive);

/// BFS eccentricity of v within the subgraph induced by `alive`
/// (all vertices if empty). Unreachable vertices are ignored.
std::uint32_t eccentricity(const CommGraph& g, Vertex v,
                           std::span<const Vertex> alive);

}  // namespace omx::graph
