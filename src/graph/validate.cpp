#include "graph/validate.h"

#include <algorithm>
#include <bit>
#include <deque>
#include <numeric>

#include "support/check.h"
#include "support/prng.h"

namespace omx::graph {

namespace {

std::vector<Vertex> sample_subset(std::uint32_t n, std::uint32_t size,
                                  Xoshiro256& gen,
                                  std::vector<Vertex>& scratch) {
  scratch.resize(n);
  std::iota(scratch.begin(), scratch.end(), 0u);
  std::vector<Vertex> out;
  out.reserve(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto j = i + static_cast<std::uint32_t>(gen.below(n - i));
    std::swap(scratch[i], scratch[j]);
    out.push_back(scratch[i]);
  }
  return out;
}

}  // namespace

DegreeStats degree_stats(const CommGraph& g) {
  DegreeStats s;
  if (g.n() == 0) return s;
  s.min = s.max = g.degree(0);
  std::uint64_t total = 0;
  for (Vertex v = 0; v < g.n(); ++v) {
    const auto d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    total += d;
  }
  s.mean = static_cast<double>(total) / g.n();
  return s;
}

bool degrees_within(const CommGraph& g, std::uint32_t lo, std::uint32_t hi) {
  const auto s = degree_stats(g);
  return s.min >= lo && s.max <= hi;
}

double sampled_expansion_failure(const CommGraph& g, std::uint32_t set_size,
                                 std::uint32_t samples, std::uint64_t seed) {
  OMX_REQUIRE(2 * set_size <= g.n(), "sets must fit disjointly");
  Xoshiro256 gen(seed);
  std::vector<Vertex> scratch;
  std::uint32_t failures = 0;
  std::vector<char> in_second(g.n());
  for (std::uint32_t s = 0; s < samples; ++s) {
    auto both = sample_subset(g.n(), 2 * set_size, gen, scratch);
    std::fill(in_second.begin(), in_second.end(), 0);
    for (std::uint32_t i = set_size; i < 2 * set_size; ++i)
      in_second[both[i]] = 1;
    bool connected = false;
    for (std::uint32_t i = 0; i < set_size && !connected; ++i) {
      for (Vertex u : g.neighbors(both[i])) {
        if (in_second[u]) {
          connected = true;
          break;
        }
      }
    }
    if (!connected) ++failures;
  }
  return samples ? static_cast<double>(failures) / samples : 0.0;
}

std::uint64_t internal_edges(const CommGraph& g, std::span<const Vertex> set) {
  std::vector<char> in(g.n(), 0);
  for (Vertex v : set) in[v] = 1;
  std::uint64_t count = 0;
  for (Vertex v : set) {
    for (Vertex u : g.neighbors(v)) {
      if (u > v && in[u]) ++count;
    }
  }
  return count;
}

double sampled_max_internal_edge_ratio(const CommGraph& g,
                                       std::uint32_t max_size,
                                       std::uint32_t samples,
                                       std::uint64_t seed) {
  OMX_REQUIRE(max_size >= 2 && max_size <= g.n(), "bad subset size range");
  Xoshiro256 gen(seed);
  std::vector<Vertex> scratch;
  double worst = 0.0;
  for (std::uint32_t size = 2; size <= max_size; size = size * 2) {
    for (std::uint32_t s = 0; s < samples; ++s) {
      auto set = sample_subset(g.n(), size, gen, scratch);
      const auto e = internal_edges(g, set);
      worst = std::max(worst, static_cast<double>(e) / size);
    }
  }
  return worst;
}

bool exact_edge_sparse(const CommGraph& g, std::uint32_t max_size,
                       double alpha) {
  OMX_REQUIRE(g.n() <= 24, "exact check is exponential; use sampling");
  const std::uint32_t n = g.n();
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    const auto size = static_cast<std::uint32_t>(std::popcount(mask));
    if (size < 2 || size > max_size) continue;
    std::vector<Vertex> set;
    for (std::uint32_t v = 0; v < n; ++v)
      if (mask & (1u << v)) set.push_back(v);
    if (static_cast<double>(internal_edges(g, set)) > alpha * size)
      return false;
  }
  return true;
}

std::vector<Vertex> peel_dense_subgraph(const CommGraph& g,
                                        std::span<const Vertex> removed,
                                        std::uint32_t min_degree) {
  std::vector<char> alive(g.n(), 1);
  for (Vertex v : removed) {
    OMX_REQUIRE(v < g.n(), "removed vertex out of range");
    alive[v] = 0;
  }
  std::vector<std::uint32_t> deg(g.n(), 0);
  std::deque<Vertex> queue;
  for (Vertex v = 0; v < g.n(); ++v) {
    if (!alive[v]) continue;
    std::uint32_t d = 0;
    for (Vertex u : g.neighbors(v)) d += alive[u];
    deg[v] = d;
    if (d < min_degree) queue.push_back(v);
  }
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    if (!alive[v]) continue;
    alive[v] = 0;
    for (Vertex u : g.neighbors(v)) {
      if (alive[u] && deg[u]-- == min_degree) queue.push_back(u);
    }
  }
  std::vector<Vertex> out;
  for (Vertex v = 0; v < g.n(); ++v)
    if (alive[v]) out.push_back(v);
  return out;
}

namespace {
std::vector<char> alive_mask(const CommGraph& g,
                             std::span<const Vertex> alive) {
  if (alive.empty()) return std::vector<char>(g.n(), 1);
  std::vector<char> mask(g.n(), 0);
  for (Vertex v : alive) mask[v] = 1;
  return mask;
}
}  // namespace

std::vector<std::uint64_t> neighborhood_growth(const CommGraph& g, Vertex v,
                                               std::uint32_t depth,
                                               std::span<const Vertex> alive) {
  auto mask = alive_mask(g, alive);
  OMX_REQUIRE(v < g.n() && mask[v], "source vertex not alive");
  std::vector<std::uint32_t> dist(g.n(), UINT32_MAX);
  std::deque<Vertex> queue{v};
  dist[v] = 0;
  std::vector<std::uint64_t> sizes(depth + 1, 0);
  sizes[0] = 1;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    if (dist[u] >= depth) continue;
    for (Vertex w : g.neighbors(u)) {
      if (!mask[w] || dist[w] != UINT32_MAX) continue;
      dist[w] = dist[u] + 1;
      sizes[dist[w]] += 1;
      queue.push_back(w);
    }
  }
  // Convert shell counts to cumulative |N^k(v)|.
  for (std::uint32_t k = 1; k <= depth; ++k) sizes[k] += sizes[k - 1];
  return sizes;
}

std::uint32_t eccentricity(const CommGraph& g, Vertex v,
                           std::span<const Vertex> alive) {
  auto mask = alive_mask(g, alive);
  OMX_REQUIRE(v < g.n() && mask[v], "source vertex not alive");
  std::vector<std::uint32_t> dist(g.n(), UINT32_MAX);
  std::deque<Vertex> queue{v};
  dist[v] = 0;
  std::uint32_t ecc = 0;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    ecc = std::max(ecc, dist[u]);
    for (Vertex w : g.neighbors(u)) {
      if (!mask[w] || dist[w] != UINT32_MAX) continue;
      dist[w] = dist[u] + 1;
      queue.push_back(w);
    }
  }
  return ecc;
}

}  // namespace omx::graph
