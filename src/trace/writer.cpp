#include "trace/trace.h"

#include <cstring>

#include "support/check.h"

namespace omx::trace {

TraceWriter::TraceWriter(std::string path, std::uint32_t n)
    : path_(std::move(path)) {
  if constexpr (!kCompiledIn) return;
  file_ = std::fopen(path_.c_str(), "wb");
  OMX_REQUIRE(file_ != nullptr, "trace: cannot open " + path_ + " for writing");
  ring_.resize(kRingEvents);
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kFormatVersion;
  header.n = n;
  header.reserved = 0;
  const std::size_t wrote = std::fwrite(&header, sizeof header, 1, file_);
  OMX_CHECK(wrote == 1, "trace: short header write to " + path_);
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Closing during the unwind of an engine exception: keep whatever the
    // earlier flushes persisted, never replace the real failure.
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }
}

void TraceWriter::close() {
  if (file_ == nullptr) return;
  flush_ring();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  OMX_CHECK(rc == 0, "trace: cannot close " + path_);
}

void TraceWriter::flush_ring() {
  if (used_ == 0) return;
  const std::size_t wrote = std::fwrite(ring_.data(), sizeof(Event), used_, file_);
  OMX_CHECK(wrote == used_, "trace: short write to " + path_);
  used_ = 0;
}

}  // namespace omx::trace
