#include "trace/trace.h"

#include <cstring>

#include "support/check.h"
#include "trace/codec.h"

namespace omx::trace {

TraceWriter::TraceWriter(std::string path, std::uint32_t n, bool packed)
    : path_(std::move(path)), packed_(packed) {
  if constexpr (!kCompiledIn) return;
  file_ = std::fopen(path_.c_str(), "wb");
  OMX_REQUIRE(file_ != nullptr, "trace: cannot open " + path_ + " for writing");
  ring_.resize(kRingEvents);
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = packed_ ? kFormatVersionPacked : kFormatVersion;
  header.n = n;
  header.flags = packed_ ? kHeaderFlagPacked : 0;
  const std::size_t wrote = std::fwrite(&header, sizeof header, 1, file_);
  OMX_CHECK(wrote == 1, "trace: short header write to " + path_);
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Closing during the unwind of an engine exception: keep whatever the
    // earlier flushes persisted, never replace the real failure.
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }
}

void TraceWriter::close() {
  if (file_ == nullptr) return;
  flush_ring();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  OMX_CHECK(rc == 0, "trace: cannot close " + path_);
}

void TraceWriter::flush_ring() {
  if (used_ == 0) return;
  if (packed_) {
    // One self-contained block per flush: a killed writer tears at most the
    // final block, and the decoder names its offset (see trace/codec.h).
    pack_buffer_.clear();
    encode_block({ring_.data(), used_}, &pack_buffer_);
    const std::size_t wrote =
        std::fwrite(pack_buffer_.data(), 1, pack_buffer_.size(), file_);
    OMX_CHECK(wrote == pack_buffer_.size(), "trace: short write to " + path_);
  } else {
    const std::size_t wrote =
        std::fwrite(ring_.data(), sizeof(Event), used_, file_);
    OMX_CHECK(wrote == used_, "trace: short write to " + path_);
  }
  used_ = 0;
}

}  // namespace omx::trace
