// Trace-file loading: the read side of trace/trace.h's binary format.
// Both on-disk layouts — raw fixed-width records and packed blocks
// (trace/codec.h) — decode to the same TraceData; callers never branch on
// the storage format except to report it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace omx::trace {

/// A fully loaded trace: validated header + flat event stream.
struct TraceData {
  FileHeader header{};
  std::vector<Event> events;
  bool packed = false;       // true if the file body was compressed blocks
  std::uint64_t file_bytes = 0;  // on-disk size, incl. header

  /// Size the same stream would occupy raw (header + fixed-width records);
  /// packed ratio = raw_bytes() / file_bytes.
  std::uint64_t raw_bytes() const {
    return sizeof(FileHeader) + events.size() * sizeof(Event);
  }
};

/// Load `path`, validating magic, format version, header flags, record
/// alignment / block checksums, and event kinds. Throws CorruptInputError
/// (exit 5 via guarded_main) with the byte offset of the first bad record
/// or block on a missing, foreign, truncated or bit-flipped file — analysis
/// code can assume a loaded trace is well-formed.
TraceData read_trace(const std::string& path);

}  // namespace omx::trace
