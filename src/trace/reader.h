// Trace-file loading: the read side of trace/trace.h's binary format.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.h"

namespace omx::trace {

/// A fully loaded trace: validated header + flat event stream.
struct TraceData {
  FileHeader header{};
  std::vector<Event> events;
};

/// Load `path`, validating magic, format version, record alignment and
/// event kinds. Throws PreconditionError on a missing, foreign, truncated
/// or corrupt file — analysis code can assume a loaded trace is well-formed.
TraceData read_trace(const std::string& path);

}  // namespace omx::trace
