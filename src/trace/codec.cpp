#include "trace/codec.h"

#include <cstring>

#include "support/check.h"
#include "trace/reader.h"

namespace omx::trace {

namespace {

/// FNV-1a over the body bytes, truncated to 32 bits. Cheap, deterministic,
/// and enough to make a flipped varint bit a loud checksum mismatch rather
/// than a silently different decode.
std::uint32_t body_checksum(const std::string& body) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : body) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

/// Column accessors in segment order: kind, flags, round, src, dst, payload.
using ColumnGet = std::uint64_t (*)(const Event&);
using ColumnSet = void (*)(Event*, std::uint64_t);

constexpr ColumnGet kGetters[6] = {
    [](const Event& e) { return std::uint64_t{e.kind}; },
    [](const Event& e) { return std::uint64_t{e.flags}; },
    [](const Event& e) { return std::uint64_t{e.round}; },
    [](const Event& e) { return std::uint64_t{e.src}; },
    [](const Event& e) { return std::uint64_t{e.dst}; },
    [](const Event& e) { return e.payload; },
};
constexpr ColumnSet kSetters[6] = {
    [](Event* e, std::uint64_t v) { e->kind = static_cast<std::uint16_t>(v); },
    [](Event* e, std::uint64_t v) { e->flags = static_cast<std::uint16_t>(v); },
    [](Event* e, std::uint64_t v) { e->round = static_cast<std::uint32_t>(v); },
    [](Event* e, std::uint64_t v) { e->src = static_cast<std::uint32_t>(v); },
    [](Event* e, std::uint64_t v) { e->dst = static_cast<std::uint32_t>(v); },
    [](Event* e, std::uint64_t v) { e->payload = v; },
};

/// Field widths (bytes) per column, used to reject deltas that decode to a
/// value the field cannot hold — a symptom of corruption that survived the
/// checksum only if the checksum itself was also hit.
constexpr unsigned kWidths[6] = {2, 2, 4, 4, 4, 8};

/// Pull one varint out of `body` at `*pos`. Returns false on truncation or
/// a varint longer than 10 bytes (64 bits of payload).
bool get_varint(const std::string& body, std::size_t* pos, std::uint64_t* v) {
  std::uint64_t out = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (*pos >= body.size()) return false;
    const auto byte = static_cast<std::uint8_t>(body[(*pos)++]);
    out |= std::uint64_t{byte & 0x7fu} << shift;
    if ((byte & 0x80u) == 0) {
      *v = out;
      return true;
    }
  }
  return false;
}

}  // namespace

void put_varint(std::uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void encode_block(std::span<const Event> events, std::string* out) {
  if (events.empty()) return;
  std::string body;
  // Flood traces make each column a few long runs, so reserving one byte
  // per record is already generous.
  body.reserve(events.size() + 64);
  for (int col = 0; col < 6; ++col) {
    const ColumnGet get = kGetters[col];
    std::uint64_t prev = 0;
    std::size_t i = 0;
    while (i < events.size()) {
      const std::uint64_t value = get(events[i]);
      const std::int64_t delta =
          static_cast<std::int64_t>(value - prev);  // wrapping on purpose
      std::size_t run = 1;
      std::uint64_t run_prev = value;
      while (i + run < events.size()) {
        const std::uint64_t next = get(events[i + run]);
        if (static_cast<std::int64_t>(next - run_prev) != delta) break;
        run_prev = next;
        ++run;
      }
      put_varint(zigzag(delta), &body);
      put_varint(run, &body);
      prev = run_prev;
      i += run;
    }
  }
  out->push_back(static_cast<char>(kBlockMarker));
  put_varint(events.size(), out);
  put_varint(body.size(), out);
  const std::uint32_t sum = body_checksum(body);
  out->append(reinterpret_cast<const char*>(&sum), sizeof sum);
  out->append(body);
}

void decode_block_body(const std::string& body, std::uint64_t n_records,
                       const std::string& path, std::uint64_t block_offset,
                       std::vector<Event>* events) {
  events->assign(n_records, Event{});
  std::size_t pos = 0;
  for (int col = 0; col < 6; ++col) {
    const ColumnSet set = kSetters[col];
    const std::uint64_t max_value =
        kWidths[col] == 8 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << (8 * kWidths[col])) - 1;
    std::uint64_t prev = 0;
    std::uint64_t filled = 0;
    while (filled < n_records) {
      std::uint64_t zz = 0, run = 0;
      if (!get_varint(body, &pos, &zz) || !get_varint(body, &pos, &run)) {
        throw CorruptInputError(path, block_offset,
                                "packed block body ends mid-column " +
                                    std::to_string(col));
      }
      if (run == 0 || run > n_records - filled) {
        throw CorruptInputError(
            path, block_offset,
            "packed block run length " + std::to_string(run) +
                " overruns column " + std::to_string(col) + " (" +
                std::to_string(n_records - filled) + " record(s) left)");
      }
      const std::int64_t delta = unzigzag(zz);
      for (std::uint64_t k = 0; k < run; ++k) {
        prev += static_cast<std::uint64_t>(delta);
        if (prev > max_value) {
          throw CorruptInputError(
              path, block_offset,
              "packed block value " + std::to_string(prev) +
                  " overflows column " + std::to_string(col));
        }
        set(&(*events)[filled + k], prev);
      }
      filled += run;
    }
  }
  if (pos != body.size()) {
    throw CorruptInputError(path, block_offset,
                            "packed block has " +
                                std::to_string(body.size() - pos) +
                                " trailing byte(s) after its columns");
  }
}

void write_trace(const TraceData& t, const std::string& path, bool packed) {
  TraceWriter writer(path, t.header.n, packed);
  for (const Event& e : t.events) writer.emit(e);
  writer.close();
}

PackedDecoder::PackedDecoder(std::FILE* file, std::string path,
                             std::uint64_t offset)
    : file_(file), path_(std::move(path)), offset_(offset) {}

bool PackedDecoder::next(std::vector<Event>* events) {
  const std::uint64_t block_offset = offset_;
  int first = std::fgetc(file_);
  if (first == EOF) return false;  // clean end of stream
  if (static_cast<std::uint8_t>(first) != kBlockMarker) {
    throw CorruptInputError(path_, block_offset,
                            "expected packed block marker, found byte " +
                                std::to_string(first));
  }
  // The two length varints are read byte-by-byte from the file; anything
  // torn here is a truncated block header.
  auto read_varint = [&](std::uint64_t* v) {
    std::uint64_t out = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const int c = std::fgetc(file_);
      if (c == EOF) return false;
      out |= std::uint64_t{static_cast<std::uint8_t>(c) & 0x7fu} << shift;
      if ((static_cast<std::uint8_t>(c) & 0x80u) == 0) {
        *v = out;
        return true;
      }
    }
    return false;
  };
  std::uint64_t n_records = 0, body_len = 0;
  if (!read_varint(&n_records) || !read_varint(&body_len)) {
    throw CorruptInputError(path_, block_offset,
                            "packed block header torn mid-varint");
  }
  // Blocks are ring flushes, so a well-formed block never exceeds the
  // writer's ring capacity — a bigger claim is corruption, not data.
  if (n_records == 0 || n_records > TraceWriter::kRingEvents) {
    throw CorruptInputError(path_, block_offset,
                            "packed block claims implausible record count " +
                                std::to_string(n_records));
  }
  // Six columns, at least one (delta, run) pair each, so 12 bytes minimum;
  // and an RLE'd body can never beat one pair per record per column by
  // being *larger* than the raw records it encodes.
  if (body_len < 12 || body_len > n_records * sizeof(Event) * 2) {
    throw CorruptInputError(path_, block_offset,
                            "packed block claims implausible body length " +
                                std::to_string(body_len));
  }
  std::uint32_t want_sum = 0;
  if (std::fread(&want_sum, sizeof want_sum, 1, file_) != 1) {
    throw CorruptInputError(path_, block_offset,
                            "packed block truncated before its checksum");
  }
  body_.resize(body_len);
  if (std::fread(body_.data(), 1, body_len, file_) != body_len) {
    throw CorruptInputError(path_, block_offset,
                            "packed block body truncated (wanted " +
                                std::to_string(body_len) + " byte(s))");
  }
  const std::uint32_t got_sum = body_checksum(body_);
  if (got_sum != want_sum) {
    throw CorruptInputError(path_, block_offset,
                            "packed block checksum mismatch (stored " +
                                std::to_string(want_sum) + ", computed " +
                                std::to_string(got_sum) + ")");
  }
  decode_block_body(body_, n_records, path_, block_offset, events);
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Event& e = (*events)[i];
    if (!(e.kind >= 1 && e.kind <= kMaxKind)) {
      throw CorruptInputError(path_, block_offset,
                              "packed record " + std::to_string(i) +
                                  " in this block has unknown kind " +
                                  std::to_string(e.kind));
    }
  }
  // marker + varints + checksum + body
  std::uint64_t header_bytes = 1 + sizeof want_sum;
  for (std::uint64_t v : {n_records, body_len}) {
    do {
      ++header_bytes;
      v >>= 7;
    } while (v != 0);
  }
  offset_ += header_bytes + body_len;
  consumed_ += header_bytes + body_len;
  return true;
}

}  // namespace omx::trace
