// Streaming compression for trace record streams (format flag bit 0 of the
// OMXTRACE header's flags word — see trace/trace.h).
//
// A flood-heavy trace is overwhelmingly regular: long runs of kSend records
// whose round is constant, whose src is constant per broadcast, whose dst
// ascends by one, and whose payload repeats. The packed body exploits
// exactly that shape — each ring flush becomes one independent *block*:
//
//   u8      kBlockMarker (0xB7)
//   varint  record count
//   varint  body length in bytes
//   u32     FNV-1a checksum of the body bytes (low 32 bits, little-endian)
//   body    six column segments, in record-field order:
//             kind, flags, round, src, dst, payload
//
// Each column segment is a run-length-coded delta stream: pairs of
// (zigzag-varint delta, varint run length), where the delta is against the
// previous record's value *in the same column* and a pair asserts that the
// next `run` records all share that delta. The per-column predecessor
// resets to 0 at every block boundary, so blocks decode independently — a
// torn tail or a flipped bit poisons one block, not the file, and the
// decoder can name the exact byte where things went wrong.
//
// A broadcast run of n sends therefore costs a handful of bytes (six pairs,
// most of them (0, n) or (1, n)) against 24·n raw; the incompressible
// residue is real entropy (rng draw values). Measured on the flood-heavy
// n=1024 workload the ratio clears 20x — comfortably past the >5x target.
//
// Corruption discipline: the decoder validates the marker, the checksum,
// the declared lengths and the run-length bookkeeping before handing out a
// single record, and every failure throws CorruptInputError carrying the
// file path and the byte offset of the offending block — the same contract
// .repro files and the farm's wire frames honour (exit code 5).
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace omx::trace {

struct TraceData;  // reader.h

/// First byte of every packed block. Not a resynchronization point (blocks
/// are length-prefixed), just a cheap "this is not record debris" tripwire.
inline constexpr std::uint8_t kBlockMarker = 0xB7;

/// Append one varint (LEB128, 7 bits per byte) to `out`.
void put_varint(std::uint64_t v, std::string* out);

/// Zigzag-map a signed delta into varint-friendly space.
constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Encode `events` as one self-contained packed block appended to `out`.
/// Encoding is deterministic: the same records always yield the same bytes.
void encode_block(std::span<const Event> events, std::string* out);

/// Incremental, validating decoder for the packed body of a trace file.
/// Feed it the opened file positioned just past the FileHeader; next()
/// returns one decoded block at a time until EOF. Any malformed byte —
/// torn block, checksum mismatch, run-length overrun, trailing debris —
/// throws CorruptInputError naming `path` and the absolute byte offset of
/// the bad block, so tools report exactly where the file went wrong.
class PackedDecoder {
 public:
  /// `offset` is the absolute file position of the first block (i.e. the
  /// header size), used to report absolute offsets in errors.
  PackedDecoder(std::FILE* file, std::string path, std::uint64_t offset);

  /// Decode the next block into `events` (replacing its contents).
  /// Returns false at a clean end of file.
  bool next(std::vector<Event>* events);

  /// Total compressed body bytes consumed so far.
  std::uint64_t consumed() const { return consumed_; }

 private:
  std::FILE* file_;
  std::string path_;
  std::uint64_t offset_;    // absolute file offset of the next block
  std::uint64_t consumed_ = 0;
  std::string body_;        // scratch for the current block's body
};

/// Re-encode a loaded trace to `path` in the requested storage format —
/// the workhorse of `omxtrace pack|unpack`. Writing goes through
/// TraceWriter, so pack(unpack(p)) == p and unpack(pack(t)) == t byte for
/// byte: block boundaries fall exactly where the original writer's ring
/// flushes fell.
void write_trace(const TraceData& t, const std::string& path, bool packed);

/// Decode one block body (already checksum-validated) into `events`.
/// Internal helper shared with the tests; throws CorruptInputError with
/// `block_offset` on malformed content.
void decode_block_body(const std::string& body, std::uint64_t n_records,
                       const std::string& path, std::uint64_t block_offset,
                       std::vector<Event>* events);

}  // namespace omx::trace
