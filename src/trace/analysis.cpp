#include "trace/analysis.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace omx::trace {

const char* kind_name(std::uint16_t kind) {
  switch (kind) {
    case kRoundBegin: return "round_begin";
    case kRngDraw: return "rng_draw";
    case kCorrupt: return "corrupt";
    case kSend: return "send";
    case kDrop: return "drop";
    case kFinish: return "finish";
    case kDecide: return "decide";
  }
  return "?";
}

const char* finish_reason_name(std::uint32_t reason) {
  switch (reason) {
    case 0: return "finished";
    case 1: return "round_cap";
    case 2: return "deadline";
  }
  return "?";
}

std::string format_event(const Event& e) {
  char buf[160];
  switch (e.kind) {
    case kRoundBegin:
      std::snprintf(buf, sizeof buf, "round %u: begin", e.round);
      break;
    case kRngDraw:
      std::snprintf(buf, sizeof buf,
                    "round %u: rng_draw p%u (%u bits, value %llu)", e.round,
                    e.src, e.dst, static_cast<unsigned long long>(e.payload));
      break;
    case kCorrupt:
      std::snprintf(buf, sizeof buf,
                    "round %u: corrupt p%u (%u corrupted total)", e.round,
                    e.src, e.dst);
      break;
    case kSend:
      std::snprintf(buf, sizeof buf, "round %u: send %u -> %u (%llu bits)",
                    e.round, e.src, e.dst,
                    static_cast<unsigned long long>(e.payload));
      break;
    case kDrop:
      std::snprintf(buf, sizeof buf,
                    "round %u: drop %u -> %u (wire index %llu)", e.round,
                    e.src, e.dst, static_cast<unsigned long long>(e.payload));
      break;
    case kFinish:
      std::snprintf(buf, sizeof buf, "round %u: finish (%s, %llu rounds)",
                    e.round, finish_reason_name(e.src),
                    static_cast<unsigned long long>(e.payload));
      break;
    case kDecide:
      std::snprintf(buf, sizeof buf, "round %u: decide p%u = %u", e.round,
                    e.src, e.dst);
      break;
    default:
      std::snprintf(buf, sizeof buf, "round %u: kind %u", e.round, e.kind);
      break;
  }
  return buf;
}

std::vector<RoundEnvelope> envelopes(std::span<const Event> events) {
  std::vector<RoundEnvelope> rounds;
  for (const Event& e : events) {
    if (e.kind == kFinish || e.kind == kDecide) continue;  // post-run tail
    if (e.kind == kRoundBegin) {
      RoundEnvelope env;
      env.round = e.round;
      // Corruption is cumulative: a round without kCorrupt events inherits
      // the previous round's count.
      env.corrupted = rounds.empty() ? 0 : rounds.back().corrupted;
      rounds.push_back(env);
      continue;
    }
    if (rounds.empty() || rounds.back().round != e.round) continue;
    RoundEnvelope& env = rounds.back();
    switch (e.kind) {
      case kRngDraw:
        env.rng_calls += 1;
        env.rng_bits += e.dst;
        break;
      case kCorrupt:
        env.corrupted = std::max(env.corrupted, e.dst);
        break;
      case kSend:
        env.messages += 1;
        env.bits += e.payload;
        break;
      case kDrop:
        env.omitted += 1;
        break;
      default:
        break;
    }
  }
  return rounds;
}

TraceTotals totals(std::span<const Event> events) {
  TraceTotals t;
  for (const Event& e : events) {
    switch (e.kind) {
      case kRoundBegin: t.rounds += 1; break;
      case kRngDraw:
        t.random_calls += 1;
        t.random_bits += e.dst;
        break;
      case kCorrupt: t.corrupted += 1; break;
      case kSend:
        t.messages += 1;
        t.comm_bits += e.payload;
        break;
      case kDrop: t.omitted += 1; break;
      case kFinish:
        t.finished = true;
        t.finish_reason = e.src;
        break;
      case kDecide: t.decided += 1; break;
      default: break;
    }
  }
  return t;
}

Divergence first_divergence(const TraceData& a, const TraceData& b) {
  Divergence d;
  // Only `n` is semantic: version 1 (raw) and 2 (packed) are encodings of
  // the same record stream, and both arrive here fully decoded, so a packed
  // trace must diff as equal against its unpacked twin.
  if (a.header.n != b.header.n) {
    d.diverged = true;
    d.header_mismatch = true;
    return d;
  }
  const std::size_t common = std::min(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(a.events[i] == b.events[i])) {
      d.diverged = true;
      d.index = i;
      return d;
    }
  }
  if (a.events.size() != b.events.size()) {
    d.diverged = true;
    d.length_only = true;
    d.index = common;
  }
  return d;
}

void print_stats(const TraceData& t, std::ostream& os) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "trace: n=%u, %zu event(s), %s format\n",
                t.header.n, t.events.size(), t.packed ? "packed" : "raw");
  os << buf;
  if (t.packed && t.file_bytes > 0) {
    std::snprintf(buf, sizeof buf,
                  "packed: %llu byte(s) on disk, %llu raw — ratio %.2fx\n",
                  static_cast<unsigned long long>(t.file_bytes),
                  static_cast<unsigned long long>(t.raw_bytes()),
                  static_cast<double>(t.raw_bytes()) /
                      static_cast<double>(t.file_bytes));
    os << buf;
  }
  // Per-kind record counts: the storage-level view of the stream — what
  // the codec's column runs are actually made of.
  std::uint64_t by_kind[kMaxKind + 1] = {};
  for (const Event& e : t.events) {
    if (e.kind <= kMaxKind) by_kind[e.kind] += 1;
  }
  os << "records:";
  for (std::uint16_t k = 1; k <= kMaxKind; ++k) {
    if (by_kind[k] == 0) continue;
    std::snprintf(buf, sizeof buf, " %s=%llu", kind_name(k),
                  static_cast<unsigned long long>(by_kind[k]));
    os << buf;
  }
  os << "\n";
  std::snprintf(buf, sizeof buf, "%8s %10s %14s %8s %6s %9s %9s\n", "round",
                "messages", "bits", "omitted", "corr", "rng calls",
                "rng bits");
  os << buf;
  for (const RoundEnvelope& env : envelopes(t.events)) {
    std::snprintf(buf, sizeof buf,
                  "%8u %10llu %14llu %8llu %6u %9llu %9llu\n", env.round,
                  static_cast<unsigned long long>(env.messages),
                  static_cast<unsigned long long>(env.bits),
                  static_cast<unsigned long long>(env.omitted), env.corrupted,
                  static_cast<unsigned long long>(env.rng_calls),
                  static_cast<unsigned long long>(env.rng_bits));
    os << buf;
  }
  const TraceTotals sum = totals(t.events);
  std::snprintf(
      buf, sizeof buf,
      "totals: rounds=%llu messages=%llu comm_bits=%llu omitted=%llu "
      "corrupted=%u rng_calls=%llu rng_bits=%llu decided=%u",
      static_cast<unsigned long long>(sum.rounds),
      static_cast<unsigned long long>(sum.messages),
      static_cast<unsigned long long>(sum.comm_bits),
      static_cast<unsigned long long>(sum.omitted), sum.corrupted,
      static_cast<unsigned long long>(sum.random_calls),
      static_cast<unsigned long long>(sum.random_bits), sum.decided);
  os << buf;
  if (sum.finished) {
    os << " end=" << finish_reason_name(sum.finish_reason);
  } else {
    os << " end=interrupted";  // no kFinish marker: the run threw mid-way
  }
  os << "\n";
}

void dump_jsonl(const TraceData& t, std::ostream& os) {
  char buf[256];
  std::size_t i = 0;
  for (const Event& e : t.events) {
    std::snprintf(buf, sizeof buf,
                  "{\"i\":%zu,\"round\":%u,\"kind\":\"%s\",\"src\":%u,"
                  "\"dst\":%u,\"payload\":%llu}\n",
                  i++, e.round, kind_name(e.kind), e.src, e.dst,
                  static_cast<unsigned long long>(e.payload));
    os << buf;
  }
}

void dump_chrome(const TraceData& t, std::ostream& os) {
  char buf[512];  // the 4-counter block below runs ~340 chars
  os << "[\n";
  const char* sep = "";
  // Counter tracks, one sample per round (ts = round number).
  for (const RoundEnvelope& env : envelopes(t.events)) {
    std::snprintf(
        buf, sizeof buf,
        "%s{\"name\":\"messages\",\"ph\":\"C\",\"ts\":%u,\"pid\":0,"
        "\"tid\":0,\"args\":{\"sent\":%llu,\"omitted\":%llu}},\n"
        "{\"name\":\"comm bits\",\"ph\":\"C\",\"ts\":%u,\"pid\":0,"
        "\"tid\":0,\"args\":{\"bits\":%llu}},\n"
        "{\"name\":\"rng bits\",\"ph\":\"C\",\"ts\":%u,\"pid\":0,"
        "\"tid\":0,\"args\":{\"bits\":%llu}},\n"
        "{\"name\":\"corrupted\",\"ph\":\"C\",\"ts\":%u,\"pid\":0,"
        "\"tid\":0,\"args\":{\"count\":%u}}",
        sep, env.round, static_cast<unsigned long long>(env.messages),
        static_cast<unsigned long long>(env.omitted), env.round,
        static_cast<unsigned long long>(env.bits), env.round,
        static_cast<unsigned long long>(env.rng_bits), env.round,
        env.corrupted);
    os << buf;
    sep = ",\n";
  }
  // Instant events for the discrete transitions.
  for (const Event& e : t.events) {
    if (e.kind == kCorrupt) {
      std::snprintf(buf, sizeof buf,
                    "%s{\"name\":\"corrupt p%u\",\"ph\":\"i\",\"ts\":%u,"
                    "\"pid\":0,\"tid\":0,\"s\":\"g\"}",
                    sep, e.src, e.round);
    } else if (e.kind == kDecide) {
      std::snprintf(buf, sizeof buf,
                    "%s{\"name\":\"decide p%u=%u\",\"ph\":\"i\",\"ts\":%u,"
                    "\"pid\":0,\"tid\":0,\"s\":\"g\"}",
                    sep, e.src, e.dst, e.round);
    } else if (e.kind == kFinish) {
      std::snprintf(buf, sizeof buf,
                    "%s{\"name\":\"finish (%s)\",\"ph\":\"i\",\"ts\":%u,"
                    "\"pid\":0,\"tid\":0,\"s\":\"g\"}",
                    sep, finish_reason_name(e.src), e.round);
    } else {
      continue;
    }
    os << buf;
    sep = ",\n";
  }
  os << "\n]\n";
}

}  // namespace omx::trace
