// Trace analysis: per-round envelopes, whole-run totals, determinism diff,
// and the JSONL / Chrome-tracing exporters behind the omxtrace CLI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "trace/reader.h"

namespace omx::trace {

/// Human-readable names for the on-disk encodings.
const char* kind_name(std::uint16_t kind);
const char* finish_reason_name(std::uint32_t reason);

/// One line of format_event: "round 12: send 3 -> 17 (128 bits)".
std::string format_event(const Event& e);

/// Per-round aggregate reconstructed from the event stream — the same rows
/// adversary::Recorder captures live, plus the randomness columns, so
/// `omxtrace stats` reproduces a Recorder wiretap from a file after the
/// fact (asserted against Recorder in tests/trace_test.cpp).
struct RoundEnvelope {
  std::uint32_t round = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t omitted = 0;
  std::uint64_t rng_calls = 0;
  std::uint64_t rng_bits = 0;
  std::uint32_t corrupted = 0;  // cumulative, at end of the round
};

/// Whole-run sums — definitionally the reconstruction of sim::Metrics from
/// the event stream (the cross-check tests pin the two against each other).
struct TraceTotals {
  std::uint64_t rounds = 0;        // kRoundBegin count
  std::uint64_t messages = 0;      // kSend count
  std::uint64_t comm_bits = 0;     // sum of kSend payloads
  std::uint64_t omitted = 0;       // kDrop count
  std::uint64_t random_calls = 0;  // kRngDraw count
  std::uint64_t random_bits = 0;   // sum of kRngDraw dst fields
  std::uint32_t corrupted = 0;     // kCorrupt count
  std::uint32_t decided = 0;       // kDecide count
  bool finished = false;           // saw the kFinish marker
  std::uint32_t finish_reason = 0;
};

std::vector<RoundEnvelope> envelopes(std::span<const Event> events);
TraceTotals totals(std::span<const Event> events);

/// Where two traces first disagree (the determinism debugger's verdict).
struct Divergence {
  bool diverged = false;
  /// First event index at which the streams differ; when length_only, the
  /// length of the shorter stream.
  std::size_t index = 0;
  /// Headers disagree (different n or format version).
  bool header_mismatch = false;
  /// The common prefix matches; one stream simply has more events.
  bool length_only = false;
};

Divergence first_divergence(const TraceData& a, const TraceData& b);

/// `omxtrace stats`: per-round envelope table + totals.
void print_stats(const TraceData& t, std::ostream& os);

/// `omxtrace dump`: one JSON object per event, one per line.
void dump_jsonl(const TraceData& t, std::ostream& os);

/// `omxtrace dump --chrome`: a chrome://tracing / Perfetto-loadable JSON
/// array (counter tracks per round; instant events for corruptions,
/// decisions and the finish marker; ts = round number in "microseconds").
void dump_chrome(const TraceData& t, std::ostream& os);

}  // namespace omx::trace
