// RngTap — the bridge between the randomness ledger's draw-observation hook
// and the trace. Draws happen inside the engine's computation phase, which
// may be sharded across worker threads; appending them to the trace as they
// happen would interleave nondeterministically. Instead the tap stages each
// draw in a per-process list (each process is stepped by exactly one
// worker, so the lists are race-free) and the engine drains them in
// ascending process id at the shard barrier — the same order a serial round
// produces, so the trace stays bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/ledger.h"
#include "trace/trace.h"

namespace omx::trace {

class RngTap final : public rng::DrawObserver {
 public:
  explicit RngTap(std::uint32_t n) : draws_(n) {}

  void on_draw(std::uint32_t process, std::uint32_t bits,
               std::uint64_t value) override {
    draws_[process].push_back(Draw{bits, value});
  }

  /// Emit all staged draws as kRngDraw events for `round`, in ascending
  /// process id (within a process, in draw order), and clear the stage.
  void drain(std::uint32_t round, TraceWriter& out) {
    for (std::uint32_t p = 0; p < draws_.size(); ++p) {
      for (const Draw& d : draws_[p]) {
        out.emit(Event{round, kRngDraw, 0, p, d.bits, d.value});
      }
      draws_[p].clear();
    }
  }

 private:
  struct Draw {
    std::uint32_t bits;
    std::uint64_t value;
  };
  std::vector<std::vector<Draw>> draws_;
};

}  // namespace omx::trace
