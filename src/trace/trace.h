// Event-level execution tracing: the binary record format and the writer.
//
// The engine's Metrics are end-of-run aggregates; debugging a wrong scaling
// exponent or a determinism break needs the events themselves: who sent
// what, what the adversary dropped, which coins were drawn, who decided
// when. A trace is a flat stream of fixed-width 24-byte records behind a
// 24-byte header, so a run's observable history can be diffed with cmp,
// replayed by omxtrace, and compared across thread counts byte for byte.
//
// Bit-identity invariant (the whole point of the format): the event stream
// of a run is a pure function of the ExperimentConfig — independent of the
// engine's worker-lane count. The engine guarantees this by emitting each
// round's events in a canonical order:
//
//   kRoundBegin
//   kRngDraw*    in ascending process id (per-process staging in RngTap,
//                drained after the compute phase; shard order == id order)
//   kCorrupt*    in ascending process id (processes newly corrupted by this
//                round's intervention)
//   (kSend | kDrop)*  in wire-record order — already canonical, because
//                staged shard logs are stitched onto the wire in ascending shard order
//   ...
//   kFinish      once, after the last round
//   kDecide*     in ascending process id (appended post-run; their `round`
//                field is the decision round, so they are the one place the
//                stream's round numbers are non-monotone)
//
// Records are written in host byte order (the header's version field makes
// cross-endian misreads fail loudly). The writer batches events in a
// fixed-capacity ring that is flushed when full and on close; its
// destructor closes the file, so a run killed by an engine exception (e.g.
// AdversaryViolation) still leaves a readable trace of everything up to the
// violation — exactly the runs worth tracing.
//
// Compile-time no-op: configuring with -DOMX_DISABLE_TRACING=ON defines
// OMX_DISABLE_TRACING, kCompiledIn flips to false, and emit() folds to
// nothing — the engine's trace hooks vanish entirely.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

namespace omx::trace {

#ifdef OMX_DISABLE_TRACING
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

// Event kinds and their field conventions (src / dst / payload):
//   kRoundBegin  —            /              /
//   kRngDraw     src=process  / dst=bits in the call / payload=drawn value
//   kCorrupt     src=process  / dst=corrupted total after this corruption /
//   kSend        src=sender   / dst=receiver / payload=payload bit size
//   kDrop        src=sender   / dst=receiver / payload=wire index (follows
//                the kSend it annuls)
//   kFinish      src=reason (0 finished, 1 round cap, 2 deadline) /
//                             /              payload=total rounds
//   kDecide      src=process  / dst=decided value / payload=decision round
inline constexpr std::uint16_t kRoundBegin = 1;
inline constexpr std::uint16_t kRngDraw = 2;
inline constexpr std::uint16_t kCorrupt = 3;
inline constexpr std::uint16_t kSend = 4;
inline constexpr std::uint16_t kDrop = 5;
inline constexpr std::uint16_t kFinish = 6;
inline constexpr std::uint16_t kDecide = 7;
inline constexpr std::uint16_t kMaxKind = 7;

/// One fixed-width trace record. Plain old data, written to disk verbatim.
struct Event {
  std::uint32_t round = 0;
  std::uint16_t kind = 0;
  std::uint16_t flags = 0;  // reserved, always 0 in format version 1
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t payload = 0;

  friend bool operator==(const Event&, const Event&) = default;
};
static_assert(sizeof(Event) == 24, "trace records are 24 bytes on disk");
static_assert(std::is_trivially_copyable_v<Event>,
              "trace records are written/read as raw bytes");

inline constexpr char kMagic[8] = {'O', 'M', 'X', 'T', 'R', 'A', 'C', 'E'};

/// Format versions. Version 1 is the original raw layout: the header
/// followed by naked 24-byte records. Version 2 is a *packed* body — a
/// sequence of self-contained compressed blocks (see trace/codec.h).
/// Packed files bump the version rather than only setting a flag bit
/// because version-1 readers predating the codec never validated the
/// (then-reserved) flag word: a flag-only marker would let them misparse
/// a compressed body as raw records, while an unknown version is rejected
/// by every reader ever shipped.
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kFormatVersionPacked = 2;

/// Header flag bits, stored in FileHeader::flags. Bit 0 marks a packed
/// body and is set exactly when version == kFormatVersionPacked (readers
/// reject a header where the two disagree). Any other bit set is an
/// unknown format extension and readers must refuse it as corrupt input
/// rather than misparse the body.
inline constexpr std::uint64_t kHeaderFlagPacked = std::uint64_t{1} << 0;
inline constexpr std::uint64_t kHeaderKnownFlags = kHeaderFlagPacked;

/// The 24-byte file header preceding the record stream.
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t n;      // process count of the traced system
  std::uint64_t flags;  // kHeaderFlag* bits; 0 = raw fixed-width records
};
static_assert(sizeof(FileHeader) == 24, "trace header is 24 bytes on disk");
static_assert(std::is_trivially_copyable_v<FileHeader>,
              "trace header is written/read as raw bytes");

/// Ring-buffered trace sink. Not thread-safe: the engine emits only from
/// its coordinating thread (worker-side events are staged per process and
/// drained at the shard barrier — see RngTap).
class TraceWriter {
 public:
  /// Events batched between fwrite flushes (64Ki records = 1.5 MiB).
  static constexpr std::size_t kRingEvents = std::size_t{1} << 16;

  /// Opens `path` for writing and emits the header. With `packed`, the
  /// body is written as compressed blocks (one per ring flush — see
  /// trace/codec.h) and the header carries kHeaderFlagPacked; the record
  /// *stream* is identical either way, only the bytes on disk differ.
  /// Throws PreconditionError if the file cannot be created.
  TraceWriter(std::string path, std::uint32_t n, bool packed = false);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Append one record (the engine's hot path: one branch + one 24-byte
  /// store while the ring has room). A no-op when tracing is compiled out.
  void emit(const Event& e) {
    if constexpr (!kCompiledIn) {
      (void)e;
      return;
    } else {
      if (used_ == ring_.size()) flush_ring();
      ring_[used_++] = e;
      ++emitted_;
    }
  }

  /// Flush the ring and close the file. Idempotent; called by the
  /// destructor, which additionally swallows I/O errors (it may run during
  /// the unwind of the engine exception that made the trace interesting).
  void close();

  std::uint64_t emitted() const { return emitted_; }
  const std::string& path() const { return path_; }
  bool packed() const { return packed_; }

 private:
  void flush_ring();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<Event> ring_;
  std::size_t used_ = 0;
  std::uint64_t emitted_ = 0;
  bool packed_ = false;
  std::string pack_buffer_;  // reused scratch for packed flushes
};

}  // namespace omx::trace
