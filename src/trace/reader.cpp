#include "trace/reader.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "support/check.h"

namespace omx::trace {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

TraceData read_trace(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> file(std::fopen(path.c_str(), "rb"));
  OMX_REQUIRE(file != nullptr, "trace: cannot open " + path);

  TraceData data;
  OMX_REQUIRE(std::fread(&data.header, sizeof data.header, 1, file.get()) == 1,
              "trace: " + path + " is too short to hold a trace header");
  OMX_REQUIRE(
      std::memcmp(data.header.magic, kMagic, sizeof kMagic) == 0,
      "trace: " + path + " is not a trace file (bad magic)");
  OMX_REQUIRE(data.header.version == kFormatVersion,
              "trace: " + path + " has format version " +
                  std::to_string(data.header.version) + ", expected " +
                  std::to_string(kFormatVersion) +
                  " (or the file was written on a different-endian machine)");

  // A tail that is not a whole record means the writer was killed without
  // unwinding (the destructor flushes even on engine exceptions) — refuse
  // to present half a record as data. Checked by size up front: fread
  // consumes a partial trailing item while reporting 0 items read, so it
  // cannot be detected after the fact.
  OMX_REQUIRE(std::fseek(file.get(), 0, SEEK_END) == 0,
              "trace: cannot seek in " + path);
  const long end = std::ftell(file.get());
  OMX_REQUIRE(end >= 0, "trace: cannot tell file size of " + path);
  const std::size_t body = static_cast<std::size_t>(end) - sizeof data.header;
  OMX_REQUIRE(body % sizeof(Event) == 0,
              "trace: " + path + " has a truncated trailing record");
  OMX_REQUIRE(std::fseek(file.get(), sizeof data.header, SEEK_SET) == 0,
              "trace: cannot seek in " + path);

  std::vector<Event> chunk(4096);
  for (;;) {
    const std::size_t got =
        std::fread(chunk.data(), sizeof(Event), chunk.size(), file.get());
    data.events.insert(data.events.end(), chunk.begin(),
                       chunk.begin() + static_cast<std::ptrdiff_t>(got));
    if (got < chunk.size()) break;
  }
  OMX_CHECK(data.events.size() == body / sizeof(Event),
            "trace: short read from " + path);
  for (std::size_t i = 0; i < data.events.size(); ++i) {
    const Event& e = data.events[i];
    OMX_REQUIRE(e.kind >= 1 && e.kind <= kMaxKind,
                "trace: " + path + ": record " + std::to_string(i) +
                    " has unknown kind " + std::to_string(e.kind));
  }
  return data;
}

}  // namespace omx::trace
