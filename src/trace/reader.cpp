#include "trace/reader.h"

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>

#include "support/check.h"
#include "trace/codec.h"

namespace omx::trace {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

// Every validation failure throws CorruptInputError carrying the path and
// the byte offset of the first bad record or block, so `omxtrace` reports
// exactly where a file went wrong and exits with the corrupt-input code (5)
// instead of a generic failure.
TraceData read_trace(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    throw CorruptInputError(path, 0, "cannot open trace file");
  }

  TraceData data;
  if (std::fread(&data.header, sizeof data.header, 1, file.get()) != 1) {
    throw CorruptInputError(path, 0, "too short to hold a trace header");
  }
  if (std::memcmp(data.header.magic, kMagic, sizeof kMagic) != 0) {
    throw CorruptInputError(path, 0, "not a trace file (bad magic)");
  }
  if (data.header.version != kFormatVersion &&
      data.header.version != kFormatVersionPacked) {
    throw CorruptInputError(
        path, offsetof(FileHeader, version),
        "format version " + std::to_string(data.header.version) +
            ", expected " + std::to_string(kFormatVersion) + " or " +
            std::to_string(kFormatVersionPacked) +
            " (or the file was written on a different-endian machine)");
  }
  if ((data.header.flags & ~kHeaderKnownFlags) != 0) {
    // Unknown flag bits mean an unknown body layout: reading the records
    // anyway would silently misparse, so fail at the flag word instead.
    char bits[32];
    std::snprintf(bits, sizeof bits, "0x%llx",
                  static_cast<unsigned long long>(data.header.flags &
                                                  ~kHeaderKnownFlags));
    throw CorruptInputError(path, offsetof(FileHeader, flags),
                            std::string("unknown header flag bits ") + bits);
  }
  data.packed = (data.header.flags & kHeaderFlagPacked) != 0;
  if (data.packed != (data.header.version == kFormatVersionPacked)) {
    // The packed flag and the version must agree; a header where they
    // disagree was stitched or flipped, and guessing the body layout from
    // either field alone risks the misparse both exist to prevent.
    throw CorruptInputError(path, offsetof(FileHeader, flags),
                            "header flags disagree with format version " +
                                std::to_string(data.header.version));
  }

  OMX_REQUIRE(std::fseek(file.get(), 0, SEEK_END) == 0,
              "trace: cannot seek in " + path);
  const long end = std::ftell(file.get());
  OMX_REQUIRE(end >= 0, "trace: cannot tell file size of " + path);
  data.file_bytes = static_cast<std::uint64_t>(end);
  const std::size_t body = static_cast<std::size_t>(end) - sizeof data.header;
  OMX_REQUIRE(std::fseek(file.get(), sizeof data.header, SEEK_SET) == 0,
              "trace: cannot seek in " + path);

  if (data.packed) {
    // Incremental block decode: each block is validated (marker, lengths,
    // checksum, run-length bookkeeping) before its records are kept, and
    // corruption is reported at the offending block's byte offset.
    PackedDecoder decoder(file.get(), path, sizeof data.header);
    std::vector<Event> block;
    while (decoder.next(&block)) {
      data.events.insert(data.events.end(), block.begin(), block.end());
    }
    return data;
  }

  // A tail that is not a whole record means the writer was killed without
  // unwinding (the destructor flushes even on engine exceptions) — refuse
  // to present half a record as data. Checked by size up front: fread
  // consumes a partial trailing item while reporting 0 items read, so it
  // cannot be detected after the fact.
  if (body % sizeof(Event) != 0) {
    // The offset names the start of the partial record: everything before
    // it is intact data a salvage tool could keep.
    const std::size_t whole = body / sizeof(Event);
    throw CorruptInputError(path,
                            sizeof data.header + whole * sizeof(Event),
                            "truncated trailing record (" +
                                std::to_string(body % sizeof(Event)) +
                                " stray byte(s) after " +
                                std::to_string(whole) + " whole record(s))");
  }

  std::vector<Event> chunk(4096);
  for (;;) {
    const std::size_t got =
        std::fread(chunk.data(), sizeof(Event), chunk.size(), file.get());
    data.events.insert(data.events.end(), chunk.begin(),
                       chunk.begin() + static_cast<std::ptrdiff_t>(got));
    if (got < chunk.size()) break;
  }
  OMX_CHECK(data.events.size() == body / sizeof(Event),
            "trace: short read from " + path);
  for (std::size_t i = 0; i < data.events.size(); ++i) {
    const Event& e = data.events[i];
    if (!(e.kind >= 1 && e.kind <= kMaxKind)) {
      throw CorruptInputError(path, sizeof data.header + i * sizeof(Event),
                              "record " + std::to_string(i) +
                                  " has unknown kind " +
                                  std::to_string(e.kind));
    }
  }
  return data;
}

}  // namespace omx::trace
