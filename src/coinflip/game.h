// The one-round coin-flipping game of Appendix C.
//
// k players draw independent values; a full-information adversary may hide
// ("fail") a bounded number of them; a public function f of the visible
// values decides the outcome. Lemma 12: for any alpha <= 1/2 the adversary
// can bias the outcome to a fixed target with probability > 1 - alpha by
// hiding at most 8·√(k·ln(1/alpha)) values.
//
// We instantiate the game with the threshold function the consensus lower
// bound uses — f(y) = 1 iff (#visible ones) >= k/2 — for which the optimal
// adversary is closed-form (hide excess voters of the majority side), so
// the Lemma's bound is directly measurable: the hides needed equal the
// binomial deviation, which Talagrand/Chernoff says is ≤ c·√(k·ln(1/alpha))
// with probability ≥ 1 - alpha.
#pragma once

#include <cstdint>

#include "support/prng.h"

namespace omx::coinflip {

struct GameConfig {
  std::uint64_t players = 0;  // k
  double alpha = 0.01;        // failure probability target
  /// Hide budget multiplier; the paper's Lemma 12 constant is 8 (ln-based).
  double budget_factor = 8.0;
  /// Target outcome the adversary biases toward (0 or 1).
  std::uint8_t target = 0;
};

struct GameResult {
  std::uint8_t outcome = 0;     // f after hiding
  bool biased = false;          // outcome == target
  std::uint64_t hides_needed = 0;  // minimal hides for this draw
  std::uint64_t budget = 0;        // 8·√(k·ln(1/alpha))
};

/// Hide budget of Lemma 12 for (k, alpha).
std::uint64_t hide_budget(std::uint64_t k, double alpha, double factor = 8.0);

/// Play one instance: draw k fair coins, let the adversary hide up to the
/// budget, evaluate f(visible) = [#ones >= k/2].
GameResult play_once(const GameConfig& config, Xoshiro256& gen);

struct GameStats {
  std::uint64_t trials = 0;
  std::uint64_t biased = 0;       // outcome forced to target
  double success_rate = 0.0;
  double mean_hides_needed = 0.0;
  std::uint64_t max_hides_needed = 0;
  std::uint64_t budget = 0;
};

/// Monte-Carlo estimate of the biasing success probability.
GameStats play_many(const GameConfig& config, std::uint64_t trials,
                    std::uint64_t seed);

}  // namespace omx::coinflip
