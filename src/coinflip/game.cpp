#include "coinflip/game.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/check.h"

namespace omx::coinflip {

std::uint64_t hide_budget(std::uint64_t k, double alpha, double factor) {
  OMX_REQUIRE(alpha > 0.0 && alpha <= 0.5, "alpha must be in (0, 1/2]");
  const double b =
      factor * std::sqrt(static_cast<double>(k) * std::log(1.0 / alpha));
  return static_cast<std::uint64_t>(std::ceil(b));
}

GameResult play_once(const GameConfig& config, Xoshiro256& gen) {
  OMX_REQUIRE(config.players >= 1, "game needs players");
  OMX_REQUIRE(config.target <= 1, "target must be a bit");
  const std::uint64_t k = config.players;

  // Draw k fair coins; count ones (batch 64 at a time).
  std::uint64_t ones = 0;
  std::uint64_t remaining = k;
  while (remaining >= 64) {
    ones += static_cast<std::uint64_t>(std::popcount(gen()));
    remaining -= 64;
  }
  if (remaining > 0) {
    const std::uint64_t word = gen() >> (64 - remaining);
    ones += static_cast<std::uint64_t>(std::popcount(word));
  }

  // f(visible) = 1 iff #visible ones >= k/2 (fixed threshold).
  const std::uint64_t threshold = (k + 1) / 2;
  GameResult res;
  res.budget = hide_budget(k, config.alpha, config.budget_factor);
  if (config.target == 0) {
    // Need #ones < threshold: hide (ones - threshold + 1) one-voters.
    res.hides_needed = ones >= threshold ? ones - threshold + 1 : 0;
  } else {
    // Symmetric form f' = [#visible ones >= #visible zeros]: hiding a
    // zero-voter shrinks the zero count, so the adversary hides
    // (zeros - ones) of them when ones < zeros.
    const std::uint64_t zeros = k - ones;
    res.hides_needed = zeros > ones ? zeros - ones : 0;
  }
  res.biased = res.hides_needed <= res.budget;
  res.outcome = res.biased ? config.target : (config.target ^ 1);
  return res;
}

GameStats play_many(const GameConfig& config, std::uint64_t trials,
                    std::uint64_t seed) {
  Xoshiro256 gen(seed);
  GameStats stats;
  stats.trials = trials;
  stats.budget = hide_budget(config.players, config.alpha,
                             config.budget_factor);
  double sum_hides = 0.0;
  for (std::uint64_t i = 0; i < trials; ++i) {
    const GameResult r = play_once(config, gen);
    if (r.biased) ++stats.biased;
    sum_hides += static_cast<double>(r.hides_needed);
    stats.max_hides_needed = std::max(stats.max_hides_needed, r.hides_needed);
  }
  stats.success_rate =
      trials ? static_cast<double>(stats.biased) / static_cast<double>(trials)
             : 0.0;
  stats.mean_hides_needed =
      trials ? sum_hides / static_cast<double>(trials) : 0.0;
  return stats;
}

}  // namespace omx::coinflip
