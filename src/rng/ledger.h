// Metered randomness.
//
// The paper's third complexity measure is *randomness*: the total number of
// random bits (and, for the lower bound, the total number of accesses to a
// random source) used by all processes. To make that a first-class
// measurement, protocol code has no access to any RNG except its per-process
// rng::Source, which bills every access to a shared rng::Ledger.
//
// The Ledger also supports optional budgets (in calls or bits). Budgets are
// how the Theorem 2 / Theorem 3 experiments model randomness-starved
// algorithms: a protocol variant checks `can_draw()` and falls back to a
// deterministic transition when the budget is exhausted, exactly like an
// algorithm built on a small PRG seed.
//
// Racked (parallel-phase) accounting: when the engine shards a round's
// computation phase across worker threads, the shared running counters
// would be a data race, and budget checks against them would depend on the
// thread interleaving. Instead, the engine brackets the phase with
// begin_racked_phase() / end_racked_phase(): draws are billed to a
// per-process rack (each process is stepped by exactly one worker, so racks
// are race-free), and end_racked_phase() reduces the racks into the shared
// totals — so calls()/bits()/calls_this_window() observe exactly the serial
// values once the phase is sealed. A racked phase is only admissible when
// no budget check inside it could answer differently than under serial
// in-order billing; see racked_admissible() for the per-source slack bound
// that guarantees this.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/prng.h"

namespace omx::rng {

inline constexpr std::uint64_t kUnlimited =
    std::numeric_limits<std::uint64_t>::max();

class Ledger;

/// Observation hook for successful draws, used by the trace subsystem
/// (trace::RngTap) without making rng depend on it. on_draw fires after a
/// draw was billed, with the value actually returned (low `bits` bits).
/// Threading contract: the engine may invoke it from worker threads during
/// a sharded computation phase, but for any fixed process only ever from
/// the single thread stepping that process.
class DrawObserver {
 public:
  virtual ~DrawObserver() = default;
  virtual void on_draw(std::uint32_t process, std::uint32_t bits,
                       std::uint64_t value) = 0;
};

/// Per-process handle to the random source. One access == one "call" in the
/// paper's accounting; a call may request any finite number of bits.
class Source {
 public:
  /// Draw a single uniform bit (1 call, 1 bit).
  bool draw_bit();

  /// Draw `k` uniform bits packed little-endian into a word (1 call, k bits).
  std::uint64_t draw_bits(unsigned k);

  /// True iff the ledger's budget admits one more call of `bits` bits.
  bool can_draw(std::uint64_t bits = 1) const;

  std::uint32_t process() const { return process_; }

 private:
  friend class Ledger;
  Source(Ledger* ledger, std::uint32_t process, std::uint64_t seed)
      : ledger_(ledger), process_(process), gen_(seed) {}

  Ledger* ledger_;
  std::uint32_t process_;
  Xoshiro256 gen_;
};

/// Thrown when a draw would exceed the configured randomness budget.
/// Protocols that support graceful degradation call can_draw() instead of
/// relying on this.
class BudgetExhausted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Global randomness accountant for one execution: owns the per-process
/// sources (independent deterministic streams derived from a master seed)
/// and counts every access.
class Ledger {
 public:
  Ledger(std::uint32_t num_processes, std::uint64_t master_seed);

  // Sources hold a back-pointer to their ledger; pin the object.
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  Source& source(std::uint32_t process);

  /// Total number of accesses to the random source (paper: "randomness of an
  /// execution", lower-bound variant). During a racked phase this excludes
  /// the phase's not-yet-reduced draws.
  std::uint64_t calls() const { return calls_; }
  /// Total number of random bits drawn (paper: randomness complexity).
  std::uint64_t bits() const { return bits_; }
  /// Calls made by processes during the current round window (see
  /// begin_round_window); used by the coin-hiding adversary to size r_i.
  std::uint64_t calls_this_window() const { return calls_ - window_start_calls_; }
  /// Reset the per-round window counter.
  void begin_round_window() { window_start_calls_ = calls_; }

  /// Cap the total number of bits drawable in this execution.
  void set_bit_budget(std::uint64_t max_bits) { bit_budget_ = max_bits; }
  /// Cap the total number of calls.
  void set_call_budget(std::uint64_t max_calls) { call_budget_ = max_calls; }
  std::uint64_t bit_budget() const { return bit_budget_; }
  std::uint64_t call_budget() const { return call_budget_; }

  std::uint32_t num_processes() const {
    return static_cast<std::uint32_t>(sources_.size());
  }

  // --- racked (parallel compute phase) accounting ---

  /// True iff a racked phase starting now is guaranteed to be
  /// budget-equivalent to serial execution, provided no single source draws
  /// more than `slack_calls` calls / `slack_bits` bits during the phase:
  /// with headroom of num_processes() x slack below both budgets, every
  /// serial-prefix admits() check and every racked admits() check answers
  /// "yes", so behaviour cannot depend on billing order. Trivially true when
  /// both budgets are unlimited. When it returns false the engine must run
  /// the round serially — which reproduces budget-exhaustion points exactly.
  bool racked_admissible(std::uint64_t slack_calls,
                         std::uint64_t slack_bits) const;

  /// Enter racked mode: draws bill per-process racks, admits() returns true
  /// (justified by racked_admissible's headroom). Requires !racked().
  void begin_racked_phase();

  /// Reduce the racks into the shared totals and leave racked mode. When a
  /// budget is finite, enforces the per-source slack bound promised to
  /// racked_admissible (a violation is a loud error, never a silent
  /// divergence from serial semantics).
  void end_racked_phase(std::uint64_t slack_calls, std::uint64_t slack_bits);

  bool racked() const { return racked_; }

  /// Install (or, with nullptr, remove) the draw-observation hook. Must not
  /// change while a round's computation phase is in flight.
  void set_draw_observer(DrawObserver* observer) { observer_ = observer; }

 private:
  friend class Source;
  struct Rack {
    std::uint64_t calls = 0;
    std::uint64_t bits = 0;
  };

  bool admits(std::uint64_t extra_bits) const {
    if (racked_) return true;  // guaranteed by racked_admissible's headroom
    return calls_ + 1 <= call_budget_ &&
           (bit_budget_ == kUnlimited || bits_ + extra_bits <= bit_budget_);
  }
  void bill(std::uint32_t process, std::uint64_t drawn_bits);

  std::vector<Source> sources_;
  std::vector<Rack> racks_;
  std::uint64_t calls_ = 0;
  std::uint64_t bits_ = 0;
  std::uint64_t window_start_calls_ = 0;
  std::uint64_t bit_budget_ = kUnlimited;
  std::uint64_t call_budget_ = kUnlimited;
  bool racked_ = false;
  DrawObserver* observer_ = nullptr;
};

/// RAII installation of a DrawObserver: removes the hook on scope exit even
/// when the observed run dies on an engine exception. A nullptr observer
/// (or ledger) makes the whole object a no-op.
class ScopedDrawObserver {
 public:
  ScopedDrawObserver(Ledger* ledger, DrawObserver* observer)
      : ledger_(observer != nullptr ? ledger : nullptr) {
    if (ledger_ != nullptr) ledger_->set_draw_observer(observer);
  }
  ~ScopedDrawObserver() {
    if (ledger_ != nullptr) ledger_->set_draw_observer(nullptr);
  }
  ScopedDrawObserver(const ScopedDrawObserver&) = delete;
  ScopedDrawObserver& operator=(const ScopedDrawObserver&) = delete;

 private:
  Ledger* ledger_;
};

}  // namespace omx::rng
