#include "rng/ledger.h"

#include "support/check.h"

namespace omx::rng {

namespace {
/// used + headroom <= budget, with unlimited budgets and overflowing
/// headroom handled saturatingly.
bool fits(std::uint64_t used, std::uint64_t per_source_slack,
          std::uint64_t num_sources, std::uint64_t budget) {
  if (budget == kUnlimited) return true;
  if (used > budget) return false;
  if (per_source_slack != 0 &&
      num_sources > (kUnlimited - 1) / per_source_slack) {
    return false;  // headroom overflows uint64 — cannot possibly fit
  }
  return budget - used >= per_source_slack * num_sources;
}
}  // namespace

Ledger::Ledger(std::uint32_t num_processes, std::uint64_t master_seed) {
  OMX_REQUIRE(num_processes > 0, "ledger needs at least one process");
  sources_.reserve(num_processes);
  for (std::uint32_t p = 0; p < num_processes; ++p) {
    // Independent stream per process: hash (master_seed, p).
    sources_.push_back(Source(this, p, mix64(master_seed, p)));
  }
  racks_.resize(num_processes);
}

Source& Ledger::source(std::uint32_t process) {
  OMX_REQUIRE(process < sources_.size(), "process id out of range");
  return sources_[process];
}

bool Ledger::racked_admissible(std::uint64_t slack_calls,
                               std::uint64_t slack_bits) const {
  if (racked_) return false;
  const std::uint64_t n = num_processes();
  return fits(calls_, slack_calls, n, call_budget_) &&
         fits(bits_, slack_bits, n, bit_budget_);
}

void Ledger::begin_racked_phase() {
  OMX_REQUIRE(!racked_, "racked phase already open");
  racked_ = true;
}

void Ledger::end_racked_phase(std::uint64_t slack_calls,
                              std::uint64_t slack_bits) {
  OMX_REQUIRE(racked_, "no racked phase open");
  racked_ = false;
  const bool bounded =
      call_budget_ != kUnlimited || bit_budget_ != kUnlimited;
  std::uint64_t calls = 0, bits = 0;
  for (Rack& r : racks_) {
    if (bounded) {
      // The slack bound is what made admits() == true sound during the
      // phase; a source that outgrew it must fail loudly, not silently
      // diverge from the serial budget-exhaustion point.
      OMX_CHECK(r.calls <= slack_calls && r.bits <= slack_bits,
                "racked draw exceeded the per-source slack bound (" +
                    std::to_string(r.calls) + " calls / " +
                    std::to_string(r.bits) +
                    " bits); raise the runner's rng slack or run serially");
    }
    calls += r.calls;
    bits += r.bits;
    r.calls = 0;
    r.bits = 0;
  }
  calls_ += calls;
  bits_ += bits;
}

void Ledger::bill(std::uint32_t process, std::uint64_t drawn_bits) {
  if (racked_) {
    Rack& r = racks_[process];
    r.calls += 1;
    r.bits += drawn_bits;
    return;
  }
  if (!admits(drawn_bits)) {
    throw BudgetExhausted(
        "randomness budget exhausted: process " + std::to_string(process) +
        " requested " + std::to_string(drawn_bits) + " bit(s) with " +
        std::to_string(calls_) + " calls / " + std::to_string(bits_) +
        " bits already drawn (call budget " +
        (call_budget_ == kUnlimited ? std::string("unlimited")
                                    : std::to_string(call_budget_)) +
        ", bit budget " +
        (bit_budget_ == kUnlimited ? std::string("unlimited")
                                   : std::to_string(bit_budget_)) +
        ")");
  }
  calls_ += 1;
  bits_ += drawn_bits;
}

bool Source::draw_bit() {
  ledger_->bill(process_, 1);
  const bool v = (gen_() >> 63) != 0;
  if (DrawObserver* const o = ledger_->observer_) {
    o->on_draw(process_, 1, v ? 1 : 0);
  }
  return v;
}

std::uint64_t Source::draw_bits(unsigned k) {
  OMX_REQUIRE(k >= 1 && k <= 64, "draw_bits supports 1..64 bits per call");
  ledger_->bill(process_, k);
  const std::uint64_t v = gen_() >> (64 - k);
  if (DrawObserver* const o = ledger_->observer_) {
    o->on_draw(process_, k, v);
  }
  return v;
}

bool Source::can_draw(std::uint64_t bits) const {
  return ledger_->admits(bits);
}

}  // namespace omx::rng
