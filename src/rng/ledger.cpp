#include "rng/ledger.h"

#include "support/check.h"

namespace omx::rng {

Ledger::Ledger(std::uint32_t num_processes, std::uint64_t master_seed) {
  OMX_REQUIRE(num_processes > 0, "ledger needs at least one process");
  sources_.reserve(num_processes);
  for (std::uint32_t p = 0; p < num_processes; ++p) {
    // Independent stream per process: hash (master_seed, p).
    sources_.push_back(Source(this, p, mix64(master_seed, p)));
  }
}

Source& Ledger::source(std::uint32_t process) {
  OMX_REQUIRE(process < sources_.size(), "process id out of range");
  return sources_[process];
}

void Ledger::bill(std::uint64_t drawn_bits) {
  if (!admits(drawn_bits)) {
    throw BudgetExhausted("randomness budget exhausted (calls=" +
                          std::to_string(calls_) +
                          ", bits=" + std::to_string(bits_) + ")");
  }
  calls_ += 1;
  bits_ += drawn_bits;
}

bool Source::draw_bit() {
  ledger_->bill(1);
  return (gen_() >> 63) != 0;
}

std::uint64_t Source::draw_bits(unsigned k) {
  OMX_REQUIRE(k >= 1 && k <= 64, "draw_bits supports 1..64 bits per call");
  ledger_->bill(k);
  return gen_() >> (64 - k);
}

bool Source::can_draw(std::uint64_t bits) const {
  return ledger_->admits(bits);
}

}  // namespace omx::rng
