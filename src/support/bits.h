// Bit-size accounting helpers.
//
// The paper measures communication in *bits*, with messages carrying small
// counters (O(log n) bits each). We account each field at its minimal
// self-delimiting width: bit_width(value | 1) bits for the value. This keeps
// the accounting within a factor ~2 of any concrete variable-length encoding
// and, crucially, preserves the asymptotic shapes Table 1 reports.
#pragma once

#include <bit>
#include <cstdint>

namespace omx {

/// Number of bits in a minimal encoding of `v` (>= 1 even for v == 0, since
/// an empty message still occupies one slot on the wire).
constexpr std::uint64_t field_bits(std::uint64_t v) {
  return static_cast<std::uint64_t>(std::bit_width(v | 1u));
}

/// Prefix sum of field_bits: F(x) = sum of field_bits(i) for i in [0, x).
/// Closed form — for x >= 1, with b = bit_width(x - 1),
///   F(x) = 1 + x*b - (2^b - 1)
/// (the leading 1 is field_bits(0); each width class [2^(k-1), 2^k) holds
/// 2^(k-1) values of width k). This is what lets run-length-coded views
/// bill a whole id interval [lo, hi) at F(hi) - F(lo) in O(1) instead of
/// looping over every id.
constexpr std::uint64_t field_bits_prefix(std::uint64_t x) {
  if (x == 0) return 0;
  const auto b = static_cast<std::uint64_t>(std::bit_width(x - 1));
  return 1 + x * b - ((std::uint64_t{1} << b) - 1);
}

/// ceil(log2(x)) for x >= 1: the number of bits needed to index x values.
constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  if (x <= 1) return 0;
  return static_cast<std::uint32_t>(std::bit_width(x - 1));
}

/// Integer square root (floor).
constexpr std::uint32_t isqrt(std::uint64_t x) {
  std::uint32_t r = static_cast<std::uint32_t>(0);
  std::uint64_t lo = 0, hi = 1;
  while (hi * hi <= x) hi *= 2;
  lo = hi / 2;
  while (lo <= hi) {
    std::uint64_t mid = lo + (hi - lo) / 2;
    if (mid * mid <= x) {
      r = static_cast<std::uint32_t>(mid);
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return r;
}

/// ceil(a / b) for integers, b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace omx
