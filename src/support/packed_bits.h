// Word-packed bitset for the packed view-exchange hot paths.
//
// The full-information protocols (flood-set, Ben-Or's fallback tail) spend
// their compute phase doing set-union and threshold counting over per-id
// knowledge. On the legacy representation that is one branch per (message,
// pair); packed, it is one OR + popcount per 64 ids. PackedBits is the flat
// storage: fixed size n, capacity-persistent reset, word-level access for
// merge loops, and an O(words) accounting sum that reproduces the legacy
// per-id `field_bits` billing exactly (support/bits.h).
//
// Not a std::bitset/vector<bool> replacement in general — the API is
// deliberately the small surface the packed views need.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "support/bits.h"
#include "support/check.h"

namespace omx::support {

class PackedBits {
 public:
  PackedBits() = default;
  explicit PackedBits(std::uint32_t n) { reset(n); }

  /// Re-target at n bits, all clear. Capacity persists across resets.
  void reset(std::uint32_t n) {
    n_ = n;
    words_.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
  }

  /// Clear every bit, keeping size and capacity.
  void clear_all() {
    std::memset(words_.data(), 0, words_.size() * sizeof(std::uint64_t));
  }

  std::uint32_t size() const { return n_; }
  std::size_t num_words() const { return words_.size(); }
  std::span<const std::uint64_t> words() const { return words_; }
  std::uint64_t word(std::size_t w) const { return words_[w]; }
  void or_word(std::size_t w, std::uint64_t bits) { words_[w] |= bits; }

  bool test(std::uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::uint32_t i) {
    OMX_CHECK(i < n_, "PackedBits::set out of range");
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  /// Set bit i; true iff it was previously clear.
  bool test_and_set(std::uint32_t i) {
    OMX_CHECK(i < n_, "PackedBits::test_and_set out of range");
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    const bool fresh = (w & mask) == 0;
    w |= mask;
    return fresh;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) {
      c += static_cast<std::size_t>(std::popcount(w));
    }
    return c;
  }

  bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Visit every set bit in ascending order.
  template <class Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(bits));
        fn(static_cast<std::uint32_t>((w << 6) + b));
        bits &= bits - 1;
      }
    }
  }

 private:
  std::uint32_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Sum of field_bits(id) over every set id — the packed equivalent of the
/// legacy per-pair billing loop, in O(words).
///
/// Width classes [2^(k-1), 2^k) are word-aligned for ids >= 64 (every power
/// of two >= 64 is a multiple of 64), so each word w >= 1 lies entirely in
/// one class and contributes popcount(word) * field_bits(64w). Word 0 spans
/// the sub-64 class boundaries and is handled with per-class masks.
inline std::uint64_t sum_field_bits(std::span<const std::uint64_t> words) {
  std::uint64_t sum = 0;
  if (!words.empty()) {
    const std::uint64_t w0 = words[0];
    // Classes inside word 0: [0,2) width 1, [2,4) width 2, [4,8) width 3,
    // [8,16) width 4, [16,32) width 5, [32,64) width 6.
    sum += static_cast<std::uint64_t>(std::popcount(w0 & 0x3u)) * 1;
    sum += static_cast<std::uint64_t>(std::popcount(w0 & 0xCu)) * 2;
    sum += static_cast<std::uint64_t>(std::popcount(w0 & 0xF0u)) * 3;
    sum += static_cast<std::uint64_t>(std::popcount(w0 & 0xFF00u)) * 4;
    sum += static_cast<std::uint64_t>(std::popcount(w0 & 0xFFFF0000u)) * 5;
    sum += static_cast<std::uint64_t>(
               std::popcount(w0 & 0xFFFFFFFF00000000u)) * 6;
  }
  for (std::size_t w = 1; w < words.size(); ++w) {
    sum += static_cast<std::uint64_t>(std::popcount(words[w])) *
           field_bits(static_cast<std::uint64_t>(w) << 6);
  }
  return sum;
}

inline std::uint64_t sum_field_bits(const PackedBits& b) {
  return sum_field_bits(b.words());
}

}  // namespace omx::support
