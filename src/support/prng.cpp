#include "support/prng.h"

#include "support/check.h"

namespace omx {

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  OMX_REQUIRE(bound > 0, "below() needs a positive bound");
  // Lemire's multiply-shift method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace omx
