#include "support/thread_pool.h"

#include <chrono>

#include "support/check.h"

namespace omx::support {

namespace {
// Which pool (if any) the current thread is a worker lane of. Used to run
// nested run() calls inline instead of deadlocking on the barrier.
thread_local const ThreadPool* tl_worker_of = nullptr;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

unsigned ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

ThreadPool::ThreadPool(unsigned lanes)
    : lanes_(lanes), busy_(std::make_unique<LaneClock[]>(lanes)) {
  OMX_REQUIRE(lanes >= 1, "thread pool needs at least one lane");
  threads_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane) {
    threads_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

void ThreadPool::record_error() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_) error_ = std::current_exception();
}

void ThreadPool::worker_loop(unsigned lane) {
  tl_worker_of = this;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    const std::uint64_t t0 = now_ns();
    try {
      (*job)(lane);
    } catch (...) {
      record_error();
    }
    busy_[lane].ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::run(const std::function<void(unsigned)>& job) {
  if (lanes_ == 1 || tl_worker_of == this) {
    // Single-lane pool, or a nested call from one of our own lanes: execute
    // inline. Exceptions propagate naturally from the first failing lane.
    for (unsigned lane = 0; lane < lanes_; ++lane) {
      const std::uint64_t t0 = now_ns();
      try {
        job(lane);
      } catch (...) {
        busy_[lane].ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
        throw;
      }
      busy_[lane].ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    error_ = nullptr;
    pending_ = lanes_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  // Mark the caller as lane 0 for the duration of its slice, so a nested
  // run() from inside the job degrades to inline execution instead of
  // clobbering the in-flight job state. Saved/restored because the caller
  // may itself be a worker lane of a *different* pool.
  const ThreadPool* const prev = tl_worker_of;
  tl_worker_of = this;
  const std::uint64_t t0 = now_ns();
  try {
    job(0);
  } catch (...) {
    record_error();
  }
  busy_[0].ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  tl_worker_of = prev;

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace omx::support
