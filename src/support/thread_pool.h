// Shared persistent worker pool.
//
// Both hot parallel paths of the codebase — the engine's sharded compute
// phase (sim::Runner) and the bench sweeps (expsup::parallel_map) — need the
// same primitive: run a job once per worker lane, on threads that outlive
// the call. Spawning std::threads per invocation (what parallel_map used to
// do) costs more than small workloads gain and, for the engine, would be
// paid every round. This pool parks its workers on a condition variable
// between jobs, so a round-trip through run() is two wakeups, not a clone().
//
// Semantics of run(job):
//   * job(lane) is invoked exactly once for every lane in [0, size());
//     lane 0 executes on the calling thread, the rest on pool workers;
//   * run() returns only after every lane finished (a full barrier — this
//     is what makes the engine's staged-outbox merge safe to start);
//   * if any lane throws, the first exception (in completion order) is
//     rethrown on the calling thread after the barrier;
//   * calling run() from inside a lane of the *same* pool does not deadlock:
//     the nested job runs all lanes inline on the current thread.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace omx::support {

class ThreadPool {
 public:
  /// Hardware concurrency with the zero-means-unknown case pinned to 2
  /// (matching the historical expsup::worker_count fallback).
  static unsigned hardware_threads();

  /// Process-wide pool with hardware_threads() lanes, built on first use.
  /// expsup::parallel_map and ad-hoc callers share it so the process never
  /// holds more than one set of sweep workers.
  static ThreadPool& shared();

  /// A pool with `lanes` worker lanes (>= 1; lanes - 1 threads are spawned,
  /// since the caller of run() doubles as lane 0).
  explicit ThreadPool(unsigned lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return lanes_; }

  /// Execute job(lane) for every lane; see the header comment for the
  /// barrier, exception, and reentrancy contract.
  void run(const std::function<void(unsigned)>& job);

  /// Cumulative wall time lane `lane` has spent inside job slices since the
  /// pool was built. Monotone; sample before/after a region and subtract to
  /// attribute busy time to it. Relaxed loads: readers want a utilization
  /// figure, not a synchronization edge.
  std::uint64_t lane_busy_ns(unsigned lane) const {
    return busy_[lane].ns.load(std::memory_order_relaxed);
  }

 private:
  // One cache line per lane so the per-slice accumulation never bounces a
  // line between workers.
  struct alignas(64) LaneClock {
    std::atomic<std::uint64_t> ns{0};
  };

  void worker_loop(unsigned lane);
  void record_error() noexcept;

  unsigned lanes_;
  std::unique_ptr<LaneClock[]> busy_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace omx::support
