// Error handling primitives.
//
// The simulator is a measurement instrument: a violated invariant means the
// experiment is invalid, so we fail loudly (throw) rather than continue with
// corrupt state. OMX_CHECK is used for model/protocol invariants that must
// hold in every legal execution; OMX_REQUIRE for public-API preconditions.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace omx {

/// Thrown when a public-API precondition is violated (caller bug).
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant of the simulator or a protocol breaks.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an adversary attempts an action the fault model forbids
/// (dropping a message between two non-corrupted processes, exceeding the
/// corruption budget t, dropping a self-delivery, ...).
class AdversaryViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an *input file* (a .trace, a .repro, a cache entry handed to
/// a CLI) is unreadable or fails validation. Derives from PreconditionError
/// so existing "bad input throws" contracts keep holding, but carries the
/// path and the byte offset of the first bad record so tools can report
/// exactly where a file went wrong — and guarded_main maps it to its own
/// exit code (5) distinct from a caller-bug precondition (2).
class CorruptInputError : public PreconditionError {
 public:
  CorruptInputError(std::string path, std::uint64_t byte_offset,
                    const std::string& detail)
      : PreconditionError("corrupt input: " + path + ": " + detail +
                          " (first bad record at byte offset " +
                          std::to_string(byte_offset) + ")"),
        path_(std::move(path)),
        byte_offset_(byte_offset) {}

  const std::string& path() const { return path_; }
  std::uint64_t byte_offset() const { return byte_offset_; }

 private:
  std::string path_;
  std::uint64_t byte_offset_;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "OMX_REQUIRE") throw PreconditionError(os.str());
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace omx

#define OMX_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::omx::detail::throw_check_failure("OMX_REQUIRE", #cond, __FILE__,    \
                                         __LINE__, (msg));                  \
  } while (false)

#define OMX_CHECK(cond, msg)                                                \
  do {                                                                      \
    if (!(cond))                                                            \
      ::omx::detail::throw_check_failure("OMX_CHECK", #cond, __FILE__,      \
                                         __LINE__, (msg));                  \
  } while (false)
