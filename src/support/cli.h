// Minimal command-line parsing for the tools and bench binaries.
//
// Supports `--name value`, `--name=value`, boolean flags (`--verbose`), and
// generates a usage text. Unknown arguments are errors (typos should not
// silently change an experiment).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace omx {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);
  /// Valued option with a default.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Returns false on error (see error()); `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  const std::string& get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }
  std::string usage() const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace omx
