#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace omx {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double quantile(std::span<const double> sorted, double q) {
  OMX_REQUIRE(!sorted.empty(), "quantile of empty sample");
  OMX_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile_of(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile(std::span<const double>(values), q);
}

}  // namespace omx
