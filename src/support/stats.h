// Small statistics toolkit used by tests and the bench harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace omx {

/// Streaming accumulator: mean / variance (Welford), min / max, count.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for n < 2).
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact quantile of a sample (linear interpolation between order statistics).
double quantile(std::span<const double> sorted_values, double q);

/// Convenience: sort a copy and take the quantile.
double quantile_of(std::vector<double> values, double q);

}  // namespace omx
