// Copy-on-write vector.
//
// A broadcast payload is fanned out to n-1 inboxes by value (the engine's
// inbox contract hands each receiver its own Message<P>), so a payload
// holding a plain std::vector deep-copies its heap buffer once per
// receiver — Θ(n · |payload|) bytes per flooded message. CowVec shares the
// backing store between copies (a copy is a refcount bump) and detaches
// only on mutation, which in the lock-step engine never happens after a
// payload has been handed to the wire: senders build a payload, move it
// into the outbox, and receivers only read.
//
// Read-only API mirrors the std::vector subset the message types use.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace omx::support {

template <class T>
class CowVec {
 public:
  CowVec() = default;
  /// Implicit on purpose: lets aggregate message types keep their
  /// `Payload{std::move(vec)}` construction syntax.
  CowVec(std::vector<T> v)
      : data_(std::make_shared<std::vector<T>>(std::move(v))) {}

  bool empty() const { return data_ == nullptr || data_->empty(); }
  std::size_t size() const { return data_ == nullptr ? 0 : data_->size(); }

  auto begin() const {
    return data_ == nullptr ? kEmpty.begin() : data_->begin();
  }
  auto end() const { return data_ == nullptr ? kEmpty.end() : data_->end(); }
  const T& operator[](std::size_t i) const { return (*data_)[i]; }

  void push_back(T value) { detach().push_back(std::move(value)); }
  void clear() { data_.reset(); }

 private:
  std::vector<T>& detach() {
    if (data_ == nullptr) {
      data_ = std::make_shared<std::vector<T>>();
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<std::vector<T>>(*data_);
    }
    return *data_;
  }

  static inline const std::vector<T> kEmpty{};
  std::shared_ptr<std::vector<T>> data_;
};

}  // namespace omx::support
