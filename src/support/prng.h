// Deterministic pseudo-random number generation.
//
// Two layers:
//  * SplitMix64 — stateless stream derivation; used to key independent
//    per-process generators from a master seed (and to build deterministic
//    "common knowledge" objects such as the communication graph from n).
//  * Xoshiro256** — the workhorse generator, seeded via SplitMix64.
//
// Everything in the repository that consumes randomness does so through one
// of these, seeded explicitly: the same master seed reproduces an execution
// bit-for-bit (including adversary choices and metrics).
#pragma once

#include <cstdint>
#include <limits>

namespace omx {

/// SplitMix64 step: maps a state to the next state's output. Useful both as
/// a tiny PRNG and as a 64-bit mixing/hash function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One-shot mix of two 64-bit values into one (stream derivation).
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (0x9E3779B97f4A7C15ULL * (b + 1));
  return splitmix64(s);
}

/// Xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> if needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace omx
