// Run-length-coded id sets for the gossip packed path.
//
// Fault-free doubling gossip is ring-symmetric: every process's knowledge
// is one master id set shifted by its own position, and that master set
// stays extremely run-compressible (measured: peak ~14k runs at n = 10^6
// against 10^6 ids). RunSet stores such a set as sorted disjoint half-open
// runs [lo, hi) over [0, n), immutable and shared via shared_ptr — a
// process's knowledge is (shared RunSet, rotation), so the per-process
// footprint is a pointer, and identical set algebra across processes
// collapses to one shared computation.
//
// Accounting: the legacy wire bills a flooded (id, bit) pair at
// field_bits(id) + 1. A whole absolute-id interval [lo, hi) is billed in
// O(1) via the closed-form prefix F = field_bits_prefix (support/bits.h):
// (hi - lo) + F(hi) - F(lo). Rotation splits at the ring seam at most once
// per run, so billing a rotated RunSet is O(runs), not O(ids).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "support/bits.h"
#include "support/check.h"

namespace omx::support {

struct Run {
  std::uint32_t lo;  // inclusive
  std::uint32_t hi;  // exclusive, lo < hi
};

class RunSet;
using RunSetPtr = std::shared_ptr<const RunSet>;

class RunSet {
 public:
  RunSet() = default;
  /// Takes ownership of a normalized run list (sorted, disjoint,
  /// non-adjacent runs are not required — adjacency is tolerated but the
  /// builders below always merge it).
  explicit RunSet(std::vector<Run> runs) : runs_(std::move(runs)) {
    for (const Run& r : runs_) {
      OMX_CHECK(r.lo < r.hi, "RunSet run must be non-empty");
      count_ += r.hi - r.lo;
    }
  }

  static RunSetPtr empty_set() {
    static const RunSetPtr kEmpty = std::make_shared<RunSet>();
    return kEmpty;
  }

  /// The singleton set {id} (the gossip seed: a process knows its own pair).
  static RunSetPtr single(std::uint32_t id) {
    return std::make_shared<RunSet>(std::vector<Run>{Run{id, id + 1}});
  }

  const std::vector<Run>& runs() const { return runs_; }
  std::uint64_t count() const { return count_; }
  bool empty() const { return runs_.empty(); }

  bool contains(std::uint32_t id) const {
    auto it = std::upper_bound(
        runs_.begin(), runs_.end(), id,
        [](std::uint32_t v, const Run& r) { return v < r.lo; });
    return it != runs_.begin() && id < std::prev(it)->hi;
  }

  template <class Fn>
  void for_each_id(Fn&& fn) const {
    for (const Run& r : runs_) {
      for (std::uint32_t id = r.lo; id < r.hi; ++id) fn(id);
    }
  }

 private:
  std::vector<Run> runs_;
  std::uint64_t count_ = 0;
};

/// One shifted union operand: ids { (x + shift) mod n : x in *set }.
struct ShiftedSet {
  const RunSet* set;
  std::uint32_t shift;
};

namespace detail {
/// Append `r` shifted by `shift` (mod n) to `out`, splitting at the ring
/// seam when the shifted run wraps.
inline void append_shifted(std::vector<Run>& out, const Run& r,
                           std::uint32_t shift, std::uint32_t n) {
  const std::uint64_t lo = static_cast<std::uint64_t>(r.lo) + shift;
  const std::uint64_t hi = static_cast<std::uint64_t>(r.hi) + shift;
  if (hi <= n) {
    out.push_back(Run{static_cast<std::uint32_t>(lo),
                      static_cast<std::uint32_t>(hi)});
  } else if (lo >= n) {
    out.push_back(Run{static_cast<std::uint32_t>(lo - n),
                      static_cast<std::uint32_t>(hi - n)});
  } else {
    out.push_back(Run{static_cast<std::uint32_t>(lo), n});
    out.push_back(Run{0, static_cast<std::uint32_t>(hi - n)});
  }
}

/// Sort-and-merge normalization (overlapping or adjacent runs coalesce).
inline std::vector<Run> normalize(std::vector<Run> runs) {
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.lo < b.lo; });
  std::vector<Run> out;
  out.reserve(runs.size());
  for (const Run& r : runs) {
    if (!out.empty() && r.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, r.hi);
    } else {
      out.push_back(r);
    }
  }
  return out;
}
}  // namespace detail

/// base ∪ (∪ over operands of shifted operand), all over the ring [0, n).
/// `base` itself is taken unshifted.
inline RunSetPtr union_shifted(const RunSet& base,
                               const std::vector<ShiftedSet>& operands,
                               std::uint32_t n) {
  std::vector<Run> all(base.runs());
  for (const ShiftedSet& op : operands) {
    for (const Run& r : op.set->runs()) {
      OMX_CHECK(r.hi <= n, "RunSet run outside the ring");
      detail::append_shifted(all, r, op.shift % n, n);
    }
  }
  return std::make_shared<RunSet>(detail::normalize(std::move(all)));
}

/// a \ b (same frame). Two-pointer sweep, O(runs(a) + runs(b)).
inline RunSetPtr difference(const RunSet& a, const RunSet& b) {
  std::vector<Run> out;
  std::size_t j = 0;
  const auto& bs = b.runs();
  for (const Run& r : a.runs()) {
    std::uint32_t cur = r.lo;
    while (j < bs.size() && bs[j].hi <= cur) ++j;
    std::size_t k = j;
    while (k < bs.size() && bs[k].lo < r.hi) {
      if (bs[k].lo > cur) out.push_back(Run{cur, bs[k].lo});
      cur = std::max(cur, bs[k].hi);
      ++k;
    }
    if (cur < r.hi) out.push_back(Run{cur, r.hi});
  }
  if (out.empty()) return RunSet::empty_set();
  return std::make_shared<RunSet>(std::move(out));
}

/// Legacy-equivalent wire billing for the absolute-id interval [lo, hi):
/// one (field_bits(id) + 1)-bit pair per id, summed in O(1).
inline std::uint64_t interval_pair_bits(std::uint32_t lo, std::uint32_t hi) {
  return (hi - lo) + field_bits_prefix(hi) - field_bits_prefix(lo);
}

/// Pair billing for a whole RunSet whose ids are rotated by `rot` (mod n)
/// into the absolute frame. O(runs).
inline std::uint64_t shifted_pair_bits(const RunSet& s, std::uint32_t rot,
                                       std::uint32_t n) {
  std::uint64_t bits = 0;
  for (const Run& r : s.runs()) {
    const std::uint64_t lo = static_cast<std::uint64_t>(r.lo) + rot % n;
    const std::uint64_t hi = static_cast<std::uint64_t>(r.hi) + rot % n;
    if (hi <= n) {
      bits += interval_pair_bits(static_cast<std::uint32_t>(lo),
                                 static_cast<std::uint32_t>(hi));
    } else if (lo >= n) {
      bits += interval_pair_bits(static_cast<std::uint32_t>(lo - n),
                                 static_cast<std::uint32_t>(hi - n));
    } else {
      bits += interval_pair_bits(static_cast<std::uint32_t>(lo), n);
      bits += interval_pair_bits(0, static_cast<std::uint32_t>(hi - n));
    }
  }
  return bits;
}

}  // namespace omx::support
