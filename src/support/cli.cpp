#include "support/cli.h"

#include <cstdlib>
#include <sstream>

#include "support/check.h"

namespace omx {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  OMX_REQUIRE(!specs_.count(name), "duplicate argument: " + name);
  specs_[name] = Spec{help, "", true};
  order_.push_back(name);
  flags_[name] = false;
}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  OMX_REQUIRE(!specs_.count(name), "duplicate argument: " + name);
  specs_[name] = Spec{help, default_value, false};
  order_.push_back(name);
  values_[name] = default_value;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(arg);
    if (it == specs_.end()) {
      error_ = "unknown argument: --" + arg;
      return false;
    }
    if (it->second.is_flag) {
      if (has_value) {
        error_ = "flag --" + arg + " does not take a value";
        return false;
      }
      flags_[arg] = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        error_ = "missing value for --" + arg;
        return false;
      }
      value = argv[++i];
    }
    values_[arg] = value;
  }
  return true;
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  OMX_REQUIRE(it != flags_.end(), "not a declared flag: " + name);
  return it->second;
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  OMX_REQUIRE(it != values_.end(), "not a declared option: " + name);
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  OMX_REQUIRE(end != v.c_str() && *end == '\0',
              "--" + name + " expects an integer, got '" + v + "'");
  return parsed;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  OMX_REQUIRE(end != v.c_str() && *end == '\0',
              "--" + name + " expects a number, got '" + v + "'");
  return parsed;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Spec& spec = specs_.at(name);
    os << "  --" << name;
    if (!spec.is_flag) os << " <value>";
    os << "\n      " << spec.help;
    if (!spec.is_flag && !spec.default_value.empty()) {
      os << " (default: " << spec.default_value << ")";
    }
    os << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace omx
