#include "core/params.h"

#include <algorithm>
#include <cmath>

#include "support/bits.h"
#include "support/check.h"

namespace omx::core {

namespace {
std::uint32_t ceil_log2_at_least_1(std::uint32_t n) {
  return std::max<std::uint32_t>(1, ceil_log2(n));
}
}  // namespace

Params Params::paper() {
  Params p;
  p.delta_factor = 832.0;
  p.spread_factor = 8.0;
  p.epoch_factor = 1.0;
  p.gossip_factor = 2.0;
  p.min_epochs = 1;
  return p;
}

Params Params::practical() { return Params{}; }

std::uint32_t Params::delta(std::uint32_t n) const {
  OMX_REQUIRE(n >= 2, "delta needs n >= 2");
  const double raw = delta_factor * ceil_log2_at_least_1(n);
  const auto d = static_cast<std::uint32_t>(std::ceil(raw));
  return std::min(d, n - 1);
}

std::uint32_t Params::spread_rounds(std::uint32_t n) const {
  const double raw = spread_factor * ceil_log2_at_least_1(std::max(2u, n));
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::ceil(raw)));
}

std::uint32_t Params::epochs(std::uint32_t n, std::uint32_t t) const {
  const double sqrt_n = std::sqrt(static_cast<double>(std::max(1u, n)));
  const auto fault_term = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(static_cast<double>(t) / sqrt_n)));
  const auto log_term = static_cast<std::uint32_t>(std::max(
      1.0, std::ceil(epoch_factor * ceil_log2_at_least_1(std::max(2u, n)))));
  return std::max(min_epochs, fault_term * log_term);
}

std::uint32_t Params::gossip_rounds(std::uint32_t n) const {
  const double raw = gossip_factor * ceil_log2_at_least_1(std::max(2u, n));
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::ceil(raw)));
}

std::uint32_t Params::operative_min_degree(std::uint32_t n) const {
  return std::max<std::uint32_t>(1, delta(n) / 3);
}

std::uint32_t Params::max_t_optimal(std::uint32_t n) {
  // Largest t with 30·t < n.
  return n == 0 ? 0 : (n - 1) / 30;
}

std::uint32_t Params::max_t_param(std::uint32_t n) {
  // Largest t with 60·t < n.
  return n == 0 ? 0 : (n - 1) / 60;
}

}  // namespace omx::core
