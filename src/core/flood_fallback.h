// Deterministic flood-set fallback (substitute for Dolev–Strong'83).
//
// Used at the tail of Algorithms 1 and 4 when some operative process failed
// to set `decided` (a whp-never event): participants flood (id, input)
// pairs for t+1 rounds, forwarding only newly-learned pairs, then decide
// the majority of the collected multiset and broadcast the decision.
//
// Why this substitutes the paper's authenticated protocol: under omission
// faults processes never lie, so authentication is vacuous; the chain
// argument (a value reaching a participant must traverse t+1 distinct
// first-senders, hence at least one non-faulty one who flooded it to
// everybody) gives all participants identical pair sets after t+1 rounds,
// and the majority rule preserves validity because non-faulty processes
// outnumber faulty ones by far (t < n/30).
//
// Two wire-equivalent state representations, chosen at construction:
//   * legacy — per-member known vector + fresh pair list, FloodMsg on the
//     wire (one branch per received pair);
//   * packed — core::PackedView (word-packed known/value masks),
//     PackedFloodMsg on the wire; merging a received view is one OR +
//     popcount per 64 ids, and a member already holding all pairs skips
//     the merge in O(1). PackedFloodMsg caches the legacy-identical bit
//     size, so decisions, Metrics and traces match the legacy mode
//     bit-for-bit — only the wall time differs.
//
// Round layout (local fallback rounds fr):
//   fr = 0        participants send their own pair to everyone
//   fr = 1..t     relay rounds (only new pairs are forwarded)
//   fr = t+1      last receipts consumed; participants decide the majority
//                 and broadcast DecisionMsg
//   fr = t+2      everyone else adopts the broadcast decision
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/io.h"
#include "core/packed_view.h"
#include "support/check.h"

namespace omx::core {

class FloodFallback {
 public:
  FloodFallback(std::uint32_t members, std::uint32_t t, bool packed = false)
      : t_(t), members_(members), packed_(packed), state_(members) {
    for (auto& s : state_) {
      if (packed_) {
        s.know.reset(members);
        s.fresh_bits.reset(members);
      } else {
        s.known.assign(members, -1);
      }
    }
  }

  std::uint32_t total_rounds() const { return t_ + 3; }
  bool packed() const { return packed_; }

  /// True when member m's round-fr inbox provably cannot change its state:
  /// inboxes up to round t+1 carry only flood traffic (the DecisionMsg
  /// broadcast of round t+1 is first consumed in round t+2), and a full
  /// packed view learns nothing from a flood message. Callers may then
  /// skip materializing and walking the inbox altogether — that walk is
  /// the only O(n) per-process cost left in the fault-free steady state,
  /// so skipping it makes full-information runs at n=16384 take seconds.
  bool inbox_is_noop(std::uint32_t m, std::uint32_t fr) const {
    return packed_ && fr <= t_ + 1 && state_[m].know.full();
  }

  /// Must be called before the first step of member m (if m participates).
  void set_participant(std::uint32_t m, std::uint8_t input) {
    auto& s = state_[m];
    s.participant = true;
    if (packed_) {
      s.know.add(m, input);
      s.fresh_bits.add(m, input);
    } else {
      s.known[m] = static_cast<std::int8_t>(input);
      s.fresh.push_back(FloodPair{m, input});
    }
  }

  /// Consume one received message for member m. Exposed separately so
  /// streamed callers can merge straight out of the wire walk instead of
  /// materializing an inbox and walking it a second time — at n=16384
  /// that second pass is hundreds of millions of pointer hops per round.
  void consume_one(std::uint32_t m, const Msg& msg) {
    auto& s = state_[m];
    if (const auto* fm = std::get_if<FloodMsg>(&msg)) {
      if (!s.participant) return;  // non-participants do not relay
      for (const FloodPair& p : fm->pairs) {
        OMX_CHECK(p.id < members_, "flood pair id out of range");
        if (packed_) {
          if (s.know.add(p.id, p.value)) s.fresh_bits.add(p.id, p.value);
        } else {
          learn(s, p.id, p.value);
        }
      }
    } else if (const auto* pm = std::get_if<PackedFloodMsg>(&msg)) {
      if (!s.participant || pm->view == nullptr) return;
      OMX_CHECK(packed_, "packed flood message in a legacy fallback");
      // A member already holding every pair cannot learn anything — the
      // whole merge (and its fresh bookkeeping) skips in O(1). This is
      // what makes the fault-free steady state cheap: after the first
      // relay round everyone is full and rounds cost O(1) per receipt.
      if (s.know.full()) return;
      s.know.merge_from(*pm->view, &s.fresh_bits);
    } else if (const auto* dm = std::get_if<DecisionMsg>(&msg)) {
      if (!s.has_decision) {
        s.has_decision = true;
        s.decision = dm->value;
      }
    }
  }

  /// Streamed-walk consume: identical effect to calling consume_one() per
  /// message, with the member-state lookup and the packed dispatch hoisted
  /// out of the per-message callback. In a broadcast round every process
  /// receives n-1 messages, so this callback runs Θ(n²) times per round —
  /// the handful of instructions saved here are the difference between
  /// ~12 s and single-digit seconds for the full n=16384 flood run.
  template <class Io>
  void consume_stream(std::uint32_t m, Io& io) {
    auto& s = state_[m];
    io.for_each_in([this, &s, m](sim::ProcessId, const Msg& msg) {
      if (const auto* pm = std::get_if<PackedFloodMsg>(&msg)) {
        if (!s.participant || pm->view == nullptr || s.know.full()) return;
        s.know.merge_from(*pm->view, &s.fresh_bits);
      } else {
        consume_one(m, msg);
      }
    });
  }

  void step(std::uint32_t m, std::uint32_t fr, std::span<const In> inbox,
            Outbox& send) {
    OMX_REQUIRE(fr < total_rounds(), "fallback round out of schedule");
    auto& s = state_[m];

    // --- consume messages sent in round fr-1 ---
    for (const In& in : inbox) {
      consume_one(m, *in.msg);
    }

    // --- produce this round's sends ---
    if (fr <= t_) {
      if (packed_) {
        if (s.participant && s.fresh_bits.any()) {
          send.all(Msg{PackedFloodMsg{s.fresh_bits.make_blob()}});
          s.fresh_bits.clear_keep_capacity();
        }
      } else if (s.participant && !s.fresh.empty()) {
        // Copy the fresh pairs onto the wire and clear-and-reuse the
        // buffer: capacity persists across the t+1 relay rounds instead of
        // being re-grown from zero after a move-and-reassign.
        send.all(Msg{
            FloodMsg{std::vector<FloodPair>(s.fresh.begin(), s.fresh.end())}});
        s.fresh.clear();
      }
    } else if (fr == t_ + 1) {
      if (s.participant && !s.has_decision) {
        std::uint64_t ones = 0, zeros = 0;
        if (packed_) {
          ones = s.know.ones();
          zeros = s.know.zeros();
        } else {
          for (std::int8_t v : s.known) {
            if (v == 1) ++ones;
            else if (v == 0) ++zeros;
          }
        }
        s.has_decision = true;
        s.decision = ones > zeros ? 1 : 0;
        send.all(Msg{DecisionMsg{s.decision}});
      }
    }
    // fr == t_ + 2: consume-only round.
  }

  bool participant(std::uint32_t m) const { return state_[m].participant; }
  bool has_decision(std::uint32_t m) const { return state_[m].has_decision; }
  std::uint8_t decision(std::uint32_t m) const {
    OMX_REQUIRE(state_[m].has_decision, "no fallback decision for member");
    return state_[m].decision;
  }

 private:
  struct MemberState {
    bool participant = false;
    bool has_decision = false;
    std::uint8_t decision = 0;
    // Legacy representation.
    std::vector<std::int8_t> known;  // -1 unknown / 0 / 1 per member id
    std::vector<FloodPair> fresh;    // learned but not yet relayed
    // Packed representation (same roles, word-packed).
    PackedView know;
    PackedView fresh_bits;
  };

  void learn(MemberState& s, std::uint32_t id, std::uint8_t value) {
    if (s.known[id] < 0) {
      s.known[id] = static_cast<std::int8_t>(value);
      s.fresh.push_back(FloodPair{id, value});
    }
  }

  std::uint32_t t_;
  std::uint32_t members_;
  bool packed_;
  std::vector<MemberState> state_;
};

}  // namespace omx::core
