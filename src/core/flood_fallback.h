// Deterministic flood-set fallback (substitute for Dolev–Strong'83).
//
// Used at the tail of Algorithms 1 and 4 when some operative process failed
// to set `decided` (a whp-never event): participants flood (id, input)
// pairs for t+1 rounds, forwarding only newly-learned pairs, then decide
// the majority of the collected multiset and broadcast the decision.
//
// Why this substitutes the paper's authenticated protocol: under omission
// faults processes never lie, so authentication is vacuous; the chain
// argument (a value reaching a participant must traverse t+1 distinct
// first-senders, hence at least one non-faulty one who flooded it to
// everybody) gives all participants identical pair sets after t+1 rounds,
// and the majority rule preserves validity because non-faulty processes
// outnumber faulty ones by far (t < n/30).
//
// Round layout (local fallback rounds fr):
//   fr = 0        participants send their own pair to everyone
//   fr = 1..t     relay rounds (only new pairs are forwarded)
//   fr = t+1      last receipts consumed; participants decide the majority
//                 and broadcast DecisionMsg
//   fr = t+2      everyone else adopts the broadcast decision
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/io.h"
#include "support/check.h"

namespace omx::core {

class FloodFallback {
 public:
  FloodFallback(std::uint32_t members, std::uint32_t t)
      : t_(t), state_(members) {
    for (auto& s : state_) {
      s.known.assign(members, -1);
    }
  }

  std::uint32_t total_rounds() const { return t_ + 3; }

  /// Must be called before the first step of member m (if m participates).
  void set_participant(std::uint32_t m, std::uint8_t input) {
    auto& s = state_[m];
    s.participant = true;
    s.known[m] = static_cast<std::int8_t>(input);
    s.fresh.push_back(FloodPair{m, input});
  }

  void step(std::uint32_t m, std::uint32_t fr, std::span<const In> inbox,
            Outbox& send) {
    OMX_REQUIRE(fr < total_rounds(), "fallback round out of schedule");
    auto& s = state_[m];

    // --- consume messages sent in round fr-1 ---
    for (const In& in : inbox) {
      if (const auto* fm = std::get_if<FloodMsg>(in.msg)) {
        if (!s.participant) continue;  // non-participants do not relay
        for (const FloodPair& p : fm->pairs) {
          OMX_CHECK(p.id < s.known.size(), "flood pair id out of range");
          if (s.known[p.id] < 0) {
            s.known[p.id] = static_cast<std::int8_t>(p.value);
            s.fresh.push_back(p);
          }
        }
      } else if (const auto* dm = std::get_if<DecisionMsg>(in.msg)) {
        if (!s.has_decision) {
          s.has_decision = true;
          s.decision = dm->value;
        }
      }
    }

    // --- produce this round's sends ---
    if (fr <= t_) {
      if (s.participant && !s.fresh.empty()) {
        FloodMsg msg{std::move(s.fresh)};
        s.fresh = {};
        send.all(std::move(msg));
      }
    } else if (fr == t_ + 1) {
      if (s.participant && !s.has_decision) {
        std::uint32_t ones = 0, zeros = 0;
        for (std::int8_t v : s.known) {
          if (v == 1) ++ones;
          else if (v == 0) ++zeros;
        }
        s.has_decision = true;
        s.decision = ones > zeros ? 1 : 0;
        send.all(DecisionMsg{s.decision});
      }
    }
    // fr == t_ + 2: consume-only round.
  }

  bool participant(std::uint32_t m) const { return state_[m].participant; }
  bool has_decision(std::uint32_t m) const { return state_[m].has_decision; }
  std::uint8_t decision(std::uint32_t m) const {
    OMX_REQUIRE(state_[m].has_decision, "no fallback decision for member");
    return state_[m].decision;
  }

 private:
  struct MemberState {
    bool participant = false;
    bool has_decision = false;
    std::uint8_t decision = 0;
    std::vector<std::int8_t> known;  // -1 unknown / 0 / 1 per member id
    std::vector<FloodPair> fresh;    // learned but not yet relayed
  };

  std::uint32_t t_;
  std::vector<MemberState> state_;
};

}  // namespace omx::core
