#include "core/multi_value.h"

#include "support/bits.h"
#include "support/check.h"

namespace omx::core {

MultiValueMachine::MultiValueMachine(MultiValueConfig config,
                                     std::vector<std::uint32_t> inputs)
    : cfg_(config), n_(static_cast<std::uint32_t>(inputs.size())) {
  OMX_REQUIRE(n_ >= 1, "need at least one process");
  OMX_REQUIRE(cfg_.bits >= 1 && cfg_.bits <= 32, "bits must be in 1..32");
  st_.resize(n_);
  for (std::uint32_t p = 0; p < n_; ++p) {
    if (cfg_.bits < 32) {
      OMX_REQUIRE(inputs[p] < (1u << cfg_.bits), "input exceeds bit width");
    }
    st_[p].candidate = inputs[p];
  }
  inner_len_ = OptimalCore::schedule_length(cfg_.params, n_, cfg_.t,
                                            /*truncated=*/false);
  phase_len_ = inner_len_ + 2;  // + announce + adopt rounds
  total_rounds_ = cfg_.bits * phase_len_;
}

void MultiValueMachine::begin_round(std::uint32_t round) {
  cur_round_ = round;
  rounds_seen_ = round + 1;
  const std::uint32_t phase = round / phase_len_;
  const std::uint32_t pr = round % phase_len_;
  if (pr < inner_len_) {
    if (phase != inner_phase_) {
      inner_phase_ = phase;
      std::vector<std::uint8_t> bits(n_);
      for (std::uint32_t p = 0; p < n_; ++p) {
        bits[p] = static_cast<std::uint8_t>(bit_of(st_[p].candidate, phase));
      }
      OptimalConfig icfg;
      icfg.params = cfg_.params;
      icfg.params.early_decide = false;  // fixed inner schedule
      icfg.t = cfg_.t;
      inner_ = std::make_unique<OptimalCore>(
          icfg, std::span<const std::uint8_t>(bits));
      OMX_CHECK(inner_->scheduled_rounds() == inner_len_,
                "inner schedule drifted");
    }
    inner_->begin_round(pr);
  }
}

void MultiValueMachine::round(sim::ProcessId p, sim::RoundIo<Msg>& io) {
  auto& s = st_[p];
  if (s.terminated) return;
  const std::uint32_t phase = cur_round_ / phase_len_;
  const std::uint32_t pr = cur_round_ % phase_len_;

  if (pr < inner_len_) {
    auto& scratch = scratch_[io.lane()];
    scratch.clear();
    for (const auto& msg : io.inbox()) {
      scratch.push_back(In{msg.from, &msg.payload});
    }
    IoOutbox out(io);
    inner_->step(p, scratch, out, io.rng());
    return;
  }

  if (pr == inner_len_) {
    // Announce round: record the decided bit, announce if consistent.
    const auto out = inner_->outcome(p);
    const std::uint32_t own_bit = bit_of(s.candidate, phase);
    const std::uint32_t d = out.has_value ? out.value : own_bit;
    s.prefix_mask |= mask_of(phase);
    if (d) s.decided_prefix |= mask_of(phase);
    else s.decided_prefix &= ~mask_of(phase);
    if (own_bit == d) {
      io.send_to_all(ValueMsg{s.candidate});
    }
    return;
  }

  // Adopt round: mismatched candidates take any announcement consistent
  // with the decided prefix; then, after the last phase, decide.
  if (bit_of(s.candidate, phase) != bit_of(s.decided_prefix, phase)) {
    for (const auto& msg : io.inbox()) {
      const auto* vm = std::get_if<ValueMsg>(&msg.payload);
      if (vm == nullptr) continue;
      if ((vm->value & s.prefix_mask) == (s.decided_prefix & s.prefix_mask)) {
        s.candidate = vm->value;
        break;
      }
    }
  }
  if (phase + 1 == cfg_.bits) {
    s.terminated = true;
    s.decision_round = static_cast<std::int64_t>(cur_round_);
  }
}

bool MultiValueMachine::finished() const {
  if (rounds_seen_ >= total_rounds_) return true;
  for (sim::ProcessId p = 0; p < n_; ++p) {
    if (faults_ != nullptr && faults_->is_corrupted(p)) continue;
    if (!st_[p].terminated) return false;
  }
  return true;
}

MultiValueOutcome MultiValueMachine::outcome(sim::ProcessId p) const {
  OMX_REQUIRE(p < n_, "process out of range");
  MultiValueOutcome out;
  out.value = st_[p].decided_prefix;
  out.decided = st_[p].terminated;
  out.decision_round = st_[p].decision_round;
  return out;
}

}  // namespace omx::core
