#include "core/optimal_core.h"

#include <algorithm>

#include "support/bits.h"
#include "support/check.h"

namespace omx::core {

namespace {
constexpr std::uint32_t kNoEpoch = UINT32_MAX;
}

OptimalCore::OptimalCore(OptimalConfig config,
                         std::span<const std::uint8_t> inputs)
    : cfg_(config),
      m_(static_cast<std::uint32_t>(inputs.size())),
      partition_(groups::SqrtPartition::shared_for(
          std::max<std::uint32_t>(1, m_))),
      tree_(partition_->max_group_size()),
      fallback_(std::max<std::uint32_t>(1, m_), cfg_.t) {
  OMX_REQUIRE(m_ >= 1, "consensus needs at least one process");
  for (std::uint8_t b : inputs) {
    OMX_REQUIRE(b <= 1, "inputs must be bits");
  }

  st_.resize(m_);
  for (std::uint32_t m = 0; m < m_; ++m) {
    auto& s = st_[m];
    s.b = inputs[m];
    s.group = partition_->group_of(m);
    s.idx_in_group = partition_->index_in_group(m);
    s.group_size = partition_->group_size(s.group);
  }

  if (m_ == 1) {
    // Degenerate instance: a single process decides its own input.
    total_rounds_ = 1;
    return;
  }

  delta_ = cfg_.params.delta(m_);
  min_in_links_ = cfg_.params.operative_min_degree(m_);
  graph_ = graph::CommGraph::common_for_shared(m_, delta_);

  layers_ = tree_.num_layers();
  agg_len_ = 3 * (layers_ - 1);
  spread_len_ = cfg_.params.spread_rounds(m_);
  epoch_len_ = agg_len_ + spread_len_;
  epochs_ = cfg_.params.epochs(m_, cfg_.t);
  decide_bcast_round_ = epochs_ * epoch_len_;
  const std::uint32_t collect = decide_bcast_round_ + 1;
  if (cfg_.truncated) {
    total_rounds_ = collect + 1;
  } else {
    fallback_start_ = collect + 1;
    total_rounds_ = fallback_start_ + fallback_.total_rounds();
  }
  OMX_CHECK(total_rounds_ ==
                schedule_length(cfg_.params, m_, cfg_.t, cfg_.truncated),
            "schedule_length out of sync with constructor");

  const std::uint32_t num_groups = partition_->num_groups();
  const std::uint32_t width = partition_->max_group_size();
  for (std::uint32_t m = 0; m < m_; ++m) {
    auto& s = st_[m];
    s.child_valid.assign(width, 0);
    s.child_ones.assign(width, 0);
    s.child_zeros.assign(width, 0);
    s.pack_valid.assign(num_groups, 0);
    s.pack_ones.assign(num_groups, 0);
    s.pack_zeros.assign(num_groups, 0);
    const auto deg = graph_->degree(m);
    s.link_dead.assign(deg, 0);
    s.sent_mask.assign(static_cast<std::size_t>(deg) * num_groups, 0);
    s.heard_from.assign(deg, 0);
  }
}

std::uint32_t OptimalCore::schedule_length(const Params& params,
                                           std::uint32_t n, std::uint32_t t,
                                           bool truncated) {
  OMX_REQUIRE(n >= 1, "schedule_length needs n >= 1");
  if (n == 1) return 1;
  const auto partition_ptr = groups::SqrtPartition::shared_for(n);
  const groups::SqrtPartition& partition = *partition_ptr;
  const groups::TreeDecomposition tree(partition.max_group_size());
  const std::uint32_t agg = 3 * (tree.num_layers() - 1);
  const std::uint32_t epoch_len = agg + params.spread_rounds(n);
  const std::uint32_t collect = params.epochs(n, t) * epoch_len + 1;
  if (truncated) return collect + 1;
  return collect + 1 + (t + 3);
}

OptimalCore::Phase OptimalCore::phase_of(std::uint32_t r) const {
  Phase ph;
  if (m_ == 1) {
    ph.kind = Kind::Done;
    return ph;
  }
  if (r < decide_bcast_round_) {
    ph.epoch = r / epoch_len_;
    const std::uint32_t rr = r % epoch_len_;
    if (rr < agg_len_) {
      ph.stage = 2 + rr / 3;
      switch (rr % 3) {
        case 0: ph.kind = Kind::AggPush; break;
        case 1: ph.kind = Kind::AggAck; break;
        default: ph.kind = Kind::AggShare; break;
      }
    } else {
      ph.kind = Kind::Spread;
      ph.spread_round = rr - agg_len_;
    }
    return ph;
  }
  if (r == decide_bcast_round_) {
    ph.kind = Kind::DecideBcast;
    return ph;
  }
  if (r == decide_bcast_round_ + 1) {
    ph.kind = Kind::DecideCollect;
    return ph;
  }
  if (!cfg_.truncated && r >= fallback_start_ &&
      r < fallback_start_ + fallback_.total_rounds()) {
    ph.kind = Kind::Fallback;
    ph.fallback_round = r - fallback_start_;
    return ph;
  }
  ph.kind = Kind::Done;
  return ph;
}

void OptimalCore::begin_round(std::uint32_t r) {
  cur_round_ = r;
  if (pending_epoch_record_) {
    operative_history_.push_back(operative_count());
    pending_epoch_record_ = false;
  }
  votes_fresh_ = false;
  if (m_ > 1 && r > 0) {
    const Phase prev = phase_of(r - 1);
    if (prev.kind == Kind::Spread && prev.spread_round == spread_len_ - 1) {
      votes_fresh_ = true;
      pending_epoch_record_ = true;
    }
  }
}

void OptimalCore::decide(std::uint32_t m, std::uint8_t value) {
  auto& s = st_[m];
  OMX_CHECK(!s.terminated, "double decision");
  s.terminated = true;
  s.decision = value;
  s.b = value;
  s.decision_round = static_cast<std::int64_t>(cur_round_);
  terminated_count_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t OptimalCore::neighbor_slot(std::uint32_t m,
                                         std::uint32_t from) const {
  const auto nb = graph_->neighbors(m);
  const auto it = std::lower_bound(nb.begin(), nb.end(), from);
  OMX_CHECK(it != nb.end() && *it == from,
            "spread message from a non-neighbor");
  return static_cast<std::uint32_t>(it - nb.begin());
}

void OptimalCore::epoch_reset(MemberState& s, std::uint32_t epoch) {
  if (s.last_reset_epoch == epoch) return;
  s.last_reset_epoch = epoch;
  // Layer-1 singleton counts: an operative process counts its own bit;
  // inoperative processes' candidate values are not counted (Alg 2 line 1).
  s.cur_ones = (s.operative && s.b == 1) ? 1 : 0;
  s.cur_zeros = (s.operative && s.b == 0) ? 1 : 0;
  // estimate_fresh is deliberately NOT cleared: last_estimate() reports the
  // most recent completed epoch's estimate (vote_update overwrites it).
  std::fill(s.pack_valid.begin(), s.pack_valid.end(), 0);
  std::fill(s.sent_mask.begin(), s.sent_mask.end(), 0);
}

void OptimalCore::stage_reset(MemberState& s) {
  s.sourced = false;
  s.push_senders.clear();
  std::fill(s.child_valid.begin(), s.child_valid.end(), 0);
  s.acks = 0;
  s.shares = 0;
  s.have = 0;
  s.lo = s.lz = s.ro = s.rz = 0;
}

void OptimalCore::vote_update(std::uint32_t m, rng::Source& rng) {
  auto& s = st_[m];
  std::uint64_t ones = 0, zeros = 0;
  const std::uint32_t num_groups = partition_->num_groups();
  for (std::uint32_t g = 0; g < num_groups; ++g) {
    if (!s.pack_valid[g]) continue;
    ones += s.pack_ones[g];
    zeros += s.pack_zeros[g];
  }
  const std::uint64_t tot = ones + zeros;
  OMX_CHECK(tot >= 1, "operative process with empty estimate");
  s.estimate_fresh = true;
  s.est_ones = static_cast<std::uint32_t>(ones);
  s.est_zeros = static_cast<std::uint32_t>(zeros);

  // Lines 9-11: biased-majority rule with thresholds 18/30 and 15/30.
  if (30 * ones > 18 * tot) {
    s.b = 1;
  } else if (30 * ones < 15 * tot) {
    s.b = 0;
  } else {
    // The protocol's only coin. Degrades deterministically to 0 when the
    // randomness budget (Theorem 2/3 experiments) is exhausted.
    s.b = rng.can_draw(1) ? static_cast<std::uint8_t>(rng.draw_bit()) : 0;
  }
  // Line 12: safety rule with thresholds 27/30 and 3/30.
  if (30 * ones > 27 * tot || 30 * ones < 3 * tot) {
    s.decided = true;
  }
}

void OptimalCore::consume(std::uint32_t m, const Phase& prev,
                          std::span<const In> inbox, rng::Source& rng) {
  auto& s = st_[m];
  switch (prev.kind) {
    case Kind::AggPush: {
      // Transmitter duty (any operative status): record first counts per
      // child bag, remember who pushed (to ack them).
      for (const In& in : inbox) {
        if (const auto* push = std::get_if<RelayPush>(in.msg)) {
          if (!s.child_valid[push->child_bag]) {
            s.child_valid[push->child_bag] = 1;
            s.child_ones[push->child_bag] = push->ones;
            s.child_zeros[push->child_bag] = push->zeros;
          }
          s.push_senders.push_back(in.from);
        }
      }
      break;
    }
    case Kind::AggAck: {
      for (const In& in : inbox) {
        if (std::get_if<RelayAck>(in.msg) != nullptr) ++s.acks;
      }
      break;
    }
    case Kind::AggShare: {
      // Source role: merge shares, then enforce the majority thresholds.
      if (s.operative && s.sourced) {
        for (const In& in : inbox) {
          const auto* share = std::get_if<RelayShare>(in.msg);
          if (share == nullptr) continue;
          ++s.shares;
          if ((share->have_mask & 1) && !(s.have & 1)) {
            s.have |= 1;
            s.lo = share->left_ones;
            s.lz = share->left_zeros;
          }
          if ((share->have_mask & 2) && !(s.have & 2)) {
            s.have |= 2;
            s.ro = share->right_ones;
            s.rz = share->right_zeros;
          }
        }
        const std::uint32_t majority = s.group_size / 2 + 1;
        if (s.acks < majority || s.shares < majority) {
          s.operative = false;
        } else {
          s.cur_ones = s.lo + s.ro;
          s.cur_zeros = s.lz + s.rz;
        }
      }
      break;
    }
    case Kind::Spread: {
      if (!s.operative) break;  // idle until the end of the epoch
      std::fill(s.heard_from.begin(), s.heard_from.end(), 0);
      for (const In& in : inbox) {
        const auto* sm = std::get_if<SpreadMsg>(in.msg);
        if (sm == nullptr) continue;
        const std::uint32_t slot = neighbor_slot(m, in.from);
        if (s.link_dead[slot]) continue;  // disregarded link
        s.heard_from[slot] = 1;
        for (const SpreadEntry& e : sm->entries) {
          if (!s.pack_valid[e.group]) {
            s.pack_valid[e.group] = 1;
            s.pack_ones[e.group] = e.ones;
            s.pack_zeros[e.group] = e.zeros;
          }
        }
      }
      std::uint32_t received = 0;
      for (std::size_t slot = 0; slot < s.heard_from.size(); ++slot) {
        if (s.heard_from[slot]) {
          ++received;
        } else if (!s.link_dead[slot]) {
          s.link_dead[slot] = 1;  // silent link: never use it again
        }
      }
      if (received < min_in_links_) {
        s.operative = false;
        break;
      }
      if (prev.spread_round == spread_len_ - 1) {
        vote_update(m, rng);
      }
      break;
    }
    case Kind::DecideBcast: {
      // Lines 15-16.
      bool received = false;
      std::uint8_t rv = 0;
      for (const In& in : inbox) {
        if (const auto* dm = std::get_if<DecisionMsg>(in.msg)) {
          if (!received) {
            received = true;
            rv = dm->value;
          }
        }
      }
      if (!(s.operative && s.decided) && received) {
        s.b = rv;
        s.got_decision_msg = true;
      }
      if (s.decided || (!s.operative && received)) {
        decide(m, s.b);
      }
      if (!cfg_.truncated && !s.terminated && s.operative && !s.decided) {
        fallback_.set_participant(m, s.b);
      }
      break;
    }
    case Kind::DecideCollect:
    case Kind::Fallback:
    case Kind::Done:
      break;
  }
}

void OptimalCore::produce(std::uint32_t m, const Phase& cur, Outbox& send) {
  auto& s = st_[m];
  switch (cur.kind) {
    case Kind::AggPush: {
      epoch_reset(s, cur.epoch);
      stage_reset(s);
      if (s.operative) {
        s.sourced = true;
        const std::uint32_t child =
            tree_.bag_index_of(cur.stage - 1, s.idx_in_group);
        const RelayPush push{static_cast<std::uint16_t>(cur.stage), child,
                             s.cur_ones, s.cur_zeros};
        send.many(partition_->members(s.group), push);
      }
      break;
    }
    case Kind::AggAck: {
      const RelayAck ack{static_cast<std::uint16_t>(cur.stage)};
      send.many(s.push_senders, ack);
      break;
    }
    case Kind::AggShare: {
      const std::uint32_t child_layer = cur.stage - 1;
      const std::uint32_t child_bags = tree_.bags_in_layer(child_layer);
      for (std::uint32_t q : partition_->members(s.group)) {
        const std::uint32_t q_idx = partition_->index_in_group(q);
        const std::uint32_t k = tree_.bag_index_of(cur.stage, q_idx);
        const std::uint32_t cl = 2 * k;
        const std::uint32_t cr = 2 * k + 1;
        RelayShare share{static_cast<std::uint16_t>(cur.stage), 0, 0, 0, 0, 0};
        if (cl < child_bags && s.child_valid[cl]) {
          share.have_mask |= 1;
          share.left_ones = s.child_ones[cl];
          share.left_zeros = s.child_zeros[cl];
        }
        if (cr < child_bags && s.child_valid[cr]) {
          share.have_mask |= 2;
          share.right_ones = s.child_ones[cr];
          share.right_zeros = s.child_zeros[cr];
        }
        send.to(q, share);
      }
      break;
    }
    case Kind::Spread: {
      epoch_reset(s, cur.epoch);  // only relevant when agg_len_ == 0
      if (!s.operative) break;
      const std::uint32_t num_groups = partition_->num_groups();
      if (cur.spread_round == 0) {
        s.pack_valid[s.group] = 1;
        s.pack_ones[s.group] = s.cur_ones;
        s.pack_zeros[s.group] = s.cur_zeros;
      }
      const auto nb = graph_->neighbors(m);
      SpreadMsg msg;
      for (std::uint32_t slot = 0; slot < nb.size(); ++slot) {
        if (s.link_dead[slot]) continue;
        msg.entries.clear();
        std::uint8_t* sent = &s.sent_mask[static_cast<std::size_t>(slot) *
                                          num_groups];
        for (std::uint32_t g = 0; g < num_groups; ++g) {
          if (s.pack_valid[g] && !sent[g]) {
            sent[g] = 1;
            msg.entries.push_back(
                SpreadEntry{g, s.pack_ones[g], s.pack_zeros[g]});
          }
        }
        send.to(nb[slot], msg);  // empty == heartbeat
      }
      break;
    }
    case Kind::DecideBcast: {
      if (s.operative && s.decided) {
        send.all(DecisionMsg{s.b});
      }
      break;
    }
    case Kind::DecideCollect:
    case Kind::Fallback:
    case Kind::Done:
      break;
  }
}

void OptimalCore::step(std::uint32_t m, std::span<const In> inbox,
                       Outbox& send, rng::Source& rng) {
  OMX_REQUIRE(m < m_, "member out of range");
  auto& s = st_[m];
  if (s.terminated) return;

  if (m_ == 1) {
    decide(0, s.b);
    return;
  }

  const Phase cur = phase_of(cur_round_);

  // Early-decide extension (Params::early_decide): during the epochs, a
  // DecisionMsg can only originate from a process that set `decided`; by
  // Lemma 11 its value is the unified operative value, so deciding on first
  // receipt is safe.
  const bool in_epochs = cur.kind == Kind::AggPush || cur.kind == Kind::AggAck ||
                         cur.kind == Kind::AggShare || cur.kind == Kind::Spread;
  if (cfg_.params.early_decide && in_epochs) {
    for (const In& in : inbox) {
      if (const auto* dm = std::get_if<DecisionMsg>(in.msg)) {
        decide(m, dm->value);
        return;
      }
    }
  }

  if (cur.kind == Kind::Fallback) {
    // DecideCollect produced nothing, and within the fallback the helper
    // consumes + produces in one call.
    fallback_.step(m, cur.fallback_round, inbox, send);
    if (fallback_.has_decision(m)) {
      decide(m, fallback_.decision(m));
    }
    return;
  }

  if (cur_round_ > 0) {
    consume(m, phase_of(cur_round_ - 1), inbox, rng);
  }
  if (st_[m].terminated || cur.kind == Kind::Done) return;

  // Early-decide extension: a freshly (or previously) decided operative
  // process broadcasts its value and terminates right away instead of
  // running the remaining epochs.
  if (cfg_.params.early_decide && in_epochs && st_[m].operative &&
      st_[m].decided) {
    send.all(DecisionMsg{st_[m].b});
    decide(m, st_[m].b);
    return;
  }

  produce(m, cur, send);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> OptimalCore::dead_links()
    const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  if (graph_ == nullptr) return out;
  for (std::uint32_t m = 0; m < m_; ++m) {
    const auto nb = graph_->neighbors(m);
    for (std::uint32_t slot = 0; slot < nb.size(); ++slot) {
      if (st_[m].link_dead[slot]) out.emplace_back(m, nb[slot]);
    }
  }
  return out;
}

std::uint32_t OptimalCore::operative_count() const {
  std::uint32_t count = 0;
  for (const auto& s : st_) count += s.operative ? 1 : 0;
  return count;
}

std::optional<std::pair<std::uint32_t, std::uint32_t>>
OptimalCore::last_estimate(std::uint32_t m) const {
  const auto& s = st_[m];
  if (!s.estimate_fresh) return std::nullopt;
  return std::make_pair(s.est_ones, s.est_zeros);
}

MemberOutcome OptimalCore::outcome(std::uint32_t m) const {
  OMX_REQUIRE(m < m_, "member out of range");
  const auto& s = st_[m];
  MemberOutcome out;
  out.value = s.terminated ? s.decision : s.b;
  out.has_value = s.terminated || s.got_decision_msg;
  out.decided = s.terminated;
  out.operative = s.operative;
  out.decision_round = s.decision_round;
  return out;
}

// ---------------------------------------------------------------------------
// OptimalMachine
// ---------------------------------------------------------------------------

OptimalMachine::OptimalMachine(OptimalConfig config,
                               std::vector<std::uint8_t> inputs)
    : core_(config, inputs) {}

void OptimalMachine::begin_round(std::uint32_t round) {
  core_.begin_round(round);
  rounds_seen_ = round + 1;
}

void OptimalMachine::round(sim::ProcessId p, sim::RoundIo<Msg>& io) {
  auto& scratch = scratch_in_[io.lane()];
  scratch.clear();
  for (const auto& msg : io.inbox()) {
    scratch.push_back(In{msg.from, &msg.payload});
  }
  IoOutbox out(io);
  core_.step(p, scratch, out, io.rng());
}

bool OptimalMachine::finished() const {
  if (rounds_seen_ >= core_.scheduled_rounds()) return true;
  if (faults_ != nullptr) {
    for (sim::ProcessId p = 0; p < core_.num_members(); ++p) {
      if (!faults_->is_corrupted(p) && !core_.terminated(p)) return false;
    }
    return true;
  }
  return core_.all_terminated();
}

}  // namespace omx::core
