// Packed knowledge view for the full-information exchange protocols.
//
// A view over member ids 0..n-1 is two word-packed bitsets: `known` marks
// ids whose input bit has been learned, `value` carries the bit (valid only
// where known). Set-union of two views is a word-wide OR; majority
// thresholding is two popcounts. The wire form (PackedFlood, shared
// immutable) carries both masks plus a bit size pre-computed to match the
// legacy FloodMsg billing exactly: 1 + sum over known ids of
// (field_bits(id) + 1) — so packed and legacy runs are bit-identical in
// Metrics and traces, not merely equivalent.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/bits.h"
#include "support/check.h"
#include "support/packed_bits.h"

namespace omx::core {

/// Immutable wire blob of a packed view: one allocation shared by every
/// fan-out copy of a broadcast (the packed analogue of CowVec<FloodPair>).
struct PackedFlood {
  /// Views holding at most this many pairs are stored inline (no dense
  /// word vectors at all). The first flood round is the hot case: every
  /// process broadcasts a 1-pair view, and each receiver walks all n of
  /// them — with the dense form that walk chases a heap vector per blob
  /// (~70 MB of scattered state at n=16384); inline, a blob is one cache
  /// line and round 1 runs out of LLC.
  static constexpr std::uint32_t kSparseMax = 4;

  std::uint32_t n = 0;
  std::uint64_t bits = 1;  // legacy-equivalent wire size, cached
  /// > 0: the view is the `sparse_count` pairs in `sparse` (id << 1 | bit,
  /// ascending id) and the dense vectors below are empty.
  std::uint32_t sparse_count = 0;
  std::array<std::uint64_t, kSparseMax> sparse{};
  std::vector<std::uint64_t> known;
  std::vector<std::uint64_t> value;
  /// Indices of the nonzero words of `known`, ascending. Relay rounds are
  /// sparse-ish (only newly-learned pairs are forwarded), so merges
  /// iterate this instead of every word: merging a k-pair blob costs O(k)
  /// words, not O(n/64).
  std::vector<std::uint32_t> nonzero;
};

class PackedView {
 public:
  PackedView() = default;
  explicit PackedView(std::uint32_t n) { reset(n); }

  /// Re-target at n members, empty. Capacity persists.
  void reset(std::uint32_t n) {
    n_ = n;
    known_.reset(n);
    value_.reset(n);
    known_count_ = 0;
    ones_ = 0;
  }

  /// Forget every pair, keeping size and capacity.
  void clear_keep_capacity() {
    known_.clear_all();
    value_.clear_all();
    known_count_ = 0;
    ones_ = 0;
  }

  std::uint32_t size() const { return n_; }
  std::uint64_t known_count() const { return known_count_; }
  std::uint64_t ones() const { return ones_; }
  std::uint64_t zeros() const { return known_count_ - ones_; }
  bool any() const { return known_count_ != 0; }
  bool full() const { return known_count_ == n_; }

  bool knows(std::uint32_t id) const { return known_.test(id); }
  std::uint8_t value_of(std::uint32_t id) const {
    OMX_CHECK(known_.test(id), "value_of an unknown id");
    return value_.test(id) ? 1 : 0;
  }

  /// Learn (id, bit); true iff the id was new.
  bool add(std::uint32_t id, std::uint8_t bit) {
    if (!known_.test_and_set(id)) return false;
    ++known_count_;
    if (bit != 0) {
      value_.set(id);
      ++ones_;
    }
    return true;
  }

  /// OR-merge an incoming wire view; ids new to this view are additionally
  /// accumulated into `fresh` (may be null). Returns the number of newly
  /// learned ids. O(words) regardless of how many pairs the wire carries.
  std::uint64_t merge_from(const PackedFlood& in, PackedView* fresh) {
    OMX_CHECK(in.n == n_, "packed view size mismatch");
    std::uint64_t learned = 0;
    if (in.sparse_count > 0) {
      for (std::uint32_t i = 0; i < in.sparse_count; ++i) {
        const auto id = static_cast<std::uint32_t>(in.sparse[i] >> 1);
        const auto bit = static_cast<std::uint8_t>(in.sparse[i] & 1u);
        if (add(id, bit)) {
          ++learned;
          if (fresh != nullptr) fresh->add(id, bit);
        }
      }
      return learned;
    }
    for (const std::uint32_t w : in.nonzero) {
      const std::uint64_t novel = in.known[w] & ~known_.word(w);
      if (novel == 0) continue;
      const std::uint64_t novel_ones = in.value[w] & novel;
      known_.or_word(w, novel);
      value_.or_word(w, novel_ones);
      learned += static_cast<std::uint64_t>(std::popcount(novel));
      ones_ += static_cast<std::uint64_t>(std::popcount(novel_ones));
      if (fresh != nullptr) {
        fresh->known_.or_word(w, novel);
        fresh->value_.or_word(w, novel_ones);
        fresh->known_count_ +=
            static_cast<std::uint64_t>(std::popcount(novel));
        fresh->ones_ += static_cast<std::uint64_t>(std::popcount(novel_ones));
      }
    }
    known_count_ += learned;
    return learned;
  }

  /// Snapshot this view into a shared immutable wire blob, with the
  /// legacy-equivalent bit size computed once (O(words)).
  std::shared_ptr<const PackedFlood> make_blob() const {
    auto blob = std::make_shared<PackedFlood>();
    blob->n = n_;
    if (known_count_ > 0 && known_count_ <= PackedFlood::kSparseMax) {
      std::uint64_t pair_bits = 0;
      for_each_pair([&](std::uint32_t id, std::uint8_t bit) {
        blob->sparse[blob->sparse_count++] =
            (static_cast<std::uint64_t>(id) << 1) | bit;
        pair_bits += field_bits(id) + 1;
      });
      blob->bits = 1 + pair_bits;
      return blob;
    }
    blob->known.assign(known_.words().begin(), known_.words().end());
    blob->value.assign(value_.words().begin(), value_.words().end());
    blob->bits = 1 + known_count_ + support::sum_field_bits(known_.words());
    blob->nonzero.reserve(blob->known.size());
    for (std::uint32_t w = 0; w < blob->known.size(); ++w) {
      if (blob->known[w] != 0) blob->nonzero.push_back(w);
    }
    return blob;
  }

  /// Visit every known (id, bit) pair in ascending id order.
  template <class Fn>
  void for_each_pair(Fn&& fn) const {
    known_.for_each_set([&](std::uint32_t id) {
      fn(id, static_cast<std::uint8_t>(value_.test(id) ? 1 : 0));
    });
  }

 private:
  std::uint32_t n_ = 0;
  std::uint64_t known_count_ = 0;
  std::uint64_t ones_ = 0;
  support::PackedBits known_;
  support::PackedBits value_;
};

}  // namespace omx::core
