// OptimalOmissionsConsensus (paper Algorithm 1, Theorems 1 and 5).
//
// The protocol, per epoch (of params.epochs(n,t) total):
//   1. GroupBitsAggregation (Algorithm 2): within each √n-group, a binary
//      tree of bags is assembled bottom-up; each tree layer costs one
//      3-round GroupRelay (push → ack → share). Sources that hear from
//      fewer than ⌊w/2⌋+1 group members become inoperative.
//   2. GroupBitsSpreading (Algorithm 3): operative processes gossip the
//      ⌈√n⌉ per-group (ones, zeros) counts along the sparse common graph G
//      for spread_rounds(n) rounds, forwarding each entry at most once per
//      link, killing links that fall silent, and going inoperative below
//      Δ/3 live in-links.
//   3. Biased-majority vote (lines 9–12): with estimated totals, fraction
//      of ones > 18/30 → b=1; < 15/30 → b=0; otherwise b = fresh coin
//      (the protocol's ONLY randomness — one bit per process per epoch).
//      Fraction > 27/30 or < 3/30 → decided.
// Tail (lines 14–20): operative deciders broadcast b; receivers adopt;
// undecided operative processes run the deterministic flood-set fallback.
//
// This class is payload-local (member indices 0..m-1) so Algorithm 4 can
// embed it on a subset of processes; OptimalMachine adapts it to the
// simulator and exposes the VoteProbe for the Theorem-2 adversary.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "adversary/probes.h"
#include "core/flood_fallback.h"
#include "core/io.h"
#include "core/messages.h"
#include "core/params.h"
#include "graph/comm_graph.h"
#include "groups/partition.h"
#include "groups/tree.h"
#include "rng/ledger.h"
#include "sim/adversary.h"
#include "sim/machine.h"

namespace omx::core {

struct OptimalConfig {
  Params params;
  /// Fault-tolerance parameter: schedule length (#epochs, fallback rounds).
  std::uint32_t t = 0;
  /// Algorithm 4 embedding: stop after the decision-collect round
  /// (Algorithm 1 line 16) and skip the deterministic fallback.
  bool truncated = false;
};

struct MemberOutcome {
  std::uint8_t value = 0;     // current b / decision
  bool has_value = false;     // decided, or received a decision broadcast
  bool decided = false;       // terminated with a decision
  bool operative = false;
  std::int64_t decision_round = -1;  // local round of decision, -1 if none
};

class OptimalCore {
 public:
  OptimalCore(OptimalConfig config, std::span<const std::uint8_t> inputs);

  std::uint32_t num_members() const { return m_; }
  /// Fixed schedule horizon in local rounds (after which every member has
  /// either decided or — faulty corner cases — holds its final value).
  std::uint32_t scheduled_rounds() const { return total_rounds_; }

  /// Schedule horizon as a pure function of the configuration — Algorithm 4
  /// needs it before constructing the embedded instance (every process must
  /// know every phase's length up-front).
  static std::uint32_t schedule_length(const Params& params, std::uint32_t n,
                                       std::uint32_t t, bool truncated);

  /// Advance to local round r (must be called with consecutive r from 0).
  void begin_round(std::uint32_t r);
  /// Step member m for the current round: consume `inbox` (messages sent in
  /// the previous round), then emit this round's sends.
  void step(std::uint32_t m, std::span<const In> inbox, Outbox& send,
            rng::Source& rng);

  bool all_terminated() const { return terminated_count() == m_; }
  std::uint32_t terminated_count() const {
    return terminated_count_.load(std::memory_order_relaxed);
  }
  MemberOutcome outcome(std::uint32_t m) const;

  // --- probe / test / experiment introspection ---
  bool votes_fresh() const { return votes_fresh_; }
  std::uint8_t value_of(std::uint32_t m) const { return st_[m].b; }
  bool operative(std::uint32_t m) const { return st_[m].operative; }
  bool decided_flag(std::uint32_t m) const { return st_[m].decided; }
  bool terminated(std::uint32_t m) const { return st_[m].terminated; }
  std::uint32_t operative_count() const;
  /// Operative count recorded at the end of each completed epoch (Lemma 7).
  const std::vector<std::uint32_t>& operative_history() const {
    return operative_history_;
  }
  /// (ones, zeros) estimates of each currently-operative member from the
  /// most recent completed epoch (for count-divergence property tests);
  /// members without a fresh estimate report nullopt.
  std::optional<std::pair<std::uint32_t, std::uint32_t>> last_estimate(
      std::uint32_t m) const;
  const graph::CommGraph& comm_graph() const { return *graph_; }
  const Params& params() const { return cfg_.params; }
  std::uint32_t epochs_total() const { return epochs_; }
  std::uint32_t epoch_rounds() const { return epoch_len_; }
  /// Directed dead links (member, neighbor) across all members — the
  /// spreading machinery may only kill links with a faulty endpoint.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dead_links() const;

 private:
  enum class Kind : std::uint8_t {
    AggPush,
    AggAck,
    AggShare,
    Spread,
    DecideBcast,
    DecideCollect,
    Fallback,
    Done,
  };
  struct Phase {
    Kind kind = Kind::Done;
    std::uint32_t epoch = 0;
    std::uint32_t stage = 0;         // tree layer (AggPush/Ack/Share)
    std::uint32_t spread_round = 0;  // within Spread
    std::uint32_t fallback_round = 0;
  };

  struct MemberState {
    std::uint8_t b = 0;
    bool operative = true;
    bool decided = false;
    bool terminated = false;
    bool got_decision_msg = false;
    std::uint8_t decision = 0;
    std::int64_t decision_round = -1;

    // Group geometry (cached).
    std::uint32_t group = 0;
    std::uint32_t idx_in_group = 0;
    std::uint32_t group_size = 0;

    // --- aggregation scratch (reset per stage) ---
    bool sourced = false;  // pushed this stage (was operative at push time)
    std::vector<std::uint32_t> push_senders;
    std::vector<std::uint8_t> child_valid;   // per layer-(j-1) bag index
    std::vector<std::uint32_t> child_ones;
    std::vector<std::uint32_t> child_zeros;
    std::uint32_t acks = 0;
    std::uint32_t shares = 0;
    std::uint8_t have = 0;  // bit0 left child value seen, bit1 right
    std::uint32_t lo = 0, lz = 0, ro = 0, rz = 0;

    // Current-layer counts of this member's bag.
    std::uint32_t cur_ones = 0;
    std::uint32_t cur_zeros = 0;
    bool estimate_fresh = false;
    std::uint32_t est_ones = 0, est_zeros = 0;

    // --- spreading state ---
    std::vector<std::uint8_t> pack_valid;   // per group (epoch-reset)
    std::vector<std::uint32_t> pack_ones;
    std::vector<std::uint32_t> pack_zeros;
    std::vector<std::uint8_t> link_dead;    // per neighbor slot (persistent)
    std::vector<std::uint8_t> sent_mask;    // [neighbor][group] (epoch-reset)
    std::vector<std::uint8_t> heard_from;   // per neighbor slot (round scratch)

    std::uint32_t last_reset_epoch = UINT32_MAX;
  };

  Phase phase_of(std::uint32_t r) const;
  void epoch_reset(MemberState& s, std::uint32_t epoch);
  void stage_reset(MemberState& s);
  void consume(std::uint32_t m, const Phase& prev, std::span<const In> inbox,
               rng::Source& rng);
  void produce(std::uint32_t m, const Phase& cur, Outbox& send);
  void decide(std::uint32_t m, std::uint8_t value);
  std::uint32_t neighbor_slot(std::uint32_t m, std::uint32_t from) const;
  void vote_update(std::uint32_t m, rng::Source& rng);

  OptimalConfig cfg_;
  std::uint32_t m_ = 0;  // member count
  std::shared_ptr<const groups::SqrtPartition> partition_;
  groups::TreeDecomposition tree_;
  std::shared_ptr<const graph::CommGraph> graph_;  // over member indices
  std::uint32_t delta_ = 0;
  std::uint32_t min_in_links_ = 0;  // Δ/3 operative rule
  std::uint32_t epochs_ = 0;
  std::uint32_t layers_ = 0;       // tree layers L
  std::uint32_t agg_len_ = 0;      // 3·(L-1)
  std::uint32_t spread_len_ = 0;   // S
  std::uint32_t epoch_len_ = 0;    // agg_len + S
  std::uint32_t decide_bcast_round_ = 0;
  std::uint32_t fallback_start_ = 0;
  std::uint32_t total_rounds_ = 0;

  std::uint32_t cur_round_ = 0;
  bool votes_fresh_ = false;
  bool pending_epoch_record_ = false;
  // step() runs for different members concurrently under a sharded engine;
  // the per-round final count is order-independent, so relaxed increments
  // keep determinism. (The core is never copied: OptimalMachine embeds it,
  // Param/MultiValue hold it behind unique_ptr.)
  std::atomic<std::uint32_t> terminated_count_{0};

  std::vector<MemberState> st_;
  FloodFallback fallback_;
  std::vector<std::uint32_t> operative_history_;
};

/// Simulator adapter for a standalone Algorithm 1 run over all n processes,
/// exposing the VoteProbe used by the Theorem-2 coin-hiding adversary.
class OptimalMachine final : public sim::Machine<Msg>,
                             public adversary::VoteProbe {
 public:
  OptimalMachine(OptimalConfig config, std::vector<std::uint8_t> inputs);

  OptimalCore& core() { return core_; }
  const OptimalCore& core() const { return core_; }

  /// Optional: stop as soon as every *non-corrupted* process terminated
  /// (the consensus spec's termination clause). Wire with runner.faults().
  void set_fault_view(const sim::FaultState* faults) { faults_ = faults; }

  // sim::Machine
  std::uint32_t num_processes() const override { return core_.num_members(); }
  void set_lanes(unsigned lanes) override { scratch_in_.resize(lanes); }
  void begin_round(std::uint32_t round) override;
  void round(sim::ProcessId p, sim::RoundIo<Msg>& io) override;
  bool finished() const override;

  // adversary::VoteProbe
  std::uint32_t probe_num_processes() const override {
    return core_.num_members();
  }
  std::uint8_t probe_value(sim::ProcessId p) const override {
    return core_.value_of(p);
  }
  bool probe_counts_in_vote(sim::ProcessId p) const override {
    return core_.operative(p) && !core_.terminated(p);
  }
  bool probe_votes_fresh() const override { return core_.votes_fresh(); }

 private:
  OptimalCore core_;
  const sim::FaultState* faults_ = nullptr;
  std::uint32_t rounds_seen_ = 0;
  std::vector<std::vector<In>> scratch_in_{1};  // one buffer per lane
};

}  // namespace omx::core
