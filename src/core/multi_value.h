// Multi-valued consensus on top of binary OptimalOmissionsConsensus.
//
// The paper's algorithms are binary; applications (the intro's distributed
// ledgers and databases) want to agree on values. The classic bit-by-bit
// reduction works cleanly in the omission model because faulty processes
// never lie:
//
//   for k = L-1 .. 0 (most significant first):
//     run Algorithm 1 (full mode, probability-1) on bit k of each
//     process's current candidate value  -> decided bit d_k;
//     one broadcast round: processes whose candidate agrees with the
//     decided prefix so far announce their candidate;
//     one adopt round: processes whose candidate mismatches d_k adopt any
//     announced candidate that is consistent with the decided prefix.
//
// Invariants (see multi_value_test):
//   * every candidate is always some process's ORIGINAL input (omission
//     faults follow the protocol, so even faulty announcements are honest
//     candidates) -> the decision is an input of some process;
//   * all non-faulty candidates agree with the decided prefix entering
//     every phase: the binary validity clause guarantees a consistent
//     announcer exists whenever someone must adopt;
//   * unanimous inputs short-circuit every phase deterministically (zero
//     random bits), inheriting the paper's validity proof.
//
// Cost: L × (Algorithm-1 schedule + 2 rounds). Agreement/termination with
// probability 1 via the inner protocol's own fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/messages.h"
#include "core/optimal_core.h"
#include "core/params.h"
#include "sim/adversary.h"
#include "sim/machine.h"

namespace omx::core {

struct MultiValueConfig {
  Params params;
  std::uint32_t t = 0;
  /// Value width in bits (values must be < 2^bits), 1..32.
  std::uint32_t bits = 8;
};

struct MultiValueOutcome {
  std::uint32_t value = 0;
  bool decided = false;
  std::int64_t decision_round = -1;
};

class MultiValueMachine final : public sim::Machine<Msg> {
 public:
  MultiValueMachine(MultiValueConfig config, std::vector<std::uint32_t> inputs);

  void set_fault_view(const sim::FaultState* faults) { faults_ = faults; }
  std::uint32_t scheduled_rounds() const { return total_rounds_; }
  MultiValueOutcome outcome(sim::ProcessId p) const;

  std::uint32_t num_processes() const override { return n_; }
  void set_lanes(unsigned lanes) override { scratch_.resize(lanes); }
  void begin_round(std::uint32_t round) override;
  void round(sim::ProcessId p, sim::RoundIo<Msg>& io) override;
  bool finished() const override;

 private:
  struct PState {
    std::uint32_t candidate = 0;
    std::uint32_t decided_prefix = 0;  // decided bits so far (in place)
    std::uint32_t prefix_mask = 0;     // which bit positions are decided
    bool terminated = false;
    std::int64_t decision_round = -1;
  };

  std::uint32_t bit_of(std::uint32_t value, std::uint32_t phase) const {
    return (value >> (cfg_.bits - 1 - phase)) & 1u;
  }
  std::uint32_t mask_of(std::uint32_t phase) const {
    return 1u << (cfg_.bits - 1 - phase);
  }

  MultiValueConfig cfg_;
  std::uint32_t n_ = 0;
  std::uint32_t inner_len_ = 0;   // full-mode Algorithm 1 schedule
  std::uint32_t phase_len_ = 0;   // inner + announce + adopt
  std::uint32_t total_rounds_ = 0;
  std::uint32_t cur_round_ = 0;
  std::uint32_t rounds_seen_ = 0;

  std::vector<PState> st_;
  std::unique_ptr<OptimalCore> inner_;
  std::uint32_t inner_phase_ = UINT32_MAX;
  std::vector<std::vector<In>> scratch_{1};  // one buffer per lane
  const sim::FaultState* faults_ = nullptr;
};

}  // namespace omx::core
