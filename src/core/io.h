// Local I/O plumbing shared by the core protocol state machines.
//
// Core protocols operate on *member-local* indices 0..m-1 (Algorithm 4 runs
// Algorithm 1 on a subset of processes); the machine adapters translate
// between local indices and global sim::ProcessId.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "core/messages.h"
#include "sim/machine.h"
#include "support/check.h"

namespace omx::core {

/// One delivered message, as seen by a core protocol: local sender index
/// plus a borrowed payload.
struct In {
  std::uint32_t from;
  const Msg* msg;
};

/// Send callback: (local destination index, payload).
using SendFn = std::function<void(std::uint32_t, Msg)>;

/// Send surface handed to the core state machines. Destinations are
/// member-local indices 0..m-1; `all` and `many` let identical-payload
/// fan-outs reach the engine's broadcast fast-path (the payload is stored
/// once on the wire) while per-receiver payloads keep using `to`.
class Outbox {
 public:
  virtual ~Outbox() = default;

  /// Send to one member.
  virtual void to(std::uint32_t q, Msg m) = 0;

  /// Send one payload to every member except the stepping process, in
  /// ascending member order.
  virtual void all(Msg m) = 0;

  /// Send one payload to the listed members, in list order.
  virtual void many(std::span<const std::uint32_t> qs, const Msg& m) = 0;
};

/// Outbox over a plain callback — used by unit tests that capture sends
/// into vectors. Fan-outs degrade to the equivalent unicast loop.
class FnOutbox final : public Outbox {
 public:
  FnOutbox(std::uint32_t members, std::uint32_t self, SendFn send)
      : members_(members), self_(self), send_(std::move(send)) {}

  void to(std::uint32_t q, Msg m) override { send_(q, std::move(m)); }

  void all(Msg m) override {
    for (std::uint32_t q = 0; q < members_; ++q) {
      if (q != self_) send_(q, m);
    }
  }

  void many(std::span<const std::uint32_t> qs, const Msg& m) override {
    for (std::uint32_t q : qs) send_(q, m);
  }

 private:
  std::uint32_t members_;
  std::uint32_t self_;
  SendFn send_;
};

/// Outbox over the engine's RoundIo. Two modes:
///   * direct — member-local index == global ProcessId (a core protocol run
///     on the whole system);
///   * embedded — the protocol runs on a member list (Algorithm 4 runs
///     Algorithm 1 on a slice); local indices are translated through
///     `members`, and `many` uses a caller-owned scratch vector so steady
///     state does not allocate.
class IoOutbox final : public Outbox {
 public:
  /// Direct mode: local index q is the global process id.
  explicit IoOutbox(sim::RoundIo<Msg>& io)
      : io_(io), members_(), scratch_(nullptr) {}

  /// Embedded mode: members[q] is the global id of local member q; the
  /// stepping process must itself appear in `members`.
  IoOutbox(sim::RoundIo<Msg>& io, std::span<const sim::ProcessId> members,
           std::vector<sim::ProcessId>* scratch)
      : io_(io), members_(members), scratch_(scratch) {
    OMX_REQUIRE(scratch != nullptr, "embedded IoOutbox needs a scratch");
  }

  void to(std::uint32_t q, Msg m) override {
    io_.send(embedded() ? members_[q] : q, std::move(m));
  }

  void all(Msg m) override {
    if (embedded()) {
      io_.send_to_except(members_, io_.self(), std::move(m));
    } else {
      io_.send_to_all(std::move(m));
    }
  }

  void many(std::span<const std::uint32_t> qs, const Msg& m) override {
    if (embedded()) {
      scratch_->clear();
      scratch_->reserve(qs.size());
      for (std::uint32_t q : qs) scratch_->push_back(members_[q]);
      io_.send_to(*scratch_, m);
    } else {
      io_.send_to(qs, m);
    }
  }

 private:
  bool embedded() const { return !members_.empty(); }

  sim::RoundIo<Msg>& io_;
  std::span<const sim::ProcessId> members_;
  std::vector<sim::ProcessId>* scratch_;
};

}  // namespace omx::core
