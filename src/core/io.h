// Local I/O plumbing shared by the core protocol state machines.
//
// Core protocols operate on *member-local* indices 0..m-1 (Algorithm 4 runs
// Algorithm 1 on a subset of processes); the machine adapters translate
// between local indices and global sim::ProcessId.
#pragma once

#include <cstdint>
#include <functional>

#include "core/messages.h"

namespace omx::core {

/// One delivered message, as seen by a core protocol: local sender index
/// plus a borrowed payload.
struct In {
  std::uint32_t from;
  const Msg* msg;
};

/// Send callback: (local destination index, payload).
using SendFn = std::function<void(std::uint32_t, Msg)>;

}  // namespace omx::core
