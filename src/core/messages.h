// Message types of the core protocols (Algorithms 1–4).
//
// One variant serves Algorithm 1, Algorithm 4 (which embeds Algorithm 1)
// and the flood-set fallback; the lock-step schedule guarantees that only
// one message kind family is in flight in any given round, so no extra
// framing is needed. Bit accounting follows support/bits.h: each field is
// billed at its minimal self-delimiting width, mirroring the paper's
// "counts are O(log n)-bit numbers" bookkeeping.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "core/packed_view.h"
#include "support/bits.h"
#include "support/cow_vec.h"
#include "support/run_set.h"

namespace omx::core {

/// GroupRelay round 1: a source pushes its child-bag counts to the group.
struct RelayPush {
  std::uint16_t stage;      // tree layer being assembled
  std::uint32_t child_bag;  // index of the child bag the counts describe
  std::uint32_t ones;
  std::uint32_t zeros;
  std::uint64_t bit_size() const {
    return field_bits(stage) + field_bits(child_bag) + field_bits(ones) +
           field_bits(zeros);
  }
};

/// GroupRelay round 2: a transmitter confirms receipt to a source.
struct RelayAck {
  std::uint16_t stage;
  std::uint64_t bit_size() const { return field_bits(stage); }
};

/// GroupRelay round 3: a transmitter sends a source the aggregated counts
/// of both children of the source's current bag (presence flags per child).
struct RelayShare {
  std::uint16_t stage;
  std::uint8_t have_mask;  // bit 0: left child present, bit 1: right child
  std::uint32_t left_ones = 0;
  std::uint32_t left_zeros = 0;
  std::uint32_t right_ones = 0;
  std::uint32_t right_zeros = 0;
  std::uint64_t bit_size() const {
    std::uint64_t bits = field_bits(stage) + 2;
    if (have_mask & 1)
      bits += field_bits(left_ones) + field_bits(left_zeros);
    if (have_mask & 2)
      bits += field_bits(right_ones) + field_bits(right_zeros);
    return bits;
  }
};

/// One entry of the BitPacks array: a group's operative counts.
struct SpreadEntry {
  std::uint32_t group;
  std::uint32_t ones;
  std::uint32_t zeros;
};

/// GroupBitsSpreading gossip message: BitPacks entries not yet sent on this
/// link. An empty message is a heartbeat (keeps the link alive).
struct SpreadMsg {
  std::vector<SpreadEntry> entries;
  std::uint64_t bit_size() const {
    std::uint64_t bits = 1;  // heartbeat / framing
    for (const auto& e : entries)
      bits += field_bits(e.group) + field_bits(e.ones) + field_bits(e.zeros);
    return bits;
  }
};

/// A one-bit decision broadcast (Algorithm 1 line 14, fallback decision,
/// Algorithm 4 safety-rule vote).
struct DecisionMsg {
  std::uint8_t value;
  std::uint64_t bit_size() const { return 1; }
};

/// Flood-set fallback: (process id, input bit) pairs newly learned.
struct FloodPair {
  std::uint32_t id;
  std::uint8_t value;
};
struct FloodMsg {
  /// Copy-on-write: a flooded pair list is fanned out to n-1 receivers by
  /// value, and a deep copy per receiver would be Θ(n²) bytes per round.
  support::CowVec<FloodPair> pairs;
  std::uint64_t bit_size() const {
    std::uint64_t bits = 1;
    for (const auto& p : pairs) bits += field_bits(p.id) + 1;
    return bits;
  }
};

/// Packed flood-set wire form: the same logical pair set as a FloodMsg,
/// carried as two word-packed masks behind one shared allocation. bit_size
/// is cached at construction and equals the legacy billing for the same id
/// set (1 + sum of field_bits(id) + 1), so packed runs are bit-identical
/// to legacy runs in Metrics and trace bytes.
struct PackedFloodMsg {
  std::shared_ptr<const PackedFlood> view;
  std::uint64_t bit_size() const { return view == nullptr ? 1 : view->bits; }
};

/// Run-length-coded gossip delta: ids { (x + rot) mod n : x in *delta }
/// with their input bits implied by the receiver's global input lookup —
/// the packed analogue of a doubling-gossip FloodMsg reply. bit_size and
/// the logical pair count are cached at construction (shifted_pair_bits),
/// matching the legacy reply billing pair-for-pair. An empty delta is the
/// 1-bit sign-of-life heartbeat, exactly like an empty FloodMsg.
struct RunMsg {
  support::RunSetPtr delta;
  std::uint32_t rot = 0;
  std::uint32_t pairs = 0;
  std::uint64_t bits = 1;
  std::uint64_t bit_size() const { return bits; }
};

/// Multi-valued consensus: a candidate value announcement.
struct ValueMsg {
  std::uint32_t value;
  std::uint64_t bit_size() const { return field_bits(value) + 1; }
};

/// Inquiry token of the crash-amortized doubling gossip baseline (§B.3
/// demonstration): "send me what you know".
struct InquireMsg {
  std::uint64_t bit_size() const { return 1; }
};

/// Algorithm 4 decision gossip along G: either empty (heartbeat) or the
/// super-process's consensus decision.
struct GossipMsg {
  std::int8_t value;  // -1 = no decision yet
  std::uint64_t bit_size() const { return value < 0 ? 1 : 2; }
};

using Msg = std::variant<RelayPush, RelayAck, RelayShare, SpreadMsg,
                         DecisionMsg, FloodMsg, GossipMsg, InquireMsg,
                         ValueMsg, PackedFloodMsg, RunMsg>;

std::uint64_t bit_size(const Msg& m);

}  // namespace omx::core
