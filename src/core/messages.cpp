#include "core/messages.h"

namespace omx::core {

std::uint64_t bit_size(const Msg& m) {
  return std::visit([](const auto& inner) { return inner.bit_size(); }, m);
}

}  // namespace omx::core
