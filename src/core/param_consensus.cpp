#include "core/param_consensus.h"

#include <algorithm>

#include "support/bits.h"
#include "support/check.h"

namespace omx::core {

ParamMachine::ParamMachine(ParamConfig config,
                           std::vector<std::uint8_t> inputs)
    : cfg_(config),
      n_(static_cast<std::uint32_t>(inputs.size())),
      fallback_(static_cast<std::uint32_t>(inputs.size()), config.t) {
  OMX_REQUIRE(n_ >= 2, "ParamMachine needs n >= 2");
  OMX_REQUIRE(cfg_.x >= 1 && cfg_.x <= n_, "x must be in [1, n]");
  for (std::uint8_t b : inputs) OMX_REQUIRE(b <= 1, "inputs must be bits");

  group_width_ = static_cast<std::uint32_t>(ceil_div(n_, cfg_.x));
  num_groups_ = static_cast<std::uint32_t>(ceil_div(n_, group_width_));
  graph_ = graph::CommGraph::common_for_shared(n_, cfg_.params.delta(n_));
  min_in_links_ = cfg_.params.operative_min_degree(n_);
  gossip_len_ = cfg_.params.gossip_rounds(n_);

  // Phase layout: inner run + gossip + 1 settle round per super-process,
  // then the safety tail (send, collect, final broadcast, final collect)
  // and the deterministic fallback.
  std::uint32_t r = 0;
  phase_start_.resize(num_groups_);
  inner_len_.resize(num_groups_);
  for (std::uint32_t i = 0; i < num_groups_; ++i) {
    const std::uint32_t lo = i * group_width_;
    const std::uint32_t size = std::min(n_, lo + group_width_) - lo;
    const std::uint32_t ti = Params::max_t_optimal(size);
    phase_start_[i] = r;
    inner_len_[i] =
        OptimalCore::schedule_length(cfg_.params, size, ti, /*truncated=*/true);
    r += inner_len_[i] + gossip_len_ + 1;
  }
  safety_send_round_ = r;
  fallback_start_ = r + 4;
  total_rounds_ = fallback_start_ + fallback_.total_rounds();

  st_.resize(n_);
  for (std::uint32_t p = 0; p < n_; ++p) {
    auto& s = st_[p];
    s.b = inputs[p];
    const auto deg = graph_->degree(p);
    s.link_dead.assign(deg, 0);
    s.heard_from.assign(deg, 0);
  }
}

ParamMachine::Phase ParamMachine::phase_of(std::uint32_t r) const {
  Phase ph;
  if (r < safety_send_round_) {
    // Find the phase containing r.
    auto it = std::upper_bound(phase_start_.begin(), phase_start_.end(), r);
    const auto i = static_cast<std::uint32_t>(it - phase_start_.begin()) - 1;
    ph.phase = i;
    const std::uint32_t rr = r - phase_start_[i];
    if (rr < inner_len_[i]) {
      ph.kind = Kind::Inner;
      ph.inner_round = rr;
    } else if (rr < inner_len_[i] + gossip_len_) {
      ph.kind = Kind::Gossip;
      ph.gossip_round = rr - inner_len_[i];
    } else {
      ph.kind = Kind::Settle;
    }
    return ph;
  }
  if (r == safety_send_round_) { ph.kind = Kind::SafetySend; return ph; }
  if (r == safety_send_round_ + 1) { ph.kind = Kind::SafetyCollect; return ph; }
  if (r == safety_send_round_ + 2) { ph.kind = Kind::FinalBcast; return ph; }
  if (r == safety_send_round_ + 3) { ph.kind = Kind::FinalCollect; return ph; }
  if (r >= fallback_start_ && r < fallback_start_ + fallback_.total_rounds()) {
    ph.kind = Kind::Fallback;
    ph.fallback_round = r - fallback_start_;
    return ph;
  }
  ph.kind = Kind::Done;
  return ph;
}

void ParamMachine::begin_round(std::uint32_t round) {
  cur_round_ = round;
  rounds_seen_ = round + 1;
  const Phase cur = phase_of(round);

  if (cur.kind == Kind::Inner) {
    if (cur.phase != inner_phase_) {
      // Phase start: build the embedded truncated instance over SP_i with
      // the members' current candidate values as inputs.
      inner_phase_ = cur.phase;
      const std::uint32_t lo = cur.phase * group_width_;
      const std::uint32_t hi = std::min(n_, lo + group_width_);
      inner_members_.clear();
      std::vector<std::uint8_t> inner_inputs;
      for (std::uint32_t p = lo; p < hi; ++p) {
        inner_members_.push_back(p);
        inner_inputs.push_back(st_[p].b);
      }
      OptimalConfig icfg;
      icfg.params = cfg_.params;
      // The truncated embedding relies on the fixed inner schedule; the
      // early-decide extension is an outer-protocol feature only.
      icfg.params.early_decide = false;
      icfg.t = Params::max_t_optimal(
          static_cast<std::uint32_t>(inner_members_.size()));
      icfg.truncated = true;
      inner_ = std::make_unique<OptimalCore>(
          icfg, std::span<const std::uint8_t>(inner_inputs));
      OMX_CHECK(inner_->scheduled_rounds() == inner_len_[cur.phase],
                "inner schedule mismatch");
    }
    inner_->begin_round(cur.inner_round);
    return;
  }

  if (inner_ != nullptr) {
    // First round after an inner run: lines 7-8 — members take the inner
    // outcome as the phase's consensus decision, everyone else ⊥. (Each
    // assignment reads only that process's local inner state.)
    for (auto& s : st_) s.consensus_decision = -1;
    for (std::uint32_t i = 0; i < inner_members_.size(); ++i) {
      const auto out = inner_->outcome(i);
      auto& s = st_[inner_members_[i]];
      if (out.has_value) {
        s.b = out.value;
        s.consensus_decision = static_cast<std::int8_t>(out.value);
      }
    }
    inner_.reset();
  }
}

void ParamMachine::decide(sim::ProcessId p, std::uint8_t value) {
  auto& s = st_[p];
  OMX_CHECK(!s.terminated, "double decision");
  s.terminated = true;
  s.decision = value;
  s.b = value;
  s.decision_round = static_cast<std::int64_t>(cur_round_);
  terminated_count_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t ParamMachine::neighbor_slot(sim::ProcessId p,
                                          sim::ProcessId from) const {
  const auto nb = graph_->neighbors(p);
  const auto it = std::lower_bound(nb.begin(), nb.end(), from);
  OMX_CHECK(it != nb.end() && *it == from,
            "gossip message from a non-neighbor");
  return static_cast<std::uint32_t>(it - nb.begin());
}

void ParamMachine::consume(sim::ProcessId p, const Phase& prev,
                           std::span<const In> inbox) {
  auto& s = st_[p];
  switch (prev.kind) {
    case Kind::Gossip: {
      if (!s.operative) break;  // idle until line 25
      std::fill(s.heard_from.begin(), s.heard_from.end(), 0);
      for (const In& in : inbox) {
        const auto* gm = std::get_if<GossipMsg>(in.msg);
        if (gm == nullptr) continue;
        const std::uint32_t slot = neighbor_slot(p, in.from);
        if (s.link_dead[slot]) continue;
        s.heard_from[slot] = 1;
        if (gm->value >= 0 && s.consensus_decision < 0) {
          s.consensus_decision = gm->value;
        }
      }
      std::uint32_t received = 0;
      for (std::size_t slot = 0; slot < s.heard_from.size(); ++slot) {
        if (s.heard_from[slot]) ++received;
        else if (!s.link_dead[slot]) s.link_dead[slot] = 1;
      }
      if (received < min_in_links_) {
        s.operative = false;
        break;
      }
      if (prev.gossip_round == gossip_len_ - 1 && s.consensus_decision >= 0) {
        s.b = static_cast<std::uint8_t>(s.consensus_decision);  // line 13
      }
      break;
    }
    case Kind::SafetySend: {
      if (!s.operative) break;
      std::uint64_t ones = 0, zeros = 0;
      for (const In& in : inbox) {
        if (const auto* dm = std::get_if<DecisionMsg>(in.msg)) {
          if (dm->value == 1) ++ones;
          else ++zeros;
        }
      }
      const std::uint64_t tot = ones + zeros;
      if (tot == 0) break;
      // Lines 19-22 (no randomness in the safety rule).
      if (30 * ones > 18 * tot) s.b = 1;
      else if (30 * ones < 15 * tot) s.b = 0;
      if (30 * ones > 27 * tot || 30 * ones < 3 * tot) s.decided = true;
      break;
    }
    case Kind::FinalBcast: {
      // Lines 25-26.
      bool received = false;
      std::uint8_t rv = 0;
      for (const In& in : inbox) {
        if (const auto* dm = std::get_if<DecisionMsg>(in.msg)) {
          if (!received) { received = true; rv = dm->value; }
        }
      }
      if (!(s.operative && s.decided) && received) {
        s.b = rv;
        s.got_decision_msg = true;
      }
      if (s.decided || (!s.operative && received)) {
        decide(p, s.b);
      }
      if (!s.terminated && s.operative && !s.decided) {
        fallback_.set_participant(p, s.b);
      }
      break;
    }
    case Kind::Inner:
    case Kind::Settle:
    case Kind::SafetyCollect:
    case Kind::FinalCollect:
    case Kind::Fallback:
    case Kind::Done:
      break;
  }
}

void ParamMachine::produce(sim::ProcessId p, const Phase& cur,
                           sim::RoundIo<Msg>& io) {
  auto& s = st_[p];
  switch (cur.kind) {
    case Kind::Gossip: {
      if (!s.operative) break;
      const auto nb = graph_->neighbors(p);
      auto& targets = scratch_targets_[io.lane()];
      targets.clear();
      for (std::uint32_t slot = 0; slot < nb.size(); ++slot) {
        if (!s.link_dead[slot]) targets.push_back(nb[slot]);
      }
      io.send_to(targets, GossipMsg{s.consensus_decision});
      break;
    }
    case Kind::SafetySend: {
      if (!s.operative) break;
      // Includes self: the process's own bit counts (line 18).
      io.send_to_all(DecisionMsg{s.b}, /*include_self=*/true);
      break;
    }
    case Kind::FinalBcast: {
      if (s.operative && s.decided) {
        io.send_to_all(DecisionMsg{s.b});
      }
      break;
    }
    case Kind::Inner:
    case Kind::Settle:
    case Kind::SafetyCollect:
    case Kind::FinalCollect:
    case Kind::Fallback:
    case Kind::Done:
      break;
  }
}

void ParamMachine::round(sim::ProcessId p, sim::RoundIo<Msg>& io) {
  auto& s = st_[p];
  if (s.terminated) return;
  const Phase cur = phase_of(cur_round_);

  auto& inbox_scratch = inner_inbox_[io.lane()];
  if (cur.kind == Kind::Fallback) {
    inbox_scratch.clear();
    for (const auto& msg : io.inbox()) {
      inbox_scratch.push_back(In{msg.from, &msg.payload});
    }
    IoOutbox out(io);
    fallback_.step(p, cur.fallback_round, inbox_scratch, out);
    if (fallback_.has_decision(p)) decide(p, fallback_.decision(p));
    return;
  }

  if (cur.kind == Kind::Inner) {
    const std::uint32_t lo = cur.phase * group_width_;
    const std::uint32_t hi = std::min(n_, lo + group_width_);
    if (p < lo || p >= hi || !s.operative) return;  // idle (line 6 / 10)
    inbox_scratch.clear();
    for (const auto& msg : io.inbox()) {
      OMX_CHECK(msg.from >= lo && msg.from < hi,
                "non-member message during an inner run");
      inbox_scratch.push_back(In{msg.from - lo, &msg.payload});
    }
    IoOutbox out(io, inner_members_, &scratch_targets_[io.lane()]);
    inner_->step(p - lo, inbox_scratch, out, io.rng());
    return;
  }

  if (cur_round_ > 0) {
    inbox_scratch.clear();
    for (const auto& msg : io.inbox()) {
      inbox_scratch.push_back(In{msg.from, &msg.payload});
    }
    consume(p, phase_of(cur_round_ - 1), inbox_scratch);
  }
  if (!st_[p].terminated && cur.kind != Kind::Done) {
    produce(p, cur, io);
  }
}

bool ParamMachine::finished() const {
  if (rounds_seen_ >= total_rounds_) return true;
  if (faults_ != nullptr) {
    for (sim::ProcessId p = 0; p < n_; ++p) {
      if (!faults_->is_corrupted(p) && !st_[p].terminated) return false;
    }
    return true;
  }
  return terminated_count_.load(std::memory_order_relaxed) == n_;
}

MemberOutcome ParamMachine::outcome(sim::ProcessId p) const {
  OMX_REQUIRE(p < n_, "process out of range");
  const auto& s = st_[p];
  MemberOutcome out;
  out.value = s.terminated ? s.decision : s.b;
  out.has_value = s.terminated || s.got_decision_msg;
  out.decided = s.terminated;
  out.operative = s.operative;
  out.decision_round = s.decision_round;
  return out;
}

std::uint32_t ParamMachine::operative_count() const {
  std::uint32_t count = 0;
  for (const auto& s : st_) count += s.operative ? 1 : 0;
  return count;
}

std::uint8_t ParamMachine::probe_value(sim::ProcessId p) const {
  if (inner_ != nullptr) {
    const std::uint32_t lo = inner_phase_ * group_width_;
    if (p >= lo && p - lo < inner_->num_members()) {
      return inner_->value_of(p - lo);
    }
  }
  return st_[p].b;
}

bool ParamMachine::probe_counts_in_vote(sim::ProcessId p) const {
  if (inner_ == nullptr) return false;
  const std::uint32_t lo = inner_phase_ * group_width_;
  if (p < lo || p - lo >= inner_->num_members()) return false;
  const std::uint32_t local = p - lo;
  return st_[p].operative && inner_->operative(local) &&
         !inner_->terminated(local);
}

bool ParamMachine::probe_votes_fresh() const {
  return inner_ != nullptr && inner_->votes_fresh();
}

}  // namespace omx::core
