// Tunable constants of the paper's algorithms.
//
// The paper proves its guarantees with very conservative constants
// (Δ = 832·log n, 8·log n spreading rounds, (t/√n)·log n epochs). Those are
// fine for asymptotics but degenerate at laptop scale: at n = 1024,
// Δ ≈ 8300 > n, i.e. the "sparse" graph is complete. Every constant is
// therefore a field here, with two presets:
//   * paper()      — the proof constants (graph capped at complete);
//   * practical()  — calibrated constants that keep the graph genuinely
//                    sparse and make the √n / n² scaling shapes measurable,
//                    while preserving every structural property the test
//                    suite checks (operative lower bound, count-divergence
//                    bound, agreement with probability 1 via the fallback).
#pragma once

#include <cstdint>

namespace omx::core {

struct Params {
  /// Expected graph degree Δ = delta_factor * ceil(log2 n), capped at n-1.
  double delta_factor = 4.0;
  /// GroupBitsSpreading rounds = spread_factor * ceil(log2 n) (paper: 8).
  double spread_factor = 3.0;
  /// Epochs = max(1, ceil(t/√n)) * ceil(epoch_factor * log2 n) (paper: 1·log n).
  /// Slightly above 1: each coin epoch unifies with probability ~1/2, so a
  /// few extra epochs push the no-decision (fallback) probability down at
  /// the small n a laptop runs (the paper's whp statement is asymptotic).
  double epoch_factor = 1.25;
  /// Gossip rounds in Algorithm 4's decision flooding (paper: 2·log n).
  double gossip_factor = 2.0;
  /// Minimum number of epochs regardless of t (convergence needs a few).
  std::uint32_t min_epochs = 2;
  /// Extension (paper §6 "improve communication performance in case of
  /// smaller number of failures"): a process that sets `decided` broadcasts
  /// its value immediately instead of waiting for the full epoch schedule,
  /// and every process decides on first receipt. Safe by Lemma 11 (any
  /// decider's value equals the unified operative value): if any non-faulty
  /// process decides early its broadcast reaches every non-faulty process;
  /// if only faulty processes decided, their silence afterwards is
  /// indistinguishable from omissions already charged to the adversary.
  /// Off by default — the paper's Algorithm 1 runs the fixed schedule.
  bool early_decide = false;

  static Params paper();
  static Params practical();

  std::uint32_t delta(std::uint32_t n) const;
  std::uint32_t spread_rounds(std::uint32_t n) const;
  std::uint32_t epochs(std::uint32_t n, std::uint32_t t) const;
  std::uint32_t gossip_rounds(std::uint32_t n) const;
  /// The operative threshold of GroupBitsSpreading: Δ/3.
  std::uint32_t operative_min_degree(std::uint32_t n) const;
  /// Largest t Algorithm 1 tolerates: t < n/30.
  static std::uint32_t max_t_optimal(std::uint32_t n);
  /// Largest t Algorithm 4 tolerates: t < n/60.
  static std::uint32_t max_t_param(std::uint32_t n);
};

}  // namespace omx::core
