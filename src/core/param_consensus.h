// ParamOmissions (paper Algorithm 4, Theorems 3 and 8): the
// time ↔ randomness trade-off.
//
// The process set is split into x super-processes SP_1..SP_x of size
// ⌈n/x⌉. In x round-robin phases, the members of SP_i run a *truncated*
// OptimalOmissionsConsensus among themselves (fixed schedule, fallback
// disabled), then the phase's decision — if any — is flooded along the
// common sparse graph G for gossip_rounds(n) rounds; every operative
// process adopts it as its input for all later phases. A final all-to-all
// safety rule (lines 15-30) lifts correctness to probability 1, falling
// back to the deterministic flood-set protocol in the whp-never case.
//
// Randomness trade-off: each inner run draws Õ((n/x)^{3/2}) bits, so the
// whole execution draws Õ(n·√(n/x)) bits while taking Õ(√(n·x)) rounds —
// the T × R = Θ̃(n²) spectrum of Table 1 row "Thm 3".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/probes.h"
#include "core/flood_fallback.h"
#include "core/messages.h"
#include "core/optimal_core.h"
#include "core/params.h"
#include "graph/comm_graph.h"
#include "sim/adversary.h"
#include "sim/machine.h"

namespace omx::core {

struct ParamConfig {
  Params params;
  /// Fault-tolerance parameter (t < n/60 for the paper's guarantees).
  std::uint32_t t = 0;
  /// Number of super-processes x in [1, n]. x = 1 degenerates to a single
  /// truncated Algorithm-1 run plus the safety tail; larger x trades time
  /// for randomness.
  std::uint32_t x = 1;
};

class ParamMachine final : public sim::Machine<Msg>,
                           public adversary::VoteProbe {
 public:
  ParamMachine(ParamConfig config, std::vector<std::uint8_t> inputs);

  /// Stop as soon as every non-corrupted process terminated.
  void set_fault_view(const sim::FaultState* faults) { faults_ = faults; }

  std::uint32_t scheduled_rounds() const { return total_rounds_; }
  std::uint32_t num_phases() const {
    return static_cast<std::uint32_t>(phase_start_.size());
  }

  MemberOutcome outcome(sim::ProcessId p) const;
  bool operative(sim::ProcessId p) const { return st_[p].operative; }
  std::uint32_t operative_count() const;

  // sim::Machine
  std::uint32_t num_processes() const override { return n_; }
  void set_lanes(unsigned lanes) override {
    inner_inbox_.resize(lanes);
    scratch_targets_.resize(lanes);
  }
  void begin_round(std::uint32_t round) override;
  void round(sim::ProcessId p, sim::RoundIo<Msg>& io) override;
  bool finished() const override;

  // adversary::VoteProbe (delegates to the active inner instance).
  std::uint32_t probe_num_processes() const override { return n_; }
  std::uint8_t probe_value(sim::ProcessId p) const override;
  bool probe_counts_in_vote(sim::ProcessId p) const override;
  bool probe_votes_fresh() const override;

 private:
  enum class Kind : std::uint8_t {
    Inner,
    Gossip,
    Settle,  // one quiet round so line 13 lands before the next phase starts
    SafetySend,
    SafetyCollect,
    FinalBcast,
    FinalCollect,
    Fallback,
    Done,
  };
  struct Phase {
    Kind kind = Kind::Done;
    std::uint32_t phase = 0;          // super-process index (Inner/Gossip)
    std::uint32_t inner_round = 0;    // within Inner
    std::uint32_t gossip_round = 0;   // within Gossip
    std::uint32_t fallback_round = 0;
  };

  struct PState {
    std::uint8_t b = 0;
    std::int8_t consensus_decision = -1;
    bool operative = true;
    bool decided = false;
    bool terminated = false;
    bool got_decision_msg = false;
    std::uint8_t decision = 0;
    std::int64_t decision_round = -1;
    std::vector<std::uint8_t> link_dead;   // per neighbor slot (persistent)
    std::vector<std::uint8_t> heard_from;  // round scratch
  };

  Phase phase_of(std::uint32_t r) const;
  void decide(sim::ProcessId p, std::uint8_t value);
  std::uint32_t neighbor_slot(sim::ProcessId p, sim::ProcessId from) const;
  std::uint32_t group_of(sim::ProcessId p) const { return p / group_width_; }
  std::uint32_t local_index(sim::ProcessId p) const {
    return p % group_width_;
  }
  void consume(sim::ProcessId p, const Phase& prev,
               std::span<const In> inbox);
  void produce(sim::ProcessId p, const Phase& cur, sim::RoundIo<Msg>& io);

  ParamConfig cfg_;
  std::uint32_t n_ = 0;
  std::uint32_t group_width_ = 0;  // ⌈n/x⌉
  std::uint32_t num_groups_ = 0;   // actual number of super-processes
  std::shared_ptr<const graph::CommGraph> graph_;
  std::uint32_t min_in_links_ = 0;
  std::uint32_t gossip_len_ = 0;

  std::vector<std::uint32_t> phase_start_;  // outer round of each phase
  std::vector<std::uint32_t> inner_len_;    // truncated schedule per phase
  std::uint32_t safety_send_round_ = 0;
  std::uint32_t fallback_start_ = 0;
  std::uint32_t total_rounds_ = 0;

  std::uint32_t cur_round_ = 0;
  std::uint32_t rounds_seen_ = 0;
  // Order-independent per-round final value => relaxed increments keep
  // determinism under sharded stepping.
  std::atomic<std::uint32_t> terminated_count_{0};

  std::vector<PState> st_;
  FloodFallback fallback_;

  // Active inner instance (rebuilt at each phase start).
  std::unique_ptr<OptimalCore> inner_;
  std::uint32_t inner_phase_ = UINT32_MAX;
  std::vector<std::uint32_t> inner_members_;  // global ids of active SP
  // Per-lane scratch (one entry per engine worker lane).
  std::vector<std::vector<In>> inner_inbox_{1};
  std::vector<std::vector<sim::ProcessId>> scratch_targets_{1};

  const sim::FaultState* faults_ = nullptr;
};

}  // namespace omx::core
