// Crash-amortized inquiry gossip — the communication-frugal primitive
// behind crash-model consensus à la Hajiaghayi–Kowalski–Olkowski (STOC'22,
// paper reference [23]), built to demonstrate §B.3's point: the "double
// your contacts when responses go missing" trick amortizes beautifully
// against crashes and catastrophically fails against omission faults.
//
// Protocol (each process wants the full input vector, i.e. the global
// counts Algorithm 1 obtains with its operative machinery):
//   * each process keeps a contact window of c_p ids — the first c_p
//     entries of a fixed offset order that starts with the exponential
//     "fingers" +1, +2, +4, ..., +2^k (so fault-free knowledge doubles per
//     exchange and everyone completes in O(log n) exchanges) and continues
//     with the remaining ring offsets; initially c_p = Θ(log n);
//   * every odd round it INQUIREs its contacts; every even round contacts
//     RESPOND with the pairs they have not yet sent to that inquirer
//     (an empty response still counts as a sign of life);
//   * if fewer than half the contacts respond, the process DOUBLES c_p
//     (capped at n-1) — against crashes this happens O(log n) times total,
//     because dead contacts stay dead;
//   * a process completes when it knows at least n - t pairs and its
//     knowledge was stable for one exchange.
//
// Against crashes: Õ(n·Δ + crash-induced doublings) messages per exchange —
// subquadratic for t = O(n/polylog). Against an omission adversary that
// simply suppresses all responses TO t victims, every victim doubles to
// n-1 contacts and interrogates the whole network forever: Θ(t·n) messages
// per exchange, i.e. the quadratic blow-up the paper's §B.3 predicts — and
// the victims never complete, so the crash-style completion predicate
// never fires for them.
//
// Two wire-equivalent state representations (DoublingConfig::packed):
//   * legacy — per-process known vector (n bytes) plus an n×n `sent` flag
//     matrix, FloodMsg pair-list replies: Θ(n²) memory per run and O(n)
//     work per reply, which caps runs near n ≈ 10^4;
//   * packed — knowledge is a run-length-coded id set (support/run_set.h)
//     stored as (shared RunSet, rotation = own id). The fault-free
//     execution is ring-symmetric, so every process's set is the same
//     master set rotated, and the per-round set algebra (union of shifted
//     reply deltas, know-minus-snapshot diffs) is memoized machine-wide:
//     computed once, shared by all n processes. The `sent` matrix becomes
//     one RunSet snapshot pointer per active channel, and replies carry
//     RunMsg deltas whose cached bit size matches the legacy FloodMsg
//     billing pair-for-pair — decisions, Metrics and message sequences are
//     identical; memory drops from Θ(n²) to Õ(n), which is what lets a
//     gossip run complete at n = 10^6.
//     (Reply values are implied: omission adversaries never corrupt
//     payloads, so the ones/zeros readout of a completed process equals
//     the legacy per-process copy and is served from the global inputs.)
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "core/messages.h"
#include "sim/adversary.h"
#include "sim/machine.h"
#include "support/run_set.h"

namespace omx::baselines {

struct DoublingConfig {
  std::uint32_t t = 0;
  /// Initial contact-window size (0 = 4·ceil(log2 n)).
  std::uint32_t initial_contacts = 0;
  /// Hard cap on exchanges (inquire+respond pairs); 0 = 4·ceil(log2 n) + t.
  std::uint32_t max_exchanges = 0;
  /// Run-length-coded knowledge + RunMsg replies (see header comment).
  bool packed = false;
};

class DoublingGossipMachine final : public sim::Machine<core::Msg> {
 public:
  DoublingGossipMachine(DoublingConfig config,
                        std::vector<std::uint8_t> inputs);

  void set_fault_view(const sim::FaultState* faults) { faults_ = faults; }
  /// Crash-model semantics: corrupted processes HALT (stop executing), as
  /// a physically crashed machine would. Omission semantics (default) keep
  /// them computing and sending — the §B.3 distinction in one flag.
  void set_crash_semantics(bool on) { crash_semantics_ = on; }
  /// Run the full horizon even after every non-faulty process completed
  /// (steady-state traffic measurements).
  void set_run_full_horizon(bool on) { full_horizon_ = on; }
  std::uint32_t scheduled_rounds() const { return 2 * max_exchanges_; }

  bool completed(sim::ProcessId p) const { return st_[p].completed; }
  /// Global ones-count as known by p (valid once completed).
  std::uint32_t ones_of(sim::ProcessId p) const;
  std::uint32_t zeros_of(sim::ProcessId p) const;
  std::uint32_t known_of(sim::ProcessId p) const {
    return st_[p].known_count;
  }
  std::uint32_t contacts_of(sim::ProcessId p) const { return st_[p].contacts; }
  std::uint32_t doublings_of(sim::ProcessId p) const {
    return st_[p].doublings;
  }
  /// Peak run count over all live knowledge sets (packed-mode diagnostics:
  /// the compressibility the representation banks on).
  std::size_t peak_runs() const { return peak_runs_; }

  std::uint32_t num_processes() const override { return n_; }
  void set_lanes(unsigned lanes) override {
    scratch_targets_.resize(lanes);
    scratch_ops_.resize(lanes);
  }
  void begin_round(std::uint32_t round) override;
  void round(sim::ProcessId p, sim::RoundIo<core::Msg>& io) override;
  bool finished() const override;

 private:
  struct PState {
    // Legacy representation.
    std::vector<std::int8_t> known;            // -1 / 0 / 1 per id
    std::vector<std::uint8_t> sent;            // [peer][id] pair-sent flags
    // Packed representation: ids { (x + p) mod n : x in *know_set }, plus
    // one knowledge snapshot per reply channel (what the peer has been
    // sent, replacing the `sent` row).
    support::RunSetPtr know_set;
    std::vector<std::pair<sim::ProcessId, support::RunSetPtr>> snaps;

    std::uint32_t known_count = 0;
    std::uint32_t contacts = 0;                // current window size
    std::uint32_t doublings = 0;
    bool completed = false;
    bool stable = false;                       // no new pairs last exchange
    std::vector<sim::ProcessId> inquirers;     // who asked this exchange
  };

  void learn(PState& s, std::uint32_t id, std::uint8_t value);
  void round_legacy(sim::ProcessId p, PState& s,
                    sim::RoundIo<core::Msg>& io);
  void round_packed(sim::ProcessId p, PState& s,
                    sim::RoundIo<core::Msg>& io);
  support::RunSetPtr memo_union(
      const support::RunSetPtr& base,
      const std::vector<support::ShiftedSet>& ops);
  support::RunSetPtr memo_diff(const support::RunSetPtr& a,
                               const support::RunSetPtr& b);

  std::uint32_t n_ = 0;
  std::uint32_t t_ = 0;
  std::uint32_t max_exchanges_ = 0;
  std::uint32_t cur_round_ = 0;
  std::uint32_t rounds_seen_ = 0;
  bool packed_ = false;
  std::vector<PState> st_;
  std::vector<std::uint32_t> offsets_;  // contact order (fingers first)
  // Inquiry multicast list + union-operand scratch, one per engine lane.
  std::vector<std::vector<sim::ProcessId>> scratch_targets_{1};
  std::vector<std::vector<support::ShiftedSet>> scratch_ops_{1};
  std::vector<std::uint8_t> inputs_;
  std::vector<std::uint32_t> prefix_ones_;  // packed ones_of readout
  const sim::FaultState* faults_ = nullptr;
  bool crash_semantics_ = false;
  bool full_horizon_ = false;
  std::size_t peak_runs_ = 0;

  // Machine-wide per-round memo of the packed set algebra. Keys are the
  // operand object identities (RunSets are immutable and shared), so in
  // the symmetric fault-free execution every process hits the same entry
  // and the round's algebra is computed exactly once. Cleared each round;
  // sharing only affects speed, never results. The mutex covers sharded
  // compute phases (contention is one lookup per process per round).
  using UnionKey =
      std::pair<const void*,
                std::vector<std::pair<std::uint32_t, const void*>>>;
  std::mutex memo_mu_;
  std::map<UnionKey, support::RunSetPtr> union_memo_;
  std::map<std::pair<const void*, const void*>, support::RunSetPtr>
      diff_memo_;
};

}  // namespace omx::baselines
