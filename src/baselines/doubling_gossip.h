// Crash-amortized inquiry gossip — the communication-frugal primitive
// behind crash-model consensus à la Hajiaghayi–Kowalski–Olkowski (STOC'22,
// paper reference [23]), built to demonstrate §B.3's point: the "double
// your contacts when responses go missing" trick amortizes beautifully
// against crashes and catastrophically fails against omission faults.
//
// Protocol (each process wants the full input vector, i.e. the global
// counts Algorithm 1 obtains with its operative machinery):
//   * each process keeps a contact window of c_p ids — the first c_p
//     entries of a fixed offset order that starts with the exponential
//     "fingers" +1, +2, +4, ..., +2^k (so fault-free knowledge doubles per
//     exchange and everyone completes in O(log n) exchanges) and continues
//     with the remaining ring offsets; initially c_p = Θ(log n);
//   * every odd round it INQUIREs its contacts; every even round contacts
//     RESPOND with the pairs they have not yet sent to that inquirer
//     (an empty response still counts as a sign of life);
//   * if fewer than half the contacts respond, the process DOUBLES c_p
//     (capped at n-1) — against crashes this happens O(log n) times total,
//     because dead contacts stay dead;
//   * a process completes when it knows at least n - t pairs and its
//     knowledge was stable for one exchange.
//
// Against crashes: Õ(n·Δ + crash-induced doublings) messages per exchange —
// subquadratic for t = O(n/polylog). Against an omission adversary that
// simply suppresses all responses TO t victims, every victim doubles to
// n-1 contacts and interrogates the whole network forever: Θ(t·n) messages
// per exchange, i.e. the quadratic blow-up the paper's §B.3 predicts — and
// the victims never complete, so the crash-style completion predicate
// never fires for them.
#pragma once

#include <cstdint>
#include <vector>

#include "core/messages.h"
#include "sim/adversary.h"
#include "sim/machine.h"

namespace omx::baselines {

struct DoublingConfig {
  std::uint32_t t = 0;
  /// Initial contact-window size (0 = 4·ceil(log2 n)).
  std::uint32_t initial_contacts = 0;
  /// Hard cap on exchanges (inquire+respond pairs); 0 = 4·ceil(log2 n) + t.
  std::uint32_t max_exchanges = 0;
};

class DoublingGossipMachine final : public sim::Machine<core::Msg> {
 public:
  DoublingGossipMachine(DoublingConfig config,
                        std::vector<std::uint8_t> inputs);

  void set_fault_view(const sim::FaultState* faults) { faults_ = faults; }
  /// Crash-model semantics: corrupted processes HALT (stop executing), as
  /// a physically crashed machine would. Omission semantics (default) keep
  /// them computing and sending — the §B.3 distinction in one flag.
  void set_crash_semantics(bool on) { crash_semantics_ = on; }
  /// Run the full horizon even after every non-faulty process completed
  /// (steady-state traffic measurements).
  void set_run_full_horizon(bool on) { full_horizon_ = on; }
  std::uint32_t scheduled_rounds() const { return 2 * max_exchanges_; }

  bool completed(sim::ProcessId p) const { return st_[p].completed; }
  /// Global ones-count as known by p (valid once completed).
  std::uint32_t ones_of(sim::ProcessId p) const;
  std::uint32_t zeros_of(sim::ProcessId p) const;
  std::uint32_t contacts_of(sim::ProcessId p) const { return st_[p].contacts; }
  std::uint32_t doublings_of(sim::ProcessId p) const {
    return st_[p].doublings;
  }

  std::uint32_t num_processes() const override { return n_; }
  void set_lanes(unsigned lanes) override { scratch_targets_.resize(lanes); }
  void begin_round(std::uint32_t round) override;
  void round(sim::ProcessId p, sim::RoundIo<core::Msg>& io) override;
  bool finished() const override;

 private:
  struct PState {
    std::vector<std::int8_t> known;            // -1 / 0 / 1 per id
    std::uint32_t known_count = 0;
    std::uint32_t contacts = 0;                // current window size
    std::uint32_t doublings = 0;
    bool completed = false;
    bool stable = false;                       // no new pairs last exchange
    std::vector<sim::ProcessId> inquirers;     // who asked this exchange
    std::vector<std::uint8_t> sent;            // [peer][id] pair-sent flags
  };

  void learn(PState& s, std::uint32_t id, std::uint8_t value);

  std::uint32_t n_ = 0;
  std::uint32_t t_ = 0;
  std::uint32_t max_exchanges_ = 0;
  std::uint32_t cur_round_ = 0;
  std::uint32_t rounds_seen_ = 0;
  std::vector<PState> st_;
  std::vector<std::uint32_t> offsets_;  // contact order (fingers first)
  // Inquiry multicast list, one per engine lane.
  std::vector<std::vector<sim::ProcessId>> scratch_targets_{1};
  std::vector<std::uint8_t> inputs_;
  const sim::FaultState* faults_ = nullptr;
  bool crash_semantics_ = false;
  bool full_horizon_ = false;
};

}  // namespace omx::baselines
