#include "baselines/doubling_gossip.h"

#include <algorithm>

#include "support/bits.h"
#include "support/check.h"

namespace omx::baselines {

using core::FloodMsg;
using core::FloodPair;
using core::InquireMsg;
using core::Msg;
using core::RunMsg;
using support::RunSet;
using support::RunSetPtr;
using support::ShiftedSet;

DoublingGossipMachine::DoublingGossipMachine(DoublingConfig config,
                                             std::vector<std::uint8_t> inputs)
    : n_(static_cast<std::uint32_t>(inputs.size())),
      t_(config.t),
      packed_(config.packed),
      inputs_(std::move(inputs)) {
  OMX_REQUIRE(n_ >= 2, "gossip needs at least two processes");
  const std::uint32_t logn = std::max<std::uint32_t>(1, ceil_log2(n_));
  // Contact order: exponential fingers first (+1, +2, +4, ...), then the
  // remaining offsets ascending — knowledge doubles per exchange.
  std::vector<std::uint8_t> used(n_, 0);
  used[0] = 1;
  for (std::uint32_t f = 1; f < n_; f *= 2) {
    offsets_.push_back(f);
    used[f] = 1;
  }
  for (std::uint32_t off = 1; off < n_; ++off) {
    if (!used[off]) offsets_.push_back(off);
  }
  OMX_CHECK(offsets_.size() == n_ - 1, "offset order must cover the ring");
  const std::uint32_t init =
      config.initial_contacts
          ? config.initial_contacts
          : std::min(n_ - 1, static_cast<std::uint32_t>(2 * logn));
  max_exchanges_ = config.max_exchanges ? config.max_exchanges
                                        : 4 * logn + 16;
  st_.resize(n_);
  if (packed_) {
    prefix_ones_.resize(n_ + 1);
    prefix_ones_[0] = 0;
    for (std::uint32_t id = 0; id < n_; ++id) {
      prefix_ones_[id + 1] = prefix_ones_[id] + (inputs_[id] != 0 ? 1 : 0);
    }
  }
  // The seed is the same for every process in the rotated frame ({0}),
  // so one RunSet serves all n — the representation's whole point.
  const RunSetPtr seed = packed_ ? RunSet::single(0) : nullptr;
  for (std::uint32_t p = 0; p < n_; ++p) {
    auto& s = st_[p];
    s.contacts = std::min(init, n_ - 1);
    if (packed_) {
      s.know_set = seed;
    } else {
      s.known.assign(n_, -1);
      s.sent.assign(static_cast<std::size_t>(n_) * n_, 0);
      s.known[p] = static_cast<std::int8_t>(inputs_[p]);
    }
    s.known_count = 1;
  }
}

void DoublingGossipMachine::learn(PState& s, std::uint32_t id,
                                  std::uint8_t value) {
  OMX_CHECK(id < n_, "pair id out of range");
  if (s.known[id] < 0) {
    s.known[id] = static_cast<std::int8_t>(value);
    ++s.known_count;
    s.stable = false;
  }
}

void DoublingGossipMachine::begin_round(std::uint32_t round) {
  cur_round_ = round;
  rounds_seen_ = round + 1;
  if (packed_) {
    union_memo_.clear();
    diff_memo_.clear();
  }
}

RunSetPtr DoublingGossipMachine::memo_union(
    const RunSetPtr& base, const std::vector<ShiftedSet>& ops) {
  UnionKey key;
  key.first = base.get();
  key.second.reserve(ops.size());
  for (const ShiftedSet& op : ops) key.second.emplace_back(op.shift, op.set);
  std::lock_guard<std::mutex> lock(memo_mu_);
  auto it = union_memo_.find(key);
  if (it != union_memo_.end()) return it->second;
  RunSetPtr result = support::union_shifted(*base, ops, n_);
  peak_runs_ = std::max(peak_runs_, result->runs().size());
  union_memo_.emplace(std::move(key), result);
  return result;
}

RunSetPtr DoublingGossipMachine::memo_diff(const RunSetPtr& a,
                                           const RunSetPtr& b) {
  if (a.get() == b.get()) return RunSet::empty_set();
  const std::pair<const void*, const void*> key{a.get(), b.get()};
  std::lock_guard<std::mutex> lock(memo_mu_);
  auto it = diff_memo_.find(key);
  if (it != diff_memo_.end()) return it->second;
  RunSetPtr result = support::difference(*a, *b);
  diff_memo_.emplace(key, result);
  return result;
}

void DoublingGossipMachine::round(sim::ProcessId p,
                                  sim::RoundIo<core::Msg>& io) {
  if (crash_semantics_ && faults_ != nullptr && faults_->is_corrupted(p)) {
    return;  // a crashed machine halts; an omission-faulty one keeps going
  }
  auto& s = st_[p];
  if (packed_) {
    round_packed(p, s, io);
  } else {
    round_legacy(p, s, io);
  }
}

void DoublingGossipMachine::round_legacy(sim::ProcessId p, PState& s,
                                         sim::RoundIo<core::Msg>& io) {
  const bool inquire_round = (cur_round_ % 2) == 0;

  if (inquire_round) {
    // --- consume last exchange's responses; double if starved ---
    if (cur_round_ > 0 && !s.completed) {
      std::uint32_t responses = 0;
      io.for_each_in([&](sim::ProcessId, const Msg& payload) {
        if (const auto* fm = std::get_if<FloodMsg>(&payload)) {
          ++responses;
          for (const FloodPair& pair : fm->pairs) {
            learn(s, pair.id, pair.value);
          }
        }
      });
      if (2 * responses < s.contacts && s.contacts < n_ - 1) {
        s.contacts = std::min(n_ - 1, 2 * s.contacts);
        ++s.doublings;
      }
      // Completion: enough coverage and nothing new this exchange.
      if (s.known_count + t_ >= n_ && s.stable) {
        s.completed = true;
      }
      s.stable = true;  // reset; any new pair before the next check clears
    }
    // --- produce inquiries (finger-first contact window) ---
    if (!s.completed) {
      auto& targets = scratch_targets_[io.lane()];
      targets.clear();
      for (std::uint32_t k = 0; k < s.contacts; ++k) {
        targets.push_back((p + offsets_[k]) % n_);
      }
      io.send_to(targets, InquireMsg{});
    }
    return;
  }

  // --- respond round: answer every inquirer with unsent pairs ---
  s.inquirers.clear();
  io.for_each_in([&](sim::ProcessId from, const Msg& payload) {
    if (std::get_if<InquireMsg>(&payload) != nullptr) {
      s.inquirers.push_back(from);
    }
  });
  for (sim::ProcessId q : s.inquirers) {
    FloodMsg reply;
    std::uint8_t* sent = &s.sent[static_cast<std::size_t>(q) * n_];
    for (std::uint32_t id = 0; id < n_; ++id) {
      if (s.known[id] >= 0 && !sent[id]) {
        sent[id] = 1;
        reply.pairs.push_back(
            FloodPair{id, static_cast<std::uint8_t>(s.known[id])});
      }
    }
    io.send(q, std::move(reply));  // empty reply = sign of life
  }
}

void DoublingGossipMachine::round_packed(sim::ProcessId p, PState& s,
                                         sim::RoundIo<core::Msg>& io) {
  const bool inquire_round = (cur_round_ % 2) == 0;

  if (inquire_round) {
    if (cur_round_ > 0 && !s.completed) {
      std::uint32_t responses = 0;
      auto& ops = scratch_ops_[io.lane()];
      ops.clear();
      io.for_each_in([&](sim::ProcessId, const Msg& payload) {
        if (const auto* rm = std::get_if<RunMsg>(&payload)) {
          ++responses;
          if (rm->delta != nullptr && !rm->delta->empty()) {
            // Rebase the responder's frame into ours: absolute id is
            // (x + rot), our relative id is (x + rot - p) mod n.
            ops.push_back(ShiftedSet{rm->delta.get(),
                                     (rm->rot + n_ - (p % n_)) % n_});
          }
        }
      });
      if (!ops.empty()) {
        // Canonical operand order → one memo entry per distinct task; in
        // the symmetric fault-free execution that is one per round for the
        // whole machine. (Shifts are distinct: one reply per responder.)
        std::sort(ops.begin(), ops.end(),
                  [](const ShiftedSet& a, const ShiftedSet& b) {
                    return a.shift != b.shift ? a.shift < b.shift
                                              : a.set < b.set;
                  });
        RunSetPtr merged = memo_union(s.know_set, ops);
        const auto count = static_cast<std::uint32_t>(merged->count());
        if (count > s.known_count) {
          s.known_count = count;
          s.stable = false;
        }
        s.know_set = std::move(merged);
      }
      if (2 * responses < s.contacts && s.contacts < n_ - 1) {
        s.contacts = std::min(n_ - 1, 2 * s.contacts);
        ++s.doublings;
      }
      if (s.known_count + t_ >= n_ && s.stable) {
        s.completed = true;
      }
      s.stable = true;
    }
    if (!s.completed) {
      auto& targets = scratch_targets_[io.lane()];
      targets.clear();
      for (std::uint32_t k = 0; k < s.contacts; ++k) {
        targets.push_back((p + offsets_[k]) % n_);
      }
      io.send_to(targets, InquireMsg{});
    }
    return;
  }

  // --- respond round: one delta per channel snapshot, batched so that
  // consecutive inquirers sharing a snapshot share one wire payload ---
  s.inquirers.clear();
  io.for_each_in([&](sim::ProcessId from, const Msg& payload) {
    if (std::get_if<InquireMsg>(&payload) != nullptr) {
      s.inquirers.push_back(from);
    }
  });
  const auto snapshot_of = [&](sim::ProcessId q) -> RunSetPtr {
    for (const auto& entry : s.snaps) {
      if (entry.first == q) return entry.second;
    }
    return RunSet::empty_set();
  };
  const auto set_snapshot = [&](sim::ProcessId q, const RunSetPtr& snap) {
    for (auto& entry : s.snaps) {
      if (entry.first == q) {
        entry.second = snap;
        return;
      }
    }
    s.snaps.emplace_back(q, snap);
  };
  std::size_t i = 0;
  auto& targets = scratch_targets_[io.lane()];
  while (i < s.inquirers.size()) {
    const RunSetPtr snap = snapshot_of(s.inquirers[i]);
    std::size_t j = i + 1;
    while (j < s.inquirers.size() &&
           snapshot_of(s.inquirers[j]).get() == snap.get()) {
      ++j;
    }
    const RunSetPtr delta = memo_diff(s.know_set, snap);
    RunMsg reply;
    reply.delta = delta;
    reply.rot = p;
    reply.pairs = static_cast<std::uint32_t>(delta->count());
    reply.bits = 1 + support::shifted_pair_bits(*delta, p, n_);
    targets.clear();
    for (std::size_t k = i; k < j; ++k) {
      set_snapshot(s.inquirers[k], s.know_set);
      targets.push_back(s.inquirers[k]);
    }
    io.send_to(targets, Msg{std::move(reply)});
    i = j;
  }
}

bool DoublingGossipMachine::finished() const {
  if (rounds_seen_ >= scheduled_rounds()) return true;
  if (full_horizon_) return false;
  for (sim::ProcessId p = 0; p < n_; ++p) {
    if (faults_ != nullptr && faults_->is_corrupted(p)) continue;
    if (!st_[p].completed) return false;
  }
  return true;
}

std::uint32_t DoublingGossipMachine::ones_of(sim::ProcessId p) const {
  if (packed_) {
    // Omission adversaries deliver or drop, never corrupt, so every value
    // p holds equals the sender's input — the readout is served from the
    // global input prefix sums over p's (rotated) known-id runs.
    std::uint32_t ones = 0;
    for (const support::Run& r : st_[p].know_set->runs()) {
      const std::uint64_t lo = static_cast<std::uint64_t>(r.lo) + p;
      const std::uint64_t hi = static_cast<std::uint64_t>(r.hi) + p;
      if (hi <= n_) {
        ones += prefix_ones_[hi] - prefix_ones_[lo];
      } else if (lo >= n_) {
        ones += prefix_ones_[hi - n_] - prefix_ones_[lo - n_];
      } else {
        ones += prefix_ones_[n_] - prefix_ones_[lo];
        ones += prefix_ones_[hi - n_];
      }
    }
    return ones;
  }
  std::uint32_t ones = 0;
  for (std::int8_t v : st_[p].known) ones += v == 1;
  return ones;
}

std::uint32_t DoublingGossipMachine::zeros_of(sim::ProcessId p) const {
  if (packed_) {
    return static_cast<std::uint32_t>(st_[p].know_set->count()) -
           ones_of(p);
  }
  std::uint32_t zeros = 0;
  for (std::int8_t v : st_[p].known) zeros += v == 0;
  return zeros;
}

}  // namespace omx::baselines
