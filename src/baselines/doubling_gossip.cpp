#include "baselines/doubling_gossip.h"

#include <algorithm>

#include "support/bits.h"
#include "support/check.h"

namespace omx::baselines {

using core::FloodMsg;
using core::FloodPair;
using core::InquireMsg;
using core::Msg;

DoublingGossipMachine::DoublingGossipMachine(DoublingConfig config,
                                             std::vector<std::uint8_t> inputs)
    : n_(static_cast<std::uint32_t>(inputs.size())),
      t_(config.t),
      inputs_(std::move(inputs)) {
  OMX_REQUIRE(n_ >= 2, "gossip needs at least two processes");
  const std::uint32_t logn = std::max<std::uint32_t>(1, ceil_log2(n_));
  // Contact order: exponential fingers first (+1, +2, +4, ...), then the
  // remaining offsets ascending — knowledge doubles per exchange.
  std::vector<std::uint8_t> used(n_, 0);
  used[0] = 1;
  for (std::uint32_t f = 1; f < n_; f *= 2) {
    offsets_.push_back(f);
    used[f] = 1;
  }
  for (std::uint32_t off = 1; off < n_; ++off) {
    if (!used[off]) offsets_.push_back(off);
  }
  OMX_CHECK(offsets_.size() == n_ - 1, "offset order must cover the ring");
  const std::uint32_t init =
      config.initial_contacts
          ? config.initial_contacts
          : std::min(n_ - 1, static_cast<std::uint32_t>(2 * logn));
  max_exchanges_ = config.max_exchanges ? config.max_exchanges
                                        : 4 * logn + 16;
  st_.resize(n_);
  for (std::uint32_t p = 0; p < n_; ++p) {
    auto& s = st_[p];
    s.known.assign(n_, -1);
    s.contacts = std::min(init, n_ - 1);
    s.sent.assign(static_cast<std::size_t>(n_) * n_, 0);
    learn(s, p, inputs_[p]);
    s.known_count = 1;
  }
}

void DoublingGossipMachine::learn(PState& s, std::uint32_t id,
                                  std::uint8_t value) {
  OMX_CHECK(id < n_, "pair id out of range");
  if (s.known[id] < 0) {
    s.known[id] = static_cast<std::int8_t>(value);
    ++s.known_count;
    s.stable = false;
  }
}

void DoublingGossipMachine::begin_round(std::uint32_t round) {
  cur_round_ = round;
  rounds_seen_ = round + 1;
}

void DoublingGossipMachine::round(sim::ProcessId p,
                                  sim::RoundIo<core::Msg>& io) {
  if (crash_semantics_ && faults_ != nullptr && faults_->is_corrupted(p)) {
    return;  // a crashed machine halts; an omission-faulty one keeps going
  }
  auto& s = st_[p];
  const bool inquire_round = (cur_round_ % 2) == 0;

  if (inquire_round) {
    // --- consume last exchange's responses; double if starved ---
    if (cur_round_ > 0 && !s.completed) {
      std::uint32_t responses = 0;
      for (const auto& msg : io.inbox()) {
        if (const auto* fm = std::get_if<FloodMsg>(&msg.payload)) {
          ++responses;
          for (const FloodPair& pair : fm->pairs) {
            learn(s, pair.id, pair.value);
          }
        }
      }
      if (2 * responses < s.contacts && s.contacts < n_ - 1) {
        s.contacts = std::min(n_ - 1, 2 * s.contacts);
        ++s.doublings;
      }
      // Completion: enough coverage and nothing new this exchange.
      if (s.known_count + t_ >= n_ && s.stable) {
        s.completed = true;
      }
      s.stable = true;  // reset; any new pair before the next check clears
    }
    // --- produce inquiries (finger-first contact window) ---
    if (!s.completed) {
      auto& targets = scratch_targets_[io.lane()];
      targets.clear();
      for (std::uint32_t k = 0; k < s.contacts; ++k) {
        targets.push_back((p + offsets_[k]) % n_);
      }
      io.send_to(targets, InquireMsg{});
    }
    return;
  }

  // --- respond round: answer every inquirer with unsent pairs ---
  s.inquirers.clear();
  for (const auto& msg : io.inbox()) {
    if (std::get_if<InquireMsg>(&msg.payload) != nullptr) {
      s.inquirers.push_back(msg.from);
    }
  }
  for (sim::ProcessId q : s.inquirers) {
    FloodMsg reply;
    std::uint8_t* sent = &s.sent[static_cast<std::size_t>(q) * n_];
    for (std::uint32_t id = 0; id < n_; ++id) {
      if (s.known[id] >= 0 && !sent[id]) {
        sent[id] = 1;
        reply.pairs.push_back(
            FloodPair{id, static_cast<std::uint8_t>(s.known[id])});
      }
    }
    io.send(q, std::move(reply));  // empty reply = sign of life
  }
}

bool DoublingGossipMachine::finished() const {
  if (rounds_seen_ >= scheduled_rounds()) return true;
  if (full_horizon_) return false;
  for (sim::ProcessId p = 0; p < n_; ++p) {
    if (faults_ != nullptr && faults_->is_corrupted(p)) continue;
    if (!st_[p].completed) return false;
  }
  return true;
}

std::uint32_t DoublingGossipMachine::ones_of(sim::ProcessId p) const {
  std::uint32_t ones = 0;
  for (std::int8_t v : st_[p].known) ones += v == 1;
  return ones;
}

std::uint32_t DoublingGossipMachine::zeros_of(sim::ProcessId p) const {
  std::uint32_t zeros = 0;
  for (std::int8_t v : st_[p].known) zeros += v == 0;
  return zeros;
}

}  // namespace omx::baselines
