#include "baselines/ben_or.h"

#include <cmath>

#include "support/bits.h"
#include "support/check.h"

namespace omx::baselines {

BenOrMachine::BenOrMachine(BenOrConfig config,
                           std::vector<std::uint8_t> inputs)
    : cfg_(config),
      n_(static_cast<std::uint32_t>(inputs.size())),
      fallback_(static_cast<std::uint32_t>(inputs.size()), config.t,
                config.packed) {
  OMX_REQUIRE(n_ >= 1, "need at least one process");
  st_.resize(n_);
  for (std::uint32_t p = 0; p < n_; ++p) {
    OMX_REQUIRE(inputs[p] <= 1, "inputs must be bits");
    st_[p].b = inputs[p];
  }
  if (cfg_.round_cap > 0) {
    cap_ = cfg_.round_cap;
  } else {
    const double sqrt_n = std::sqrt(static_cast<double>(n_));
    const auto fault_term = static_cast<std::uint32_t>(
        std::ceil(static_cast<double>(cfg_.t) / sqrt_n)) + 1;
    cap_ = 4 * fault_term * std::max<std::uint32_t>(1, ceil_log2(n_));
  }
  fallback_start_ = cap_;
  total_rounds_ = fallback_start_ + fallback_.total_rounds();
}

void BenOrMachine::begin_round(std::uint32_t round) {
  cur_round_ = round;
  rounds_seen_ = round + 1;
  votes_fresh_ = round >= 1 && round <= cap_;
}

void BenOrMachine::decide(sim::ProcessId p, std::uint8_t value) {
  auto& s = st_[p];
  OMX_CHECK(!s.terminated, "double decision");
  s.terminated = true;
  s.decision = value;
  s.b = value;
  s.decision_round = static_cast<std::int64_t>(cur_round_);
  terminated_count_.fetch_add(1, std::memory_order_relaxed);
}

void BenOrMachine::round(sim::ProcessId p, sim::RoundIo<core::Msg>& io) {
  auto& s = st_[p];
  if (s.terminated) return;
  const std::uint32_t r = cur_round_;

  if (r > fallback_start_) {
    // Fallback regime: decision gossip still short-circuits.
    auto& scratch = scratch_[io.lane()];
    scratch.clear();
    bool gossip_decided = false;
    io.for_each_in([&](sim::ProcessId from, const core::Msg& payload) {
      if (gossip_decided) return;
      if (const auto* gm = std::get_if<core::GossipMsg>(&payload)) {
        if (gm->value >= 0 && !s.terminated) {
          decide(p, static_cast<std::uint8_t>(gm->value));
          gossip_decided = true;
        }
      } else {
        scratch.push_back(core::In{from, &payload});
      }
    });
    if (gossip_decided) return;
    core::IoOutbox out(io);
    fallback_.step(p, r - fallback_start_, scratch, out);
    if (fallback_.has_decision(p)) decide(p, fallback_.decision(p));
    return;
  }

  // --- consume the previous voting round ---
  if (r >= 1) {
    std::uint64_t ones = 0, zeros = 0;
    std::int8_t gossip = -1;
    io.for_each_in([&](sim::ProcessId, const core::Msg& payload) {
      if (const auto* dm = std::get_if<core::DecisionMsg>(&payload)) {
        if (dm->value == 1) ++ones;
        else ++zeros;
      } else if (const auto* gm = std::get_if<core::GossipMsg>(&payload)) {
        if (gm->value >= 0 && gossip < 0) gossip = gm->value;
      }
    });
    if (gossip >= 0 && !s.decided) {
      s.b = static_cast<std::uint8_t>(gossip);
      s.decided = true;  // adopt + relay below
    } else if (!s.decided) {
      const std::uint64_t tot = ones + zeros;
      if (tot > 0) {
        if (30 * ones > 18 * tot) {
          s.b = 1;
        } else if (30 * ones < 15 * tot) {
          s.b = 0;
        } else {
          s.b = io.rng().can_draw(1)
                    ? static_cast<std::uint8_t>(io.rng().draw_bit())
                    : 0;
        }
        if (30 * ones > 27 * tot || 30 * ones < 3 * tot) s.decided = true;
      }
    }
  }

  // --- produce ---
  if (s.decided) {
    io.send_to_all(core::GossipMsg{static_cast<std::int8_t>(s.b)});
    decide(p, s.b);
    return;
  }
  if (r < cap_) {
    // Own bit counts too, hence include_self.
    io.send_to_all(core::DecisionMsg{s.b}, /*include_self=*/true);
  } else {
    // r == fallback_start_: register and start flooding.
    fallback_.set_participant(p, s.b);
    auto& scratch = scratch_[io.lane()];
    scratch.clear();
    core::IoOutbox out(io);
    fallback_.step(p, 0, scratch, out);
  }
}

bool BenOrMachine::finished() const {
  if (rounds_seen_ >= total_rounds_) return true;
  if (faults_ != nullptr) {
    for (sim::ProcessId p = 0; p < n_; ++p) {
      if (!faults_->is_corrupted(p) && !st_[p].terminated) return false;
    }
    return true;
  }
  return terminated_count_.load(std::memory_order_relaxed) == n_;
}

core::MemberOutcome BenOrMachine::outcome(sim::ProcessId p) const {
  OMX_REQUIRE(p < n_, "process out of range");
  const auto& s = st_[p];
  core::MemberOutcome out;
  out.value = s.terminated ? s.decision : s.b;
  out.has_value = s.terminated;
  out.decided = s.terminated;
  out.operative = true;
  out.decision_round = s.decision_round;
  return out;
}

}  // namespace omx::baselines
