// Ben-Or / Bar-Joseph–Ben-Or-style biased-majority consensus: the
// crash-model randomized baseline (paper [10], discussed in §B.3).
//
// Every undecided process broadcasts its bit each round (Θ(n²) bits/round,
// no operative machinery), counts received bits and applies the same
// 15/30–18/30 / 3/30–27/30 threshold rule as Algorithm 1, flipping a fresh
// coin in the dead zone. Deciders broadcast their decision (relayed once by
// each receiver) and stop. After `round_cap` voting rounds an undecided
// process enters the deterministic flood-set fallback.
//
// Against *crash* faults this is the time-optimal classic. Against the
// omission adversary it has two measurable weaknesses the paper motivates:
// (a) Θ(n²) bits per round — no √n-group aggregation — and (b) divergent
// counts across receivers (split-brain) can push it to the fallback or, at
// large t, even to disagreement; benches report both.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "adversary/probes.h"
#include "core/flood_fallback.h"
#include "core/messages.h"
#include "core/optimal_core.h"  // MemberOutcome
#include "sim/adversary.h"
#include "sim/machine.h"

namespace omx::baselines {

struct BenOrConfig {
  std::uint32_t t = 0;
  /// Voting rounds before falling back (0 = auto: 4·(t/√n + 1)·ceil(log2 n)).
  std::uint32_t round_cap = 0;
  /// Word-packed fallback-tail representation (bit-identical, faster).
  bool packed = false;
};

class BenOrMachine final : public sim::Machine<core::Msg>,
                           public adversary::VoteProbe {
 public:
  BenOrMachine(BenOrConfig config, std::vector<std::uint8_t> inputs);

  void set_fault_view(const sim::FaultState* faults) { faults_ = faults; }
  std::uint32_t scheduled_rounds() const { return total_rounds_; }
  std::uint32_t round_cap() const { return cap_; }
  core::MemberOutcome outcome(sim::ProcessId p) const;

  std::uint32_t num_processes() const override { return n_; }
  void set_lanes(unsigned lanes) override { scratch_.resize(lanes); }
  void begin_round(std::uint32_t round) override;
  void round(sim::ProcessId p, sim::RoundIo<core::Msg>& io) override;
  bool finished() const override;

  // VoteProbe
  std::uint32_t probe_num_processes() const override { return n_; }
  std::uint8_t probe_value(sim::ProcessId p) const override {
    return st_[p].b;
  }
  bool probe_counts_in_vote(sim::ProcessId p) const override {
    return !st_[p].terminated && !st_[p].decided;
  }
  bool probe_votes_fresh() const override { return votes_fresh_; }

 private:
  struct PState {
    std::uint8_t b = 0;
    bool decided = false;      // ready to decide (safety thresholds hit)
    bool terminated = false;
    bool relayed = false;      // decision relayed once
    std::uint8_t decision = 0;
    std::int64_t decision_round = -1;
  };

  void decide(sim::ProcessId p, std::uint8_t value);

  BenOrConfig cfg_;
  std::uint32_t n_;
  std::uint32_t cap_ = 0;
  std::uint32_t fallback_start_ = 0;
  std::uint32_t total_rounds_ = 0;
  std::uint32_t cur_round_ = 0;
  std::uint32_t rounds_seen_ = 0;
  // Order-independent final value per round => relaxed atomic increments
  // keep determinism under sharded stepping.
  std::atomic<std::uint32_t> terminated_count_{0};
  bool votes_fresh_ = false;
  std::vector<PState> st_;
  core::FloodFallback fallback_;
  std::vector<std::vector<core::In>> scratch_{1};  // one buffer per lane
  const sim::FaultState* faults_ = nullptr;
};

}  // namespace omx::baselines
