#include "baselines/flood_set.h"

#include "support/check.h"

namespace omx::baselines {

FloodSetMachine::FloodSetMachine(std::uint32_t t,
                                 std::vector<std::uint8_t> inputs,
                                 bool packed)
    : n_(static_cast<std::uint32_t>(inputs.size())),
      fallback_(static_cast<std::uint32_t>(inputs.size()), t, packed) {
  OMX_REQUIRE(n_ >= 1, "need at least one process");
  st_.resize(n_);
  for (std::uint32_t p = 0; p < n_; ++p) {
    OMX_REQUIRE(inputs[p] <= 1, "inputs must be bits");
    fallback_.set_participant(p, inputs[p]);
  }
}

void FloodSetMachine::begin_round(std::uint32_t round) {
  cur_round_ = round;
  rounds_seen_ = round + 1;
}

void FloodSetMachine::round(sim::ProcessId p, sim::RoundIo<core::Msg>& io) {
  auto& s = st_[p];
  if (s.terminated) return;
  if (!fallback_.inbox_is_noop(p, cur_round_)) {
    // Merge straight out of the wire walk — FloodSet never needs the
    // sender id or a materialized inbox, and the extra collect-then-walk
    // pass is measurable at large n.
    fallback_.consume_stream(p, io);
  }
  core::IoOutbox out(io);
  fallback_.step(p, cur_round_, {}, out);
  if (fallback_.has_decision(p)) {
    s.terminated = true;
    s.decision = fallback_.decision(p);
    s.decision_round = static_cast<std::int64_t>(cur_round_);
    terminated_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool FloodSetMachine::finished() const {
  if (rounds_seen_ >= fallback_.total_rounds()) return true;
  if (faults_ != nullptr) {
    for (sim::ProcessId p = 0; p < n_; ++p) {
      if (!faults_->is_corrupted(p) && !st_[p].terminated) return false;
    }
    return true;
  }
  return terminated_count_.load(std::memory_order_relaxed) == n_;
}

core::MemberOutcome FloodSetMachine::outcome(sim::ProcessId p) const {
  OMX_REQUIRE(p < n_, "process out of range");
  core::MemberOutcome out;
  out.value = st_[p].decision;
  out.has_value = st_[p].terminated;
  out.decided = st_[p].terminated;
  out.operative = true;
  out.decision_round = st_[p].decision_round;
  return out;
}

}  // namespace omx::baselines
