// Standalone deterministic flood-set consensus (the [15]-substitute run as
// a protocol of its own): the Table-1 "deterministic regime" baseline.
//
// Θ(t) rounds, Θ(n²·t·log n)-bit worst case, zero randomness, correct with
// probability 1 under ≤ t omission faults. Algorithm 1 beats it on rounds
// by ~√n and on bits by ~t/polylog — exactly the separation Table 1 claims.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/flood_fallback.h"
#include "core/messages.h"
#include "core/optimal_core.h"  // MemberOutcome
#include "sim/adversary.h"
#include "sim/machine.h"

namespace omx::baselines {

class FloodSetMachine final : public sim::Machine<core::Msg> {
 public:
  /// `packed` selects the word-packed fallback representation
  /// (core/packed_view.h) — bit-identical decisions/Metrics/traces, much
  /// faster compute phase, and for_each_in-based consumption so the run
  /// also works under streamed delivery.
  FloodSetMachine(std::uint32_t t, std::vector<std::uint8_t> inputs,
                  bool packed = false);

  void set_fault_view(const sim::FaultState* faults) { faults_ = faults; }
  std::uint32_t scheduled_rounds() const { return fallback_.total_rounds(); }
  core::MemberOutcome outcome(sim::ProcessId p) const;

  std::uint32_t num_processes() const override { return n_; }
  void begin_round(std::uint32_t round) override;
  void round(sim::ProcessId p, sim::RoundIo<core::Msg>& io) override;
  bool finished() const override;

 private:
  struct PState {
    bool terminated = false;
    std::uint8_t decision = 0;
    std::int64_t decision_round = -1;
  };

  std::uint32_t n_;
  core::FloodFallback fallback_;
  std::vector<PState> st_;
  std::uint32_t cur_round_ = 0;
  std::uint32_t rounds_seen_ = 0;
  // Incremented from concurrently stepped processes; the final per-round
  // value is order-independent, so relaxed increments keep determinism.
  std::atomic<std::uint32_t> terminated_count_{0};
  const sim::FaultState* faults_ = nullptr;
};

}  // namespace omx::baselines
