// Binary-tree bag decomposition of one group (paper Appendix B.1).
//
// For a group of size w, layer 1 holds w singleton bags L(1,k) = {k};
// layer j's bag L(j,k) is the union of its children L(j-1, 2k) and
// L(j-1, 2k+1) (0-indexed here; the paper is 1-indexed). The top layer
// (index num_layers()) has a single bag equal to the whole group. With
// contiguous indexing, bag(j,k) is the member-index range
// [k·2^(j-1), min((k+1)·2^(j-1), w)).
#pragma once

#include <cstdint>

namespace omx::groups {

class TreeDecomposition {
 public:
  explicit TreeDecomposition(std::uint32_t group_size);

  struct Bag {
    std::uint32_t lo;  // inclusive member index
    std::uint32_t hi;  // exclusive member index
    std::uint32_t size() const { return hi - lo; }
    bool empty() const { return lo >= hi; }
    bool contains(std::uint32_t m) const { return m >= lo && m < hi; }
  };

  std::uint32_t group_size() const { return w_; }
  /// Layers are numbered 1 (singletons) .. num_layers() (whole group).
  std::uint32_t num_layers() const { return layers_; }
  /// Number of (possibly empty) bag slots in layer j.
  std::uint32_t bags_in_layer(std::uint32_t j) const;
  /// Bag k (0-based) of layer j; may be empty near the right edge.
  Bag bag(std::uint32_t j, std::uint32_t k) const;
  /// Index of the bag of layer j containing member m.
  std::uint32_t bag_index_of(std::uint32_t j, std::uint32_t m) const;
  /// Global bag id unique across layers (for message tagging):
  /// layer-1-relative numbering offset by the slots of lower layers.
  std::uint32_t bag_uid(std::uint32_t j, std::uint32_t k) const;

 private:
  std::uint32_t w_;
  std::uint32_t layers_;
};

}  // namespace omx::groups
