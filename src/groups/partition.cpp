#include "groups/partition.h"

#include <algorithm>
#include <numeric>

#include "support/bits.h"
#include "support/check.h"

namespace omx::groups {

SqrtPartition::SqrtPartition(std::uint32_t n) : n_(n) {
  OMX_REQUIRE(n >= 1, "partition needs at least one process");
  const std::uint32_t root = isqrt(n);
  width_ = (root * root == n) ? root : root + 1;  // ⌈√n⌉
  num_groups_ = static_cast<std::uint32_t>(ceil_div(n, width_));
  ids_.resize(n);
  std::iota(ids_.begin(), ids_.end(), 0u);
}

std::uint32_t SqrtPartition::group_of(std::uint32_t p) const {
  OMX_REQUIRE(p < n_, "process out of range");
  return p / width_;
}

std::uint32_t SqrtPartition::group_size(std::uint32_t g) const {
  OMX_REQUIRE(g < num_groups_, "group out of range");
  const std::uint32_t lo = g * width_;
  const std::uint32_t hi = std::min(n_, lo + width_);
  return hi - lo;
}

std::span<const std::uint32_t> SqrtPartition::members(std::uint32_t g) const {
  OMX_REQUIRE(g < num_groups_, "group out of range");
  const std::uint32_t lo = g * width_;
  return {ids_.data() + lo, group_size(g)};
}

std::uint32_t SqrtPartition::index_in_group(std::uint32_t p) const {
  OMX_REQUIRE(p < n_, "process out of range");
  return p % width_;
}

}  // namespace omx::groups
