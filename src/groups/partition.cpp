#include "groups/partition.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <numeric>
#include <string>

#include "farm/artifact_cache.h"
#include "support/bits.h"
#include "support/check.h"

namespace omx::groups {

SqrtPartition::SqrtPartition(std::uint32_t n) : n_(n) {
  OMX_REQUIRE(n >= 1, "partition needs at least one process");
  const std::uint32_t root = isqrt(n);
  width_ = (root * root == n) ? root : root + 1;  // ⌈√n⌉
  num_groups_ = static_cast<std::uint32_t>(ceil_div(n, width_));
  ids_.resize(n);
  std::iota(ids_.begin(), ids_.end(), 0u);
}

SqrtPartition::SqrtPartition(std::uint32_t n, std::uint32_t width,
                             std::uint32_t num_groups)
    : n_(n), width_(width), num_groups_(num_groups) {
  ids_.resize(n);
  std::iota(ids_.begin(), ids_.end(), 0u);
}

namespace {
struct SharedEntry {
  std::once_flag once;
  std::shared_ptr<const SqrtPartition> partition;
};
std::atomic<std::uint64_t> shared_builds_count{0};
std::atomic<std::uint64_t> shared_disk_loads_count{0};

std::string partition_cache_key(std::uint32_t n) {
  return "sqrtpart-n" + std::to_string(n);
}
}  // namespace

std::shared_ptr<const SqrtPartition> SqrtPartition::shared_for(
    std::uint32_t n) {
  static std::mutex mu;
  static std::map<std::uint32_t, SharedEntry> cache;  // node-stable addresses

  SharedEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu);
    entry = &cache[n];
  }
  std::call_once(entry->once, [&] {
    if (auto* disk = farm::ArtifactCache::process_cache()) {
      if (auto blob = disk->get(partition_cache_key(n))) {
        if (auto p = from_blob(blob->bytes()); p && p->n() == n) {
          entry->partition =
              std::make_shared<const SqrtPartition>(*std::move(p));
          shared_disk_loads_count.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
    entry->partition = std::make_shared<const SqrtPartition>(SqrtPartition(n));
    shared_builds_count.fetch_add(1, std::memory_order_relaxed);
    if (auto* disk = farm::ArtifactCache::process_cache()) {
      disk->put(partition_cache_key(n), entry->partition->to_blob());
    }
  });
  return entry->partition;
}

std::uint64_t SqrtPartition::shared_builds() {
  return shared_builds_count.load(std::memory_order_relaxed);
}

std::uint64_t SqrtPartition::shared_disk_loads() {
  return shared_disk_loads_count.load(std::memory_order_relaxed);
}

std::vector<std::uint8_t> SqrtPartition::to_blob() const {
  std::vector<std::uint8_t> out(3 * sizeof(std::uint32_t));
  std::memcpy(out.data(), &n_, sizeof n_);
  std::memcpy(out.data() + 4, &width_, sizeof width_);
  std::memcpy(out.data() + 8, &num_groups_, sizeof num_groups_);
  return out;
}

std::optional<SqrtPartition> SqrtPartition::from_blob(
    std::span<const std::uint8_t> blob) {
  if (blob.size() != 3 * sizeof(std::uint32_t)) return std::nullopt;
  std::uint32_t n = 0;
  std::uint32_t width = 0;
  std::uint32_t num_groups = 0;
  std::memcpy(&n, blob.data(), sizeof n);
  std::memcpy(&width, blob.data() + 4, sizeof width);
  std::memcpy(&num_groups, blob.data() + 8, sizeof num_groups);
  // Validate the ⌈√n⌉ invariants structurally: width is the least w with
  // w² ≥ n, and the group count covers exactly n ids.
  if (n < 1 || width < 1) return std::nullopt;
  const std::uint64_t w = width;
  if (w * w < n) return std::nullopt;
  if (width > 1 && (w - 1) * (w - 1) >= n) return std::nullopt;
  if (num_groups != ceil_div(n, width)) return std::nullopt;
  return SqrtPartition(n, width, num_groups);
}

std::uint32_t SqrtPartition::group_of(std::uint32_t p) const {
  OMX_REQUIRE(p < n_, "process out of range");
  return p / width_;
}

std::uint32_t SqrtPartition::group_size(std::uint32_t g) const {
  OMX_REQUIRE(g < num_groups_, "group out of range");
  const std::uint32_t lo = g * width_;
  const std::uint32_t hi = std::min(n_, lo + width_);
  return hi - lo;
}

std::span<const std::uint32_t> SqrtPartition::members(std::uint32_t g) const {
  OMX_REQUIRE(g < num_groups_, "group out of range");
  const std::uint32_t lo = g * width_;
  return {ids_.data() + lo, group_size(g)};
}

std::uint32_t SqrtPartition::index_in_group(std::uint32_t p) const {
  OMX_REQUIRE(p < n_, "process out of range");
  return p % width_;
}

}  // namespace omx::groups
