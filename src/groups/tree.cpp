#include "groups/tree.h"

#include <algorithm>

#include "support/bits.h"
#include "support/check.h"

namespace omx::groups {

TreeDecomposition::TreeDecomposition(std::uint32_t group_size)
    : w_(group_size) {
  OMX_REQUIRE(group_size >= 1, "empty group");
  layers_ = ceil_log2(group_size) + 1;  // 1 -> 1 layer, 2 -> 2, 5 -> 4, ...
}

std::uint32_t TreeDecomposition::bags_in_layer(std::uint32_t j) const {
  OMX_REQUIRE(j >= 1 && j <= layers_, "layer out of range");
  // Layer j bags cover 2^(j-1) members each.
  const std::uint32_t span = 1u << (j - 1);
  return static_cast<std::uint32_t>(ceil_div(w_, span));
}

TreeDecomposition::Bag TreeDecomposition::bag(std::uint32_t j,
                                              std::uint32_t k) const {
  OMX_REQUIRE(j >= 1 && j <= layers_, "layer out of range");
  const std::uint32_t span = 1u << (j - 1);
  const std::uint64_t lo64 = static_cast<std::uint64_t>(k) * span;
  const auto lo = static_cast<std::uint32_t>(std::min<std::uint64_t>(lo64, w_));
  const auto hi =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(lo64 + span, w_));
  return Bag{lo, hi};
}

std::uint32_t TreeDecomposition::bag_index_of(std::uint32_t j,
                                              std::uint32_t m) const {
  OMX_REQUIRE(j >= 1 && j <= layers_, "layer out of range");
  OMX_REQUIRE(m < w_, "member out of range");
  return m >> (j - 1);
}

std::uint32_t TreeDecomposition::bag_uid(std::uint32_t j,
                                         std::uint32_t k) const {
  OMX_REQUIRE(j >= 1 && j <= layers_, "layer out of range");
  std::uint32_t offset = 0;
  for (std::uint32_t layer = 1; layer < j; ++layer)
    offset += bags_in_layer(layer);
  return offset + k;
}

}  // namespace omx::groups
