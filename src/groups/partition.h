// The √n-decomposition (paper §3, Algorithm 1 line 3).
//
// A predefined partition of P = {0..n-1} into ⌈√n⌉ groups of size at most
// ⌈√n⌉ each, computable locally by every process from n alone. We use
// contiguous id ranges: group g = { g·⌈√n⌉, ..., min((g+1)·⌈√n⌉, n) - 1 }.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace omx::groups {

class SqrtPartition {
 public:
  explicit SqrtPartition(std::uint32_t n);

  /// Memoized decomposition: the partition is a pure function of n, so
  /// repeated trials share one immutable instance (the member table is
  /// O(n)) instead of rebuilding per trial. Thread-safe with per-key once
  /// semantics, like CommGraph::common_for_shared. When OMX_ARTIFACT_CACHE
  /// is set, the decomposition descriptor is additionally published
  /// to / validated against the on-disk artifact cache so farm workers
  /// agree on one durable artifact per n.
  static std::shared_ptr<const SqrtPartition> shared_for(std::uint32_t n);

  /// Lifetime counters for shared_for (built locally vs. loaded from the
  /// on-disk artifact cache) — test observability.
  static std::uint64_t shared_builds();
  static std::uint64_t shared_disk_loads();

  /// Decomposition descriptor blob for the artifact cache. from_blob
  /// validates the ⌈√n⌉ invariants structurally; a blob that fails them
  /// yields nullopt and cache users treat it as a miss.
  std::vector<std::uint8_t> to_blob() const;
  static std::optional<SqrtPartition> from_blob(
      std::span<const std::uint8_t> blob);

  std::uint32_t n() const { return n_; }
  std::uint32_t num_groups() const { return num_groups_; }
  std::uint32_t group_of(std::uint32_t p) const;
  std::uint32_t group_size(std::uint32_t g) const;
  /// Global process ids of group g (contiguous, ascending).
  std::span<const std::uint32_t> members(std::uint32_t g) const;
  /// Index of p within its group.
  std::uint32_t index_in_group(std::uint32_t p) const;
  /// Largest group size (the tree decomposition is sized for this).
  std::uint32_t max_group_size() const { return width_; }

 private:
  SqrtPartition(std::uint32_t n, std::uint32_t width,
                std::uint32_t num_groups);

  std::uint32_t n_;
  std::uint32_t width_;       // ⌈√n⌉
  std::uint32_t num_groups_;  // ⌈n / width⌉ <= ⌈√n⌉
  std::vector<std::uint32_t> ids_;  // 0..n-1 (span storage)
};

}  // namespace omx::groups
