// Fault-injection referee self-test layer.
//
// The engine's central robustness claim is its legality firewall: an
// adversary can only act within the adaptive-omission model of §2 (drop a
// message only if an endpoint is corrupted, never a self-delivery, corrupt
// at most t processes, never inject messages), and protocol randomness is
// metered by the rng ledger. That firewall is itself code, so it needs
// tests that *attack* it: the decorators here deliberately commit each
// class of illegal action, bypassing the cooperative AdversaryContext API
// through a friend backdoor, and the test suite asserts the engine's
// second-layer audit throws the precise exception for every class — at
// thread count 1 and 8 alike (the thread pool rethrows worker exceptions
// on the calling thread, so the matrix is uniform).
//
// Nothing in this header is used by experiments; it exists so a silent
// weakening of the firewall fails the build's test suite instead of
// silently admitting super-model adversaries into published tables.
#pragma once

#include <cstdint>

#include "sim/adversary.h"
#include "sim/machine.h"
#include "sim/message_plane.h"

namespace omx::sim::referee {

/// The only sanctioned way around the legality checks. Friended by
/// FaultState and AdversaryContext; exists solely so the self-tests can
/// commit violations the public API refuses to express.
struct Backdoor {
  /// Corrupt p unconditionally, ignoring the budget t.
  static void force_corrupt(FaultState& faults, ProcessId p) {
    if (p < faults.corrupted_.size() && !faults.corrupted_[p]) {
      faults.corrupted_[p] = true;
      ++faults.num_corrupted_;
    }
  }

  template <class P>
  static MessagePlane<P>* plane(AdversaryContext<P>& ctx) {
    return ctx.plane_;
  }

  template <class P>
  static FaultState* faults(AdversaryContext<P>& ctx) {
    return ctx.faults_;
  }
};

/// The classes of illegal action the engine must detect.
enum class Illegal {
  HonestLinkDrop,      // omit a message between two non-corrupted processes
  BudgetOverrun,       // corrupt more than t processes
  SelfDeliveryDrop,    // omit a process's message to itself
  WrongRoundDelivery,  // conjure a message onto the sealed wire
};

inline const char* to_string(Illegal c) {
  switch (c) {
    case Illegal::HonestLinkDrop: return "honest-link-drop";
    case Illegal::BudgetOverrun: return "budget-overrun";
    case Illegal::SelfDeliveryDrop: return "self-delivery-drop";
    case Illegal::WrongRoundDelivery: return "wrong-round-delivery";
  }
  return "?";
}

/// An adversary that commits exactly one illegal action of the requested
/// class, on the first round where the wire offers the opportunity, going
/// through the backdoor so AdversaryContext's eager checks cannot stop it.
/// The engine's post-intervention audit (or the plane's seal check) must
/// catch it; if the run completes, the firewall has a hole.
template <class P>
class IllegalActionAdversary final : public Adversary<P> {
 public:
  explicit IllegalActionAdversary(Illegal what) : what_(what) {}

  /// True once the illegal action has been committed.
  bool fired() const { return fired_; }

  void intervene(AdversaryContext<P>& ctx) override {
    if (fired_) return;
    MessagePlane<P>* plane = Backdoor::plane(ctx);
    FaultState* faults = Backdoor::faults(ctx);
    switch (what_) {
      case Illegal::HonestLinkDrop: {
        for (std::size_t i = 0; i < plane->num_messages(); ++i) {
          if (plane->from(i) != plane->to(i) &&
              !faults->is_corrupted(plane->from(i)) &&
              !faults->is_corrupted(plane->to(i))) {
            plane->mark_dropped(i);
            fired_ = true;
            return;
          }
        }
        return;  // no honest-honest message this round; try the next one
      }
      case Illegal::BudgetOverrun: {
        const std::uint32_t target = faults->budget() + 1;
        const auto n = static_cast<ProcessId>(plane->num_processes());
        for (ProcessId p = 0; p < n && faults->num_corrupted() < target;
             ++p) {
          Backdoor::force_corrupt(*faults, p);
        }
        fired_ = faults->num_corrupted() > faults->budget();
        return;
      }
      case Illegal::SelfDeliveryDrop: {
        for (std::size_t i = 0; i < plane->num_messages(); ++i) {
          if (plane->from(i) == plane->to(i)) {
            plane->mark_dropped(i);
            fired_ = true;
            return;
          }
        }
        return;  // no self-delivery this round; try the next one
      }
      case Illegal::WrongRoundDelivery: {
        // The wire was sealed before intervene(); appending a record now
        // models delivering a message into a round it was never sent in.
        plane->log().send(0, 0, P{});
        fired_ = true;
        return;
      }
    }
  }

 private:
  Illegal what_;
  bool fired_ = false;
};

/// Machine decorator: forwards every call to the wrapped machine, but one
/// designated process additionally draws `draws_per_round` unchecked
/// 64-bit words each round — modelling protocol code that ignores
/// can_draw(). Under a finite ledger budget the engine must surface
/// rng::BudgetExhausted (bounded budgets force the serial billing path, so
/// the exhaustion point is thread-count independent).
template <class P>
class OverdrawMachine final : public Machine<P> {
 public:
  OverdrawMachine(Machine<P>* inner, ProcessId who,
                  unsigned draws_per_round = 4)
      : inner_(inner), who_(who), draws_(draws_per_round) {}

  std::uint32_t num_processes() const override {
    return inner_->num_processes();
  }
  void set_lanes(unsigned lanes) override { inner_->set_lanes(lanes); }
  void begin_round(std::uint32_t round) override {
    inner_->begin_round(round);
  }
  bool finished() const override { return inner_->finished(); }

  void round(ProcessId p, RoundIo<P>& io) override {
    if (p == who_) {
      for (unsigned i = 0; i < draws_; ++i) io.rng().draw_bits(64);
    }
    inner_->round(p, io);
  }

 private:
  Machine<P>* inner_;
  ProcessId who_;
  unsigned draws_;
};

}  // namespace omx::sim::referee
