// Flat-buffer message plane: the engine's zero-allocation delivery substrate.
//
// The send side is factored into SendLog — a flat (fanout groups, payload
// arena) pair that both the plane itself (serial compute phase) and the
// engine's per-worker staging outboxes (sharded compute phase) use. Per
// round the plane stores:
//   * a payload arena — each *distinct* payload value is stored exactly
//     once, so a broadcast of one value to n-1 receivers costs one payload
//     slot, period;
//   * a group list — one POD entry per send *call* (unicast, broadcast, or
//     multicast), carrying the logical-index base of its fan-out. The
//     adversary and the metrics always observe *logical* point-to-point
//     messages: group g expands to fanout(g) consecutive logical indices
//     [base, base + fanout), in exactly the receiver order the equivalent
//     unicast loop would have produced — so a broadcast to n-1 receivers
//     costs O(1) staging instead of the n-1 twelve-byte records the
//     previous plane wrote, and a CSR-restricted multicast costs O(degree)
//     (its receiver list is copied once into a shared CSR-style arena);
//   * a word-packed drop set (`drops_`) marking adversary omissions by
//     logical index.
//
// Sharded rounds produce one private SendLog per worker; absorb() merges
// them in shard (== ascending process id) order, rebasing group bases and
// payload slots, so the plane's logical message sequence is byte-identical
// to a serial round.
//
// Two delivery modes:
//   * deliver() — materialized (default): a stable counting sort of the
//     surviving logical messages into one contiguous buffer plus a
//     per-receiver offset table; every inbox is a
//     std::span<const Message<P>>. Per-message accounting and trace
//     emission walk the groups in logical-index order, reproducing the
//     legacy per-record stream bit-for-bit.
//   * deliver_streamed() — nothing is materialized: accounting is done per
//     group (fanout × cached payload bits) plus one popcount scan of the
//     drop set, and the sealed wire is swapped into a front buffer that
//     receivers iterate next round via stream_inbox() / RoundIo::
//     for_each_in(). A receiver's cost is O(groups + its multicast
//     entries), so an n-broadcast round costs O(n) per receiver *total* —
//     no n² inbox buffer ever exists, which is what makes full-information
//     protocols at n = 65536 fit in memory. Streamed delivery produces the
//     same Metrics as materialized delivery; it does not support tracing
//     or inbox() spans (the engine enforces both).
//
// All buffers have round-persistent capacity: after warm-up, a round
// allocates only whatever the payloads themselves allocate internally.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/message.h"
#include "sim/metrics.h"
#include "support/check.h"
#include "trace/trace.h"

namespace omx::sim {

/// Word-packed omission flags (replaces the engine's old std::vector<bool>).
class DropSet {
 public:
  void reset(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }
  std::size_t size() const { return size_; }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Number of set (dropped) indices — a word-popcount scan, so per-round
  /// omission tallies (adversary::Recorder) cost O(messages/64), not a
  /// payload rescan.
  std::size_t count() const {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) {
      c += static_cast<std::size_t>(std::popcount(w));
    }
    return c;
  }

  /// Visit every set index in ascending order (word-at-a-time scan; used by
  /// the engine's post-intervention legality audit).
  template <class Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(bits));
        fn((w << 6) + b);
        bits &= bits - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

template <class P>
class MessagePlane;

/// One round's send-side log: fan-out groups over a payload arena. The
/// plane owns one (the wire); each engine worker owns another (its staging
/// outbox) whose contents are absorbed into the wire at the shard barrier.
/// Capacity persists across clear(), so steady-state rounds do not allocate.
template <class P>
class SendLog {
 public:
  /// Sentinel for multicast: no process is skipped.
  static constexpr ProcessId kNobody = UINT32_MAX;

  /// Fan-out shape of one send call.
  enum class Kind : std::uint8_t {
    kUnicast,        // one receiver (field a)
    kBroadcast,      // every process except the sender, ascending id
    kBroadcastSelf,  // every process including the sender, ascending id
    kList,           // receivers_[a, a + b), in list order
  };

  /// One send call. Logical messages [base, base + fanout) expand in the
  /// receiver order documented on Kind; `base` is the group's offset in the
  /// round's logical-index space (rebased on absorb).
  struct Group {
    std::uint64_t base;
    ProcessId from;
    std::uint32_t payload;  // slot in the payload arena
    std::uint32_t a;        // receiver (kUnicast) or arena offset (kList)
    std::uint32_t b;        // list length (kList)
    Kind kind;
  };

  explicit SendLog(std::uint32_t n = 0) : n_(n) {}

  /// Re-target the log at an n-process system and drop its contents.
  void reset(std::uint32_t n) {
    n_ = n;
    clear();
  }

  /// Drop this round's contents; capacity persists.
  void clear() {
    groups_.clear();
    receivers_.clear();
    payloads_.clear();
    total_ = 0;
  }

  std::uint32_t num_processes() const { return n_; }
  /// Number of *logical* point-to-point messages queued.
  std::size_t num_records() const { return static_cast<std::size_t>(total_); }
  std::size_t num_groups() const { return groups_.size(); }
  bool empty() const { return total_ == 0; }

  /// Stamp the round this log is collecting for (failure-message context).
  void set_round(std::uint32_t round) { round_ = round; }
  std::uint32_t round() const { return round_; }

  /// Pre-size the receiver arena (e.g. to the edge count of a CSR
  /// communication graph) so graph-restricted multicast rounds reach
  /// steady-state without reallocation.
  void reserve_receivers(std::size_t edges) { receivers_.reserve(edges); }

  void send(ProcessId from, ProcessId to, P payload) {
    OMX_CHECK(to < n_, "round " + std::to_string(round_) + ": process " +
                           std::to_string(from) +
                           " addressed a message to process " +
                           std::to_string(to) + ", outside the n=" +
                           std::to_string(n_) + " system");
    const std::uint32_t slot = stash(std::move(payload));
    groups_.push_back(Group{total_, from, slot, to, 0, Kind::kUnicast});
    total_ += 1;
  }

  /// One payload, fanned out to every process in id order (optionally
  /// including the sender itself). Logical messages and accounting are
  /// identical to the equivalent unicast loop.
  void broadcast(ProcessId from, P payload, bool include_self) {
    const std::uint32_t slot = stash(std::move(payload));
    const std::uint32_t fan = include_self ? n_ : n_ - 1;
    if (fan == 0) return;
    groups_.push_back(Group{total_, from, slot, 0, 0,
                            include_self ? Kind::kBroadcastSelf
                                         : Kind::kBroadcast});
    total_ += fan;
  }

  /// One payload, fanned out to the listed receivers in list order
  /// (`skip` is omitted where it appears; pass kNobody to keep all). The
  /// filtered list is copied once into the CSR-style receiver arena.
  void multicast(ProcessId from, std::span<const ProcessId> to, P payload,
                 ProcessId skip = kNobody) {
    const std::uint32_t slot = stash(std::move(payload));
    const auto offset = static_cast<std::uint64_t>(receivers_.size());
    OMX_CHECK(offset + to.size() <= UINT32_MAX,
              "multicast receiver arena exceeded 2^32 entries in one round");
    std::uint32_t len = 0;
    for (ProcessId q : to) {
      if (q == skip) continue;
      OMX_CHECK(q < n_, "round " + std::to_string(round_) + ": process " +
                            std::to_string(from) +
                            " multicast to process " + std::to_string(q) +
                            ", outside the n=" + std::to_string(n_) +
                            " system");
      receivers_.push_back(q);
      ++len;
    }
    if (len == 0) return;  // nothing on the wire (matches the unicast loop)
    groups_.push_back(Group{total_, from,  slot,
                            static_cast<std::uint32_t>(offset), len,
                            Kind::kList});
    total_ += len;
  }

  /// Receivers a group expands to.
  std::uint32_t fanout(const Group& g) const {
    switch (g.kind) {
      case Kind::kUnicast: return 1;
      case Kind::kBroadcast: return n_ - 1;
      case Kind::kBroadcastSelf: return n_;
      case Kind::kList: return g.b;
    }
    return 0;
  }

  /// Receiver of the rank-th logical message of group g (rank < fanout).
  ProcessId receiver(const Group& g, std::uint64_t rank) const {
    switch (g.kind) {
      case Kind::kUnicast:
        return g.a;
      case Kind::kBroadcast:
        return rank < g.from ? static_cast<ProcessId>(rank)
                             : static_cast<ProcessId>(rank + 1);
      case Kind::kBroadcastSelf:
        return static_cast<ProcessId>(rank);
      case Kind::kList:
        return receivers_[g.a + rank];
    }
    return 0;
  }

 private:
  friend class MessagePlane<P>;

  std::uint32_t stash(P&& payload) {
    payloads_.push_back(std::move(payload));
    return static_cast<std::uint32_t>(payloads_.size() - 1);
  }

  std::uint32_t n_;
  std::uint32_t round_ = 0;
  std::uint64_t total_ = 0;  // logical messages queued so far
  std::vector<Group> groups_;
  std::vector<ProcessId> receivers_;  // kList fan-out lists, CSR-style
  std::vector<P> payloads_;
};

template <class P>
class MessagePlane {
 public:
  /// Sentinel for multicast: no process is skipped.
  static constexpr ProcessId kNobody = SendLog<P>::kNobody;

  explicit MessagePlane(std::uint32_t n)
      : n_(n), log_(n), front_log_(n), inbox_offsets_(n + 1, 0) {}

  std::uint32_t num_processes() const { return n_; }

  /// Start a round's send phase. Clears the wire arena (capacity persists);
  /// the previous round's delivered inboxes (or streamed front buffer) stay
  /// readable. The round number stamps failure messages and guards against
  /// wrong-round injection.
  void begin_round(std::uint32_t round = 0) {
    round_ = round;
    log_.clear();
    log_.set_round(round);
    sealed_ = 0;
    hint_ = 0;
  }

  /// Round currently on the wire (as stamped by begin_round).
  std::uint32_t round() const { return round_; }

  // --- send side (computation phase) ---

  /// The wire's own send log — the serial compute phase writes through it.
  SendLog<P>& log() { return log_; }

  void send(ProcessId from, ProcessId to, P payload) {
    log_.send(from, to, std::move(payload));
  }

  void broadcast(ProcessId from, P payload, bool include_self) {
    log_.broadcast(from, std::move(payload), include_self);
  }

  void multicast(ProcessId from, std::span<const ProcessId> to, P payload,
                 ProcessId skip = kNobody) {
    log_.multicast(from, to, std::move(payload), skip);
  }

  /// Append a worker's staged log to the wire — rebasing group bases,
  /// payload slots and receiver-arena offsets — and clear the staged log
  /// (its capacity persists for the next round). Absorbing shard logs in
  /// ascending shard order reproduces the exact group/payload sequence of
  /// a serial round: each shard steps its processes in ascending id order,
  /// so concatenation *is* id order.
  void absorb(SendLog<P>& staged) {
    OMX_CHECK(staged.n_ == n_,
              "round " + std::to_string(round_) +
                  ": staged log targets a different system (staged n=" +
                  std::to_string(staged.n_) + ", wire n=" +
                  std::to_string(n_) + ")");
    const auto payload_off =
        static_cast<std::uint32_t>(log_.payloads_.size());
    const auto arena_off =
        static_cast<std::uint32_t>(log_.receivers_.size());
    const std::uint64_t base_off = log_.total_;
    log_.groups_.reserve(log_.groups_.size() + staged.groups_.size());
    for (const typename SendLog<P>::Group& g : staged.groups_) {
      auto moved = g;
      moved.base += base_off;
      moved.payload += payload_off;
      if (g.kind == SendLog<P>::Kind::kList) moved.a += arena_off;
      log_.groups_.push_back(moved);
    }
    log_.receivers_.insert(log_.receivers_.end(), staged.receivers_.begin(),
                           staged.receivers_.end());
    log_.payloads_.reserve(log_.payloads_.size() + staged.payloads_.size());
    for (P& payload : staged.payloads_) {
      log_.payloads_.push_back(std::move(payload));
    }
    log_.total_ += staged.total_;
    staged.clear();
  }

  // --- indexed logical-message view (adversary phase) ---

  std::size_t num_messages() const {
    return static_cast<std::size_t>(log_.total_);
  }
  ProcessId from(std::size_t i) const {
    return log_.groups_[locate(i)].from;
  }
  ProcessId to(std::size_t i) const {
    const auto& g = log_.groups_[locate(i)];
    return log_.receiver(g, i - g.base);
  }
  const P& payload(std::size_t i) const {
    return log_.payloads_[log_.groups_[locate(i)].payload];
  }

  /// End the send phase: size the drop set to this round's messages, record
  /// the sealed message count, and compute the bit-size cache — once per
  /// payload *slot*, so a broadcast's size is measured once, not n times.
  /// From here until delivery, the wire's contents are frozen — the
  /// adversary may omit messages, never add them — which is what makes the
  /// cache safe to share between the adversary phase (Recorder, wiretaps),
  /// trace emission and delivery accounting.
  void seal() {
    drops_.reset(static_cast<std::size_t>(log_.total_));
    sealed_ = static_cast<std::size_t>(log_.total_);
    const auto& payloads = log_.payloads_;
    payload_bits_.resize(payloads.size());
    for (std::size_t s = 0; s < payloads.size(); ++s) {
      payload_bits_[s] = bit_size(payloads[s]);
    }
    wire_bits_ = 0;
    for (const auto& g : log_.groups_) {
      wire_bits_ += static_cast<std::uint64_t>(log_.fanout(g)) *
                    payload_bits_[g.payload];
    }
  }

  /// Bit size of logical message #i (valid after seal()).
  std::uint64_t payload_bits(std::size_t i) const {
    return payload_bits_[log_.groups_[locate(i)].payload];
  }

  /// Total bits on the wire this round, dropped or not (valid after seal()).
  std::uint64_t wire_bits() const { return wire_bits_; }

  /// Number of messages marked dropped so far.
  std::size_t num_dropped() const { return drops_.count(); }

  void mark_dropped(std::size_t i) { drops_.set(i); }
  bool dropped(std::size_t i) const { return drops_.test(i); }

  /// Visit the index of every omitted message (engine legality audit).
  template <class Fn>
  void for_each_dropped(Fn&& fn) const {
    drops_.for_each_set(fn);
  }

  // --- delivery (communication phase) ---

  /// Materialized delivery. Account every logical message (sent-but-omitted
  /// still costs bits: the sender spent them), then counting-sort the
  /// survivors into the inbox buffer. Stable: each inbox sees its messages
  /// in global send order, exactly as the per-receiver push_back delivery
  /// did. With a trace sink, emits one kSend per logical message (and a
  /// kDrop after each omitted one) in wire order — the canonical order
  /// shard absorption already guarantees, so traced streams are
  /// bit-identical across thread counts.
  void deliver(Metrics& m, trace::TraceWriter* trace = nullptr) {
    check_sealed();
    auto& groups = log_.groups_;
    auto& payloads = log_.payloads_;
    payload_uses_.assign(payloads.size(), 0);
    counts_.assign(n_, 0);
    std::size_t delivered = 0;
    for (const auto& g : groups) {
      const std::uint32_t fan = log_.fanout(g);
      const std::uint64_t bits = payload_bits_[g.payload];
      for (std::uint32_t r = 0; r < fan; ++r) {
        const std::uint64_t i = g.base + r;
        const ProcessId to = log_.receiver(g, r);
        m.messages += 1;
        m.comm_bits += bits;
        if (trace != nullptr) {
          trace->emit(trace::Event{round_, trace::kSend, 0, g.from, to,
                                   bits});
        }
        if (drops_.test(static_cast<std::size_t>(i))) {
          m.omitted += 1;
          if (trace != nullptr) {
            trace->emit(trace::Event{round_, trace::kDrop, 0, g.from, to, i});
          }
          continue;
        }
        ++counts_[to];
        ++payload_uses_[g.payload];
        ++delivered;
      }
    }

    scratch_offsets_.resize(n_ + 1);
    scratch_offsets_[0] = 0;
    for (std::uint32_t p = 0; p < n_; ++p) {
      scratch_offsets_[p + 1] = scratch_offsets_[p] + counts_[p];
      counts_[p] = scratch_offsets_[p];  // reuse as scatter cursors
    }
    // Scatter the survivors straight into the staging buffer through the
    // per-receiver cursors (one pass, no index indirection). Stable: for a
    // fixed receiver the cursor advances in global send order. Slots are
    // overwritten by assignment, not reconstructed, so a payload holding a
    // heap buffer (e.g. a vector) reuses last round's capacity in place.
    // The last surviving use of a payload moves it; earlier fan-out uses
    // copy (a broadcast payload is shared by several receivers).
    staging_.resize(delivered);
    for (const auto& g : groups) {
      const std::uint32_t fan = log_.fanout(g);
      for (std::uint32_t r = 0; r < fan; ++r) {
        const std::uint64_t i = g.base + r;
        if (drops_.test(static_cast<std::size_t>(i))) continue;
        const ProcessId to = log_.receiver(g, r);
        Message<P>& dst = staging_[counts_[to]++];
        dst.from = g.from;
        dst.to = to;
        if (--payload_uses_[g.payload] == 0) {
          dst.payload = std::move(payloads[g.payload]);
        } else {
          dst.payload = payloads[g.payload];
        }
      }
    }
    inbox_store_.swap(staging_);
    inbox_offsets_.swap(scratch_offsets_);
  }

  /// Streamed delivery: aggregate accounting (identical Metrics totals to
  /// deliver()), no inbox materialization. The sealed wire is swapped into
  /// the front buffer that stream_inbox() iterates next round; per-receiver
  /// multicast entries are indexed once (counting sort over kList groups)
  /// so a receiver's walk cost is O(groups + its own multicast entries).
  /// Tracing is not supported in this mode (the engine routes traced runs
  /// through deliver()).
  void deliver_streamed(Metrics& m) {
    check_sealed();
    streamed_mode_ = true;
    for (const auto& g : log_.groups_) {
      const auto fan = static_cast<std::uint64_t>(log_.fanout(g));
      m.messages += fan;
      m.comm_bits += fan * payload_bits_[g.payload];
    }
    const std::size_t dropped = drops_.count();
    m.omitted += dropped;

    // Per-receiver index of kList logical messages, ascending by logical
    // index within each receiver (counting sort in group order).
    listed_counts_.assign(n_ + 1, 0);
    for (const auto& g : log_.groups_) {
      if (g.kind != SendLog<P>::Kind::kList) continue;
      for (std::uint32_t r = 0; r < g.b; ++r) {
        ++listed_counts_[log_.receivers_[g.a + r] + 1];
      }
    }
    listed_offsets_.resize(n_ + 1);
    listed_offsets_[0] = 0;
    for (std::uint32_t p = 0; p < n_; ++p) {
      listed_offsets_[p + 1] = listed_offsets_[p] + listed_counts_[p + 1];
      listed_counts_[p] = listed_offsets_[p];  // reuse as scatter cursors
    }
    listed_.resize(listed_offsets_[n_]);
    std::uint32_t gi = 0;
    for (const auto& g : log_.groups_) {
      if (g.kind == SendLog<P>::Kind::kList) {
        for (std::uint32_t r = 0; r < g.b; ++r) {
          const ProcessId to = log_.receivers_[g.a + r];
          listed_[listed_counts_[to]++] = ListedEntry{g.base + r, gi};
        }
      }
      ++gi;
    }

    std::swap(log_, front_log_);
    std::swap(drops_, front_drops_);
    // In a fault-free round the per-message drop test is pure overhead —
    // and an expensive one: the indices a receiver probes are spread over
    // an n^2-bit set (33 MB at n=16384), so every test is a cache miss.
    // One flag turns all of them into a register compare.
    front_drops_any_ = dropped != 0;
    std::swap(payload_bits_, front_payload_bits_);
    listed_.swap(front_listed_);
    listed_offsets_.swap(front_listed_offsets_);
    front_valid_ = true;
  }

  /// Messages delivered to p by the most recent deliver() call.
  std::span<const Message<P>> inbox(ProcessId p) const {
    OMX_CHECK(!streamed_mode_,
              "inbox() is unavailable after streamed delivery — this "
              "machine requires materialized delivery "
              "(Runner Options::delivery)");
    return std::span<const Message<P>>(
        inbox_store_.data() + inbox_offsets_[p],
        inbox_offsets_[p + 1] - inbox_offsets_[p]);
  }

  /// Visit every message delivered to p by the most recent
  /// deliver_streamed() call, in global send order: fn(from, payload).
  /// Broadcast/unicast membership is O(1) per group; kList entries come
  /// from the per-receiver index, merged by logical index.
  template <class Fn>
  void stream_inbox(ProcessId p, Fn&& fn) const {
    if (!front_valid_) return;  // round 0: nothing delivered yet
    const auto& gs = front_log_.groups_;
    std::size_t k = front_listed_offsets_.empty() ? 0
                                                  : front_listed_offsets_[p];
    const std::size_t k_end =
        front_listed_offsets_.empty() ? 0 : front_listed_offsets_[p + 1];
    for (const auto& g : gs) {
      while (k < k_end && front_listed_[k].idx < g.base) {
        emit_listed(front_listed_[k], fn);
        ++k;
      }
      std::uint64_t idx;
      switch (g.kind) {
        case SendLog<P>::Kind::kUnicast:
          if (g.a != p) continue;
          idx = g.base;
          break;
        case SendLog<P>::Kind::kBroadcast:
          if (p == g.from) continue;
          idx = g.base + (p < g.from ? p : p - 1u);
          break;
        case SendLog<P>::Kind::kBroadcastSelf:
          idx = g.base + p;
          break;
        case SendLog<P>::Kind::kList:
          continue;  // covered by the per-receiver index
      }
      if (!front_drops_any_ ||
          !front_drops_.test(static_cast<std::size_t>(idx))) {
        fn(g.from, front_log_.payloads_[g.payload]);
      }
    }
    while (k < k_end) {
      emit_listed(front_listed_[k], fn);
      ++k;
    }
  }

 private:
  struct ListedEntry {
    std::uint64_t idx;   // logical index (drop lookup + ordering)
    std::uint32_t group;
  };

  void check_sealed() const {
    // The wire was frozen at seal(); messages appearing afterwards would be
    // messages the adversary conjured into the round (an omission adversary
    // may suppress messages, never create or re-inject them).
    if (static_cast<std::size_t>(log_.total_) != sealed_) {
      throw AdversaryViolation(
          "round " + std::to_string(round_) + ": " +
          std::to_string(static_cast<std::size_t>(log_.total_) - sealed_) +
          " message(s) appeared on the wire after the computation phase was "
          "sealed — an omission adversary cannot inject or re-route "
          "messages");
    }
  }

  template <class Fn>
  void emit_listed(const ListedEntry& e, Fn& fn) const {
    if (front_drops_any_ &&
        front_drops_.test(static_cast<std::size_t>(e.idx))) {
      return;
    }
    const auto& g = front_log_.groups_[e.group];
    fn(g.from, front_log_.payloads_[g.payload]);
  }

  /// Group covering logical index i. Adversaries and the audit scan
  /// indices mostly in ascending order, so a cursor makes the common case
  /// O(1); random access falls back to binary search over group bases.
  std::size_t locate(std::size_t i) const {
    const auto& gs = log_.groups_;
    const auto covers = [&](std::size_t g) {
      return i >= gs[g].base && i - gs[g].base < log_.fanout(gs[g]);
    };
    if (hint_ < gs.size() && covers(hint_)) return hint_;
    if (hint_ + 1 < gs.size() && covers(hint_ + 1)) return ++hint_;
    auto it = std::upper_bound(
        gs.begin(), gs.end(), static_cast<std::uint64_t>(i),
        [](std::uint64_t v, const typename SendLog<P>::Group& g) {
          return v < g.base;
        });
    OMX_CHECK(it != gs.begin(), "logical message index out of range");
    hint_ = static_cast<std::size_t>(it - gs.begin()) - 1;
    return hint_;
  }

  std::uint32_t n_;
  std::uint32_t round_ = 0;
  SendLog<P> log_;
  DropSet drops_;
  std::size_t sealed_ = 0;          // wire size recorded at seal()
  std::uint64_t wire_bits_ = 0;     // total bits on the wire, cached at seal()
  mutable std::size_t hint_ = 0;    // sequential-access cursor for locate()

  // Streamed-mode front buffer: last round's sealed wire, readable while
  // the next round's sends accumulate in log_.
  SendLog<P> front_log_;
  DropSet front_drops_;
  bool front_drops_any_ = false;
  std::vector<std::uint64_t> front_payload_bits_;
  std::vector<ListedEntry> front_listed_;
  std::vector<std::size_t> front_listed_offsets_;
  bool front_valid_ = false;
  bool streamed_mode_ = false;

  // Delivery scratch + double-buffered inboxes (all capacity-persistent).
  std::vector<std::uint64_t> payload_bits_;  // per payload slot, at seal()
  std::vector<std::uint32_t> payload_uses_;
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> scratch_offsets_;
  std::vector<ListedEntry> listed_;
  std::vector<std::size_t> listed_counts_;
  std::vector<std::size_t> listed_offsets_;
  std::vector<Message<P>> staging_;
  std::vector<Message<P>> inbox_store_;
  std::vector<std::size_t> inbox_offsets_;
};

}  // namespace omx::sim
