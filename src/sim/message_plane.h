// Flat-buffer message plane: the engine's zero-allocation delivery substrate.
//
// The send side is factored into SendLog — a flat (records, payload arena)
// pair that both the plane itself (serial compute phase) and the engine's
// per-worker staging outboxes (sharded compute phase) use. Per round the
// plane stores:
//   * a payload arena — each *distinct* payload value is stored exactly
//     once, so a broadcast of one value to n-1 receivers costs one payload
//     slot plus n-1 twelve-byte fan-out records;
//   * a record list — one POD entry per *logical* point-to-point message
//     (from, to, payload slot). The adversary and the metrics always observe
//     logical messages: a multicast is indistinguishable, in ordering and in
//     bit/message/omission accounting, from the equivalent unicast loop;
//   * a word-packed drop set (`drops_`) marking adversary omissions.
//
// Sharded rounds produce one private SendLog per worker; absorb() merges
// them in shard (== ascending process id) order, remapping payload slots,
// so the plane's record sequence is byte-identical to a serial round.
//
// Delivery is a stable counting sort of the surviving records into one
// contiguous buffer plus a per-receiver offset table, so every inbox is a
// `std::span<const Message<P>>` and payload bit sizes are computed once per
// payload slot instead of once per logical message. All buffers have
// round-persistent capacity: after warm-up, a round allocates only whatever
// the payloads themselves allocate internally.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/message.h"
#include "sim/metrics.h"
#include "support/check.h"
#include "trace/trace.h"

namespace omx::sim {

/// Word-packed omission flags (replaces the engine's old std::vector<bool>).
class DropSet {
 public:
  void reset(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }
  std::size_t size() const { return size_; }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Number of set (dropped) indices — a word-popcount scan, so per-round
  /// omission tallies (adversary::Recorder) cost O(messages/64), not a
  /// payload rescan.
  std::size_t count() const {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) {
      c += static_cast<std::size_t>(std::popcount(w));
    }
    return c;
  }

  /// Visit every set index in ascending order (word-at-a-time scan; used by
  /// the engine's post-intervention legality audit).
  template <class Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(bits));
        fn((w << 6) + b);
        bits &= bits - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

template <class P>
class MessagePlane;

/// One round's send-side log: fan-out records over a payload arena. The
/// plane owns one (the wire); each engine worker owns another (its staging
/// outbox) whose contents are absorbed into the wire at the shard barrier.
/// Capacity persists across clear(), so steady-state rounds do not allocate.
template <class P>
class SendLog {
 public:
  /// Sentinel for multicast: no process is skipped.
  static constexpr ProcessId kNobody = UINT32_MAX;

  struct Record {
    ProcessId from;
    ProcessId to;
    std::uint32_t payload;  // slot in the payload arena
  };

  explicit SendLog(std::uint32_t n = 0) : n_(n) {}

  /// Re-target the log at an n-process system and drop its contents.
  void reset(std::uint32_t n) {
    n_ = n;
    clear();
  }

  /// Drop this round's contents; capacity persists.
  void clear() {
    records_.clear();
    payloads_.clear();
  }

  std::uint32_t num_processes() const { return n_; }
  std::size_t num_records() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Stamp the round this log is collecting for (failure-message context).
  void set_round(std::uint32_t round) { round_ = round; }
  std::uint32_t round() const { return round_; }

  void send(ProcessId from, ProcessId to, P payload) {
    OMX_CHECK(to < n_, "round " + std::to_string(round_) + ": process " +
                           std::to_string(from) +
                           " addressed a message to process " +
                           std::to_string(to) + ", outside the n=" +
                           std::to_string(n_) + " system");
    const std::uint32_t slot = stash(std::move(payload));
    records_.push_back(Record{from, to, slot});
  }

  /// One payload, fanned out to every process in id order (optionally
  /// including the sender itself). Logical messages and accounting are
  /// identical to the equivalent unicast loop.
  void broadcast(ProcessId from, P payload, bool include_self) {
    const std::uint32_t slot = stash(std::move(payload));
    for (ProcessId q = 0; q < n_; ++q) {
      if (q == from && !include_self) continue;
      records_.push_back(Record{from, q, slot});
    }
  }

  /// One payload, fanned out to the listed receivers in list order
  /// (`skip` is omitted where it appears; pass kNobody to keep all).
  void multicast(ProcessId from, std::span<const ProcessId> to, P payload,
                 ProcessId skip = kNobody) {
    const std::uint32_t slot = stash(std::move(payload));
    for (ProcessId q : to) {
      if (q == skip) continue;
      OMX_CHECK(q < n_, "round " + std::to_string(round_) + ": process " +
                            std::to_string(from) +
                            " multicast to process " + std::to_string(q) +
                            ", outside the n=" + std::to_string(n_) +
                            " system");
      records_.push_back(Record{from, q, slot});
    }
  }

 private:
  friend class MessagePlane<P>;

  std::uint32_t stash(P&& payload) {
    payloads_.push_back(std::move(payload));
    return static_cast<std::uint32_t>(payloads_.size() - 1);
  }

  std::uint32_t n_;
  std::uint32_t round_ = 0;
  std::vector<Record> records_;
  std::vector<P> payloads_;
};

template <class P>
class MessagePlane {
 public:
  /// Sentinel for multicast: no process is skipped.
  static constexpr ProcessId kNobody = SendLog<P>::kNobody;

  explicit MessagePlane(std::uint32_t n)
      : n_(n), log_(n), inbox_offsets_(n + 1, 0) {}

  std::uint32_t num_processes() const { return n_; }

  /// Start a round's send phase. Clears the wire arena (capacity persists);
  /// the previous round's delivered inboxes stay readable. The round number
  /// stamps failure messages and guards against wrong-round injection.
  void begin_round(std::uint32_t round = 0) {
    round_ = round;
    log_.clear();
    log_.set_round(round);
    sealed_ = 0;
  }

  /// Round currently on the wire (as stamped by begin_round).
  std::uint32_t round() const { return round_; }

  // --- send side (computation phase) ---

  /// The wire's own send log — the serial compute phase writes through it.
  SendLog<P>& log() { return log_; }

  void send(ProcessId from, ProcessId to, P payload) {
    log_.send(from, to, std::move(payload));
  }

  void broadcast(ProcessId from, P payload, bool include_self) {
    log_.broadcast(from, std::move(payload), include_self);
  }

  void multicast(ProcessId from, std::span<const ProcessId> to, P payload,
                 ProcessId skip = kNobody) {
    log_.multicast(from, to, std::move(payload), skip);
  }

  /// Append a worker's staged log to the wire, remapping payload slots, and
  /// clear the staged log (its capacity persists for the next round).
  /// Absorbing shard logs in ascending shard order reproduces the exact
  /// record/payload sequence of a serial round: each shard steps its
  /// processes in ascending id order, so concatenation *is* id order.
  void absorb(SendLog<P>& staged) {
    OMX_CHECK(staged.n_ == n_,
              "round " + std::to_string(round_) +
                  ": staged log targets a different system (staged n=" +
                  std::to_string(staged.n_) + ", wire n=" +
                  std::to_string(n_) + ")");
    const auto offset = static_cast<std::uint32_t>(log_.payloads_.size());
    log_.records_.reserve(log_.records_.size() + staged.records_.size());
    for (const typename SendLog<P>::Record& r : staged.records_) {
      log_.records_.push_back(
          typename SendLog<P>::Record{r.from, r.to, r.payload + offset});
    }
    log_.payloads_.reserve(log_.payloads_.size() + staged.payloads_.size());
    for (P& payload : staged.payloads_) {
      log_.payloads_.push_back(std::move(payload));
    }
    staged.clear();
  }

  // --- indexed logical-message view (adversary phase) ---

  std::size_t num_messages() const { return log_.records_.size(); }
  ProcessId from(std::size_t i) const { return log_.records_[i].from; }
  ProcessId to(std::size_t i) const { return log_.records_[i].to; }
  const P& payload(std::size_t i) const {
    return log_.payloads_[log_.records_[i].payload];
  }

  /// End the send phase: size the drop set to this round's messages, record
  /// the sealed message count, and compute the bit-size cache — once per
  /// payload *slot*, so a broadcast's size is measured once, not n times.
  /// From here until deliver(), the wire's contents are frozen — the
  /// adversary may omit messages, never add them — which is what makes the
  /// cache safe to share between the adversary phase (Recorder, wiretaps),
  /// trace emission and delivery accounting.
  void seal() {
    drops_.reset(log_.records_.size());
    sealed_ = log_.records_.size();
    const auto& payloads = log_.payloads_;
    payload_bits_.resize(payloads.size());
    for (std::size_t s = 0; s < payloads.size(); ++s) {
      payload_bits_[s] = bit_size(payloads[s]);
    }
    wire_bits_ = 0;
    for (const auto& r : log_.records_) {
      wire_bits_ += payload_bits_[r.payload];
    }
  }

  /// Bit size of logical message #i (valid after seal()).
  std::uint64_t payload_bits(std::size_t i) const {
    return payload_bits_[log_.records_[i].payload];
  }

  /// Total bits on the wire this round, dropped or not (valid after seal()).
  std::uint64_t wire_bits() const { return wire_bits_; }

  /// Number of messages marked dropped so far.
  std::size_t num_dropped() const { return drops_.count(); }

  void mark_dropped(std::size_t i) { drops_.set(i); }
  bool dropped(std::size_t i) const { return drops_.test(i); }

  /// Visit the index of every omitted message (engine legality audit).
  template <class Fn>
  void for_each_dropped(Fn&& fn) const {
    drops_.for_each_set(fn);
  }

  // --- delivery (communication phase) ---

  /// Account every logical message (sent-but-omitted still costs bits: the
  /// sender spent them), then counting-sort the survivors into the inbox
  /// buffer. Stable: each inbox sees its messages in global send order,
  /// exactly as the per-receiver push_back delivery did. With a trace sink,
  /// emits one kSend per record (and a kDrop after each omitted one) in
  /// wire order — the canonical order shard absorption already guarantees,
  /// so traced streams are bit-identical across thread counts.
  void deliver(Metrics& m, trace::TraceWriter* trace = nullptr) {
    // The wire was frozen at seal(); records appearing afterwards would be
    // messages the adversary conjured into the round (an omission adversary
    // may suppress messages, never create or re-inject them).
    if (log_.records_.size() != sealed_) {
      throw AdversaryViolation(
          "round " + std::to_string(round_) + ": " +
          std::to_string(log_.records_.size() - sealed_) +
          " message(s) appeared on the wire after the computation phase was "
          "sealed — an omission adversary cannot inject or re-route "
          "messages");
    }
    auto& records = log_.records_;
    auto& payloads = log_.payloads_;
    payload_uses_.assign(payloads.size(), 0);
    counts_.assign(n_, 0);
    std::size_t delivered = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto& r = records[i];
      m.messages += 1;
      m.comm_bits += payload_bits_[r.payload];
      if (trace != nullptr) {
        trace->emit(trace::Event{round_, trace::kSend, 0, r.from, r.to,
                                 payload_bits_[r.payload]});
      }
      if (drops_.test(i)) {
        m.omitted += 1;
        if (trace != nullptr) {
          trace->emit(trace::Event{round_, trace::kDrop, 0, r.from, r.to,
                                   static_cast<std::uint64_t>(i)});
        }
        continue;
      }
      ++counts_[r.to];
      ++payload_uses_[r.payload];
      ++delivered;
    }

    scratch_offsets_.resize(n_ + 1);
    scratch_offsets_[0] = 0;
    for (std::uint32_t p = 0; p < n_; ++p) {
      scratch_offsets_[p + 1] = scratch_offsets_[p] + counts_[p];
      counts_[p] = scratch_offsets_[p];  // reuse as scatter cursors
    }
    // Scatter the survivors straight into the staging buffer through the
    // per-receiver cursors (one pass, no index indirection). Stable: for a
    // fixed receiver the cursor advances in global send order. Slots are
    // overwritten by assignment, not reconstructed, so a payload holding a
    // heap buffer (e.g. a vector) reuses last round's capacity in place.
    // The last surviving use of a payload moves it; earlier fan-out uses
    // copy (a multicast payload is shared by several receivers).
    if constexpr (std::is_default_constructible_v<P>) {
      staging_.resize(delivered);
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (drops_.test(i)) continue;
        const auto& r = records[i];
        Message<P>& dst = staging_[counts_[r.to]++];
        dst.from = r.from;
        dst.to = r.to;
        if (--payload_uses_[r.payload] == 0) {
          dst.payload = std::move(payloads[r.payload]);
        } else {
          dst.payload = payloads[r.payload];
        }
      }
    } else {
      order_.resize(delivered);
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (drops_.test(i)) continue;
        order_[counts_[records[i].to]++] = static_cast<std::uint32_t>(i);
      }
      staging_.clear();
      staging_.reserve(delivered);
      for (const std::uint32_t idx : order_) {
        const auto& r = records[idx];
        if (--payload_uses_[r.payload] == 0) {
          staging_.push_back(
              Message<P>{r.from, r.to, std::move(payloads[r.payload])});
        } else {
          if constexpr (std::is_copy_constructible_v<P>) {
            staging_.push_back(Message<P>{r.from, r.to, payloads[r.payload]});
          } else {
            OMX_CHECK(false, "multicast payload type must be copyable");
          }
        }
      }
    }
    inbox_store_.swap(staging_);
    inbox_offsets_.swap(scratch_offsets_);
  }

  /// Messages delivered to p by the most recent deliver() call.
  std::span<const Message<P>> inbox(ProcessId p) const {
    return std::span<const Message<P>>(
        inbox_store_.data() + inbox_offsets_[p],
        inbox_offsets_[p + 1] - inbox_offsets_[p]);
  }

 private:
  std::uint32_t n_;
  std::uint32_t round_ = 0;
  SendLog<P> log_;
  DropSet drops_;
  std::size_t sealed_ = 0;          // wire size recorded at seal()
  std::uint64_t wire_bits_ = 0;     // total bits on the wire, cached at seal()

  // Delivery scratch + double-buffered inboxes (all capacity-persistent).
  std::vector<std::uint64_t> payload_bits_;  // per payload slot, at seal()
  std::vector<std::uint32_t> payload_uses_;
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> scratch_offsets_;
  std::vector<std::uint32_t> order_;
  std::vector<Message<P>> staging_;
  std::vector<Message<P>> inbox_store_;
  std::vector<std::size_t> inbox_offsets_;
};

}  // namespace omx::sim
