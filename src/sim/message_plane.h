// Flat-buffer message plane: the engine's zero-allocation delivery substrate.
//
// The send side is factored into SendLog — a flat (fanout groups, payload
// arena) pair that both the plane itself (serial compute phase) and the
// engine's per-worker staging outboxes (sharded compute phase) use. Per
// round the plane stores:
//   * a payload arena — each *distinct* payload value is stored exactly
//     once, so a broadcast of one value to n-1 receivers costs one payload
//     slot, period;
//   * a group list — one POD entry per send *call* (unicast, broadcast, or
//     multicast), carrying the logical-index base of its fan-out. The
//     adversary and the metrics always observe *logical* point-to-point
//     messages: group g expands to fanout(g) consecutive logical indices
//     [base, base + fanout), in exactly the receiver order the equivalent
//     unicast loop would have produced — so a broadcast to n-1 receivers
//     costs O(1) staging instead of the n-1 twelve-byte records the
//     previous plane wrote, and a CSR-restricted multicast costs O(degree)
//     (its receiver list is copied once into a shared CSR-style arena);
//   * a word-packed drop set (`drops_`) marking adversary omissions by
//     logical index.
//
// Sharded rounds produce one private SendLog per worker; stitch() registers
// them as wire *segments* in shard (== ascending process id) order — no
// payloads or receiver lists are moved or copied. seal() then builds a flat
// per-group wire index (global logical bases + direct payload/receiver
// pointers into the segments), so the plane's logical message sequence is
// byte-identical to a serial round while the old O(payloads + receivers)
// merge copy is gone entirely.
//
// Two delivery modes:
//   * deliver() — materialized (default): a stable counting sort of the
//     surviving logical messages into one contiguous buffer plus a
//     per-receiver offset table; every inbox is a
//     std::span<const Message<P>>. Accounting is aggregate (sealed message
//     count, cached wire bits, drop popcount — identical totals to a
//     per-message walk); trace emission walks the groups in logical-index
//     order, reproducing the legacy per-record stream bit-for-bit. Given a
//     thread pool, the count/scatter passes shard by destination range:
//     each lane counts and scatters only receivers in [n·w/L, n·(w+1)/L),
//     so inboxes land in disjoint staging slices and the result is
//     bit-identical to the serial sort at every lane count.
//   * deliver_streamed() — nothing is materialized: accounting is done per
//     group (fanout × cached payload bits) plus one popcount scan of the
//     drop set, and the sealed wire is swapped into a front buffer that
//     receivers iterate next round via stream_inbox() / RoundIo::
//     for_each_in(). A receiver's cost is O(groups + its multicast
//     entries), so an n-broadcast round costs O(n) per receiver *total* —
//     no n² inbox buffer ever exists, which is what makes full-information
//     protocols at n = 65536 fit in memory. A round whose wire is entirely
//     kList multicasts (graph-restricted machines: every send walks a CSR
//     adjacency list) skips the group walk and replays only the
//     per-receiver multicast index — O(Δ) per receiver, not O(groups).
//     The multicast index build itself shards by receiver range on the
//     pool. Streamed delivery produces the same Metrics as materialized
//     delivery; it does not support tracing or inbox() spans (the engine
//     enforces both).
//   * deliver_fused() — materialized delivery whose scatter pass also runs
//     a caller-supplied per-lane compute continuation (the engine's round
//     pipelining: round k+1's compute shard reads lane-local inboxes the
//     same lane just scattered).
//
// The adversary phase gets sharded helpers too: visit_index_range() walks
// any slice of the logical index space without the locate() cursor, and
// lane_index_range() splits that space at 64-aligned cuts so lanes own
// disjoint drop-bitset words — a parallel drop scan writes the same bitset
// a serial scan would, bit for bit.
//
// All buffers have round-persistent capacity: after warm-up, a round
// allocates only whatever the payloads themselves allocate internally.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/message.h"
#include "sim/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"
#include "trace/trace.h"

namespace omx::sim {

/// Word-packed omission flags (replaces the engine's old std::vector<bool>).
class DropSet {
 public:
  void reset(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }
  std::size_t size() const { return size_; }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Number of set (dropped) indices — a word-popcount scan, so per-round
  /// omission tallies (adversary::Recorder) cost O(messages/64), not a
  /// payload rescan.
  std::size_t count() const {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) {
      c += static_cast<std::size_t>(std::popcount(w));
    }
    return c;
  }

  /// Visit every set index in ascending order (word-at-a-time scan; used by
  /// the engine's post-intervention legality audit).
  template <class Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(bits));
        fn((w << 6) + b);
        bits &= bits - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

template <class P>
class MessagePlane;

/// One round's send-side log: fan-out groups over a payload arena. The
/// plane owns one (the wire's first segment); each engine worker owns
/// another (its staging arena) which is stitched onto the wire by pointer
/// at the shard barrier. Capacity persists across clear(), so steady-state
/// rounds do not allocate.
template <class P>
class SendLog {
 public:
  /// Sentinel for multicast: no process is skipped.
  static constexpr ProcessId kNobody = UINT32_MAX;

  /// Fan-out shape of one send call.
  enum class Kind : std::uint8_t {
    kUnicast,        // one receiver (field a)
    kBroadcast,      // every process except the sender, ascending id
    kBroadcastSelf,  // every process including the sender, ascending id
    kList,           // receivers_[a, a + b), in list order
  };

  /// One send call. Logical messages [base, base + fanout) expand in the
  /// receiver order documented on Kind; `base` is the group's offset in
  /// this log's local logical-index space (the plane's wire index adds the
  /// segment base when the log is stitched onto the wire).
  struct Group {
    std::uint64_t base;
    ProcessId from;
    std::uint32_t payload;  // slot in the payload arena
    std::uint32_t a;        // receiver (kUnicast) or arena offset (kList)
    std::uint32_t b;        // list length (kList)
    Kind kind;
  };

  explicit SendLog(std::uint32_t n = 0) : n_(n) {}

  /// Re-target the log at an n-process system and drop its contents.
  void reset(std::uint32_t n) {
    n_ = n;
    clear();
  }

  /// Drop this round's contents; capacity persists.
  void clear() {
    groups_.clear();
    receivers_.clear();
    payloads_.clear();
    total_ = 0;
  }

  std::uint32_t num_processes() const { return n_; }
  /// Number of *logical* point-to-point messages queued.
  std::size_t num_records() const { return static_cast<std::size_t>(total_); }
  std::size_t num_groups() const { return groups_.size(); }
  bool empty() const { return total_ == 0; }

  /// Stamp the round this log is collecting for (failure-message context).
  void set_round(std::uint32_t round) { round_ = round; }
  std::uint32_t round() const { return round_; }

  /// Pre-size the receiver arena (e.g. to the edge count of a CSR
  /// communication graph) so graph-restricted multicast rounds reach
  /// steady-state without reallocation.
  void reserve_receivers(std::size_t edges) { receivers_.reserve(edges); }

  void send(ProcessId from, ProcessId to, P payload) {
    OMX_CHECK(to < n_, "round " + std::to_string(round_) + ": process " +
                           std::to_string(from) +
                           " addressed a message to process " +
                           std::to_string(to) + ", outside the n=" +
                           std::to_string(n_) + " system");
    const std::uint32_t slot = stash(std::move(payload));
    groups_.push_back(Group{total_, from, slot, to, 0, Kind::kUnicast});
    total_ += 1;
  }

  /// One payload, fanned out to every process in id order (optionally
  /// including the sender itself). Logical messages and accounting are
  /// identical to the equivalent unicast loop.
  void broadcast(ProcessId from, P payload, bool include_self) {
    const std::uint32_t slot = stash(std::move(payload));
    const std::uint32_t fan = include_self ? n_ : n_ - 1;
    if (fan == 0) return;
    groups_.push_back(Group{total_, from, slot, 0, 0,
                            include_self ? Kind::kBroadcastSelf
                                         : Kind::kBroadcast});
    total_ += fan;
  }

  /// One payload, fanned out to the listed receivers in list order
  /// (`skip` is omitted where it appears; pass kNobody to keep all). The
  /// filtered list is copied once into the CSR-style receiver arena.
  void multicast(ProcessId from, std::span<const ProcessId> to, P payload,
                 ProcessId skip = kNobody) {
    const std::uint32_t slot = stash(std::move(payload));
    const auto offset = static_cast<std::uint64_t>(receivers_.size());
    OMX_CHECK(offset + to.size() <= UINT32_MAX,
              "multicast receiver arena exceeded 2^32 entries in one round");
    std::uint32_t len = 0;
    for (ProcessId q : to) {
      if (q == skip) continue;
      OMX_CHECK(q < n_, "round " + std::to_string(round_) + ": process " +
                            std::to_string(from) +
                            " multicast to process " + std::to_string(q) +
                            ", outside the n=" + std::to_string(n_) +
                            " system");
      receivers_.push_back(q);
      ++len;
    }
    if (len == 0) return;  // nothing on the wire (matches the unicast loop)
    groups_.push_back(Group{total_, from,  slot,
                            static_cast<std::uint32_t>(offset), len,
                            Kind::kList});
    total_ += len;
  }

  /// Receivers a group expands to.
  std::uint32_t fanout(const Group& g) const {
    switch (g.kind) {
      case Kind::kUnicast: return 1;
      case Kind::kBroadcast: return n_ - 1;
      case Kind::kBroadcastSelf: return n_;
      case Kind::kList: return g.b;
    }
    return 0;
  }

  /// Receiver of the rank-th logical message of group g (rank < fanout).
  ProcessId receiver(const Group& g, std::uint64_t rank) const {
    switch (g.kind) {
      case Kind::kUnicast:
        return g.a;
      case Kind::kBroadcast:
        return rank < g.from ? static_cast<ProcessId>(rank)
                             : static_cast<ProcessId>(rank + 1);
      case Kind::kBroadcastSelf:
        return static_cast<ProcessId>(rank);
      case Kind::kList:
        return receivers_[g.a + rank];
    }
    return 0;
  }

 private:
  friend class MessagePlane<P>;

  std::uint32_t stash(P&& payload) {
    payloads_.push_back(std::move(payload));
    return static_cast<std::uint32_t>(payloads_.size() - 1);
  }

  std::uint32_t n_;
  std::uint32_t round_ = 0;
  std::uint64_t total_ = 0;  // logical messages queued so far
  std::vector<Group> groups_;
  std::vector<ProcessId> receivers_;  // kList fan-out lists, CSR-style
  std::vector<P> payloads_;
};

template <class P>
class MessagePlane {
 public:
  /// Sentinel for multicast: no process is skipped.
  static constexpr ProcessId kNobody = SendLog<P>::kNobody;

  /// Below this many sealed messages the pool hand-off costs more than the
  /// parallel passes save; delivery and adversary scans fall back to the
  /// (bit-identical) serial walks.
  static constexpr std::size_t kParallelGrain = 1024;

  /// An attackable message surfaced by a sharded adversary scan.
  struct ScanHit {
    std::uint64_t idx;
    ProcessId from;
    ProcessId to;
  };

  explicit MessagePlane(std::uint32_t n)
      : n_(n), log_(n), front_log_(n), inbox_offsets_(n + 1, 0) {
    segs_.push_back(&log_);
  }

  // The wire index holds pointers into this plane's own log; moving the
  // plane would dangle them.
  MessagePlane(const MessagePlane&) = delete;
  MessagePlane& operator=(const MessagePlane&) = delete;

  std::uint32_t num_processes() const { return n_; }

  /// Start a round's send phase. Clears the wire's own segment (capacity
  /// persists) and detaches any stitched shard segments; the previous
  /// round's delivered inboxes (or streamed front buffer) stay readable.
  /// The round number stamps failure messages and guards against
  /// wrong-round injection.
  void begin_round(std::uint32_t round = 0) {
    round_ = round;
    log_.clear();
    log_.set_round(round);
    segs_.assign(1, &log_);
    sealed_ = 0;
    hint_ = 0;
  }

  /// Round currently on the wire (as stamped by begin_round).
  std::uint32_t round() const { return round_; }

  // --- send side (computation phase) ---

  /// The wire's own send log — the serial compute phase writes through it.
  SendLog<P>& log() { return log_; }

  void send(ProcessId from, ProcessId to, P payload) {
    log_.send(from, to, std::move(payload));
  }

  void broadcast(ProcessId from, P payload, bool include_self) {
    log_.broadcast(from, std::move(payload), include_self);
  }

  void multicast(ProcessId from, std::span<const ProcessId> to, P payload,
                 ProcessId skip = kNobody) {
    log_.multicast(from, to, std::move(payload), skip);
  }

  /// Stitch the workers' staging arenas onto the wire as segments, in the
  /// order given — which must be ascending shard order: each shard steps
  /// its processes in ascending id order, so segment concatenation *is* id
  /// order and the logical message sequence matches a serial round exactly.
  /// Nothing is copied; the shard logs must stay untouched until the
  /// round's delivery completes (streamed mode: until the *next* round's
  /// delivery swaps them out of the front buffer).
  void stitch(std::span<SendLog<P>* const> shards) {
    for (SendLog<P>* s : shards) {
      OMX_CHECK(s->n_ == n_,
                "round " + std::to_string(round_) +
                    ": staged log targets a different system (staged n=" +
                    std::to_string(s->n_) + ", wire n=" + std::to_string(n_) +
                    ")");
      segs_.push_back(s);
    }
  }

  // --- indexed logical-message view (adversary phase) ---

  /// Messages on the wire right now (live sum over all segments; the
  /// indexed accessors below additionally require seal()).
  std::size_t num_messages() const {
    std::uint64_t total = 0;
    for (const SendLog<P>* s : segs_) total += s->total_;
    return static_cast<std::size_t>(total);
  }
  ProcessId from(std::size_t i) const { return wire_[locate(i)].from; }
  ProcessId to(std::size_t i) const {
    const WireGroup& g = wire_[locate(i)];
    return receiver_of(g, i - g.base);
  }
  const P& payload(std::size_t i) const {
    return *wire_[locate(i)].payload;
  }

  /// End the send phase: build the flat wire index over all segments
  /// (global logical bases, direct payload/receiver pointers), size the
  /// drop set, and compute the bit-size cache — once per payload *slot*,
  /// so a broadcast's size is measured once, not n times. From here until
  /// delivery, the wire's contents are frozen — the adversary may omit
  /// messages, never add them — which is what makes the cache safe to
  /// share between the adversary phase (Recorder, wiretaps), trace
  /// emission and delivery accounting.
  void seal() {
    wire_.clear();
    payload_bits_.clear();
    non_list_groups_ = 0;
    std::uint64_t base = 0;
    std::uint32_t pbase = 0;
    for (const SendLog<P>* s : segs_) {
      for (const typename SendLog<P>::Group& g : s->groups_) {
        const ProcessId* recs = g.kind == SendLog<P>::Kind::kList
                                    ? s->receivers_.data() + g.a
                                    : nullptr;
        wire_.push_back(WireGroup{base + g.base,
                                  s->payloads_.data() + g.payload, recs,
                                  g.from, pbase + g.payload, g.a, g.b,
                                  g.kind});
        if (g.kind != SendLog<P>::Kind::kList) ++non_list_groups_;
      }
      for (const P& p : s->payloads_) payload_bits_.push_back(bit_size(p));
      base += s->total_;
      pbase += static_cast<std::uint32_t>(s->payloads_.size());
    }
    sealed_ = static_cast<std::size_t>(base);
    drops_.reset(sealed_);
    wire_bits_ = 0;
    for (const WireGroup& g : wire_) {
      wire_bits_ += static_cast<std::uint64_t>(fanout(g)) *
                    payload_bits_[g.pslot];
    }
    hint_ = 0;
  }

  /// Bit size of logical message #i (valid after seal()).
  std::uint64_t payload_bits(std::size_t i) const {
    return payload_bits_[wire_[locate(i)].pslot];
  }

  /// Total bits on the wire this round, dropped or not (valid after seal()).
  std::uint64_t wire_bits() const { return wire_bits_; }

  /// Number of messages marked dropped so far.
  std::size_t num_dropped() const { return drops_.count(); }

  void mark_dropped(std::size_t i) { drops_.set(i); }
  bool dropped(std::size_t i) const { return drops_.test(i); }

  /// Visit the index of every omitted message (engine legality audit).
  template <class Fn>
  void for_each_dropped(Fn&& fn) const {
    drops_.for_each_set(fn);
  }

  /// Visit every logical message with index in [lo, hi): fn(idx, from, to),
  /// ascending. Walks the wire index directly (no locate() cursor), so
  /// concurrent calls on disjoint ranges are safe — this is the substrate
  /// of the sharded adversary drop scan. Valid after seal().
  template <class Fn>
  void visit_index_range(std::uint64_t lo, std::uint64_t hi, Fn&& fn) const {
    if (lo >= hi) return;
    auto it = std::upper_bound(
        wire_.begin(), wire_.end(), lo,
        [](std::uint64_t v, const WireGroup& g) { return v < g.base; });
    if (it != wire_.begin()) --it;
    for (; it != wire_.end() && it->base < hi; ++it) {
      const WireGroup& g = *it;
      const std::uint32_t fan = fanout(g);
      const std::uint64_t r0 = lo > g.base ? lo - g.base : 0;
      const std::uint64_t r1 =
          std::min<std::uint64_t>(fan, hi - g.base);
      for (std::uint64_t r = r0; r < r1; ++r) {
        fn(g.base + r, g.from, receiver_of(g, r));
      }
    }
  }

  /// Lane w's slice of the logical index space, cut at multiples of 64 so
  /// every lane owns disjoint *words* of the drop bitset: lanes may
  /// mark_dropped() concurrently within their own slice and the resulting
  /// bitset is identical to a serial scan's.
  std::pair<std::uint64_t, std::uint64_t> lane_index_range(
      unsigned w, unsigned lanes) const {
    const auto total = static_cast<std::uint64_t>(sealed_);
    const auto cut = [&](unsigned k) -> std::uint64_t {
      if (k >= lanes) return total;
      return (total * k / lanes) & ~std::uint64_t{63};
    };
    return {cut(w), cut(w + 1)};
  }

  /// Per-lane candidate buffers for sharded adversary scans (capacity
  /// persists across rounds, like every other plane buffer).
  std::vector<std::vector<ScanHit>>& scan_scratch(unsigned lanes) {
    if (scan_scratch_.size() < lanes) scan_scratch_.resize(lanes);
    return scan_scratch_;
  }

  // --- delivery (communication phase) ---

  /// Materialized delivery. Account every logical message (sent-but-omitted
  /// still costs bits: the sender spent them), then counting-sort the
  /// survivors into the inbox buffer. Stable: each inbox sees its messages
  /// in global send order, exactly as the per-receiver push_back delivery
  /// did. With a trace sink, emits one kSend per logical message (and a
  /// kDrop after each omitted one) in wire order — the canonical order
  /// segment stitching already guarantees, so traced streams are
  /// bit-identical across thread counts. With a pool, the count and
  /// scatter passes shard by destination range (bit-identical result;
  /// traced runs stay serial).
  void deliver(Metrics& m, trace::TraceWriter* trace = nullptr,
               support::ThreadPool* pool = nullptr, unsigned lanes = 1) {
    check_sealed();
    m.messages += sealed_;
    m.comm_bits += wire_bits_;
    const std::size_t dropped = drops_.count();
    m.omitted += dropped;

    if (trace != nullptr) {
      for (const WireGroup& g : wire_) {
        const std::uint32_t fan = fanout(g);
        const std::uint64_t bits = payload_bits_[g.pslot];
        for (std::uint32_t r = 0; r < fan; ++r) {
          const std::uint64_t i = g.base + r;
          const ProcessId to = receiver_of(g, r);
          trace->emit(trace::Event{round_, trace::kSend, 0, g.from, to,
                                   bits});
          if (drops_.test(static_cast<std::size_t>(i))) {
            trace->emit(trace::Event{round_, trace::kDrop, 0, g.from, to, i});
          }
        }
      }
    }

    counts_.assign(n_, 0);
    const bool par = pool != nullptr && lanes > 1 && n_ >= lanes &&
                     sealed_ >= kParallelGrain;
    if (par) {
      pool->run([&](unsigned w) {
        count_range(dest_lo(w, lanes), dest_lo(w + 1, lanes));
      });
    } else {
      count_range(0, n_);
    }
    build_offsets();
    staging_.resize(sealed_ - dropped);
    if (par) {
      pool->run([&](unsigned w) {
        scatter_range(dest_lo(w, lanes), dest_lo(w + 1, lanes));
      });
    } else {
      scatter_range(0, n_);
    }
    inbox_store_.swap(staging_);
    inbox_offsets_.swap(scratch_offsets_);
  }

  /// Materialized delivery fused with the next round's compute phase (the
  /// engine's pipelining). The scatter job's lane w, after writing every
  /// inbox in its destination range, immediately runs compute(w, lo, hi) —
  /// which may read those inboxes via staged_inbox(p) for p in [lo, hi).
  /// Receiver ranges equal compute shards, so no lane reads another lane's
  /// staging slice. Inboxes/metrics are bit-identical to deliver().
  template <class ComputeFn>
  void deliver_fused(Metrics& m, support::ThreadPool& pool, unsigned lanes,
                     ComputeFn&& compute) {
    check_sealed();
    m.messages += sealed_;
    m.comm_bits += wire_bits_;
    const std::size_t dropped = drops_.count();
    m.omitted += dropped;

    counts_.assign(n_, 0);
    pool.run([&](unsigned w) {
      count_range(dest_lo(w, lanes), dest_lo(w + 1, lanes));
    });
    build_offsets();
    staging_.resize(sealed_ - dropped);
    pool.run([&](unsigned w) {
      const ProcessId lo = dest_lo(w, lanes);
      const ProcessId hi = dest_lo(w + 1, lanes);
      scatter_range(lo, hi);
      compute(w, lo, hi);
    });
    inbox_store_.swap(staging_);
    inbox_offsets_.swap(scratch_offsets_);
  }

  /// Inbox of p inside a deliver_fused compute continuation: the slice the
  /// current lane just scattered (identical to what inbox(p) returns after
  /// the fused call completes).
  std::span<const Message<P>> staged_inbox(ProcessId p) const {
    return std::span<const Message<P>>(
        staging_.data() + scratch_offsets_[p],
        scratch_offsets_[p + 1] - scratch_offsets_[p]);
  }

  /// Streamed delivery: aggregate accounting (identical Metrics totals to
  /// deliver()), no inbox materialization. The sealed wire is swapped into
  /// the front buffer that stream_inbox() iterates next round; per-receiver
  /// multicast entries are indexed once (counting sort over kList groups,
  /// sharded by receiver range when a pool is given) so a receiver's walk
  /// cost is O(groups + its own multicast entries) — or O(its own entries)
  /// when the whole wire is multicasts. Tracing is not supported in this
  /// mode (the engine routes traced runs through deliver()).
  void deliver_streamed(Metrics& m, support::ThreadPool* pool = nullptr,
                        unsigned lanes = 1) {
    check_sealed();
    streamed_mode_ = true;
    m.messages += sealed_;
    m.comm_bits += wire_bits_;
    const std::size_t dropped = drops_.count();
    m.omitted += dropped;

    // Per-receiver index of kList logical messages, ascending by logical
    // index within each receiver (counting sort in group order).
    std::size_t list_total = 0;
    for (const WireGroup& g : wire_) {
      if (g.kind == SendLog<P>::Kind::kList) list_total += g.b;
    }
    counts_.assign(n_, 0);
    const bool par = pool != nullptr && lanes > 1 && n_ >= lanes &&
                     list_total >= kParallelGrain;
    if (par) {
      pool->run([&](unsigned w) {
        list_count_range(dest_lo(w, lanes), dest_lo(w + 1, lanes));
      });
    } else {
      list_count_range(0, n_);
    }
    listed_offsets_.resize(n_ + 1);
    listed_offsets_[0] = 0;
    for (std::uint32_t p = 0; p < n_; ++p) {
      listed_offsets_[p + 1] = listed_offsets_[p] + counts_[p];
      counts_[p] = listed_offsets_[p];  // reuse as scatter cursors
    }
    listed_.resize(list_total);
    if (par) {
      pool->run([&](unsigned w) {
        list_scatter_range(dest_lo(w, lanes), dest_lo(w + 1, lanes));
      });
    } else {
      list_scatter_range(0, n_);
    }

    // Swap the sealed wire into the front buffer. The wire index's payload
    // and receiver pointers chase heap buffers, so swapping the own log's
    // *contents* (and leaving stitched shard arenas in place — the engine
    // double-banks them) keeps every pointer valid while log_ is reused
    // for the next round.
    std::swap(log_, front_log_);
    wire_.swap(front_wire_);
    std::swap(drops_, front_drops_);
    // In a fault-free round the per-message drop test is pure overhead —
    // and an expensive one: the indices a receiver probes are spread over
    // an n^2-bit set (33 MB at n=16384), so every test is a cache miss.
    // One flag turns all of them into a register compare.
    front_drops_any_ = dropped != 0;
    front_only_lists_ = non_list_groups_ == 0;
    listed_.swap(front_listed_);
    listed_offsets_.swap(front_listed_offsets_);
    front_valid_ = true;
  }

  /// Messages delivered to p by the most recent deliver() call.
  std::span<const Message<P>> inbox(ProcessId p) const {
    OMX_CHECK(!streamed_mode_,
              "inbox() is unavailable after streamed delivery — this "
              "machine requires materialized delivery "
              "(Runner Options::delivery)");
    return std::span<const Message<P>>(
        inbox_store_.data() + inbox_offsets_[p],
        inbox_offsets_[p + 1] - inbox_offsets_[p]);
  }

  /// Visit every message delivered to p by the most recent
  /// deliver_streamed() call, in global send order: fn(from, payload).
  /// Broadcast/unicast membership is O(1) per group; kList entries come
  /// from the per-receiver index, merged by logical index — and when the
  /// whole front wire is kList groups (graph-restricted machines), the
  /// group walk is skipped entirely and the cost is O(p's own entries).
  template <class Fn>
  void stream_inbox(ProcessId p, Fn&& fn) const {
    if (!front_valid_) return;  // round 0: nothing delivered yet
    std::size_t k = front_listed_offsets_.empty() ? 0
                                                  : front_listed_offsets_[p];
    const std::size_t k_end =
        front_listed_offsets_.empty() ? 0 : front_listed_offsets_[p + 1];
    if (front_only_lists_) {
      for (; k < k_end; ++k) emit_listed(front_listed_[k], fn);
      return;
    }
    for (const WireGroup& g : front_wire_) {
      while (k < k_end && front_listed_[k].idx < g.base) {
        emit_listed(front_listed_[k], fn);
        ++k;
      }
      std::uint64_t idx;
      switch (g.kind) {
        case SendLog<P>::Kind::kUnicast:
          if (g.a != p) continue;
          idx = g.base;
          break;
        case SendLog<P>::Kind::kBroadcast:
          if (p == g.from) continue;
          idx = g.base + (p < g.from ? p : p - 1u);
          break;
        case SendLog<P>::Kind::kBroadcastSelf:
          idx = g.base + p;
          break;
        case SendLog<P>::Kind::kList:
          continue;  // covered by the per-receiver index
      }
      if (!front_drops_any_ ||
          !front_drops_.test(static_cast<std::size_t>(idx))) {
        fn(g.from, *g.payload);
      }
    }
    while (k < k_end) {
      emit_listed(front_listed_[k], fn);
      ++k;
    }
  }

 private:
  /// One send call on the sealed wire: its group metadata flattened across
  /// segments — global logical base, global payload slot (bit-size cache),
  /// and direct pointers to its payload and (kList) receiver list inside
  /// the owning segment. Pointers stay valid from seal() until the owning
  /// log is next cleared, which is what lets the front buffer outlive the
  /// swap in deliver_streamed().
  struct WireGroup {
    std::uint64_t base;
    const P* payload;
    const ProcessId* recs;  // kList receivers (segment arena + offset)
    ProcessId from;
    std::uint32_t pslot;    // global payload slot
    std::uint32_t a;        // receiver (kUnicast)
    std::uint32_t b;        // list length (kList)
    typename SendLog<P>::Kind kind;
  };

  struct ListedEntry {
    std::uint64_t idx;    // logical index (drop lookup + ordering)
    std::uint32_t group;  // ordinal into the (front) wire index
  };

  std::uint32_t fanout(const WireGroup& g) const {
    switch (g.kind) {
      case SendLog<P>::Kind::kUnicast: return 1;
      case SendLog<P>::Kind::kBroadcast: return n_ - 1;
      case SendLog<P>::Kind::kBroadcastSelf: return n_;
      case SendLog<P>::Kind::kList: return g.b;
    }
    return 0;
  }

  ProcessId receiver_of(const WireGroup& g, std::uint64_t rank) const {
    switch (g.kind) {
      case SendLog<P>::Kind::kUnicast:
        return static_cast<ProcessId>(g.a);
      case SendLog<P>::Kind::kBroadcast:
        return rank < g.from ? static_cast<ProcessId>(rank)
                             : static_cast<ProcessId>(rank + 1);
      case SendLog<P>::Kind::kBroadcastSelf:
        return static_cast<ProcessId>(rank);
      case SendLog<P>::Kind::kList:
        return g.recs[rank];
    }
    return 0;
  }

  ProcessId dest_lo(unsigned w, unsigned lanes) const {
    return static_cast<ProcessId>(std::uint64_t{n_} * w / lanes);
  }

  void check_sealed() const {
    // The wire was frozen at seal(); messages appearing afterwards would be
    // messages the adversary conjured into the round (an omission adversary
    // may suppress messages, never create or re-inject them).
    const std::size_t live = num_messages();
    if (live != sealed_) {
      throw AdversaryViolation(
          "round " + std::to_string(round_) + ": " +
          std::to_string(live - sealed_) +
          " message(s) appeared on the wire after the computation phase was "
          "sealed — an omission adversary cannot inject or re-route "
          "messages");
    }
  }

  /// Tally surviving messages per receiver, restricted to receivers in
  /// [lo, hi) — lanes on disjoint ranges touch disjoint counts_ slots.
  void count_range(ProcessId lo, ProcessId hi) {
    for (const WireGroup& g : wire_) {
      switch (g.kind) {
        case SendLog<P>::Kind::kUnicast: {
          const auto q = static_cast<ProcessId>(g.a);
          if (q >= lo && q < hi &&
              !drops_.test(static_cast<std::size_t>(g.base))) {
            ++counts_[q];
          }
          break;
        }
        case SendLog<P>::Kind::kBroadcast:
          for (ProcessId q = lo; q < hi; ++q) {
            if (q == g.from) continue;
            const std::uint64_t i = g.base + (q < g.from ? q : q - 1u);
            if (!drops_.test(static_cast<std::size_t>(i))) ++counts_[q];
          }
          break;
        case SendLog<P>::Kind::kBroadcastSelf:
          for (ProcessId q = lo; q < hi; ++q) {
            if (!drops_.test(static_cast<std::size_t>(g.base + q))) {
              ++counts_[q];
            }
          }
          break;
        case SendLog<P>::Kind::kList:
          for (std::uint32_t r = 0; r < g.b; ++r) {
            const ProcessId q = g.recs[r];
            if (q >= lo && q < hi &&
                !drops_.test(static_cast<std::size_t>(g.base + r))) {
              ++counts_[q];
            }
          }
          break;
      }
    }
  }

  /// Turn counts into inbox offsets and scatter cursors.
  void build_offsets() {
    scratch_offsets_.resize(n_ + 1);
    scratch_offsets_[0] = 0;
    for (std::uint32_t p = 0; p < n_; ++p) {
      scratch_offsets_[p + 1] = scratch_offsets_[p] + counts_[p];
      counts_[p] = scratch_offsets_[p];  // reuse as scatter cursors
    }
  }

  /// Scatter the survivors addressed to [lo, hi) into the staging buffer
  /// through the per-receiver cursors. Stable: the wire index is walked in
  /// global send order, so for a fixed receiver the cursor advances in
  /// send order — identical inboxes at every lane count. Payloads are
  /// copied (never moved): a broadcast payload is shared by several
  /// receivers, possibly on different lanes. Slots are overwritten by
  /// assignment, not reconstructed, so a payload holding a heap buffer
  /// (e.g. a vector) reuses last round's capacity in place.
  void scatter_range(ProcessId lo, ProcessId hi) {
    for (const WireGroup& g : wire_) {
      const std::uint32_t fan = fanout(g);
      std::uint32_t r0 = 0;
      std::uint32_t r1 = fan;
      // Broadcast ranks map 1:1 onto ascending receivers; clip the rank
      // window instead of scanning all n receivers per lane.
      if (g.kind == SendLog<P>::Kind::kBroadcast ||
          g.kind == SendLog<P>::Kind::kBroadcastSelf) {
        const std::uint32_t skip =
            g.kind == SendLog<P>::Kind::kBroadcast ? 1u : 0u;
        r0 = lo <= g.from || skip == 0 ? lo : lo - skip;
        r1 = std::min<std::uint32_t>(
            fan, hi <= g.from || skip == 0 ? hi : hi - skip);
      }
      for (std::uint32_t r = r0; r < r1; ++r) {
        const ProcessId to = receiver_of(g, r);
        if (to < lo || to >= hi) continue;
        const std::uint64_t i = g.base + r;
        if (drops_.test(static_cast<std::size_t>(i))) continue;
        Message<P>& dst = staging_[counts_[to]++];
        dst.from = g.from;
        dst.to = to;
        dst.payload = *g.payload;
      }
    }
  }

  /// Count kList entries addressed to [lo, hi) (streamed-mode index build).
  void list_count_range(ProcessId lo, ProcessId hi) {
    for (const WireGroup& g : wire_) {
      if (g.kind != SendLog<P>::Kind::kList) continue;
      for (std::uint32_t r = 0; r < g.b; ++r) {
        const ProcessId q = g.recs[r];
        if (q >= lo && q < hi) ++counts_[q];
      }
    }
  }

  /// Scatter kList entries addressed to [lo, hi) into the per-receiver
  /// multicast index (group order == ascending logical index per receiver).
  void list_scatter_range(ProcessId lo, ProcessId hi) {
    std::uint32_t gi = 0;
    for (const WireGroup& g : wire_) {
      if (g.kind == SendLog<P>::Kind::kList) {
        for (std::uint32_t r = 0; r < g.b; ++r) {
          const ProcessId q = g.recs[r];
          if (q >= lo && q < hi) {
            listed_[counts_[q]++] = ListedEntry{g.base + r, gi};
          }
        }
      }
      ++gi;
    }
  }

  template <class Fn>
  void emit_listed(const ListedEntry& e, Fn& fn) const {
    if (front_drops_any_ &&
        front_drops_.test(static_cast<std::size_t>(e.idx))) {
      return;
    }
    const WireGroup& g = front_wire_[e.group];
    fn(g.from, *g.payload);
  }

  /// Wire-index group covering logical index i (valid after seal()).
  /// Adversaries and the audit scan indices mostly in ascending order, so
  /// a cursor makes the common case O(1); random access falls back to
  /// binary search over group bases. The cursor is not thread-safe —
  /// sharded scans use visit_index_range() instead.
  std::size_t locate(std::size_t i) const {
    const auto covers = [&](std::size_t g) {
      return i >= wire_[g].base && i - wire_[g].base < fanout(wire_[g]);
    };
    if (hint_ < wire_.size() && covers(hint_)) return hint_;
    if (hint_ + 1 < wire_.size() && covers(hint_ + 1)) return ++hint_;
    auto it = std::upper_bound(
        wire_.begin(), wire_.end(), static_cast<std::uint64_t>(i),
        [](std::uint64_t v, const WireGroup& g) { return v < g.base; });
    OMX_CHECK(it != wire_.begin(), "logical message index out of range");
    hint_ = static_cast<std::size_t>(it - wire_.begin()) - 1;
    return hint_;
  }

  std::uint32_t n_;
  std::uint32_t round_ = 0;
  SendLog<P> log_;                  // the wire's own segment (segs_[0])
  std::vector<SendLog<P>*> segs_;   // wire segments, in shard order
  std::vector<WireGroup> wire_;     // flat index over segs_, built at seal()
  DropSet drops_;
  std::size_t sealed_ = 0;          // wire size recorded at seal()
  std::uint64_t wire_bits_ = 0;     // total bits on the wire, cached at seal()
  std::size_t non_list_groups_ = 0;
  mutable std::size_t hint_ = 0;    // sequential-access cursor for locate()

  // Streamed-mode front buffer: last round's sealed wire index (plus the
  // own-log contents, swapped out of the way of the next round), readable
  // while the next round's sends accumulate.
  SendLog<P> front_log_;
  std::vector<WireGroup> front_wire_;
  DropSet front_drops_;
  bool front_drops_any_ = false;
  bool front_only_lists_ = false;
  std::vector<ListedEntry> front_listed_;
  std::vector<std::size_t> front_listed_offsets_;
  bool front_valid_ = false;
  bool streamed_mode_ = false;

  // Delivery scratch + double-buffered inboxes (all capacity-persistent).
  std::vector<std::uint64_t> payload_bits_;  // per payload slot, at seal()
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> scratch_offsets_;
  std::vector<ListedEntry> listed_;
  std::vector<std::size_t> listed_offsets_;
  std::vector<Message<P>> staging_;
  std::vector<Message<P>> inbox_store_;
  std::vector<std::size_t> inbox_offsets_;
  std::vector<std::vector<ScanHit>> scan_scratch_;
};

}  // namespace omx::sim
