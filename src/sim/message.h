// Point-to-point messages of the synchronous network.
//
// The engine is templated on the protocol's payload type P. Requirements on
// P: movable, and `std::uint64_t bit_size(const P&)` must be findable by ADL
// (or P must have a `bit_size()` member). Bit accounting mirrors the paper's
// logical message contents; see support/bits.h for the convention.
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>

namespace omx::sim {

using ProcessId = std::uint32_t;

template <class P>
concept HasBitSizeMember = requires(const P& p) {
  { p.bit_size() } -> std::convertible_to<std::uint64_t>;
};

template <class P>
  requires HasBitSizeMember<P>
std::uint64_t bit_size(const P& p) {
  return p.bit_size();
}

template <class P>
struct Message {
  ProcessId from;
  ProcessId to;
  P payload;
};

}  // namespace omx::sim
