// The synchronous execution engine.
//
// Drives a Machine<P> against an Adversary<P> under a rng::Ledger, producing
// Metrics. One iteration of the loop is one round of the model:
//
//   1. local computation phase: every process (in id order) consumes its
//      inbox and queues sends; random draws are billed to the ledger;
//   2. the adversary — full information — inspects all states (via whatever
//      probes it was wired with), the drawn coins, and the in-flight
//      messages, corrupts processes (within budget t) and omits messages on
//      corrupted processes' links;
//   3. communication phase: surviving messages are delivered; they appear in
//      receivers' inboxes next round.
//
// Phases 2 and 3 are inherently global; phase 1 is n independent local
// transitions and is where essentially all wall-time goes at large n. With
// Options::threads > 1 the engine shards phase 1 across a persistent thread
// pool while keeping every run bit-identical to the serial engine:
//
//   * processes are split into contiguous shards [n*w/k, n*(w+1)/k); worker
//     w steps its shard in ascending id order into a private staging
//     SendLog arena, reading only last round's sealed inboxes;
//   * staged arenas are stitched onto the plane's wire as segments in shard
//     order — pointers, not copies — which reconstructs the exact serial
//     record/payload sequence (concatenating ascending-id shards in shard
//     order *is* ascending id order) — so the adversary's indexed view, the
//     drop bitset, and delivery are untouched. Arenas are double-banked by
//     round parity so a wire being delivered (or held as the streamed front
//     buffer) is never clobbered by the next round's staging;
//   * random draws are billed to per-process racks and reduced at the shard
//     barrier (Ledger racked phase), making the totals independent of
//     thread interleaving. A round runs racked only when the ledger proves
//     budget checks cannot depend on billing order
//     (racked_admissible: headroom >= n x per-source slack below every
//     finite budget); budget-near rounds fall back to serial stepping, so
//     budget-exhaustion points are exactly the serial ones.
//
// Phases 2 and 3 shard on the same pool: the adversary context carries the
// pool for bulk drop scans (sim/adversary.h), and delivery's counting sort
// shards by destination range (sim/message_plane.h) — all bit-identical to
// the serial walks.
//
// With Options::pipeline, round k+1's computation phase is *fused* into
// round k's delivery: each delivery lane, after scattering the inboxes of
// its destination range, immediately steps those same processes through
// round k+1 (destination ranges equal compute shards, so a lane only reads
// inboxes it just wrote). This is only valid for machines whose phase 1
// reads the prior round's inbox and per-process state (FloodSet, Ben-Or —
// anything that runs sharded today), and the engine only engages it when
// the round would have run sharded anyway, delivery is materialized, and
// tracing is off (the trace format's canonical per-round event order cannot
// interleave two rounds). Decisions, Metrics, and rng accounting are
// bit-identical with the flag on or off.
//
// The run ends when the machine reports finished() or max_rounds elapses
// (the latter flagged in the result so tests can fail on non-termination).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rng/ledger.h"
#include "sim/adversary.h"
#include "sim/machine.h"
#include "sim/message.h"
#include "sim/message_plane.h"
#include "sim/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"
#include "trace/rng_tap.h"
#include "trace/trace.h"

namespace omx::sim {

struct RunResult {
  Metrics metrics;
  bool hit_round_cap = false;
  /// True iff the run was cut short by Options::deadline (cooperative
  /// watchdog: checked once per round before the computation phase).
  bool hit_deadline = false;
};

/// Optional per-phase wall-clock accounting (bench_engine): cumulative
/// nanoseconds spent in local computation, adversary intervention, and
/// delivery. Costs one clock read per phase per round when enabled, nothing
/// when not. compute_ns covers all of phase 1; in sharded rounds it splits
/// into stage_ns (parallel stepping into staged arenas) and merge_ns
/// (stitching staged arenas onto the wire + reducing the rng racks + the
/// seal). Pipelined rounds bill their fused delivery+compute to fused_ns
/// (neither compute_ns nor delivery_ns sees them). lane_busy_ns is the
/// pool's per-lane busy time over the run (all phases), so stage/merge
/// imbalance across lanes is visible without a profiler.
struct EngineStats {
  std::uint64_t rounds = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t adversary_ns = 0;
  std::uint64_t delivery_ns = 0;
  std::uint64_t stage_ns = 0;
  std::uint64_t merge_ns = 0;
  std::uint64_t fused_ns = 0;         // pipelined delivery+compute rounds
  std::uint64_t parallel_rounds = 0;  // rounds that took the sharded path
  std::uint64_t pipelined_rounds = 0; // rounds whose compute rode a delivery
  std::vector<std::uint64_t> lane_busy_ns;  // per pool lane, whole run
  unsigned threads = 1;               // resolved worker-lane count
};

template <class P>
class Runner {
 public:
  struct Options {
    std::uint64_t max_rounds = 1'000'000;
    /// Cooperative wall-clock watchdog: when nonzero, the engine checks the
    /// elapsed time at every round boundary and stops the run with
    /// RunResult::hit_deadline instead of spinning forever under an
    /// adversary that stalls the protocol. Never interrupts mid-round, so a
    /// deadline cannot corrupt state or tear a checkpointed trial.
    std::chrono::nanoseconds deadline{0};
    EngineStats* stats = nullptr;
    /// Worker lanes for the computation phase: 1 = serial (default),
    /// 0 = one lane per hardware thread, k = exactly k lanes.
    unsigned threads = 1;
    /// Per-source slack bounds promised to the rng ledger for racked
    /// rounds: no single process may draw more than this many calls/bits
    /// in one round. Generous for every protocol here (they draw O(1)
    /// calls of <= 64 bits per process per round); raise if a protocol
    /// draws more and budget-limited parallel runs start failing loudly.
    std::uint64_t rng_slack_calls = 64;
    std::uint64_t rng_slack_bits = 4096;
    /// Event-trace sink (trace/trace.h); nullptr = tracing off. The engine
    /// emits every round's events in the canonical order documented there,
    /// so the stream is bit-identical across thread counts. Ignored when
    /// tracing is compiled out (OMX_DISABLE_TRACING).
    trace::TraceWriter* trace = nullptr;
    /// How phase 3 hands messages to receivers.
    ///   * kMaterialized (default): counting-sorted inbox spans — what
    ///     every machine supports, required for tracing.
    ///   * kStreamed: no inbox buffer is ever built; machines iterate the
    ///     sealed wire via RoundIo::for_each_in(). Metrics totals are
    ///     identical to the materialized path. Only machines written
    ///     against for_each_in() support this; a machine that calls
    ///     io.inbox() fails loudly. Incompatible with tracing (the
    ///     constructor rejects the combination).
    enum class Delivery { kMaterialized, kStreamed };
    Delivery delivery = Delivery::kMaterialized;
    /// Fuse round k+1's computation into round k's delivery (see the header
    /// comment). Requires threads > 1 and materialized delivery; silently
    /// inert when tracing is on (the canonical trace order cannot
    /// interleave rounds), when delivery is streamed, or in rounds that
    /// fall back to serial stepping near rng-budget exhaustion. Results are
    /// bit-identical with the flag on or off.
    bool pipeline = false;
  };

  Runner(std::uint32_t n, std::uint32_t fault_budget, rng::Ledger* ledger,
         Adversary<P>* adversary, Options options = {})
      : n_(n),
        ledger_(ledger),
        adversary_(adversary),
        options_(options),
        faults_(n, fault_budget) {
    OMX_REQUIRE(ledger != nullptr && adversary != nullptr,
                "runner needs a ledger and an adversary");
    OMX_REQUIRE(ledger->num_processes() >= n,
                "ledger must cover all processes");
    OMX_REQUIRE(options_.delivery == Options::Delivery::kMaterialized ||
                    options_.trace == nullptr,
                "streamed delivery cannot emit per-message traces — run "
                "traced executions with materialized delivery");
    unsigned lanes = options_.threads == 0
                         ? support::ThreadPool::hardware_threads()
                         : options_.threads;
    if (lanes > n_) lanes = n_ == 0 ? 1 : n_;
    if (lanes > 1) {
      pool_ = std::make_unique<support::ThreadPool>(lanes);
      // Two banks of staging arenas, alternated by round parity: the wire
      // holds pointers into the bank it was stitched from until its
      // delivery completes (streamed mode: until the *next* delivery swaps
      // the front buffer), so the following round must stage elsewhere.
      stage_.reserve(2 * std::size_t{lanes});
      for (unsigned i = 0; i < 2 * lanes; ++i) stage_.emplace_back(n_);
      for (unsigned b = 0; b < 2; ++b) {
        bank_ptrs_[b].reserve(lanes);
        for (unsigned w = 0; w < lanes; ++w) {
          bank_ptrs_[b].push_back(&stage_[b * lanes + w]);
        }
      }
    }
    lanes_ = lanes;
  }

  const FaultState& faults() const { return faults_; }

  /// Worker lanes this runner steps phase 1 with (1 = serial).
  unsigned lanes() const { return lanes_; }

  RunResult run(Machine<P>& machine) {
    OMX_REQUIRE(machine.num_processes() == n_,
                "machine/process-count mismatch (machine has " +
                    std::to_string(machine.num_processes()) +
                    " processes, runner drives " + std::to_string(n_) + ")");
    const std::uint64_t base_calls = ledger_->calls();
    const std::uint64_t base_bits = ledger_->bits();

    machine.set_lanes(lanes_);

    MessagePlane<P> plane(n_);
    RunResult result;
    Metrics& m = result.metrics;
    EngineStats* const stats = options_.stats;
    if (stats) stats->threads = lanes_;
    // Pool busy-ns baselines, so lane_busy_ns reports this run only even
    // when the same runner executes several machines.
    std::vector<std::uint64_t> lane_busy_base;
    if (stats && pool_) {
      lane_busy_base.resize(lanes_);
      for (unsigned w = 0; w < lanes_; ++w) {
        lane_busy_base[w] = pool_->lane_busy_ns(w);
      }
    }
    using Clock = std::chrono::steady_clock;
    Clock::time_point t0;
    Clock::time_point t1;
    const bool watchdog = options_.deadline.count() > 0;
    const Clock::time_point give_up_at = Clock::now() + options_.deadline;

    // Tracing: rng draws are staged per process by the tap (hooked into the
    // ledger for the duration of the run, RAII so an engine exception
    // unhooks it) and drained in id order at the shard barrier; corruption
    // transitions are detected by diffing the fault state against
    // `corrupt_seen` after each intervention. All of it is skipped — and
    // emit() compiles to nothing — when tracing is off.
    trace::TraceWriter* const tracer =
        trace::kCompiledIn ? options_.trace : nullptr;
    trace::RngTap tap(tracer != nullptr ? n_ : 0);
    const rng::ScopedDrawObserver hook(ledger_,
                                       tracer != nullptr ? &tap : nullptr);
    std::vector<char> corrupt_seen;
    if (tracer != nullptr) corrupt_seen.assign(n_, 0);

    const bool streamed = options_.delivery == Options::Delivery::kStreamed;
    const MessagePlane<P>* const stream = streamed ? &plane : nullptr;
    const std::span<const Message<P>> no_inbox;
    // Pipelining preconditions that hold for the whole run; the per-round
    // racked-admissibility check happens at each fuse point.
    const bool pipeline_capable =
        options_.pipeline && lanes_ > 1 && !streamed && tracer == nullptr;

    std::uint32_t round = 0;
    // True when a fused delivery already ran this round's computation
    // phase: the loop skips straight to the adversary phase.
    bool staged_ahead = false;
    for (;;) {
      if (!staged_ahead) {
        if (machine.finished()) break;
        if (round >= options_.max_rounds) {
          result.hit_round_cap = true;
          break;
        }
        if (watchdog && Clock::now() >= give_up_at) {
          result.hit_deadline = true;
          break;
        }
        ledger_->begin_round_window();
        machine.begin_round(round);
        if (tracer != nullptr) {
          tracer->emit(trace::Event{round, trace::kRoundBegin, 0, 0, 0, 0});
        }

        // Phase 1: local computation (+ queuing of sends). Sharded when the
        // runner has lanes and the ledger proves budget checks cannot
        // depend on billing order this round; serial otherwise.
        if (stats) t0 = Clock::now();
        plane.begin_round(round);
        const bool sharded =
            lanes_ > 1 &&
            ledger_->racked_admissible(options_.rng_slack_calls,
                                       options_.rng_slack_bits);
        if (sharded) {
          ledger_->begin_racked_phase();
          pool_->run([&](unsigned w) {
            SendLog<P>& log = *bank_ptrs_[round & 1][w];
            log.clear();
            log.set_round(round);
            const auto lo = static_cast<ProcessId>(
                (std::uint64_t{n_} * w) / lanes_);
            const auto hi = static_cast<ProcessId>(
                (std::uint64_t{n_} * (w + 1)) / lanes_);
            for (ProcessId p = lo; p < hi; ++p) {
              RoundIo<P> io(round, p,
                            streamed ? no_inbox : plane.inbox(p), &log,
                            &ledger_->source(p), w, stream);
              machine.round(p, io);
            }
          });
          if (stats) t1 = Clock::now();
          // Shard order == ascending process-id order: the wire ends up
          // byte-identical to a serial round.
          plane.stitch(bank_ptrs_[round & 1]);
          ledger_->end_racked_phase(options_.rng_slack_calls,
                                    options_.rng_slack_bits);
        } else {
          for (ProcessId p = 0; p < n_; ++p) {
            RoundIo<P> io(round, p,
                          streamed ? no_inbox : plane.inbox(p),
                          &plane.log(), &ledger_->source(p), 0, stream);
            machine.round(p, io);
          }
        }
        plane.seal();
        if (stats && sharded) {
          stats->stage_ns += static_cast<std::uint64_t>(
              std::chrono::nanoseconds(t1 - t0).count());
          stats->merge_ns += static_cast<std::uint64_t>(
              std::chrono::nanoseconds(Clock::now() - t1).count());
          ++stats->parallel_rounds;
        }
        if (tracer != nullptr) tap.drain(round, *tracer);
        if (stats) {
          stats->compute_ns += static_cast<std::uint64_t>(
              std::chrono::nanoseconds(Clock::now() - t0).count());
        }
      }

      // Phase 2: adversary intervention (full information), then a
      // defense-in-depth audit: AdversaryContext validates each action
      // eagerly, but an adversary holding a raw plane pointer (or the
      // referee's fault-injection backdoor) could bypass it, so the engine
      // re-validates the round's net effect before delivering. The context
      // carries the pool so bulk drop scans shard by index range.
      if (stats) t0 = Clock::now();
      AdversaryContext<P> ctx(round, &plane, &faults_, pool_.get(), lanes_);
      adversary_->intervene(ctx);
      audit_intervention(plane, round);
      if (tracer != nullptr) {
        // Processes newly corrupted by this intervention, in id order (the
        // canonical trace order; the live corruption order is not recorded).
        for (ProcessId p = 0; p < n_; ++p) {
          if (faults_.is_corrupted(p) && !corrupt_seen[p]) {
            corrupt_seen[p] = 1;
            tracer->emit(trace::Event{round, trace::kCorrupt, 0, p,
                                      faults_.num_corrupted(), 0});
          }
        }
      }
      if (stats) {
        stats->adversary_ns += static_cast<std::uint64_t>(
            std::chrono::nanoseconds(Clock::now() - t0).count());
      }

      // Phase 3: delivery + accounting. Sent-but-omitted messages still
      // count toward communication (the sender spent the bits). When
      // pipelining, fuse round+1's computation into the scatter pass —
      // legal exactly when the loop top would have run round+1 sharded
      // (same finished/cap/deadline/racked checks, evaluated on identical
      // state: finished() is fixed once phase 1 ran, and the adversary
      // cannot change it).
      if (stats) t0 = Clock::now();
      staged_ahead = false;
      const std::uint32_t next = round + 1;
      const bool fuse =
          pipeline_capable && !machine.finished() &&
          next < options_.max_rounds &&
          !(watchdog && Clock::now() >= give_up_at) &&
          ledger_->racked_admissible(options_.rng_slack_calls,
                                     options_.rng_slack_bits);
      if (fuse) {
        ledger_->begin_round_window();
        machine.begin_round(next);
        ledger_->begin_racked_phase();
        plane.deliver_fused(
            m, *pool_, lanes_,
            [&](unsigned w, ProcessId lo, ProcessId hi) {
              SendLog<P>& log = *bank_ptrs_[next & 1][w];
              log.clear();
              log.set_round(next);
              for (ProcessId p = lo; p < hi; ++p) {
                RoundIo<P> io(next, p, plane.staged_inbox(p), &log,
                              &ledger_->source(p), w, nullptr);
                machine.round(p, io);
              }
            });
        ledger_->end_racked_phase(options_.rng_slack_calls,
                                  options_.rng_slack_bits);
        plane.begin_round(next);
        plane.stitch(bank_ptrs_[next & 1]);
        plane.seal();
        if (stats) {
          stats->fused_ns += static_cast<std::uint64_t>(
              std::chrono::nanoseconds(Clock::now() - t0).count());
          ++stats->pipelined_rounds;
          ++stats->parallel_rounds;
          ++stats->rounds;
        }
        staged_ahead = true;
      } else {
        if (streamed) {
          plane.deliver_streamed(m, pool_.get(), lanes_);
        } else {
          plane.deliver(m, tracer, pool_.get(), lanes_);
        }
        if (stats) {
          stats->delivery_ns += static_cast<std::uint64_t>(
              std::chrono::nanoseconds(Clock::now() - t0).count());
          ++stats->rounds;
        }
      }
      ++round;
      m.rounds = round;
    }

    m.random_calls = ledger_->calls() - base_calls;
    m.random_bits = ledger_->bits() - base_bits;
    m.corrupted = faults_.num_corrupted();
    if (stats && pool_) {
      if (stats->lane_busy_ns.size() != lanes_) {
        stats->lane_busy_ns.assign(lanes_, 0);
      }
      for (unsigned w = 0; w < lanes_; ++w) {
        stats->lane_busy_ns[w] +=
            pool_->lane_busy_ns(w) - lane_busy_base[w];
      }
    }
    if (tracer != nullptr) {
      const std::uint32_t reason =
          result.hit_deadline ? 2u : (result.hit_round_cap ? 1u : 0u);
      tracer->emit(
          trace::Event{round, trace::kFinish, 0, reason, 0, m.rounds});
    }
    return result;
  }

 private:
  /// Legality firewall, second layer: every omission must touch a corrupted
  /// endpoint and spare self-deliveries, and the corruption count must
  /// respect the budget t — no matter how the adversary effected its
  /// actions. Violations throw AdversaryViolation with round/process
  /// context, matching what AdversaryContext enforces eagerly.
  void audit_intervention(const MessagePlane<P>& plane, std::uint32_t round) {
    if (faults_.num_corrupted() > faults_.budget()) {
      throw AdversaryViolation(
          "round " + std::to_string(round) +
          ": corruption budget exceeded (" +
          std::to_string(faults_.num_corrupted()) +
          " corrupted processes > t=" + std::to_string(faults_.budget()) +
          ")");
    }
    plane.for_each_dropped([&](std::size_t i) {
      const ProcessId from = plane.from(i);
      const ProcessId to = plane.to(i);
      if (from == to) {
        throw AdversaryViolation(
            "round " + std::to_string(round) +
            ": omitted the self-delivery of process " + std::to_string(from));
      }
      if (!faults_.is_corrupted(from) && !faults_.is_corrupted(to)) {
        throw AdversaryViolation(
            "round " + std::to_string(round) + ": omitted message " +
            std::to_string(from) + "->" + std::to_string(to) +
            " between two non-corrupted processes");
      }
    });
  }

  std::uint32_t n_;
  rng::Ledger* ledger_;
  Adversary<P>* adversary_;
  Options options_;
  FaultState faults_;
  unsigned lanes_ = 1;
  std::unique_ptr<support::ThreadPool> pool_;
  // Two banks of per-lane staging arenas (bank b lane w = stage_[b*lanes+w])
  // plus the pointer lists stitch() consumes, in shard order.
  std::vector<SendLog<P>> stage_;
  std::vector<SendLog<P>*> bank_ptrs_[2];
};

}  // namespace omx::sim
