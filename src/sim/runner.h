// The synchronous execution engine.
//
// Drives a Machine<P> against an Adversary<P> under a rng::Ledger, producing
// Metrics. One iteration of the loop is one round of the model:
//
//   1. local computation phase: every process (in id order) consumes its
//      inbox and queues sends; random draws are billed to the ledger;
//   2. the adversary — full information — inspects all states (via whatever
//      probes it was wired with), the drawn coins, and the in-flight
//      messages, corrupts processes (within budget t) and omits messages on
//      corrupted processes' links;
//   3. communication phase: surviving messages are delivered; they appear in
//      receivers' inboxes next round.
//
// The run ends when the machine reports finished() or max_rounds elapses
// (the latter flagged in the result so tests can fail on non-termination).
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "rng/ledger.h"
#include "sim/adversary.h"
#include "sim/machine.h"
#include "sim/message.h"
#include "sim/message_plane.h"
#include "sim/metrics.h"
#include "support/check.h"

namespace omx::sim {

struct RunResult {
  Metrics metrics;
  bool hit_round_cap = false;
};

/// Optional per-phase wall-clock accounting (bench_engine): cumulative
/// nanoseconds spent in local computation, adversary intervention, and
/// delivery. Costs one clock read per phase per round when enabled, nothing
/// when not.
struct EngineStats {
  std::uint64_t rounds = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t adversary_ns = 0;
  std::uint64_t delivery_ns = 0;
};

template <class P>
class Runner {
 public:
  struct Options {
    std::uint64_t max_rounds = 1'000'000;
    EngineStats* stats = nullptr;
  };

  Runner(std::uint32_t n, std::uint32_t fault_budget, rng::Ledger* ledger,
         Adversary<P>* adversary, Options options = {})
      : n_(n),
        ledger_(ledger),
        adversary_(adversary),
        options_(options),
        faults_(n, fault_budget) {
    OMX_REQUIRE(ledger != nullptr && adversary != nullptr,
                "runner needs a ledger and an adversary");
    OMX_REQUIRE(ledger->num_processes() >= n,
                "ledger must cover all processes");
  }

  const FaultState& faults() const { return faults_; }

  RunResult run(Machine<P>& machine) {
    OMX_REQUIRE(machine.num_processes() == n_,
                "machine/process-count mismatch");
    const std::uint64_t base_calls = ledger_->calls();
    const std::uint64_t base_bits = ledger_->bits();

    MessagePlane<P> plane(n_);
    RunResult result;
    Metrics& m = result.metrics;
    EngineStats* const stats = options_.stats;
    using Clock = std::chrono::steady_clock;
    Clock::time_point t0;

    std::uint32_t round = 0;
    while (!machine.finished()) {
      if (round >= options_.max_rounds) {
        result.hit_round_cap = true;
        break;
      }
      ledger_->begin_round_window();
      machine.begin_round(round);

      // Phase 1: local computation (+ queuing of sends into the plane).
      if (stats) t0 = Clock::now();
      plane.begin_round();
      for (ProcessId p = 0; p < n_; ++p) {
        RoundIo<P> io(round, p, plane.inbox(p), &plane, &ledger_->source(p));
        machine.round(p, io);
      }
      plane.seal();
      if (stats) {
        stats->compute_ns += static_cast<std::uint64_t>(
            std::chrono::nanoseconds(Clock::now() - t0).count());
        t0 = Clock::now();
      }

      // Phase 2: adversary intervention (full information).
      AdversaryContext<P> ctx(round, &plane, &faults_);
      adversary_->intervene(ctx);
      if (stats) {
        stats->adversary_ns += static_cast<std::uint64_t>(
            std::chrono::nanoseconds(Clock::now() - t0).count());
        t0 = Clock::now();
      }

      // Phase 3: delivery + accounting. Sent-but-omitted messages still
      // count toward communication (the sender spent the bits).
      plane.deliver(m);
      if (stats) {
        stats->delivery_ns += static_cast<std::uint64_t>(
            std::chrono::nanoseconds(Clock::now() - t0).count());
        ++stats->rounds;
      }
      ++round;
      m.rounds = round;
    }

    m.random_calls = ledger_->calls() - base_calls;
    m.random_bits = ledger_->bits() - base_bits;
    m.corrupted = faults_.num_corrupted();
    return result;
  }

 private:
  std::uint32_t n_;
  rng::Ledger* ledger_;
  Adversary<P>* adversary_;
  Options options_;
  FaultState faults_;
};

}  // namespace omx::sim
