// Adaptive full-information adversary interface.
//
// Ordering within a round (paper §2): local computation phase (coins drawn)
// -> adversary observes *everything* (all process states via probes it was
// wired with, all coins drawn so far, every in-flight message) and acts ->
// communication phase delivers the surviving messages.
//
// The engine enforces the omission fault model: an adversary may
//   * corrupt a process at any time, as long as the total stays <= t;
//   * omit (drop) a message only if its sender or receiver is corrupted;
//   * never drop a self-delivery (a process trivially keeps its own state).
// Illegal actions throw AdversaryViolation — experiments cannot silently
// exceed the model's power.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/check.h"
#include "support/thread_pool.h"
#include "sim/message.h"
#include "sim/message_plane.h"

namespace omx::sim {

namespace referee {
// Fault-injection referee self-test layer (sim/fault_injection.h): the only
// code allowed to bypass the legality checks below, so the test suite can
// prove the engine detects every class of illegal adversarial action.
struct Backdoor;
}  // namespace referee

/// Corruption bookkeeping shared between runner and adversary context.
class FaultState {
 public:
  FaultState(std::uint32_t n, std::uint32_t budget)
      : corrupted_(n, false), budget_(budget) {}

  bool is_corrupted(ProcessId p) const { return corrupted_[p]; }
  std::uint32_t num_corrupted() const { return num_corrupted_; }
  std::uint32_t budget() const { return budget_; }
  std::uint32_t remaining_budget() const { return budget_ - num_corrupted_; }

  /// Corrupt p; returns false (no-op) if the budget is exhausted.
  /// Corrupting an already-corrupted process succeeds and costs nothing.
  bool corrupt(ProcessId p) {
    OMX_REQUIRE(p < corrupted_.size(),
                "corrupt: process " + std::to_string(p) +
                    " out of range (n=" + std::to_string(corrupted_.size()) +
                    ")");
    if (corrupted_[p]) return true;
    if (num_corrupted_ >= budget_) return false;
    corrupted_[p] = true;
    ++num_corrupted_;
    return true;
  }

 private:
  friend struct referee::Backdoor;

  std::vector<bool> corrupted_;
  std::uint32_t budget_;
  std::uint32_t num_corrupted_ = 0;
};

/// Read-only iterable view over the plane's logical messages. Elements are
/// lightweight proxies carrying (from, to, payload&) — range-for loops over
/// ctx.messages() read exactly what the old materialized vector showed,
/// without the engine building per-recipient Message objects.
template <class P>
class MessageView {
 public:
  struct Ref {
    ProcessId from;
    ProcessId to;
    const P& payload;
  };

  explicit MessageView(const MessagePlane<P>* plane) : plane_(plane) {}

  std::size_t size() const { return plane_->num_messages(); }
  bool empty() const { return size() == 0; }
  Ref operator[](std::size_t i) const {
    return Ref{plane_->from(i), plane_->to(i), plane_->payload(i)};
  }

  class iterator {
   public:
    iterator(const MessagePlane<P>* plane, std::size_t i)
        : plane_(plane), i_(i) {}
    Ref operator*() const {
      return Ref{plane_->from(i_), plane_->to(i_), plane_->payload(i_)};
    }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const MessagePlane<P>* plane_;
    std::size_t i_;
  };
  iterator begin() const { return iterator(plane_, 0); }
  iterator end() const { return iterator(plane_, size()); }

 private:
  const MessagePlane<P>* plane_;
};

/// The adversary's per-round window onto the execution. Messages are exposed
/// through an indexed view straight into the plane's flat buffers: a
/// multicast looks like the equivalent sequence of unicasts (one logical
/// index per recipient), so strategies are oblivious to the fast-path.
///
/// The bulk operations (drop_where, scan_messages, silence, silence_many)
/// shard the wire scan across the engine's thread pool when one was wired
/// in — with results bit-identical to the serial scan: drop_where lanes own
/// disjoint 64-aligned drop-bitset slices, and scan_messages concatenates
/// per-lane candidate lists in lane (== ascending index) order before the
/// serial consume pass. Predicates passed to them must be pure functions of
/// (from, to) and adversary state — in particular they must not draw
/// randomness (do that in scan_messages' consume step, which runs serially
/// in ascending index order).
template <class P>
class AdversaryContext {
 public:
  AdversaryContext(std::uint32_t round, MessagePlane<P>* plane,
                   FaultState* faults,
                   support::ThreadPool* pool = nullptr, unsigned lanes = 1)
      : round_(round), plane_(plane), faults_(faults), pool_(pool),
        lanes_(lanes) {}

  std::uint32_t round() const { return round_; }

  /// Number of logical messages produced in this round's computation phase.
  std::size_t num_messages() const { return plane_->num_messages(); }

  /// Indexed view (full information: contents are visible before delivery).
  ProcessId from(std::size_t i) const { return plane_->from(i); }
  ProcessId to(std::size_t i) const { return plane_->to(i); }
  const P& payload(std::size_t i) const { return plane_->payload(i); }

  /// Iterable proxy view for wiretaps and audits.
  MessageView<P> messages() const { return MessageView<P>(plane_); }

  // Seal-time accounting caches (computed once per round by the plane):
  // wiretaps like adversary::Recorder read per-round tallies from here
  // instead of re-measuring every payload.

  /// Bit size of logical message #i.
  std::uint64_t payload_bits(std::size_t i) const {
    return plane_->payload_bits(i);
  }
  /// Total bits on the wire this round (dropped messages included — the
  /// sender spent them).
  std::uint64_t wire_bits() const { return plane_->wire_bits(); }
  /// Number of messages dropped so far this round.
  std::size_t num_dropped() const { return plane_->num_dropped(); }

  bool is_corrupted(ProcessId p) const { return faults_->is_corrupted(p); }
  std::uint32_t num_corrupted() const { return faults_->num_corrupted(); }
  std::uint32_t remaining_budget() const { return faults_->remaining_budget(); }

  /// Adaptively corrupt a process (online, within budget).
  bool corrupt(ProcessId p) { return faults_->corrupt(p); }

  /// Omit message #idx. Legal only if one endpoint is corrupted and it is
  /// not a self-delivery.
  void drop(std::size_t idx) {
    OMX_REQUIRE(idx < plane_->num_messages(),
                "drop: message index " + std::to_string(idx) +
                    " out of range (round " + std::to_string(round_) + ", " +
                    std::to_string(plane_->num_messages()) +
                    " messages on the wire)");
    const ProcessId from = plane_->from(idx);
    const ProcessId to = plane_->to(idx);
    if (from == to) {
      throw AdversaryViolation("round " + std::to_string(round_) +
                               ": cannot omit the self-delivery of process " +
                               std::to_string(from));
    }
    if (!faults_->is_corrupted(from) && !faults_->is_corrupted(to)) {
      throw AdversaryViolation(
          "round " + std::to_string(round_) + ": cannot omit message " +
          std::to_string(from) + "->" + std::to_string(to) +
          " between two non-corrupted processes");
    }
    plane_->mark_dropped(idx);
  }

  bool dropped(std::size_t idx) const { return plane_->dropped(idx); }

  /// Bulk omission: drop every non-self-delivery message whose endpoints
  /// satisfy pred(from, to). Self-deliveries are skipped silently (no
  /// strategy may touch them anyway); a matching message between two
  /// non-corrupted processes throws AdversaryViolation, exactly like
  /// drop(). Sharded across the pool when the wire is large enough; the
  /// resulting drop bitset is identical to a serial scan's.
  template <class Pred>
  void drop_where(Pred&& pred) {
    const std::size_t mm = plane_->num_messages();
    auto scan = [&](std::uint64_t lo, std::uint64_t hi) {
      plane_->visit_index_range(
          lo, hi,
          [&](std::uint64_t i, ProcessId from, ProcessId to) {
            if (from == to || !pred(from, to)) return;
            if (!faults_->is_corrupted(from) &&
                !faults_->is_corrupted(to)) {
              throw AdversaryViolation(
                  "round " + std::to_string(round_) +
                  ": cannot omit message " + std::to_string(from) + "->" +
                  std::to_string(to) +
                  " between two non-corrupted processes");
            }
            plane_->mark_dropped(static_cast<std::size_t>(i));
          });
    };
    if (use_pool(mm)) {
      pool_->run([&](unsigned w) {
        const auto [lo, hi] = plane_->lane_index_range(w, lanes_);
        scan(lo, hi);
      });
    } else {
      scan(0, mm);
    }
  }

  /// Sharded candidate scan for strategies that need per-message randomness:
  /// lanes collect every message with pred(from, to) true, then consume(idx,
  /// from, to) runs serially in ascending index order — so a strategy that
  /// draws one coin per candidate consumes its rng stream in exactly the
  /// serial scan's order, at every lane count.
  template <class Pred, class Consume>
  void scan_messages(Pred&& pred, Consume&& consume) {
    const std::size_t mm = plane_->num_messages();
    if (!use_pool(mm)) {
      plane_->visit_index_range(
          0, mm, [&](std::uint64_t i, ProcessId from, ProcessId to) {
            if (pred(from, to)) {
              consume(static_cast<std::size_t>(i), from, to);
            }
          });
      return;
    }
    auto& hits = plane_->scan_scratch(lanes_);
    pool_->run([&](unsigned w) {
      const auto [lo, hi] = plane_->lane_index_range(w, lanes_);
      auto& out = hits[w];
      out.clear();
      plane_->visit_index_range(
          lo, hi, [&](std::uint64_t i, ProcessId from, ProcessId to) {
            if (pred(from, to)) {
              out.push_back(typename MessagePlane<P>::ScanHit{i, from, to});
            }
          });
    });
    for (unsigned w = 0; w < lanes_; ++w) {
      for (const auto& h : hits[w]) {
        consume(static_cast<std::size_t>(h.idx), h.from, h.to);
      }
    }
  }

  /// Convenience: drop every message from/to p (p must be corrupted).
  void silence(ProcessId p) {
    drop_where([p](ProcessId from, ProcessId to) {
      return from == p || to == p;
    });
  }

  /// Silence a batch of processes in one wire scan (the drop set is a
  /// union, so one scan equals per-victim silence() calls — minus the
  /// repeated O(messages) walks).
  void silence_many(std::span<const ProcessId> ps) {
    if (ps.empty()) return;
    if (ps.size() == 1) {
      silence(ps[0]);
      return;
    }
    silence_mask_.assign(plane_->num_processes(), 0);
    for (const ProcessId p : ps) silence_mask_[p] = 1;
    drop_where([this](ProcessId from, ProcessId to) {
      return silence_mask_[from] != 0 || silence_mask_[to] != 0;
    });
  }

 private:
  friend struct referee::Backdoor;

  bool use_pool(std::size_t messages) const {
    return pool_ != nullptr && lanes_ > 1 &&
           messages >= MessagePlane<P>::kParallelGrain;
  }

  std::uint32_t round_;
  MessagePlane<P>* plane_;
  FaultState* faults_;
  support::ThreadPool* pool_;
  unsigned lanes_;
  std::vector<std::uint8_t> silence_mask_;
};

/// Base adversary: observes each round and may intervene. Default: benign.
template <class P>
class Adversary {
 public:
  virtual ~Adversary() = default;
  virtual void intervene(AdversaryContext<P>& ctx) { (void)ctx; }
};

}  // namespace omx::sim
