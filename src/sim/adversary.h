// Adaptive full-information adversary interface.
//
// Ordering within a round (paper §2): local computation phase (coins drawn)
// -> adversary observes *everything* (all process states via probes it was
// wired with, all coins drawn so far, every in-flight message) and acts ->
// communication phase delivers the surviving messages.
//
// The engine enforces the omission fault model: an adversary may
//   * corrupt a process at any time, as long as the total stays <= t;
//   * omit (drop) a message only if its sender or receiver is corrupted;
//   * never drop a self-delivery (a process trivially keeps its own state).
// Illegal actions throw AdversaryViolation — experiments cannot silently
// exceed the model's power.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.h"
#include "sim/message.h"

namespace omx::sim {

/// Corruption bookkeeping shared between runner and adversary context.
class FaultState {
 public:
  FaultState(std::uint32_t n, std::uint32_t budget)
      : corrupted_(n, false), budget_(budget) {}

  bool is_corrupted(ProcessId p) const { return corrupted_[p]; }
  std::uint32_t num_corrupted() const { return num_corrupted_; }
  std::uint32_t budget() const { return budget_; }
  std::uint32_t remaining_budget() const { return budget_ - num_corrupted_; }

  /// Corrupt p; returns false (no-op) if the budget is exhausted.
  /// Corrupting an already-corrupted process succeeds and costs nothing.
  bool corrupt(ProcessId p) {
    OMX_REQUIRE(p < corrupted_.size(), "corrupt: process out of range");
    if (corrupted_[p]) return true;
    if (num_corrupted_ >= budget_) return false;
    corrupted_[p] = true;
    ++num_corrupted_;
    return true;
  }

 private:
  std::vector<bool> corrupted_;
  std::uint32_t budget_;
  std::uint32_t num_corrupted_ = 0;
};

/// The adversary's per-round window onto the execution.
template <class P>
class AdversaryContext {
 public:
  AdversaryContext(std::uint32_t round, std::vector<Message<P>>* messages,
                   std::vector<bool>* drop_flags, FaultState* faults)
      : round_(round),
        messages_(messages),
        drop_flags_(drop_flags),
        faults_(faults) {}

  std::uint32_t round() const { return round_; }

  /// All messages produced in this round's computation phase (full
  /// information: contents are visible before delivery).
  const std::vector<Message<P>>& messages() const { return *messages_; }

  bool is_corrupted(ProcessId p) const { return faults_->is_corrupted(p); }
  std::uint32_t num_corrupted() const { return faults_->num_corrupted(); }
  std::uint32_t remaining_budget() const { return faults_->remaining_budget(); }

  /// Adaptively corrupt a process (online, within budget).
  bool corrupt(ProcessId p) { return faults_->corrupt(p); }

  /// Omit message #idx. Legal only if one endpoint is corrupted and it is
  /// not a self-delivery.
  void drop(std::size_t idx) {
    OMX_REQUIRE(idx < messages_->size(), "drop: message index out of range");
    const Message<P>& m = (*messages_)[idx];
    if (m.from == m.to) {
      throw AdversaryViolation("cannot omit a self-delivery");
    }
    if (!faults_->is_corrupted(m.from) && !faults_->is_corrupted(m.to)) {
      throw AdversaryViolation(
          "cannot omit a message between two non-corrupted processes");
    }
    (*drop_flags_)[idx] = true;
  }

  bool dropped(std::size_t idx) const { return (*drop_flags_)[idx]; }

  /// Convenience: drop every message from/to p (p must be corrupted).
  void silence(ProcessId p) {
    for (std::size_t i = 0; i < messages_->size(); ++i) {
      const auto& m = (*messages_)[i];
      if ((m.from == p || m.to == p) && m.from != m.to && !(*drop_flags_)[i]) {
        drop(i);
      }
    }
  }

 private:
  std::uint32_t round_;
  std::vector<Message<P>>* messages_;
  std::vector<bool>* drop_flags_;
  FaultState* faults_;
};

/// Base adversary: observes each round and may intervene. Default: benign.
template <class P>
class Adversary {
 public:
  virtual ~Adversary() = default;
  virtual void intervene(AdversaryContext<P>& ctx) { (void)ctx; }
};

}  // namespace omx::sim
