// Protocol machine interface.
//
// Protocols are written "orchestrator-style": one object owns the local
// state of all n processes and the engine calls round(p, io) for each
// process in every round. This matches the lock-step synchronous model and
// keeps protocol code close to the paper's pseudocode. The autonomy
// requirement of the model — process p's transition may depend only on p's
// own state, p's inbox, and p's random stream — is a discipline the protocol
// implementations follow (and the test suite spot-checks via determinism and
// permutation tests), not something C++ can enforce cheaply.
//
// RoundIo writes into a SendLog rather than the message plane itself: in a
// serial round that log *is* the plane's wire log; in a sharded round it is
// the stepping worker's private staging outbox, merged into the wire at the
// shard barrier. io.lane() identifies the worker (0 in serial rounds), so
// machines that need mutable scratch during round() can keep one scratch
// buffer per lane (sized via set_lanes) instead of one shared one.
#pragma once

#include <cstdint>
#include <span>

#include "rng/ledger.h"
#include "sim/message.h"
#include "sim/message_plane.h"

namespace omx::sim {

/// Per-process, per-round I/O handed to Machine::round().
template <class P>
class RoundIo {
 public:
  /// `stream` is non-null only under streamed delivery (Runner
  /// Options::delivery): the inbox span is then empty and messages are
  /// iterated straight off the sealed wire via for_each_in().
  RoundIo(std::uint32_t round, ProcessId self,
          std::span<const Message<P>> inbox, SendLog<P>* log,
          rng::Source* rng, unsigned lane = 0,
          const MessagePlane<P>* stream = nullptr)
      : round_(round),
        self_(self),
        inbox_(inbox),
        log_(log),
        rng_(rng),
        lane_(lane),
        stream_(stream) {}

  std::uint32_t round() const { return round_; }
  ProcessId self() const { return self_; }

  /// Which engine worker lane is stepping this process (0 in serial rounds).
  /// Stable for the duration of one round() call; use it to index per-lane
  /// scratch so concurrently stepped processes never share mutable state.
  unsigned lane() const { return lane_; }

  /// Messages delivered to this process at the end of the previous round.
  /// Unavailable under streamed delivery — machines that support streamed
  /// runs must consume via for_each_in() instead.
  std::span<const Message<P>> inbox() const {
    OMX_CHECK(stream_ == nullptr,
              "inbox() called under streamed delivery — this machine must "
              "consume messages via for_each_in(), or the run must use "
              "materialized delivery");
    return inbox_;
  }

  /// Visit every message delivered to this process at the end of the
  /// previous round, in global send order: fn(ProcessId from, const P&).
  /// Works identically under materialized and streamed delivery — the one
  /// consumption API a machine needs to support both modes.
  template <class Fn>
  void for_each_in(Fn&& fn) const {
    if (stream_ != nullptr) {
      stream_->stream_inbox(self_, std::forward<Fn>(fn));
    } else {
      for (const Message<P>& msg : inbox_) fn(msg.from, msg.payload);
    }
  }

  /// Queue a message for the communication phase of this round.
  void send(ProcessId to, P payload) {
    log_->send(self_, to, std::move(payload));
  }

  /// Broadcast fast-path: one payload to every process in id order (the
  /// sender itself only when `include_self`). The payload is stored once;
  /// the adversary and the metrics still observe one logical message per
  /// recipient, exactly as if send() had been called in a loop.
  void send_to_all(P payload, bool include_self = false) {
    log_->broadcast(self_, std::move(payload), include_self);
  }

  /// Multicast fast-path: one payload to the listed receivers, in order.
  void send_to(std::span<const ProcessId> to, P payload) {
    log_->multicast(self_, to, std::move(payload));
  }

  /// Multicast skipping one id (typically the sender in a member list).
  void send_to_except(std::span<const ProcessId> to, ProcessId skip,
                      P payload) {
    log_->multicast(self_, to, std::move(payload), skip);
  }

  /// This process's metered random source.
  rng::Source& rng() { return *rng_; }

 private:
  std::uint32_t round_;
  ProcessId self_;
  std::span<const Message<P>> inbox_;
  SendLog<P>* log_;
  rng::Source* rng_;
  unsigned lane_;
  const MessagePlane<P>* stream_;
};

/// A synchronous protocol over payload P, covering processes 0..n-1.
template <class P>
class Machine {
 public:
  virtual ~Machine() = default;

  /// Number of processes the machine covers.
  virtual std::uint32_t num_processes() const = 0;

  /// The engine announces how many worker lanes may step processes
  /// concurrently (1 = serial). Machines with mutable round() scratch size
  /// their per-lane copies here; stateless machines ignore it. Called before
  /// the first round and never during a round.
  virtual void set_lanes(unsigned lanes) { (void)lanes; }

  /// Called once per round, before any process steps, with the round index.
  virtual void begin_round(std::uint32_t round) { (void)round; }

  /// Local computation + send phase for process p. May run concurrently with
  /// round(q, ...) for q in another shard; implementations must only touch
  /// p's own state, lane-local scratch (io.lane()), and the io object.
  virtual void round(ProcessId p, RoundIo<P>& io) = 0;

  /// True when every process has terminated (the engine then stops).
  /// Implementations typically report all *non-idle* members decided; the
  /// runner additionally stops at the machine's schedule end or max_rounds.
  virtual bool finished() const = 0;
};

}  // namespace omx::sim
