// Protocol machine interface.
//
// Protocols are written "orchestrator-style": one object owns the local
// state of all n processes and the engine calls round(p, io) for each
// process in every round. This matches the lock-step synchronous model and
// keeps protocol code close to the paper's pseudocode. The autonomy
// requirement of the model — process p's transition may depend only on p's
// own state, p's inbox, and p's random stream — is a discipline the protocol
// implementations follow (and the test suite spot-checks via determinism and
// permutation tests), not something C++ can enforce cheaply.
#pragma once

#include <cstdint>
#include <span>

#include "rng/ledger.h"
#include "sim/message.h"
#include "sim/message_plane.h"

namespace omx::sim {

/// Per-process, per-round I/O handed to Machine::round().
template <class P>
class RoundIo {
 public:
  RoundIo(std::uint32_t round, ProcessId self,
          std::span<const Message<P>> inbox, MessagePlane<P>* plane,
          rng::Source* rng)
      : round_(round), self_(self), inbox_(inbox), plane_(plane), rng_(rng) {}

  std::uint32_t round() const { return round_; }
  ProcessId self() const { return self_; }

  /// Messages delivered to this process at the end of the previous round.
  std::span<const Message<P>> inbox() const { return inbox_; }

  /// Queue a message for the communication phase of this round.
  void send(ProcessId to, P payload) {
    plane_->send(self_, to, std::move(payload));
  }

  /// Broadcast fast-path: one payload to every process in id order (the
  /// sender itself only when `include_self`). The payload is stored once;
  /// the adversary and the metrics still observe one logical message per
  /// recipient, exactly as if send() had been called in a loop.
  void send_to_all(P payload, bool include_self = false) {
    plane_->broadcast(self_, std::move(payload), include_self);
  }

  /// Multicast fast-path: one payload to the listed receivers, in order.
  void send_to(std::span<const ProcessId> to, P payload) {
    plane_->multicast(self_, to, std::move(payload));
  }

  /// Multicast skipping one id (typically the sender in a member list).
  void send_to_except(std::span<const ProcessId> to, ProcessId skip,
                      P payload) {
    plane_->multicast(self_, to, std::move(payload), skip);
  }

  /// This process's metered random source.
  rng::Source& rng() { return *rng_; }

 private:
  std::uint32_t round_;
  ProcessId self_;
  std::span<const Message<P>> inbox_;
  MessagePlane<P>* plane_;
  rng::Source* rng_;
};

/// A synchronous protocol over payload P, covering processes 0..n-1.
template <class P>
class Machine {
 public:
  virtual ~Machine() = default;

  /// Number of processes the machine covers.
  virtual std::uint32_t num_processes() const = 0;

  /// Called once per round, before any process steps, with the round index.
  virtual void begin_round(std::uint32_t round) { (void)round; }

  /// Local computation + send phase for process p.
  virtual void round(ProcessId p, RoundIo<P>& io) = 0;

  /// True when every process has terminated (the engine then stops).
  /// Implementations typically report all *non-idle* members decided; the
  /// runner additionally stops at the machine's schedule end or max_rounds.
  virtual bool finished() const = 0;
};

}  // namespace omx::sim
