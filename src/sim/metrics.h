// Execution metrics: the paper's three complexity measures plus message
// count (for the Ω(t²)-messages lower bound of Abraham et al. [1]).
#pragma once

#include <cstdint>

namespace omx::sim {

struct Metrics {
  /// Rounds elapsed until the last process terminated (paper: time).
  std::uint64_t rounds = 0;
  /// Point-to-point messages sent (dropped messages count: they were sent).
  std::uint64_t messages = 0;
  /// Total bits across all sent messages (paper: communication bits).
  std::uint64_t comm_bits = 0;
  /// Accesses to the random source across all processes (paper: randomness,
  /// lower-bound variant R).
  std::uint64_t random_calls = 0;
  /// Random bits drawn across all processes (paper: randomness complexity).
  std::uint64_t random_bits = 0;
  /// Processes the adversary corrupted by the end of the run.
  std::uint32_t corrupted = 0;
  /// Messages the adversary omitted.
  std::uint64_t omitted = 0;
};

}  // namespace omx::sim
