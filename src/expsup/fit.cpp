#include "expsup/fit.h"

#include <cmath>

#include "support/check.h"

namespace omx::expsup {

LogLogFit fit_loglog(std::span<const double> xs, std::span<const double> ys) {
  OMX_REQUIRE(xs.size() == ys.size(), "series length mismatch");
  OMX_REQUIRE(xs.size() >= 2, "need at least two points to fit");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    OMX_REQUIRE(xs[i] > 0 && ys[i] > 0, "log-log fit needs positive data");
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  LogLogFit fit;
  const double denom = n * sxx - sx * sx;
  OMX_REQUIRE(denom != 0.0, "degenerate x values");
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.intercept + fit.slope * std::log(xs[i]);
    const double res = std::log(ys[i]) - pred;
    ss_res += res * res;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace omx::expsup
