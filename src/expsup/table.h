// Table rendering for the bench harness: prints paper-style rows to stdout
// (aligned ASCII) and optionally dumps CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace omx::expsup {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` significant-ish digits.
  static std::string num(double v, int precision = 4);
  static std::string num(std::uint64_t v);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace omx::expsup
