// Deterministic parallel sweeps for the bench harness.
//
// parallel_map runs `fn(items[i])` across the process-wide shared
// support::ThreadPool and returns results in input order — experiment runs
// are independent (each builds its own ledger/machine/adversary from its
// own seed), so parallelism changes wall time only, never a number in a
// table. Calls from inside a pool lane (nested sweeps) degrade to inline
// execution rather than deadlocking — see ThreadPool::run.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/thread_pool.h"

namespace omx::expsup {

/// Number of workers used by parallel_map (hardware concurrency, capped at
/// the item count). Item counts above UINT_MAX must not wrap the cast —
/// compare in std::size_t first.
inline unsigned worker_count(std::size_t items) {
  if (items == 0) return 1;
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned cap = hw == 0 ? 2 : hw;
  return items < cap ? static_cast<unsigned>(items) : cap;
}

/// Apply `fn` to every item; results in input order. Work is striped over
/// the shared pool with an atomic cursor, so uneven item costs balance. If
/// a worker throws, the first exception is rethrown on the calling thread
/// once all lanes finished (instead of std::terminate tearing the process
/// down from a worker).
template <class In, class Fn>
auto parallel_map(const std::vector<In>& items, Fn fn)
    -> std::vector<decltype(fn(items[0]))> {
  using Out = decltype(fn(items[0]));
  std::vector<Out> results(items.size());
  if (items.empty()) return results;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  support::ThreadPool::shared().run([&](unsigned /*lane*/) {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= items.size()) return;
      try {
        results[i] = fn(items[i]);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Drain the queue so every lane exits promptly.
        next.store(items.size());
        return;
      }
    }
  });
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace omx::expsup
