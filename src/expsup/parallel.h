// Deterministic parallel sweeps for the bench harness.
//
// parallel_map runs `fn(items[i])` across a small thread pool and returns
// results in input order — experiment runs are independent (each builds
// its own ledger/machine/adversary from its own seed), so parallelism
// changes wall time only, never a number in a table.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace omx::expsup {

/// Number of workers used by parallel_map (hardware concurrency, capped).
inline unsigned worker_count(std::size_t items) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned cap = hw == 0 ? 2 : hw;
  const auto want = static_cast<unsigned>(items);
  return want < cap ? (want == 0 ? 1 : want) : cap;
}

/// Apply `fn` to every item; results in input order. Exceptions inside
/// workers terminate (experiments must not throw — a throwing run is a
/// bug the caller wants loudly).
template <class In, class Fn>
auto parallel_map(const std::vector<In>& items, Fn fn)
    -> std::vector<decltype(fn(items[0]))> {
  using Out = decltype(fn(items[0]));
  std::vector<Out> results(items.size());
  if (items.empty()) return results;
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= items.size()) return;
      results[i] = fn(items[i]);
    }
  };
  const unsigned workers = worker_count(items.size());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

}  // namespace omx::expsup
