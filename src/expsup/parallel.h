// Deterministic parallel sweeps for the bench harness.
//
// parallel_map runs `fn(items[i])` across a small thread pool and returns
// results in input order — experiment runs are independent (each builds
// its own ledger/machine/adversary from its own seed), so parallelism
// changes wall time only, never a number in a table.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omx::expsup {

/// Number of workers used by parallel_map (hardware concurrency, capped).
inline unsigned worker_count(std::size_t items) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned cap = hw == 0 ? 2 : hw;
  const auto want = static_cast<unsigned>(items);
  return want < cap ? (want == 0 ? 1 : want) : cap;
}

/// Apply `fn` to every item; results in input order. If a worker throws,
/// the first exception is captured, the remaining work is cancelled, all
/// workers are joined, and the exception is rethrown on the calling thread
/// (instead of std::terminate tearing the process down from a worker).
template <class In, class Fn>
auto parallel_map(const std::vector<In>& items, Fn fn)
    -> std::vector<decltype(fn(items[0]))> {
  using Out = decltype(fn(items[0]));
  std::vector<Out> results(items.size());
  if (items.empty()) return results;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= items.size()) return;
      try {
        results[i] = fn(items[i]);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Drain the queue so every worker exits promptly.
        next.store(items.size());
        return;
      }
    }
  };
  const unsigned workers = worker_count(items.size());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace omx::expsup
