#include "expsup/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace omx::expsup {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  OMX_REQUIRE(!columns_.empty(), "table needs columns");
}

void Table::add_row(std::vector<std::string> cells) {
  OMX_REQUIRE(cells.size() == columns_.size(),
              "row width must match column count");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  if (v == 0.0) return "0";
  const double av = v < 0 ? -v : v;
  if (av >= 1e7 || av < 1e-3) {
    os << std::scientific << std::setprecision(precision - 1) << v;
  } else if (av >= 100.0) {
    os << std::fixed << std::setprecision(0) << v;
  } else {
    os << std::fixed << std::setprecision(precision > 2 ? 2 : precision) << v;
  }
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  os << "\n== " << title_ << " ==\n";
  auto line = [&](char fill) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, fill);
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << ' ';
    }
    os << "|\n";
  };
  line('-');
  emit(columns_);
  line('=');
  for (const auto& row : rows_) emit(row);
  line('-');
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace omx::expsup
