// Log-log least-squares fit: estimates the scaling exponent of a measured
// series y ≈ c · x^slope. The bench harness uses it to report empirical
// exponents next to the paper's claimed ones (0.5 for rounds, 2 for bits,
// 1.5 for random bits, ...).
#pragma once

#include <span>

namespace omx::expsup {

struct LogLogFit {
  double slope = 0.0;
  double intercept = 0.0;  // log(c)
  double r2 = 0.0;
};

/// Requires xs, ys positive and |xs| == |ys| >= 2.
LogLogFit fit_loglog(std::span<const double> xs, std::span<const double> ys);

}  // namespace omx::expsup
