#include "harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "adversary/schedule.h"
#include "adversary/strategies.h"
#include "baselines/ben_or.h"
#include "baselines/flood_set.h"
#include "core/optimal_core.h"
#include "core/param_consensus.h"
#include "groups/partition.h"
#include "sim/runner.h"
#include "support/check.h"
#include "support/prng.h"
#include "trace/trace.h"

namespace omx::harness {

const char* to_string(Algo a) {
  switch (a) {
    case Algo::Optimal: return "optimal";
    case Algo::Param: return "param";
    case Algo::FloodSet: return "floodset";
    case Algo::BenOr: return "benor";
  }
  return "?";
}

const char* to_string(Attack a) {
  switch (a) {
    case Attack::None: return "none";
    case Attack::StaticCrash: return "crash";
    case Attack::RandomOmission: return "rand-omit";
    case Attack::SendOmission: return "send-omit";
    case Attack::SplitBrain: return "split-brain";
    case Attack::GroupKiller: return "group-killer";
    case Attack::CoinHiding: return "coin-hiding";
    case Attack::Chaos: return "chaos";
    case Attack::Schedule: return "schedule";
  }
  return "?";
}

const char* to_string(InputPattern p) {
  switch (p) {
    case InputPattern::AllZero: return "all-0";
    case InputPattern::AllOne: return "all-1";
    case InputPattern::Half: return "half";
    case InputPattern::Random: return "random";
    case InputPattern::OneDissent: return "one-dissent";
    case InputPattern::Alternating: return "alternating";
  }
  return "?";
}

bool algo_from_string(const std::string& s, Algo* out) {
  for (auto a : {Algo::Optimal, Algo::Param, Algo::FloodSet, Algo::BenOr}) {
    if (s == to_string(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

bool attack_from_string(const std::string& s, Attack* out) {
  for (auto a : {Attack::None, Attack::StaticCrash, Attack::RandomOmission,
                 Attack::SendOmission, Attack::SplitBrain,
                 Attack::GroupKiller, Attack::CoinHiding, Attack::Chaos,
                 Attack::Schedule}) {
    if (s == to_string(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

bool inputs_from_string(const std::string& s, InputPattern* out) {
  for (auto p : {InputPattern::AllZero, InputPattern::AllOne,
                 InputPattern::Half, InputPattern::Random,
                 InputPattern::OneDissent, InputPattern::Alternating}) {
    if (s == to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

std::vector<std::uint8_t> make_inputs(InputPattern pattern, std::uint32_t n,
                                      std::uint64_t seed) {
  std::vector<std::uint8_t> inputs(n, 0);
  switch (pattern) {
    case InputPattern::AllZero:
      break;
    case InputPattern::AllOne:
      std::fill(inputs.begin(), inputs.end(), 1);
      break;
    case InputPattern::Half:
      for (std::uint32_t p = 0; p < n / 2; ++p) inputs[p] = 1;
      break;
    case InputPattern::Random: {
      Xoshiro256 gen(mix64(seed, 0x1219u));
      for (auto& b : inputs) b = gen.bernoulli(0.5) ? 1 : 0;
      break;
    }
    case InputPattern::OneDissent:
      std::fill(inputs.begin(), inputs.end(), 1);
      inputs[0] = 0;
      break;
    case InputPattern::Alternating:
      for (std::uint32_t p = 0; p < n; ++p) inputs[p] = p & 1;
      break;
  }
  return inputs;
}

namespace {

using Msg = core::Msg;

std::unique_ptr<sim::Adversary<Msg>> make_adversary(
    const ExperimentConfig& cfg, const adversary::VoteProbe* probe,
    const rng::Ledger* ledger, std::uint32_t schedule_hint) {
  switch (cfg.attack) {
    case Attack::None:
      return std::make_unique<adversary::NullAdversary<Msg>>();
    case Attack::StaticCrash: {
      // Stagger t crashes across the first ~2/3 of the schedule.
      Xoshiro256 gen(mix64(cfg.seed, 0xCCu));
      std::vector<sim::ProcessId> ids(cfg.n);
      for (std::uint32_t i = 0; i < cfg.n; ++i) ids[i] = i;
      std::vector<adversary::StaticCrashAdversary<Msg>::Crash> schedule;
      const std::uint32_t horizon =
          std::max<std::uint32_t>(1, schedule_hint * 2 / 3);
      for (std::uint32_t i = 0; i < cfg.t && i < cfg.n; ++i) {
        const auto j = i + static_cast<std::uint32_t>(gen.below(cfg.n - i));
        std::swap(ids[i], ids[j]);
        schedule.push_back(
            {ids[i], static_cast<std::uint32_t>(gen.below(horizon))});
      }
      return std::make_unique<adversary::StaticCrashAdversary<Msg>>(
          std::move(schedule));
    }
    case Attack::RandomOmission:
      return std::make_unique<adversary::RandomOmissionAdversary<Msg>>(
          cfg.n, cfg.t, cfg.drop_prob, mix64(cfg.seed, 0x0Au));
    case Attack::SendOmission:
      return std::make_unique<adversary::RandomOmissionAdversary<Msg>>(
          cfg.n, cfg.t, cfg.drop_prob, mix64(cfg.seed, 0x50u),
          adversary::OmissionMode::SendOnly);
    case Attack::SplitBrain: {
      Xoshiro256 gen(mix64(cfg.seed, 0x5Bu));
      std::vector<sim::ProcessId> ids(cfg.n);
      for (std::uint32_t i = 0; i < cfg.n; ++i) ids[i] = i;
      std::vector<sim::ProcessId> faulty;
      for (std::uint32_t i = 0; i < cfg.t && i < cfg.n; ++i) {
        const auto j = i + static_cast<std::uint32_t>(gen.below(cfg.n - i));
        std::swap(ids[i], ids[j]);
        faulty.push_back(ids[i]);
      }
      return std::make_unique<adversary::SplitBrainAdversary<Msg>>(
          cfg.n, std::move(faulty));
    }
    case Attack::GroupKiller: {
      const auto partition = groups::SqrtPartition::shared_for(cfg.n);
      std::vector<std::vector<sim::ProcessId>> gs;
      for (std::uint32_t g = 0; g < partition->num_groups(); ++g) {
        const auto span = partition->members(g);
        gs.emplace_back(span.begin(), span.end());
      }
      return std::make_unique<adversary::GroupKillerAdversary<Msg>>(
          std::move(gs));
    }
    case Attack::CoinHiding: {
      OMX_REQUIRE(probe != nullptr,
                  "coin-hiding attack needs a vote-probing machine");
      return std::make_unique<adversary::CoinHidingAdversary<Msg>>(probe,
                                                                   ledger);
    }
    case Attack::Chaos:
      return std::make_unique<adversary::ChaosAdversary<Msg>>(
          cfg.n, mix64(cfg.seed, 0xC4405u));
    case Attack::Schedule: {
      adversary::Schedule schedule;
      std::string err;
      OMX_REQUIRE(adversary::Schedule::parse(cfg.schedule, &schedule, &err),
                  "bad schedule: " + err);
      return std::make_unique<adversary::ScheduleAdversary<Msg>>(
          std::move(schedule));
    }
  }
  return std::make_unique<adversary::NullAdversary<Msg>>();
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  // The trace file is created before validation, deliberately: a trial that
  // fails its preconditions still leaves a valid (header-only) trace, so
  // the sweep's trace-on-repro capture works uniformly for every
  // model-violation class.
  std::unique_ptr<trace::TraceWriter> tracer;
  if (!cfg.trace_path.empty()) {
    OMX_REQUIRE(trace::kCompiledIn,
                "trace_path set but tracing was compiled out "
                "(OMX_DISABLE_TRACING)");
    tracer = std::make_unique<trace::TraceWriter>(cfg.trace_path, cfg.n,
                                                  cfg.trace_packed);
  }

  // Validate the whole config eagerly so a bad trial fails here, with the
  // offending values, before any machine or ledger state is built.
  OMX_REQUIRE(cfg.n >= 1, "need at least one process (n=0)");
  OMX_REQUIRE(cfg.t < cfg.n,
              "fault budget must satisfy t < n (t=" + std::to_string(cfg.t) +
                  ", n=" + std::to_string(cfg.n) + ")");
  OMX_REQUIRE(cfg.x >= 1, "super-process count must be >= 1 (x=0)");
  OMX_REQUIRE(cfg.drop_prob >= 0.0 && cfg.drop_prob <= 1.0,
              "drop_prob must lie in [0,1] (drop_prob=" +
                  std::to_string(cfg.drop_prob) + ")");
  OMX_REQUIRE(cfg.explicit_inputs.empty() ||
                  cfg.explicit_inputs.size() == cfg.n,
              "explicit_inputs must have exactly n entries (" +
                  std::to_string(cfg.explicit_inputs.size()) +
                  " given, n=" + std::to_string(cfg.n) + ")");
  const bool flood_path =
      cfg.algo == Algo::FloodSet || cfg.algo == Algo::BenOr;
  OMX_REQUIRE(!cfg.packed || flood_path,
              "packed views are implemented for floodset/benor only");
  OMX_REQUIRE(!cfg.streamed || flood_path,
              "streamed delivery needs a for_each_in() machine "
              "(floodset/benor)");
  OMX_REQUIRE(!cfg.pipeline || flood_path,
              "round pipelining is implemented for floodset/benor only");
  OMX_REQUIRE(!cfg.pipeline || !cfg.streamed,
              "round pipelining requires materialized delivery");
  auto inputs = cfg.explicit_inputs.empty()
                    ? make_inputs(cfg.inputs, cfg.n, cfg.seed)
                    : cfg.explicit_inputs;

  rng::Ledger ledger(cfg.n, cfg.seed);
  if (cfg.random_bit_budget != rng::kUnlimited) {
    ledger.set_bit_budget(cfg.random_bit_budget);
  }

  // Build the machine.
  std::unique_ptr<sim::Machine<Msg>> machine;
  const adversary::VoteProbe* probe = nullptr;
  core::OptimalMachine* opt = nullptr;
  core::ParamMachine* par = nullptr;
  baselines::FloodSetMachine* flood = nullptr;
  baselines::BenOrMachine* benor = nullptr;
  std::uint32_t schedule_hint = 0;

  switch (cfg.algo) {
    case Algo::Optimal: {
      core::OptimalConfig mc;
      mc.params = cfg.params;
      mc.t = cfg.t;
      auto m = std::make_unique<core::OptimalMachine>(mc, inputs);
      opt = m.get();
      probe = m.get();
      schedule_hint = m->core().scheduled_rounds();
      machine = std::move(m);
      break;
    }
    case Algo::Param: {
      core::ParamConfig mc;
      mc.params = cfg.params;
      mc.t = cfg.t;
      mc.x = cfg.x;
      auto m = std::make_unique<core::ParamMachine>(mc, inputs);
      par = m.get();
      probe = m.get();
      schedule_hint = m->scheduled_rounds();
      machine = std::move(m);
      break;
    }
    case Algo::FloodSet: {
      auto m = std::make_unique<baselines::FloodSetMachine>(cfg.t, inputs,
                                                            cfg.packed);
      flood = m.get();
      schedule_hint = m->scheduled_rounds();
      machine = std::move(m);
      break;
    }
    case Algo::BenOr: {
      baselines::BenOrConfig mc;
      mc.t = cfg.t;
      mc.packed = cfg.packed;
      auto m = std::make_unique<baselines::BenOrMachine>(mc, inputs);
      benor = m.get();
      probe = m.get();
      schedule_hint = m->scheduled_rounds();
      machine = std::move(m);
      break;
    }
  }

  auto adversary = make_adversary(cfg, probe, &ledger, schedule_hint);

  sim::Runner<Msg>::Options opts;
  opts.max_rounds =
      cfg.max_rounds ? cfg.max_rounds : schedule_hint + cfg.n + 16;
  opts.deadline = std::chrono::milliseconds(cfg.deadline_ms);
  opts.stats = cfg.engine_stats;
  opts.threads = cfg.threads;
  opts.trace = tracer.get();
  if (cfg.streamed) {
    opts.delivery = sim::Runner<Msg>::Options::Delivery::kStreamed;
  }
  opts.pipeline = cfg.pipeline;
  sim::Runner<Msg> runner(cfg.n, cfg.t, &ledger, adversary.get(), opts);

  // Wire termination to the non-faulty set (the spec's termination clause).
  if (opt) opt->set_fault_view(&runner.faults());
  if (par) par->set_fault_view(&runner.faults());
  if (flood) flood->set_fault_view(&runner.faults());
  if (benor) benor->set_fault_view(&runner.faults());

  const sim::RunResult rr = runner.run(*machine);

  // Verdict over the non-faulty set.
  ExperimentResult res;
  res.metrics = rr.metrics;
  res.hit_round_cap = rr.hit_round_cap;
  res.hit_deadline = rr.hit_deadline;
  res.corrupted = rr.metrics.corrupted;

  auto outcome_of = [&](sim::ProcessId p) -> core::MemberOutcome {
    if (opt) return opt->core().outcome(p);
    if (par) return par->outcome(p);
    if (flood) return flood->outcome(p);
    return benor->outcome(p);
  };

  bool any = false;
  bool all_decided = true;
  bool agree = true;
  std::uint8_t decision = 0;
  std::int64_t last_decision = -1;
  bool uniform_inputs = true;
  std::uint8_t uniform_value = 0;
  bool uniform_init = false;
  for (sim::ProcessId p = 0; p < cfg.n; ++p) {
    if (runner.faults().is_corrupted(p)) continue;
    if (!uniform_init) {
      uniform_init = true;
      uniform_value = inputs[p];
    } else if (inputs[p] != uniform_value) {
      uniform_inputs = false;
    }
    const auto out = outcome_of(p);
    if (!out.decided) {
      all_decided = false;
      continue;
    }
    last_decision = std::max(last_decision, out.decision_round);
    if (!any) {
      any = true;
      decision = out.value;
    } else if (out.value != decision) {
      agree = false;
    }
  }
  res.agreement = any && agree;
  res.all_nonfaulty_decided = all_decided && any;
  res.decision = decision;
  res.validity = !uniform_inputs || !any || decision == uniform_value;
  res.time_rounds = last_decision >= 0
                        ? static_cast<std::uint64_t>(last_decision) + 1
                        : rr.metrics.rounds;
  if (opt) res.operative_end = opt->core().operative_count();
  if (par) res.operative_end = par->operative_count();

  if (tracer != nullptr) {
    // Post-run decision records, in id order; their round field is the
    // decision round (see trace/trace.h on the stream's canonical order).
    for (sim::ProcessId p = 0; p < cfg.n; ++p) {
      const auto out = outcome_of(p);
      if (!out.decided || out.decision_round < 0) continue;
      tracer->emit(trace::Event{
          static_cast<std::uint32_t>(out.decision_round), trace::kDecide, 0,
          p, out.value, static_cast<std::uint64_t>(out.decision_round)});
    }
    tracer->close();
  }
  return res;
}

}  // namespace omx::harness
