// End-to-end experiment harness: one call = one execution of a consensus
// algorithm against an adversary, with full metrics and a consensus-spec
// verdict (agreement / validity / termination over the *non-faulty* set,
// per §2). Shared by the test suite, the bench binaries and the examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.h"
#include "rng/ledger.h"
#include "sim/metrics.h"

namespace omx::sim {
struct EngineStats;
}

namespace omx::harness {

enum class Algo {
  Optimal,   // Algorithm 1 (Theorem 1)
  Param,     // Algorithm 4 (Theorem 3), x super-processes
  FloodSet,  // deterministic baseline / fallback as a standalone protocol
  BenOr,     // crash-model randomized baseline ([10]-style)
};

enum class Attack {
  None,
  StaticCrash,     // scripted staggered crashes of t processes
  RandomOmission,  // random faulty set, i.i.d. link drops (general omission)
  SendOmission,    // ablation: only the faulty senders' messages drop
  SplitBrain,      // faulty processes heard by only half the network
  GroupKiller,     // silence whole √n-groups
  CoinHiding,      // Theorem-2 full-information vote-hiding strategy
  Chaos,           // seeded random walk over all legal adversarial actions
  Schedule,        // explicit op-list replay (adversary/schedule.h) — the
                   // genome representation the omxadv search loop mutates
};

enum class InputPattern {
  AllZero,
  AllOne,
  Half,      // first half 1, second half 0
  Random,    // i.i.d. fair bits (seeded)
  OneDissent,  // all 1 except process 0
  Alternating,  // 0101... — every contiguous group is split 50/50
};

const char* to_string(Algo a);
const char* to_string(Attack a);
const char* to_string(InputPattern p);

/// Inverse of to_string (every enumerator is covered; used by the CLI and
/// the sweep's repro files). Return false on an unknown name.
bool algo_from_string(const std::string& s, Algo* out);
bool attack_from_string(const std::string& s, Attack* out);
bool inputs_from_string(const std::string& s, InputPattern* out);

struct ExperimentConfig {
  Algo algo = Algo::Optimal;
  Attack attack = Attack::None;
  std::uint32_t n = 64;
  std::uint32_t t = 0;
  std::uint32_t x = 1;  // Algorithm 4 only: number of super-processes
  core::Params params = core::Params::practical();
  InputPattern inputs = InputPattern::Random;
  /// When non-empty, overrides `inputs` (must have exactly n bits).
  std::vector<std::uint8_t> explicit_inputs;
  std::uint64_t seed = 1;
  /// Optional cap on total random bits (Theorem 2/3 experiments);
  /// rng::kUnlimited disables.
  std::uint64_t random_bit_budget = rng::kUnlimited;
  /// i.i.d. drop probability for RandomOmission.
  double drop_prob = 0.8;
  /// Attack::Schedule only: the intervention op list in Schedule::parse
  /// text form ("c0.3,s1.3,d2.3.7"). Part of the config hash — two trials
  /// with different schedules are different experiments.
  std::string schedule;
  /// Engine safety cap; 0 = machine schedule + slack.
  std::uint64_t max_rounds = 0;
  /// Cooperative wall-clock watchdog for the whole run, in milliseconds;
  /// 0 = none. Checked by the engine at round boundaries — a stalled trial
  /// ends with ExperimentResult::hit_deadline instead of hanging the sweep.
  std::uint64_t deadline_ms = 0;
  /// Worker lanes for the engine's computation phase: 1 = serial (default),
  /// 0 = one lane per hardware thread, k = exactly k lanes. Results are
  /// bit-identical at every setting.
  unsigned threads = 1;
  /// Optional per-phase engine timing sink (bench_engine); nullptr = off.
  sim::EngineStats* engine_stats = nullptr;
  /// Word-packed knowledge views on the flood paths (FloodSet / BenOr
  /// only): PackedFloodMsg wire payloads with cached legacy-identical bit
  /// sizes. Decisions, metrics and traces are bit-identical to the legacy
  /// representation — only the wall time changes.
  bool packed = false;
  /// Streamed delivery (FloodSet / BenOr only): phase 3 never materializes
  /// inboxes; machines iterate the sealed wire via RoundIo::for_each_in().
  /// Metrics-identical to materialized delivery; incompatible with
  /// trace_path (per-message events need materialized delivery).
  bool streamed = false;
  /// Round pipelining (FloodSet / BenOr only): fuse round k+1's computation
  /// into round k's delivery scatter. Requires threads > 1 and materialized
  /// delivery; silently inert when tracing. Decisions, metrics and traces
  /// are bit-identical with the flag on or off — only wall time changes.
  bool pipeline = false;
  /// When non-empty, write a binary event trace of the run to this path
  /// (trace/trace.h format; analyze with `omxtrace stats|dump|diff`). The
  /// stream is bit-identical across `threads` settings. Requires tracing to
  /// be compiled in (the default; see OMX_DISABLE_TRACING).
  std::string trace_path;
  /// Write the trace in the packed (compressed-block) storage format — the
  /// same event stream, ~5-25x fewer bytes on disk; every reader handles
  /// both formats transparently. Outcome-neutral, like trace_path.
  bool trace_packed = false;
};

struct ExperimentResult {
  sim::Metrics metrics;
  /// Rounds until the last non-faulty process decided (the paper's "time").
  std::uint64_t time_rounds = 0;
  bool agreement = false;
  bool validity = false;
  bool all_nonfaulty_decided = false;
  bool hit_round_cap = false;
  /// Run was cut short by ExperimentConfig::deadline_ms.
  bool hit_deadline = false;
  std::uint8_t decision = 0;  // decision of non-faulty processes (if any)
  std::uint32_t corrupted = 0;
  std::uint32_t operative_end = 0;  // operative count at the end (0 if n/a)
  /// True iff agreement && validity && all_nonfaulty_decided.
  bool ok() const { return agreement && validity && all_nonfaulty_decided; }
};

ExperimentResult run_experiment(const ExperimentConfig& config);

/// Build the input vector for a pattern (exposed for tests).
std::vector<std::uint8_t> make_inputs(InputPattern pattern, std::uint32_t n,
                                      std::uint64_t seed);

}  // namespace omx::harness
