#include "harness/sweep.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "rng/ledger.h"
#include "support/check.h"
#include "support/prng.h"
#include "trace/trace.h"

namespace omx::harness {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Ok: return "ok";
    case Verdict::RoundCap: return "round_cap";
    case Verdict::Timeout: return "timeout";
    case Verdict::Precondition: return "precondition";
    case Verdict::Invariant: return "invariant";
    case Verdict::AdversaryViolation: return "adversary_violation";
  }
  return "?";
}

namespace {

bool verdict_from_string(const std::string& s, Verdict* out) {
  for (auto v : {Verdict::Ok, Verdict::RoundCap, Verdict::Timeout,
                 Verdict::Precondition, Verdict::Invariant,
                 Verdict::AdversaryViolation}) {
    if (s == to_string(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Shortest decimal that round-trips a double (repro files and hashes must
/// agree bit-for-bit with what parse_config reads back).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// --- minimal JSON (flat objects of strings / integers / bools) ---

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Parse one flat JSON object {"k":v,...} with string / number / bool
/// values. Tolerant of nothing else — checkpoint lines are machine-written
/// — so any deviation (e.g. a line torn by kill -9) simply fails.
bool parse_flat_json(const std::string& line,
                     std::unordered_map<std::string, std::string>* out) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto parse_string = [&](std::string* s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s->clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        if (i + 1 >= line.size()) return false;
        const char e = line[i + 1];
        i += 2;
        switch (e) {
          case '"': *s += '"'; break;
          case '\\': *s += '\\'; break;
          case '/': *s += '/'; break;
          case 'n': *s += '\n'; break;
          case 'r': *s += '\r'; break;
          case 't': *s += '\t'; break;
          case 'u': {
            if (i + 4 > line.size()) return false;
            const unsigned code = static_cast<unsigned>(
                std::strtoul(line.substr(i, 4).c_str(), nullptr, 16));
            i += 4;
            *s += static_cast<char>(code);  // checkpoint only escapes < 0x20
            break;
          }
          default: return false;
        }
      } else {
        *s += line[i++];
      }
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return true;
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(&key)) return false;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(&value)) return false;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      value = line.substr(start, i - start);
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
        value.pop_back();
      if (value.empty()) return false;
    }
    (*out)[key] = value;
    skip_ws();
    if (i >= line.size()) return false;
    if (line[i] == '}') return true;
    if (line[i] != ',') return false;
    ++i;
  }
}

std::uint64_t to_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

}  // namespace

/// One checkpoint line: the full TrialOutcome, keyed by config hash. Every
/// field a driver prints must be here, or resume would not be
/// byte-identical with the uninterrupted run.
std::string checkpoint_line(const std::string& key, const TrialOutcome& o) {
  const ExperimentResult& r = o.result;
  std::ostringstream os;
  os << "{\"key\":\"" << key << "\""
     << ",\"verdict\":\"" << to_string(o.verdict) << "\""
     << ",\"attempts\":" << o.attempts
     << ",\"seed\":" << o.seed_used
     << ",\"time_rounds\":" << r.time_rounds
     << ",\"rounds\":" << r.metrics.rounds
     << ",\"messages\":" << r.metrics.messages
     << ",\"comm_bits\":" << r.metrics.comm_bits
     << ",\"random_calls\":" << r.metrics.random_calls
     << ",\"random_bits\":" << r.metrics.random_bits
     << ",\"omitted\":" << r.metrics.omitted
     << ",\"corrupted\":" << r.corrupted
     << ",\"operative_end\":" << r.operative_end
     << ",\"decision\":" << unsigned{r.decision}
     << ",\"agreement\":" << (r.agreement ? "true" : "false")
     << ",\"validity\":" << (r.validity ? "true" : "false")
     << ",\"all_decided\":" << (r.all_nonfaulty_decided ? "true" : "false")
     << ",\"hit_round_cap\":" << (r.hit_round_cap ? "true" : "false")
     << ",\"hit_deadline\":" << (r.hit_deadline ? "true" : "false")
     << ",\"error\":\"" << json_escape(o.error) << "\""
     << ",\"repro\":\"" << json_escape(o.repro_path) << "\"}";
  return os.str();
}

bool parse_checkpoint_line(const std::string& line, std::string* key,
                           TrialOutcome* o) {
  std::unordered_map<std::string, std::string> kv;
  if (!parse_flat_json(line, &kv)) return false;
  const auto need = [&](const char* k, std::string* dst) -> bool {
    const auto it = kv.find(k);
    if (it == kv.end()) return false;
    *dst = it->second;
    return true;
  };
  std::string s;
  if (!need("key", key)) return false;
  if (!need("verdict", &s) || !verdict_from_string(s, &o->verdict))
    return false;
  if (!need("attempts", &s)) return false;
  o->attempts = static_cast<std::uint32_t>(to_u64(s));
  if (!need("seed", &s)) return false;
  o->seed_used = to_u64(s);
  ExperimentResult& r = o->result;
  if (!need("time_rounds", &s)) return false;
  r.time_rounds = to_u64(s);
  if (!need("rounds", &s)) return false;
  r.metrics.rounds = to_u64(s);
  if (!need("messages", &s)) return false;
  r.metrics.messages = to_u64(s);
  if (!need("comm_bits", &s)) return false;
  r.metrics.comm_bits = to_u64(s);
  if (!need("random_calls", &s)) return false;
  r.metrics.random_calls = to_u64(s);
  if (!need("random_bits", &s)) return false;
  r.metrics.random_bits = to_u64(s);
  if (!need("omitted", &s)) return false;
  r.metrics.omitted = to_u64(s);
  if (!need("corrupted", &s)) return false;
  r.corrupted = static_cast<std::uint32_t>(to_u64(s));
  r.metrics.corrupted = r.corrupted;
  if (!need("operative_end", &s)) return false;
  r.operative_end = static_cast<std::uint32_t>(to_u64(s));
  if (!need("decision", &s)) return false;
  r.decision = static_cast<std::uint8_t>(to_u64(s));
  if (!need("agreement", &s)) return false;
  r.agreement = s == "true";
  if (!need("validity", &s)) return false;
  r.validity = s == "true";
  if (!need("all_decided", &s)) return false;
  r.all_nonfaulty_decided = s == "true";
  if (!need("hit_round_cap", &s)) return false;
  r.hit_round_cap = s == "true";
  if (!need("hit_deadline", &s)) return false;
  r.hit_deadline = s == "true";
  if (!need("error", &o->error)) return false;
  if (!need("repro", &o->repro_path)) return false;
  o->from_checkpoint = true;
  return true;
}

namespace {

bool transient(Verdict v) {
  return v == Verdict::Timeout || v == Verdict::RoundCap;
}

bool model_violation(Verdict v) {
  return v == Verdict::Precondition || v == Verdict::Invariant ||
         v == Verdict::AdversaryViolation;
}

}  // namespace

std::string serialize_config(const ExperimentConfig& cfg) {
  std::ostringstream os;
  os << "algo=" << to_string(cfg.algo) << "\n";
  os << "attack=" << to_string(cfg.attack) << "\n";
  os << "n=" << cfg.n << "\n";
  os << "t=" << cfg.t << "\n";
  os << "x=" << cfg.x << "\n";
  os << "inputs=" << to_string(cfg.inputs) << "\n";
  if (!cfg.explicit_inputs.empty()) {
    os << "explicit_inputs=";
    for (const auto b : cfg.explicit_inputs) os << (b ? '1' : '0');
    os << "\n";
  }
  os << "seed=" << cfg.seed << "\n";
  os << "random_bit_budget=" << cfg.random_bit_budget << "\n";
  os << "drop_prob=" << format_double(cfg.drop_prob) << "\n";
  if (!cfg.schedule.empty()) os << "schedule=" << cfg.schedule << "\n";
  os << "max_rounds=" << cfg.max_rounds << "\n";
  os << "deadline_ms=" << cfg.deadline_ms << "\n";
  os << "threads=" << cfg.threads << "\n";
  if (cfg.packed) os << "packed=1\n";
  if (cfg.streamed) os << "streamed=1\n";
  if (cfg.pipeline) os << "pipeline=1\n";
  if (!cfg.trace_path.empty()) os << "trace_path=" << cfg.trace_path << "\n";
  if (cfg.trace_packed) os << "trace_packed=1\n";
  os << "params.delta_factor=" << format_double(cfg.params.delta_factor)
     << "\n";
  os << "params.spread_factor=" << format_double(cfg.params.spread_factor)
     << "\n";
  os << "params.epoch_factor=" << format_double(cfg.params.epoch_factor)
     << "\n";
  os << "params.gossip_factor=" << format_double(cfg.params.gossip_factor)
     << "\n";
  os << "params.min_epochs=" << cfg.params.min_epochs << "\n";
  os << "params.early_decide=" << (cfg.params.early_decide ? 1 : 0) << "\n";
  return os.str();
}

bool parse_config(const std::string& text, ExperimentConfig* out,
                  std::string* error, std::size_t* error_offset) {
  std::size_t line_offset = 0;  // byte offset of the current line in text
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    if (error_offset) *error_offset = line_offset;
    return false;
  };
  ExperimentConfig cfg;
  std::istringstream is(text);
  std::string line;
  std::size_t raw_line_size = 0;  // pre-CR-strip size, for offset tracking
  for (; std::getline(is, line);
       line_offset += raw_line_size + 1 /* the consumed newline */) {
    raw_line_size = line.size();
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("bad line: " + line);
    const std::string k = line.substr(0, eq);
    const std::string v = line.substr(eq + 1);
    if (k == "algo") {
      if (!algo_from_string(v, &cfg.algo)) return fail("bad algo: " + v);
    } else if (k == "attack") {
      if (!attack_from_string(v, &cfg.attack))
        return fail("bad attack: " + v);
    } else if (k == "inputs") {
      if (!inputs_from_string(v, &cfg.inputs))
        return fail("bad inputs: " + v);
    } else if (k == "explicit_inputs") {
      cfg.explicit_inputs.clear();
      for (const char c : v) {
        if (c != '0' && c != '1')
          return fail("bad explicit_inputs bit: " + std::string(1, c));
        cfg.explicit_inputs.push_back(c == '1' ? 1 : 0);
      }
    } else if (k == "n") {
      cfg.n = static_cast<std::uint32_t>(to_u64(v));
    } else if (k == "t") {
      cfg.t = static_cast<std::uint32_t>(to_u64(v));
    } else if (k == "x") {
      cfg.x = static_cast<std::uint32_t>(to_u64(v));
    } else if (k == "seed") {
      cfg.seed = to_u64(v);
    } else if (k == "random_bit_budget") {
      cfg.random_bit_budget = to_u64(v);
    } else if (k == "drop_prob") {
      cfg.drop_prob = std::strtod(v.c_str(), nullptr);
    } else if (k == "schedule") {
      cfg.schedule = v;
    } else if (k == "max_rounds") {
      cfg.max_rounds = to_u64(v);
    } else if (k == "deadline_ms") {
      cfg.deadline_ms = to_u64(v);
    } else if (k == "threads") {
      cfg.threads = static_cast<unsigned>(to_u64(v));
    } else if (k == "packed") {
      cfg.packed = v == "1" || v == "true";
    } else if (k == "streamed") {
      cfg.streamed = v == "1" || v == "true";
    } else if (k == "pipeline") {
      cfg.pipeline = v == "1" || v == "true";
    } else if (k == "trace_path") {
      cfg.trace_path = v;
    } else if (k == "trace_packed") {
      cfg.trace_packed = v == "1" || v == "true";
    } else if (k == "params.delta_factor") {
      cfg.params.delta_factor = std::strtod(v.c_str(), nullptr);
    } else if (k == "params.spread_factor") {
      cfg.params.spread_factor = std::strtod(v.c_str(), nullptr);
    } else if (k == "params.epoch_factor") {
      cfg.params.epoch_factor = std::strtod(v.c_str(), nullptr);
    } else if (k == "params.gossip_factor") {
      cfg.params.gossip_factor = std::strtod(v.c_str(), nullptr);
    } else if (k == "params.min_epochs") {
      cfg.params.min_epochs = static_cast<std::uint32_t>(to_u64(v));
    } else if (k == "params.early_decide") {
      cfg.params.early_decide = v == "1" || v == "true";
    } else {
      return fail("unknown key: " + k);
    }
  }
  *out = cfg;
  return true;
}

std::uint64_t config_hash(const ExperimentConfig& cfg) {
  // The worker-lane count cannot change a trial's outcome (the engine is
  // bit-identical at every setting), so it must not change the key either:
  // a sweep resumed with a different --threads still matches its records.
  // Same for the trace sink (observation, not behaviour) and for round
  // pipelining (a scheduling choice with bit-identical results).
  ExperimentConfig canon = cfg;
  canon.threads = 1;
  canon.engine_stats = nullptr;
  canon.trace_path.clear();
  canon.trace_packed = false;  // storage format, not behaviour
  canon.pipeline = false;
  return fnv1a(serialize_config(canon));
}

std::string config_key(const ExperimentConfig& cfg) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(config_hash(cfg)));
  return buf;
}

SweepOptions SweepOptions::from_env() {
  SweepOptions o;
  if (const char* v = std::getenv("OMX_SWEEP_CHECKPOINT")) {
    o.checkpoint_path = v;
  }
  if (const char* v = std::getenv("OMX_SWEEP_REPRO_DIR")) o.repro_dir = v;
  if (const char* v = std::getenv("OMX_SWEEP_DEADLINE_MS")) {
    o.trial_deadline_ms = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("OMX_SWEEP_RETRIES")) {
    o.max_attempts = 1 + static_cast<std::uint32_t>(
                             std::strtoul(v, nullptr, 10));
  }
  if (std::getenv("OMX_SWEEP_NO_REPRO")) o.capture_repro = false;
  if (std::getenv("OMX_SWEEP_NO_TRACE")) o.capture_trace = false;
  return o;
}

Sweep::Sweep() : Sweep(SweepOptions::from_env()) {}

Sweep::Sweep(SweepOptions options) : options_(std::move(options)) {
  if (checkpointing()) load_checkpoint();
}

void Sweep::load_checkpoint() {
  std::ifstream in(options_.checkpoint_path, std::ios::binary);
  if (!in) return;  // no checkpoint yet — fresh sweep
  std::string line;
  std::size_t lineno = 0;
  std::size_t dropped = 0;
  std::size_t first_bad = 0;
  while (std::getline(in, line)) {
    std::string key;
    TrialOutcome outcome;
    ++lineno;
    if (parse_checkpoint_line(line, &key, &outcome)) {
      recorded_[key] = std::move(outcome);
      checkpoint_text_ += line;
      checkpoint_text_ += '\n';
    } else {
      // Typically the torn final line of a killed sweep; that trial simply
      // re-runs. The rewrite on the next record drops the debris.
      if (dropped == 0) first_bad = lineno;
      ++dropped;
    }
  }
  if (dropped > 0) {
    std::fprintf(
        stderr,
        "sweep: checkpoint %s: dropped %zu unparseable line(s), first at "
        "line %zu%s — the affected trial(s) will re-run\n",
        options_.checkpoint_path.c_str(), dropped, first_bad,
        (dropped == 1 && first_bad == lineno)
            ? " (the final line — torn by an interrupted run)"
            : "");
  }
}

void Sweep::record(const std::string& key, const TrialOutcome& outcome) {
  checkpoint_text_ += checkpoint_line(key, outcome);
  checkpoint_text_ += '\n';
  // Atomic replace: a kill at any instant leaves either the previous file
  // or the new one, never a half-written state that would poison a resume.
  const std::string tmp = options_.checkpoint_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << checkpoint_text_;
    out.flush();
    if (!out) {
      throw std::runtime_error("sweep: cannot write checkpoint " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, options_.checkpoint_path, ec);
  if (ec) {
    throw std::runtime_error("sweep: cannot publish checkpoint " +
                             options_.checkpoint_path + ": " + ec.message());
  }
}

TrialOutcome Sweep::run_isolated(const ExperimentConfig& cfg) const {
  TrialOutcome out;
  out.seed_used = cfg.seed;
  try {
    out.result = run_experiment(cfg);
    out.verdict = out.result.hit_deadline ? Verdict::Timeout
                  : out.result.hit_round_cap ? Verdict::RoundCap
                                             : Verdict::Ok;
  } catch (const AdversaryViolation& e) {
    out.verdict = Verdict::AdversaryViolation;
    out.error = e.what();
  } catch (const PreconditionError& e) {
    out.verdict = Verdict::Precondition;
    out.error = e.what();
  } catch (const InvariantError& e) {
    out.verdict = Verdict::Invariant;
    out.error = e.what();
  } catch (const rng::BudgetExhausted& e) {
    // A protocol that overdraws instead of degrading is a protocol bug —
    // the invariant "respect the metered budget" broke.
    out.verdict = Verdict::Invariant;
    out.error = e.what();
  } catch (const std::exception& e) {
    out.verdict = Verdict::Invariant;
    out.error = e.what();
  }
  if (!out.error.empty()) out.result = ExperimentResult{};
  return out;
}

std::string Sweep::capture_repro(const ExperimentConfig& cfg,
                                 const TrialOutcome& outcome,
                                 std::string* trace_path) const {
  std::error_code ec;
  std::filesystem::create_directories(options_.repro_dir, ec);
  if (ec) {
    std::fprintf(stderr, "sweep: cannot create repro dir %s: %s\n",
                 options_.repro_dir.c_str(), ec.message().c_str());
    return "";
  }
  const std::string stem = options_.repro_dir + "/" + config_key(cfg);
  const std::string path = stem + ".repro";

  // Re-run the failing trial with a trace attached: the engine is
  // deterministic, so the capture is the event history of the recorded
  // failure, ending exactly where the violation threw (the writer flushes
  // through the unwind). Failures are rare; paying one extra run for a
  // debuggable artifact is the point of capturing at all.
  if (options_.capture_trace && trace::kCompiledIn) {
    ExperimentConfig traced = cfg;
    traced.trace_path = stem + ".trace";
    // Captures are written packed: every reader handles both formats, the
    // farm indexes by filename, and compressed artifacts are the point of
    // storing traces per failure at all (ROADMAP item 3).
    traced.trace_packed = true;
    const TrialOutcome replay = run_isolated(traced);
    if (replay.verdict != outcome.verdict) {
      std::fprintf(stderr,
                   "sweep: trace re-run of %s reproduced verdict %s, "
                   "original was %s — keeping the trace anyway\n",
                   path.c_str(), to_string(replay.verdict),
                   to_string(outcome.verdict));
    }
    if (std::filesystem::exists(traced.trace_path, ec)) {
      *trace_path = traced.trace_path;
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  std::string first_line = outcome.error;
  if (const auto nl = first_line.find('\n'); nl != std::string::npos) {
    first_line.resize(nl);
  }
  out << "# replay with: omxsim --repro " << path << "\n";
  out << "# verdict: " << to_string(outcome.verdict) << "\n";
  out << "# error: " << first_line << "\n";
  if (!trace_path->empty()) {
    out << "# trace: " << *trace_path << " (analyze with omxtrace)\n";
  }
  out << serialize_config(cfg);
  if (!out) {
    std::fprintf(stderr, "sweep: cannot write repro file %s\n", path.c_str());
    return "";
  }
  return path;
}

TrialOutcome Sweep::run(ExperimentConfig cfg) {
  if (options_.trial_deadline_ms != 0) {
    cfg.deadline_ms = options_.trial_deadline_ms;
  }

  std::string key;
  if (checkpointing()) {
    key = config_key(cfg);
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = recorded_.find(key);
    if (it != recorded_.end()) {
      TrialOutcome out = it->second;
      out.from_checkpoint = true;
      ++trials_;
      ++resumed_;
      ++counts_[out.verdict];
      return out;
    }
  }

  const std::uint64_t base_seed = cfg.seed;
  TrialOutcome out;
  std::uint32_t attempt = 1;
  for (;; ++attempt) {
    // Retries perturb the seed deterministically, so "the third attempt of
    // trial (cfg)" is itself reproducible.
    cfg.seed = attempt == 1 ? base_seed : mix64(base_seed, 0x5EED00 + attempt);
    out = run_isolated(cfg);
    if (!transient(out.verdict) || attempt >= options_.max_attempts) break;
  }
  out.attempts = attempt;

  if (model_violation(out.verdict) && options_.capture_repro) {
    out.repro_path = capture_repro(cfg, out, &out.trace_path);
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++trials_;
  if (attempt > 1) ++retried_;
  ++counts_[out.verdict];
  if (checkpointing()) {
    recorded_[key] = out;
    record(key, out);
  }
  return out;
}

std::uint64_t Sweep::trials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trials_;
}

std::uint64_t Sweep::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t bad = 0;
  for (const auto& [v, c] : counts_) {
    if (v != Verdict::Ok) bad += c;
  }
  return bad;
}

std::uint64_t Sweep::resumed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resumed_;
}

std::map<Verdict, std::uint64_t> Sweep::verdict_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::string Sweep::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "sweep: " << trials_ << " trial(s)";
  const char* sep = " — ";
  for (const auto& [v, c] : counts_) {
    os << sep << c << " " << to_string(v);
    sep = ", ";
  }
  if (resumed_ > 0) os << "; " << resumed_ << " from checkpoint";
  if (retried_ > 0) os << "; " << retried_ << " retried";
  return os.str();
}

void Sweep::print_summary(std::ostream& os) const {
  bool interesting;
  {
    std::lock_guard<std::mutex> lock(mu_);
    interesting = resumed_ > 0 || retried_ > 0 ||
                  counts_.size() > 1 ||
                  (counts_.size() == 1 && counts_.begin()->first != Verdict::Ok);
  }
  if (interesting) os << summary() << "\n";
}

int guarded_main(const std::function<int()>& body) {
  try {
    return body();
  } catch (const AdversaryViolation& e) {
    std::fprintf(stderr, "adversary violation: %s\n", e.what());
    return 4;
  } catch (const CorruptInputError& e) {
    // Before PreconditionError: a corrupt *input file* is the operator's
    // data gone bad, not a caller bug, and scripts branch on the code.
    std::fprintf(stderr, "%s\n", e.what());
    return 5;
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "precondition failed: %s\n", e.what());
    return 2;
  } catch (const InvariantError& e) {
    std::fprintf(stderr, "invariant violated: %s\n", e.what());
    return 3;
  } catch (const rng::BudgetExhausted& e) {
    std::fprintf(stderr, "invariant violated: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}

}  // namespace omx::harness
