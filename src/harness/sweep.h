// Crash-safe sweep runner: the harness layer every multi-trial driver
// (bench binaries, omxsim) pushes its trials through.
//
// A sweep of thousands of trials must survive the failure of any one of
// them. run() therefore never lets a trial kill the process: each trial is
// executed in a fault-isolation shell that converts engine exceptions into
// a per-trial Verdict (ok / round_cap / timeout / precondition / invariant
// / adversary_violation) carried in the TrialOutcome, and the sweep moves
// on. On top of that shell sit four robustness mechanisms:
//
//   * watchdog deadlines — SweepOptions::trial_deadline_ms is forwarded to
//     the engine's cooperative round-boundary watchdog, so a stalled
//     protocol degrades into a recorded `timeout` verdict;
//   * JSONL checkpointing — every finished trial is appended to a
//     checkpoint file keyed by its config hash, rewritten atomically
//     (whole file to `<path>.tmp`, then rename), so `kill -9` loses at
//     most the in-flight trial; a restarted sweep replays recorded trials
//     from the file instead of re-running them, byte-identically for
//     deterministic (serially driven) sweeps;
//   * seed retries — transient verdicts (timeout, round_cap) re-run up to
//     SweepOptions::max_attempts times with deterministically perturbed
//     seeds, the attempt count recorded in the outcome;
//   * repro capture — a trial that violates a model invariant
//     (OMX_CHECK / AdversaryViolation / budget overdraft) serializes its
//     full ExperimentConfig to `<repro_dir>/<hash>.repro`; `omxsim --repro
//     <file>` replays exactly that trial, outside the isolation shell, so
//     the original exception surfaces with its class-specific exit code.
//
// Sweep::run is thread-safe (bench drivers fan trials out with
// expsup::parallel_map); the trial itself runs outside the lock. Note that
// with concurrent callers the checkpoint's line *order* follows completion
// order — resume stays correct (lookup is by config hash), but the
// byte-identity guarantee is for serially driven sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "harness/experiment.h"

namespace omx::harness {

/// How a trial ended. Everything except Ok and RoundCap means the trial's
/// metrics are partial or absent; everything from Precondition on down
/// means the *model* was violated and a repro file is warranted.
enum class Verdict {
  Ok,                  // ran to completion (spec verdict may still be NO)
  RoundCap,            // hit the engine's max_rounds safety cap
  Timeout,             // hit the cooperative wall-clock deadline
  Precondition,        // PreconditionError: the config itself is invalid
  Invariant,           // InvariantError / rng overdraft / unexpected error
  AdversaryViolation,  // an adversary stepped outside the omission model
};

const char* to_string(Verdict v);

/// One trial's result under fault isolation.
struct TrialOutcome {
  Verdict verdict = Verdict::Ok;
  /// Valid when verdict is Ok / RoundCap / Timeout; default otherwise.
  ExperimentResult result{};
  /// what() of the exception behind a failure verdict (empty otherwise).
  std::string error;
  /// Attempts consumed (> 1 iff transient verdicts were retried).
  std::uint32_t attempts = 1;
  /// Seed of the recorded attempt (perturbed on retries).
  std::uint64_t seed_used = 0;
  /// Path of the captured repro file (empty if none was written).
  std::string repro_path;
  /// Path of the event trace captured alongside the repro (empty if none):
  /// the failing trial re-run deterministically with tracing on, so the
  /// exact event history up to the violation ships with the config. Not
  /// persisted in the checkpoint (its line format predates tracing and
  /// resume must stay byte-identical); a resumed outcome leaves it empty.
  std::string trace_path;
  /// True iff this outcome was replayed from the checkpoint, not re-run.
  bool from_checkpoint = false;

  /// Trial ran to completion and satisfied the consensus spec.
  bool ok() const { return verdict == Verdict::Ok && result.ok(); }
};

struct SweepOptions {
  /// JSONL checkpoint file; empty = checkpointing off.
  std::string checkpoint_path;
  /// Directory for .repro files captured from model-violation verdicts.
  std::string repro_dir = "repro";
  /// Per-trial cooperative deadline (ms); 0 = none. Overrides the trial
  /// config's own deadline_ms when nonzero.
  std::uint64_t trial_deadline_ms = 0;
  /// Total attempts per trial (1 = no retries). Only transient verdicts
  /// (timeout, round_cap) are retried, with perturbed seeds.
  std::uint32_t max_attempts = 1;
  /// Capture .repro files for model-violation verdicts.
  bool capture_repro = true;
  /// Alongside each .repro, re-run the failing trial deterministically with
  /// tracing on and capture `<repro_dir>/<hash>.trace` (the hot path never
  /// pays for tracing — only failures do). No-op when capture_repro is off
  /// or tracing is compiled out.
  bool capture_trace = true;

  /// Environment-driven defaults, so existing bench binaries gain
  /// checkpointing and watchdogs without new flags: OMX_SWEEP_CHECKPOINT,
  /// OMX_SWEEP_REPRO_DIR, OMX_SWEEP_DEADLINE_MS, OMX_SWEEP_RETRIES (extra
  /// attempts beyond the first), OMX_SWEEP_NO_REPRO, OMX_SWEEP_NO_TRACE.
  static SweepOptions from_env();
};

/// Canonical key=value serialization of a config — the .repro file format,
/// and the preimage of config_hash(). Round-trips through parse_config().
std::string serialize_config(const ExperimentConfig& cfg);

/// Parse serialize_config output ('#'-comment and blank lines ignored).
/// On failure returns false, sets *error, and (when error_offset is
/// non-null) the byte offset within `text` of the first bad line — CLI
/// loaders report it so a truncated or hand-mangled file names the exact
/// spot that went wrong.
bool parse_config(const std::string& text, ExperimentConfig* out,
                  std::string* error, std::size_t* error_offset = nullptr);

/// FNV-1a over the canonical serialization, with fields that cannot change
/// the trial's outcome (worker-lane count) canonicalized away.
std::uint64_t config_hash(const ExperimentConfig& cfg);

/// config_hash as 16 hex digits — checkpoint key and repro file stem.
std::string config_key(const ExperimentConfig& cfg);

/// One checkpoint/shard line for an outcome: the JSONL record format shared
/// by Sweep's checkpoint file and the farm's per-worker shards, so a farm's
/// merged results are line-for-line comparable with a single-process
/// sweep's checkpoint. No trailing newline.
std::string checkpoint_line(const std::string& key, const TrialOutcome& o);

/// Inverse of checkpoint_line. Returns false on any deviation (e.g. a line
/// torn by kill -9); on success sets *key and *out (with from_checkpoint).
bool parse_checkpoint_line(const std::string& line, std::string* key,
                           TrialOutcome* out);

class Sweep {
 public:
  /// Options from the environment (SweepOptions::from_env).
  Sweep();
  explicit Sweep(SweepOptions options);

  /// Run one trial under fault isolation. Never throws for trial failures
  /// (only for checkpoint-file I/O errors, which would silently void the
  /// crash-safety guarantee if ignored).
  TrialOutcome run(ExperimentConfig cfg);

  std::uint64_t trials() const;
  /// Trials whose verdict was not Ok.
  std::uint64_t failures() const;
  /// Trials replayed from the checkpoint.
  std::uint64_t resumed() const;
  std::map<Verdict, std::uint64_t> verdict_counts() const;

  /// One-line account of the sweep ("120 trials: 118 ok, 2 timeout; ...").
  std::string summary() const;
  /// Print the summary iff anything nontrivial happened (a failure, a
  /// retry, a resume) — quiet sweeps stay quiet.
  void print_summary(std::ostream& os) const;

 private:
  bool checkpointing() const { return !options_.checkpoint_path.empty(); }
  void load_checkpoint();
  void record(const std::string& key, const TrialOutcome& outcome);
  TrialOutcome run_isolated(const ExperimentConfig& cfg) const;
  std::string capture_repro(const ExperimentConfig& cfg,
                            const TrialOutcome& outcome,
                            std::string* trace_path) const;

  SweepOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, TrialOutcome> recorded_;
  std::string checkpoint_text_;  // the checkpoint file's current contents
  std::uint64_t trials_ = 0;
  std::uint64_t resumed_ = 0;
  std::uint64_t retried_ = 0;
  std::map<Verdict, std::uint64_t> counts_;
};

/// Top-level shell for every driver binary: runs `body` and converts an
/// escaped engine exception into a message on stderr plus the documented
/// exit code — precondition=2, invariant (incl. rng overdraft and any
/// other unexpected exception)=3, adversary violation=4, corrupt/unreadable
/// input file (CorruptInputError, which names the file and the byte offset
/// of the first bad record)=5 — instead of std::terminate.
int guarded_main(const std::function<int()>& body);

}  // namespace omx::harness
