#include "farm/workqueue.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace omx::farm {

WorkQueue::WorkQueue(WorkQueueOptions options, Clock now)
    : options_(std::move(options)), now_(std::move(now)) {
  OMX_REQUIRE(options_.max_attempts >= 1, "work queue needs max_attempts >= 1");
  OMX_REQUIRE(now_ != nullptr, "work queue needs a clock");
}

bool WorkQueue::add(std::string key, harness::ExperimentConfig config) {
  if (std::find(keys_.begin(), keys_.end(), key) != keys_.end()) return false;
  keys_.push_back(key);
  WorkItem item;
  item.key = std::move(key);
  item.config = std::move(config);
  items_.push_back(std::move(item));
  return true;
}

bool WorkQueue::mark_done(const std::string& key) {
  for (auto& item : items_) {
    if (item.key == key) {
      item.state = ItemState::Done;
      return true;
    }
  }
  return false;
}

std::optional<std::size_t> WorkQueue::acquire(int worker_slot,
                                              std::int64_t pid) {
  const std::uint64_t now = now_();
  for (std::size_t i = 0; i < items_.size(); ++i) {
    WorkItem& item = items_[i];
    if (item.state != ItemState::Pending || item.eligible_at_ms > now)
      continue;
    item.state = ItemState::Leased;
    ++item.attempts;
    if (item.attempts > 1) ++retries_;
    item.worker_slot = worker_slot;
    item.worker_pid = pid;
    item.lease_deadline_ms =
        options_.watchdog_ms == 0 ? 0 : now + options_.watchdog_ms;
    item.watchdog_fired = false;
    return i;
  }
  return std::nullopt;
}

void WorkQueue::complete(std::size_t index) {
  WorkItem& item = items_.at(index);
  OMX_CHECK(item.state == ItemState::Leased,
            "completing an item that is not leased: " + item.key);
  item.state = ItemState::Done;
  item.worker_slot = -1;
  item.worker_pid = -1;
}

bool WorkQueue::fail(std::size_t index) {
  WorkItem& item = items_.at(index);
  OMX_CHECK(item.state == ItemState::Leased,
            "failing an item that is not leased: " + item.key);
  item.worker_slot = -1;
  item.worker_pid = -1;
  if (item.attempts >= options_.max_attempts) {
    item.state = ItemState::Failed;
    return false;
  }
  // Exponential backoff, capped: attempt k (1-based) failed, so the k+1'th
  // lease becomes eligible after base << (k-1).
  std::uint64_t backoff = options_.backoff_base_ms;
  for (std::uint32_t i = 1; i < item.attempts && backoff < options_.backoff_cap_ms;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.backoff_cap_ms);
  item.eligible_at_ms = now_() + backoff;
  item.state = ItemState::Pending;
  return true;
}

std::optional<std::size_t> WorkQueue::find(const std::string& key) const {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].key == key) return i;
  }
  return std::nullopt;
}

bool WorkQueue::renew(std::size_t index, std::uint32_t epoch) {
  WorkItem& item = items_.at(index);
  if (item.state != ItemState::Leased || item.attempts != epoch ||
      item.watchdog_fired) {
    return false;
  }
  if (options_.watchdog_ms != 0) {
    item.lease_deadline_ms = now_() + options_.watchdog_ms;
  }
  return true;
}

std::vector<std::size_t> WorkQueue::expired() {
  std::vector<std::size_t> out;
  if (options_.watchdog_ms == 0) return out;
  const std::uint64_t now = now_();
  for (std::size_t i = 0; i < items_.size(); ++i) {
    WorkItem& item = items_[i];
    if (item.state == ItemState::Leased && !item.watchdog_fired &&
        item.lease_deadline_ms != 0 && now >= item.lease_deadline_ms) {
      item.watchdog_fired = true;
      out.push_back(i);
    }
  }
  return out;
}

std::optional<std::uint64_t> WorkQueue::next_deadline_in() const {
  const std::uint64_t now = now_();
  std::optional<std::uint64_t> best;
  const auto consider = [&](std::uint64_t at) {
    const std::uint64_t in = at > now ? at - now : 0;
    if (!best || in < *best) best = in;
  };
  for (const auto& item : items_) {
    if (item.state == ItemState::Pending && item.eligible_at_ms > now) {
      consider(item.eligible_at_ms);
    } else if (item.state == ItemState::Leased && !item.watchdog_fired &&
               item.lease_deadline_ms != 0) {
      consider(item.lease_deadline_ms);
    }
  }
  return best;
}

bool WorkQueue::all_settled() const {
  return std::all_of(items_.begin(), items_.end(), [](const WorkItem& i) {
    return i.state == ItemState::Done || i.state == ItemState::Failed;
  });
}

std::size_t WorkQueue::count(ItemState s) const {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(),
                    [s](const WorkItem& i) { return i.state == s; }));
}

}  // namespace omx::farm
