// Crash-consistent, mmap-backed artifact cache (ROADMAP item 3).
//
// Several per-trial structures are pure functions of a tiny key — the
// common-knowledge CommGraph is determined by (n, Δ), the √n decomposition
// by n alone — yet every trial of a sweep recomputes them. The cache turns
// each such artifact into a checksummed blob file under a cache directory,
// shared by every process that points OMX_ARTIFACT_CACHE at it (the farm
// daemon does this for its forked workers, so a 4-worker sweep builds each
// graph once instead of four times per process).
//
// The failure story is the point, not the speedup:
//
//   * writes are publish-by-rename — payload goes to `<name>.tmp.<pid>`,
//     is fsync'd, then rename(2)'d over the final name, so a reader never
//     observes a half-written entry and a crashed writer leaves only a
//     .tmp file that the next write replaces;
//   * every entry starts with a fixed header carrying a magic, a format
//     version, the payload size and an FNV-1a checksum of the payload; a
//     torn or bit-flipped entry fails validation and get() treats it as a
//     MISS (and unlinks the debris) — a corrupt cache can cost time, never
//     correctness;
//   * reads are zero-copy: the file is mmap'd read-only and the caller
//     gets a span into the mapping (Blob unmaps on destruction).
//
// Keys are caller-chosen strings like "graph-n1024-d40"; the cache neither
// interprets them nor hashes them (collisions are the caller's bug). All
// methods are safe to call from concurrently running *processes*: the
// worst interleaving is two processes computing and publishing the same
// entry, and rename makes the last one win with a valid file.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace omx::farm {

/// A validated, memory-mapped cache entry. Movable, unmaps on destruction.
class Blob {
 public:
  Blob() = default;
  Blob(Blob&& other) noexcept;
  Blob& operator=(Blob&& other) noexcept;
  Blob(const Blob&) = delete;
  Blob& operator=(const Blob&) = delete;
  ~Blob();

  std::span<const std::uint8_t> bytes() const {
    return {payload_, payload_size_};
  }

 private:
  friend class ArtifactCache;
  void* map_ = nullptr;          // whole-file mapping (header + payload)
  std::size_t map_size_ = 0;
  const std::uint8_t* payload_ = nullptr;
  std::size_t payload_size_ = 0;
};

class ArtifactCache {
 public:
  /// Opens (creating if needed) a cache rooted at `dir`. Throws
  /// PreconditionError if the directory cannot be created. `max_bytes`
  /// caps the total size of stored entries (0 = unbounded): after every
  /// put, least-recently-used entries (by atime — get() bumps it
  /// explicitly, so relatime mounts cannot starve the signal) are evicted
  /// until the cache fits.
  explicit ArtifactCache(std::string dir, std::uint64_t max_bytes = 0);

  const std::string& dir() const { return dir_; }

  std::uint64_t max_bytes() const { return max_bytes_; }
  void set_max_bytes(std::uint64_t max_bytes) { max_bytes_ = max_bytes; }

  /// Publish `payload` under `key` (write-to-temp + fsync + rename).
  /// Returns false (and warns on stderr) on I/O failure — the cache is an
  /// accelerator, so a failed put degrades to recomputation, not an abort.
  bool put(const std::string& key, std::span<const std::uint8_t> payload);

  /// Look up `key`. A missing, torn, truncated or checksum-failing entry is
  /// a miss; corrupt entries are additionally unlinked so they are rebuilt
  /// rather than re-probed forever.
  std::optional<Blob> get(const std::string& key);

  /// Evict least-recently-used entries until total stored bytes fit
  /// max_bytes (no-op when unbounded). Runs automatically after put();
  /// public so operators/tests can force a sweep. Returns entries removed.
  /// Eviction is just unlink: a reader holding a Blob keeps its private
  /// mapping (mmap outlives the name), and a reader that races the unlink
  /// sees a plain miss — while a *torn* entry that eviction removes
  /// mid-read still fails its checksum first; either way a miss, never a
  /// wrong payload.
  std::size_t evict_to_cap();

  /// Lifetime counters (this ArtifactCache instance only), for tests and
  /// the farm's status endpoint.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t corrupt_entries() const { return corrupt_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Deliberately corrupt the stored entry for `key` by flipping one
  /// payload byte in place (chaos-testing hook; returns false if absent).
  bool corrupt_entry_for_test(const std::string& key);

  /// The process-wide cache configured by the OMX_ARTIFACT_CACHE
  /// environment variable, or nullptr when the variable is unset/empty or
  /// the directory is unusable. OMX_ARTIFACT_CACHE_MAX_MB (when set and
  /// positive) caps its size. Evaluated once per process (the farm sets
  /// the variables before forking workers).
  static ArtifactCache* process_cache();

 private:
  std::string entry_path(const std::string& key) const;

  std::string dir_;
  std::uint64_t max_bytes_ = 0;  // 0 = unbounded
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t corrupt_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace omx::farm
