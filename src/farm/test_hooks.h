// Environment-driven chaos hooks shared by the local fork-worker path
// (farm.cpp) and the remote worker (remote_worker.cpp), so the same test
// and CI recipes can crash or hang a trial regardless of which transport
// leased it. All hooks are inert unless their variable is set:
//
//   OMX_FARM_TEST_CRASH_KEY=<key>        SIGKILL the trial process on the
//                                        first attempt at <key>
//   OMX_FARM_TEST_HANG_KEY=<key>[:once]  hang the trial until the parent
//                                        daemon/worker dies (every attempt,
//                                        or only the first with ":once")
//   OMX_FARM_TEST_CRASH_AFTER_WRITE_KEY=<key>
//                                        remote worker only: _exit(9) after
//                                        the result line is durable in the
//                                        local spool but before it is
//                                        submitted/acked — the
//                                        duplicate-submission oracle (a
//                                        restarted worker must resubmit and
//                                        the daemon must not grow a second
//                                        row for the key)
#pragma once

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

namespace omx::farm {

/// Crash/hang hooks for a trial process. Call with the item's key and
/// 1-based attempt number before running the trial.
inline void maybe_run_trial_chaos_hooks(const std::string& key,
                                        std::uint32_t attempt) {
  if (const char* crash = std::getenv("OMX_FARM_TEST_CRASH_KEY")) {
    if (key == crash && attempt == 1) ::raise(SIGKILL);
  }
  if (const char* hang = std::getenv("OMX_FARM_TEST_HANG_KEY")) {
    std::string spec = hang;
    bool once = false;
    if (const auto colon = spec.rfind(":once"); colon != std::string::npos &&
                                                colon == spec.size() - 5) {
      once = true;
      spec.resize(colon);
    }
    if (key == spec && (!once || attempt == 1)) {
      // Hang until the parent is gone (reparenting changes getppid), then
      // exit: a SIGKILL'd daemon must not leak paused trial processes.
      const pid_t parent = ::getppid();
      while (::getppid() == parent) ::usleep(50 * 1000);
      ::_exit(9);
    }
  }
}

/// True iff the crash-after-write hook targets `key` (remote worker only;
/// the caller _exit(9)s between spool write and submission).
inline bool crash_after_write_hook_hits(const std::string& key) {
  const char* target = std::getenv("OMX_FARM_TEST_CRASH_AFTER_WRITE_KEY");
  return target != nullptr && key == target;
}

}  // namespace omx::farm
