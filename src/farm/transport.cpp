#include "farm/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>

#include "support/check.h"

namespace omx::farm {

namespace {

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr char kMagic[4] = {'O', 'M', 'X', 'F'};
constexpr std::size_t kHeaderSize = 16;  // magic(4) + length(4) + checksum(8)

void put_u32(char* p, std::uint32_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

void put_u64(char* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24;
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The one concrete connection: framing over any stream fd.
class FdConn final : public Conn {
 public:
  explicit FdConn(int fd) : fd_(fd) {}
  ~FdConn() override { close(); }

  bool send(std::string_view payload) override {
    if (fd_ < 0 || payload.size() > kMaxFramePayload) return false;
    std::string frame(kHeaderSize, '\0');
    std::memcpy(frame.data(), kMagic, sizeof kMagic);
    put_u32(frame.data() + 4, static_cast<std::uint32_t>(payload.size()));
    put_u64(frame.data() + 8, fnv1a(payload));
    frame.append(payload);
    const char* p = frame.data();
    std::size_t left = frame.size();
    while (left > 0) {
      // MSG_NOSIGNAL: a peer that died mid-conversation must surface as a
      // failed send, not a SIGPIPE that kills the daemon.
      const ssize_t wrote = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (wrote <= 0) {
        if (wrote < 0 && errno == EINTR) continue;
        return false;
      }
      p += wrote;
      left -= static_cast<std::size_t>(wrote);
    }
    return true;
  }

  RecvStatus recv(std::string* payload, int timeout_ms) override {
    if (fd_ < 0) return RecvStatus::Closed;
    const std::uint64_t deadline = steady_now_ms() +
                                   static_cast<std::uint64_t>(
                                       timeout_ms > 0 ? timeout_ms : 0);
    for (;;) {
      const RecvStatus parsed = try_parse(payload);
      if (parsed != RecvStatus::Timeout) return parsed;

      const std::uint64_t now = steady_now_ms();
      const int wait = timeout_ms <= 0
                           ? 0
                           : static_cast<int>(deadline > now ? deadline - now
                                                             : 0);
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, wait);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return RecvStatus::Timeout;

      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof chunk);
      if (got < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::Closed;
      }
      if (got == 0) return RecvStatus::Closed;  // EOF (mid-frame = severed)
      buf_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  void close() override {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  int fd() const override { return fd_; }
  std::uint64_t corrupt_offset() const override { return corrupt_offset_; }
  const std::string& corrupt_detail() const override {
    return corrupt_detail_;
  }

 private:
  /// Try to lift one validated frame out of buf_. Timeout = need more
  /// bytes; Corrupt = the bytes at the head of the stream are not a frame.
  RecvStatus try_parse(std::string* payload) {
    if (buf_.size() < kHeaderSize) return RecvStatus::Timeout;
    const auto corrupt = [&](const std::string& why) {
      corrupt_offset_ = consumed_;
      corrupt_detail_ = why;
      close();  // the stream has no recoverable framing past bad bytes
      return RecvStatus::Corrupt;
    };
    if (std::memcmp(buf_.data(), kMagic, sizeof kMagic) != 0) {
      return corrupt("bad frame magic");
    }
    const std::uint32_t length = get_u32(buf_.data() + 4);
    if (length > kMaxFramePayload) {
      return corrupt("frame length " + std::to_string(length) +
                     " exceeds the " + std::to_string(kMaxFramePayload) +
                     "-byte cap");
    }
    if (buf_.size() < kHeaderSize + length) return RecvStatus::Timeout;
    const std::string_view body(buf_.data() + kHeaderSize, length);
    if (fnv1a(body) != get_u64(buf_.data() + 8)) {
      return corrupt("frame checksum mismatch");
    }
    payload->assign(body);
    buf_.erase(0, kHeaderSize + length);
    consumed_ += kHeaderSize + length;
    return RecvStatus::Ok;
  }

  int fd_;
  std::string buf_;
  std::uint64_t consumed_ = 0;  // bytes of validated frames already lifted
  std::uint64_t corrupt_offset_ = 0;
  std::string corrupt_detail_;
};

int make_unix_socket(const std::string& path, sockaddr_un* addr) {
  OMX_REQUIRE(path.size() < sizeof(addr->sun_path),
              "unix endpoint path too long: " + path);
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::strncpy(addr->sun_path, path.c_str(), sizeof(addr->sun_path) - 1);
  return ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
}

int make_tcp_socket(const Endpoint& ep, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof *addr);
  addr->sin_family = AF_INET;
  addr->sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr->sin_addr) != 1) {
    // Resolve a hostname (e.g. "localhost", a peer box's name).
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(ep.host.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      return -1;
    }
    addr->sin_addr =
        reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd >= 0) {
    // Lease/heartbeat frames are latency-bound, not throughput-bound.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// Endpoint.

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  std::string rest = spec;
  if (rest.rfind("unix:", 0) == 0) {
    ep.kind = Kind::Unix;
    ep.path = rest.substr(5);
    OMX_REQUIRE(!ep.path.empty(), "unix endpoint needs a path: " + spec);
    return ep;
  }
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const auto colon = rest.rfind(':');
  OMX_REQUIRE(colon != std::string::npos && colon > 0,
              "endpoint must be unix:<path> or [tcp:]<host>:<port>: " + spec);
  ep.kind = Kind::Tcp;
  ep.host = rest.substr(0, colon);
  const std::string port_text = rest.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  OMX_REQUIRE(end != nullptr && *end == '\0' && !port_text.empty() &&
                  port >= 0 && port <= 65535,
              "bad endpoint port: " + spec);
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// ---------------------------------------------------------------------------
// Connect / listen.

std::unique_ptr<Conn> adopt_fd(int fd) { return std::make_unique<FdConn>(fd); }

std::unique_ptr<Conn> dial(const Endpoint& ep) {
  int fd = -1;
  if (ep.kind == Endpoint::Kind::Unix) {
    sockaddr_un addr;
    fd = make_unix_socket(ep.path, &addr);
    if (fd < 0) return nullptr;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd);
      return nullptr;
    }
  } else {
    sockaddr_in addr;
    fd = make_tcp_socket(ep, &addr);
    if (fd < 0) return nullptr;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  return std::make_unique<FdConn>(fd);
}

Listener::Listener(const Endpoint& ep) : endpoint_(ep) {
  if (ep.kind == Endpoint::Kind::Unix) {
    sockaddr_un addr;
    fd_ = make_unix_socket(ep.path, &addr);
    OMX_REQUIRE(fd_ >= 0, "cannot create unix socket for " + ep.to_string());
    ::unlink(ep.path.c_str());
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(fd_, 32) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw PreconditionError("cannot listen on " + ep.to_string() + ": " +
                              err);
    }
  } else {
    sockaddr_in addr;
    fd_ = make_tcp_socket(ep, &addr);
    OMX_REQUIRE(fd_ >= 0, "cannot create tcp socket for " + ep.to_string());
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(fd_, 32) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw PreconditionError("cannot listen on " + ep.to_string() + ": " +
                              err);
    }
    // Port 0: report the port the kernel actually assigned.
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      endpoint_.port = ntohs(bound.sin_port);
    }
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (endpoint_.kind == Endpoint::Kind::Unix) {
    ::unlink(endpoint_.path.c_str());
  }
}

std::unique_ptr<Conn> Listener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return nullptr;
  const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (client < 0) return nullptr;
  if (endpoint_.kind == Endpoint::Kind::Tcp) {
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return std::make_unique<FdConn>(client);
}

// ---------------------------------------------------------------------------
// Wire codec.

namespace wire {

namespace {

void append_escaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        *out += c;
    }
  }
}

/// Parse a JSON string starting at text[*i] == '"'. Advances *i past the
/// closing quote.
bool parse_string(const std::string& text, std::size_t* i, std::string* out) {
  if (*i >= text.size() || text[*i] != '"') return false;
  ++*i;
  out->clear();
  while (*i < text.size()) {
    const char c = text[*i];
    if (c == '"') {
      ++*i;
      return true;
    }
    if (c == '\\') {
      ++*i;
      if (*i >= text.size()) return false;
      switch (text[*i]) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'r':
          *out += '\r';
          break;
        case '/':
          *out += '/';
          break;
        default:
          return false;
      }
      ++*i;
      continue;
    }
    *out += c;
    ++*i;
  }
  return false;
}

void skip_ws(const std::string& text, std::size_t* i) {
  while (*i < text.size() &&
         (text[*i] == ' ' || text[*i] == '\t' || text[*i] == '\n' ||
          text[*i] == '\r')) {
    ++*i;
  }
}

}  // namespace

std::string encode(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(&out, k);
    out += "\":\"";
    append_escaped(&out, v);
    out += '"';
  }
  out += '}';
  return out;
}

bool decode(const std::string& payload,
            std::map<std::string, std::string>* out) {
  out->clear();
  std::size_t i = 0;
  skip_ws(payload, &i);
  if (i >= payload.size() || payload[i] != '{') return false;
  ++i;
  skip_ws(payload, &i);
  if (i < payload.size() && payload[i] == '}') return true;  // empty object
  for (;;) {
    std::string key, value;
    skip_ws(payload, &i);
    if (!parse_string(payload, &i, &key)) return false;
    skip_ws(payload, &i);
    if (i >= payload.size() || payload[i] != ':') return false;
    ++i;
    skip_ws(payload, &i);
    if (!parse_string(payload, &i, &value)) return false;
    (*out)[key] = value;
    skip_ws(payload, &i);
    if (i >= payload.size()) return false;
    if (payload[i] == ',') {
      ++i;
      continue;
    }
    if (payload[i] == '}') return true;
    return false;
  }
}

std::string get(const std::map<std::string, std::string>& msg,
                const std::string& key) {
  const auto it = msg.find(key);
  return it == msg.end() ? std::string() : it->second;
}

}  // namespace wire

// ---------------------------------------------------------------------------
// Deterministic fault injection.

ChaosSpec ChaosSpec::parse(const std::string& spec) {
  ChaosSpec out;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (part.empty()) continue;
    const auto eq = part.find('=');
    OMX_REQUIRE(eq != std::string::npos,
                "chaos spec entry needs key=value: " + part);
    const std::string key = part.substr(0, eq);
    std::string value = part.substr(eq + 1);
    if (key == "seed") {
      out.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "drop") {
      out.drop = std::strtod(value.c_str(), nullptr);
    } else if (key == "dup") {
      out.dup = std::strtod(value.c_str(), nullptr);
    } else if (key == "sever") {
      out.sever = std::strtod(value.c_str(), nullptr);
    } else if (key == "delay") {
      // "delay=<prob>[:<ms>]"
      const auto colon = value.find(':');
      if (colon != std::string::npos) {
        out.delay_ms = static_cast<std::uint32_t>(
            std::strtoul(value.c_str() + colon + 1, nullptr, 10));
        value.resize(colon);
      }
      out.delay = std::strtod(value.c_str(), nullptr);
    } else {
      throw PreconditionError(
          "unknown chaos spec key '" + key +
          "' (want seed|drop|dup|delay|sever): " + spec);
    }
  }
  const auto unit = [&](double p, const char* what) {
    OMX_REQUIRE(p >= 0.0 && p <= 1.0,
                std::string("chaos ") + what + " must be in [0,1]: " + spec);
  };
  unit(out.drop, "drop");
  unit(out.dup, "dup");
  unit(out.delay, "delay");
  unit(out.sever, "sever");
  return out;
}

namespace {

/// splitmix64 finalizer: adjacent seeds must yield unrelated streams (a
/// bare add-then-or maps seed and seed+1 to the same odd state half the
/// time, which would make "different chaos seeds" silently identical).
std::uint64_t scramble_seed(std::uint64_t seed) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return (z ^ (z >> 31)) | 1;  // xorshift64 needs a nonzero state
}

}  // namespace

FlakyConn::FlakyConn(std::unique_ptr<Conn> inner, const ChaosSpec& spec)
    : inner_(std::move(inner)), spec_(spec), state_(scramble_seed(spec.seed)) {}

double FlakyConn::next_unit() {
  state_ ^= state_ << 13;
  state_ ^= state_ >> 7;
  state_ ^= state_ << 17;
  return static_cast<double>(state_ >> 11) /
         static_cast<double>(1ULL << 53);
}

bool FlakyConn::send(std::string_view payload) {
  const double u = next_unit();
  double edge = spec_.sever;
  if (u < edge) {
    ++severed_;
    inner_->close();
    return false;
  }
  edge += spec_.drop;
  if (u < edge) {
    ++dropped_;
    return true;  // "sent" into the void — the omission adversary's move
  }
  edge += spec_.delay;
  if (u < edge) {
    ++delayed_;
    ::usleep(spec_.delay_ms * 1000);
  }
  edge += spec_.dup;
  if (u < edge) {
    ++duplicated_;
    if (!inner_->send(payload)) return false;
  }
  return inner_->send(payload);
}

RecvStatus FlakyConn::recv(std::string* payload, int timeout_ms) {
  const RecvStatus status = inner_->recv(payload, timeout_ms);
  if (status != RecvStatus::Ok) return status;
  const double u = next_unit();
  double edge = spec_.drop;
  if (u < edge) {
    ++dropped_;
    // The frame evaporates; upstream sees silence, exactly like a lost
    // response, and its timeout/retry machinery takes over.
    return RecvStatus::Timeout;
  }
  edge += spec_.delay;
  if (u < edge) {
    ++delayed_;
    ::usleep(spec_.delay_ms * 1000);
  }
  return RecvStatus::Ok;
}

void FlakyConn::close() { inner_->close(); }
int FlakyConn::fd() const { return inner_->fd(); }
std::uint64_t FlakyConn::corrupt_offset() const {
  return inner_->corrupt_offset();
}
const std::string& FlakyConn::corrupt_detail() const {
  return inner_->corrupt_detail();
}

std::unique_ptr<Conn> dial_with_chaos(const Endpoint& ep,
                                      const std::string& chaos_spec) {
  auto conn = dial(ep);
  if (conn == nullptr || chaos_spec.empty()) return conn;
  // Each dialed connection gets its own stream: mix a per-process dial
  // counter into the seed. Reusing the spec seed verbatim would make every
  // reconnect replay the previous connection's misfortune prefix — a
  // schedule that drops the hello frame would then drop it on every redial,
  // starving the worker forever. The counter is sequential per process, so
  // a whole run is still a pure function of the spec.
  static std::atomic<std::uint64_t> dials{0};
  ChaosSpec spec = ChaosSpec::parse(chaos_spec);
  spec.seed += 0x632be59bd9b4e019ULL * dials.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<FlakyConn>(std::move(conn), spec);
}

}  // namespace omx::farm
