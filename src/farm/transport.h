// Fault-tolerant message transport for the farm (ROADMAP item 3).
//
// The farm's wire layer is deliberately built in the spirit of the paper's
// omission model: every frame a daemon or worker sends can be lost,
// duplicated, delayed, or the connection severed underneath it — and the
// lease protocol on top (farm.h / remote_worker.h) must still converge to a
// merged results file byte-identical to a single-process sweep. This header
// supplies the three layers that make that testable:
//
//   * Endpoint — "unix:<path>" or "tcp:<host>:<port>" (bare host:port is
//     TCP), so the daemon's worker port and the status socket share one
//     address grammar and every protocol above runs unchanged on either
//     backend;
//   * framing — each frame is a 16-byte header (magic "OMXF", little-endian
//     payload length, FNV-1a checksum of the payload) followed by the
//     payload. A torn or bit-flipped frame fails the magic/length/checksum
//     validation and recv() reports Corrupt together with the byte offset
//     of the frame start on that connection — callers surface it (worker:
//     CorruptInputError → exit 5), never act on a wrong payload. A
//     connection that ends mid-frame is Closed, not Corrupt: missing bytes
//     mean a failed link (retry), bad bytes mean a broken peer (refuse);
//   * FlakyConn — a seeded, deterministic fault-injection decorator that
//     drops, duplicates, delays, or severs on a reproducible schedule
//     (xorshift64 over the spec seed), so the network-chaos matrix replays
//     the same misbehavior on every run.
//
// Framed payloads are flat string maps encoded by wire::encode (a minimal
// one-level JSON object). The protocol messages themselves are defined by
// their users: farm.h (daemon side) and remote_worker.h (worker side).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace omx::farm {

// ---------------------------------------------------------------------------
// Endpoints.

struct Endpoint {
  enum class Kind { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;         // unix
  std::string host;         // tcp
  std::uint16_t port = 0;   // tcp (0 = let the kernel pick; see Listener)

  /// Parse "unix:<path>", "tcp:<host>:<port>" or bare "<host>:<port>".
  /// Throws PreconditionError on a malformed spec.
  static Endpoint parse(const std::string& spec);
  std::string to_string() const;
};

// ---------------------------------------------------------------------------
// Frames.

enum class RecvStatus {
  Ok,       // one validated frame returned
  Timeout,  // no complete frame within the deadline (partial data is kept)
  Closed,   // orderly or abrupt EOF (possibly mid-frame: a severed link)
  Corrupt,  // a complete-looking frame failed validation; see corrupt_*()
};

/// One framed, checksummed, bidirectional connection. Concrete connections
/// own an fd (AF_UNIX and TCP share every line of the framing code).
class Conn {
 public:
  virtual ~Conn() = default;

  /// Send one frame (header + payload, single buffered write). Returns
  /// false when the connection is dead; the caller decides whether that
  /// means reconnect (worker) or drop (daemon).
  virtual bool send(std::string_view payload) = 0;

  /// Receive the next frame, waiting up to timeout_ms (0 = only what is
  /// already buffered/readable). On Corrupt, corrupt_offset() is the byte
  /// offset of the offending frame's first byte in this connection's
  /// receive stream and corrupt_detail() says what failed.
  virtual RecvStatus recv(std::string* payload, int timeout_ms) = 0;

  virtual void close() = 0;
  virtual int fd() const = 0;  // for the daemon's poll loop; -1 once closed

  virtual std::uint64_t corrupt_offset() const = 0;
  virtual const std::string& corrupt_detail() const = 0;
};

/// Frame size cap: a corrupted length field must not look like a 4 GiB
/// allocation request. Configs and result lines are tiny; 16 MiB is generous.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Wrap an already-connected fd (socketpair halves in tests, accepted
/// sockets in the daemon) in the framing layer.
std::unique_ptr<Conn> adopt_fd(int fd);

/// Connect to an endpoint. Returns nullptr on failure (connection refused,
/// no listener yet) — dialing is the one operation whose failure is routine.
std::unique_ptr<Conn> dial(const Endpoint& ep);

/// A bound, listening server socket for either endpoint kind.
class Listener {
 public:
  /// Binds and listens. Throws PreconditionError when the address is
  /// unusable. For tcp port 0 the kernel picks; endpoint() reports the
  /// resolved port so callers can publish the real address.
  explicit Listener(const Endpoint& ep);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accept one connection, waiting up to timeout_ms. nullptr on timeout.
  std::unique_ptr<Conn> accept(int timeout_ms);

  int fd() const { return fd_; }
  const Endpoint& endpoint() const { return endpoint_; }

 private:
  int fd_ = -1;
  Endpoint endpoint_;
};

// ---------------------------------------------------------------------------
// Wire codec: flat string-map payloads as one-level JSON objects.

namespace wire {

/// {"k":"v",...} with JSON string escaping; preserves field order.
std::string encode(
    const std::vector<std::pair<std::string, std::string>>& fields);

/// Inverse of encode (accepts any flat all-string JSON object). Returns
/// false on malformed input.
bool decode(const std::string& payload,
            std::map<std::string, std::string>* out);

/// Convenience: out[key] or "" when absent.
std::string get(const std::map<std::string, std::string>& msg,
                const std::string& key);

}  // namespace wire

// ---------------------------------------------------------------------------
// Deterministic fault injection.

/// Parsed from specs like "seed=7,drop=0.2,dup=0.1,delay=0.3:40,sever=0.02":
/// per-frame probabilities (drawn from a seeded xorshift64, so the schedule
/// is a pure function of the spec and the frame sequence) of dropping the
/// frame, sending it twice, sleeping delay_ms before sending, or severing
/// the connection instead of sending. Received frames can be dropped or
/// delayed too (a dropped response surfaces as a timeout upstream, exactly
/// like a lost datagram).
struct ChaosSpec {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double dup = 0.0;
  double delay = 0.0;
  std::uint32_t delay_ms = 20;
  double sever = 0.0;

  bool any() const {
    return drop > 0 || dup > 0 || delay > 0 || sever > 0;
  }
  /// Throws PreconditionError on a malformed spec ("" = all-zero spec).
  static ChaosSpec parse(const std::string& spec);
};

/// The fault-injection decorator: misbehaves deterministically per the
/// spec, in draw order (one xorshift64 stream per connection, consulted
/// once per send and once per receive). Counters let tests assert the
/// schedule actually fired.
class FlakyConn : public Conn {
 public:
  FlakyConn(std::unique_ptr<Conn> inner, const ChaosSpec& spec);

  bool send(std::string_view payload) override;
  RecvStatus recv(std::string* payload, int timeout_ms) override;
  void close() override;
  int fd() const override;
  std::uint64_t corrupt_offset() const override;
  const std::string& corrupt_detail() const override;

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t delayed() const { return delayed_; }
  std::uint64_t severed() const { return severed_; }

 private:
  double next_unit();  // uniform [0,1) from the deterministic stream

  std::unique_ptr<Conn> inner_;
  ChaosSpec spec_;
  std::uint64_t state_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t severed_ = 0;
};

/// dial() + optional FlakyConn wrap when `chaos_spec` is nonempty. Each
/// dial mixes a per-process connection counter into the seed, so a redial
/// gets a fresh (still deterministic) schedule instead of replaying the
/// dead connection's misfortune prefix verbatim — chaos may starve one
/// connection, never the reconnect loop itself.
std::unique_ptr<Conn> dial_with_chaos(const Endpoint& ep,
                                      const std::string& chaos_spec);

}  // namespace omx::farm
