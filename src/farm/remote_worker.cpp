#include "farm/remote_worker.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "farm/shard.h"
#include "farm/test_hooks.h"
#include "support/check.h"

namespace omx::farm {

namespace fs = std::filesystem;

namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-attempt wait for an RPC response before re-sending the request.
/// Short enough that a dropped response costs little, long enough that a
/// delay-chaos'd daemon usually answers in one attempt.
constexpr int kResponseTimeoutMs = 750;

int exit_code_for_verdict(harness::Verdict v) {
  switch (v) {
    case harness::Verdict::Ok:
    case harness::Verdict::RoundCap:
    case harness::Verdict::Timeout:
      return 0;
    case harness::Verdict::Precondition:
      return 2;
    case harness::Verdict::Invariant:
      return 3;
    case harness::Verdict::AdversaryViolation:
      return 4;
  }
  return 3;
}

bool append_line_durably(const std::string& path, const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return false;
  const std::string data = line + "\n";
  const char* p = data.data();
  std::size_t len = data.size();
  while (len > 0) {
    const ssize_t wrote = ::write(fd, p, len);
    if (wrote <= 0) {
      ::close(fd);
      return false;
    }
    p += wrote;
    len -= static_cast<std::size_t>(wrote);
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

[[noreturn]] void throw_corrupt(const Conn& conn, const std::string& where) {
  throw CorruptInputError(where, conn.corrupt_offset(),
                          "transport frame: " + conn.corrupt_detail());
}

}  // namespace

RemoteWorker::RemoteWorker(RemoteWorkerOptions options)
    : options_(std::move(options)),
      endpoint_(Endpoint::parse(options_.endpoint)) {
  OMX_REQUIRE(!options_.dir.empty(), "remote worker needs a state directory");
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  OMX_REQUIRE(!ec, "remote worker: cannot create " + options_.dir + ": " +
                       ec.message());
  if (options_.name.empty()) {
    options_.name = "worker-" + std::to_string(::getpid());
  }
  // The shard line IS the checkpoint; never double-record.
  options_.sweep.checkpoint_path.clear();
}

void RemoteWorker::drop_conn() {
  if (conn_) {
    conn_->close();
    conn_.reset();
  }
}

bool RemoteWorker::ensure_connected() {
  if (conn_) return true;
  std::uint64_t backoff = options_.backoff_base_ms;
  if (!connect_fail_since_) connect_fail_since_ = steady_now_ms();
  for (;;) {
    auto conn = dial_with_chaos(endpoint_, options_.chaos);
    if (conn) {
      // Hello handshake, inline (rpc() would recurse into this function).
      // A chaos-dropped hello or reply falls out at the deadline and the
      // whole dial is retried.
      const std::string rid = std::to_string(++rid_);
      bool helloed = false;
      if (conn->send(wire::encode({{"type", "hello"},
                                   {"rid", rid},
                                   {"name", options_.name}}))) {
        const std::uint64_t deadline = steady_now_ms() + 1000;
        while (steady_now_ms() < deadline) {
          std::string payload;
          const RecvStatus st = conn->recv(&payload, 100);
          if (st == RecvStatus::Corrupt) {
            throw_corrupt(*conn, options_.endpoint);
          }
          if (st == RecvStatus::Closed) break;
          if (st != RecvStatus::Ok) continue;
          std::map<std::string, std::string> msg;
          if (!wire::decode(payload, &msg) || wire::get(msg, "rid") != rid ||
              wire::get(msg, "type") != "helloed") {
            continue;  // stale frame from a previous connection's window
          }
          if (const std::string hb = wire::get(msg, "heartbeat_ms");
              !hb.empty()) {
            heartbeat_ms_ = std::strtoull(hb.c_str(), nullptr, 10);
          }
          if (const std::string retries = wire::get(msg, "retries");
              !retries.empty()) {
            // Match the daemon's in-trial retry ladder so a remote trial
            // produces the byte-identical line a local fork would.
            options_.sweep.max_attempts = static_cast<std::uint32_t>(
                std::strtoul(retries.c_str(), nullptr, 10));
          }
          helloed = true;
          break;
        }
      }
      if (helloed) {
        conn_ = std::move(conn);
        if (connected_once_) ++report_.reconnects;
        connected_once_ = true;
        connect_fail_since_.reset();
        return true;
      }
    }
    if (steady_now_ms() - *connect_fail_since_ >
        options_.reconnect_deadline_ms) {
      connect_fail_since_.reset();
      return false;
    }
    ::usleep(static_cast<useconds_t>(backoff * 1000));
    backoff = std::min(backoff * 2, options_.backoff_cap_ms);
  }
}

bool RemoteWorker::rpc(const Fields& fields,
                       std::map<std::string, std::string>* response) {
  const std::uint64_t start = steady_now_ms();
  for (;;) {
    if (!ensure_connected()) return false;
    const std::string rid = std::to_string(++rid_);
    Fields with_rid = fields;
    with_rid.insert(with_rid.begin() + 1, {"rid", rid});
    if (!conn_->send(wire::encode(with_rid))) {
      drop_conn();
    } else {
      const std::uint64_t deadline = steady_now_ms() + kResponseTimeoutMs;
      for (;;) {
        const std::uint64_t now = steady_now_ms();
        if (now >= deadline) break;  // response lost — re-send the request
        std::string payload;
        const RecvStatus st =
            conn_->recv(&payload, static_cast<int>(deadline - now));
        if (st == RecvStatus::Corrupt) {
          throw_corrupt(*conn_, options_.endpoint);
        }
        if (st == RecvStatus::Closed) {
          drop_conn();
          break;  // severed mid-exchange — reconnect and re-send
        }
        if (st != RecvStatus::Ok) continue;
        std::map<std::string, std::string> msg;
        if (!wire::decode(payload, &msg)) continue;
        // A duplicated or delayed response answers an rid we have already
        // moved past; discard it — this is what keeps a lossy link from
        // desynchronizing the request/response stream.
        if (wire::get(msg, "rid") != rid) continue;
        *response = std::move(msg);
        return true;
      }
    }
    if (steady_now_ms() - start > options_.reconnect_deadline_ms) {
      return false;
    }
  }
}

[[noreturn]] void RemoteWorker::trial_child(const std::string& key,
                                            std::uint32_t epoch,
                                            harness::ExperimentConfig cfg) {
  // Same hooks the local fork path runs, keyed by the lease epoch so
  // "crash on first attempt" means the first lease of the item anywhere.
  maybe_run_trial_chaos_hooks(key, epoch);
  harness::Sweep sweep(options_.sweep);
  cfg.threads = 1;  // farm parallelism is process-level
  const harness::TrialOutcome outcome = sweep.run(cfg);
  const std::string line = harness::checkpoint_line(key, outcome);
  if (!append_line_durably(outbox_path(), line)) {
    std::fprintf(stderr, "remote worker: cannot write %s\n",
                 outbox_path().c_str());
    ::_exit(6);
  }
  ::_exit(exit_code_for_verdict(outcome.verdict));
}

bool RemoteWorker::submit_line(const std::string& key, std::uint32_t epoch,
                               const std::string& line, bool from_spool) {
  Fields fields = {{"type", "result"},
                   {"key", key},
                   {"epoch", std::to_string(epoch)},
                   {"line", line},
                   {"worker", options_.name}};
  // Report capture paths so the daemon's artifacts index can point at this
  // worker's files (they are local to this host; the worker name says
  // where to look).
  if (!options_.sweep.repro_dir.empty()) {
    const std::string stem = options_.sweep.repro_dir + "/" + key;
    std::error_code ec;
    if (fs::exists(stem + ".repro", ec)) fields.push_back({"repro", stem + ".repro"});
    if (fs::exists(stem + ".trace", ec)) fields.push_back({"trace", stem + ".trace"});
  }
  const std::uint64_t start = steady_now_ms();
  for (;;) {
    std::map<std::string, std::string> response;
    if (!rpc(fields, &response)) return false;  // spool keeps the line
    const std::string type = wire::get(response, "type");
    if (type == "ok") {
      spool_drop(line);
      if (from_spool) {
        ++report_.resubmitted;
      } else {
        ++report_.submitted;
      }
      return true;
    }
    if (type == "reject") {
      // The daemon read the line intact (frame checksum passed) and still
      // refused it: re-sending the same bytes cannot help.
      std::fprintf(stderr, "remote worker: daemon rejected result for %s\n",
                   key.c_str());
      spool_drop(line);
      return true;
    }
    // "retry": transient daemon-side trouble (e.g. its shard append
    // failed). Keep the spool copy and re-ask, bounded like a reconnect.
    if (steady_now_ms() - start > options_.reconnect_deadline_ms) {
      return false;
    }
    ::usleep(100 * 1000);
  }
}

void RemoteWorker::spool_drop(const std::string& line) {
  std::ifstream in(spool_path());
  std::vector<std::string> keep;
  std::string existing;
  bool dropped = false;
  while (std::getline(in, existing)) {
    if (!dropped && existing == line) {
      dropped = true;  // drop exactly one copy
      continue;
    }
    keep.push_back(existing);
  }
  in.close();
  const std::string tmp = spool_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    for (const auto& l : keep) out << l << "\n";
    out.flush();
    if (!out) return;  // keep the old spool; a resubmission dedups anyway
  }
  std::error_code ec;
  fs::rename(tmp, spool_path(), ec);
}

bool RemoteWorker::resubmit_spool() {
  // A worker killed mid-append leaves a torn tail; the shard repairer
  // understands this exact format.
  repair_shard(spool_path());
  std::vector<std::string> lines;
  {
    std::ifstream in(spool_path());
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
  }
  for (const auto& line : lines) {
    std::string key;
    harness::TrialOutcome outcome;
    if (!harness::parse_checkpoint_line(line, &key, &outcome)) {
      spool_drop(line);  // repair should have caught this; belt and braces
      continue;
    }
    // Epoch 0: the granting lease is long gone, but result submission is
    // key-based by design — the daemon dedups if the line already landed.
    if (!submit_line(key, 0, line, /*from_spool=*/true)) return false;
  }
  return true;
}

bool RemoteWorker::run_trial(const std::string& key, std::uint32_t epoch,
                             const harness::ExperimentConfig& cfg) {
  ++report_.trials;
  ::unlink(outbox_path().c_str());
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "remote worker: fork failed: %s\n",
                 std::strerror(errno));
    std::map<std::string, std::string> response;
    return rpc({{"type", "fail"},
                {"key", key},
                {"epoch", std::to_string(epoch)}},
               &response);
  }
  if (pid == 0) trial_child(key, epoch, cfg);  // never returns

  std::uint64_t next_heartbeat = steady_now_ms() + heartbeat_ms_;
  int status = 0;
  for (;;) {
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) break;
    if (reaped < 0) {
      status = 0;
      break;
    }
    const std::uint64_t now = steady_now_ms();
    if (now >= next_heartbeat) {
      std::map<std::string, std::string> response;
      if (!rpc({{"type", "heartbeat"},
                {"key", key},
                {"epoch", std::to_string(epoch)}},
               &response)) {
        // Daemon unreachable past the deadline: do not leave an orphan
        // trial running against a farm that no longer exists.
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        return false;
      }
      ++report_.heartbeats;
      if (wire::get(response, "type") == "stale") {
        // The lease was superseded (we were presumed dead and the item
        // re-leased). Stop burning CPU on it; if our trial had already
        // finished, the spool/submit path would have deduped anyway.
        ++report_.stale_leases;
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        return true;
      }
      next_heartbeat = steady_now_ms() + heartbeat_ms_;
    }
    ::usleep(10 * 1000);
  }

  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (code == 0 || code == 2 || code == 3 || code == 4) {
    std::string line;
    {
      std::ifstream in(outbox_path());
      std::getline(in, line);
    }
    std::string parsed_key;
    harness::TrialOutcome outcome;
    if (!line.empty() &&
        harness::parse_checkpoint_line(line, &parsed_key, &outcome) &&
        parsed_key == key) {
      // Durable-before-submit: the spool copy survives any crash between
      // here and the daemon's ack, and the restarted worker resubmits it.
      if (!append_line_durably(spool_path(), line)) {
        std::fprintf(stderr, "remote worker: cannot spool result for %s\n",
                     key.c_str());
        return true;  // lease will expire; the item re-runs elsewhere
      }
      if (crash_after_write_hook_hits(key)) ::_exit(9);
      return submit_line(key, epoch, line, /*from_spool=*/false);
    }
    // Exit said "recorded" but the outbox disagrees — treat as a crash.
  }
  std::map<std::string, std::string> response;
  if (!rpc({{"type", "fail"}, {"key", key}, {"epoch", std::to_string(epoch)}},
           &response)) {
    return false;
  }
  ++report_.failures_reported;
  return true;
}

RemoteWorkerReport RemoteWorker::run() {
  ::signal(SIGPIPE, SIG_IGN);
  if (!resubmit_spool()) return report_;
  for (;;) {
    std::map<std::string, std::string> response;
    if (!rpc({{"type", "next"}}, &response)) break;  // gave up
    const std::string type = wire::get(response, "type");
    if (type == "done") {
      report_.daemon_finished = true;
      break;
    }
    if (type == "idle") {
      std::uint64_t poll_ms = options_.idle_poll_ms;
      if (const std::string p = wire::get(response, "poll_ms"); !p.empty()) {
        poll_ms = std::min<std::uint64_t>(
            std::strtoull(p.c_str(), nullptr, 10), options_.idle_poll_ms);
      }
      ::usleep(static_cast<useconds_t>(std::max<std::uint64_t>(poll_ms, 10) *
                                       1000));
      continue;
    }
    if (type == "lease") {
      const std::string key = wire::get(response, "key");
      const auto epoch = static_cast<std::uint32_t>(std::strtoul(
          wire::get(response, "epoch").c_str(), nullptr, 10));
      harness::ExperimentConfig cfg;
      std::string error;
      if (!harness::parse_config(wire::get(response, "config"), &cfg,
                                 &error)) {
        // The frame checksum passed, so this is a protocol-level surprise
        // (e.g. daemon newer than us). Burn the lease promptly rather than
        // let the watchdog time it out.
        std::fprintf(stderr,
                     "remote worker: cannot parse leased config for %s: %s\n",
                     key.c_str(), error.c_str());
        std::map<std::string, std::string> ignored;
        if (!rpc({{"type", "fail"},
                  {"key", key},
                  {"epoch", std::to_string(epoch)}},
                 &ignored)) {
          break;
        }
        continue;
      }
      if (!run_trial(key, epoch, cfg)) break;
      continue;
    }
    // Unknown response type: ignore and re-ask.
  }
  drop_conn();
  return report_;
}

}  // namespace omx::farm
