// omxfarm: fork-isolated, crash-safe sweep farm (ROADMAP item 3).
//
// The PR 4 sweep runner survives a *trial* failing because the trial runs
// inside an in-process isolation shell. The farm makes the failure domain a
// whole process: every leased work item runs in a fork(2)'d worker, so a
// trial that corrupts memory, SIGSEGVs, or is SIGKILL'd from outside burns
// only its lease — the daemon classifies the worker's fate (the PR 4
// verdict taxonomy exit codes 2/3/4 for recorded model violations, vs. a
// termination signal for a crash) and re-queues crashed items through the
// WorkQueue's backoff/retry policy.
//
// Durability layering (who survives what):
//
//   worker SIGKILL   → its shard holds at most a torn final line; the
//                      lease fails, the item re-runs, shard repair drops
//                      the debris. Merged results are unaffected.
//   worker hang      → the lease watchdog SIGKILLs it; same as above but
//                      classified separately (watchdog_kills).
//   daemon SIGKILL   → workers finish or die orphaned; every completed
//                      trial is already a durable shard line. A re-run
//                      daemon rescans shards, repairs torn tails, marks
//                      recorded items done and runs only the remainder —
//                      the merged output is byte-identical to an
//                      uninterrupted farm's (and, after canonical sort, to
//                      a single-process Sweep of the same grid).
//   corrupt cache    → the artifact cache checksums every entry; a torn or
//                      bit-flipped blob is a miss and the artifact is
//                      rebuilt. Decisions and metrics never change.
//
// While running, the daemon serves newline-delimited requests ("status",
// "results", "artifacts", "follow") over a Unix-domain socket at
// `<dir>/farm.sock`, answering with JSON — any number of clients can poll
// (or, with "follow", stream) a running farm.
//
// Remote workers (FarmOptions::listen nonempty) extend the failure domain
// across the wire: `omxfarm work --connect <endpoint>` processes speak the
// framed, checksummed transport protocol (transport.h) and are leased the
// same config-hash items as local forks. The omission-model discipline:
//
//   message lost      → request/response framing plus the worker's retry
//                       loop re-asks; a lost result resubmits from the
//                       worker's durable spool; a lost heartbeat at worst
//                       expires the lease, which re-queues the item.
//   message duplicated→ every submission is idempotent: the daemon keys
//                       results by config hash and drops the second copy,
//                       so no key ever yields two merged rows.
//   message delayed   → lease epochs (the item's attempt counter) make
//                       stale heartbeats and failure reports inert; stale
//                       *results* are accepted on purpose — deterministic
//                       trials make them byte-identical to fresh ones.
//   connection severed→ the worker reconnects with capped exponential
//                       backoff and resumes its in-flight trial; the
//                       daemon's lease watchdog re-queues items whose
//                       workers stay silent past the deadline.
//   frame corrupted   → the transport checksum rejects it; the daemon
//                       drops the connection (the lease watchdog recovers
//                       the item), the worker exits 5 (CorruptInputError
//                       with the byte offset) rather than act on bad bytes.
//   daemon killed     → durable shard lines survive; a restarted daemon
//                       rescans them while live workers finish in-flight
//                       trials, reconnect, and resubmit — dedup by key
//                       keeps the merge equal to a single-process sweep.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "farm/transport.h"
#include "farm/workqueue.h"
#include "harness/sweep.h"

namespace omx::farm {

struct FarmOptions {
  /// Farm state directory: shards/, merged.jsonl, farm.sock, cache/.
  std::string dir;
  /// Concurrent fork-isolated local workers (0 = remote workers only;
  /// requires a listen endpoint).
  int workers = 4;
  /// Worker/streaming endpoint ("unix:<path>" or "tcp:<host>:<port>",
  /// port 0 = kernel-assigned). Empty = no remote serving. The resolved
  /// endpoint is published to <dir>/endpoint so scripts can find a
  /// port-0 daemon.
  std::string listen;
  /// After the last item settles, keep answering the worker endpoint for
  /// this long so connected workers receive "done" instead of discovering
  /// the daemon's death through their reconnect deadline.
  std::uint64_t shutdown_linger_ms = 500;
  /// Lease watchdog (ms): a worker past this deadline is SIGKILLed and the
  /// lease failed. 0 = none. Distinct from the *cooperative* per-trial
  /// deadline (sweep.trial_deadline_ms), which a healthy engine honors by
  /// recording a timeout verdict; the watchdog is the backstop for a
  /// worker that cannot even do that.
  std::uint64_t watchdog_ms = 0;
  /// Farm-level leases per item (crash/hang retries; 1 = none).
  std::uint32_t max_attempts = 3;
  std::uint64_t backoff_base_ms = 100;
  std::uint64_t backoff_cap_ms = 5000;
  /// Serve status/results over <dir>/farm.sock while running.
  bool serve_socket = true;
  /// Point OMX_ARTIFACT_CACHE at <dir>/cache before forking workers (only
  /// when the variable is not already set), so all workers share one
  /// crash-consistent artifact store.
  bool use_artifact_cache = true;
  /// In-worker trial options (cooperative deadline, transient-verdict seed
  /// retries, repro capture) — the same knobs a single-process Sweep takes,
  /// so a farm and a Sweep given identical options produce identical lines.
  harness::SweepOptions sweep;
};

struct FarmReport {
  std::size_t items = 0;
  std::size_t done = 0;
  std::size_t failed = 0;    // retry budget exhausted (synthetic outcome)
  std::size_t resumed = 0;   // satisfied from shards before any fork
  std::uint64_t releases = 0;  // farm-level retries (leases beyond first)
  std::size_t crashed_workers = 0;   // exits by signal (not watchdog)
  std::size_t watchdog_kills = 0;    // leases reaped by the watchdog
  std::size_t torn_shard_lines = 0;  // debris dropped by repair/merge
  // Remote-transport accounting:
  std::size_t remote_workers_seen = 0;  // distinct hello'd connections
  std::size_t remote_results = 0;       // lines accepted over the wire
  std::size_t duplicate_results = 0;    // resubmissions dropped by key
  std::size_t late_results = 0;         // results for already-settled items
  std::size_t rejected_results = 0;     // unparseable/mismatched lines
  std::size_t remote_failures = 0;      // worker-reported trial crashes
  std::size_t corrupt_frames = 0;       // transport checksum rejections
  /// Worker exit-code histogram (0 ok-recorded, 2/3/4 the PR 4 taxonomy).
  std::map<int, std::uint64_t> exit_codes;
  std::string merged_path;
  bool all_ok() const { return failed == 0; }
};

class Farm {
 public:
  explicit Farm(FarmOptions options);

  /// Queue one sweep cell. Returns false for a duplicate config hash.
  bool add(const harness::ExperimentConfig& cfg);

  /// Run the farm to completion: resume from shards, fork/lease/reap until
  /// every item settles, then publish <dir>/merged.jsonl. Blocking.
  FarmReport run();

  /// One-line JSON status snapshot (the socket's "status" answer).
  std::string status_json() const;

  /// The worker-protocol request handler, transport-independent: one
  /// decoded request message in, one response message out (empty = no
  /// response; the connection state records side effects like follow
  /// subscription). Public so protocol tests can drive lease/heartbeat/
  /// result semantics without sockets; the event loop calls it per frame.
  struct RemotePeer {
    std::string name;     // from hello
    bool follow = false;  // subscribed to the merged-line stream
    std::set<std::string> sent_keys;  // follow: lines already pushed
  };
  std::string handle_request(const std::map<std::string, std::string>& msg,
                             RemotePeer* peer);

  static std::string socket_path_for(const std::string& dir);
  /// Path of the file the daemon publishes its resolved listen endpoint to.
  static std::string endpoint_path_for(const std::string& dir);

  /// Client side: send `request` ("status", "results", "artifacts") to the
  /// farm serving <dir>/farm.sock and return the raw response. Throws
  /// PreconditionError if no daemon is listening there.
  static std::string query(const std::string& dir, const std::string& request);

 private:
  struct Slot {
    std::int64_t pid = -1;          // -1 = free
    std::size_t item_index = 0;
  };
  struct Remote {
    std::unique_ptr<Conn> conn;
    RemotePeer peer;
  };
  struct RawFollower {
    int fd = -1;
    std::set<std::string> sent_keys;
  };

  std::string shard_dir() const { return options_.dir + "/shards"; }
  std::string shard_path(int slot) const;
  std::string daemon_shard_path() const;
  std::string remote_shard_path() const;
  std::string merged_path() const { return options_.dir + "/merged.jsonl"; }
  std::string artifacts_path() const {
    return options_.dir + "/merged.artifacts.json";
  }

  void resume_from_shards();
  void spawn_ready_workers();
  [[noreturn]] void worker_main(const WorkItem& item, int slot);
  void reap_finished_workers();
  void kill_expired_leases();
  void record_exhausted(const WorkItem& item, bool hung);
  int open_socket();
  void pump_network(int timeout_ms);
  void serve_status_client(int listener);
  void pump_remote(Remote* remote);
  void push_follow_lines(bool final_push);
  std::string artifacts_json() const;
  void write_artifacts_index();
  bool accept_result(const std::string& key, const std::string& line,
                     const std::map<std::string, std::string>& msg);
  void note_artifacts(const std::string& key,
                      const std::map<std::string, std::string>& msg);

  FarmOptions options_;
  WorkQueue queue_;
  std::vector<Slot> slots_;
  FarmReport report_;
  int status_listener_fd_ = -1;  // <dir>/farm.sock listener (raw protocol)
  std::unique_ptr<Listener> worker_listener_;
  std::vector<Remote> remotes_;
  std::vector<RawFollower> raw_followers_;
  bool durable_dirty_ = false;  // new lines since the last follow push
  /// key → {repro path, trace path, worker name}: the artifacts index,
  /// built from local capture paths and remote workers' reports.
  std::map<std::string, std::map<std::string, std::string>> artifacts_;
};

}  // namespace omx::farm
