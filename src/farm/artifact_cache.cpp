#include "farm/artifact_cache.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <vector>

#include "support/check.h"

namespace omx::farm {

namespace {

constexpr char kMagic[8] = {'O', 'M', 'X', 'A', 'R', 'T', '1', '\0'};
constexpr std::uint32_t kVersion = 1;

/// Fixed-size entry header; the payload follows immediately.
struct EntryHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t payload_size;
  std::uint64_t checksum;  // FNV-1a over the payload bytes
};
static_assert(sizeof(EntryHeader) == 32, "on-disk header layout");

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

Blob::Blob(Blob&& other) noexcept
    : map_(other.map_),
      map_size_(other.map_size_),
      payload_(other.payload_),
      payload_size_(other.payload_size_) {
  other.map_ = nullptr;
  other.map_size_ = 0;
  other.payload_ = nullptr;
  other.payload_size_ = 0;
}

Blob& Blob::operator=(Blob&& other) noexcept {
  if (this != &other) {
    this->~Blob();
    new (this) Blob(std::move(other));
  }
  return *this;
}

Blob::~Blob() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

ArtifactCache::ArtifactCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  OMX_REQUIRE(!ec, "artifact cache: cannot create directory " + dir_ + ": " +
                       ec.message());
}

std::string ArtifactCache::entry_path(const std::string& key) const {
  return dir_ + "/" + key + ".art";
}

bool ArtifactCache::put(const std::string& key,
                        std::span<const std::uint8_t> payload) {
  EntryHeader h{};
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.version = kVersion;
  h.payload_size = payload.size();
  h.checksum = fnv1a(payload);

  const std::string final_path = entry_path(key);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  FdCloser fd{::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)};
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "artifact cache: %s %s: %s\n", what,
                 tmp_path.c_str(), std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return false;
  };
  if (fd.fd < 0) return fail("cannot create");

  const auto write_all = [&](const void* p, std::size_t len) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    while (len > 0) {
      const ssize_t wrote = ::write(fd.fd, bytes, len);
      if (wrote <= 0) return false;
      bytes += wrote;
      len -= static_cast<std::size_t>(wrote);
    }
    return true;
  };
  if (!write_all(&h, sizeof h) || !write_all(payload.data(), payload.size()))
    return fail("cannot write");
  // fsync before rename: otherwise the rename can become durable before the
  // data and a power cut publishes a hole-filled entry. (The checksum would
  // still catch it, but "detected corruption" is strictly worse than "no
  // corruption".)
  if (::fsync(fd.fd) != 0) return fail("cannot fsync");
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0)
    return fail("cannot publish");
  evict_to_cap();
  return true;
}

std::size_t ArtifactCache::evict_to_cap() {
  if (max_bytes_ == 0) return 0;
  struct Candidate {
    std::string path;
    std::uint64_t size;
    struct timespec atime;
  };
  std::vector<Candidate> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& file : std::filesystem::directory_iterator(dir_, ec)) {
    if (!file.is_regular_file() || file.path().extension() != ".art") continue;
    struct stat st{};
    if (::stat(file.path().c_str(), &st) != 0) continue;
    entries.push_back(Candidate{file.path().string(),
                                static_cast<std::uint64_t>(st.st_size),
                                st.st_atim});
    total += static_cast<std::uint64_t>(st.st_size);
  }
  if (total <= max_bytes_) return 0;
  // Oldest atime first = least recently used: get() bumps atime on every
  // hit, so the ordering tracks real use even on relatime/noatime mounts.
  std::sort(entries.begin(), entries.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.atime.tv_sec != b.atime.tv_sec)
                return a.atime.tv_sec < b.atime.tv_sec;
              return a.atime.tv_nsec < b.atime.tv_nsec;
            });
  std::size_t evicted = 0;
  for (const Candidate& entry : entries) {
    if (total <= max_bytes_) break;
    // unlink, not truncate: a concurrent reader that already mmap'd the
    // entry keeps its mapping, and one that loses the race gets ENOENT —
    // a plain miss. A torn entry meets its checksum check first either way.
    if (::unlink(entry.path.c_str()) != 0) continue;
    total -= entry.size;
    ++evictions_;
    ++evicted;
  }
  return evicted;
}

std::optional<Blob> ArtifactCache::get(const std::string& key) {
  const std::string path = entry_path(key);
  FdCloser fd{::open(path.c_str(), O_RDONLY)};
  if (fd.fd < 0) {
    ++misses_;
    return std::nullopt;
  }
  struct stat st{};
  const auto corrupt_miss = [&](const char* why) -> std::optional<Blob> {
    std::fprintf(stderr,
                 "artifact cache: %s: %s — treating as a miss and "
                 "removing the entry\n",
                 path.c_str(), why);
    ::unlink(path.c_str());
    ++corrupt_;
    ++misses_;
    return std::nullopt;
  };
  if (::fstat(fd.fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < sizeof(EntryHeader)) {
    return corrupt_miss("too short to hold an entry header");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
  if (map == MAP_FAILED) {
    ++misses_;
    return std::nullopt;
  }
  Blob blob;
  blob.map_ = map;
  blob.map_size_ = size;
  const auto* h = static_cast<const EntryHeader*>(map);
  if (std::memcmp(h->magic, kMagic, sizeof kMagic) != 0)
    return corrupt_miss("bad magic");
  if (h->version != kVersion) return corrupt_miss("unknown format version");
  if (h->payload_size != size - sizeof(EntryHeader))
    return corrupt_miss("payload size disagrees with file size (torn write)");
  blob.payload_ = static_cast<const std::uint8_t*>(map) + sizeof(EntryHeader);
  blob.payload_size_ = static_cast<std::size_t>(h->payload_size);
  if (fnv1a(blob.bytes()) != h->checksum)
    return corrupt_miss("payload checksum mismatch");
  // Bump atime explicitly: the LRU eviction order must reflect real hits,
  // and relatime (the default on most mounts) only updates atime once a
  // day — an explicit utimensat makes every hit count.
  const struct timespec times[2] = {{0, UTIME_NOW}, {0, UTIME_OMIT}};
  (void)::utimensat(AT_FDCWD, path.c_str(), times, 0);
  ++hits_;
  return blob;
}

bool ArtifactCache::corrupt_entry_for_test(const std::string& key) {
  const std::string path = entry_path(key);
  FdCloser fd{::open(path.c_str(), O_RDWR)};
  if (fd.fd < 0) return false;
  std::uint8_t byte = 0;
  if (::pread(fd.fd, &byte, 1, sizeof(EntryHeader)) != 1) return false;
  byte ^= 0xFF;
  return ::pwrite(fd.fd, &byte, 1, sizeof(EntryHeader)) == 1;
}

ArtifactCache* ArtifactCache::process_cache() {
  static std::once_flag once;
  static std::unique_ptr<ArtifactCache> cache;
  std::call_once(once, [] {
    const char* dir = std::getenv("OMX_ARTIFACT_CACHE");
    if (dir == nullptr || dir[0] == '\0') return;
    std::uint64_t max_bytes = 0;
    if (const char* cap = std::getenv("OMX_ARTIFACT_CACHE_MAX_MB")) {
      const long long mb = std::strtoll(cap, nullptr, 10);
      if (mb > 0) max_bytes = static_cast<std::uint64_t>(mb) * 1024 * 1024;
    }
    try {
      cache = std::make_unique<ArtifactCache>(dir, max_bytes);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "artifact cache: disabled: %s\n", e.what());
    }
  });
  return cache.get();
}

}  // namespace omx::farm
