#include "farm/shard.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness/sweep.h"
#include "support/check.h"

namespace omx::farm {

namespace fs = std::filesystem;

namespace {

/// Feed every line of one shard into the scan.
void scan_file(const fs::path& path, ShardScan* scan) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    std::string key;
    harness::TrialOutcome outcome;
    if (!harness::parse_checkpoint_line(line, &key, &outcome)) {
      ++scan->torn_lines;
      continue;
    }
    const auto [it, inserted] = scan->lines.emplace(key, line);
    if (!inserted) {
      ++scan->duplicate_keys;
      // Deterministic winner (duplicates are identical for a deterministic
      // engine; smallest-line keeps the merge canonical even if not).
      if (line < it->second) it->second = line;
    }
  }
}

bool is_shard(const fs::directory_entry& e) {
  return e.is_regular_file() && e.path().extension() == ".jsonl";
}

}  // namespace

ShardScan scan_shards(const std::string& shard_dir) {
  ShardScan scan;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(shard_dir, ec)) {
    if (is_shard(entry)) scan_file(entry.path(), &scan);
  }
  return scan;
}

std::size_t repair_shard(const std::string& shard_path) {
  std::ifstream in(shard_path, std::ios::binary);
  if (!in) return 0;
  std::string kept;
  std::size_t dropped = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string key;
    harness::TrialOutcome outcome;
    if (harness::parse_checkpoint_line(line, &key, &outcome)) {
      kept += line;
      kept += '\n';
    } else {
      ++dropped;
    }
  }
  in.close();
  if (dropped == 0) return 0;
  const std::string tmp = shard_path + ".repair";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << kept;
    out.flush();
    OMX_CHECK(static_cast<bool>(out), "shard repair: cannot write " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, shard_path, ec);
  OMX_CHECK(!ec, "shard repair: cannot publish " + shard_path + ": " +
                     ec.message());
  std::fprintf(stderr,
               "farm: shard %s: dropped %zu torn line(s) left by a killed "
               "worker — the affected trial(s) re-run\n",
               shard_path.c_str(), dropped);
  return dropped;
}

ShardScan merge_shards(const std::string& shard_dir,
                       const std::string& out_path) {
  ShardScan scan = scan_shards(shard_dir);
  std::string merged;
  for (const auto& [key, line] : scan.lines) {
    merged += line;
    merged += '\n';
  }
  const std::string tmp = out_path + ".tmp";
  {
    // write(2) + fsync rather than ofstream: the merged file is the farm's
    // final product, so its durability must not depend on libc flush
    // timing relative to the rename.
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    OMX_CHECK(fd >= 0, "merge: cannot create " + tmp);
    const char* p = merged.data();
    std::size_t left = merged.size();
    bool ok = true;
    while (left > 0 && ok) {
      const ssize_t wrote = ::write(fd, p, left);
      ok = wrote > 0;
      if (ok) {
        p += wrote;
        left -= static_cast<std::size_t>(wrote);
      }
    }
    ok = ok && ::fsync(fd) == 0;
    ::close(fd);
    OMX_CHECK(ok, "merge: cannot write " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, out_path, ec);
  OMX_CHECK(!ec, "merge: cannot publish " + out_path + ": " + ec.message());
  return scan;
}

}  // namespace omx::farm
