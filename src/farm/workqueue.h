// Leased work queue for the sweep farm.
//
// A work item is one sweep cell (a full ExperimentConfig), keyed by its
// canonical config hash. The queue owns the retry/backoff policy that makes
// the farm's failure story stronger than the in-process verdict taxonomy:
//
//   * acquire() leases the earliest eligible pending item to a worker slot;
//     a lease carries a watchdog deadline (now + watchdog_ms);
//   * complete() retires a leased item (its result line is already durable
//     in a shard before the daemon calls this);
//   * fail() returns a leased item to the queue — a crashed (signaled) or
//     hung (watchdog-killed) worker burns only its lease. Each failure
//     increments the item's attempt count; the item becomes eligible again
//     after an exponential backoff (backoff_base_ms << (attempts-1), capped)
//     so a deterministic crasher cannot hot-loop the farm. Once the retry
//     budget (max_attempts) is exhausted the item is marked Failed and the
//     caller records a synthetic outcome for it;
//   * expired() lists leases whose watchdog deadline has passed so the
//     daemon can SIGKILL the hung worker and fail() the lease. Remote
//     leases (no pid to kill) are failed directly: a silent worker's item
//     re-queues and its late result, if it ever arrives, deduplicates.
//
// Lease epochs: an item's attempt counter doubles as a monotonic lease
// epoch. Every message a remote worker sends about a lease (heartbeat,
// trial-failure report) carries the epoch it was granted; renew() and the
// daemon's handlers compare it against the current attempts so a message
// from a superseded lease — delayed, duplicated, or from a worker that was
// presumed dead and re-leased — can never extend or fail the *current*
// lease. Result submission is deliberately NOT epoch-gated: the engine is
// deterministic, so a stale lease's result line is byte-identical to the
// one the current lease would produce, and accepting it early just saves
// work (the current lease's own submission then deduplicates).
//
// Re-runs keep the item's original config (and therefore its seed): the
// engine is deterministic, so a retried trial converges to exactly the line
// a single-process sweep would have produced — byte-identical merges. The
// *seed-perturbed* retry ladder for transient verdicts (timeout/round_cap)
// lives inside the worker's Sweep shell, same as single-process runs.
//
// Time is injected (a now-milliseconds function) so lease expiry and
// backoff are unit-testable without sleeping. The queue is single-owner
// (the daemon's event loop); it is not thread-safe and does not need to be.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace omx::farm {

enum class ItemState {
  Pending,   // waiting (possibly in backoff) for a worker slot
  Leased,    // running in a worker; lease carries a watchdog deadline
  Done,      // result line durable in a shard
  Failed,    // retry budget exhausted; synthetic outcome recorded
};

struct WorkItem {
  std::string key;  // canonical config hash (16 hex digits)
  harness::ExperimentConfig config;
  ItemState state = ItemState::Pending;
  std::uint32_t attempts = 0;        // leases granted so far
  std::uint64_t eligible_at_ms = 0;  // backoff gate (0 = immediately)
  // Lease bookkeeping (valid while state == Leased):
  int worker_slot = -1;
  std::int64_t worker_pid = -1;
  std::uint64_t lease_deadline_ms = 0;
  bool watchdog_fired = false;  // this lease was killed by the watchdog
};

struct WorkQueueOptions {
  /// Lease watchdog: a worker that has not finished within this many ms is
  /// SIGKILLed and its lease failed. 0 = no watchdog.
  std::uint64_t watchdog_ms = 0;
  /// Total leases per item (1 = no farm-level retry).
  std::uint32_t max_attempts = 3;
  /// First retry waits this long; doubles per further attempt.
  std::uint64_t backoff_base_ms = 100;
  /// Backoff ceiling.
  std::uint64_t backoff_cap_ms = 5000;
};

class WorkQueue {
 public:
  using Clock = std::function<std::uint64_t()>;  // monotonic ms

  WorkQueue(WorkQueueOptions options, Clock now);

  /// Add a new pending item. Duplicate keys are rejected (returns false) —
  /// the grid expansion must not double-run a cell.
  bool add(std::string key, harness::ExperimentConfig config);

  /// Mark a key done without running it (resume: its line was found in a
  /// shard). Returns false if the key is unknown.
  bool mark_done(const std::string& key);

  /// Lease the earliest eligible pending item to `worker_slot`, or nullopt
  /// if none is eligible right now. The item's attempt count is
  /// incremented; the lease deadline is now + watchdog_ms.
  std::optional<std::size_t> acquire(int worker_slot, std::int64_t pid);

  /// Record the worker pid a lease landed in (the daemon only learns the
  /// pid after acquire(), once fork() returns).
  void set_lease_pid(std::size_t index, std::int64_t pid) {
    items_.at(index).worker_pid = pid;
  }

  /// Retire a leased item whose result is durable.
  void complete(std::size_t index);

  /// Fail the current lease (worker crashed or was watchdog-killed).
  /// Returns true if the item was re-queued (with backoff), false if its
  /// retry budget is exhausted and it is now Failed.
  bool fail(std::size_t index);

  /// Index of the item with this key, or nullopt if unknown.
  std::optional<std::size_t> find(const std::string& key) const;

  /// Heartbeat: push the lease deadline out to now + watchdog_ms, but only
  /// when the item is still leased under the same epoch (attempts count) —
  /// a heartbeat from a superseded lease must not keep the current one
  /// alive. Returns false for a stale epoch or a non-leased item.
  bool renew(std::size_t index, std::uint32_t epoch);

  /// Indices of leased items whose watchdog deadline has passed (marks
  /// them watchdog_fired so the daemon kills each hung worker once).
  std::vector<std::size_t> expired();

  /// Milliseconds until the next item becomes eligible or the next lease
  /// expires (for the daemon's poll timeout); nullopt if nothing is timed.
  std::optional<std::uint64_t> next_deadline_in() const;

  bool all_settled() const;  // every item Done or Failed
  std::size_t size() const { return items_.size(); }
  const WorkItem& item(std::size_t index) const { return items_[index]; }
  std::size_t count(ItemState s) const;
  /// Total farm-level re-leases (attempts beyond each item's first).
  std::uint64_t retries() const { return retries_; }

 private:
  WorkQueueOptions options_;
  Clock now_;
  std::vector<WorkItem> items_;
  std::vector<std::string> keys_;  // insertion order, for duplicate checks
  std::uint64_t retries_ = 0;
};

}  // namespace omx::farm
