// Per-worker JSONL result shards and the canonical merge.
//
// Every farm worker appends finished-trial lines (harness::checkpoint_line
// format — the same record a single-process Sweep checkpoints) to its own
// shard file `<shards>/worker-<slot>.jsonl`, one write(2) per line, then
// exits. The daemon never writes a worker's shard; the only multi-writer
// file in the farm is therefore *no* file, which is most of the
// crash-safety argument:
//
//   * a SIGKILL'd worker leaves at most one torn final line in its own
//     shard — scan_shards() drops it (the item's lease burns and it
//     re-runs), and repair_shard() rewrites the file to its parseable
//     prefix before the slot is reused, so later appends cannot
//     concatenate onto the debris;
//   * a SIGKILL'd daemon loses nothing: every completed trial is already a
//     durable shard line, and a restarted daemon rebuilds its done-set by
//     rescanning the shards — resume is byte-identical because the lines
//     are, and the deterministic engine re-produces any line that was
//     mid-write at kill time;
//   * merge_shards() publishes `merged.jsonl` — all lines, deduplicated by
//     config-hash key and sorted canonically (by key), written
//     to-temp + fsync + rename. Duplicates can only arise from a worker
//     killed between its write and its exit; the engine being
//     deterministic, such lines are identical, and the merge keeps the
//     lexicographically smallest so even a pathological divergence merges
//     deterministically.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace omx::farm {

struct ShardScan {
  /// key → full JSONL line, deduplicated, in canonical (key) order.
  std::map<std::string, std::string> lines;
  std::size_t torn_lines = 0;       // unparseable lines dropped
  std::size_t duplicate_keys = 0;   // extra occurrences collapsed
};

/// Parse every `*.jsonl` file under `shard_dir` (missing dir = empty scan).
ShardScan scan_shards(const std::string& shard_dir);

/// Rewrite one shard file keeping only its parseable lines (atomic
/// temp + rename). No-op if the file is missing or already clean. Returns
/// the number of lines dropped.
std::size_t repair_shard(const std::string& shard_path);

/// Merge all shards into `out_path` (canonical order, deduplicated,
/// temp + fsync + rename). Throws InvariantError on I/O failure — a merge
/// that silently vanished would void the farm's contract.
ShardScan merge_shards(const std::string& shard_dir,
                       const std::string& out_path);

}  // namespace omx::farm
