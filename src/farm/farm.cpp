#include "farm/farm.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "farm/shard.h"
#include "farm/test_hooks.h"
#include "support/check.h"

namespace omx::farm {

namespace fs = std::filesystem;

namespace {

/// Lease slot id for items held by remote workers (local forks use their
/// slot index >= 0).
constexpr int kRemoteSlot = -2;

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int exit_code_for_verdict(harness::Verdict v) {
  switch (v) {
    case harness::Verdict::Ok:
    case harness::Verdict::RoundCap:
    case harness::Verdict::Timeout:
      return 0;  // recorded, possibly imperfect — but the line is durable
    case harness::Verdict::Precondition:
      return 2;
    case harness::Verdict::Invariant:
      return 3;
    case harness::Verdict::AdversaryViolation:
      return 4;
  }
  return 3;
}

bool write_all_fd(int fd, const char* p, std::size_t len) {
  while (len > 0) {
    const ssize_t wrote = ::write(fd, p, len);
    if (wrote <= 0) return false;
    p += wrote;
    len -= static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Append one line + fsync: the record is durable before the caller
/// advances its state machine.
bool append_line_durably(const std::string& path, const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return false;
  const std::string data = line + "\n";
  const bool ok = write_all_fd(fd, data.data(), data.size()) &&
                  ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Publish small metadata files (the resolved endpoint, the artifacts
/// index) atomically: temp + rename, so a reader never sees a torn file.
bool publish_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  return !ec;
}

std::string json_escape_min(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Farm::Farm(FarmOptions options)
    : options_(std::move(options)),
      queue_(WorkQueueOptions{options_.watchdog_ms, options_.max_attempts,
                              options_.backoff_base_ms,
                              options_.backoff_cap_ms},
             steady_now_ms) {
  OMX_REQUIRE(!options_.dir.empty(), "farm needs a state directory");
  OMX_REQUIRE(options_.workers >= 1 || !options_.listen.empty(),
              "farm needs local workers or a listen endpoint");
  OMX_REQUIRE(options_.workers >= 0, "farm worker count cannot be negative");
  std::error_code ec;
  fs::create_directories(shard_dir(), ec);
  OMX_REQUIRE(!ec, "farm: cannot create " + shard_dir() + ": " + ec.message());
  // Workers never checkpoint on their own: the shard line IS the
  // checkpoint, written exactly once per completed trial.
  options_.sweep.checkpoint_path.clear();
  if (options_.use_artifact_cache &&
      std::getenv("OMX_ARTIFACT_CACHE") == nullptr) {
    ::setenv("OMX_ARTIFACT_CACHE", (options_.dir + "/cache").c_str(), 0);
  }
  slots_.resize(static_cast<std::size_t>(options_.workers));
}

bool Farm::add(const harness::ExperimentConfig& cfg) {
  // Fold the sweep-level trial deadline into the config before hashing,
  // exactly as Sweep::run does: the item's key must equal the key a
  // single-process `omxsim --deadline-ms ... --checkpoint` sweep records,
  // or the merged output stops matching the reference byte for byte.
  harness::ExperimentConfig keyed = cfg;
  if (options_.sweep.trial_deadline_ms != 0) {
    keyed.deadline_ms = options_.sweep.trial_deadline_ms;
  }
  const bool added = queue_.add(harness::config_key(keyed), keyed);
  if (added) ++report_.items;
  return added;
}

std::string Farm::shard_path(int slot) const {
  return shard_dir() + "/worker-" + std::to_string(slot) + ".jsonl";
}

std::string Farm::daemon_shard_path() const {
  return shard_dir() + "/daemon.jsonl";
}

std::string Farm::remote_shard_path() const {
  return shard_dir() + "/remote.jsonl";
}

std::string Farm::socket_path_for(const std::string& dir) {
  return dir + "/farm.sock";
}

std::string Farm::endpoint_path_for(const std::string& dir) {
  return dir + "/endpoint";
}

void Farm::resume_from_shards() {
  // Repair first: a shard whose tail was torn by a killed worker must not
  // receive appends after the debris, or the next line would be corrupted.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(shard_dir(), ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
      report_.torn_shard_lines += repair_shard(entry.path().string());
    }
  }
  const ShardScan scan = scan_shards(shard_dir());
  for (const auto& [key, line] : scan.lines) {
    if (queue_.mark_done(key)) ++report_.resumed;
  }
  if (!scan.lines.empty()) durable_dirty_ = true;
}

[[noreturn]] void Farm::worker_main(const WorkItem& item, int slot) {
  // Keep the fork narrow: run the trial, make its line durable, exit with
  // the verdict-taxonomy code. _exit (not exit) — the daemon's atexit
  // state is not ours to run.
  maybe_run_trial_chaos_hooks(item.key, item.attempts);
  harness::Sweep sweep(options_.sweep);
  harness::ExperimentConfig cfg = item.config;
  // Worker lanes off inside workers: farm parallelism is process-level,
  // and the engine is bit-identical at every lane count anyway.
  cfg.threads = 1;
  const harness::TrialOutcome outcome = sweep.run(cfg);
  const std::string line = harness::checkpoint_line(item.key, outcome);
  if (!append_line_durably(shard_path(slot), line)) {
    std::fprintf(stderr, "farm worker: cannot append to %s\n",
                 shard_path(slot).c_str());
    ::_exit(6);  // undurable result — the daemon re-leases the item
  }
  ::_exit(exit_code_for_verdict(outcome.verdict));
}

void Farm::spawn_ready_workers() {
  for (int slot = 0; slot < options_.workers; ++slot) {
    if (slots_[static_cast<std::size_t>(slot)].pid != -1) continue;
    const auto index = queue_.acquire(slot, /*pid=*/-1);
    if (!index) return;  // nothing eligible right now
    std::fflush(nullptr);  // no duplicated stdio buffers in the child
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "farm: fork failed: %s\n", std::strerror(errno));
      queue_.fail(*index);
      return;
    }
    if (pid == 0) {
      worker_main(queue_.item(*index), slot);  // never returns
    }
    queue_.set_lease_pid(*index, pid);
    slots_[static_cast<std::size_t>(slot)] = Slot{pid, *index};
  }
}

void Farm::record_exhausted(const WorkItem& item, bool hung) {
  harness::TrialOutcome outcome;
  outcome.verdict =
      hung ? harness::Verdict::Timeout : harness::Verdict::Invariant;
  outcome.attempts = item.attempts;
  outcome.seed_used = item.config.seed;
  outcome.error = hung ? "farm: worker hung past the lease watchdog on every "
                         "attempt (retry budget exhausted)"
                       : "farm: worker crashed on every attempt (retry "
                         "budget exhausted)";
  // The synthetic line keeps the merged results total: every queued key
  // appears exactly once even when its trial never managed to record
  // itself. daemon.jsonl sits beside the worker shards so the merge picks
  // it up like any other.
  if (!append_line_durably(daemon_shard_path(),
                           harness::checkpoint_line(item.key, outcome))) {
    std::fprintf(stderr, "farm: cannot record exhausted item %s\n",
                 item.key.c_str());
  }
  ++report_.failed;
  durable_dirty_ = true;
}

void Farm::reap_finished_workers() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) return;
    // Find the slot this pid was leased to.
    std::size_t slot = slots_.size();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].pid == pid) slot = s;
    }
    if (slot == slots_.size()) continue;  // not a worker (should not happen)
    const std::size_t index = slots_[slot].item_index;
    slots_[slot] = Slot{};
    const WorkItem& item = queue_.item(index);

    if (item.state == ItemState::Done) {
      // The item was completed by a remote submission while this fork was
      // still running (watchdog expiry + re-lease, then the race resolved
      // both ways). The fork's own shard line, if it got that far, is
      // byte-identical and deduplicates in the merge.
      if (WIFEXITED(status)) ++report_.exit_codes[WEXITSTATUS(status)];
      ++report_.duplicate_results;
      continue;
    }
    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      ++report_.exit_codes[code];
      if (code == 0 || code == 2 || code == 3 || code == 4) {
        // Recorded outcome (the taxonomy codes are *recorded* model
        // violations — deterministic, so a re-lease would just re-fail).
        queue_.complete(index);
        ++report_.done;
        durable_dirty_ = true;
        continue;
      }
      // Any other exit (e.g. 6 = shard append failed) is an unrecorded
      // trial: treat like a crash.
    }
    const bool hung = item.watchdog_fired;
    if (WIFSIGNALED(status) || WIFEXITED(status)) {
      if (hung) {
        ++report_.watchdog_kills;
      } else {
        ++report_.crashed_workers;
      }
      // The dead worker may have torn its shard tail mid-write; repair
      // before the slot is reused so later appends start on a line
      // boundary.
      report_.torn_shard_lines +=
          repair_shard(shard_path(static_cast<int>(slot)));
      if (item.state == ItemState::Leased && !queue_.fail(index)) {
        record_exhausted(item, hung);
      }
    }
  }
}

void Farm::kill_expired_leases() {
  for (const std::size_t index : queue_.expired()) {
    bool held_by_local_fork = false;
    for (const auto& slot : slots_) {
      if (slot.pid != -1 && slot.item_index == index) {
        ::kill(static_cast<pid_t>(slot.pid), SIGKILL);
        held_by_local_fork = true;
      }
    }
    if (!held_by_local_fork) {
      // A remote worker went silent past the watchdog (no heartbeat): there
      // is no process to kill, so burn the lease directly. If the worker is
      // merely partitioned and eventually submits, the result deduplicates.
      ++report_.watchdog_kills;
      const WorkItem item = queue_.item(index);
      if (!queue_.fail(index)) record_exhausted(item, true);
    }
  }
}

std::string Farm::status_json() const {
  std::ostringstream os;
  os << "{\"items\":" << queue_.size()
     << ",\"pending\":" << queue_.count(ItemState::Pending)
     << ",\"leased\":" << queue_.count(ItemState::Leased)
     << ",\"done\":" << queue_.count(ItemState::Done)
     << ",\"failed\":" << queue_.count(ItemState::Failed)
     << ",\"resumed\":" << report_.resumed
     << ",\"releases\":" << queue_.retries()
     << ",\"workers\":" << options_.workers
     << ",\"crashed_workers\":" << report_.crashed_workers
     << ",\"watchdog_kills\":" << report_.watchdog_kills
     << ",\"remote_workers\":" << report_.remote_workers_seen
     << ",\"remote_results\":" << report_.remote_results
     << ",\"duplicate_results\":" << report_.duplicate_results
     << ",\"listen\":\""
     << (worker_listener_ ? worker_listener_->endpoint().to_string() : "")
     << "\"}";
  return os.str();
}

// ---------------------------------------------------------------------------
// The worker protocol (transport-independent request handler).

void Farm::note_artifacts(const std::string& key,
                          const std::map<std::string, std::string>& msg) {
  const std::string repro = wire::get(msg, "repro");
  const std::string trace = wire::get(msg, "trace");
  if (repro.empty() && trace.empty()) return;
  auto& entry = artifacts_[key];
  if (!repro.empty()) entry["repro"] = repro;
  if (!trace.empty()) entry["trace"] = trace;
  const std::string worker = wire::get(msg, "worker");
  if (!worker.empty()) entry["worker"] = worker;
}

bool Farm::accept_result(const std::string& key, const std::string& line,
                         const std::map<std::string, std::string>& msg) {
  const auto index = queue_.find(key);
  if (!index) {
    // Not an item of this grid (e.g. a worker outliving a daemon restart
    // with a narrower grid). Ack so the worker clears its spool; record
    // nothing — an unknown key must never grow the merge.
    ++report_.late_results;
    return true;
  }
  const ItemState state = queue_.item(*index).state;
  if (state == ItemState::Done) {
    ++report_.duplicate_results;  // idempotent resubmission: drop, ack
    return true;
  }
  if (state == ItemState::Failed) {
    // The daemon already recorded a synthetic outcome for this key; a late
    // real result would make the merge nondeterministic (two different
    // lines for one key), so the synthetic row wins and the late one is
    // dropped. Deterministically one row per key, always.
    ++report_.late_results;
    return true;
  }
  std::string parsed_key;
  harness::TrialOutcome outcome;
  if (!harness::parse_checkpoint_line(line, &parsed_key, &outcome) ||
      parsed_key != key) {
    ++report_.rejected_results;
    std::fprintf(stderr,
                 "farm: rejecting result for %s: line does not parse or "
                 "names a different key\n",
                 key.c_str());
    return false;
  }
  if (!append_line_durably(remote_shard_path(), line)) {
    std::fprintf(stderr, "farm: cannot append remote result to %s\n",
                 remote_shard_path().c_str());
    return false;  // no ack: the worker keeps its spool copy and retries
  }
  queue_.mark_done(key);
  ++report_.remote_results;
  ++report_.done;
  durable_dirty_ = true;
  note_artifacts(key, msg);
  return true;
}

std::string Farm::handle_request(
    const std::map<std::string, std::string>& msg, RemotePeer* peer) {
  const std::string type = wire::get(msg, "type");
  const std::string rid = wire::get(msg, "rid");
  using Fields = std::vector<std::pair<std::string, std::string>>;
  const auto reply = [&](Fields fields) {
    fields.insert(fields.begin() + 1, {"rid", rid});
    return wire::encode(fields);
  };

  if (type == "hello") {
    peer->name = wire::get(msg, "name");
    ++report_.remote_workers_seen;
    // Heartbeat cadence: three per watchdog window keeps one lost
    // heartbeat from expiring a healthy lease.
    const std::uint64_t hb =
        options_.watchdog_ms == 0
            ? 1000
            : std::max<std::uint64_t>(options_.watchdog_ms / 3, 50);
    return reply({{"type", "helloed"},
                  {"heartbeat_ms", std::to_string(hb)},
                  {"retries", std::to_string(options_.sweep.max_attempts)}});
  }
  if (type == "next") {
    if (queue_.all_settled()) return reply({{"type", "done"}});
    const auto index = queue_.acquire(kRemoteSlot, /*pid=*/-1);
    if (!index) {
      std::uint64_t poll_ms = 200;
      if (const auto next = queue_.next_deadline_in()) {
        poll_ms = std::min<std::uint64_t>(*next + 1, 500);
      }
      return reply({{"type", "idle"}, {"poll_ms", std::to_string(poll_ms)}});
    }
    const WorkItem& item = queue_.item(*index);
    return reply({{"type", "lease"},
                  {"key", item.key},
                  {"epoch", std::to_string(item.attempts)},
                  {"config", harness::serialize_config(item.config)}});
  }
  if (type == "heartbeat") {
    const auto index = queue_.find(wire::get(msg, "key"));
    const auto epoch = static_cast<std::uint32_t>(
        std::strtoul(wire::get(msg, "epoch").c_str(), nullptr, 10));
    if (index && queue_.renew(*index, epoch)) {
      return reply({{"type", "ok"}});
    }
    return reply({{"type", "stale"}});
  }
  if (type == "result") {
    const std::string key = wire::get(msg, "key");
    const std::size_t rejected_before = report_.rejected_results;
    if (accept_result(key, wire::get(msg, "line"), msg)) {
      return reply({{"type", "ok"}});
    }
    // Parse-rejected lines are the worker's bug (the frame checksum passed,
    // so the bytes arrived intact): telling it to retry would loop forever.
    // A daemon-side append failure, by contrast, is worth retrying.
    return reply(
        {{"type",
          report_.rejected_results > rejected_before ? "reject" : "retry"}});
  }
  if (type == "fail") {
    // Worker-side trial crash (its fork died unrecorded). Epoch-gated: a
    // stale failure report must not burn the current lease.
    const auto index = queue_.find(wire::get(msg, "key"));
    const auto epoch = static_cast<std::uint32_t>(
        std::strtoul(wire::get(msg, "epoch").c_str(), nullptr, 10));
    if (index && queue_.item(*index).state == ItemState::Leased &&
        queue_.item(*index).attempts == epoch) {
      ++report_.remote_failures;
      const WorkItem item = queue_.item(*index);
      if (!queue_.fail(*index)) record_exhausted(item, false);
      return reply({{"type", "ok"}});
    }
    return reply({{"type", "stale"}});
  }
  if (type == "status") {
    return reply({{"type", "status"}, {"json", status_json()}});
  }
  if (type == "results") {
    std::string lines;
    for (const auto& [key, line] : scan_shards(shard_dir()).lines) {
      lines += line;
      lines += '\n';
    }
    return reply({{"type", "results"}, {"lines", lines}});
  }
  if (type == "artifacts") {
    return reply({{"type", "artifacts"}, {"json", artifacts_json()}});
  }
  if (type == "follow") {
    peer->follow = true;
    durable_dirty_ = true;  // force a push so the subscriber catches up
    return reply({{"type", "ok"}});
  }
  return reply({{"type", "error"},
                {"detail", "unknown request type '" + type + "'"}});
}

// ---------------------------------------------------------------------------
// Event loop plumbing.

int Farm::open_socket() {
  const std::string path = socket_path_for(options_.dir);
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr,
                 "farm: socket path %s exceeds the AF_UNIX limit — status "
                 "endpoint disabled\n",
                 path.c_str());
    return -1;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listener < 0) return -1;
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 8) != 0) {
    std::fprintf(stderr, "farm: cannot serve %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listener);
    return -1;
  }
  return listener;
}

void Farm::serve_status_client(int listener) {
  const int client = ::accept(listener, nullptr, nullptr);
  if (client < 0) return;
  char buf[256];
  const ssize_t got = ::recv(client, buf, sizeof buf - 1, 0);
  std::string request(buf, got > 0 ? static_cast<std::size_t>(got) : 0);
  if (const auto nl = request.find('\n'); nl != std::string::npos) {
    request.resize(nl);
  }
  if (request == "follow") {
    // Keep the client: push_follow_lines streams every durable line (past
    // and future) and finishes with "end\n" when the farm completes.
    raw_followers_.push_back(RawFollower{client, {}});
    durable_dirty_ = true;
    return;
  }
  std::string response;
  if (request == "status") {
    response = status_json() + "\n";
  } else if (request == "results") {
    // Live view of everything durable so far, in canonical order.
    for (const auto& [key, line] : scan_shards(shard_dir()).lines) {
      response += line;
      response += '\n';
    }
  } else if (request == "artifacts") {
    response = artifacts_json() + "\n";
  } else {
    response =
        "{\"error\":\"unknown request (want: status | results | artifacts | "
        "follow)\"}\n";
  }
  write_all_fd(client, response.data(), response.size());
  ::close(client);
}

void Farm::pump_remote(Remote* remote) {
  // Drain every frame that is already buffered; Timeout means "no more".
  for (;;) {
    std::string payload;
    const RecvStatus status = remote->conn->recv(&payload, 0);
    if (status == RecvStatus::Timeout) return;
    if (status == RecvStatus::Closed) {
      remote->conn->close();
      return;
    }
    if (status == RecvStatus::Corrupt) {
      ++report_.corrupt_frames;
      std::fprintf(stderr,
                   "farm: dropping connection%s: %s at byte offset %llu — "
                   "its lease, if any, expires via the watchdog\n",
                   remote->peer.name.empty()
                       ? ""
                       : (" from " + remote->peer.name).c_str(),
                   remote->conn->corrupt_detail().c_str(),
                   static_cast<unsigned long long>(
                       remote->conn->corrupt_offset()));
      remote->conn->close();
      return;
    }
    std::map<std::string, std::string> msg;
    if (!wire::decode(payload, &msg)) {
      // The checksum passed but the payload is not a protocol message: a
      // peer speaking the wrong protocol. Refuse the connection.
      ++report_.corrupt_frames;
      remote->conn->close();
      return;
    }
    const std::string response = handle_request(msg, &remote->peer);
    if (!response.empty() && !remote->conn->send(response)) {
      remote->conn->close();
      return;
    }
  }
}

void Farm::push_follow_lines(bool final_push) {
  if (!durable_dirty_ && !final_push) return;
  const bool any_follower =
      !raw_followers_.empty() ||
      std::any_of(remotes_.begin(), remotes_.end(),
                  [](const Remote& r) { return r.peer.follow; });
  durable_dirty_ = false;
  if (!any_follower) return;
  const ShardScan scan = scan_shards(shard_dir());

  for (auto& follower : raw_followers_) {
    if (follower.fd < 0) continue;
    bool alive = true;
    for (const auto& [key, line] : scan.lines) {
      if (!follower.sent_keys.insert(key).second) continue;
      const std::string data = line + "\n";
      if (!write_all_fd(follower.fd, data.data(), data.size())) {
        alive = false;
        break;
      }
    }
    if (final_push && alive) {
      const char end[] = "end\n";
      write_all_fd(follower.fd, end, sizeof end - 1);
      alive = false;
    }
    if (!alive) {
      ::close(follower.fd);
      follower.fd = -1;
    }
  }
  std::erase_if(raw_followers_,
                [](const RawFollower& f) { return f.fd < 0; });

  for (auto& remote : remotes_) {
    if (!remote.peer.follow || remote.conn->fd() < 0) continue;
    bool alive = true;
    for (const auto& [key, line] : scan.lines) {
      if (!remote.peer.sent_keys.insert(key).second) continue;
      if (!remote.conn->send(
              wire::encode({{"type", "line"}, {"line", line}}))) {
        alive = false;
        break;
      }
    }
    if (final_push && alive) {
      remote.conn->send(wire::encode({{"type", "end"}}));
    }
    if (!alive) remote.conn->close();
  }
}

void Farm::pump_network(int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<int> owner;  // parallel: -1 status listener, -2 worker
                           // listener, else index into remotes_
  const int status_fd = status_listener_fd_;
  if (status_fd >= 0) {
    pfds.push_back(pollfd{status_fd, POLLIN, 0});
    owner.push_back(-1);
  }
  if (worker_listener_) {
    pfds.push_back(pollfd{worker_listener_->fd(), POLLIN, 0});
    owner.push_back(-2);
  }
  for (std::size_t i = 0; i < remotes_.size(); ++i) {
    if (remotes_[i].conn->fd() < 0) continue;
    pfds.push_back(pollfd{remotes_[i].conn->fd(), POLLIN, 0});
    owner.push_back(static_cast<int>(i));
  }
  if (pfds.empty()) {
    ::poll(nullptr, 0, timeout_ms);
  } else {
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready > 0) {
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (owner[i] == -1) {
          serve_status_client(status_fd);
        } else if (owner[i] == -2) {
          if (auto conn = worker_listener_->accept(0)) {
            remotes_.push_back(Remote{std::move(conn), RemotePeer{}});
          }
        } else {
          pump_remote(&remotes_[static_cast<std::size_t>(owner[i])]);
        }
      }
    }
  }
  std::erase_if(remotes_,
                [](const Remote& r) { return r.conn->fd() < 0; });
  push_follow_lines(false);
}

// ---------------------------------------------------------------------------
// Artifacts index (repro/trace capture paths per key).

std::string Farm::artifacts_json() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, fields] : artifacts_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << key << "\":{";
    bool inner_first = true;
    for (const auto& [k, v] : fields) {
      if (!inner_first) os << ",";
      inner_first = false;
      os << "\"" << k << "\":\"" << json_escape_min(v) << "\"";
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

void Farm::write_artifacts_index() {
  // Local captures: Sweep writes <repro_dir>/<key>.repro (+ .trace) inside
  // the forked worker; the daemon shares that directory, so existence is
  // the index. Remote captures were reported in the result messages and
  // already sit in artifacts_.
  std::error_code ec;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const std::string& key = queue_.item(i).key;
    const std::string stem = options_.sweep.repro_dir + "/" + key;
    if (fs::exists(stem + ".repro", ec)) {
      artifacts_[key]["repro"] = stem + ".repro";
    }
    if (fs::exists(stem + ".trace", ec)) {
      artifacts_[key]["trace"] = stem + ".trace";
    }
  }
  if (!publish_file(artifacts_path(), artifacts_json() + "\n")) {
    std::fprintf(stderr, "farm: cannot publish %s\n",
                 artifacts_path().c_str());
  }
}

// ---------------------------------------------------------------------------
// The daemon loop.

FarmReport Farm::run() {
  // A client vanishing mid-response must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
  resume_from_shards();
  status_listener_fd_ = options_.serve_socket ? open_socket() : -1;
  if (!options_.listen.empty()) {
    worker_listener_ =
        std::make_unique<Listener>(Endpoint::parse(options_.listen));
    // Publish the resolved endpoint (port 0 → real port) for scripts and
    // workers that only know the farm directory.
    publish_file(endpoint_path_for(options_.dir),
                 worker_listener_->endpoint().to_string() + "\n");
  }

  while (!queue_.all_settled()) {
    kill_expired_leases();
    reap_finished_workers();
    spawn_ready_workers();
    // Sleep until the next timed event, bounded so child exits (which do
    // not wake poll) are reaped promptly.
    int timeout_ms = 20;
    if (const auto next = queue_.next_deadline_in()) {
      timeout_ms = static_cast<int>(
          std::min<std::uint64_t>(*next + 1, 100));
    }
    pump_network(timeout_ms);
  }
  reap_finished_workers();  // collect any last exits before merging

  const ShardScan merged = merge_shards(shard_dir(), merged_path());
  report_.torn_shard_lines += merged.torn_lines;
  report_.merged_path = merged_path();
  report_.releases = queue_.retries();
  write_artifacts_index();
  push_follow_lines(/*final_push=*/true);

  // Linger briefly so workers — connected or just now reconnecting after a
  // severed link — hear "done" instead of timing out against a vanished
  // daemon (their reconnect deadline would still end the run correctly —
  // this just ends it politely and promptly).
  const std::uint64_t linger_until =
      steady_now_ms() + options_.shutdown_linger_ms;
  while (worker_listener_ && steady_now_ms() < linger_until) {
    pump_network(20);
    push_follow_lines(/*final_push=*/true);
  }

  if (status_listener_fd_ >= 0) {
    ::close(status_listener_fd_);
    status_listener_fd_ = -1;
    ::unlink(socket_path_for(options_.dir).c_str());
  }
  if (worker_listener_) {
    ::unlink(endpoint_path_for(options_.dir).c_str());
    worker_listener_.reset();
  }
  for (auto& remote : remotes_) remote.conn->close();
  remotes_.clear();
  for (auto& follower : raw_followers_) {
    if (follower.fd >= 0) ::close(follower.fd);
  }
  raw_followers_.clear();
  return report_;
}

std::string Farm::query(const std::string& dir, const std::string& request) {
  const std::string path = socket_path_for(dir);
  sockaddr_un addr{};
  OMX_REQUIRE(path.size() < sizeof(addr.sun_path),
              "farm: socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  OMX_REQUIRE(fd >= 0, "farm: cannot create socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw PreconditionError("farm: no daemon listening at " + path + ": " +
                            std::strerror(errno));
  }
  const std::string line = request + "\n";
  std::string response;
  if (write_all_fd(fd, line.data(), line.size())) {
    ::shutdown(fd, SHUT_WR);
    char buf[4096];
    for (;;) {
      const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
      if (got <= 0) break;
      response.append(buf, static_cast<std::size_t>(got));
    }
  }
  ::close(fd);
  return response;
}

}  // namespace omx::farm
