#include "farm/farm.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "farm/shard.h"
#include "support/check.h"

namespace omx::farm {

namespace fs = std::filesystem;

namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int exit_code_for_verdict(harness::Verdict v) {
  switch (v) {
    case harness::Verdict::Ok:
    case harness::Verdict::RoundCap:
    case harness::Verdict::Timeout:
      return 0;  // recorded, possibly imperfect — but the line is durable
    case harness::Verdict::Precondition:
      return 2;
    case harness::Verdict::Invariant:
      return 3;
    case harness::Verdict::AdversaryViolation:
      return 4;
  }
  return 3;
}

bool write_all_fd(int fd, const char* p, std::size_t len) {
  while (len > 0) {
    const ssize_t wrote = ::write(fd, p, len);
    if (wrote <= 0) return false;
    p += wrote;
    len -= static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Append one line + fsync: the record is durable before the caller
/// advances its state machine.
bool append_line_durably(const std::string& path, const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return false;
  const std::string data = line + "\n";
  const bool ok = write_all_fd(fd, data.data(), data.size()) &&
                  ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Chaos-test hooks (see tests/farm_test.cpp and the CI farm-chaos job):
/// OMX_FARM_TEST_CRASH_KEY=<key>        SIGKILL self on the first attempt
/// OMX_FARM_TEST_HANG_KEY=<key>[:once]  hang forever (every attempt, or
///                                      only the first with ":once")
void maybe_run_chaos_hooks(const std::string& key, std::uint32_t attempt) {
  if (const char* crash = std::getenv("OMX_FARM_TEST_CRASH_KEY")) {
    if (key == crash && attempt == 1) ::raise(SIGKILL);
  }
  if (const char* hang = std::getenv("OMX_FARM_TEST_HANG_KEY")) {
    std::string spec = hang;
    bool once = false;
    if (const auto colon = spec.rfind(":once"); colon != std::string::npos &&
                                                colon == spec.size() - 5) {
      once = true;
      spec.resize(colon);
    }
    if (key == spec && (!once || attempt == 1)) {
      // Hang until the daemon is gone (reparenting changes getppid), then
      // exit: a SIGKILL'd daemon must not leak paused workers.
      const pid_t daemon = ::getppid();
      while (::getppid() == daemon) ::usleep(50 * 1000);
      ::_exit(9);
    }
  }
}

}  // namespace

Farm::Farm(FarmOptions options)
    : options_(std::move(options)),
      queue_(WorkQueueOptions{options_.watchdog_ms, options_.max_attempts,
                              options_.backoff_base_ms,
                              options_.backoff_cap_ms},
             steady_now_ms) {
  OMX_REQUIRE(!options_.dir.empty(), "farm needs a state directory");
  OMX_REQUIRE(options_.workers >= 1, "farm needs at least one worker");
  std::error_code ec;
  fs::create_directories(shard_dir(), ec);
  OMX_REQUIRE(!ec, "farm: cannot create " + shard_dir() + ": " + ec.message());
  // Workers never checkpoint on their own: the shard line IS the
  // checkpoint, written exactly once per completed trial.
  options_.sweep.checkpoint_path.clear();
  if (options_.use_artifact_cache &&
      std::getenv("OMX_ARTIFACT_CACHE") == nullptr) {
    ::setenv("OMX_ARTIFACT_CACHE", (options_.dir + "/cache").c_str(), 0);
  }
  slots_.resize(static_cast<std::size_t>(options_.workers));
}

bool Farm::add(const harness::ExperimentConfig& cfg) {
  // Fold the sweep-level trial deadline into the config before hashing,
  // exactly as Sweep::run does: the item's key must equal the key a
  // single-process `omxsim --deadline-ms ... --checkpoint` sweep records,
  // or the merged output stops matching the reference byte for byte.
  harness::ExperimentConfig keyed = cfg;
  if (options_.sweep.trial_deadline_ms != 0) {
    keyed.deadline_ms = options_.sweep.trial_deadline_ms;
  }
  const bool added = queue_.add(harness::config_key(keyed), keyed);
  if (added) ++report_.items;
  return added;
}

std::string Farm::shard_path(int slot) const {
  return shard_dir() + "/worker-" + std::to_string(slot) + ".jsonl";
}

std::string Farm::daemon_shard_path() const {
  return shard_dir() + "/daemon.jsonl";
}

std::string Farm::socket_path_for(const std::string& dir) {
  return dir + "/farm.sock";
}

void Farm::resume_from_shards() {
  // Repair first: a shard whose tail was torn by a killed worker must not
  // receive appends after the debris, or the next line would be corrupted.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(shard_dir(), ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
      report_.torn_shard_lines += repair_shard(entry.path().string());
    }
  }
  const ShardScan scan = scan_shards(shard_dir());
  for (const auto& [key, line] : scan.lines) {
    if (queue_.mark_done(key)) ++report_.resumed;
  }
}

[[noreturn]] void Farm::worker_main(const WorkItem& item, int slot) {
  // Keep the fork narrow: run the trial, make its line durable, exit with
  // the verdict-taxonomy code. _exit (not exit) — the daemon's atexit
  // state is not ours to run.
  maybe_run_chaos_hooks(item.key, item.attempts);
  harness::Sweep sweep(options_.sweep);
  harness::ExperimentConfig cfg = item.config;
  // Worker lanes off inside workers: farm parallelism is process-level,
  // and the engine is bit-identical at every lane count anyway.
  cfg.threads = 1;
  const harness::TrialOutcome outcome = sweep.run(cfg);
  const std::string line = harness::checkpoint_line(item.key, outcome);
  if (!append_line_durably(shard_path(slot), line)) {
    std::fprintf(stderr, "farm worker: cannot append to %s\n",
                 shard_path(slot).c_str());
    ::_exit(6);  // undurable result — the daemon re-leases the item
  }
  ::_exit(exit_code_for_verdict(outcome.verdict));
}

void Farm::spawn_ready_workers() {
  for (int slot = 0; slot < options_.workers; ++slot) {
    if (slots_[static_cast<std::size_t>(slot)].pid != -1) continue;
    const auto index = queue_.acquire(slot, /*pid=*/-1);
    if (!index) return;  // nothing eligible right now
    std::fflush(nullptr);  // no duplicated stdio buffers in the child
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "farm: fork failed: %s\n", std::strerror(errno));
      queue_.fail(*index);
      return;
    }
    if (pid == 0) {
      worker_main(queue_.item(*index), slot);  // never returns
    }
    queue_.set_lease_pid(*index, pid);
    slots_[static_cast<std::size_t>(slot)] = Slot{pid, *index};
  }
}

void Farm::record_exhausted(const WorkItem& item, bool hung) {
  harness::TrialOutcome outcome;
  outcome.verdict =
      hung ? harness::Verdict::Timeout : harness::Verdict::Invariant;
  outcome.attempts = item.attempts;
  outcome.seed_used = item.config.seed;
  outcome.error = hung ? "farm: worker hung past the lease watchdog on every "
                         "attempt (retry budget exhausted)"
                       : "farm: worker crashed on every attempt (retry "
                         "budget exhausted)";
  // The synthetic line keeps the merged results total: every queued key
  // appears exactly once even when its trial never managed to record
  // itself. daemon.jsonl sits beside the worker shards so the merge picks
  // it up like any other.
  if (!append_line_durably(daemon_shard_path(),
                           harness::checkpoint_line(item.key, outcome))) {
    std::fprintf(stderr, "farm: cannot record exhausted item %s\n",
                 item.key.c_str());
  }
  ++report_.failed;
}

void Farm::reap_finished_workers() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) return;
    // Find the slot this pid was leased to.
    std::size_t slot = slots_.size();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].pid == pid) slot = s;
    }
    if (slot == slots_.size()) continue;  // not a worker (should not happen)
    const std::size_t index = slots_[slot].item_index;
    slots_[slot] = Slot{};
    const WorkItem& item = queue_.item(index);

    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      ++report_.exit_codes[code];
      if (code == 0 || code == 2 || code == 3 || code == 4) {
        // Recorded outcome (the taxonomy codes are *recorded* model
        // violations — deterministic, so a re-lease would just re-fail).
        queue_.complete(index);
        ++report_.done;
        continue;
      }
      // Any other exit (e.g. 6 = shard append failed) is an unrecorded
      // trial: treat like a crash.
    }
    const bool hung = item.watchdog_fired;
    if (WIFSIGNALED(status) || WIFEXITED(status)) {
      if (hung) {
        ++report_.watchdog_kills;
      } else {
        ++report_.crashed_workers;
      }
      // The dead worker may have torn its shard tail mid-write; repair
      // before the slot is reused so later appends start on a line
      // boundary.
      report_.torn_shard_lines +=
          repair_shard(shard_path(static_cast<int>(slot)));
      if (!queue_.fail(index)) record_exhausted(item, hung);
    }
  }
}

void Farm::kill_expired_leases() {
  for (const std::size_t index : queue_.expired()) {
    for (const auto& slot : slots_) {
      if (slot.pid != -1 && slot.item_index == index) {
        ::kill(static_cast<pid_t>(slot.pid), SIGKILL);
      }
    }
  }
}

std::string Farm::status_json() const {
  std::ostringstream os;
  os << "{\"items\":" << queue_.size()
     << ",\"pending\":" << queue_.count(ItemState::Pending)
     << ",\"leased\":" << queue_.count(ItemState::Leased)
     << ",\"done\":" << queue_.count(ItemState::Done)
     << ",\"failed\":" << queue_.count(ItemState::Failed)
     << ",\"resumed\":" << report_.resumed
     << ",\"releases\":" << queue_.retries()
     << ",\"workers\":" << options_.workers
     << ",\"crashed_workers\":" << report_.crashed_workers
     << ",\"watchdog_kills\":" << report_.watchdog_kills << "}";
  return os.str();
}

int Farm::open_socket() {
  const std::string path = socket_path_for(options_.dir);
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr,
                 "farm: socket path %s exceeds the AF_UNIX limit — status "
                 "endpoint disabled\n",
                 path.c_str());
    return -1;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listener < 0) return -1;
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 8) != 0) {
    std::fprintf(stderr, "farm: cannot serve %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listener);
    return -1;
  }
  return listener;
}

void Farm::serve_socket_once(int listener, int timeout_ms) {
  pollfd pfd{listener, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return;
  const int client = ::accept(listener, nullptr, nullptr);
  if (client < 0) return;
  char buf[256];
  const ssize_t got = ::recv(client, buf, sizeof buf - 1, 0);
  std::string request(buf, got > 0 ? static_cast<std::size_t>(got) : 0);
  if (const auto nl = request.find('\n'); nl != std::string::npos) {
    request.resize(nl);
  }
  std::string response;
  if (request == "status") {
    response = status_json() + "\n";
  } else if (request == "results") {
    // Live view of everything durable so far, in canonical order.
    for (const auto& [key, line] : scan_shards(shard_dir()).lines) {
      response += line;
      response += '\n';
    }
  } else {
    response = "{\"error\":\"unknown request (want: status | results)\"}\n";
  }
  write_all_fd(client, response.data(), response.size());
  ::close(client);
}

FarmReport Farm::run() {
  // A client vanishing mid-response must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
  resume_from_shards();
  const int listener = options_.serve_socket ? open_socket() : -1;

  while (!queue_.all_settled()) {
    kill_expired_leases();
    reap_finished_workers();
    spawn_ready_workers();
    // Sleep until the next timed event, bounded so child exits (which do
    // not wake poll) are reaped promptly.
    int timeout_ms = 20;
    if (const auto next = queue_.next_deadline_in()) {
      timeout_ms = static_cast<int>(
          std::min<std::uint64_t>(*next + 1, 100));
    }
    if (listener >= 0) {
      serve_socket_once(listener, timeout_ms);
    } else {
      ::poll(nullptr, 0, timeout_ms);
    }
  }

  const ShardScan merged = merge_shards(shard_dir(), merged_path());
  report_.torn_shard_lines += merged.torn_lines;
  report_.merged_path = merged_path();
  report_.releases = queue_.retries();
  if (listener >= 0) {
    ::close(listener);
    ::unlink(socket_path_for(options_.dir).c_str());
  }
  return report_;
}

std::string Farm::query(const std::string& dir, const std::string& request) {
  const std::string path = socket_path_for(dir);
  sockaddr_un addr{};
  OMX_REQUIRE(path.size() < sizeof(addr.sun_path),
              "farm: socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  OMX_REQUIRE(fd >= 0, "farm: cannot create socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw PreconditionError("farm: no daemon listening at " + path + ": " +
                            std::strerror(errno));
  }
  const std::string line = request + "\n";
  std::string response;
  if (write_all_fd(fd, line.data(), line.size())) {
    ::shutdown(fd, SHUT_WR);
    char buf[4096];
    for (;;) {
      const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
      if (got <= 0) break;
      response.append(buf, static_cast<std::size_t>(got));
    }
  }
  ::close(fd);
  return response;
}

}  // namespace omx::farm
