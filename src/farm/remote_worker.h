// The remote half of the farm (ROADMAP item 3): `omxfarm work --connect`.
//
// A RemoteWorker dials the daemon's worker endpoint (transport.h), asks for
// leases, runs each leased trial in a fork of its own (the same
// fork-per-trial failure domain local workers get), and submits the result
// line over the wire. Its crash-safety contract mirrors the local shard
// story, adapted to a lossy link:
//
//   * every completed trial's line is appended durably to a local spool
//     (<dir>/pending.jsonl) BEFORE the submit RPC — a worker killed between
//     "trial done" and "daemon acked" resubmits the spooled line when it
//     restarts or reconnects, and the daemon's key-based dedup makes the
//     resubmission a no-op if the line already landed;
//   * heartbeats (cadence dictated by the daemon's hello response) renew
//     the lease watchdog; a "stale" answer means the lease was superseded —
//     the worker kills its trial fork and moves on rather than burn CPU on
//     an item that is now someone else's;
//   * every request carries a monotonic `rid` echoed by the daemon, so a
//     duplicated or delayed response is recognized and discarded instead of
//     desynchronizing the request/response stream;
//   * a lost message (request or response) surfaces as a timeout and the
//     request is simply re-sent — every daemon handler is idempotent or
//     epoch-gated, so re-asking is always safe;
//   * a severed connection triggers capped-exponential-backoff redial; the
//     worker gives up only after reconnect_deadline_ms of continuous
//     failure (a vanished daemon must not leave zombie workers);
//   * a corrupt frame (checksum failure) throws CorruptInputError carrying
//     the byte offset — under guarded_main that is exit 5, the same code a
//     corrupt checkpoint file produces. Bad bytes are never acted upon.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "farm/transport.h"
#include "harness/sweep.h"

namespace omx::farm {

struct RemoteWorkerOptions {
  /// Daemon worker endpoint ("unix:<path>", "tcp:<host>:<port>", or bare
  /// host:port).
  std::string endpoint;
  /// Worker state directory: pending.jsonl spool, trial outbox, repro/.
  std::string dir;
  /// Name reported in hello and attached to submitted artifacts.
  std::string name;
  /// FlakyTransport chaos spec applied to this worker's connection
  /// ("seed=...,drop=...,..."); empty = a well-behaved link.
  std::string chaos;
  /// Reconnect backoff: first retry after base, doubling to cap.
  std::uint64_t backoff_base_ms = 100;
  std::uint64_t backoff_cap_ms = 5000;
  /// Give up after this much continuous connect/RPC failure: the daemon is
  /// gone and is not coming back.
  std::uint64_t reconnect_deadline_ms = 30000;
  /// Upper bound on how long to sleep when the daemon answers "idle".
  std::uint64_t idle_poll_ms = 200;
  /// In-trial options (repro capture etc.). The daemon's hello response
  /// overrides max_attempts so retry ladders match the reference sweep;
  /// the leased config already carries its folded trial deadline.
  harness::SweepOptions sweep;
};

struct RemoteWorkerReport {
  std::size_t trials = 0;            // leases actually run
  std::size_t submitted = 0;         // result lines acked by the daemon
  std::size_t resubmitted = 0;       // spooled lines replayed on startup
  std::size_t failures_reported = 0; // trial-fork crashes reported upstream
  std::size_t stale_leases = 0;      // trials abandoned on a stale heartbeat
  std::uint64_t reconnects = 0;      // successful redials after the first
  std::uint64_t heartbeats = 0;
  /// True when the daemon said "done"; false when the worker gave up on an
  /// unreachable daemon (the CLI exits nonzero in that case).
  bool daemon_finished = false;
};

class RemoteWorker {
 public:
  explicit RemoteWorker(RemoteWorkerOptions options);

  /// Work until the daemon reports the grid settled ("done") or the
  /// reconnect deadline expires. Throws CorruptInputError on a corrupt
  /// frame. Blocking.
  RemoteWorkerReport run();

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  std::string spool_path() const { return options_.dir + "/pending.jsonl"; }
  std::string outbox_path() const { return options_.dir + "/outbox.jsonl"; }

  bool ensure_connected();
  void drop_conn();
  /// One reliable request/response exchange: sends (re-sending on timeout,
  /// reconnecting on sever) until the rid-matched response arrives or the
  /// reconnect deadline expires (returns false: give up).
  bool rpc(const Fields& fields, std::map<std::string, std::string>* response);

  /// Returns false when the daemon became unreachable (ends the run).
  bool run_trial(const std::string& key, std::uint32_t epoch,
                 const harness::ExperimentConfig& cfg);
  [[noreturn]] void trial_child(const std::string& key, std::uint32_t epoch,
                                harness::ExperimentConfig cfg);
  bool submit_line(const std::string& key, std::uint32_t epoch,
                   const std::string& line, bool from_spool);
  bool resubmit_spool();
  void spool_drop(const std::string& line);

  RemoteWorkerOptions options_;
  Endpoint endpoint_;
  std::unique_ptr<Conn> conn_;
  std::uint64_t rid_ = 0;
  std::uint64_t heartbeat_ms_ = 1000;  // dictated by the daemon's hello reply
  bool connected_once_ = false;
  std::optional<std::uint64_t> connect_fail_since_;
  RemoteWorkerReport report_;
};

}  // namespace omx::farm
