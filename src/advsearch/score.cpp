#include "advsearch/score.h"

#include <algorithm>
#include <vector>

namespace omx::advsearch {

std::string Score::to_string() const {
  return "rounds=" + std::to_string(rounds_to_decide) +
         " rand_bits=" + std::to_string(rand_bits) +
         " delivered=" + std::to_string(delivered) +
         (all_decided ? "" : " (undecided)");
}

Score score_trace(const trace::TraceData& t) {
  Score s;
  std::uint64_t rounds = 0, messages = 0, omitted = 0;
  std::vector<std::uint8_t> corrupted(t.header.n, 0);
  std::vector<std::uint8_t> decided(t.header.n, 0);
  std::uint64_t last_decide_round = 0;
  bool any_decide = false;
  for (const trace::Event& e : t.events) {
    switch (e.kind) {
      case trace::kRoundBegin: rounds += 1; break;
      case trace::kRngDraw: s.rand_bits += e.dst; break;
      case trace::kCorrupt:
        if (e.src < corrupted.size()) corrupted[e.src] = 1;
        break;
      case trace::kSend: messages += 1; break;
      case trace::kDrop: omitted += 1; break;
      case trace::kDecide:
        if (e.src < decided.size()) {
          decided[e.src] = 1;
          // A corrupted process's decision does not bound the run; filter
          // below once the full corrupted set is known.
        }
        break;
      default: break;
    }
  }
  s.delivered = messages - omitted;
  s.all_decided = true;
  for (std::uint32_t p = 0; p < t.header.n; ++p) {
    if (corrupted[p]) continue;
    if (!decided[p]) {
      s.all_decided = false;
      continue;
    }
  }
  // Second pass for the decision horizon: kDecide rounds of non-corrupted
  // processes only (their `round` field is the decision round).
  for (const trace::Event& e : t.events) {
    if (e.kind != trace::kDecide || e.src >= corrupted.size()) continue;
    if (corrupted[e.src]) continue;
    any_decide = true;
    last_decide_round = std::max(last_decide_round, std::uint64_t{e.round});
  }
  s.rounds_to_decide =
      (s.all_decided && any_decide) ? last_decide_round + 1 : rounds + 1;
  return s;
}

adversary::Schedule extract_schedule(const trace::TraceData& t) {
  adversary::Schedule s;
  for (const trace::Event& e : t.events) {
    if (e.kind == trace::kCorrupt) {
      s.ops.push_back({adversary::ScheduleOp::Kind::Corrupt, e.round, e.src,
                       0});
    } else if (e.kind == trace::kDrop) {
      s.ops.push_back(
          {adversary::ScheduleOp::Kind::Drop, e.round, e.src, e.dst});
    }
  }
  s.normalize();
  return s;
}

}  // namespace omx::advsearch
