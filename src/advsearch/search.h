// Closed-loop adversary search (ROADMAP item 5): greedy + simulated
// annealing over intervention-schedule genomes, scored from the engine's
// own compressed traces.
//
// The loop, per iteration i (with its own Xoshiro256(mix64(seed, i)) — the
// per-iteration generator is what makes the search checkpoint/resume exact
// without serializing PRNG state):
//
//   1. mutate the current schedule (add/remove/retarget/shift one op);
//   2. replay it deterministically through run_experiment with a packed
//      trace attached — the PR 4 legality firewall judges the mutant, and
//      an AdversaryViolation REJECTS it outright (never clipped into some
//      weaker legal schedule the search did not actually propose);
//   3. score the trace (advsearch/score.h) and accept by the annealing
//      rule: always uphill, downhill with probability exp(delta / T),
//      T = t0 * alpha^i.
//
// The search is seeded from an analytic strategy: run it once, extract its
// executed interventions as a schedule (score_trace/extract_schedule), and
// verify the extraction reproduces the analytic score exactly. `best`
// starts there, so "discovered >= analytic baseline" holds by construction
// and every later improvement is a real empirical gain over the paper's
// hand-derived attack.
//
// State checkpointing mirrors the sweep subsystem's discipline: a key=value
// file written atomically (tmp + rename) every few iterations, embedding
// the base config via serialize_config; a torn or hand-mangled state file
// is CorruptInputError — exit 5 with a byte offset, like every other
// corrupt input in this codebase.
#pragma once

#include <cstdint>
#include <string>

#include "advsearch/score.h"
#include "adversary/schedule.h"
#include "harness/experiment.h"
#include "support/prng.h"

namespace omx::advsearch {

struct SearchOptions {
  /// Total mutation iterations (a resumed search continues to this count).
  std::uint32_t iterations = 200;
  /// Annealing: initial temperature in Score::scalar units and geometric
  /// cooling factor. The default t0 tolerates one-round regressions early.
  double t0 = 5e11;
  double alpha = 0.95;
  /// Search PRNG seed (independent of the experiment's seed).
  std::uint64_t seed = 1;
  /// Resumable state file; empty = in-memory only.
  std::string state_path;
  /// Directory for candidate traces (one scratch file, overwritten).
  std::string work_dir = "advsearch";
  /// Checkpoint cadence in iterations (when state_path is set).
  std::uint32_t checkpoint_every = 10;
};

struct SearchStats {
  std::uint64_t evaluated = 0;  // candidate replays run
  std::uint64_t rejected = 0;   // killed by the legality firewall
  std::uint64_t accepted = 0;   // became the current schedule
  std::uint64_t improved = 0;   // became the best schedule
};

class Search {
 public:
  /// `base` is the experiment every candidate replays: its attack/schedule
  /// fields are overwritten per candidate, everything else (algo, n, t,
  /// seed, inputs, budget) is the fixed arena the adversary fights in.
  Search(harness::ExperimentConfig base, SearchOptions opts);

  /// Run the analytic `attack` once, extract its executed schedule, verify
  /// the extraction replays to the same score, and install it as both
  /// current and best. The analytic trace is kept as
  /// work_dir/baseline.trace and the extraction replay as
  /// work_dir/seeded.trace (byte-comparable by CI). Throws InvariantError
  /// if the extraction does not reproduce the analytic score.
  void seed_from_attack(harness::Attack attack);

  /// Resume from options().state_path. Returns false if the file does not
  /// exist; throws CorruptInputError (with a byte offset) if it is torn.
  bool load_state();
  /// Atomically persist the search state (tmp + rename).
  void save_state() const;

  /// Iterate from the current iteration to options().iterations,
  /// checkpointing along the way and once at the end.
  void run();

  /// Replay one schedule and score its trace. Returns false — candidate
  /// rejected — iff the legality firewall threw AdversaryViolation.
  /// The trace is left at trace_path(trace_name) for inspection.
  bool evaluate(const adversary::Schedule& s, Score* out,
                const std::string& trace_name = "cand");

  std::string trace_path(const std::string& name) const;

  const harness::ExperimentConfig& base() const { return base_; }
  const SearchOptions& options() const { return opts_; }
  const std::string& baseline_attack() const { return baseline_attack_; }
  const Score& baseline_score() const { return baseline_score_; }
  const adversary::Schedule& best() const { return best_; }
  const Score& best_score() const { return best_score_; }
  const adversary::Schedule& current() const { return current_; }
  const Score& current_score() const { return current_score_; }
  std::uint32_t iter() const { return iter_; }
  const SearchStats& stats() const { return stats_; }

 private:
  adversary::Schedule mutate(Xoshiro256& gen) const;

  harness::ExperimentConfig base_;
  SearchOptions opts_;
  std::string baseline_attack_ = "none";
  Score baseline_score_{};
  adversary::Schedule current_{};
  adversary::Schedule best_{};
  Score current_score_{};
  Score best_score_{};
  std::uint32_t iter_ = 0;
  /// Mutation round horizon: ops land in [0, horizon_). Tracks the longest
  /// run seen (+ slack), so a schedule can always push one round past it.
  std::uint32_t horizon_ = 4;
  SearchStats stats_{};
};

}  // namespace omx::advsearch
