#include "advsearch/search.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness/sweep.h"
#include "support/check.h"

namespace omx::advsearch {

namespace {

/// Distinct processes a schedule corrupts, ascending.
std::vector<std::uint32_t> corrupt_set(const adversary::Schedule& s) {
  std::vector<std::uint32_t> ps;
  for (const adversary::ScheduleOp& op : s.ops) {
    if (op.kind == adversary::ScheduleOp::Kind::Corrupt) ps.push_back(op.a);
  }
  std::sort(ps.begin(), ps.end());
  ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
  return ps;
}

std::uint64_t to_u64(const std::string& v) {
  return std::strtoull(v.c_str(), nullptr, 10);
}

}  // namespace

Search::Search(harness::ExperimentConfig base, SearchOptions opts)
    : base_(std::move(base)), opts_(std::move(opts)) {
  base_.attack = harness::Attack::Schedule;
  base_.schedule.clear();
  base_.trace_path.clear();
  std::filesystem::create_directories(opts_.work_dir);
}

std::string Search::trace_path(const std::string& name) const {
  return opts_.work_dir + "/" + name + ".trace";
}

bool Search::evaluate(const adversary::Schedule& s, Score* out,
                      const std::string& trace_name) {
  harness::ExperimentConfig cfg = base_;
  cfg.attack = harness::Attack::Schedule;
  cfg.schedule = s.to_string();
  cfg.trace_path = trace_path(trace_name);
  cfg.trace_packed = true;
  stats_.evaluated += 1;
  try {
    (void)harness::run_experiment(cfg);
  } catch (const AdversaryViolation&) {
    // The firewall spoke: this genome oversteps the omission model.
    // Reject the candidate whole — scoring whatever prefix executed would
    // quietly credit the search with power it does not have.
    stats_.rejected += 1;
    return false;
  }
  *out = score_trace(trace::read_trace(cfg.trace_path));
  return true;
}

void Search::seed_from_attack(harness::Attack attack) {
  baseline_attack_ = harness::to_string(attack);
  harness::ExperimentConfig cfg = base_;
  cfg.attack = attack;
  cfg.schedule.clear();
  cfg.trace_path = trace_path("baseline");
  cfg.trace_packed = true;
  (void)harness::run_experiment(cfg);
  const trace::TraceData baseline_trace = trace::read_trace(cfg.trace_path);
  baseline_score_ = score_trace(baseline_trace);

  // Extraction fidelity check: the schedule written down from the analytic
  // run must replay to the identical score (the engine is deterministic,
  // so anything else means the extraction lost information).
  const adversary::Schedule seeded = extract_schedule(baseline_trace);
  Score replayed;
  OMX_REQUIRE(evaluate(seeded, &replayed, "seeded"),
              "seeded schedule extracted from '" + baseline_attack_ +
                  "' was rejected by the legality firewall");
  OMX_CHECK(replayed == baseline_score_,
            "seeded schedule does not reproduce the analytic score "
            "(analytic: " + baseline_score_.to_string() +
                "; replay: " + replayed.to_string() + ")");

  current_ = seeded;
  best_ = seeded;
  current_score_ = baseline_score_;
  best_score_ = baseline_score_;
  iter_ = 0;
  stats_ = SearchStats{};
  stats_.evaluated = 1;  // the fidelity replay above
  horizon_ = static_cast<std::uint32_t>(baseline_score_.rounds_to_decide) + 2;
}

adversary::Schedule Search::mutate(Xoshiro256& gen) const {
  const std::uint32_t n = base_.n;
  adversary::Schedule s = current_;
  const std::vector<std::uint32_t> corrupts = corrupt_set(current_);
  // A mutation choice can be inapplicable (e.g. nothing to remove); retry a
  // few times, falling back to the unchanged schedule (a wasted but
  // harmless iteration) if nothing applies.
  for (int attempt = 0; attempt < 8; ++attempt) {
    switch (gen.below(6)) {
      case 0: {  // add a drop on a corrupted endpoint
        if (corrupts.empty()) continue;
        const std::uint32_t p =
            corrupts[static_cast<std::size_t>(gen.below(corrupts.size()))];
        const std::uint32_t q = static_cast<std::uint32_t>(gen.below(n));
        if (q == p) continue;
        const bool outgoing = gen.bernoulli(0.5);
        s.ops.push_back({adversary::ScheduleOp::Kind::Drop,
                         static_cast<std::uint32_t>(gen.below(horizon_)),
                         outgoing ? p : q, outgoing ? q : p});
        break;
      }
      case 1: {  // silence a corrupted process for one round
        if (corrupts.empty()) continue;
        s.ops.push_back({adversary::ScheduleOp::Kind::Silence,
                         static_cast<std::uint32_t>(gen.below(horizon_)),
                         corrupts[static_cast<std::size_t>(
                             gen.below(corrupts.size()))],
                         0});
        break;
      }
      case 2: {  // corrupt a fresh process (skip if the budget is full —
                 // that candidate is a certain reject, not worth a replay)
        if (corrupts.size() >= base_.t) continue;
        const std::uint32_t p = static_cast<std::uint32_t>(gen.below(n));
        if (std::binary_search(corrupts.begin(), corrupts.end(), p)) continue;
        s.ops.push_back({adversary::ScheduleOp::Kind::Corrupt,
                         static_cast<std::uint32_t>(gen.below(horizon_)), p,
                         0});
        break;
      }
      case 3: {  // remove one op (removing a corrupt may strand its drops —
                 // the firewall will reject that candidate, honestly)
        if (s.ops.empty()) continue;
        s.ops.erase(s.ops.begin() +
                    static_cast<std::ptrdiff_t>(gen.below(s.ops.size())));
        break;
      }
      case 4: {  // shift one op a round earlier/later
        if (s.ops.empty()) continue;
        adversary::ScheduleOp& op =
            s.ops[static_cast<std::size_t>(gen.below(s.ops.size()))];
        if (gen.bernoulli(0.5)) {
          if (op.round + 1 >= horizon_) continue;
          op.round += 1;
        } else {
          if (op.round == 0) continue;
          op.round -= 1;
        }
        break;
      }
      default: {  // retarget a drop's honest endpoint
        std::vector<std::size_t> drops;
        for (std::size_t i = 0; i < s.ops.size(); ++i) {
          if (s.ops[i].kind == adversary::ScheduleOp::Kind::Drop) {
            drops.push_back(i);
          }
        }
        if (drops.empty()) continue;
        adversary::ScheduleOp& op =
            s.ops[drops[static_cast<std::size_t>(gen.below(drops.size()))]];
        const std::uint32_t q = static_cast<std::uint32_t>(gen.below(n));
        if (q == op.a || q == op.b) continue;
        op.b = q;
        break;
      }
    }
    s.normalize();
    if (!(s == current_)) return s;
    s = current_;
  }
  return s;
}

void Search::run() {
  while (iter_ < opts_.iterations) {
    // Per-iteration generator: iteration i draws the same stream whether
    // this process ran 0..i straight through or resumed from a checkpoint.
    Xoshiro256 gen(mix64(opts_.seed, iter_));
    const adversary::Schedule candidate = mutate(gen);
    Score sc;
    const bool legal = evaluate(candidate, &sc);
    if (legal) {
      const double delta = sc.scalar() - current_score_.scalar();
      const double temp =
          opts_.t0 * std::pow(opts_.alpha, static_cast<double>(iter_));
      const bool accept =
          delta >= 0.0 ||
          (temp > 0.0 && gen.uniform01() < std::exp(delta / temp));
      if (accept) {
        current_ = candidate;
        current_score_ = sc;
        stats_.accepted += 1;
        horizon_ = std::max(
            horizon_,
            static_cast<std::uint32_t>(sc.rounds_to_decide) + 2);
      }
      if (sc.better_than(best_score_)) {
        best_ = candidate;
        best_score_ = sc;
        stats_.improved += 1;
      }
    }
    // iter_ counts *completed* iterations, so a checkpoint written here
    // resumes at exactly the next mutation — mid-search kill -9 replays
    // nothing and skips nothing.
    ++iter_;
    if (!opts_.state_path.empty() && opts_.checkpoint_every != 0 &&
        iter_ % opts_.checkpoint_every == 0) {
      save_state();
    }
  }
  if (!opts_.state_path.empty()) save_state();
}

void Search::save_state() const {
  const std::string tmp = opts_.state_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    OMX_REQUIRE(out.good(),
                "advsearch: cannot write state file " + tmp);
    out << "# omxadv search state — resume: omxadv search --state <this>\n";
    out << "baseline_attack=" << baseline_attack_ << "\n";
    out << "baseline_rounds=" << baseline_score_.rounds_to_decide << "\n";
    out << "baseline_rand_bits=" << baseline_score_.rand_bits << "\n";
    out << "baseline_delivered=" << baseline_score_.delivered << "\n";
    out << "baseline_all_decided=" << (baseline_score_.all_decided ? 1 : 0)
        << "\n";
    out << "best=" << best_.to_string() << "\n";
    out << "best_rounds=" << best_score_.rounds_to_decide << "\n";
    out << "best_rand_bits=" << best_score_.rand_bits << "\n";
    out << "best_delivered=" << best_score_.delivered << "\n";
    out << "best_all_decided=" << (best_score_.all_decided ? 1 : 0) << "\n";
    out << "current=" << current_.to_string() << "\n";
    out << "current_rounds=" << current_score_.rounds_to_decide << "\n";
    out << "current_rand_bits=" << current_score_.rand_bits << "\n";
    out << "current_delivered=" << current_score_.delivered << "\n";
    out << "current_all_decided=" << (current_score_.all_decided ? 1 : 0)
        << "\n";
    out << "iter=" << iter_ << "\n";
    out << "horizon=" << horizon_ << "\n";
    out << "search_seed=" << opts_.seed << "\n";
    out << "evaluated=" << stats_.evaluated << "\n";
    out << "rejected=" << stats_.rejected << "\n";
    out << "accepted=" << stats_.accepted << "\n";
    out << "improved=" << stats_.improved << "\n";
    out << "config:\n";
    out << harness::serialize_config(base_);
    OMX_REQUIRE(out.good(),
                "advsearch: short write to state file " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, opts_.state_path, ec);
  OMX_REQUIRE(!ec, "advsearch: cannot publish state file " +
                       opts_.state_path + ": " + ec.message());
}

bool Search::load_state() {
  std::ifstream in(opts_.state_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::size_t line_offset = 0;
  const auto corrupt = [&](const std::string& detail) -> CorruptInputError {
    return CorruptInputError(opts_.state_path, line_offset, detail);
  };
  std::istringstream is(text);
  std::string line;
  std::size_t raw_size = 0;
  bool saw_iter = false;
  for (; std::getline(is, line); line_offset += raw_size + 1) {
    raw_size = line.size();
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (line == "config:") {
      // Everything after this marker is a serialize_config body.
      const std::size_t cfg_offset = line_offset + raw_size + 1;
      harness::ExperimentConfig cfg;
      std::string err;
      std::size_t bad = 0;
      if (!harness::parse_config(text.substr(cfg_offset), &cfg, &err, &bad)) {
        line_offset = cfg_offset + bad;
        throw corrupt("bad embedded config: " + err);
      }
      base_ = cfg;
      base_.attack = harness::Attack::Schedule;
      base_.schedule.clear();
      base_.trace_path.clear();
      if (!saw_iter) {
        line_offset = 0;
        throw corrupt("state file has a config but no iter= line");
      }
      return true;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) throw corrupt("bad line: " + line);
    const std::string k = line.substr(0, eq);
    const std::string v = line.substr(eq + 1);
    std::string err;
    if (k == "baseline_attack") {
      baseline_attack_ = v;
    } else if (k == "best" || k == "current") {
      adversary::Schedule s;
      if (!adversary::Schedule::parse(v, &s, &err)) {
        throw corrupt("bad " + k + " schedule: " + err);
      }
      (k == "best" ? best_ : current_) = s;
    } else if (k == "baseline_rounds") {
      baseline_score_.rounds_to_decide = to_u64(v);
    } else if (k == "baseline_rand_bits") {
      baseline_score_.rand_bits = to_u64(v);
    } else if (k == "baseline_delivered") {
      baseline_score_.delivered = to_u64(v);
    } else if (k == "baseline_all_decided") {
      baseline_score_.all_decided = v == "1";
    } else if (k == "best_rounds") {
      best_score_.rounds_to_decide = to_u64(v);
    } else if (k == "best_rand_bits") {
      best_score_.rand_bits = to_u64(v);
    } else if (k == "best_delivered") {
      best_score_.delivered = to_u64(v);
    } else if (k == "best_all_decided") {
      best_score_.all_decided = v == "1";
    } else if (k == "current_rounds") {
      current_score_.rounds_to_decide = to_u64(v);
    } else if (k == "current_rand_bits") {
      current_score_.rand_bits = to_u64(v);
    } else if (k == "current_delivered") {
      current_score_.delivered = to_u64(v);
    } else if (k == "current_all_decided") {
      current_score_.all_decided = v == "1";
    } else if (k == "iter") {
      iter_ = static_cast<std::uint32_t>(to_u64(v));
      saw_iter = true;
    } else if (k == "horizon") {
      horizon_ = static_cast<std::uint32_t>(to_u64(v));
    } else if (k == "search_seed") {
      opts_.seed = to_u64(v);
    } else if (k == "evaluated") {
      stats_.evaluated = to_u64(v);
    } else if (k == "rejected") {
      stats_.rejected = to_u64(v);
    } else if (k == "accepted") {
      stats_.accepted = to_u64(v);
    } else if (k == "improved") {
      stats_.improved = to_u64(v);
    } else {
      throw corrupt("unknown key: " + k);
    }
  }
  line_offset = text.size();
  throw corrupt("state file truncated before its config: section");
}

}  // namespace omx::advsearch
