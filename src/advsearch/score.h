// Scoring and schedule extraction: the trace-reading half of the omxadv
// loop (search.h drives it).
//
// A candidate adversary is judged entirely from the event trace of its
// replay — the same compressed stream the engine writes anyway — so the
// scorer sees exactly what an offline analyst would: rounds until the last
// honest decision, randomness the protocol was forced to burn, messages
// that actually got through. Reading the trace (rather than trusting the
// in-process ExperimentResult) keeps the loop honest end-to-end: what the
// search optimizes is what `omxtrace stats` reports.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/schedule.h"
#include "trace/reader.h"

namespace omx::advsearch {

/// What the adversary achieved, read from a run's trace. An omission
/// adversary wants decisions *late*, coins *spent*, and deliveries *few*,
/// so "better" for the search means lexicographically greater
/// (rounds_to_decide, rand_bits, -delivered).
struct Score {
  /// Rounds until the last non-corrupted process decided; a run where some
  /// honest process never decided scores total-rounds + 1 (strictly worse
  /// for the protocol than any deciding run of the same length).
  std::uint64_t rounds_to_decide = 0;
  std::uint64_t rand_bits = 0;   // total random bits drawn
  std::uint64_t delivered = 0;   // messages sent minus messages omitted
  bool all_decided = false;      // every non-corrupted process decided

  friend bool operator==(const Score&, const Score&) = default;

  /// Deterministic total order: integer lexicographic compare, no floats.
  bool better_than(const Score& o) const {
    if (rounds_to_decide != o.rounds_to_decide) {
      return rounds_to_decide > o.rounds_to_decide;
    }
    if (rand_bits != o.rand_bits) return rand_bits > o.rand_bits;
    return delivered < o.delivered;
  }

  /// Scalar objective for annealing acceptance (exact on these integer
  /// ranges: rounds <= ~1e4, rand_bits <= ~1e9, delivered <= ~1e8).
  double scalar() const {
    return 1e12 * static_cast<double>(rounds_to_decide) +
           1e2 * static_cast<double>(rand_bits) -
           static_cast<double>(delivered);
  }

  std::string to_string() const;
};

/// Compute the Score of a loaded trace (either storage format).
Score score_trace(const trace::TraceData& t);

/// Write an executed run back down as a Schedule: every kCorrupt event
/// becomes a c-op, every kDrop a d-op. Because the engine is deterministic
/// and the extracted ops reproduce the original interventions exactly,
/// replaying the result through a ScheduleAdversary regenerates the
/// original trace byte for byte — which is how the search seeds itself
/// from an analytic strategy and inherits its score as the floor.
adversary::Schedule extract_schedule(const trace::TraceData& t);

}  // namespace omx::advsearch
