// Explicit intervention schedules: the adversary-as-data representation
// behind the omxadv search loop (src/advsearch/).
//
// Every hand-written strategy in strategies.h decides *online* what to
// corrupt and drop; a Schedule is the same power written down — a flat,
// ordered list of (round, action) operations that a ScheduleAdversary
// replays verbatim. That makes an adversary a *genome*: the search loop
// mutates the op list, the engine replays it deterministically, and the
// legality firewall (sim/adversary.h + the runner's audit) judges it.
//
// Honesty contract: a ScheduleAdversary NEVER clips an illegal op into a
// legal one. A corrupt beyond budget t, a silence of an uncorrupted
// process, or a drop between two uncorrupted endpoints throws
// AdversaryViolation exactly like a hand-written strategy would — the
// search counts the candidate as rejected instead of quietly scoring a
// weaker schedule it did not actually evaluate.
//
// Text form (one line, comma-separated; the .state-file and CLI format):
//   c<round>.<p>          corrupt p at the start of round (sticky)
//   s<round>.<p>          silence p for that round only (all its links)
//   d<round>.<from>.<to>  drop every from->to message in that round
// e.g. "c0.3,s0.3,d2.3.7". normalize() sorts ops into replay order —
// within a round corrupts apply before silences before drops, so a genome
// that corrupts and immediately exploits the corruption is one round's
// worth of ops, not an ordering puzzle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "sim/adversary.h"
#include "support/check.h"

namespace omx::adversary {

struct ScheduleOp {
  enum class Kind : std::uint8_t { Corrupt = 0, Silence = 1, Drop = 2 };
  Kind kind = Kind::Corrupt;
  std::uint32_t round = 0;
  std::uint32_t a = 0;  // the process (corrupt/silence) or the sender (drop)
  std::uint32_t b = 0;  // the receiver (drop only; 0 otherwise)

  friend bool operator==(const ScheduleOp&, const ScheduleOp&) = default;
  // Replay order: by round, corrupts first, then by endpoints — the
  // canonical form normalize() establishes and to_string() serializes.
  friend bool operator<(const ScheduleOp& x, const ScheduleOp& y) {
    return std::tie(x.round, x.kind, x.a, x.b) <
           std::tie(y.round, y.kind, y.a, y.b);
  }
};

struct Schedule {
  std::vector<ScheduleOp> ops;

  friend bool operator==(const Schedule&, const Schedule&) = default;

  /// Canonical replay order + duplicate removal. Idempotent; parse() and
  /// every mutation in the search loop call it, so two schedules are equal
  /// iff their text forms are equal.
  void normalize() {
    std::sort(ops.begin(), ops.end());
    ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  }

  /// Number of distinct processes the schedule corrupts — the genome's
  /// claim against the omission budget t.
  std::uint32_t corrupt_count() const {
    std::vector<std::uint32_t> ps;
    for (const ScheduleOp& op : ops) {
      if (op.kind == ScheduleOp::Kind::Corrupt) ps.push_back(op.a);
    }
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
    return static_cast<std::uint32_t>(ps.size());
  }

  std::string to_string() const {
    std::string out;
    for (const ScheduleOp& op : ops) {
      if (!out.empty()) out.push_back(',');
      switch (op.kind) {
        case ScheduleOp::Kind::Corrupt:
          out += "c" + std::to_string(op.round) + "." + std::to_string(op.a);
          break;
        case ScheduleOp::Kind::Silence:
          out += "s" + std::to_string(op.round) + "." + std::to_string(op.a);
          break;
        case ScheduleOp::Kind::Drop:
          out += "d" + std::to_string(op.round) + "." + std::to_string(op.a) +
                 "." + std::to_string(op.b);
          break;
      }
    }
    return out;
  }

  /// Parse the text form (empty string = empty schedule). Returns false
  /// with *error set on malformed input; the result is normalized.
  static bool parse(const std::string& text, Schedule* out,
                    std::string* error) {
    Schedule s;
    std::size_t pos = 0;
    const auto fail = [&](const std::string& msg) {
      if (error) *error = msg;
      return false;
    };
    while (pos < text.size()) {
      const std::size_t end = std::min(text.find(',', pos), text.size());
      const std::string tok = text.substr(pos, end - pos);
      pos = end + 1;
      if (tok.empty()) return fail("empty schedule op");
      ScheduleOp op;
      unsigned fields = 2;
      switch (tok[0]) {
        case 'c': op.kind = ScheduleOp::Kind::Corrupt; break;
        case 's': op.kind = ScheduleOp::Kind::Silence; break;
        case 'd':
          op.kind = ScheduleOp::Kind::Drop;
          fields = 3;
          break;
        default:
          return fail("bad schedule op '" + tok +
                      "' (want c<r>.<p>, s<r>.<p> or d<r>.<from>.<to>)");
      }
      std::uint32_t vals[3] = {0, 0, 0};
      std::size_t tp = 1;
      for (unsigned f = 0; f < fields; ++f) {
        if (f > 0) {
          if (tp >= tok.size() || tok[tp] != '.') {
            return fail("bad schedule op '" + tok + "' (missing '.')");
          }
          ++tp;
        }
        if (tp >= tok.size() || tok[tp] < '0' || tok[tp] > '9') {
          return fail("bad schedule op '" + tok + "' (expected a number)");
        }
        std::uint64_t v = 0;
        while (tp < tok.size() && tok[tp] >= '0' && tok[tp] <= '9') {
          v = v * 10 + static_cast<std::uint64_t>(tok[tp] - '0');
          if (v > 0xffffffffull) {
            return fail("bad schedule op '" + tok + "' (value too large)");
          }
          ++tp;
        }
        vals[f] = static_cast<std::uint32_t>(v);
      }
      if (tp != tok.size()) {
        return fail("bad schedule op '" + tok + "' (trailing characters)");
      }
      op.round = vals[0];
      op.a = vals[1];
      op.b = fields == 3 ? vals[2] : 0;
      s.ops.push_back(op);
    }
    s.normalize();
    *out = s;
    return true;
  }
};

/// Replays a Schedule verbatim, one round at a time. Ops are pre-sorted by
/// round (normalize()), so intervene() walks a cursor instead of scanning.
template <class P>
class ScheduleAdversary final : public sim::Adversary<P> {
 public:
  explicit ScheduleAdversary(Schedule schedule)
      : schedule_(std::move(schedule)) {
    schedule_.normalize();
  }

  void intervene(sim::AdversaryContext<P>& ctx) override {
    // Rounds ascend within a run (a fresh adversary is built per replay),
    // so a cursor over the sorted ops visits each exactly once, at its own
    // round. Ops scheduled past the run's last round simply never fire —
    // they are legal no-op genes, not errors.
    silenced_.clear();
    drops_.clear();
    for (; next_ < schedule_.ops.size() &&
           schedule_.ops[next_].round <= ctx.round();
         ++next_) {
      const ScheduleOp& op = schedule_.ops[next_];
      switch (op.kind) {
        case ScheduleOp::Kind::Corrupt:
          // corrupt() returning false means the budget is spent: an
          // over-budget genome is illegal, not silently truncated.
          if (!ctx.corrupt(op.a)) {
            throw AdversaryViolation(
                "schedule: corrupt p" + std::to_string(op.a) + " at round " +
                std::to_string(op.round) + " exceeds the omission budget (" +
                std::to_string(ctx.num_corrupted()) + " already corrupted)");
          }
          break;
        case ScheduleOp::Kind::Silence:
          silenced_.push_back(op.a);
          break;
        case ScheduleOp::Kind::Drop:
          drops_.push_back((std::uint64_t{op.a} << 32) | op.b);
          break;
      }
    }
    // Silences then drops, as one union'd wire scan each — both throw
    // AdversaryViolation through drop_where if an uncorrupted endpoint
    // sneaks in, which is exactly what rejects an illegal mutant.
    if (!silenced_.empty()) ctx.silence_many(silenced_);
    if (!drops_.empty()) {
      std::sort(drops_.begin(), drops_.end());
      ctx.drop_where([this](sim::ProcessId from, sim::ProcessId to) {
        return std::binary_search(drops_.begin(), drops_.end(),
                                  (std::uint64_t{from} << 32) | to);
      });
    }
  }

  const Schedule& schedule() const { return schedule_; }

 private:
  Schedule schedule_;
  std::size_t next_ = 0;
  std::vector<sim::ProcessId> silenced_;
  std::vector<std::uint64_t> drops_;
};

}  // namespace omx::adversary
