// State probes: the "full information" part of the adversary.
//
// In the paper's model the adversary sees the states of all processes at all
// times. Concretely, machines that want to be attackable by state-aware
// strategies implement a probe interface; the experiment wires the probe
// into the adversary at setup. (Payload inspection is already available to
// every adversary through AdversaryContext::messages().)
#pragma once

#include <cstdint>

#include "sim/message.h"

namespace omx::adversary {

/// Exposed by voting-style consensus machines (Algorithm 1, the Ben-Or-style
/// baseline, Algorithm 4): enough state for the Theorem-2 coin-hiding
/// strategy to keep the execution near the decision boundary.
class VoteProbe {
 public:
  virtual ~VoteProbe() = default;

  virtual std::uint32_t probe_num_processes() const = 0;
  /// Current candidate value b_p of process p.
  virtual std::uint8_t probe_value(sim::ProcessId p) const = 0;
  /// Whether p still participates in voting (operative and undecided).
  virtual bool probe_counts_in_vote(sim::ProcessId p) const = 0;
  /// True in rounds where candidate values were just (re)computed — the
  /// moment the coin-flipping game of Appendix C is played.
  virtual bool probe_votes_fresh() const = 0;
};

}  // namespace omx::adversary
