// Concrete adversary strategies.
//
// All strategies are payload-generic templates: they act on message
// endpoints and (optionally) on machine state via probes, never on payload
// internals, so every strategy composes with every protocol.
//
//   NullAdversary          — benign network.
//   StaticCrashAdversary   — scripted crash schedule (crash ⊂ omission §2).
//   RandomOmissionAdversary— corrupt a random set up-front, drop each of
//                            their messages i.i.d. with probability q.
//   SplitBrainAdversary    — corrupted senders are heard by only half the
//                            network: maximizes count divergence across
//                            receivers (the attack §B.3 says breaks
//                            crash-model doubling/counting schemes).
//   GroupKillerAdversary   — concentrates corruption on whole √n-groups and
//                            silences them (stresses GroupBitsAggregation).
//   CoinHidingAdversary    — the Theorem 2 strategy: full-information, sees
//                            freshly drawn votes, silences ~√(r·log n)
//                            processes per voting step to keep the global
//                            count inside the algorithm's dead zone.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "adversary/probes.h"
#include "rng/ledger.h"
#include "sim/adversary.h"
#include "support/bits.h"
#include "support/prng.h"

namespace omx::adversary {

template <class P>
class NullAdversary final : public sim::Adversary<P> {
 public:
  void intervene(sim::AdversaryContext<P>&) override {}
};

/// Crash process p at round r: from round r on, all of p's messages (both
/// directions) are omitted. A legal omission strategy (see §2).
template <class P>
class StaticCrashAdversary final : public sim::Adversary<P> {
 public:
  struct Crash {
    sim::ProcessId process;
    std::uint32_t round;
  };

  explicit StaticCrashAdversary(std::vector<Crash> schedule)
      : schedule_(std::move(schedule)) {}

  void intervene(sim::AdversaryContext<P>& ctx) override {
    due_.clear();
    for (const Crash& c : schedule_) {
      if (ctx.round() >= c.round && ctx.corrupt(c.process)) {
        due_.push_back(c.process);
      }
    }
    ctx.silence_many(due_);
  }

 private:
  std::vector<Crash> schedule_;
  std::vector<sim::ProcessId> due_;
};

/// Which side of a faulty process's links the adversary attacks. The paper
/// studies *general* omissions (both); send-/receive-only are the weaker
/// classical variants (cf. [33], [34]) — useful as ablations.
enum class OmissionMode { General, SendOnly, ReceiveOnly };

/// Corrupt `num_faulty` uniformly chosen processes up-front; each message on
/// their links is dropped i.i.d. with probability `drop_prob`.
template <class P>
class RandomOmissionAdversary final : public sim::Adversary<P> {
 public:
  RandomOmissionAdversary(std::uint32_t n, std::uint32_t num_faulty,
                          double drop_prob, std::uint64_t seed,
                          OmissionMode mode = OmissionMode::General)
      : drop_prob_(drop_prob), mode_(mode), gen_(seed) {
    std::vector<sim::ProcessId> ids(n);
    for (std::uint32_t i = 0; i < n; ++i) ids[i] = i;
    for (std::uint32_t i = 0; i < num_faulty && i < n; ++i) {
      const auto j = i + static_cast<std::uint32_t>(gen_.below(n - i));
      std::swap(ids[i], ids[j]);
      faulty_.push_back(ids[i]);
    }
  }

  void intervene(sim::AdversaryContext<P>& ctx) override {
    if (!corrupted_done_) {
      for (auto p : faulty_) ctx.corrupt(p);
      corrupted_done_ = true;
    }
    // Sharded candidate scan + serial coin consumption: the bernoulli
    // stream is drawn per *attackable* message in ascending index order,
    // exactly as the old serial loop did, at every thread count.
    const OmissionMode mode = mode_;
    ctx.scan_messages(
        [&ctx, mode](sim::ProcessId from, sim::ProcessId to) {
          if (from == to) return false;
          return mode == OmissionMode::General
                     ? (ctx.is_corrupted(from) || ctx.is_corrupted(to))
                     : (mode == OmissionMode::SendOnly
                            ? ctx.is_corrupted(from)
                            : ctx.is_corrupted(to));
        },
        [&](std::size_t i, sim::ProcessId, sim::ProcessId) {
          if (gen_.bernoulli(drop_prob_)) ctx.drop(i);
        });
  }

 private:
  double drop_prob_;
  OmissionMode mode_;
  Xoshiro256 gen_;
  std::vector<sim::ProcessId> faulty_;
  bool corrupted_done_ = false;
};

/// Corrupted senders deliver only to the lower half of the id space, and
/// receive only from it — two halves of the network see inconsistent counts.
template <class P>
class SplitBrainAdversary final : public sim::Adversary<P> {
 public:
  SplitBrainAdversary(std::uint32_t n, std::vector<sim::ProcessId> faulty)
      : half_(n / 2), faulty_(std::move(faulty)) {}

  void intervene(sim::AdversaryContext<P>& ctx) override {
    if (!corrupted_done_) {
      for (auto p : faulty_) ctx.corrupt(p);
      corrupted_done_ = true;
    }
    // Corrupted endpoints talk only to/fro the lower half.
    const std::uint32_t half = half_;
    ctx.drop_where([&ctx, half](sim::ProcessId from, sim::ProcessId to) {
      return (ctx.is_corrupted(from) && to >= half) ||
             (ctx.is_corrupted(to) && from >= half);
    });
  }

 private:
  std::uint32_t half_;
  std::vector<sim::ProcessId> faulty_;
  bool corrupted_done_ = false;
};

/// Receive-starvation: corrupt the given victims and drop EVERY message
/// addressed to them. Against crash-amortized "double your contacts when
/// responses go missing" schemes this is the §B.3 attack: each victim
/// escalates to interrogating the entire network, forever, at Θ(n)
/// messages per round — while the victims' own (counted!) traffic keeps
/// flowing out.
template <class P>
class StarveReceiversAdversary final : public sim::Adversary<P> {
 public:
  explicit StarveReceiversAdversary(std::vector<sim::ProcessId> victims)
      : victims_(std::move(victims)) {}

  void intervene(sim::AdversaryContext<P>& ctx) override {
    if (!corrupted_done_) {
      for (auto p : victims_) ctx.corrupt(p);
      corrupted_done_ = true;
    }
    ctx.drop_where([&ctx](sim::ProcessId, sim::ProcessId to) {
      return ctx.is_corrupted(to);
    });
  }

 private:
  std::vector<sim::ProcessId> victims_;
  bool corrupted_done_ = false;
};

/// Fuzzing strategy: a seeded random walk over the space of LEGAL
/// adversarial actions — each round it may corrupt a fresh random process
/// (within budget) and drops each message on a faulty link with a
/// per-round random probability. No strategy in particular, every strategy
/// in expectation: used by the property suites to sweep behaviours the
/// named strategies would miss.
template <class P>
class ChaosAdversary final : public sim::Adversary<P> {
 public:
  ChaosAdversary(std::uint32_t n, std::uint64_t seed, double corrupt_rate = 0.1)
      : n_(n), corrupt_rate_(corrupt_rate), gen_(seed) {}

  void intervene(sim::AdversaryContext<P>& ctx) override {
    if (ctx.remaining_budget() > 0 && gen_.bernoulli(corrupt_rate_)) {
      ctx.corrupt(static_cast<sim::ProcessId>(gen_.below(n_)));
    }
    const double drop_prob = gen_.uniform01();  // fresh malice every round
    ctx.scan_messages(
        [&ctx](sim::ProcessId from, sim::ProcessId to) {
          return from != to &&
                 (ctx.is_corrupted(from) || ctx.is_corrupted(to));
        },
        [&](std::size_t i, sim::ProcessId, sim::ProcessId) {
          if (gen_.bernoulli(drop_prob)) ctx.drop(i);
        });
  }

 private:
  std::uint32_t n_;
  double corrupt_rate_;
  Xoshiro256 gen_;
};

/// Silence whole groups of the provided partition, greedily from the first,
/// as far as the budget allows. Stresses intra-group counting.
template <class P>
class GroupKillerAdversary final : public sim::Adversary<P> {
 public:
  explicit GroupKillerAdversary(std::vector<std::vector<sim::ProcessId>> groups)
      : groups_(std::move(groups)) {}

  void intervene(sim::AdversaryContext<P>& ctx) override {
    if (!picked_) {
      // Fill the whole budget, concentrated on as few groups as possible
      // (a partial last group is fine — the point is to starve the
      // intra-group counting of whole √n-groups at once).
      for (const auto& g : groups_) {
        for (auto p : g) {
          if (ctx.remaining_budget() == 0) break;
          if (ctx.corrupt(p)) victims_.push_back(p);
        }
        if (ctx.remaining_budget() == 0) break;
      }
      picked_ = true;
    }
    ctx.silence_many(victims_);
  }

 private:
  std::vector<std::vector<sim::ProcessId>> groups_;
  std::vector<sim::ProcessId> victims_;
  bool picked_ = false;
};

/// Theorem-2 strategy. Whenever the probed machine reports fresh votes, the
/// adversary counts 1-votes among participating processes and silences up to
/// allowance(r) = ceil(hide_factor * sqrt(max(r,1) * log2 n)) + 1 processes
/// whose values would push the global fraction of ones out of
/// [lo_frac, hi_frac] — the biased-majority dead zone — where r is the
/// number of random-source calls made this round (from the ledger).
template <class P>
class CoinHidingAdversary final : public sim::Adversary<P> {
 public:
  struct Config {
    double lo_frac = 0.5;       // dead zone lower edge (15/30)
    double hi_frac = 0.6;       // dead zone upper edge (18/30)
    double hide_factor = 2.0;   // the paper's 16 is a proof constant
  };

  CoinHidingAdversary(const VoteProbe* probe, const rng::Ledger* ledger,
                      Config config = {})
      : probe_(probe), ledger_(ledger), config_(config) {}

  void intervene(sim::AdversaryContext<P>& ctx) override {
    // Crash-style follow-through on earlier victims.
    ctx.silence_many(silenced_);
    // Act whenever votes were just recomputed — including round 0, where
    // the "votes" are the input bits (the adversary of Appendix C plays the
    // coin-flipping game from the very first round).
    if (!probe_->probe_votes_fresh() && ctx.round() != 0) return;

    const std::uint32_t n = probe_->probe_num_processes();
    std::uint64_t ones = 0, total = 0;
    for (sim::ProcessId p = 0; p < n; ++p) {
      if (ctx.is_corrupted(p) || !probe_->probe_counts_in_vote(p)) continue;
      ++total;
      ones += probe_->probe_value(p);
    }
    if (total == 0) return;

    const std::uint64_t r = ledger_->calls_this_window();
    const double logn = std::max(1.0, std::log2(static_cast<double>(n)));
    auto allowance = static_cast<std::uint32_t>(
        std::ceil(config_.hide_factor *
                  std::sqrt(static_cast<double>(std::max<std::uint64_t>(r, 1)) *
                            logn)) +
        1);

    // Silencing a 1-voter: ones-1, total-1. Silencing a 0-voter: total-1.
    // Greedily pull the fraction back inside (lo, hi).
    auto frac = [&]() {
      return static_cast<double>(ones) / static_cast<double>(total);
    };
    std::uint8_t victim_value;
    if (frac() > config_.hi_frac) victim_value = 1;
    else if (frac() < config_.lo_frac) victim_value = 0;
    else return;

    std::uint32_t used = 0;
    for (sim::ProcessId p = 0; p < n && used < allowance; ++p) {
      const bool inside =
          frac() >= config_.lo_frac && frac() <= config_.hi_frac;
      if (inside || total <= 1) break;
      if (ctx.is_corrupted(p) || !probe_->probe_counts_in_vote(p)) continue;
      if (probe_->probe_value(p) != victim_value) continue;
      if (!ctx.corrupt(p)) break;  // budget exhausted
      silenced_.push_back(p);
      ctx.silence(p);
      ++used;
      total -= 1;
      if (victim_value == 1) ones -= 1;
    }
  }

  std::uint32_t victims() const {
    return static_cast<std::uint32_t>(silenced_.size());
  }

 private:
  const VoteProbe* probe_;
  const rng::Ledger* ledger_;
  Config config_;
  std::vector<sim::ProcessId> silenced_;
};

}  // namespace omx::adversary
