// Recorder — a transparent adversary decorator that captures a per-round
// trace (message/bit/omission counts, corruption growth) while delegating
// all decisions to an inner adversary. Zero interference: wrapping
// NullAdversary gives a pure wiretap of a benign execution.
//
// The rows are a thin aggregation view over the message plane's seal-time
// accounting caches (AdversaryContext::wire_bits / num_dropped): reading a
// round costs O(messages/64) for the drop popcount, not the O(messages)
// payload rescan the pre-trace Recorder did. The identical per-round rows
// can be reconstructed offline from an event trace with
// trace::envelopes() / `omxtrace stats` (asserted in tests/trace_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/adversary.h"

namespace omx::adversary {

struct RoundTrace {
  std::uint32_t round = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t omitted = 0;
  std::uint32_t corrupted = 0;  // cumulative, at end of the round
};

template <class P>
class Recorder final : public sim::Adversary<P> {
 public:
  /// Wrap `inner` (not owned; may be nullptr for a pure wiretap).
  explicit Recorder(sim::Adversary<P>* inner) : inner_(inner) {}

  void intervene(sim::AdversaryContext<P>& ctx) override {
    if (inner_ != nullptr) inner_->intervene(ctx);
    RoundTrace tr;
    tr.round = ctx.round();
    tr.messages = ctx.num_messages();
    tr.bits = ctx.wire_bits();
    tr.omitted = ctx.num_dropped();
    tr.corrupted = ctx.num_corrupted();
    trace_.push_back(tr);
  }

  const std::vector<RoundTrace>& trace() const { return trace_; }

  /// Sum of a field across the trace.
  std::uint64_t total_messages() const {
    std::uint64_t s = 0;
    for (const auto& t : trace_) s += t.messages;
    return s;
  }
  std::uint64_t total_bits() const {
    std::uint64_t s = 0;
    for (const auto& t : trace_) s += t.bits;
    return s;
  }
  std::uint64_t total_omitted() const {
    std::uint64_t s = 0;
    for (const auto& t : trace_) s += t.omitted;
    return s;
  }
  /// Round with the largest bit volume (hot spot).
  RoundTrace peak_bits_round() const {
    RoundTrace best;
    for (const auto& t : trace_) {
      if (t.bits >= best.bits) best = t;
    }
    return best;
  }

 private:
  sim::Adversary<P>* inner_;
  std::vector<RoundTrace> trace_;
};

}  // namespace omx::adversary
