// Exhaustive valency exploration (paper Appendix C, Lemma 13).
//
// The lower-bound proof classifies protocol states by *valency*: which
// decisions an adversary can still force. For randomized algorithms that is
// probabilistic, but its deterministic skeleton can be verified exhaustively
// on small instances: we model the deterministic flood-set protocol under a
// crash adversary (the fault type Theorem 2's proof uses — crashes are a
// special case of omissions, §2) and enumerate EVERY adversarial strategy:
//
//   * per round, the adversary may crash any subset of alive processes
//     within the budget t, choosing for each crash which recipients still
//     receive that process's final message (the classic partial-delivery
//     crash semantics);
//   * after t+1 rounds every surviving process decides the majority of its
//     collected (id, input) pairs (ties -> 0).
//
// The explorer returns, for a given input assignment: whether *all*
// strategies preserve agreement and validity (an exhaustive model check of
// the fallback protocol), and which decisions are achievable — i.e. the
// assignment's valency. Lemma 13's deterministic analog is then checkable:
// some assignment is bivalent whenever n >= 2 and t >= 1.
#pragma once

#include <cstdint>
#include <vector>

namespace omx::valency {

struct GameConfig {
  std::uint32_t n = 3;
  std::uint32_t t = 1;
  /// Rounds before deciding; 0 = the protocol's t+1.
  std::uint32_t rounds = 0;
};

struct ExploreResult {
  bool agreement = true;   // every strategy: all survivors decide alike
  bool validity = true;    // unanimous non-faulty inputs force that value
  bool can_decide_0 = false;
  bool can_decide_1 = false;
  std::uint64_t strategies = 0;   // leaves of the adversary game tree
  std::uint64_t states = 0;       // distinct explored states (memoized)

  bool bivalent() const { return can_decide_0 && can_decide_1; }
  bool univalent() const { return can_decide_0 != can_decide_1; }
};

/// Explore every adversary strategy for the flood-set game on `inputs`.
/// Practical limits: n <= 5, t <= 2 (the action space is exponential).
ExploreResult explore(const GameConfig& config,
                      const std::vector<std::uint8_t>& inputs);

struct ValencyCensus {
  std::uint32_t univalent_0 = 0;  // assignments that can only decide 0
  std::uint32_t univalent_1 = 0;
  std::uint32_t bivalent = 0;
  bool all_agree = true;
  bool all_valid = true;
};

/// Classify all 2^n input assignments (Lemma 13 census).
ValencyCensus census(const GameConfig& config);

}  // namespace omx::valency
