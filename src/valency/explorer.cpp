#include "valency/explorer.h"

#include <bit>
#include <unordered_map>

#include "support/check.h"

namespace omx::valency {

namespace {

constexpr std::uint32_t kMaxN = 5;

struct Game {
  std::uint32_t n;
  std::uint32_t t;
  std::uint32_t rounds;
  std::uint32_t all_mask;
  std::vector<std::uint8_t> inputs;

  // Memo: state key -> result bits (bit0 can0, bit1 can1, bit2 violation).
  std::unordered_map<std::uint64_t, std::uint8_t> memo;
  std::uint64_t leaves = 0;

  struct State {
    std::uint32_t round = 0;
    std::uint32_t crashed = 0;              // bitmask
    std::uint32_t known[kMaxN] = {0};       // per process: ids known
  };

  std::uint64_t key(const State& s) const {
    std::uint64_t k = s.round;
    k = k * (all_mask + 2) + s.crashed;
    for (std::uint32_t p = 0; p < n; ++p) {
      k = k * (all_mask + 2) + s.known[p];
    }
    return k;
  }

  std::uint8_t decide(std::uint32_t known_mask) const {
    std::uint32_t ones = 0, zeros = 0;
    for (std::uint32_t id = 0; id < n; ++id) {
      if (known_mask & (1u << id)) {
        if (inputs[id]) ++ones;
        else ++zeros;
      }
    }
    return ones > zeros ? 1 : 0;
  }

  std::uint8_t leaf(const State& s) {
    ++leaves;
    std::int8_t decision = -1;
    std::uint8_t bits = 0;
    for (std::uint32_t p = 0; p < n; ++p) {
      if (s.crashed & (1u << p)) continue;  // crashed: no obligation
      const std::uint8_t d = decide(s.known[p]);
      if (decision < 0) decision = static_cast<std::int8_t>(d);
      else if (decision != d) bits |= 4;  // agreement violation
    }
    OMX_CHECK(decision >= 0, "no survivor (t < n should guarantee one)");
    bits |= decision == 0 ? 1 : 2;
    return bits;
  }

  /// Apply one round: `crash_now` processes stop after this round; process
  /// p in crash_now delivers only to recipients in masks[p].
  State step(const State& s, std::uint32_t crash_now,
             const std::uint32_t* masks) const {
    State next = s;
    next.round = s.round + 1;
    next.crashed = s.crashed | crash_now;
    for (std::uint32_t sender = 0; sender < n; ++sender) {
      if (s.crashed & (1u << sender)) continue;  // already silent
      const bool crashing = (crash_now & (1u << sender)) != 0;
      const std::uint32_t recipients =
          crashing ? masks[sender] : (all_mask & ~(1u << sender));
      for (std::uint32_t q = 0; q < n; ++q) {
        if (recipients & (1u << q)) next.known[q] |= s.known[sender];
      }
    }
    return next;
  }

  std::uint8_t explore_state(const State& s) {
    if (s.round == rounds) return leaf(s);
    const std::uint64_t k = key(s);
    if (const auto it = memo.find(k); it != memo.end()) return it->second;

    std::uint8_t bits = 0;
    const std::uint32_t budget = t - std::popcount(s.crashed);
    const std::uint32_t alive = all_mask & ~s.crashed;

    // Enumerate crash subsets of `alive` with |subset| <= budget, and for
    // each crashing process every recipient mask.
    for (std::uint32_t subset = 0;; subset = (subset - alive) & alive) {
      // (subset iterates over all submasks of `alive`, including 0.)
      if (static_cast<std::uint32_t>(std::popcount(subset)) <= budget) {
        bits |= explore_masks(s, subset);
      }
      if (subset == alive) break;
    }
    memo.emplace(k, bits);
    return bits;
  }

  /// Recursively choose a delivery mask for every process in `subset`.
  std::uint8_t explore_masks(const State& s, std::uint32_t subset) {
    std::uint32_t masks[kMaxN] = {0};
    return explore_masks_rec(s, subset, 0, masks);
  }

  std::uint8_t explore_masks_rec(const State& s, std::uint32_t subset,
                                 std::uint32_t from, std::uint32_t* masks) {
    std::uint32_t p = from;
    while (p < n && !(subset & (1u << p))) ++p;
    if (p == n) {
      return explore_state(step(s, subset, masks));
    }
    std::uint8_t bits = 0;
    const std::uint32_t others = all_mask & ~(1u << p);
    for (std::uint32_t m = 0;; m = (m - others) & others) {
      masks[p] = m;
      bits |= explore_masks_rec(s, subset, p + 1, masks);
      if (m == others) break;
    }
    return bits;
  }
};

}  // namespace

ExploreResult explore(const GameConfig& config,
                      const std::vector<std::uint8_t>& inputs) {
  OMX_REQUIRE(config.n >= 2 && config.n <= kMaxN,
              "explorer supports 2 <= n <= 5");
  OMX_REQUIRE(config.t < config.n, "need at least one survivor");
  OMX_REQUIRE(inputs.size() == config.n, "one input bit per process");

  Game game;
  game.n = config.n;
  game.t = config.t;
  game.rounds = config.rounds ? config.rounds : config.t + 1;
  game.all_mask = (1u << config.n) - 1;
  game.inputs = inputs;

  Game::State init;
  for (std::uint32_t p = 0; p < config.n; ++p) init.known[p] = 1u << p;

  const std::uint8_t bits = game.explore_state(init);

  ExploreResult res;
  res.can_decide_0 = (bits & 1) != 0;
  res.can_decide_1 = (bits & 2) != 0;
  res.agreement = (bits & 4) == 0;
  res.strategies = game.leaves;
  res.states = game.memo.size();

  bool unanimous = true;
  for (std::uint8_t b : inputs) unanimous &= (b == inputs[0]);
  res.validity = !unanimous ||
                 (inputs[0] == 1 ? !res.can_decide_0 : !res.can_decide_1);
  return res;
}

ValencyCensus census(const GameConfig& config) {
  ValencyCensus out;
  for (std::uint32_t assignment = 0; assignment < (1u << config.n);
       ++assignment) {
    std::vector<std::uint8_t> inputs(config.n);
    for (std::uint32_t p = 0; p < config.n; ++p) {
      inputs[p] = (assignment >> p) & 1;
    }
    const auto r = explore(config, inputs);
    out.all_agree &= r.agreement;
    out.all_valid &= r.validity;
    if (r.bivalent()) ++out.bivalent;
    else if (r.can_decide_0) ++out.univalent_0;
    else ++out.univalent_1;
  }
  return out;
}

}  // namespace omx::valency
