
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ledger_replication.cpp" "examples/CMakeFiles/ledger_replication.dir/ledger_replication.cpp.o" "gcc" "examples/CMakeFiles/ledger_replication.dir/ledger_replication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_groups.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_coinflip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_valency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_expsup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
