# Empty dependencies file for ledger_replication.
# This may be replaced when dependencies are built.
