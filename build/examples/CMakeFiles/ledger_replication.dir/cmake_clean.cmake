file(REMOVE_RECURSE
  "CMakeFiles/ledger_replication.dir/ledger_replication.cpp.o"
  "CMakeFiles/ledger_replication.dir/ledger_replication.cpp.o.d"
  "ledger_replication"
  "ledger_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledger_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
