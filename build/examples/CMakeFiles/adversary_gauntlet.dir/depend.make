# Empty dependencies file for adversary_gauntlet.
# This may be replaced when dependencies are built.
