file(REMOVE_RECURSE
  "CMakeFiles/adversary_gauntlet.dir/adversary_gauntlet.cpp.o"
  "CMakeFiles/adversary_gauntlet.dir/adversary_gauntlet.cpp.o.d"
  "adversary_gauntlet"
  "adversary_gauntlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_gauntlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
