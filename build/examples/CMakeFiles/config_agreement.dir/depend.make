# Empty dependencies file for config_agreement.
# This may be replaced when dependencies are built.
