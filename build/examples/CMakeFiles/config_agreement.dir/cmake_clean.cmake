file(REMOVE_RECURSE
  "CMakeFiles/config_agreement.dir/config_agreement.cpp.o"
  "CMakeFiles/config_agreement.dir/config_agreement.cpp.o.d"
  "config_agreement"
  "config_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
