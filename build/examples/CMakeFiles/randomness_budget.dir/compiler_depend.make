# Empty compiler generated dependencies file for randomness_budget.
# This may be replaced when dependencies are built.
