file(REMOVE_RECURSE
  "CMakeFiles/randomness_budget.dir/randomness_budget.cpp.o"
  "CMakeFiles/randomness_budget.dir/randomness_budget.cpp.o.d"
  "randomness_budget"
  "randomness_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomness_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
