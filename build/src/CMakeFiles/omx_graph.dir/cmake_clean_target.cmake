file(REMOVE_RECURSE
  "libomx_graph.a"
)
