file(REMOVE_RECURSE
  "CMakeFiles/omx_graph.dir/graph/comm_graph.cpp.o"
  "CMakeFiles/omx_graph.dir/graph/comm_graph.cpp.o.d"
  "CMakeFiles/omx_graph.dir/graph/validate.cpp.o"
  "CMakeFiles/omx_graph.dir/graph/validate.cpp.o.d"
  "libomx_graph.a"
  "libomx_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
