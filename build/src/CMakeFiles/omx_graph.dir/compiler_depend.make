# Empty compiler generated dependencies file for omx_graph.
# This may be replaced when dependencies are built.
