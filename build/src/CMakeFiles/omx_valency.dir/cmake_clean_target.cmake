file(REMOVE_RECURSE
  "libomx_valency.a"
)
