# Empty dependencies file for omx_valency.
# This may be replaced when dependencies are built.
