file(REMOVE_RECURSE
  "CMakeFiles/omx_valency.dir/valency/explorer.cpp.o"
  "CMakeFiles/omx_valency.dir/valency/explorer.cpp.o.d"
  "libomx_valency.a"
  "libomx_valency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_valency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
