file(REMOVE_RECURSE
  "libomx_groups.a"
)
