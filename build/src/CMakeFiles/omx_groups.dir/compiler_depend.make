# Empty compiler generated dependencies file for omx_groups.
# This may be replaced when dependencies are built.
