# Empty dependencies file for omx_groups.
# This may be replaced when dependencies are built.
