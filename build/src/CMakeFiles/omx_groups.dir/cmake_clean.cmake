file(REMOVE_RECURSE
  "CMakeFiles/omx_groups.dir/groups/partition.cpp.o"
  "CMakeFiles/omx_groups.dir/groups/partition.cpp.o.d"
  "CMakeFiles/omx_groups.dir/groups/tree.cpp.o"
  "CMakeFiles/omx_groups.dir/groups/tree.cpp.o.d"
  "libomx_groups.a"
  "libomx_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
