file(REMOVE_RECURSE
  "CMakeFiles/omx_core.dir/core/messages.cpp.o"
  "CMakeFiles/omx_core.dir/core/messages.cpp.o.d"
  "CMakeFiles/omx_core.dir/core/multi_value.cpp.o"
  "CMakeFiles/omx_core.dir/core/multi_value.cpp.o.d"
  "CMakeFiles/omx_core.dir/core/optimal_core.cpp.o"
  "CMakeFiles/omx_core.dir/core/optimal_core.cpp.o.d"
  "CMakeFiles/omx_core.dir/core/param_consensus.cpp.o"
  "CMakeFiles/omx_core.dir/core/param_consensus.cpp.o.d"
  "CMakeFiles/omx_core.dir/core/params.cpp.o"
  "CMakeFiles/omx_core.dir/core/params.cpp.o.d"
  "libomx_core.a"
  "libomx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
