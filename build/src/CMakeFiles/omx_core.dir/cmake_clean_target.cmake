file(REMOVE_RECURSE
  "libomx_core.a"
)
