
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/messages.cpp" "src/CMakeFiles/omx_core.dir/core/messages.cpp.o" "gcc" "src/CMakeFiles/omx_core.dir/core/messages.cpp.o.d"
  "/root/repo/src/core/multi_value.cpp" "src/CMakeFiles/omx_core.dir/core/multi_value.cpp.o" "gcc" "src/CMakeFiles/omx_core.dir/core/multi_value.cpp.o.d"
  "/root/repo/src/core/optimal_core.cpp" "src/CMakeFiles/omx_core.dir/core/optimal_core.cpp.o" "gcc" "src/CMakeFiles/omx_core.dir/core/optimal_core.cpp.o.d"
  "/root/repo/src/core/param_consensus.cpp" "src/CMakeFiles/omx_core.dir/core/param_consensus.cpp.o" "gcc" "src/CMakeFiles/omx_core.dir/core/param_consensus.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/omx_core.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/omx_core.dir/core/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_groups.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
