# Empty compiler generated dependencies file for omx_rng.
# This may be replaced when dependencies are built.
