file(REMOVE_RECURSE
  "CMakeFiles/omx_rng.dir/rng/ledger.cpp.o"
  "CMakeFiles/omx_rng.dir/rng/ledger.cpp.o.d"
  "libomx_rng.a"
  "libomx_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
