file(REMOVE_RECURSE
  "libomx_rng.a"
)
