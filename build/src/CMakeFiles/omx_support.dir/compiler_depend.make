# Empty compiler generated dependencies file for omx_support.
# This may be replaced when dependencies are built.
