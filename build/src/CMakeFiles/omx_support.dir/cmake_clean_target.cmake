file(REMOVE_RECURSE
  "libomx_support.a"
)
