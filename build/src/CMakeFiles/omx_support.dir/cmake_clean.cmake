file(REMOVE_RECURSE
  "CMakeFiles/omx_support.dir/support/cli.cpp.o"
  "CMakeFiles/omx_support.dir/support/cli.cpp.o.d"
  "CMakeFiles/omx_support.dir/support/prng.cpp.o"
  "CMakeFiles/omx_support.dir/support/prng.cpp.o.d"
  "CMakeFiles/omx_support.dir/support/stats.cpp.o"
  "CMakeFiles/omx_support.dir/support/stats.cpp.o.d"
  "libomx_support.a"
  "libomx_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
