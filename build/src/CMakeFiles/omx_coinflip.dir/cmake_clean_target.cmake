file(REMOVE_RECURSE
  "libomx_coinflip.a"
)
