file(REMOVE_RECURSE
  "CMakeFiles/omx_coinflip.dir/coinflip/game.cpp.o"
  "CMakeFiles/omx_coinflip.dir/coinflip/game.cpp.o.d"
  "libomx_coinflip.a"
  "libomx_coinflip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_coinflip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
