# Empty dependencies file for omx_coinflip.
# This may be replaced when dependencies are built.
