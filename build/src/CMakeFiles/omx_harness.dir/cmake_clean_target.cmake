file(REMOVE_RECURSE
  "libomx_harness.a"
)
