# Empty dependencies file for omx_harness.
# This may be replaced when dependencies are built.
