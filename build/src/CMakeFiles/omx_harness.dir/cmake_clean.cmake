file(REMOVE_RECURSE
  "CMakeFiles/omx_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/omx_harness.dir/harness/experiment.cpp.o.d"
  "libomx_harness.a"
  "libomx_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
