# Empty dependencies file for omx_expsup.
# This may be replaced when dependencies are built.
