file(REMOVE_RECURSE
  "CMakeFiles/omx_expsup.dir/expsup/fit.cpp.o"
  "CMakeFiles/omx_expsup.dir/expsup/fit.cpp.o.d"
  "CMakeFiles/omx_expsup.dir/expsup/table.cpp.o"
  "CMakeFiles/omx_expsup.dir/expsup/table.cpp.o.d"
  "libomx_expsup.a"
  "libomx_expsup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_expsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
