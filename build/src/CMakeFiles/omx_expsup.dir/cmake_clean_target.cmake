file(REMOVE_RECURSE
  "libomx_expsup.a"
)
