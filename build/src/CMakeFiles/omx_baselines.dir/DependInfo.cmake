
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ben_or.cpp" "src/CMakeFiles/omx_baselines.dir/baselines/ben_or.cpp.o" "gcc" "src/CMakeFiles/omx_baselines.dir/baselines/ben_or.cpp.o.d"
  "/root/repo/src/baselines/doubling_gossip.cpp" "src/CMakeFiles/omx_baselines.dir/baselines/doubling_gossip.cpp.o" "gcc" "src/CMakeFiles/omx_baselines.dir/baselines/doubling_gossip.cpp.o.d"
  "/root/repo/src/baselines/flood_set.cpp" "src/CMakeFiles/omx_baselines.dir/baselines/flood_set.cpp.o" "gcc" "src/CMakeFiles/omx_baselines.dir/baselines/flood_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_groups.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
