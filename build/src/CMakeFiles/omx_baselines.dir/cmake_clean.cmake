file(REMOVE_RECURSE
  "CMakeFiles/omx_baselines.dir/baselines/ben_or.cpp.o"
  "CMakeFiles/omx_baselines.dir/baselines/ben_or.cpp.o.d"
  "CMakeFiles/omx_baselines.dir/baselines/doubling_gossip.cpp.o"
  "CMakeFiles/omx_baselines.dir/baselines/doubling_gossip.cpp.o.d"
  "CMakeFiles/omx_baselines.dir/baselines/flood_set.cpp.o"
  "CMakeFiles/omx_baselines.dir/baselines/flood_set.cpp.o.d"
  "libomx_baselines.a"
  "libomx_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
