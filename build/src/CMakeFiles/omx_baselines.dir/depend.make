# Empty dependencies file for omx_baselines.
# This may be replaced when dependencies are built.
