file(REMOVE_RECURSE
  "libomx_baselines.a"
)
