file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma12_coinflip.dir/bench_lemma12_coinflip.cpp.o"
  "CMakeFiles/bench_lemma12_coinflip.dir/bench_lemma12_coinflip.cpp.o.d"
  "bench_lemma12_coinflip"
  "bench_lemma12_coinflip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma12_coinflip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
