# Empty dependencies file for bench_lemma12_coinflip.
# This may be replaced when dependencies are built.
