# Empty dependencies file for bench_fig2_aggregation.
# This may be replaced when dependencies are built.
