file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_aggregation.dir/bench_fig2_aggregation.cpp.o"
  "CMakeFiles/bench_fig2_aggregation.dir/bench_fig2_aggregation.cpp.o.d"
  "bench_fig2_aggregation"
  "bench_fig2_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
