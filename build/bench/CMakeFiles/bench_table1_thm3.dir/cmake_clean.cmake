file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_thm3.dir/bench_table1_thm3.cpp.o"
  "CMakeFiles/bench_table1_thm3.dir/bench_table1_thm3.cpp.o.d"
  "bench_table1_thm3"
  "bench_table1_thm3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_thm3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
