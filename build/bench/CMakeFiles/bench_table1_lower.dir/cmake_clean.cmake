file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lower.dir/bench_table1_lower.cpp.o"
  "CMakeFiles/bench_table1_lower.dir/bench_table1_lower.cpp.o.d"
  "bench_table1_lower"
  "bench_table1_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
