# Empty dependencies file for bench_table1_lower.
# This may be replaced when dependencies are built.
