# Empty compiler generated dependencies file for bench_b3_crash_vs_omission.
# This may be replaced when dependencies are built.
