file(REMOVE_RECURSE
  "CMakeFiles/bench_b3_crash_vs_omission.dir/bench_b3_crash_vs_omission.cpp.o"
  "CMakeFiles/bench_b3_crash_vs_omission.dir/bench_b3_crash_vs_omission.cpp.o.d"
  "bench_b3_crash_vs_omission"
  "bench_b3_crash_vs_omission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b3_crash_vs_omission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
