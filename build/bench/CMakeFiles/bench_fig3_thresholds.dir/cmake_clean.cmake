file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_thresholds.dir/bench_fig3_thresholds.cpp.o"
  "CMakeFiles/bench_fig3_thresholds.dir/bench_fig3_thresholds.cpp.o.d"
  "bench_fig3_thresholds"
  "bench_fig3_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
