# Empty compiler generated dependencies file for bench_fig3_thresholds.
# This may be replaced when dependencies are built.
