file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma13_valency.dir/bench_lemma13_valency.cpp.o"
  "CMakeFiles/bench_lemma13_valency.dir/bench_lemma13_valency.cpp.o.d"
  "bench_lemma13_valency"
  "bench_lemma13_valency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma13_valency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
