# Empty dependencies file for bench_lemma13_valency.
# This may be replaced when dependencies are built.
