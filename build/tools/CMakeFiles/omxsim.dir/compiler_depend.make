# Empty compiler generated dependencies file for omxsim.
# This may be replaced when dependencies are built.
