file(REMOVE_RECURSE
  "CMakeFiles/omxsim.dir/omxsim.cpp.o"
  "CMakeFiles/omxsim.dir/omxsim.cpp.o.d"
  "omxsim"
  "omxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
