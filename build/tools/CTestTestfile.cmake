# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[omxsim_smoke]=] "/root/repo/build/tools/omxsim" "--algo" "optimal" "--attack" "rand-omit" "--n" "40" "--seeds" "2")
set_tests_properties([=[omxsim_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[omxsim_csv]=] "/root/repo/build/tools/omxsim" "--algo" "param" "--x" "2" "--n" "60" "--csv" "--seeds" "1")
set_tests_properties([=[omxsim_csv]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[omxsim_rejects_bad_args]=] "/root/repo/build/tools/omxsim" "--bogus" "1")
set_tests_properties([=[omxsim_rejects_bad_args]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
