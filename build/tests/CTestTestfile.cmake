# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/adversary_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/groups_test[1]_include.cmake")
include("/root/repo/build/tests/core_messages_test[1]_include.cmake")
include("/root/repo/build/tests/flood_fallback_test[1]_include.cmake")
include("/root/repo/build/tests/optimal_consensus_test[1]_include.cmake")
include("/root/repo/build/tests/param_consensus_test[1]_include.cmake")
include("/root/repo/build/tests/param_internals_test[1]_include.cmake")
include("/root/repo/build/tests/multi_value_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/doubling_gossip_test[1]_include.cmake")
include("/root/repo/build/tests/coinflip_test[1]_include.cmake")
include("/root/repo/build/tests/expsup_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/statistical_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/epoch_counting_test[1]_include.cmake")
include("/root/repo/build/tests/spreading_test[1]_include.cmake")
include("/root/repo/build/tests/valency_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
