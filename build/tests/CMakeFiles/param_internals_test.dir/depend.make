# Empty dependencies file for param_internals_test.
# This may be replaced when dependencies are built.
