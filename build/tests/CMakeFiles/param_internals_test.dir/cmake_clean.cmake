file(REMOVE_RECURSE
  "CMakeFiles/param_internals_test.dir/param_internals_test.cpp.o"
  "CMakeFiles/param_internals_test.dir/param_internals_test.cpp.o.d"
  "param_internals_test"
  "param_internals_test.pdb"
  "param_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
