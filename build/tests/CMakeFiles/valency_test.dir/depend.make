# Empty dependencies file for valency_test.
# This may be replaced when dependencies are built.
