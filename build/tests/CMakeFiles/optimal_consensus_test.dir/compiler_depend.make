# Empty compiler generated dependencies file for optimal_consensus_test.
# This may be replaced when dependencies are built.
