file(REMOVE_RECURSE
  "CMakeFiles/optimal_consensus_test.dir/optimal_consensus_test.cpp.o"
  "CMakeFiles/optimal_consensus_test.dir/optimal_consensus_test.cpp.o.d"
  "optimal_consensus_test"
  "optimal_consensus_test.pdb"
  "optimal_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
