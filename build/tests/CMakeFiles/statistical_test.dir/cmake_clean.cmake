file(REMOVE_RECURSE
  "CMakeFiles/statistical_test.dir/statistical_test.cpp.o"
  "CMakeFiles/statistical_test.dir/statistical_test.cpp.o.d"
  "statistical_test"
  "statistical_test.pdb"
  "statistical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
