file(REMOVE_RECURSE
  "CMakeFiles/epoch_counting_test.dir/epoch_counting_test.cpp.o"
  "CMakeFiles/epoch_counting_test.dir/epoch_counting_test.cpp.o.d"
  "epoch_counting_test"
  "epoch_counting_test.pdb"
  "epoch_counting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
