# Empty dependencies file for epoch_counting_test.
# This may be replaced when dependencies are built.
