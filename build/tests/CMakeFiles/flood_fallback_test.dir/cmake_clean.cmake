file(REMOVE_RECURSE
  "CMakeFiles/flood_fallback_test.dir/flood_fallback_test.cpp.o"
  "CMakeFiles/flood_fallback_test.dir/flood_fallback_test.cpp.o.d"
  "flood_fallback_test"
  "flood_fallback_test.pdb"
  "flood_fallback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flood_fallback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
