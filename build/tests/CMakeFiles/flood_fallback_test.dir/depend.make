# Empty dependencies file for flood_fallback_test.
# This may be replaced when dependencies are built.
