# Empty dependencies file for expsup_test.
# This may be replaced when dependencies are built.
