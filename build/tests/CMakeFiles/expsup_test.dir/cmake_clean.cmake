file(REMOVE_RECURSE
  "CMakeFiles/expsup_test.dir/expsup_test.cpp.o"
  "CMakeFiles/expsup_test.dir/expsup_test.cpp.o.d"
  "expsup_test"
  "expsup_test.pdb"
  "expsup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expsup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
