file(REMOVE_RECURSE
  "CMakeFiles/coinflip_test.dir/coinflip_test.cpp.o"
  "CMakeFiles/coinflip_test.dir/coinflip_test.cpp.o.d"
  "coinflip_test"
  "coinflip_test.pdb"
  "coinflip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coinflip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
