# Empty compiler generated dependencies file for coinflip_test.
# This may be replaced when dependencies are built.
