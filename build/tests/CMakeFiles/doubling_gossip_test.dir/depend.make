# Empty dependencies file for doubling_gossip_test.
# This may be replaced when dependencies are built.
