file(REMOVE_RECURSE
  "CMakeFiles/doubling_gossip_test.dir/doubling_gossip_test.cpp.o"
  "CMakeFiles/doubling_gossip_test.dir/doubling_gossip_test.cpp.o.d"
  "doubling_gossip_test"
  "doubling_gossip_test.pdb"
  "doubling_gossip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doubling_gossip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
