file(REMOVE_RECURSE
  "CMakeFiles/multi_value_test.dir/multi_value_test.cpp.o"
  "CMakeFiles/multi_value_test.dir/multi_value_test.cpp.o.d"
  "multi_value_test"
  "multi_value_test.pdb"
  "multi_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
