file(REMOVE_RECURSE
  "CMakeFiles/param_consensus_test.dir/param_consensus_test.cpp.o"
  "CMakeFiles/param_consensus_test.dir/param_consensus_test.cpp.o.d"
  "param_consensus_test"
  "param_consensus_test.pdb"
  "param_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
