// Experiment FIG1 — Figure 1 (the √n-decomposition with the sparse
// communication graph on top) + Theorem 4's graph properties.
//
// Figure 1 is schematic; its load-bearing content is structural:
//   * groups: ⌈√n⌉ groups of size ≤ ⌈√n⌉,
//   * graph: degree ≈ Δ = Θ(log n), concentrated (Thm 4 iii),
//   * expansion: disjoint n/10-sets always connected (Thm 4 i),
//   * edge-sparsity: subsets up to n/10 have < (Δ/15)|X| internal edges
//     (Thm 4 ii, sampled),
//   * Lemma 4: after removing any ≤ n/15 nodes, peeling to min-degree Δ/3
//     keeps ≥ n − (4/3)|removed| nodes,
//   * Lemma 3/5 shape: dense neighborhoods reach n/10 nodes within
//     O(log n) hops (the O(log n)-round information-exchange argument).
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/params.h"
#include "expsup/table.h"
#include "graph/comm_graph.h"
#include "graph/validate.h"
#include "groups/partition.h"
#include "support/prng.h"
#include "harness/sweep.h"

using namespace omx;

int run_bench() {
  const core::Params params;
  expsup::Table table(
      "Figure 1 / Theorem 4 — decomposition + common graph structure",
      {"n", "groups", "max grp", "Delta", "deg min/mean/max",
       "expansion fail", "edge ratio (cap)", "peel survivors (bound)",
       "ecc(v0)"});

  for (std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
    const groups::SqrtPartition part(n);
    const std::uint32_t delta = params.delta(n);
    const auto g = graph::CommGraph::common_for(n, delta);
    const auto deg = graph::degree_stats(g);

    const double exp_fail =
        graph::sampled_expansion_failure(g, n / 10, 200, 7);
    const double ratio =
        graph::sampled_max_internal_edge_ratio(g, n / 10, 100, 11);

    // Lemma 4: adversarial-ish removal of n/15 nodes (spread deterministic).
    std::vector<graph::Vertex> removed;
    for (graph::Vertex v = 0; v < n / 15; ++v)
      removed.push_back(static_cast<graph::Vertex>(
          (static_cast<std::uint64_t>(v) * 97) % n));
    std::sort(removed.begin(), removed.end());
    removed.erase(std::unique(removed.begin(), removed.end()), removed.end());
    const auto survivors =
        graph::peel_dense_subgraph(g, removed, delta / 3);
    const std::uint64_t bound = n - (4 * removed.size()) / 3;

    char degbuf[64];
    std::snprintf(degbuf, sizeof degbuf, "%u/%.1f/%u", deg.min, deg.mean,
                  deg.max);
    char peelbuf[64];
    std::snprintf(peelbuf, sizeof peelbuf, "%zu (>= %llu)", survivors.size(),
                  static_cast<unsigned long long>(bound));
    table.add_row({expsup::Table::num(std::uint64_t{n}),
                   expsup::Table::num(std::uint64_t{part.num_groups()}),
                   expsup::Table::num(std::uint64_t{part.max_group_size()}),
                   expsup::Table::num(std::uint64_t{delta}), degbuf,
                   expsup::Table::num(exp_fail),
                   expsup::Table::num(ratio) + " (< " +
                       expsup::Table::num(delta / 15.0 + 1.0) + ")",
                   peelbuf,
                   expsup::Table::num(
                       std::uint64_t{graph::eccentricity(g, 0, {})})});
  }
  table.print(std::cout);

  // Lemma 3/5: neighborhood growth of a surviving node after removals.
  expsup::Table growth(
      "Lemma 3 — dense-neighborhood growth |N^k(v)| on the common graph",
      {"n", "k=1", "k=2", "k=3", "k=4", "n/10"});
  for (std::uint32_t n : {256u, 1024u, 4096u}) {
    const auto g = graph::CommGraph::common_for(n, params.delta(n));
    const auto sizes = graph::neighborhood_growth(g, 1, 4, {});
    growth.add_row({expsup::Table::num(std::uint64_t{n}),
                    expsup::Table::num(sizes[1]),
                    expsup::Table::num(sizes[2]),
                    expsup::Table::num(sizes[3]),
                    expsup::Table::num(sizes[4]),
                    expsup::Table::num(std::uint64_t{n / 10})});
  }
  growth.print(std::cout);
  std::cout << "\nReading: zero sampled expansion failures, internal-edge"
               "\nratios below Delta/15, peeling survivors above the Lemma-4"
               "\nbound, and geometric neighborhood growth reaching n/10 in"
               "\nO(log n) hops — the properties Algorithm 1's operative-set"
               "\nmachinery relies on." << std::endl;
  return 0;
}

int main() { return omx::harness::guarded_main(run_bench); }
