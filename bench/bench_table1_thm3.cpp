// Experiment T1-thm3 — Table 1, row "Thm 3": the time ↔ randomness
// trade-off of ParamOmissions (Algorithm 4).
//
// Claim: for any randomness level R ∈ Õ(n^{3/2}), consensus in Õ(n²/R)
// rounds with Õ(n²) communication bits, independent of R. Equivalently:
// sweeping the super-process count x traces a frontier with
// T × R ≈ Θ̃(n²) while comm bits stay flat.
//
// We sweep x, measure (T, R, bits), and report the normalized invariant
// T·R/n² (should stay within a polylog band) and bits/n² (should be flat).
#include <iostream>
#include <vector>

#include "core/params.h"
#include "expsup/fit.h"
#include "expsup/table.h"
#include "harness/experiment.h"
#include "harness/sweep.h"

using namespace omx;

int run_bench() {
  harness::Sweep sweep;
  for (std::uint32_t n : {256u, 576u}) {
    const std::uint32_t t = core::Params::max_t_param(n);
    expsup::Table table(
        "Table 1 / row Thm 3 — ParamOmissions trade-off, n = " +
            std::to_string(n) + ", t = " + std::to_string(t),
        {"x", "rounds T", "rand bits R", "T*R / n^2", "comm bits",
         "bits / n^2", "spec ok"});

    std::vector<double> xs, ts, rs, bs;
    for (std::uint32_t x = 1; x <= n / 8; x *= 4) {
      const std::uint32_t seeds = 3;
      double time = 0, rand_bits = 0, bits = 0;
      std::uint32_t ok = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        harness::ExperimentConfig cfg;
        cfg.algo = harness::Algo::Param;
        cfg.attack = harness::Attack::RandomOmission;
        cfg.inputs = harness::InputPattern::Alternating;  // every group split 50/50: coins in play at all x
        cfg.n = n;
        cfg.t = t;
        cfg.x = x;
        cfg.seed = seed;
        const auto trial = sweep.run(cfg);
        const auto& r = trial.result;
        ok += trial.ok();
        time += static_cast<double>(r.time_rounds) / seeds;
        rand_bits += static_cast<double>(r.metrics.random_bits) / seeds;
        bits += static_cast<double>(r.metrics.comm_bits) / seeds;
      }
      const double n2 = static_cast<double>(n) * n;
      table.add_row({expsup::Table::num(std::uint64_t{x}),
                     expsup::Table::num(time),
                     expsup::Table::num(rand_bits),
                     expsup::Table::num(time * std::max(rand_bits, 1.0) / n2),
                     expsup::Table::num(bits),
                     expsup::Table::num(bits / n2),
                     ok == seeds ? "yes" : "NO"});
      xs.push_back(x);
      ts.push_back(time);
      rs.push_back(std::max(rand_bits, 1.0));
      bs.push_back(bits);
    }
    table.print(std::cout);

    const auto ft = expsup::fit_loglog(xs, ts);
    const auto fb = expsup::fit_loglog(xs, bs);
    expsup::Table fits("Exponents in x (n = " + std::to_string(n) + ")",
                       {"quantity", "fitted x-exponent", "paper"});
    fits.add_row({"rounds T", expsup::Table::num(ft.slope),
                  "0.5  (T = O~(sqrt(n x)))"});
    fits.add_row({"comm bits", expsup::Table::num(fb.slope),
                  "~0  (independent of R)"});
    fits.print(std::cout);
  }
  std::cout << "\nReading: rounds grow ~sqrt(x), measured random bits shrink"
               "\nwith x, their product stays inside a polylog band of n^2,"
               "\nand communication does not depend on the randomness level."
            << std::endl;
  sweep.print_summary(std::cerr);
  return 0;
}

int main() { return harness::guarded_main(run_bench); }
