// Experiments T1-thm2 and T1-low-BJB — Table 1, rows "Thm 2" and "[10]".
//
// (A) Bar-Joseph/Ben-Or delay ([10]): against the full-information
//     coin-hiding adversary with t = n/8 faults, the round count of the
//     vote-style baseline grows like t/√(n·log n) ~ √(n/log n); benign runs
//     finish in O(1) rounds. We sweep n and fit the exponent.
//
// (B) Theorem 2 frontier: T × (R + T) = Ω(t²/log n) for every algorithm
//     correct whp. We run the whole algorithm portfolio (deterministic,
//     randomness-capped, trade-off at several x, fully randomized) under
//     the coin-hiding adversary and report the measured product against
//     t²/log n — every row must sit above a constant floor, tracing the
//     spectrum between the deterministic (R=0, T=Θ(t)) and randomized
//     (R=Θ̃(n^{3/2}), T=Θ̃(√n)) extremes.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/params.h"
#include "expsup/fit.h"
#include "expsup/table.h"
#include "harness/experiment.h"
#include "harness/sweep.h"

using namespace omx;

int run_bench() {
  harness::Sweep sweep;
  // ---------- (A) coin-hiding delay on the vote-style baseline ----------
  expsup::Table delay(
      "Table 1 / row [10] — coin-hiding adversary vs Ben-Or-style voting",
      {"n", "t", "rounds (attacked)", "rounds (benign)", "stretch",
       "t/sqrt(n log n)"});
  std::vector<double> ns, stretched;
  for (std::uint32_t n : {64u, 128u, 256u, 512u, 1024u}) {
    const std::uint32_t t = n / 8;
    const std::uint32_t seeds = 3;
    double attacked = 0, benign = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      harness::ExperimentConfig cfg;
      cfg.algo = harness::Algo::BenOr;
      cfg.n = n;
      cfg.t = t;
      cfg.inputs = harness::InputPattern::Alternating;
      cfg.seed = seed;
      cfg.attack = harness::Attack::CoinHiding;
      attacked += static_cast<double>(
                      sweep.run(cfg).result.time_rounds) / seeds;
      cfg.attack = harness::Attack::None;
      benign += static_cast<double>(
                    sweep.run(cfg).result.time_rounds) / seeds;
    }
    const double theory =
        t / std::sqrt(static_cast<double>(n) * std::log2(double(n)));
    delay.add_row({expsup::Table::num(std::uint64_t{n}),
                   expsup::Table::num(std::uint64_t{t}),
                   expsup::Table::num(attacked), expsup::Table::num(benign),
                   expsup::Table::num(attacked / benign),
                   expsup::Table::num(theory)});
    ns.push_back(n);
    stretched.push_back(attacked);
  }
  delay.print(std::cout);
  // Fit attacked rounds against the theory knob t/sqrt(n log n). At laptop
  // n that knob only spans ~0.4..1.3, so we report the fitted slope in the
  // knob (target: positive, order 1) rather than pretending to measure the
  // asymptotic exponent.
  std::vector<double> knob;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const double nn = ns[i];
    knob.push_back((nn / 8.0) / std::sqrt(nn * std::log2(nn)));
  }
  const auto fit = expsup::fit_loglog(knob, stretched);
  std::cout << "fitted slope of attacked rounds vs t/sqrt(n log n): "
            << expsup::Table::num(fit.slope)
            << "   (paper: rounds = Omega(t/sqrt(n log n)); knob spans < 1.3"
               " at these n)\n";

  // ---------- (B) Theorem 2 frontier across the portfolio ----------
  const std::uint32_t n = 512;
  expsup::Table frontier(
      "Table 1 / row Thm 2 — T x (R+T) vs t^2/log n at n = 512",
      {"algorithm", "R budget", "t", "T", "R used (calls)", "T*(R+T)",
       "t^2/log n", "ratio", "spec ok"});

  struct Row {
    harness::Algo algo;
    std::uint32_t x;
    std::uint64_t budget;
    const char* label;
  };
  const std::vector<Row> rows{
      {harness::Algo::FloodSet, 1, 0, "floodset (deterministic)"},
      {harness::Algo::Optimal, 1, 0, "optimal, R capped to 0"},
      {harness::Algo::Optimal, 1, 64, "optimal, R capped to 64"},
      {harness::Algo::Param, 64, rng::kUnlimited, "param x=64"},
      {harness::Algo::Param, 16, rng::kUnlimited, "param x=16"},
      {harness::Algo::Param, 4, rng::kUnlimited, "param x=4"},
      {harness::Algo::Optimal, 1, rng::kUnlimited, "optimal (full R)"},
      {harness::Algo::BenOr, 1, rng::kUnlimited, "benor (full R)"},
  };
  for (const auto& row : rows) {
    harness::ExperimentConfig cfg;
    cfg.algo = row.algo;
    cfg.n = n;
    cfg.t = row.algo == harness::Algo::Param
                ? core::Params::max_t_param(n)
                : core::Params::max_t_optimal(n);
    cfg.x = row.x;
    cfg.inputs = harness::InputPattern::Alternating;
    cfg.random_bit_budget = row.budget;
    cfg.attack = row.algo == harness::Algo::FloodSet
                     ? harness::Attack::RandomOmission
                     : harness::Attack::CoinHiding;
    const auto trial = sweep.run(cfg);
    const auto& r = trial.result;
    const double T = static_cast<double>(r.time_rounds);
    const double R = static_cast<double>(r.metrics.random_calls);
    const double product = T * (R + T);
    const double bound = static_cast<double>(cfg.t) * cfg.t /
                         std::log2(static_cast<double>(n));
    frontier.add_row(
        {row.label,
         row.budget == rng::kUnlimited ? "unlimited"
                                       : expsup::Table::num(row.budget),
         expsup::Table::num(std::uint64_t{cfg.t}), expsup::Table::num(T),
         expsup::Table::num(R), expsup::Table::num(product),
         expsup::Table::num(bound), expsup::Table::num(product / bound),
         trial.ok() ? "yes" : "NO"});
  }
  frontier.print(std::cout);
  std::cout << "\nReading: every correct algorithm's T x (R+T) stays above a"
               "\nconstant multiple of t^2/log n (Theorem 2); randomness-"
               "\nstarved configurations pay with proportionally more rounds."
            << std::endl;
  sweep.print_summary(std::cerr);
  return 0;
}

int main() { return harness::guarded_main(run_bench); }
