// ABLATIONS — the design choices DESIGN.md calls out, each varied in
// isolation on Algorithm 1:
//
//  (a) early-decide extension (paper §6 future work): fixed schedule vs
//      decide-on-first-supermajority — rounds & bits saved, spec intact;
//  (b) graph density Δ = delta_factor·log n: thinner graphs are cheaper but
//      lose the Theorem-4 margins (operative floor erodes, spec at risk);
//  (c) spreading rounds (spread_factor·log n): fewer rounds than the
//      O(log n) diameter bound starve the count exchange;
//  (d) epoch budget (epoch_factor): fewer epochs raise the probability of
//      falling through to the deterministic tail;
//  (e) general vs send-only omissions: the weaker classical fault model is
//      measurably easier (fewer operative downgrades).
#include <iostream>
#include <string>

#include "core/optimal_core.h"
#include "core/params.h"
#include "expsup/table.h"
#include "harness/experiment.h"
#include "harness/sweep.h"

using namespace omx;

namespace {

struct AblateResult {
  double rounds = 0, bits = 0, coins = 0, operative = 0;
  std::uint32_t ok = 0, fallbacks = 0;
};

AblateResult run(harness::Sweep& sweep, const core::Params& params,
                 std::uint32_t n, harness::Attack attack,
                 std::uint32_t seeds) {
  AblateResult out;
  const std::uint32_t t = core::Params::max_t_optimal(n);
  const std::uint32_t no_fb =
      core::OptimalCore::schedule_length(params, n, t, true) + 1;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    harness::ExperimentConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.params = params;
    cfg.attack = attack;
    cfg.inputs = harness::InputPattern::Alternating;
    cfg.seed = seed * 31;
    const auto trial = sweep.run(cfg);
    const auto& r = trial.result;
    out.ok += trial.ok();
    out.fallbacks += r.time_rounds > no_fb;
    out.rounds += static_cast<double>(r.time_rounds) / seeds;
    out.bits += static_cast<double>(r.metrics.comm_bits) / seeds;
    out.coins += static_cast<double>(r.metrics.random_bits) / seeds;
    out.operative += static_cast<double>(r.operative_end) / seeds;
  }
  return out;
}

}  // namespace

int run_bench() {
  harness::Sweep sweep;
  const std::uint32_t n = 512;
  const std::uint32_t seeds = 3;

  // (a) early decide.
  {
    expsup::Table t("Ablation (a) — early-decide extension, n=512",
                    {"variant", "adversary", "rounds", "comm bits", "coins",
                     "spec ok"});
    for (auto attack : {harness::Attack::None, harness::Attack::CoinHiding}) {
      for (bool early : {false, true}) {
        core::Params p;
        p.early_decide = early;
        const auto r = run(sweep, p, n, attack, seeds);
        t.add_row({early ? "early-decide" : "paper schedule",
                   harness::to_string(attack), expsup::Table::num(r.rounds),
                   expsup::Table::num(r.bits), expsup::Table::num(r.coins),
                   r.ok == seeds ? "yes" : "NO"});
      }
    }
    t.print(std::cout);
  }

  // (b) graph density.
  {
    expsup::Table t("Ablation (b) — graph density Delta = f*log2 n, n=512",
                    {"delta_factor", "Delta", "rounds", "comm bits",
                     "operative at end", "n-3t floor", "spec ok"});
    for (double f : {1.5, 2.5, 4.0, 8.0}) {
      core::Params p;
      p.delta_factor = f;
      const auto r = run(sweep, p, n, harness::Attack::GroupKiller, seeds);
      t.add_row({expsup::Table::num(f),
                 expsup::Table::num(std::uint64_t{p.delta(n)}),
                 expsup::Table::num(r.rounds), expsup::Table::num(r.bits),
                 expsup::Table::num(r.operative),
                 expsup::Table::num(
                     std::uint64_t{n - 3 * core::Params::max_t_optimal(n)}),
                 r.ok == seeds ? "yes" : "NO"});
    }
    t.print(std::cout);
  }

  // (c) spreading rounds.
  {
    expsup::Table t("Ablation (c) — spreading rounds = f*log2 n, n=512",
                    {"spread_factor", "rounds", "comm bits",
                     "operative at end", "spec ok"});
    for (double f : {0.5, 1.0, 2.0, 3.0}) {
      core::Params p;
      p.spread_factor = f;
      const auto r = run(sweep, p, n, harness::Attack::SplitBrain, seeds);
      t.add_row({expsup::Table::num(f), expsup::Table::num(r.rounds),
                 expsup::Table::num(r.bits), expsup::Table::num(r.operative),
                 r.ok == seeds ? "yes" : "NO"});
    }
    t.print(std::cout);
  }

  // (d) epoch budget vs fallback probability.
  {
    expsup::Table t("Ablation (d) — epoch budget vs fallback rate, n=512",
                    {"epoch_factor", "epochs", "fallbacks", "rounds",
                     "spec ok"});
    for (double f : {0.5, 0.75, 1.0, 1.25}) {
      core::Params p;
      p.epoch_factor = f;
      p.min_epochs = 2;
      const auto r = run(sweep, p, n, harness::Attack::CoinHiding, 6);
      t.add_row(
          {expsup::Table::num(f),
           expsup::Table::num(std::uint64_t{
               p.epochs(n, core::Params::max_t_optimal(n))}),
           expsup::Table::num(std::uint64_t{r.fallbacks}) + "/6",
           expsup::Table::num(r.rounds),
           r.ok == 6 ? "yes" : "NO"});
    }
    t.print(std::cout);
  }

  // (e) general vs send-only omissions.
  {
    expsup::Table t("Ablation (e) — general vs send-only omissions, n=512",
                    {"fault model", "rounds", "operative at end", "omitted",
                     "spec ok"});
    for (auto attack :
         {harness::Attack::RandomOmission, harness::Attack::SendOmission}) {
      const std::uint32_t tt = core::Params::max_t_optimal(n);
      harness::ExperimentConfig cfg;
      cfg.n = n;
      cfg.t = tt;
      cfg.attack = attack;
      cfg.inputs = harness::InputPattern::Alternating;
      cfg.drop_prob = 1.0;
      const auto trial = sweep.run(cfg);
      const auto& r = trial.result;
      t.add_row({attack == harness::Attack::RandomOmission
                     ? "general omission"
                     : "send-only omission",
                 expsup::Table::num(r.time_rounds),
                 expsup::Table::num(std::uint64_t{r.operative_end}),
                 expsup::Table::num(r.metrics.omitted),
                 trial.ok() ? "yes" : "NO"});
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: (a) early-decide cuts rounds ~3x (and bits with"
               "\nthem) with identical guarantees; (b) communication scales"
               "\nlinearly in Delta while correctness holds down to"
               "\n1.5*log n under these adversaries — the paper's 832*log n"
               "\nis a proof constant with enormous slack; (c) likewise for"
               "\nspreading rounds at t = n/30 (the O(log n) diameter bound"
               "\nbites only near the adversarial worst case); (d) fewer"
               "\nepochs push runs into the deterministic tail exactly as"
               "\nthe whp analysis predicts — the fallback rate climbs from"
               "\n0/6 to 3/6 as the budget halves, with correctness intact;"
               "\n(e) send-only omissions drop ~40% fewer messages at the"
               "\nsame budget: the general-omission model the paper solves"
               "\nis strictly harsher." << std::endl;
  sweep.print_summary(std::cerr);
  return 0;
}

int main() { return harness::guarded_main(run_bench); }
