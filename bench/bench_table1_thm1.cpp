// Experiment T1-thm1 — Table 1, row "Thm 1" (and row "[1]" message counts).
//
// Claim: OptimalOmissionsConsensus with t = Θ(n) runs in O(√n·log²n)
// rounds, O(n²·log³n) communication bits and O(n^{3/2}·log²n) random bits.
// The deterministic baseline needs Θ(t) rounds; the Ben-Or-style baseline
// pays Θ(n²) bits per round.
//
// We sweep n with t = max tolerated (t < n/30, i.e. t = Θ(n)), across
// adversaries, and report measured rounds / bits / random bits plus fitted
// log-log scaling exponents next to the paper's targets. Absolute constants
// are not comparable (the paper's are proof artifacts); the *exponents* and
// the baseline orderings are the reproduction target.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/optimal_core.h"
#include "core/params.h"
#include "expsup/fit.h"
#include "expsup/table.h"
#include "harness/experiment.h"
#include "harness/sweep.h"

using namespace omx;

namespace {

struct Series {
  std::vector<double> n, rounds, bits, rand_bits, msgs;
};

void record(Series& s, double n, const harness::ExperimentResult& r) {
  s.n.push_back(n);
  s.rounds.push_back(static_cast<double>(r.time_rounds));
  s.bits.push_back(static_cast<double>(r.metrics.comm_bits));
  s.rand_bits.push_back(static_cast<double>(std::max<std::uint64_t>(
      r.metrics.random_bits, 1)));
  s.msgs.push_back(static_cast<double>(r.metrics.messages));
}

}  // namespace

int run_bench() {
  harness::Sweep sweep;  // fault isolation + env-driven checkpoint/watchdog
  const std::vector<std::uint32_t> sizes{64, 128, 256, 512, 1024};
  const std::vector<harness::Attack> attacks{
      harness::Attack::None, harness::Attack::RandomOmission,
      harness::Attack::GroupKiller, harness::Attack::CoinHiding};

  expsup::Table table(
      "Table 1 / row Thm 1 — OptimalOmissionsConsensus at t = Theta(n)",
      {"algo", "adversary", "n", "t", "rounds", "messages", "comm bits",
       "rand bits", "fallback", "spec ok"});

  Series opt;  // averaged over attacks, for the exponent fit
  for (std::uint32_t n : sizes) {
    const std::uint32_t t = core::Params::max_t_optimal(n);
    const std::uint32_t seeds = n >= 512 ? 2 : 3;
    // A decision broadcast later than this means the deterministic
    // fallback engaged (the whp-exception path).
    const std::uint32_t no_fb_horizon =
        core::OptimalCore::schedule_length(core::Params::practical(), n, t,
                                           /*truncated=*/true) + 1;
    for (auto attack : attacks) {
      harness::ExperimentResult acc{};
      std::uint64_t ok = 0;
      std::uint32_t fallbacks = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        harness::ExperimentConfig cfg;
        cfg.algo = harness::Algo::Optimal;
        cfg.attack = attack;
        // The hard instance: every group split 50/50 puts epoch 1 in the
        // dead zone, so coins flow and the coin-hiding adversary has a
        // game to play (random inputs often unify in one epoch).
        cfg.inputs = harness::InputPattern::Alternating;
        cfg.n = n;
        cfg.t = t;
        cfg.seed = seed * 7919;
        const auto trial = sweep.run(cfg);
        const auto& r = trial.result;
        ok += trial.ok();
        fallbacks += r.time_rounds > no_fb_horizon;
        acc.time_rounds += r.time_rounds;
        acc.metrics.messages += r.metrics.messages;
        acc.metrics.comm_bits += r.metrics.comm_bits;
        acc.metrics.random_bits += r.metrics.random_bits;
      }
      acc.time_rounds /= seeds;
      acc.metrics.messages /= seeds;
      acc.metrics.comm_bits /= seeds;
      acc.metrics.random_bits /= seeds;
      table.add_row({"optimal", harness::to_string(attack),
                     expsup::Table::num(std::uint64_t{n}),
                     expsup::Table::num(std::uint64_t{t}),
                     expsup::Table::num(acc.time_rounds),
                     expsup::Table::num(acc.metrics.messages),
                     expsup::Table::num(acc.metrics.comm_bits),
                     expsup::Table::num(acc.metrics.random_bits),
                     fallbacks == 0 ? "-" : std::to_string(fallbacks) + "/" +
                                                std::to_string(seeds),
                     ok == seeds ? "yes" : "NO"});
      if (attack == harness::Attack::CoinHiding) {
        acc.agreement = true;
        record(opt, n, acc);
      }
    }
  }

  // Baselines at the same (n, t).
  Series det, benor;
  for (std::uint32_t n : sizes) {
    const std::uint32_t t = core::Params::max_t_optimal(n);
    for (auto algo : {harness::Algo::FloodSet, harness::Algo::BenOr}) {
      harness::ExperimentConfig cfg;
      cfg.algo = algo;
      cfg.attack = algo == harness::Algo::FloodSet
                       ? harness::Attack::RandomOmission
                       : harness::Attack::StaticCrash;
      cfg.n = n;
      cfg.t = t;
      const auto trial = sweep.run(cfg);
      const auto& r = trial.result;
      table.add_row({harness::to_string(algo), harness::to_string(cfg.attack),
                     expsup::Table::num(std::uint64_t{n}),
                     expsup::Table::num(std::uint64_t{t}),
                     expsup::Table::num(r.time_rounds),
                     expsup::Table::num(r.metrics.messages),
                     expsup::Table::num(r.metrics.comm_bits),
                     expsup::Table::num(r.metrics.random_bits), "-",
                     trial.ok() ? "yes" : "NO"});
      record(algo == harness::Algo::FloodSet ? det : benor, n, r);
    }
  }
  table.print(std::cout);

  const auto fit_rounds = expsup::fit_loglog(opt.n, opt.rounds);
  const auto fit_bits = expsup::fit_loglog(opt.n, opt.bits);
  const auto fit_rand = expsup::fit_loglog(opt.n, opt.rand_bits);
  const auto fit_msgs = expsup::fit_loglog(opt.n, opt.msgs);
  const auto fit_det = expsup::fit_loglog(det.n, det.rounds);

  expsup::Table fits("Fitted scaling exponents vs paper targets",
                     {"quantity", "fitted n-exponent", "R^2",
                      "paper (polylog factors add drift)"});
  fits.add_row({"optimal rounds", expsup::Table::num(fit_rounds.slope),
                expsup::Table::num(fit_rounds.r2),
                "0.5  (sqrt(n) log^2 n)"});
  fits.add_row({"optimal comm bits", expsup::Table::num(fit_bits.slope),
                expsup::Table::num(fit_bits.r2), "2  (n^2 log^3 n)"});
  // The paper's n^1.5 randomness is a worst-case *upper bound*: the
  // adversary can force ~t/(sqrt(n)/2) coin epochs, i.e. the n^1.5 term
  // only dominates the ~n "natural" coin epochs once sqrt(n)/15 >> 1
  // (n >> 10^3). At laptop n the measured slope sits between 1 and 1.5 and
  // the envelope check (integration_test) confirms it never exceeds the
  // paper bound.
  fits.add_row({"optimal random bits", expsup::Table::num(fit_rand.slope),
                expsup::Table::num(fit_rand.r2),
                "<= 1.5 upper bd (n^1.5 log^2 n); ~1 at laptop n"});
  fits.add_row({"optimal messages", expsup::Table::num(fit_msgs.slope),
                expsup::Table::num(fit_msgs.r2),
                ">= 2  ([1]: Omega(t^2) lower bound)"});
  fits.add_row({"floodset rounds", expsup::Table::num(fit_det.slope),
                expsup::Table::num(fit_det.r2), "1  (Theta(t), t = n/30)"});
  fits.print(std::cout);

  std::printf(
      "\nNote: at laptop n the polylog terms dominate the sqrt(n) round\n"
      "advantage over the Theta(t) baseline (crossover needs n ~ 2^26 at\n"
      "paper constants); the exponents above are the reproduction target.\n");
  sweep.print_summary(std::cerr);
  return 0;
}

int main() { return harness::guarded_main(run_bench); }
