// Adversary-search bench: how much damage does the closed-loop schedule
// search (src/advsearch/) add on top of the analytic strategies it seeds
// from? One row per (protocol, analytic attack) arena — FloodSet vs
// rand-omit, Ben-Or vs rand-omit and vs the Theorem-2 coin-hiding strategy
// (FloodSet is deterministic, so there are no votes to hide there) — each
// row recording the analytic score, the discovered score and the search
// effort that separated them. Writes BENCH_adv.json (see EXPERIMENTS.md).
//
//   bench_adv [out.json] [--iters N] [--n N] [--work-dir DIR]
//
// Scores come from the packed traces the replays write (advsearch/score.h):
// rounds until the last honest decision, random bits burned, messages
// delivered. "discovered >= analytic" holds by construction — the search
// starts from the schedule extracted out of the analytic run — so the
// interesting number is the delta, and a zero delta is an honest result
// (the analytic strategy was locally optimal under this mutation kernel).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "advsearch/search.h"
#include "core/params.h"
#include "harness/experiment.h"

namespace {

struct Arena {
  const char* name;
  omx::harness::Algo algo;
  omx::harness::Attack attack;
};

struct Row {
  std::string name;
  std::uint32_t n = 0, t = 0, iters = 0;
  omx::advsearch::Score analytic, discovered;
  std::size_t ops = 0;
  omx::advsearch::SearchStats stats;
  double search_ms = 0.0;
};

void append_score(std::string* json, const char* key,
                  const omx::advsearch::Score& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\"%s\": {\"rounds\": %llu, \"rand_bits\": %llu, "
                "\"delivered\": %llu, \"all_decided\": %s}",
                key, static_cast<unsigned long long>(s.rounds_to_decide),
                static_cast<unsigned long long>(s.rand_bits),
                static_cast<unsigned long long>(s.delivered),
                s.all_decided ? "true" : "false");
  *json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_adv.json";
  std::uint32_t iters = 150;
  std::uint32_t n = 64;
  std::string work_dir = "bench_adv_work";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--iters") && i + 1 < argc) {
      iters = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--n") && i + 1 < argc) {
      n = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--work-dir") && i + 1 < argc) {
      work_dir = argv[++i];
    } else {
      out_path = argv[i];
    }
  }

  const Arena arenas[] = {
      {"floodset/rand-omit", omx::harness::Algo::FloodSet,
       omx::harness::Attack::RandomOmission},
      {"benor/rand-omit", omx::harness::Algo::BenOr,
       omx::harness::Attack::RandomOmission},
      {"benor/coin-hiding", omx::harness::Algo::BenOr,
       omx::harness::Attack::CoinHiding},
  };

  std::vector<Row> rows;
  for (const Arena& a : arenas) {
    omx::harness::ExperimentConfig base;
    base.algo = a.algo;
    base.attack = a.attack;
    base.n = n;
    base.t = omx::core::Params::max_t_optimal(n);
    base.inputs = omx::harness::InputPattern::Random;
    base.seed = 1;

    omx::advsearch::SearchOptions opts;
    opts.iterations = iters;
    opts.seed = 1;
    std::string slug = a.name;
    for (char& c : slug) {
      if (c == '/') c = '_';
    }
    opts.work_dir = work_dir + "/" + slug;

    Row row;
    row.name = a.name;
    row.n = n;
    row.t = base.t;
    row.iters = iters;

    omx::advsearch::Search search(base, opts);
    const auto t0 = std::chrono::steady_clock::now();
    search.seed_from_attack(a.attack);
    search.run();
    const auto t1 = std::chrono::steady_clock::now();
    row.search_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    row.analytic = search.baseline_score();
    row.discovered = search.best_score();
    row.ops = search.best().ops.size();
    row.stats = search.stats();
    rows.push_back(row);

    std::printf("%-22s analytic:   %s\n", a.name,
                row.analytic.to_string().c_str());
    std::printf("%-22s discovered: %s  (%zu op(s), %.0f ms)\n", "",
                row.discovered.to_string().c_str(), row.ops, row.search_ms);
  }

  std::string json = "{\n  \"n\": " + std::to_string(n) +
                     ",\n  \"iterations\": " + std::to_string(iters) +
                     ",\n  \"search_seed\": 1,\n  \"arenas\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[256];
    json += "    {\"name\": \"" + r.name + "\", \"n\": " +
            std::to_string(r.n) + ", \"t\": " + std::to_string(r.t) + ", ";
    append_score(&json, "analytic", r.analytic);
    json += ", ";
    append_score(&json, "discovered", r.discovered);
    std::snprintf(buf, sizeof buf,
                  ", \"schedule_ops\": %zu, \"evaluated\": %llu, "
                  "\"rejected\": %llu, \"accepted\": %llu, "
                  "\"improved\": %llu, \"search_ms\": %.1f}",
                  r.ops,
                  static_cast<unsigned long long>(r.stats.evaluated),
                  static_cast<unsigned long long>(r.stats.rejected),
                  static_cast<unsigned long long>(r.stats.accepted),
                  static_cast<unsigned long long>(r.stats.improved),
                  r.search_ms);
    json += buf;
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
