// Experiment FIG3 — Figure 3: the biased-majority threshold geometry.
//
// Figure 3 explains the 15/30 and 18/30 candidate-value thresholds and the
// 3/30 / 27/30 safety band of Algorithm 1 lines 9-12. We sweep the initial
// fraction f of ones and report, per f:
//   * P(decide 1): ~0 for f well below 1/2, ~1 for f above 18/30, a genuine
//     coin near 1/2 — the three regions of Figure 3;
//   * mean coins drawn: the dead-zone signature — randomness flows only
//     when counts land between the 15/30 and 18/30 thresholds;
//   * mean decision time (fixed schedule; the fallback would show here).
// A second sweep repeats under the coin-hiding adversary: decisions stay
// correct, the coin region widens (the adversary works to keep counts in
// the dead zone), and the safety band still pins the extremes.
#include <iostream>
#include <vector>

#include "core/params.h"
#include "expsup/parallel.h"
#include "expsup/table.h"
#include "harness/experiment.h"
#include "harness/sweep.h"

using namespace omx;

namespace {

std::vector<std::uint8_t> inputs_with_fraction(std::uint32_t n, double f) {
  std::vector<std::uint8_t> inputs(n, 0);
  auto ones = static_cast<std::uint32_t>(f * n + 0.5);
  // Stride the ones across the id space so every √n-group sees roughly the
  // global fraction.
  std::uint32_t placed = 0;
  for (std::uint32_t i = 0; placed < ones && i < n; ++i) {
    const auto idx = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(i) * 7919) % n);
    if (!inputs[idx]) {
      inputs[idx] = 1;
      ++placed;
    }
  }
  for (std::uint32_t p = 0; placed < ones && p < n; ++p) {
    if (!inputs[p]) {
      inputs[p] = 1;
      ++placed;
    }
  }
  return inputs;
}

}  // namespace

int run_bench() {
  harness::Sweep sweep;  // thread-safe: trials fan out via parallel_map
  const std::uint32_t n = 150;
  const std::uint32_t t = core::Params::max_t_optimal(n);
  const std::uint32_t seeds = 15;

  for (auto attack : {harness::Attack::None, harness::Attack::CoinHiding}) {
    expsup::Table table(
        std::string("Figure 3 — threshold dynamics, n=150, t=4, adversary: ") +
            harness::to_string(attack),
        {"init ones frac", "P(decide 1)", "mean coins", "mean rounds",
         "all spec ok"});
    for (double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55, 0.6, 0.7, 0.8,
                     0.9, 1.0}) {
      std::vector<harness::ExperimentConfig> configs;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        harness::ExperimentConfig cfg;
        cfg.n = n;
        cfg.t = t;
        cfg.attack = attack;
        cfg.seed = seed;
        cfg.explicit_inputs = inputs_with_fraction(n, f);
        configs.push_back(std::move(cfg));
      }
      const auto results = expsup::parallel_map(
          configs, [&sweep](const harness::ExperimentConfig& cfg) {
            return sweep.run(cfg);
          });
      std::uint32_t ones_decisions = 0, ok = 0;
      double coins = 0, rounds = 0;
      for (const auto& trial : results) {
        const auto& r = trial.result;
        ok += trial.ok();
        ones_decisions += (r.decision == 1);
        coins += static_cast<double>(r.metrics.random_bits) / seeds;
        rounds += static_cast<double>(r.time_rounds) / seeds;
      }
      table.add_row({expsup::Table::num(f),
                     expsup::Table::num(static_cast<double>(ones_decisions) /
                                        seeds),
                     expsup::Table::num(coins), expsup::Table::num(rounds),
                     ok == seeds ? "yes" : "NO"});
    }
    table.print(std::cout);
  }
  std::cout << "\nReading: three regions as in Figure 3 — decide-0 below the"
               "\n15/30 threshold, decide-1 above the 18/30 threshold, and a"
               "\ncoin region in between where the mean-coins column spikes."
               "\nNote the asymmetry the thresholds build in: from the coin"
               "\nregion the walk exits almost surely downward (an upward"
               "\nexit needs a +10%-of-n coin deviation), so dead-zone"
               "\ninstances resolve to 0 — the coin is there to break the"
               "\nadversary's grip on the counts, not to be fair between"
               "\noutcomes. Under the coin-hiding adversary the spike grows"
               "\n(forced repeat coin epochs); every run still meets the"
               "\nspec." << std::endl;
  sweep.print_summary(std::cerr);
  return 0;
}

int main() { return harness::guarded_main(run_bench); }
