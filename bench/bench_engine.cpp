// Engine micro/meso-benchmark: wall-clock and per-phase (compute /
// adversary / delivery) timings of full consensus runs through the
// flat-buffer message plane, plus a thread-scaling sweep over the sharded
// computation phase. Writes BENCH_engine.json next to the working
// directory (see EXPERIMENTS.md for how the numbers are regenerated).
//
// The workloads are chosen to stress the delivery substrate, not the
// protocols: FloodSet is all-to-all with Θ(n)-sized payloads (the
// worst-case wire volume per round), Optimal is tens of millions of small
// messages (record-throughput bound). The thread sweep runs the same
// workloads at 1/2/4/8 worker lanes — results are bit-identical by
// construction (asserted in tests/determinism_matrix_test.cpp); only the
// wall time may move, and only on multi-core hardware.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/params.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "sim/runner.h"
#include "support/thread_pool.h"

namespace {

struct Workload {
  const char* name;
  omx::harness::Algo algo;
  omx::harness::Attack attack;
  std::uint32_t n;
  int reps;
};

struct Sample {
  double wall_ms = 1e100;
  omx::sim::EngineStats stats;  // stats of the best (fastest) rep
  omx::sim::Metrics metrics;
};

Sample run_workload(omx::harness::Sweep& sweep, const Workload& w,
                    unsigned threads, const std::string& trace_path = "") {
  Sample best;
  for (int rep = 0; rep < w.reps; ++rep) {
    omx::harness::ExperimentConfig cfg;
    cfg.algo = w.algo;
    cfg.attack = w.attack;
    cfg.n = w.n;
    cfg.t = omx::core::Params::max_t_optimal(w.n);
    cfg.inputs = omx::harness::InputPattern::Random;
    cfg.seed = 1;
    cfg.threads = threads;
    cfg.trace_path = trace_path;
    omx::sim::EngineStats stats;
    cfg.engine_stats = &stats;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = sweep.run(cfg).result;
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("  %-28s x%u rep %d: %9.1f ms  (compute %6.0f | adversary "
                "%6.0f | delivery %6.0f)\n",
                w.name, threads, rep, ms, stats.compute_ns / 1e6,
                stats.adversary_ns / 1e6, stats.delivery_ns / 1e6);
    std::fflush(stdout);
    if (ms < best.wall_ms) {
      best.wall_ms = ms;
      best.stats = stats;
      best.metrics = res.metrics;
    }
  }
  return best;
}

}  // namespace

int run_bench(int argc, char** argv) {
  omx::harness::Sweep trials;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  const std::vector<Workload> workloads = {
      {"floodset/none/256", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 256, 3},
      {"floodset/none/512", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 512, 3},
      {"floodset/none/1024", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 1024, 3},
      {"floodset/rand-omit/1024", omx::harness::Algo::FloodSet,
       omx::harness::Attack::RandomOmission, 1024, 3},
      {"optimal/none/1024", omx::harness::Algo::Optimal,
       omx::harness::Attack::None, 1024, 2},
  };

  // Pre-message-plane engine (seed commit 9d537a6) on the same workloads,
  // measured back-to-back on the development machine (best of 3 reps,
  // interleaved A/B runs): the flood-heavy n=1024 cases ran ~5x slower.
  std::string json =
      "{\n  \"seed_engine_reference_ms\": {\"floodset/none/1024\": 5337.7, "
      "\"floodset/rand-omit/1024\": 5593.0, \"optimal/none/1024\": 3359.2},\n"
      "  \"hardware_threads\": " +
      std::to_string(omx::support::ThreadPool::hardware_threads()) +
      ",\n  \"workloads\": [\n";
  bool first = true;
  for (const auto& w : workloads) {
    const Sample s = run_workload(trials, w, /*threads=*/1);
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "%s    {\"name\": \"%s\", \"n\": %u, \"wall_ms\": %.1f, "
        "\"compute_ms\": %.1f, \"adversary_ms\": %.1f, "
        "\"delivery_ms\": %.1f, \"rounds\": %llu, \"messages\": %llu, "
        "\"comm_bits\": %llu, \"omitted\": %llu}",
        first ? "" : ",\n", w.name, w.n, s.wall_ms, s.stats.compute_ns / 1e6,
        s.stats.adversary_ns / 1e6, s.stats.delivery_ns / 1e6,
        static_cast<unsigned long long>(s.stats.rounds),
        static_cast<unsigned long long>(s.metrics.messages),
        static_cast<unsigned long long>(s.metrics.comm_bits),
        static_cast<unsigned long long>(s.metrics.omitted));
    json += buf;
    first = false;
  }
  json += "\n  ],\n  \"thread_sweep\": [\n";

  // Thread-scaling sweep: the sharded computation phase at 1/2/4/8 lanes.
  // stage/merge split the parallel compute phase; parallel_rounds counts
  // rounds that actually took the sharded path (all of them, for unlimited
  // rng budgets).
  const std::vector<Workload> sweep = {
      {"floodset/none/256", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 256, 3},
      {"floodset/none/1024", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 1024, 2},
      {"optimal/none/256", omx::harness::Algo::Optimal,
       omx::harness::Attack::None, 256, 3},
      {"optimal/none/1024", omx::harness::Algo::Optimal,
       omx::harness::Attack::None, 1024, 2},
  };
  first = true;
  for (const auto& w : sweep) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      const Sample s = run_workload(trials, w, threads);
      char buf[1024];
      std::snprintf(
          buf, sizeof(buf),
          "%s    {\"name\": \"%s\", \"n\": %u, \"threads\": %u, "
          "\"wall_ms\": %.1f, \"compute_ms\": %.1f, \"stage_ms\": %.1f, "
          "\"merge_ms\": %.1f, \"adversary_ms\": %.1f, "
          "\"delivery_ms\": %.1f, \"parallel_rounds\": %llu, "
          "\"rounds\": %llu}",
          first ? "" : ",\n", w.name, w.n, threads, s.wall_ms,
          s.stats.compute_ns / 1e6, s.stats.stage_ns / 1e6,
          s.stats.merge_ns / 1e6, s.stats.adversary_ns / 1e6,
          s.stats.delivery_ns / 1e6,
          static_cast<unsigned long long>(s.stats.parallel_rounds),
          static_cast<unsigned long long>(s.stats.rounds));
      json += buf;
      first = false;
    }
  }
  json += "\n  ],\n";

  // Trace-overhead A/B on the flood-heavy n=1024 workload: tracing off
  // (the default hot path — must stay within noise of the pre-trace
  // engine) vs tracing on (every send/drop/draw written through the ring;
  // budget: within 15%). Interleaved best-of-N like everything above.
  {
    const Workload w = {"floodset/rand-omit/1024", omx::harness::Algo::FloodSet,
                        omx::harness::Attack::RandomOmission, 1024, 3};
    const char* trace_tmp = "bench_engine_overhead.trace";
    const Sample off = run_workload(trials, w, /*threads=*/1);
    const Sample on = run_workload(trials, w, /*threads=*/1, trace_tmp);
    long trace_bytes = 0;
    if (FILE* f = std::fopen(trace_tmp, "rb")) {
      std::fseek(f, 0, SEEK_END);
      trace_bytes = std::ftell(f);
      std::fclose(f);
    }
    std::remove(trace_tmp);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"trace_overhead\": {\"name\": \"%s\", \"n\": %u, "
                  "\"off_ms\": %.1f, \"on_ms\": %.1f, "
                  "\"overhead_pct\": %.1f, \"trace_bytes\": %ld}\n",
                  w.name, w.n, off.wall_ms, on.wall_ms,
                  100.0 * (on.wall_ms - off.wall_ms) / off.wall_ms,
                  trace_bytes);
    json += buf;
  }

  json += "}\n";

  if (FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("could not write %s\n", out_path);
    return 1;
  }
  trials.print_summary(std::cerr);
  return 0;
}

int main(int argc, char** argv) {
  return omx::harness::guarded_main([&] { return run_bench(argc, argv); });
}
