// Engine micro/meso-benchmark: wall-clock and per-phase (compute /
// adversary / delivery) timings of full consensus runs through the
// flat-buffer message plane, plus a thread-scaling sweep over the sharded
// computation phase. Writes BENCH_engine.json next to the working
// directory (see EXPERIMENTS.md for how the numbers are regenerated).
//
//   bench_engine [out.json] [--threads 1,2,4,8]
//   bench_engine --speedup-gate T1,T2[,min]   # CI: flood n=1024 must be
//                                             # min-x faster at T2 lanes
//
// The thread sweep defaults to {1,2,4,8} filtered to the lanes this host
// actually has; an explicit --threads list that exceeds
// ThreadPool::hardware_threads() is an error (exit 1), not a silently
// oversubscribed measurement. The resolved hardware_threads value is
// stamped into the JSON so recorded numbers carry their provenance.
//
// The workloads are chosen to stress the delivery substrate, not the
// protocols: FloodSet is all-to-all with Θ(n)-sized payloads (the
// worst-case wire volume per round), Optimal is tens of millions of small
// messages (record-throughput bound). Each flood workload also runs with
// the packed views (core/packed_view.h) — bit-identical metrics, and the
// compute phase collapses from per-pair branching to word-wide OR — and
// the packed_speedup section records that ratio.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/params.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "sim/runner.h"
#include "support/thread_pool.h"

namespace {

struct Workload {
  const char* name;
  omx::harness::Algo algo;
  omx::harness::Attack attack;
  std::uint32_t n;
  int reps;
  bool packed = false;
  bool streamed = false;
  bool pipeline = false;
};

struct Sample {
  double wall_ms = 1e100;
  omx::sim::EngineStats stats;  // stats of the best (fastest) rep
  omx::sim::Metrics metrics;
};

Sample run_workload(omx::harness::Sweep& sweep, const Workload& w,
                    unsigned threads, const std::string& trace_path = "") {
  Sample best;
  for (int rep = 0; rep < w.reps; ++rep) {
    omx::harness::ExperimentConfig cfg;
    cfg.algo = w.algo;
    cfg.attack = w.attack;
    cfg.n = w.n;
    cfg.t = omx::core::Params::max_t_optimal(w.n);
    cfg.inputs = omx::harness::InputPattern::Random;
    cfg.seed = 1;
    cfg.threads = threads;
    cfg.packed = w.packed;
    cfg.streamed = w.streamed;
    cfg.pipeline = w.pipeline;
    cfg.trace_path = trace_path;
    omx::sim::EngineStats stats;
    cfg.engine_stats = &stats;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = sweep.run(cfg).result;
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("  %-36s x%u rep %d: %9.1f ms  (compute %6.0f | adversary "
                "%6.0f | delivery %6.0f | fused %6.0f)\n",
                w.name, threads, rep, ms, stats.compute_ns / 1e6,
                stats.adversary_ns / 1e6, stats.delivery_ns / 1e6,
                stats.fused_ns / 1e6);
    std::fflush(stdout);
    if (ms < best.wall_ms) {
      best.wall_ms = ms;
      best.stats = stats;
      best.metrics = res.metrics;
    }
  }
  return best;
}

}  // namespace

int run_bench(int argc, char** argv) {
  const unsigned hw = omx::support::ThreadPool::hardware_threads();

  // CLI: an optional output path plus an optional explicit thread list.
  const char* out_path = "BENCH_engine.json";
  std::vector<unsigned> sweep_threads;
  bool explicit_threads = false;
  // --speedup-gate T1,T2[,min]: CI mode. Run the flood-heavy n=1024 legacy
  // workload at T1 and T2 lanes and exit nonzero unless wall(T1)/wall(T2)
  // >= min (default 1.0, i.e. "T2 lanes must not be slower"). Skips the
  // full bench and writes no JSON.
  bool gate_mode = false;
  unsigned gate_t1 = 1, gate_t2 = 4;
  double gate_min = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speedup-gate") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --speedup-gate needs T1,T2[,min], "
                             "e.g. --speedup-gate 1,4,1.2\n");
        return 1;
      }
      gate_mode = true;
      double min = 1.0;
      unsigned long t1 = 0, t2 = 0;
      const std::string spec = argv[++i];
      const int got = std::sscanf(spec.c_str(), "%lu,%lu,%lf", &t1, &t2, &min);
      if (got < 2 || t1 == 0 || t2 == 0) {
        std::fprintf(stderr, "error: bad --speedup-gate spec '%s'\n",
                     spec.c_str());
        return 1;
      }
      gate_t1 = static_cast<unsigned>(t1);
      gate_t2 = static_cast<unsigned>(t2);
      if (got >= 3) gate_min = min;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threads needs a comma-separated "
                             "list, e.g. --threads 1,2,4\n");
        return 1;
      }
      explicit_threads = true;
      const std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        char* end = nullptr;
        const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0' || v == 0) {
          std::fprintf(stderr, "error: bad --threads entry '%s'\n",
                       tok.c_str());
          return 1;
        }
        sweep_threads.push_back(static_cast<unsigned>(v));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      out_path = argv[i];
    }
  }
  if (explicit_threads) {
    // An oversubscribed sweep measures scheduler thrash, not engine
    // scaling — refuse loudly rather than record a misleading number.
    for (const unsigned v : sweep_threads) {
      if (v > hw) {
        std::fprintf(stderr,
                     "error: --threads %u exceeds this host's %u hardware "
                     "thread%s; refusing to record an oversubscribed "
                     "measurement\n",
                     v, hw, hw == 1 ? "" : "s");
        return 1;
      }
    }
  } else {
    for (const unsigned v : {1u, 2u, 4u, 8u}) {
      if (v <= hw) {
        sweep_threads.push_back(v);
      } else {
        std::printf("note: skipping %u-lane sweep point (host has %u "
                    "hardware thread%s)\n",
                    v, hw, hw == 1 ? "" : "s");
      }
    }
  }

  if (gate_mode) {
    if (gate_t1 > hw || gate_t2 > hw) {
      std::fprintf(stderr,
                   "error: --speedup-gate %u,%u exceeds this host's %u "
                   "hardware thread%s\n",
                   gate_t1, gate_t2, hw, hw == 1 ? "" : "s");
      return 1;
    }
    omx::harness::Sweep gate_trials;
    const Workload w = {"floodset/rand-omit/1024",
                        omx::harness::Algo::FloodSet,
                        omx::harness::Attack::RandomOmission, 1024, 3};
    const Sample a = run_workload(gate_trials, w, gate_t1);
    const Sample b = run_workload(gate_trials, w, gate_t2);
    const double speedup = a.wall_ms / (b.wall_ms > 0 ? b.wall_ms : 1);
    std::printf("speedup gate: %s at %u vs %u lanes: %.1f ms -> %.1f ms "
                "(%.2fx, need >= %.2fx)\n",
                w.name, gate_t1, gate_t2, a.wall_ms, b.wall_ms, speedup,
                gate_min);
    if (speedup < gate_min) {
      std::fprintf(stderr,
                   "speedup gate FAILED: %.2fx < %.2fx — %u lanes did not "
                   "pay for themselves on the flood-heavy workload\n",
                   speedup, gate_min, gate_t2);
      return 1;
    }
    return 0;
  }

  omx::harness::Sweep trials;
  const std::vector<Workload> workloads = {
      {"floodset/none/256", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 256, 3},
      {"floodset/none/512", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 512, 3},
      {"floodset/none/1024", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 1024, 3},
      {"floodset/rand-omit/1024", omx::harness::Algo::FloodSet,
       omx::harness::Attack::RandomOmission, 1024, 3},
      {"floodset/none/1024/packed", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 1024, 3, /*packed=*/true},
      {"floodset/rand-omit/1024/packed", omx::harness::Algo::FloodSet,
       omx::harness::Attack::RandomOmission, 1024, 3, /*packed=*/true},
      {"floodset/none/1024/packed-streamed", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 1024, 3, /*packed=*/true,
       /*streamed=*/true},
      {"floodset/none/4096/packed-streamed", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 4096, 2, /*packed=*/true,
       /*streamed=*/true},
      {"optimal/none/1024", omx::harness::Algo::Optimal,
       omx::harness::Attack::None, 1024, 2},
  };

  // Pre-message-plane engine (seed commit 9d537a6) on the same workloads,
  // measured back-to-back on the development machine (best of 3 reps,
  // interleaved A/B runs): the flood-heavy n=1024 cases ran ~5x slower.
  std::string json =
      "{\n  \"seed_engine_reference_ms\": {\"floodset/none/1024\": 5337.7, "
      "\"floodset/rand-omit/1024\": 5593.0, \"optimal/none/1024\": 3359.2},\n"
      "  \"hardware_threads\": " +
      std::to_string(hw) + ",\n  \"workloads\": [\n";
  std::map<std::string, Sample> by_name;
  bool first = true;
  for (const auto& w : workloads) {
    const Sample s = run_workload(trials, w, /*threads=*/1);
    by_name[w.name] = s;
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "%s    {\"name\": \"%s\", \"n\": %u, \"wall_ms\": %.1f, "
        "\"compute_ms\": %.1f, \"adversary_ms\": %.1f, "
        "\"delivery_ms\": %.1f, \"rounds\": %llu, \"messages\": %llu, "
        "\"comm_bits\": %llu, \"omitted\": %llu}",
        first ? "" : ",\n", w.name, w.n, s.wall_ms, s.stats.compute_ns / 1e6,
        s.stats.adversary_ns / 1e6, s.stats.delivery_ns / 1e6,
        static_cast<unsigned long long>(s.stats.rounds),
        static_cast<unsigned long long>(s.metrics.messages),
        static_cast<unsigned long long>(s.metrics.comm_bits),
        static_cast<unsigned long long>(s.metrics.omitted));
    json += buf;
    first = false;
  }
  json += "\n  ],\n  \"packed_speedup\": [\n";

  // Legacy-vs-packed ratios on the flood-heavy workloads (same metrics by
  // construction — tests/packed_equivalence_test.cpp pins it — so the
  // ratio isolates the representation change).
  first = true;
  const std::vector<std::pair<const char*, const char*>> speedup_pairs = {
      {"floodset/none/1024", "floodset/none/1024/packed"},
      {"floodset/rand-omit/1024", "floodset/rand-omit/1024/packed"},
      {"floodset/none/1024", "floodset/none/1024/packed-streamed"}};
  for (const auto& pair : speedup_pairs) {
    const Sample& legacy = by_name[pair.first];
    const Sample& packed = by_name[pair.second];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s    {\"legacy\": \"%s\", \"packed\": \"%s\", "
        "\"compute_speedup\": %.2f, \"wall_speedup\": %.2f}",
        first ? "" : ",\n", pair.first, pair.second,
        static_cast<double>(legacy.stats.compute_ns) /
            static_cast<double>(
                packed.stats.compute_ns ? packed.stats.compute_ns : 1),
        legacy.wall_ms / (packed.wall_ms > 0 ? packed.wall_ms : 1));
    json += buf;
    first = false;
  }
  json += "\n  ],\n  \"thread_sweep\": [\n";

  // Thread-scaling sweep: every engine phase across the chosen lane counts.
  // stage/merge split the parallel compute phase (merge is the stitch +
  // rack reduction + seal); fused_ms covers pipelined delivery+compute
  // rounds; lane_busy_ms is the pool's per-lane busy time over the run, so
  // shard imbalance is visible straight from the JSON. parallel_rounds
  // counts rounds that actually took the sharded path (all of them, for
  // unlimited rng budgets). The /pipeline rows rerun the flood workloads
  // with round fusion on — identical metrics, different schedule.
  const std::vector<Workload> sweep = {
      {"floodset/none/256", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 256, 3},
      {"floodset/none/1024", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 1024, 2},
      {"floodset/none/1024/pipeline", omx::harness::Algo::FloodSet,
       omx::harness::Attack::None, 1024, 2, /*packed=*/false,
       /*streamed=*/false, /*pipeline=*/true},
      {"floodset/rand-omit/1024/pipeline", omx::harness::Algo::FloodSet,
       omx::harness::Attack::RandomOmission, 1024, 2, /*packed=*/false,
       /*streamed=*/false, /*pipeline=*/true},
      {"optimal/none/256", omx::harness::Algo::Optimal,
       omx::harness::Attack::None, 256, 3},
      {"optimal/none/1024", omx::harness::Algo::Optimal,
       omx::harness::Attack::None, 1024, 2},
  };
  first = true;
  for (const auto& w : sweep) {
    for (const unsigned threads : sweep_threads) {
      const Sample s = run_workload(trials, w, threads);
      std::string lanes_json = "[";
      for (std::size_t i = 0; i < s.stats.lane_busy_ns.size(); ++i) {
        char lane_buf[32];
        std::snprintf(lane_buf, sizeof(lane_buf), "%s%.1f", i ? ", " : "",
                      s.stats.lane_busy_ns[i] / 1e6);
        lanes_json += lane_buf;
      }
      lanes_json += "]";
      char buf[1024];
      std::snprintf(
          buf, sizeof(buf),
          "%s    {\"name\": \"%s\", \"n\": %u, \"threads\": %u, "
          "\"wall_ms\": %.1f, \"compute_ms\": %.1f, \"stage_ms\": %.1f, "
          "\"merge_ms\": %.1f, \"adversary_ms\": %.1f, "
          "\"delivery_ms\": %.1f, \"fused_ms\": %.1f, "
          "\"parallel_rounds\": %llu, \"pipelined_rounds\": %llu, "
          "\"rounds\": %llu, \"lane_busy_ms\": %s}",
          first ? "" : ",\n", w.name, w.n, threads, s.wall_ms,
          s.stats.compute_ns / 1e6, s.stats.stage_ns / 1e6,
          s.stats.merge_ns / 1e6, s.stats.adversary_ns / 1e6,
          s.stats.delivery_ns / 1e6, s.stats.fused_ns / 1e6,
          static_cast<unsigned long long>(s.stats.parallel_rounds),
          static_cast<unsigned long long>(s.stats.pipelined_rounds),
          static_cast<unsigned long long>(s.stats.rounds),
          lanes_json.c_str());
      json += buf;
      first = false;
    }
  }
  json += "\n  ],\n";

  // Trace-overhead A/B on the flood-heavy n=1024 workload: tracing off
  // (the default hot path — must stay within noise of the pre-trace
  // engine) vs tracing on (every send/drop/draw written through the ring;
  // budget: within 15%). Interleaved best-of-N like everything above.
  {
    const Workload w = {"floodset/rand-omit/1024", omx::harness::Algo::FloodSet,
                        omx::harness::Attack::RandomOmission, 1024, 3};
    const char* trace_tmp = "bench_engine_overhead.trace";
    const Sample off = run_workload(trials, w, /*threads=*/1);
    const Sample on = run_workload(trials, w, /*threads=*/1, trace_tmp);
    long trace_bytes = 0;
    if (FILE* f = std::fopen(trace_tmp, "rb")) {
      std::fseek(f, 0, SEEK_END);
      trace_bytes = std::ftell(f);
      std::fclose(f);
    }
    std::remove(trace_tmp);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"trace_overhead\": {\"name\": \"%s\", \"n\": %u, "
                  "\"off_ms\": %.1f, \"on_ms\": %.1f, "
                  "\"overhead_pct\": %.1f, \"trace_bytes\": %ld}\n",
                  w.name, w.n, off.wall_ms, on.wall_ms,
                  100.0 * (on.wall_ms - off.wall_ms) / off.wall_ms,
                  trace_bytes);
    json += buf;
  }

  json += "}\n";

  if (FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("could not write %s\n", out_path);
    return 1;
  }
  trials.print_summary(std::cerr);
  return 0;
}

int main(int argc, char** argv) {
  return omx::harness::guarded_main([&] { return run_bench(argc, argv); });
}
