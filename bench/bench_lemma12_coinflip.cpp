// Experiment LEM12 — Lemma 12 / Corollary 1: the one-round coin-flipping
// game can be biased toward either outcome with probability >= 1 - alpha by
// hiding at most 8·√(k·ln(1/alpha)) of the k coins.
//
// We sweep (k, alpha), Monte-Carlo the game, and report the empirical bias
// success rate against the 1 - alpha target, plus the √k scaling of the
// hides actually needed (Talagrand/binomial deviation).
#include <cmath>
#include <iostream>
#include <vector>

#include "coinflip/game.h"
#include "expsup/fit.h"
#include "expsup/table.h"
#include "harness/sweep.h"

using namespace omx;

int run_bench() {
  const std::uint64_t trials = 20000;

  expsup::Table table(
      "Lemma 12 — biasing the coin-flipping game (target outcome 0)",
      {"k", "alpha", "budget 8*sqrt(k ln 1/a)", "mean hides needed",
       "max hides needed", "success rate", "target 1-alpha"});
  std::vector<double> ks, needs;
  for (std::uint64_t k : {16ull, 256ull, 1024ull, 4096ull, 65536ull}) {
    for (double alpha : {0.5, 0.1, 0.01, 0.001}) {
      coinflip::GameConfig cfg;
      cfg.players = k;
      cfg.alpha = alpha;
      cfg.target = 0;
      const auto stats = coinflip::play_many(cfg, trials, 20240704 + k);
      table.add_row({expsup::Table::num(k), expsup::Table::num(alpha),
                     expsup::Table::num(stats.budget),
                     expsup::Table::num(stats.mean_hides_needed),
                     expsup::Table::num(stats.max_hides_needed),
                     expsup::Table::num(stats.success_rate),
                     expsup::Table::num(1.0 - alpha)});
      if (alpha == 0.1) {
        ks.push_back(static_cast<double>(k));
        needs.push_back(std::max(stats.mean_hides_needed, 1e-9));
      }
    }
  }
  table.print(std::cout);

  const auto fit = expsup::fit_loglog(ks, needs);
  std::cout << "fitted exponent of mean hides vs k: "
            << expsup::Table::num(fit.slope)
            << "   (paper: 0.5 — the sqrt(k) in Lemma 12)\n";

  // Corollary 1 flavour: alpha = n^-3 with k = n random callers.
  expsup::Table cor("Corollary 1 — alpha = n^-3, k = n",
                    {"n", "budget 8*sqrt(3 k ln n)", "success rate"});
  for (std::uint64_t nn : {64ull, 1024ull, 16384ull}) {
    coinflip::GameConfig cfg;
    cfg.players = nn;
    cfg.alpha = 1.0 / (static_cast<double>(nn) * nn * nn);
    cfg.target = 0;
    const auto stats = coinflip::play_many(cfg, trials, 7 * nn);
    cor.add_row({expsup::Table::num(nn), expsup::Table::num(stats.budget),
                 expsup::Table::num(stats.success_rate)});
  }
  cor.print(std::cout);
  std::cout << "\nReading: the success rate meets or beats 1 - alpha at every"
               "\n(k, alpha), the needed hides grow as sqrt(k), and at the"
               "\nCorollary-1 setting (alpha = n^-3) biasing essentially"
               "\nnever fails — the engine behind the Theorem 2 adversary."
            << std::endl;
  return 0;
}

int main() { return omx::harness::guarded_main(run_bench); }
