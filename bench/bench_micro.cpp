// MICRO — google-benchmark microbenchmarks of the hot paths: graph
// construction, property validators, partition/tree math, the coin-flip
// game, and full consensus executions at several scales.
#include <benchmark/benchmark.h>

#include <iostream>

#include "adversary/strategies.h"
#include "coinflip/game.h"
#include "core/optimal_core.h"
#include "core/params.h"
#include "graph/comm_graph.h"
#include "graph/validate.h"
#include "groups/partition.h"
#include "groups/tree.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "rng/ledger.h"
#include "sim/runner.h"

using namespace omx;

namespace {

// One sweep shared by the consensus BM_ functions: a trial that throws is
// recorded (and repro-captured) instead of aborting the whole binary.
harness::Sweep& micro_sweep() {
  static harness::Sweep sweep;
  return sweep;
}

void BM_GraphBuild(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::Params params;
  for (auto _ : state) {
    auto g = graph::CommGraph::common_for(n, params.delta(n));
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphBuild)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GraphNeighborScan(benchmark::State& state) {
  // Full sweep over every adjacency list; with the CSR layout this walks
  // one contiguous flat array instead of chasing per-vertex heap blocks.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::Params params;
  const auto g = graph::CommGraph::common_for(n, params.delta(n));
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (graph::Vertex v = 0; v < n; ++v) {
      for (const graph::Vertex u : g.neighbors(v)) acc += u;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.num_edges() * 2);
}
BENCHMARK(BM_GraphNeighborScan)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GraphPeel(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::Params params;
  const auto g = graph::CommGraph::common_for(n, params.delta(n));
  std::vector<graph::Vertex> removed;
  for (graph::Vertex v = 0; v < n / 15; ++v) removed.push_back(v);
  for (auto _ : state) {
    auto survivors = graph::peel_dense_subgraph(g, removed, params.delta(n) / 3);
    benchmark::DoNotOptimize(survivors.size());
  }
}
BENCHMARK(BM_GraphPeel)->Arg(1024)->Arg(4096);

void BM_ExpansionSample(benchmark::State& state) {
  const auto g = graph::CommGraph::common_for(1024, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::sampled_expansion_failure(g, 102, 50, 3));
  }
}
BENCHMARK(BM_ExpansionSample);

void BM_PartitionAndTree(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    groups::SqrtPartition part(n);
    groups::TreeDecomposition tree(part.max_group_size());
    std::uint64_t acc = 0;
    for (std::uint32_t p = 0; p < n; ++p) {
      acc += part.group_of(p) + tree.bag_index_of(1, part.index_in_group(p));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PartitionAndTree)->Arg(1024)->Arg(65536);

void BM_CoinflipGame(benchmark::State& state) {
  coinflip::GameConfig cfg;
  cfg.players = static_cast<std::uint64_t>(state.range(0));
  cfg.alpha = 0.01;
  Xoshiro256 gen(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coinflip::play_once(cfg, gen));
  }
}
BENCHMARK(BM_CoinflipGame)->Arg(1024)->Arg(65536);

void BM_OptimalConsensusRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.n = n;
    cfg.t = core::Params::max_t_optimal(n);
    cfg.inputs = harness::InputPattern::Random;
    cfg.seed = seed++;
    const auto r = micro_sweep().run(cfg).result;
    benchmark::DoNotOptimize(r.metrics.comm_bits);
  }
  state.SetLabel("full run incl. graph build");
}
BENCHMARK(BM_OptimalConsensusRun)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ParamConsensusRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.algo = harness::Algo::Param;
    cfg.n = n;
    cfg.x = 4;
    cfg.t = core::Params::max_t_param(n);
    cfg.inputs = harness::InputPattern::Random;
    cfg.seed = seed++;
    const auto r = micro_sweep().run(cfg).result;
    benchmark::DoNotOptimize(r.metrics.comm_bits);
  }
}
BENCHMARK(BM_ParamConsensusRun)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_FloodSetRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.algo = harness::Algo::FloodSet;
    cfg.n = n;
    cfg.t = core::Params::max_t_optimal(n);
    cfg.attack = harness::Attack::RandomOmission;
    cfg.seed = seed++;
    const auto r = micro_sweep().run(cfg).result;
    benchmark::DoNotOptimize(r.metrics.comm_bits);
  }
}
BENCHMARK(BM_FloodSetRun)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main([&] {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    micro_sweep().print_summary(std::cerr);
    return 0;
  });
}
