// Experiment B3 — §B.3: why the crash-model state of the art does not
// survive omissions.
//
// The STOC'22 crash-model algorithm ([23]) owes its subquadratic
// communication to amortization tricks of the form "double your contact set
// when responses go missing" — sound when missing responses mean permanent
// crashes. We reproduce the failure mode with the doubling-gossip
// primitive: the same fault budget is played twice,
//   * as physical crashes (faulty processes halt), and
//   * as receive-starvation omissions (faulty processes stay up but hear
//     nothing — every round they escalate, interrogating Θ(n) peers),
// over a fixed horizon, and the per-exchange traffic is compared. The last
// column shows Algorithm 1's per-epoch cost at the same n: the operative
// partition pays Õ(n^{3/2}) per epoch regardless of the omission pattern —
// the paper's answer to the §B.3 problem.
#include <iostream>
#include <vector>

#include "adversary/strategies.h"
#include "baselines/doubling_gossip.h"
#include "core/optimal_core.h"
#include "core/params.h"
#include "expsup/table.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "rng/ledger.h"
#include "sim/runner.h"

using namespace omx;

namespace {

sim::Metrics run_gossip(std::uint32_t n, std::uint32_t t,
                        bool starve, std::uint32_t horizon) {
  baselines::DoublingConfig cfg;
  cfg.t = t;
  cfg.max_exchanges = horizon;
  auto inputs = harness::make_inputs(harness::InputPattern::Random, n, 7);
  baselines::DoublingGossipMachine machine(cfg, inputs);
  rng::Ledger ledger(n, 1);

  std::vector<sim::ProcessId> victims;
  for (std::uint32_t i = 0; i < t; ++i) victims.push_back(i * 7 % n);
  std::unique_ptr<sim::Adversary<core::Msg>> adv;
  if (starve) {
    adv = std::make_unique<adversary::StarveReceiversAdversary<core::Msg>>(
        victims);
  } else {
    std::vector<adversary::StaticCrashAdversary<core::Msg>::Crash> schedule;
    for (auto v : victims) schedule.push_back({v, 1});
    adv = std::make_unique<adversary::StaticCrashAdversary<core::Msg>>(
        std::move(schedule));
  }
  sim::Runner<core::Msg> runner(n, t, &ledger, adv.get());
  machine.set_fault_view(&runner.faults());
  machine.set_crash_semantics(!starve);
  machine.set_run_full_horizon(true);
  return runner.run(machine).metrics;
}

}  // namespace

int run_bench() {
  harness::Sweep sweep;
  const std::uint32_t horizon = 24;
  expsup::Table table(
      "§B.3 — doubling gossip: crashes vs omissions (fixed 24 exchanges)",
      {"n", "t", "msgs/exchange (crash)", "msgs/exchange (omission)",
       "blow-up", "Alg.1 msgs/epoch (omission)"});

  for (std::uint32_t n : {128u, 256u, 512u, 1024u}) {
    const std::uint32_t t = n / 16;
    const auto crash = run_gossip(n, t, /*starve=*/false, horizon);
    const auto omit = run_gossip(n, t, /*starve=*/true, horizon);
    const double crash_rate =
        static_cast<double>(crash.messages) / horizon;
    const double omit_rate = static_cast<double>(omit.messages) / horizon;

    // Algorithm 1 at the same scale, under general omissions.
    harness::ExperimentConfig cfg;
    cfg.n = n;
    cfg.t = core::Params::max_t_optimal(n);
    cfg.attack = harness::Attack::RandomOmission;
    cfg.inputs = harness::InputPattern::Random;
    const auto alg1 = sweep.run(cfg).result;
    const core::Params params;
    const double per_epoch =
        static_cast<double>(alg1.metrics.messages) /
        params.epochs(n, cfg.t);

    table.add_row({expsup::Table::num(std::uint64_t{n}),
                   expsup::Table::num(std::uint64_t{t}),
                   expsup::Table::num(crash_rate),
                   expsup::Table::num(omit_rate),
                   expsup::Table::num(omit_rate / crash_rate),
                   expsup::Table::num(per_epoch)});
  }
  table.print(std::cout);
  std::cout << "\nReading: against crashes the doubling primitive's traffic"
               "\nstays near n*Delta per exchange; the same t as omission"
               "\nfaults multiplies it (victims escalate to Theta(n) windows"
               "\nand never stop) — the blow-up grows with n exactly as §B.3"
               "\nargues. Algorithm 1's operative machinery pays a flat"
               "\nO~(n^1.5) per epoch under the same omissions."
            << std::endl;
  sweep.print_summary(std::cerr);
  return 0;
}

int main() { return harness::guarded_main(run_bench); }
