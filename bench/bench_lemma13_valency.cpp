// Experiment LEM13 — Lemma 13 and the valency framework of Appendix C,
// verified exhaustively on small instances.
//
// For the deterministic flood-set game under a crash adversary (crashes are
// the special case of omissions the lower-bound proof plays, §2), we
// enumerate EVERY adversarial strategy and report:
//   * the valency census of all 2^n input assignments — Lemma 13's
//     deterministic analog: non-univalent assignments exist whenever the
//     adversary controls at least one process;
//   * an exhaustive correctness certificate for the flood-set protocol
//     (agreement + validity under every strategy) — the foundation the
//     Algorithm 1 fallback rests on;
//   * tightness of the t+1-round bound: with only t rounds some strategy
//     breaks agreement.
#include <array>
#include <iostream>
#include <vector>

#include "expsup/table.h"
#include "valency/explorer.h"
#include "harness/sweep.h"

using namespace omx;

int run_bench() {
  expsup::Table table(
      "Lemma 13 — valency census of the flood-set game (exhaustive)",
      {"n", "t", "assignments", "0-valent", "1-valent", "bivalent",
       "agreement (all strategies)", "validity"});
  for (auto [n, t] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {2, 1}, {3, 1}, {3, 2}, {4, 1}, {4, 2}, {5, 1}}) {
    valency::GameConfig cfg{n, t, 0};
    const auto c = valency::census(cfg);
    table.add_row({expsup::Table::num(std::uint64_t{n}),
                   expsup::Table::num(std::uint64_t{t}),
                   expsup::Table::num(std::uint64_t{1u << n}),
                   expsup::Table::num(std::uint64_t{c.univalent_0}),
                   expsup::Table::num(std::uint64_t{c.univalent_1}),
                   expsup::Table::num(std::uint64_t{c.bivalent}),
                   c.all_agree ? "verified" : "VIOLATED",
                   c.all_valid ? "verified" : "VIOLATED"});
  }
  table.print(std::cout);

  expsup::Table tight(
      "Tightness — agreement with r rounds (flood-set needs t+1)",
      {"n", "t", "rounds", "agreement over all strategies"});
  const std::vector<std::array<std::uint32_t, 3>> cases{
      {{4, 2, 2}}, {{4, 2, 3}}, {{3, 1, 1}}, {{3, 1, 2}}};
  for (const auto& [n, t, r] : cases) {
    valency::GameConfig cfg{n, t, r};
    const auto c = valency::census(cfg);
    tight.add_row({expsup::Table::num(std::uint64_t{n}),
                   expsup::Table::num(std::uint64_t{t}),
                   expsup::Table::num(std::uint64_t{r}),
                   c.all_agree ? "holds" : "broken (as predicted)"});
  }
  tight.print(std::cout);

  std::cout << "\nReading: bivalent input assignments exist at every (n, t)"
               "\nwith t >= 1 — the Lemma 13 starting point of the Theorem 2"
               "\nproof — while the flood-set fallback itself is exhaustively"
               "\ncorrect in t+1 rounds and exhaustively breakable in t."
            << std::endl;
  return 0;
}

int main() { return omx::harness::guarded_main(run_bench); }
