// Experiment FIG2 — Figure 2 (tree relay inside one group) and
// Lemmas 1-2: GroupBitsAggregation runs in O(log n) rounds and costs
// O(n·log²n) bits per group; GroupBitsSpreading costs O(n^{3/2}·log²n)
// per epoch in total.
//
// We attach a passive "wiretap" adversary (full information, zero
// interference) that tallies every in-flight message by kind, attributes
// aggregation traffic to the sender's group, and reports the measured
// per-group / per-epoch costs next to the lemma bounds. A second table
// shows the operative-downgrade behaviour of the 3-round relay when a
// group is attacked.
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "adversary/strategies.h"
#include "core/optimal_core.h"
#include "core/params.h"
#include "expsup/table.h"
#include "groups/partition.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "rng/ledger.h"
#include "sim/runner.h"

using namespace omx;

namespace {

struct Tally {
  std::uint64_t count = 0;
  std::uint64_t bits = 0;
};

/// Passive adversary: tallies messages by payload kind; never interferes.
class Wiretap final : public sim::Adversary<core::Msg> {
 public:
  explicit Wiretap(std::uint32_t group_width) : width_(group_width) {}

  void intervene(sim::AdversaryContext<core::Msg>& ctx) override {
    for (const auto& m : ctx.messages()) {
      const std::uint64_t bits = core::bit_size(m.payload);
      const char* kind = std::visit(
          [](const auto& p) -> const char* {
            using T = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<T, core::RelayPush>) return "push";
            else if constexpr (std::is_same_v<T, core::RelayAck>) return "ack";
            else if constexpr (std::is_same_v<T, core::RelayShare>)
              return "share";
            else if constexpr (std::is_same_v<T, core::SpreadMsg>)
              return "spread";
            else if constexpr (std::is_same_v<T, core::DecisionMsg>)
              return "decision";
            else if constexpr (std::is_same_v<T, core::FloodMsg>)
              return "flood";
            else return "gossip";
          },
          m.payload);
      auto& t = by_kind_[kind];
      t.count += 1;
      t.bits += bits;
      if (kind[0] == 'p' || kind[0] == 'a' || kind[0] == 's') {
        if (kind[1] != 'p') {  // push/ack/share (not spread)
          group_bits_.resize(
              std::max<std::size_t>(group_bits_.size(), m.from / width_ + 1));
          group_bits_[m.from / width_] += bits;
        }
      }
    }
  }

  std::map<std::string, Tally> by_kind_;
  std::vector<std::uint64_t> group_bits_;
  std::uint32_t width_;
};

}  // namespace

int run_bench() {
  harness::Sweep sweep;
  const std::uint32_t n = 1024;
  const std::uint32_t t = core::Params::max_t_optimal(n);
  const core::Params params;

  core::OptimalConfig mc;
  mc.t = t;
  auto inputs = harness::make_inputs(harness::InputPattern::Half, n, 1);
  core::OptimalMachine machine(mc, inputs);
  rng::Ledger ledger(n, 1);
  groups::SqrtPartition part(n);
  Wiretap tap(part.max_group_size());
  sim::Runner<core::Msg> runner(n, t, &ledger, &tap);
  machine.set_fault_view(&runner.faults());
  runner.run(machine);

  const auto& core_ref = machine.core();
  const std::uint32_t epochs = core_ref.epochs_total();
  const double logn = std::log2(static_cast<double>(n));

  expsup::Table table("Figure 2 / Lemmas 1-2 — per-kind message costs, n=1024",
                      {"kind", "messages", "bits", "bits/epoch"});
  for (const auto& [kind, tally] : tap.by_kind_) {
    table.add_row({kind, expsup::Table::num(tally.count),
                   expsup::Table::num(tally.bits),
                   expsup::Table::num(static_cast<double>(tally.bits) /
                                      epochs)});
  }
  table.print(std::cout);

  // Lemma 2: per-group aggregation bits per epoch <= O(n log^2 n).
  std::uint64_t worst_group = 0;
  for (auto b : tap.group_bits_) worst_group = std::max(worst_group, b);
  const double per_group_epoch =
      static_cast<double>(worst_group) / epochs;
  expsup::Table lemma2("Lemma 2 — aggregation cost per group per epoch",
                       {"measured (worst group)", "n*log^2 n",
                        "ratio (the O(1) constant)"});
  lemma2.add_row({expsup::Table::num(per_group_epoch),
                  expsup::Table::num(n * logn * logn),
                  expsup::Table::num(per_group_epoch / (n * logn * logn))});
  lemma2.print(std::cout);

  // Rounds per epoch: 3 relay rounds per tree layer + spreading.
  const groups::TreeDecomposition tree(part.max_group_size());
  expsup::Table rounds("Figure 2 — epoch round budget (O(log n) claim)",
                       {"tree layers", "agg rounds 3(L-1)", "spread rounds",
                        "epoch rounds", "ceil(log2 n)"});
  rounds.add_row(
      {expsup::Table::num(std::uint64_t{tree.num_layers()}),
       expsup::Table::num(std::uint64_t{3 * (tree.num_layers() - 1)}),
       expsup::Table::num(std::uint64_t{params.spread_rounds(n)}),
       expsup::Table::num(std::uint64_t{core_ref.epoch_rounds()}),
       expsup::Table::num(std::uint64_t{static_cast<std::uint64_t>(logn)})});
  rounds.print(std::cout);

  // Operative downgrade under a concentrated in-group attack (Figure 2's
  // "process c does not communicate" scenario, scaled up).
  expsup::Table downgrade(
      "Figure 2 — operative downgrades when whole groups are silenced",
      {"n", "t (silenced)", "operative at end", "n - 3t (Lemma 7 floor)"});
  for (std::uint32_t nn : {256u, 1024u}) {
    harness::ExperimentConfig cfg;
    cfg.n = nn;
    cfg.t = core::Params::max_t_optimal(nn);
    cfg.attack = harness::Attack::GroupKiller;
    cfg.inputs = harness::InputPattern::Random;
    const auto r = sweep.run(cfg).result;
    downgrade.add_row({expsup::Table::num(std::uint64_t{nn}),
                       expsup::Table::num(std::uint64_t{cfg.t}),
                       expsup::Table::num(std::uint64_t{r.operative_end}),
                       expsup::Table::num(std::uint64_t{nn - 3 * cfg.t})});
  }
  downgrade.print(std::cout);
  sweep.print_summary(std::cerr);
  return 0;
}

int main() { return harness::guarded_main(run_bench); }
