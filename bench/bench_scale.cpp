// Large-n acceptance driver for the packed representations: proves the
// scale targets of DESIGN.md §8 actually hold on the machine at hand and
// exits nonzero when they do not, so CI can gate on it.
//
//   bench_scale [out.json] [--flood-n N] [--gossip-n N] [--flood-budget-s S]
//
// Two probes:
//   * flood  — FloodSet with packed views + streamed delivery at
//     n = 16384 (default). No inbox materialization: the O(n^2) pair work
//     per round becomes word-wide ORs against double-buffered send logs.
//     Budget: --flood-budget-s wall-clock seconds (default 10; the
//     "single-digit seconds" acceptance bar with a little CI headroom).
//     Exceeding the budget or deciding wrong is a hard failure.
//   * gossip — DoublingGossip with run-length-coded knowledge at
//     n = 10^6 (default 0 = skipped; CI and local runs opt in with
//     --gossip-n because the full-size run takes minutes). Uses the
//     MATERIALIZED delivery path on purpose: streamed delivery walks every
//     send-group per receiver, which is O(n^2) per round for graph-
//     restricted multicasts, while the counting-sort materializer is
//     O(records) = O(n * window). The contact window is the cost lever
//     (default 40).
//
// Both probes print per-phase timings; the JSON mirrors BENCH_engine.json
// (hardware_threads stamped for provenance).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "adversary/strategies.h"
#include "baselines/doubling_gossip.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "rng/ledger.h"
#include "sim/adversary.h"
#include "sim/runner.h"
#include "support/thread_pool.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int run_scale(int argc, char** argv) {
  const char* out_path = "BENCH_scale.json";
  std::uint32_t flood_n = 16384;
  std::uint32_t gossip_n = 0;  // opt-in: full size is 1000000
  std::uint32_t gossip_window = 40;
  double flood_budget_s = 10.0;
  for (int i = 1; i < argc; ++i) {
    const auto u32 = [&](const char* flag, std::uint32_t* out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(1);
      }
      *out = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      return true;
    };
    if (u32("--flood-n", &flood_n) || u32("--gossip-n", &gossip_n) ||
        u32("--gossip-window", &gossip_window)) {
      continue;
    }
    if (std::strcmp(argv[i], "--flood-budget-s") == 0 && i + 1 < argc) {
      flood_budget_s = std::strtod(argv[++i], nullptr);
      continue;
    }
    out_path = argv[i];
  }

  const unsigned hw = omx::support::ThreadPool::hardware_threads();
  std::string json = "{\n  \"hardware_threads\": " + std::to_string(hw) +
                     ",\n";
  bool ok = true;

  // --- flood probe -------------------------------------------------------
  {
    omx::harness::ExperimentConfig cfg;
    cfg.algo = omx::harness::Algo::FloodSet;
    cfg.attack = omx::harness::Attack::None;
    cfg.n = flood_n;
    cfg.t = 8;  // t+1 flood rounds; small t keeps the probe about n, not t
    cfg.inputs = omx::harness::InputPattern::Random;
    cfg.seed = 1;
    cfg.threads = 1;
    cfg.packed = true;
    cfg.streamed = true;
    omx::sim::EngineStats stats;
    cfg.engine_stats = &stats;
    std::printf("flood: packed+streamed floodset n=%u t=%u (budget %.0fs)\n",
                flood_n, cfg.t, flood_budget_s);
    std::fflush(stdout);
    omx::harness::Sweep sweep;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = sweep.run(cfg).result;
    const double wall_s = seconds_since(t0);
    std::printf("flood: %.2fs wall (compute %.2fs | adversary %.2fs | "
                "delivery %.2fs), %llu rounds, decided=%d\n",
                wall_s, stats.compute_ns / 1e9, stats.adversary_ns / 1e9,
                stats.delivery_ns / 1e9,
                static_cast<unsigned long long>(stats.rounds),
                res.agreement ? 1 : 0);
    if (!res.agreement || !res.validity) {
      std::fprintf(stderr, "error: flood probe violated agreement/validity "
                           "at n=%u\n", flood_n);
      ok = false;
    }
    if (wall_s > flood_budget_s) {
      std::fprintf(stderr,
                   "error: flood probe took %.2fs, over the %.2fs budget "
                   "(n=%u)\n", wall_s, flood_budget_s, flood_n);
      ok = false;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"flood\": {\"n\": %u, \"t\": %u, \"wall_s\": %.2f, "
                  "\"budget_s\": %.2f, \"compute_s\": %.2f, "
                  "\"delivery_s\": %.2f, \"rounds\": %llu, "
                  "\"comm_bits\": %llu, \"ok\": %s},\n",
                  flood_n, cfg.t, wall_s, flood_budget_s,
                  stats.compute_ns / 1e9, stats.delivery_ns / 1e9,
                  static_cast<unsigned long long>(stats.rounds),
                  static_cast<unsigned long long>(res.metrics.comm_bits),
                  ok ? "true" : "false");
    json += buf;
  }

  // --- gossip probe ------------------------------------------------------
  if (gossip_n > 0) {
    std::printf("gossip: packed doubling-gossip n=%u window=%u "
                "(materialized delivery)\n", gossip_n, gossip_window);
    std::fflush(stdout);
    omx::baselines::DoublingConfig cfg;
    cfg.t = 0;
    cfg.initial_contacts = gossip_window;
    cfg.packed = true;
    const auto inputs =
        omx::harness::make_inputs(omx::harness::InputPattern::Random,
                                  gossip_n, 7);
    omx::baselines::DoublingGossipMachine machine(cfg, inputs);
    omx::rng::Ledger ledger(gossip_n, 1);
    omx::adversary::NullAdversary<omx::core::Msg> adv;
    omx::sim::Runner<omx::core::Msg>::Options opts;
    opts.threads = 1;
    omx::sim::Runner<omx::core::Msg> runner(gossip_n, /*t=*/0, &ledger, &adv,
                                            opts);
    machine.set_fault_view(&runner.faults());
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = runner.run(machine);
    const double wall_s = seconds_since(t0);
    std::uint32_t done = 0;
    for (omx::sim::ProcessId p = 0; p < gossip_n; ++p) {
      done += machine.completed(p) ? 1u : 0u;
    }
    std::printf("gossip: %.1fs wall, %llu rounds, %u/%u completed, "
                "%llu messages\n", wall_s,
                static_cast<unsigned long long>(res.metrics.rounds), done,
                gossip_n,
                static_cast<unsigned long long>(res.metrics.messages));
    if (done != gossip_n) {
      std::fprintf(stderr, "error: gossip probe left %u/%u processes "
                           "incomplete at n=%u\n", gossip_n - done, gossip_n,
                   gossip_n);
      ok = false;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"gossip\": {\"n\": %u, \"window\": %u, "
                  "\"wall_s\": %.1f, \"rounds\": %llu, \"messages\": %llu, "
                  "\"comm_bits\": %llu, \"completed\": %u, \"ok\": %s},\n",
                  gossip_n, gossip_window, wall_s,
                  static_cast<unsigned long long>(res.metrics.rounds),
                  static_cast<unsigned long long>(res.metrics.messages),
                  static_cast<unsigned long long>(res.metrics.comm_bits),
                  done, done == gossip_n ? "true" : "false");
    json += buf;
  } else {
    std::printf("gossip: skipped (pass --gossip-n 1000000 for the full "
                "probe)\n");
  }

  json += std::string("  \"ok\": ") + (ok ? "true" : "false") + "\n}\n";
  if (FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  }
  return ok ? 0 : 1;
}

int main(int argc, char** argv) {
  return omx::harness::guarded_main([&] { return run_scale(argc, argv); });
}
