// Multi-valued consensus (bit-by-bit over Algorithm 1): agreement, strong
// validity (the decision is some process's input — omission faults cannot
// invent values), unanimity short-circuits, and the paper's validity clause.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <tuple>

#include "adversary/strategies.h"
#include "core/multi_value.h"
#include "core/params.h"
#include "harness/experiment.h"
#include "rng/ledger.h"
#include "sim/runner.h"

namespace omx::core {
namespace {

struct MvRun {
  std::unique_ptr<rng::Ledger> ledger;
  std::unique_ptr<MultiValueMachine> machine;
  std::unique_ptr<sim::Runner<Msg>> runner;
  sim::Metrics metrics;
};

MvRun run_mv(const std::vector<std::uint32_t>& inputs, std::uint32_t bits,
             std::uint32_t t, sim::Adversary<Msg>* adv, std::uint64_t seed) {
  MvRun out;
  const auto n = static_cast<std::uint32_t>(inputs.size());
  MultiValueConfig cfg;
  cfg.t = t;
  cfg.bits = bits;
  out.ledger = std::make_unique<rng::Ledger>(n, seed);
  out.machine = std::make_unique<MultiValueMachine>(cfg, inputs);
  out.runner =
      std::make_unique<sim::Runner<Msg>>(n, t, out.ledger.get(), adv);
  out.machine->set_fault_view(&out.runner->faults());
  out.metrics = out.runner->run(*out.machine).metrics;
  return out;
}

class MultiValueSpec
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(MultiValueSpec, AgreementAndStrongValidityUnderOmissions) {
  const auto [n, seed] = GetParam();
  const std::uint32_t t = Params::max_t_optimal(n);
  const std::uint32_t bits = 6;
  Xoshiro256 gen(seed);
  std::vector<std::uint32_t> inputs(n);
  std::set<std::uint32_t> input_set;
  for (auto& v : inputs) {
    v = static_cast<std::uint32_t>(gen.below(1u << bits));
    input_set.insert(v);
  }
  adversary::RandomOmissionAdversary<Msg> adv(n, t, 0.9, seed);
  auto run = run_mv(inputs, bits, t, &adv, seed);

  std::int64_t decision = -1;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (run.runner->faults().is_corrupted(p)) continue;
    const auto out = run.machine->outcome(p);
    ASSERT_TRUE(out.decided) << p;
    if (decision < 0) decision = out.value;
    EXPECT_EQ(out.value, static_cast<std::uint32_t>(decision)) << p;
  }
  ASSERT_GE(decision, 0);
  // Strong validity: omission-faulty processes follow the protocol, so the
  // decision must be somebody's actual input.
  EXPECT_TRUE(input_set.count(static_cast<std::uint32_t>(decision)))
      << "decision " << decision << " was nobody's input";
}

INSTANTIATE_TEST_SUITE_P(Grid, MultiValueSpec,
                         ::testing::Combine(::testing::Values(33u, 64u, 100u),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(MultiValue, UnanimousInputsDecideThatValueWithZeroCoins) {
  const std::uint32_t n = 64;
  std::vector<std::uint32_t> inputs(n, 0b101101u);
  adversary::SplitBrainAdversary<Msg> adv(n, {1, 7});
  auto run = run_mv(inputs, 6, 2, &adv, 5);
  for (std::uint32_t p = 0; p < n; ++p) {
    if (run.runner->faults().is_corrupted(p)) continue;
    EXPECT_EQ(run.machine->outcome(p).value, 0b101101u);
  }
  EXPECT_EQ(run.metrics.random_bits, 0u);
}

TEST(MultiValue, NonFaultyUnanimityBeatsFaultyDissent) {
  // All non-faulty propose 42; the two faulty propose 13. Validity clause:
  // the decision must be 42 whatever the adversary does.
  const std::uint32_t n = 60;
  std::vector<std::uint32_t> inputs(n, 42);
  inputs[3] = 13;
  inputs[9] = 13;
  adversary::StaticCrashAdversary<Msg> adv({{3, 2}, {9, 0}});
  auto run = run_mv(inputs, 6, 2, &adv, 7);
  for (std::uint32_t p = 0; p < n; ++p) {
    if (run.runner->faults().is_corrupted(p)) continue;
    EXPECT_EQ(run.machine->outcome(p).value, 42u);
  }
}

TEST(MultiValue, WorksAcrossBitWidths) {
  for (std::uint32_t bits : {1u, 3u, 12u}) {
    const std::uint32_t n = 40;
    Xoshiro256 gen(bits);
    std::vector<std::uint32_t> inputs(n);
    const std::uint32_t cap = bits >= 32 ? 0xFFFFFFFFu : (1u << bits);
    for (auto& v : inputs) v = static_cast<std::uint32_t>(gen.below(cap));
    adversary::NullAdversary<Msg> adv;
    auto run = run_mv(inputs, bits, 1, &adv, 3);
    std::uint32_t decision = run.machine->outcome(0).value;
    for (std::uint32_t p = 0; p < n; ++p) {
      EXPECT_EQ(run.machine->outcome(p).value, decision) << "bits=" << bits;
    }
    EXPECT_LT(decision, cap);
  }
}

TEST(MultiValue, ScheduleIsBitsTimesPhase) {
  const std::uint32_t n = 64;
  MultiValueConfig cfg;
  cfg.t = 2;
  cfg.bits = 5;
  std::vector<std::uint32_t> inputs(n, 1);
  MultiValueMachine machine(cfg, inputs);
  const std::uint32_t inner =
      OptimalCore::schedule_length(cfg.params, n, cfg.t, false);
  EXPECT_EQ(machine.scheduled_rounds(), 5 * (inner + 2));
}

TEST(MultiValue, RejectsBadInputs) {
  MultiValueConfig cfg;
  cfg.bits = 3;
  std::vector<std::uint32_t> too_big{8};
  EXPECT_THROW(MultiValueMachine(cfg, too_big), PreconditionError);
  cfg.bits = 0;
  std::vector<std::uint32_t> ok{1};
  EXPECT_THROW(MultiValueMachine(cfg, ok), PreconditionError);
  cfg.bits = 33;
  EXPECT_THROW(MultiValueMachine(cfg, ok), PreconditionError);
}

TEST(MultiValue, CoinHidingStyleChaosStillAgrees) {
  const std::uint32_t n = 60;
  const std::uint32_t t = Params::max_t_optimal(n);
  Xoshiro256 gen(99);
  std::vector<std::uint32_t> inputs(n);
  for (auto& v : inputs) v = static_cast<std::uint32_t>(gen.below(16));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    adversary::ChaosAdversary<Msg> adv(n, seed);
    auto run = run_mv(inputs, 4, t, &adv, seed);
    std::int64_t decision = -1;
    for (std::uint32_t p = 0; p < n; ++p) {
      if (run.runner->faults().is_corrupted(p)) continue;
      const auto out = run.machine->outcome(p);
      ASSERT_TRUE(out.decided);
      if (decision < 0) decision = out.value;
      EXPECT_EQ(out.value, static_cast<std::uint32_t>(decision));
    }
  }
}

}  // namespace
}  // namespace omx::core
