// The farm's remote-worker protocol: lease/heartbeat/result semantics
// driven directly through Farm::handle_request (no sockets), then the real
// thing end-to-end — forked `RemoteWorker` processes over TCP and AF_UNIX,
// crash-after-write resubmission, and a chaos link — all converging to a
// merged file byte-identical to a single-process sweep.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "farm/farm.h"
#include "farm/remote_worker.h"
#include "farm/transport.h"
#include "harness/sweep.h"
#include "support/check.h"

namespace omx::farm {
namespace {

namespace fs = std::filesystem;

fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("omx_remote_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

harness::ExperimentConfig tiny(std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.algo = harness::Algo::FloodSet;
  cfg.attack = harness::Attack::None;
  cfg.n = 8;
  cfg.t = 2;
  cfg.seed = seed;
  return cfg;
}

std::vector<std::string> sorted_lines(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

void write_reference(const fs::path& path, std::uint64_t seeds) {
  harness::SweepOptions ref_opts;
  ref_opts.checkpoint_path = path.string();
  ref_opts.capture_repro = false;
  ref_opts.capture_trace = false;
  harness::Sweep sweep(ref_opts);
  for (std::uint64_t s = 1; s <= seeds; ++s) sweep.run(tiny(s));
}

FarmOptions remote_only_opts(const fs::path& dir) {
  FarmOptions o;
  o.dir = dir.string();
  o.workers = 0;  // every trial must cross the wire
  o.listen = "tcp:127.0.0.1:0";
  o.backoff_base_ms = 1;
  o.serve_socket = false;
  o.use_artifact_cache = false;
  o.sweep.capture_repro = false;
  o.sweep.capture_trace = false;
  return o;
}

// ---------------------------------------------------------------------------
// Protocol unit tests: one decoded request in, one response out.

/// Send one request through handle_request and decode the reply.
std::map<std::string, std::string> ask(
    Farm* farm, Farm::RemotePeer* peer,
    std::vector<std::pair<std::string, std::string>> fields) {
  static std::uint64_t rid = 100;
  fields.insert(fields.begin() + 1, {"rid", std::to_string(++rid)});
  std::map<std::string, std::string> request;
  EXPECT_TRUE(wire::decode(wire::encode(fields), &request));
  std::map<std::string, std::string> response;
  EXPECT_TRUE(wire::decode(farm->handle_request(request, peer), &response));
  // Every response echoes the request's rid — the worker's only defense
  // against duplicated/delayed responses desynchronizing its RPC stream.
  EXPECT_EQ(wire::get(response, "rid"), std::to_string(rid));
  return response;
}

std::string line_for(const std::string& key) {
  harness::TrialOutcome outcome;
  outcome.seed_used = 7;
  return harness::checkpoint_line(key, outcome);
}

TEST(RemoteProtocol, LeaseLifecycleFromHelloToDone) {
  const fs::path dir = scratch("lifecycle");
  FarmOptions opts = remote_only_opts(dir);
  opts.workers = 1;  // construct without a live listener
  opts.listen.clear();
  Farm farm(opts);
  const std::string key = harness::config_key(tiny(1));
  ASSERT_TRUE(farm.add(tiny(1)));

  Farm::RemotePeer peer;
  auto r = ask(&farm, &peer, {{"type", "hello"}, {"name", "w0"}});
  EXPECT_EQ(wire::get(r, "type"), "helloed");
  EXPECT_EQ(wire::get(r, "heartbeat_ms"), "1000");  // no watchdog → default
  EXPECT_EQ(peer.name, "w0");

  r = ask(&farm, &peer, {{"type", "next"}});
  ASSERT_EQ(wire::get(r, "type"), "lease");
  EXPECT_EQ(wire::get(r, "key"), key);
  EXPECT_EQ(wire::get(r, "epoch"), "1");  // first lease = first attempt
  harness::ExperimentConfig leased;
  std::string error;
  ASSERT_TRUE(harness::parse_config(wire::get(r, "config"), &leased, &error))
      << error;
  EXPECT_EQ(harness::config_key(leased), key);  // config survives the wire

  // The only item is leased: another hungry worker polls.
  r = ask(&farm, &peer, {{"type", "next"}});
  EXPECT_EQ(wire::get(r, "type"), "idle");
  EXPECT_NE(wire::get(r, "poll_ms"), "");

  // Heartbeats renew only the current epoch.
  r = ask(&farm, &peer, {{"type", "heartbeat"}, {"key", key}, {"epoch", "1"}});
  EXPECT_EQ(wire::get(r, "type"), "ok");
  r = ask(&farm, &peer, {{"type", "heartbeat"}, {"key", key}, {"epoch", "2"}});
  EXPECT_EQ(wire::get(r, "type"), "stale");

  r = ask(&farm, &peer,
          {{"type", "result"}, {"key", key}, {"epoch", "1"},
           {"line", line_for(key)}});
  EXPECT_EQ(wire::get(r, "type"), "ok");
  EXPECT_NE(farm.status_json().find("\"remote_results\":1"),
            std::string::npos);

  // Idempotent resubmission: same key again is acked and dropped, so no
  // config hash can ever yield two merged rows.
  r = ask(&farm, &peer,
          {{"type", "result"}, {"key", key}, {"epoch", "1"},
           {"line", line_for(key)}});
  EXPECT_EQ(wire::get(r, "type"), "ok");
  EXPECT_NE(farm.status_json().find("\"duplicate_results\":1"),
            std::string::npos);

  // Grid settled: the next ask ends the worker's run loop.
  r = ask(&farm, &peer, {{"type", "next"}});
  EXPECT_EQ(wire::get(r, "type"), "done");
}

TEST(RemoteProtocol, FailReportsAreEpochGatedAndReQueue) {
  const fs::path dir = scratch("epochs");
  FarmOptions opts = remote_only_opts(dir);
  opts.workers = 1;
  opts.listen.clear();
  Farm farm(opts);
  const std::string key = harness::config_key(tiny(1));
  ASSERT_TRUE(farm.add(tiny(1)));
  Farm::RemotePeer peer;

  auto r = ask(&farm, &peer, {{"type", "next"}});
  ASSERT_EQ(wire::get(r, "type"), "lease");

  // A delayed failure report from a previous life must be inert.
  r = ask(&farm, &peer, {{"type", "fail"}, {"key", key}, {"epoch", "9"}});
  EXPECT_EQ(wire::get(r, "type"), "stale");
  // The current epoch's report burns the lease and re-queues the item.
  r = ask(&farm, &peer, {{"type", "fail"}, {"key", key}, {"epoch", "1"}});
  EXPECT_EQ(wire::get(r, "type"), "ok");

  ::usleep(5 * 1000);  // past the 1 ms retry backoff
  r = ask(&farm, &peer, {{"type", "next"}});
  ASSERT_EQ(wire::get(r, "type"), "lease");
  EXPECT_EQ(wire::get(r, "epoch"), "2") << "re-lease bumps the epoch";

  // Stale results for a *settled* item are different: after the retry
  // budget is spent the daemon records a synthetic row, and a late real
  // result must not create a second line for the key.
  r = ask(&farm, &peer, {{"type", "fail"}, {"key", key}, {"epoch", "2"}});
  EXPECT_EQ(wire::get(r, "type"), "ok");
  ::usleep(5 * 1000);  // past the doubled backoff
  r = ask(&farm, &peer, {{"type", "next"}});
  ASSERT_EQ(wire::get(r, "type"), "lease");
  r = ask(&farm, &peer, {{"type", "fail"}, {"key", key}, {"epoch", "3"}});
  EXPECT_EQ(wire::get(r, "type"), "ok");  // budget (3) now exhausted
  r = ask(&farm, &peer,
          {{"type", "result"}, {"key", key}, {"epoch", "3"},
           {"line", line_for(key)}});
  EXPECT_EQ(wire::get(r, "type"), "ok");  // acked (clears the spool)...
  EXPECT_EQ(farm.status_json().find("\"remote_results\":1"),
            std::string::npos)
      << "...but dropped: the synthetic row already settled this key";
}

TEST(RemoteProtocol, BadResultLinesAreRejectedUnknownKeysAcked) {
  const fs::path dir = scratch("reject");
  FarmOptions opts = remote_only_opts(dir);
  opts.workers = 1;
  opts.listen.clear();
  Farm farm(opts);
  const std::string key = harness::config_key(tiny(1));
  ASSERT_TRUE(farm.add(tiny(1)));
  Farm::RemotePeer peer;
  auto r = ask(&farm, &peer, {{"type", "next"}});
  ASSERT_EQ(wire::get(r, "type"), "lease");

  // The frame checksum passed, so these bytes arrived intact — a line that
  // does not parse or names another key is the worker's bug, and "retry"
  // would loop forever. Reject.
  r = ask(&farm, &peer,
          {{"type", "result"}, {"key", key}, {"epoch", "1"},
           {"line", "not a checkpoint line"}});
  EXPECT_EQ(wire::get(r, "type"), "reject");
  r = ask(&farm, &peer,
          {{"type", "result"}, {"key", key}, {"epoch", "1"},
           {"line", line_for("0123456789abcdef")}});
  EXPECT_EQ(wire::get(r, "type"), "reject");

  // A key outside this grid (worker outliving a daemon restart with a
  // narrower grid): ack so the worker clears its spool, record nothing.
  r = ask(&farm, &peer,
          {{"type", "result"}, {"key", "feedfeedfeedfeed"}, {"epoch", "0"},
           {"line", line_for("feedfeedfeedfeed")}});
  EXPECT_EQ(wire::get(r, "type"), "ok");
  EXPECT_FALSE(fs::exists(dir / "shards" / "remote.jsonl"))
      << "an unknown key must never grow the merge";

  // The real item is still leasable and unharmed.
  r = ask(&farm, &peer,
          {{"type", "result"}, {"key", key}, {"epoch", "1"},
           {"line", line_for(key)}});
  EXPECT_EQ(wire::get(r, "type"), "ok");
}

TEST(RemoteProtocol, ResultMessagesCarryArtifactPointers) {
  const fs::path dir = scratch("artifacts");
  FarmOptions opts = remote_only_opts(dir);
  opts.workers = 1;
  opts.listen.clear();
  Farm farm(opts);
  const std::string key = harness::config_key(tiny(1));
  ASSERT_TRUE(farm.add(tiny(1)));
  Farm::RemotePeer peer;
  auto r = ask(&farm, &peer, {{"type", "next"}});
  ASSERT_EQ(wire::get(r, "type"), "lease");

  r = ask(&farm, &peer,
          {{"type", "result"}, {"key", key}, {"epoch", "1"},
           {"line", line_for(key)},
           {"repro", "/w0/repro/" + key + ".repro"},
           {"trace", "/w0/repro/" + key + ".trace"},
           {"worker", "w0"}});
  ASSERT_EQ(wire::get(r, "type"), "ok");

  r = ask(&farm, &peer, {{"type", "artifacts"}});
  const std::string json = wire::get(r, "json");
  EXPECT_NE(json.find("\"" + key + "\""), std::string::npos) << json;
  EXPECT_NE(json.find("/w0/repro/" + key + ".repro"), std::string::npos);
  EXPECT_NE(json.find("\"worker\":\"w0\""), std::string::npos);
}

TEST(RemoteProtocol, StatusResultsFollowAndUnknownVerbs) {
  const fs::path dir = scratch("verbs");
  FarmOptions opts = remote_only_opts(dir);
  opts.workers = 1;
  opts.listen.clear();
  Farm farm(opts);
  ASSERT_TRUE(farm.add(tiny(1)));
  Farm::RemotePeer peer;

  auto r = ask(&farm, &peer, {{"type", "status"}});
  EXPECT_NE(wire::get(r, "json").find("\"items\":1"), std::string::npos);

  r = ask(&farm, &peer, {{"type", "results"}});
  EXPECT_EQ(wire::get(r, "lines"), "");  // nothing durable yet

  EXPECT_FALSE(peer.follow);
  r = ask(&farm, &peer, {{"type", "follow"}});
  EXPECT_EQ(wire::get(r, "type"), "ok");
  EXPECT_TRUE(peer.follow);

  r = ask(&farm, &peer, {{"type", "frobnicate"}});
  EXPECT_EQ(wire::get(r, "type"), "error");
  EXPECT_NE(wire::get(r, "detail").find("unknown"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: real daemons, real forked RemoteWorker processes.

/// Poll for the daemon's published endpoint file (port 0 resolution).
std::string wait_for_endpoint(const std::string& farm_dir) {
  const std::string path = Farm::endpoint_path_for(farm_dir);
  for (int i = 0; i < 500; ++i) {
    std::ifstream in(path);
    std::string endpoint;
    if (std::getline(in, endpoint) && !endpoint.empty()) return endpoint;
    ::usleep(10 * 1000);
  }
  return "";
}

/// Fork a RemoteWorker process against `farm_dir`'s published endpoint.
/// Exits 0 when the daemon finished the grid, 1 when it gave up.
pid_t spawn_worker(const std::string& farm_dir, const fs::path& worker_dir,
                   const std::string& name, const std::string& chaos = "",
                   const char* crash_after_write_key = nullptr) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (crash_after_write_key != nullptr) {
    ::setenv("OMX_FARM_TEST_CRASH_AFTER_WRITE_KEY", crash_after_write_key, 1);
  }
  RemoteWorkerOptions opts;
  opts.endpoint = wait_for_endpoint(farm_dir);
  if (opts.endpoint.empty()) ::_exit(3);
  opts.dir = worker_dir.string();
  opts.name = name;
  opts.chaos = chaos;
  opts.backoff_base_ms = 5;
  opts.reconnect_deadline_ms = 20000;
  opts.sweep.capture_repro = false;
  opts.sweep.capture_trace = false;
  try {
    RemoteWorker worker(opts);
    ::_exit(worker.run().daemon_finished ? 0 : 1);
  } catch (const std::exception&) {
    ::_exit(2);
  }
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

TEST(RemoteFarm, TcpWorkersMatchSingleProcessSweep) {
  const fs::path dir = scratch("tcp_e2e");
  write_reference(dir / "ref.jsonl", 6);

  FarmOptions opts = remote_only_opts(dir / "farm");
  opts.watchdog_ms = 5000;
  Farm farm(opts);
  for (std::uint64_t s = 1; s <= 6; ++s) ASSERT_TRUE(farm.add(tiny(s)));

  const pid_t w0 = spawn_worker(opts.dir, dir / "w0", "w0");
  const pid_t w1 = spawn_worker(opts.dir, dir / "w1", "w1");
  const FarmReport report = farm.run();

  EXPECT_EQ(wait_exit(w0), 0);
  EXPECT_EQ(wait_exit(w1), 0);
  EXPECT_EQ(report.done, 6u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.remote_results, 6u);  // workers=0: all crossed the wire
  EXPECT_GE(report.remote_workers_seen, 2u);
  EXPECT_EQ(report.corrupt_frames, 0u);
  EXPECT_EQ(sorted_lines(report.merged_path), sorted_lines(dir / "ref.jsonl"));
}

TEST(RemoteFarm, UnixEndpointRunsTheSameProtocol) {
  const fs::path dir = scratch("unix_e2e");
  write_reference(dir / "ref.jsonl", 3);

  FarmOptions opts = remote_only_opts(dir / "farm");
  opts.listen = "unix:" + (dir / "workers.sock").string();
  Farm farm(opts);
  for (std::uint64_t s = 1; s <= 3; ++s) ASSERT_TRUE(farm.add(tiny(s)));

  const pid_t w0 = spawn_worker(opts.dir, dir / "w0", "w0");
  const FarmReport report = farm.run();

  EXPECT_EQ(wait_exit(w0), 0);
  EXPECT_EQ(report.remote_results, 3u);
  EXPECT_EQ(sorted_lines(report.merged_path), sorted_lines(dir / "ref.jsonl"));
}

TEST(RemoteFarm, CrashAfterSpoolWriteResubmitsWithoutADuplicateRow) {
  // The duplicate-submission oracle: worker A completes a trial, makes the
  // line durable in its spool, and dies BEFORE the daemon acks. Worker B
  // (same state directory — "the worker restarted") must resubmit the
  // spooled line, and the merge must hold exactly one row for the key.
  const fs::path dir = scratch("crash_resubmit");
  write_reference(dir / "ref.jsonl", 3);
  const std::string crash_key = harness::config_key(tiny(2));

  FarmOptions opts = remote_only_opts(dir / "farm");
  Farm farm(opts);
  for (std::uint64_t s = 1; s <= 3; ++s) ASSERT_TRUE(farm.add(tiny(s)));

  // An orchestrator child sequences the two worker lives so the parent can
  // stay blocked in farm.run().
  const pid_t orchestrator = ::fork();
  ASSERT_GE(orchestrator, 0);
  if (orchestrator == 0) {
    const pid_t a = spawn_worker(opts.dir, dir / "w", "w-life-1", "",
                                 crash_key.c_str());
    if (wait_exit(a) != 9) ::_exit(10);  // the hook must have fired
    // Life 1 left the crash key's line in the spool, unacked.
    {
      std::ifstream spool(dir / "w" / "pending.jsonl");
      std::string line;
      bool found = false;
      while (std::getline(spool, line)) {
        if (line.find(crash_key) != std::string::npos) found = true;
      }
      if (!found) ::_exit(11);
    }
    const pid_t b = spawn_worker(opts.dir, dir / "w", "w-life-2");
    ::_exit(wait_exit(b) == 0 ? 0 : 12);
  }

  const FarmReport report = farm.run();
  EXPECT_EQ(wait_exit(orchestrator), 0);

  EXPECT_EQ(report.done, 3u);
  EXPECT_EQ(report.failed, 0u);
  const auto merged = sorted_lines(report.merged_path);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(std::count_if(merged.begin(), merged.end(),
                          [&](const std::string& line) {
                            return line.find(crash_key) != std::string::npos;
                          }),
            1)
      << "the resubmitted line must appear exactly once";
  EXPECT_EQ(merged, sorted_lines(dir / "ref.jsonl"));
}

TEST(RemoteFarm, ChaosLinkConvergesByteIdentically) {
  // Both workers run behind deterministic FlakyConns that drop, duplicate,
  // delay, and sever. The lease protocol's answer to every one of those is
  // "retry idempotently", so the merge still equals the reference.
  const fs::path dir = scratch("chaos_e2e");
  write_reference(dir / "ref.jsonl", 5);

  // The watchdog must dominate the worker's response-resend timeout by a
  // healthy factor: under drop chaos a live worker can be silent for a few
  // resend windows in a row, and that must read as "lossy", not "dead".
  // (The `omxfarm serve` default is 15 s for the same reason.)
  FarmOptions opts = remote_only_opts(dir / "farm");
  opts.watchdog_ms = 8000;
  opts.max_attempts = 6;
  Farm farm(opts);
  for (std::uint64_t s = 1; s <= 5; ++s) ASSERT_TRUE(farm.add(tiny(s)));

  const pid_t w0 = spawn_worker(opts.dir, dir / "w0", "w0",
                                "seed=7,drop=0.12,dup=0.15,delay=0.2:5,sever=0.04");
  const pid_t w1 = spawn_worker(opts.dir, dir / "w1", "w1",
                                "seed=11,drop=0.1,dup=0.1,delay=0.2:5,sever=0.04");
  const FarmReport report = farm.run();

  // A worker severed at shutdown may give up (exit 1) instead of hearing
  // "done" — both are legitimate ends of a chaos run. The merge is not
  // allowed the same latitude.
  EXPECT_LE(wait_exit(w0), 1);
  EXPECT_LE(wait_exit(w1), 1);
  EXPECT_EQ(report.done, 5u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(sorted_lines(report.merged_path), sorted_lines(dir / "ref.jsonl"));
}

}  // namespace
}  // namespace omx::farm
