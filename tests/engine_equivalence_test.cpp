// Engine-equivalence regression matrix.
//
// The flat-buffer message plane (sim/message_plane.h) replaced the seed
// engine's per-round vector-of-vectors inboxes. The contract of that
// refactor is *bit-identical observable behaviour*: delivery order,
// message/bit accounting, omission counting and every PRNG draw sequence
// must match the old engine exactly. This suite pins the full metric
// vector for an (algorithm x adversary x n x seed) matrix captured from
// the pre-refactor engine at the seed commit.
//
// If a deliberate engine change moves one of these numbers, regenerate the
// table (the dump loop below mirrors the capture tool) rather than
// hand-editing single rows.
#include <gtest/gtest.h>

#include "core/params.h"
#include "harness/experiment.h"

namespace omx {
namespace {

struct GoldenRow {
  harness::Algo algo;
  harness::Attack attack;
  std::uint32_t n;
  std::uint64_t seed;
  // Captured expectations (seed engine, commit 9d537a6).
  std::uint64_t rounds, messages, comm_bits, random_calls, random_bits,
      omitted, time_rounds;
  std::uint32_t corrupted;
  std::uint8_t decision;
};

class EngineEquivalence : public ::testing::TestWithParam<GoldenRow> {};

TEST_P(EngineEquivalence, MetricsBitIdenticalToSeedEngine) {
  const GoldenRow& g = GetParam();
  // The sharded computation phase contracts to the same bit-identical
  // behaviour as the serial engine, so the golden rows must hold at every
  // thread count.
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    harness::ExperimentConfig cfg;
    cfg.algo = g.algo;
    cfg.attack = g.attack;
    cfg.n = g.n;
    cfg.t = g.algo == harness::Algo::Param
                ? core::Params::max_t_param(g.n)
                : core::Params::max_t_optimal(g.n);
    cfg.x = 4;
    cfg.inputs = harness::InputPattern::Random;
    cfg.seed = g.seed;
    cfg.threads = threads;
    const auto r = harness::run_experiment(cfg);
    EXPECT_EQ(r.metrics.rounds, g.rounds);
    EXPECT_EQ(r.metrics.messages, g.messages);
    EXPECT_EQ(r.metrics.comm_bits, g.comm_bits);
    EXPECT_EQ(r.metrics.random_calls, g.random_calls);
    EXPECT_EQ(r.metrics.random_bits, g.random_bits);
    EXPECT_EQ(r.metrics.omitted, g.omitted);
    EXPECT_EQ(r.time_rounds, g.time_rounds);
    EXPECT_EQ(r.metrics.corrupted, g.corrupted);
    EXPECT_EQ(r.decision, g.decision);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedMatrix, EngineEquivalence,
    ::testing::Values(
        GoldenRow{harness::Algo::Optimal, harness::Attack::None, 48u, 1u,
         218u, 184704u, 705375u, 96u, 96u, 0u, 218u, 0u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::None, 48u, 7u,
         218u, 184704u, 702992u, 96u, 96u, 0u, 218u, 0u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::None, 96u, 1u,
         299u, 646968u, 3200724u, 192u, 192u, 0u, 299u, 0u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::None, 96u, 7u,
         299u, 646968u, 3197700u, 192u, 192u, 0u, 299u, 0u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::None, 160u, 1u,
         362u, 1452480u, 8199419u, 320u, 320u, 0u, 362u, 0u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::None, 160u, 7u,
         362u, 1452480u, 8190097u, 320u, 320u, 0u, 362u, 0u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::RandomOmission, 48u, 1u,
         218u, 178472u, 680356u, 94u, 94u, 435u, 218u, 1u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::RandomOmission, 48u, 7u,
         218u, 177043u, 673165u, 94u, 94u, 428u, 218u, 1u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::RandomOmission, 96u, 1u,
         299u, 610217u, 3001342u, 93u, 93u, 2819u, 299u, 3u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::RandomOmission, 96u, 7u,
         299u, 605718u, 2999109u, 186u, 186u, 2797u, 299u, 3u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::RandomOmission, 160u, 1u,
         362u, 1384349u, 7808053u, 310u, 310u, 6802u, 362u, 5u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::RandomOmission, 160u, 7u,
         362u, 1371395u, 7730398u, 310u, 310u, 6745u, 362u, 5u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::GroupKiller, 48u, 1u,
         218u, 177297u, 675700u, 94u, 94u, 509u, 218u, 1u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::GroupKiller, 48u, 7u,
         218u, 177297u, 673485u, 94u, 94u, 509u, 218u, 1u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::GroupKiller, 96u, 1u,
         299u, 607985u, 2971400u, 93u, 93u, 2885u, 299u, 3u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::GroupKiller, 96u, 7u,
         299u, 607985u, 3002709u, 279u, 279u, 2885u, 299u, 3u, 1u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::GroupKiller, 160u, 1u,
         362u, 1364002u, 7682906u, 310u, 310u, 6602u, 362u, 5u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::GroupKiller, 160u, 7u,
         362u, 1364002u, 7670046u, 310u, 310u, 6602u, 362u, 5u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::CoinHiding, 48u, 1u,
         218u, 179145u, 683997u, 96u, 96u, 401u, 218u, 1u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::CoinHiding, 48u, 7u,
         218u, 179145u, 681653u, 96u, 96u, 401u, 218u, 1u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::CoinHiding, 96u, 1u,
         299u, 616613u, 3036156u, 192u, 192u, 2333u, 299u, 3u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::CoinHiding, 96u, 7u,
         299u, 620819u, 3107465u, 474u, 474u, 2105u, 299u, 3u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::CoinHiding, 160u, 1u,
         362u, 1380052u, 7797589u, 320u, 320u, 5484u, 362u, 5u, 0u},
        GoldenRow{harness::Algo::Optimal, harness::Attack::CoinHiding, 160u, 7u,
         362u, 1384651u, 7808908u, 320u, 320u, 5475u, 362u, 5u, 0u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::None, 48u, 1u,
         3u, 6768u, 624912u, 0u, 0u, 0u, 3u, 0u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::None, 48u, 7u,
         3u, 6768u, 624912u, 0u, 0u, 0u, 3u, 0u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::None, 96u, 1u,
         5u, 27360u, 5882400u, 0u, 0u, 0u, 5u, 0u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::None, 96u, 7u,
         5u, 27360u, 5882400u, 0u, 0u, 0u, 5u, 0u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::None, 160u, 1u,
         7u, 76320u, 30248160u, 0u, 0u, 0u, 7u, 0u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::None, 160u, 7u,
         7u, 76320u, 30248160u, 0u, 0u, 0u, 7u, 0u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::RandomOmission, 48u, 1u,
         3u, 6768u, 603856u, 0u, 0u, 239u, 3u, 1u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::RandomOmission, 48u, 7u,
         3u, 6768u, 601224u, 0u, 0u, 226u, 3u, 1u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::RandomOmission, 96u, 1u,
         5u, 36480u, 5891520u, 0u, 0u, 1807u, 5u, 3u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::RandomOmission, 96u, 7u,
         5u, 36385u, 5891425u, 0u, 0u, 1778u, 5u, 3u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::RandomOmission, 160u, 1u,
         7u, 101760u, 30273600u, 0u, 0u, 5028u, 7u, 5u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::RandomOmission, 160u, 7u,
         7u, 101760u, 30273600u, 0u, 0u, 4984u, 7u, 5u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::GroupKiller, 48u, 1u,
         3u, 6721u, 607663u, 0u, 0u, 235u, 3u, 1u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::GroupKiller, 48u, 7u,
         3u, 6721u, 607663u, 0u, 0u, 235u, 3u, 1u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::GroupKiller, 96u, 1u,
         5u, 27075u, 5637965u, 0u, 0u, 1407u, 5u, 3u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::GroupKiller, 96u, 7u,
         5u, 27075u, 5637965u, 0u, 0u, 1407u, 5u, 3u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::GroupKiller, 160u, 1u,
         7u, 75525u, 28961691u, 0u, 0u, 3915u, 7u, 5u, 1u},
        GoldenRow{harness::Algo::FloodSet, harness::Attack::GroupKiller, 160u, 7u,
         7u, 75525u, 28961691u, 0u, 0u, 3915u, 7u, 5u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::None, 48u, 1u,
         424u, 95424u, 213326u, 0u, 0u, 0u, 424u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::None, 48u, 7u,
         424u, 95424u, 213434u, 0u, 0u, 0u, 424u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::None, 96u, 1u,
         744u, 422176u, 1130080u, 24u, 24u, 0u, 744u, 0u, 0u},
        GoldenRow{harness::Algo::Param, harness::Attack::None, 96u, 7u,
         744u, 422176u, 1131418u, 0u, 0u, 0u, 744u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::None, 160u, 1u,
         944u, 998528u, 2813456u, 80u, 80u, 0u, 944u, 0u, 0u},
        GoldenRow{harness::Algo::Param, harness::Attack::None, 160u, 7u,
         944u, 998528u, 2805782u, 0u, 0u, 0u, 944u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::RandomOmission, 48u, 1u,
         424u, 95424u, 213326u, 0u, 0u, 0u, 424u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::RandomOmission, 48u, 7u,
         424u, 95424u, 213434u, 0u, 0u, 0u, 424u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::RandomOmission, 96u, 1u,
         744u, 414757u, 1109710u, 24u, 24u, 372u, 744u, 1u, 0u},
        GoldenRow{harness::Algo::Param, harness::Attack::RandomOmission, 96u, 7u,
         744u, 412984u, 1104582u, 0u, 0u, 346u, 744u, 1u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::RandomOmission, 160u, 1u,
         944u, 979824u, 2760297u, 78u, 78u, 1276u, 944u, 2u, 0u},
        GoldenRow{harness::Algo::Param, harness::Attack::RandomOmission, 160u, 7u,
         944u, 975552u, 2742796u, 0u, 0u, 1160u, 944u, 2u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::GroupKiller, 48u, 1u,
         424u, 95424u, 213326u, 0u, 0u, 0u, 424u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::GroupKiller, 48u, 7u,
         424u, 95424u, 213434u, 0u, 0u, 0u, 424u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::GroupKiller, 96u, 1u,
         744u, 414106u, 1108946u, 0u, 0u, 545u, 744u, 1u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::GroupKiller, 96u, 7u,
         744u, 414106u, 1109444u, 0u, 0u, 545u, 744u, 1u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::GroupKiller, 160u, 1u,
         944u, 978358u, 2755458u, 76u, 76u, 1650u, 944u, 2u, 0u},
        GoldenRow{harness::Algo::Param, harness::Attack::GroupKiller, 160u, 7u,
         944u, 978358u, 2750158u, 0u, 0u, 1650u, 944u, 2u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::CoinHiding, 48u, 1u,
         424u, 95424u, 213326u, 0u, 0u, 0u, 424u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::CoinHiding, 48u, 7u,
         424u, 95424u, 213434u, 0u, 0u, 0u, 424u, 0u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::CoinHiding, 96u, 1u,
         744u, 414808u, 1110386u, 24u, 24u, 509u, 744u, 1u, 0u},
        GoldenRow{harness::Algo::Param, harness::Attack::CoinHiding, 96u, 7u,
         744u, 413633u, 1109585u, 0u, 0u, 562u, 744u, 1u, 1u},
        GoldenRow{harness::Algo::Param, harness::Attack::CoinHiding, 160u, 1u,
         944u, 981250u, 2767418u, 80u, 80u, 1458u, 944u, 2u, 0u},
        GoldenRow{harness::Algo::Param, harness::Attack::CoinHiding, 160u, 7u,
         944u, 976063u, 2743372u, 0u, 0u, 1659u, 944u, 2u, 1u}
    ),
    [](const ::testing::TestParamInfo<GoldenRow>& info) {
      const auto& g = info.param;
      std::string name;
      switch (g.algo) {
        case harness::Algo::Optimal: name = "Optimal"; break;
        case harness::Algo::FloodSet: name = "FloodSet"; break;
        case harness::Algo::Param: name = "Param"; break;
        default: name = "Other"; break;
      }
      switch (g.attack) {
        case harness::Attack::None: name += "None"; break;
        case harness::Attack::RandomOmission: name += "RandOmit"; break;
        case harness::Attack::GroupKiller: name += "GroupKiller"; break;
        case harness::Attack::CoinHiding: name += "CoinHiding"; break;
        default: name += "Other"; break;
      }
      return name + "N" + std::to_string(g.n) + "Seed" +
             std::to_string(g.seed);
    });

}  // namespace
}  // namespace omx
