// The schedule genome and the closed-loop adversary search: text round
// trips and parse errors, normalize(), the ScheduleAdversary's legality
// contract (illegal ops are AdversaryViolation, never clipped), trace
// scoring, extract-and-replay byte-identity, search determinism, and the
// checkpoint state file (save/load round trip; a torn file is
// CorruptInputError with a byte offset).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "advsearch/search.h"
#include "advsearch/score.h"
#include "adversary/schedule.h"
#include "harness/experiment.h"
#include "support/check.h"
#include "trace/reader.h"

namespace omx::advsearch {
namespace {

namespace fs = std::filesystem;

fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("omx_adv_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

harness::ExperimentConfig small_benor() {
  harness::ExperimentConfig cfg;
  cfg.algo = harness::Algo::BenOr;
  cfg.attack = harness::Attack::RandomOmission;
  cfg.n = 24;
  cfg.t = 3;
  cfg.seed = 5;
  return cfg;
}

// ---------------------------------------------------------------------------
// Schedule text form.

TEST(Schedule, ParseToStringRoundTrip) {
  const std::string text = "c0.3,s1.3,d2.3.7,d2.3.8";
  adversary::Schedule s;
  std::string err;
  ASSERT_TRUE(adversary::Schedule::parse(text, &s, &err)) << err;
  ASSERT_EQ(s.ops.size(), 4u);
  EXPECT_EQ(s.ops[0].kind, adversary::ScheduleOp::Kind::Corrupt);
  EXPECT_EQ(s.ops[1].kind, adversary::ScheduleOp::Kind::Silence);
  EXPECT_EQ(s.ops[2].kind, adversary::ScheduleOp::Kind::Drop);
  EXPECT_EQ(s.ops[2].round, 2u);
  EXPECT_EQ(s.ops[2].a, 3u);
  EXPECT_EQ(s.ops[2].b, 7u);
  EXPECT_EQ(s.to_string(), text);
  EXPECT_EQ(s.corrupt_count(), 1u);
}

TEST(Schedule, NormalizeSortsAndDedupes) {
  adversary::Schedule s;
  std::string err;
  ASSERT_TRUE(
      adversary::Schedule::parse("d2.3.7,c0.3,d2.3.7,s1.3", &s, &err));
  s.normalize();
  EXPECT_EQ(s.to_string(), "c0.3,s1.3,d2.3.7");
}

TEST(Schedule, ParseRejectsMalformedOps) {
  adversary::Schedule s;
  std::string err;
  EXPECT_FALSE(adversary::Schedule::parse("x0.1", &s, &err));
  EXPECT_FALSE(adversary::Schedule::parse("c0", &s, &err));
  EXPECT_FALSE(adversary::Schedule::parse("d1.2", &s, &err));
  EXPECT_FALSE(adversary::Schedule::parse("c0.1,,c0.2", &s, &err));
  EXPECT_FALSE(adversary::Schedule::parse("c99999999999.1", &s, &err));
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// The legality firewall judges schedules; illegal ones throw, whole.

TEST(ScheduleAdversaryRun, LegalScheduleExecutes) {
  harness::ExperimentConfig cfg = small_benor();
  cfg.attack = harness::Attack::Schedule;
  cfg.schedule = "c0.2,s1.2,d0.2.5";
  const harness::ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.corrupted, 1u);
}

TEST(ScheduleAdversaryRun, DropBetweenHonestProcessesThrows) {
  harness::ExperimentConfig cfg = small_benor();
  cfg.attack = harness::Attack::Schedule;
  cfg.schedule = "d0.4.5";  // neither endpoint corrupted
  EXPECT_THROW((void)harness::run_experiment(cfg), AdversaryViolation);
}

TEST(ScheduleAdversaryRun, CorruptPastBudgetThrows) {
  harness::ExperimentConfig cfg = small_benor();
  cfg.attack = harness::Attack::Schedule;
  cfg.t = 1;
  cfg.schedule = "c0.1,c0.2";  // budget is one
  EXPECT_THROW((void)harness::run_experiment(cfg), AdversaryViolation);
}

// ---------------------------------------------------------------------------
// Scoring + extraction.

TEST(ScoreTrace, ExtractedScheduleReplaysByteIdentically) {
  const fs::path dir = scratch("extract");
  harness::ExperimentConfig cfg = small_benor();
  cfg.trace_path = (dir / "analytic.trace").string();
  cfg.trace_packed = true;
  (void)harness::run_experiment(cfg);
  const trace::TraceData analytic = trace::read_trace(cfg.trace_path);
  const Score analytic_score = score_trace(analytic);
  EXPECT_TRUE(analytic_score.all_decided);
  EXPECT_GT(analytic_score.delivered, 0u);

  const adversary::Schedule extracted = extract_schedule(analytic);
  EXPECT_GT(extracted.ops.size(), 0u);

  harness::ExperimentConfig replay = small_benor();
  replay.attack = harness::Attack::Schedule;
  replay.schedule = extracted.to_string();
  replay.trace_path = (dir / "replay.trace").string();
  replay.trace_packed = true;
  (void)harness::run_experiment(replay);
  EXPECT_EQ(slurp(dir / "analytic.trace"), slurp(dir / "replay.trace"));
  EXPECT_EQ(score_trace(trace::read_trace(replay.trace_path)),
            analytic_score);
}

TEST(ScoreCompare, LexicographicOrder) {
  const Score a{10, 100, 5000, true};
  Score b = a;
  EXPECT_FALSE(a.better_than(b));
  b.delivered = 4000;  // fewer deliveries is better for the adversary
  EXPECT_TRUE(b.better_than(a));
  b.rand_bits = 99;  // ...but rand_bits dominates delivered
  EXPECT_FALSE(b.better_than(a));
  b.rounds_to_decide = 11;  // ...and rounds dominate everything
  EXPECT_TRUE(b.better_than(a));
}

// ---------------------------------------------------------------------------
// The search loop: determinism, the baseline floor, checkpoint/resume.

TEST(SearchLoop, DeterministicAndNeverBelowBaseline) {
  const fs::path dir = scratch("determinism");
  SearchOptions opts;
  opts.iterations = 6;
  opts.seed = 3;

  Score first_best;
  std::string first_schedule;
  for (int run = 0; run < 2; ++run) {
    opts.work_dir = (dir / ("r" + std::to_string(run))).string();
    Search search(small_benor(), opts);
    search.seed_from_attack(harness::Attack::RandomOmission);
    search.run();
    EXPECT_FALSE(search.baseline_score().better_than(search.best_score()));
    EXPECT_EQ(search.iter(), 6u);
    if (run == 0) {
      first_best = search.best_score();
      first_schedule = search.best().to_string();
    } else {
      EXPECT_EQ(search.best_score(), first_best);
      EXPECT_EQ(search.best().to_string(), first_schedule);
    }
  }
}

TEST(SearchState, SaveLoadRoundTripsAndResumesExactly) {
  const fs::path dir = scratch("state");
  SearchOptions opts;
  opts.iterations = 8;
  opts.seed = 3;
  opts.checkpoint_every = 3;

  // Straight-through run.
  opts.state_path = (dir / "straight.state").string();
  opts.work_dir = (dir / "straight").string();
  Search straight(small_benor(), opts);
  straight.seed_from_attack(harness::Attack::RandomOmission);
  straight.run();

  // Stop at 5, then resume in a brand-new Search to 8.
  opts.iterations = 5;
  opts.state_path = (dir / "resumed.state").string();
  opts.work_dir = (dir / "resumed").string();
  Search half(small_benor(), opts);
  half.seed_from_attack(harness::Attack::RandomOmission);
  half.run();

  opts.iterations = 8;
  Search resumed(harness::ExperimentConfig{}, opts);  // config comes from disk
  ASSERT_TRUE(resumed.load_state());
  EXPECT_EQ(resumed.iter(), 5u);
  EXPECT_EQ(resumed.base().n, small_benor().n);
  resumed.run();

  EXPECT_EQ(resumed.best_score(), straight.best_score());
  EXPECT_EQ(resumed.best().to_string(), straight.best().to_string());
  EXPECT_EQ(slurp(dir / "straight.state"), slurp(dir / "resumed.state"));
}

TEST(SearchState, MissingFileIsFalseTornFileIsCorruptInput) {
  const fs::path dir = scratch("torn");
  SearchOptions opts;
  opts.state_path = (dir / "none.state").string();
  opts.work_dir = (dir / "wd").string();
  Search search(small_benor(), opts);
  EXPECT_FALSE(search.load_state());

  // A state file cut off before its config: section (torn mid-write is
  // impossible via the tmp+rename publish, but a copied/filtered file is
  // not).
  const fs::path torn = dir / "torn.state";
  std::ofstream(torn, std::ios::binary) << "baseline_attack=rand-omit\n"
                                        << "iter=4\n";
  opts.state_path = torn.string();
  Search search2(small_benor(), opts);
  try {
    (void)search2.load_state();
    FAIL() << "load_state accepted a torn file";
  } catch (const CorruptInputError& e) {
    EXPECT_EQ(e.path(), torn.string());
    EXPECT_GT(e.byte_offset(), 0u);
  }

  // A mangled schedule value.
  const fs::path bad = dir / "bad.state";
  std::ofstream(bad, std::ios::binary)
      << "iter=4\nbest=z9.4\nconfig:\nalgo=benor\n";
  opts.state_path = bad.string();
  Search search3(small_benor(), opts);
  EXPECT_THROW((void)search3.load_state(), CorruptInputError);
}

}  // namespace
}  // namespace omx::advsearch
