// √n-decomposition and binary-tree bag decomposition: exhaustive structural
// invariants, parameterized over n / group width.
#include <gtest/gtest.h>

#include <set>

#include "groups/partition.h"
#include "groups/tree.h"
#include "support/check.h"

namespace omx::groups {
namespace {

class PartitionInvariants : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PartitionInvariants, CoversDisjointlyWithSqrtBounds) {
  const std::uint32_t n = GetParam();
  SqrtPartition part(n);
  // ⌈√n⌉ bound on group count and sizes.
  const std::uint32_t width = part.max_group_size();
  EXPECT_GE(static_cast<std::uint64_t>(width) * width, n);
  EXPECT_LT(static_cast<std::uint64_t>(width - 1) * (width - 1), n);
  EXPECT_LE(part.num_groups(), width);

  std::set<std::uint32_t> seen;
  for (std::uint32_t g = 0; g < part.num_groups(); ++g) {
    EXPECT_LE(part.group_size(g), width);
    EXPECT_GE(part.group_size(g), 1u);
    EXPECT_EQ(part.members(g).size(), part.group_size(g));
    for (std::uint32_t p : part.members(g)) {
      EXPECT_TRUE(seen.insert(p).second) << "member in two groups";
      EXPECT_EQ(part.group_of(p), g);
      EXPECT_EQ(part.members(g)[part.index_in_group(p)], p);
    }
  }
  EXPECT_EQ(seen.size(), n);  // total coverage
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartitionInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 9, 15, 16, 17,
                                           30, 31, 63, 64, 65, 100, 128, 255,
                                           256, 1000, 1024));

TEST(Partition, RejectsZero) {
  EXPECT_THROW(SqrtPartition(0), PreconditionError);
}

TEST(Partition, OutOfRangeQueriesThrow) {
  SqrtPartition part(10);
  EXPECT_THROW(part.group_of(10), PreconditionError);
  EXPECT_THROW(part.group_size(part.num_groups()), PreconditionError);
}

class TreeInvariants : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TreeInvariants, LayersPartitionAndMerge) {
  const std::uint32_t w = GetParam();
  TreeDecomposition tree(w);
  const std::uint32_t layers = tree.num_layers();
  // Layer 1: singletons. Top layer: whole group.
  EXPECT_EQ(tree.bags_in_layer(1), w);
  EXPECT_EQ(tree.bag(layers, 0).lo, 0u);
  EXPECT_EQ(tree.bag(layers, 0).hi, w);
  EXPECT_EQ(tree.bags_in_layer(layers), 1u);

  for (std::uint32_t j = 1; j <= layers; ++j) {
    // Bags of a layer tile [0, w) in order.
    std::uint32_t cursor = 0;
    for (std::uint32_t k = 0; k < tree.bags_in_layer(j); ++k) {
      const auto bag = tree.bag(j, k);
      EXPECT_EQ(bag.lo, cursor);
      EXPECT_GE(bag.hi, bag.lo);
      cursor = bag.hi;
    }
    EXPECT_EQ(cursor, w);
    // Membership is consistent with bag_index_of.
    for (std::uint32_t m = 0; m < w; ++m) {
      const auto k = tree.bag_index_of(j, m);
      EXPECT_TRUE(tree.bag(j, k).contains(m));
    }
  }

  // Parent bags are exactly the union of their two children.
  for (std::uint32_t j = 2; j <= layers; ++j) {
    for (std::uint32_t k = 0; k < tree.bags_in_layer(j); ++k) {
      const auto parent = tree.bag(j, k);
      const auto left = tree.bag(j - 1, 2 * k);
      const std::uint32_t right_idx = 2 * k + 1;
      const auto right = right_idx < tree.bags_in_layer(j - 1)
                             ? tree.bag(j - 1, right_idx)
                             : TreeDecomposition::Bag{parent.hi, parent.hi};
      EXPECT_EQ(parent.lo, left.lo);
      EXPECT_EQ(left.hi, right.empty() ? parent.hi : right.lo);
      EXPECT_EQ(parent.hi, right.empty() ? left.hi : right.hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, TreeInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 31, 32, 33, 100));

TEST(Tree, LayerCountIsCeilLog2Plus1) {
  EXPECT_EQ(TreeDecomposition(1).num_layers(), 1u);
  EXPECT_EQ(TreeDecomposition(2).num_layers(), 2u);
  EXPECT_EQ(TreeDecomposition(3).num_layers(), 3u);
  EXPECT_EQ(TreeDecomposition(4).num_layers(), 3u);
  EXPECT_EQ(TreeDecomposition(5).num_layers(), 4u);
  EXPECT_EQ(TreeDecomposition(32).num_layers(), 6u);
}

TEST(Tree, BagUidsAreUniqueAcrossLayers) {
  TreeDecomposition tree(13);
  std::set<std::uint32_t> uids;
  for (std::uint32_t j = 1; j <= tree.num_layers(); ++j) {
    for (std::uint32_t k = 0; k < tree.bags_in_layer(j); ++k) {
      EXPECT_TRUE(uids.insert(tree.bag_uid(j, k)).second);
    }
  }
}

TEST(Tree, RangeChecks) {
  TreeDecomposition tree(8);
  EXPECT_THROW(tree.bag(0, 0), PreconditionError);
  EXPECT_THROW(tree.bag(5, 0), PreconditionError);
  EXPECT_THROW(tree.bag_index_of(1, 8), PreconditionError);
  EXPECT_THROW(TreeDecomposition(0), PreconditionError);
}

}  // namespace
}  // namespace omx::groups
