// Baselines: deterministic flood-set (correct under any omission pattern)
// and the Ben-Or-style crash-model protocol (correct under crashes; its
// omission weaknesses are bench material, not spec claims).
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/ben_or.h"
#include "baselines/flood_set.h"
#include "core/params.h"
#include "harness/experiment.h"

namespace omx {
namespace {

using harness::Attack;
using harness::ExperimentConfig;
using harness::InputPattern;
using harness::run_experiment;

class FloodSetSpec
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Attack,
                                                 InputPattern, std::uint64_t>> {
};

TEST_P(FloodSetSpec, CorrectUnderAnyOmissionPattern) {
  const auto [n, attack, inputs, seed] = GetParam();
  ExperimentConfig cfg;
  cfg.algo = harness::Algo::FloodSet;
  cfg.n = n;
  cfg.t = core::Params::max_t_optimal(n);  // honest supermajority
  cfg.attack = attack;
  cfg.inputs = inputs;
  cfg.seed = seed;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_TRUE(r.all_nonfaulty_decided);
  // Deterministic: never draws randomness.
  EXPECT_EQ(r.metrics.random_bits, 0u);
  // Θ(t) rounds.
  EXPECT_LE(r.time_rounds, cfg.t + 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FloodSetSpec,
    ::testing::Combine(::testing::Values(33u, 64u, 128u),
                       ::testing::Values(Attack::None, Attack::StaticCrash,
                                         Attack::RandomOmission,
                                         Attack::SplitBrain,
                                         Attack::GroupKiller),
                       ::testing::Values(InputPattern::Random,
                                         InputPattern::AllOne),
                       ::testing::Values(1u, 2u)));

TEST(FloodSet, ZeroFaultsDecidesInThreeRounds) {
  ExperimentConfig cfg;
  cfg.algo = harness::Algo::FloodSet;
  cfg.n = 16;
  cfg.t = 0;
  cfg.inputs = InputPattern::Half;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.ok());
  EXPECT_LE(r.time_rounds, 3u);
}

TEST(FloodSet, ValidityOnUnanimousInputs) {
  for (auto pattern : {InputPattern::AllZero, InputPattern::AllOne}) {
    ExperimentConfig cfg;
    cfg.algo = harness::Algo::FloodSet;
    cfg.n = 64;
    cfg.t = 2;
    cfg.attack = Attack::SplitBrain;
    cfg.inputs = pattern;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.decision, pattern == InputPattern::AllOne ? 1 : 0);
  }
}

class BenOrSpec
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Attack,
                                                 std::uint64_t>> {};

TEST_P(BenOrSpec, CorrectUnderCrashFaults) {
  const auto [n, attack, seed] = GetParam();
  ExperimentConfig cfg;
  cfg.algo = harness::Algo::BenOr;
  cfg.n = n;
  cfg.t = core::Params::max_t_optimal(n);
  cfg.attack = attack;
  cfg.inputs = InputPattern::Random;
  cfg.seed = seed;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_TRUE(r.all_nonfaulty_decided);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BenOrSpec,
    ::testing::Combine(::testing::Values(33u, 64u, 128u),
                       ::testing::Values(Attack::None, Attack::StaticCrash),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(BenOr, FastWithoutFaults) {
  ExperimentConfig cfg;
  cfg.algo = harness::Algo::BenOr;
  cfg.n = 128;
  cfg.t = 4;
  cfg.inputs = InputPattern::AllOne;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.ok());
  EXPECT_LE(r.time_rounds, 4u);
  EXPECT_EQ(r.metrics.random_bits, 0u);  // unanimity: no dead zone
}

TEST(BenOr, QuadraticBitsPerRoundVersusOptimalEpochs) {
  // §B.3: the all-to-all baseline pays Θ(n²) bits per *round*; Algorithm 1
  // pays Õ(n^{3/2}) per epoch. Compare per-round cost directly.
  const std::uint32_t n = 256;
  ExperimentConfig cfg;
  cfg.algo = harness::Algo::BenOr;
  cfg.n = n;
  cfg.t = 0;
  cfg.inputs = InputPattern::Half;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.ok());
  const double per_round =
      static_cast<double>(r.metrics.comm_bits) / r.metrics.rounds;
  EXPECT_GE(per_round, static_cast<double>(n) * n / 2);
}

TEST(BenOr, CoinHidingDelaysButCannotOutlastBudget) {
  // The Theorem-2 adversary stretches the run; with its budget exhausted the
  // protocol still terminates (possibly via the fallback).
  ExperimentConfig cfg;
  cfg.algo = harness::Algo::BenOr;
  cfg.n = 128;
  cfg.t = 16;
  cfg.attack = Attack::CoinHiding;
  cfg.inputs = InputPattern::Half;
  cfg.seed = 2;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.all_nonfaulty_decided);
  EXPECT_TRUE(r.agreement);

  ExperimentConfig benign = cfg;
  benign.attack = Attack::None;
  const auto rb = run_experiment(benign);
  EXPECT_GE(r.time_rounds, rb.time_rounds);  // the attack never helps
}

TEST(BenOr, SingleProcess) {
  ExperimentConfig cfg;
  cfg.algo = harness::Algo::BenOr;
  cfg.n = 1;
  cfg.t = 0;
  cfg.inputs = InputPattern::AllOne;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.decision, 1);
}

}  // namespace
}  // namespace omx
