// Experiment-support toolkit: table rendering and log-log fitting.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "expsup/fit.h"
#include "expsup/table.h"
#include "support/check.h"

namespace omx::expsup {
namespace {

TEST(Table, RendersAlignedAscii) {
  Table t("demo", {"n", "rounds"});
  t.add_row({"64", "123"});
  t.add_row({"128", "4567"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| n "), std::string::npos);
  EXPECT_NE(s.find("4567"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t("demo", {"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRow) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), PreconditionError);
  EXPECT_THROW(Table("x", {}), PreconditionError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(0.0), "0");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(3.14159), "3.14");
  EXPECT_EQ(Table::num(12345.6), "12346");
  EXPECT_NE(Table::num(1e9).find("e"), std::string::npos);
}

TEST(Fit, RecoversExactPowerLaw) {
  std::vector<double> xs, ys;
  for (double x : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    xs.push_back(x);
    ys.push_back(3.5 * std::pow(x, 1.5));
  }
  const auto fit = fit_loglog(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.5, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Fit, NoisyPowerLawStillClose) {
  std::vector<double> xs, ys;
  double wiggle = 0.9;
  for (double x = 8; x <= 4096; x *= 2) {
    xs.push_back(x);
    ys.push_back(wiggle * std::pow(x, 2.0));
    wiggle = wiggle > 1.0 ? 0.9 : 1.1;  // +-10% alternating noise
  }
  const auto fit = fit_loglog(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Fit, ValidatesInput) {
  std::vector<double> one{1.0};
  EXPECT_THROW(fit_loglog(one, one), PreconditionError);
  std::vector<double> xs{1.0, 2.0}, bad{1.0, -2.0};
  EXPECT_THROW(fit_loglog(xs, bad), PreconditionError);
  std::vector<double> same{2.0, 2.0}, ys{1.0, 2.0};
  EXPECT_THROW(fit_loglog(same, ys), PreconditionError);
  std::vector<double> mismatched{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_loglog(xs, mismatched), PreconditionError);
}

TEST(Fit, FlatSeriesHasZeroSlope) {
  std::vector<double> xs{1, 2, 4, 8}, ys{5, 5, 5, 5};
  const auto fit = fit_loglog(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
}

}  // namespace
}  // namespace omx::expsup
