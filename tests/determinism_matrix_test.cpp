// Thread-count determinism matrix.
//
// The sharded computation phase (sim/runner.h) promises *bit-identical*
// executions at every thread count: contiguous shards merged in process-id
// order reproduce the serial wire exactly, and racked rng accounting
// reduces to the serial totals. This suite runs an
// (algorithm x adversary x n x seed) grid at threads in {1, 2, 4, 8} and
// asserts the full observable metric vector is identical across counts —
// including a run with a finite random-bit budget, where the engine must
// fall back to serial stepping near exhaustion so the budget cliff lands
// on exactly the same draw. The flood-path grid additionally crosses wire
// representations (legacy / packed / packed-streamed) with the round
// pipelining flag.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/params.h"
#include "harness/experiment.h"
#include "rng/ledger.h"

namespace omx {
namespace {

struct FullVector {
  std::uint64_t rounds, messages, comm_bits, random_calls, random_bits,
      omitted, time_rounds;
  std::uint32_t corrupted;
  std::uint8_t decision;
  bool agreement, validity, all_decided, hit_cap;

  bool operator==(const FullVector&) const = default;
};

FullVector run(harness::Algo algo, harness::Attack attack, std::uint32_t n,
               std::uint64_t seed, unsigned threads,
               std::uint64_t bit_budget = rng::kUnlimited,
               bool packed = false, bool streamed = false,
               bool pipeline = false) {
  harness::ExperimentConfig cfg;
  cfg.algo = algo;
  cfg.attack = attack;
  cfg.n = n;
  cfg.t = algo == harness::Algo::Param ? core::Params::max_t_param(n)
                                       : core::Params::max_t_optimal(n);
  cfg.x = 3;
  cfg.inputs = harness::InputPattern::Random;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.random_bit_budget = bit_budget;
  cfg.packed = packed;
  cfg.streamed = streamed;
  cfg.pipeline = pipeline;
  const auto r = harness::run_experiment(cfg);
  return FullVector{r.metrics.rounds,       r.metrics.messages,
                    r.metrics.comm_bits,    r.metrics.random_calls,
                    r.metrics.random_bits,  r.metrics.omitted,
                    r.time_rounds,          r.metrics.corrupted,
                    r.decision,             r.agreement,
                    r.validity,             r.all_nonfaulty_decided,
                    r.hit_round_cap};
}

struct GridRow {
  harness::Algo algo;
  harness::Attack attack;
  std::uint32_t n;
  std::uint64_t seed;
};

class DeterminismMatrix : public ::testing::TestWithParam<GridRow> {};

TEST_P(DeterminismMatrix, MetricVectorIdenticalAcrossThreadCounts) {
  const GridRow& g = GetParam();
  const FullVector serial = run(g.algo, g.attack, g.n, g.seed, 1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const FullVector parallel = run(g.algo, g.attack, g.n, g.seed, threads);
    EXPECT_EQ(parallel.rounds, serial.rounds);
    EXPECT_EQ(parallel.messages, serial.messages);
    EXPECT_EQ(parallel.comm_bits, serial.comm_bits);
    EXPECT_EQ(parallel.random_calls, serial.random_calls);
    EXPECT_EQ(parallel.random_bits, serial.random_bits);
    EXPECT_EQ(parallel.omitted, serial.omitted);
    EXPECT_EQ(parallel.time_rounds, serial.time_rounds);
    EXPECT_EQ(parallel.corrupted, serial.corrupted);
    EXPECT_EQ(parallel.decision, serial.decision);
    EXPECT_TRUE(parallel == serial);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeterminismMatrix,
    ::testing::Values(
        GridRow{harness::Algo::Optimal, harness::Attack::None, 48u, 3u},
        GridRow{harness::Algo::Optimal, harness::Attack::RandomOmission, 96u,
                3u},
        GridRow{harness::Algo::Optimal, harness::Attack::CoinHiding, 96u, 5u},
        GridRow{harness::Algo::Optimal, harness::Attack::Chaos, 64u, 11u},
        GridRow{harness::Algo::Param, harness::Attack::RandomOmission, 96u,
                3u},
        GridRow{harness::Algo::Param, harness::Attack::GroupKiller, 160u, 5u},
        GridRow{harness::Algo::FloodSet, harness::Attack::RandomOmission, 96u,
                3u},
        GridRow{harness::Algo::FloodSet, harness::Attack::SplitBrain, 64u,
                9u},
        GridRow{harness::Algo::BenOr, harness::Attack::None, 48u, 3u},
        GridRow{harness::Algo::BenOr, harness::Attack::RandomOmission, 96u,
                5u}),
    [](const ::testing::TestParamInfo<GridRow>& info) {
      const auto& g = info.param;
      std::string name = harness::to_string(g.algo);
      name += "_";
      name += harness::to_string(g.attack);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_n" + std::to_string(g.n) + "_s" +
             std::to_string(g.seed);
    });

// Flood-path mode matrix: the same run through every wire representation
// (legacy / packed / packed-streamed), pipeline setting, and thread count
// must produce the same observable vector as the legacy serial engine.
// n is chosen so each round's all-to-all wire clears the engine's parallel
// grain — the sharded delivery, adversary scan, and fused-pipeline paths
// genuinely engage instead of falling back to serial.
class FloodModeMatrix : public ::testing::TestWithParam<GridRow> {};

TEST_P(FloodModeMatrix, AllModesMatchLegacySerial) {
  const GridRow& g = GetParam();
  const FullVector baseline = run(g.algo, g.attack, g.n, g.seed, 1);
  struct Mode {
    const char* name;
    bool packed;
    bool streamed;
  };
  for (const Mode mode : {Mode{"legacy", false, false},
                          Mode{"packed", true, false},
                          Mode{"packed-streamed", true, true}}) {
    for (const bool pipeline : {false, true}) {
      // Pipelining needs materialized delivery (the config rejects the
      // streamed combination loudly; equivalence is vacuous there).
      if (pipeline && mode.streamed) continue;
      for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(std::string(mode.name) +
                     " pipeline=" + (pipeline ? "1" : "0") +
                     " threads=" + std::to_string(threads));
        const FullVector v =
            run(g.algo, g.attack, g.n, g.seed, threads, rng::kUnlimited,
                mode.packed, mode.streamed, pipeline);
        EXPECT_TRUE(v == baseline);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FloodGrid, FloodModeMatrix,
    ::testing::Values(
        GridRow{harness::Algo::FloodSet, harness::Attack::None, 96u, 3u},
        GridRow{harness::Algo::FloodSet, harness::Attack::RandomOmission,
                96u, 3u},
        GridRow{harness::Algo::FloodSet, harness::Attack::StaticCrash, 96u,
                7u},
        GridRow{harness::Algo::BenOr, harness::Attack::RandomOmission, 96u,
                5u},
        GridRow{harness::Algo::BenOr, harness::Attack::Chaos, 64u, 11u}),
    [](const ::testing::TestParamInfo<GridRow>& info) {
      const auto& g = info.param;
      std::string name = harness::to_string(g.algo);
      name += "_";
      name += harness::to_string(g.attack);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_n" + std::to_string(g.n) + "_s" +
             std::to_string(g.seed);
    });

// A finite bit budget is the hard case: budget checks are sequential in the
// serial engine, so the racked engine must refuse to shard any round where
// the outcome could depend on billing order. The budget cliff (draws stop,
// protocols degrade deterministically) must land identically at every
// thread count.
TEST(DeterminismBudget, BudgetExhaustionPointIdenticalAcrossThreadCounts) {
  // Tight enough that BenOr exhausts it mid-run at n=64 (coin flips in the
  // dead zone), exercising the serial-fallback path.
  const std::uint64_t kBudget = 24;
  const FullVector serial = run(harness::Algo::BenOr,
                                harness::Attack::RandomOmission, 64u, 7u, 1,
                                kBudget);
  EXPECT_LE(serial.random_bits, kBudget);
  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const FullVector parallel = run(harness::Algo::BenOr,
                                    harness::Attack::RandomOmission, 64u, 7u,
                                    threads, kBudget);
    EXPECT_TRUE(parallel == serial);
    EXPECT_EQ(parallel.random_bits, serial.random_bits);
    EXPECT_EQ(parallel.random_calls, serial.random_calls);
  }
}

// Same, for the Optimal algorithm whose epochs draw one bit per operative
// process: a budget below one epoch's demand forces deterministic votes.
TEST(DeterminismBudget, OptimalWithTinyBudgetIdenticalAcrossThreadCounts) {
  const std::uint64_t kBudget = 40;
  const FullVector serial = run(harness::Algo::Optimal,
                                harness::Attack::None, 48u, 5u, 1, kBudget);
  EXPECT_LE(serial.random_bits, kBudget);
  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const FullVector parallel = run(harness::Algo::Optimal,
                                    harness::Attack::None, 48u, 5u, threads,
                                    kBudget);
    EXPECT_TRUE(parallel == serial);
  }
}

}  // namespace
}  // namespace omx
