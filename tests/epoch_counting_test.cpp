// White-box tests of a single epoch of Algorithm 1: the combination of
// GroupBitsAggregation + GroupBitsSpreading must produce *exact* global
// counts when no faults occur (Lemmas 1, 6 and 8 with an empty fault set),
// and bounded-divergence counts under targeted silencing.
#include <gtest/gtest.h>

#include <tuple>

#include "adversary/strategies.h"
#include "core/optimal_core.h"
#include "core/params.h"
#include "harness/experiment.h"
#include "rng/ledger.h"
#include "sim/runner.h"

namespace omx::core {
namespace {

/// Drive an OptimalMachine for exactly `rounds` rounds under `adv`.
void drive(OptimalMachine& machine, rng::Ledger& ledger,
           sim::Adversary<Msg>& adv, std::uint32_t rounds, std::uint32_t t) {
  const std::uint32_t n = machine.num_processes();
  sim::Runner<Msg>::Options opts;
  opts.max_rounds = rounds;
  sim::Runner<Msg> runner(n, t, &ledger, &adv, opts);
  runner.run(machine);
}

class ExactCounting
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 harness::InputPattern>> {};

TEST_P(ExactCounting, FaultFreeEpochCountsAreExactEverywhere) {
  const auto [n, pattern] = GetParam();
  auto inputs = harness::make_inputs(pattern, n, 42);
  std::uint32_t true_ones = 0;
  for (auto b : inputs) true_ones += b;

  OptimalConfig cfg;
  cfg.t = 0;
  OptimalMachine machine(cfg, inputs);
  rng::Ledger ledger(n, 1);
  adversary::NullAdversary<Msg> adv;
  // One full epoch + 1 round so the vote update lands.
  drive(machine, ledger, adv, machine.core().epoch_rounds() + 1, 0);

  for (std::uint32_t p = 0; p < n; ++p) {
    const auto est = machine.core().last_estimate(p);
    ASSERT_TRUE(est.has_value()) << "no estimate at " << p;
    EXPECT_EQ(est->first, true_ones) << "ones wrong at " << p;
    EXPECT_EQ(est->second, n - true_ones) << "zeros wrong at " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExactCounting,
    ::testing::Combine(::testing::Values(9u, 16u, 17u, 64u, 100u, 256u),
                       ::testing::Values(harness::InputPattern::AllOne,
                                         harness::InputPattern::Half,
                                         harness::InputPattern::Random,
                                         harness::InputPattern::Alternating)));

TEST(EpochCounting, SilencedProcessesAreExcludedNotMiscounted) {
  // Silence k processes from round 0: every operative estimate must count
  // exactly the n-k live ones (silenced values never leak in, and the
  // estimate never double-counts).
  const std::uint32_t n = 100;
  const std::uint32_t k = 3;
  auto inputs = harness::make_inputs(harness::InputPattern::AllOne, n, 1);
  OptimalConfig cfg;
  cfg.t = k;
  OptimalMachine machine(cfg, inputs);
  rng::Ledger ledger(n, 1);
  adversary::StaticCrashAdversary<Msg> adv({{0, 0}, {1, 0}, {2, 0}});
  drive(machine, ledger, adv, machine.core().epoch_rounds() + 1, k);

  for (std::uint32_t p = k; p < n; ++p) {
    if (!machine.core().operative(p)) continue;
    const auto est = machine.core().last_estimate(p);
    ASSERT_TRUE(est.has_value());
    EXPECT_EQ(est->second, 0u);
    EXPECT_LE(est->first, n - k);
    EXPECT_GE(est->first + 2 * k, n)
        << "silencing k processes may remove at most ~k counts";
  }
}

TEST(EpochCounting, WholeGroupSilencedStillCounts) {
  // Kill group 0 completely: remaining operative processes must count all
  // remaining groups (the spreading graph routes around the hole).
  const std::uint32_t n = 144;  // 12 groups of 12
  auto inputs = harness::make_inputs(harness::InputPattern::AllOne, n, 1);
  OptimalConfig cfg;
  cfg.t = 12;
  OptimalMachine machine(cfg, inputs);
  rng::Ledger ledger(n, 1);
  std::vector<std::vector<sim::ProcessId>> groups(1);
  for (sim::ProcessId p = 0; p < 12; ++p) groups[0].push_back(p);
  adversary::GroupKillerAdversary<Msg> adv(groups);
  drive(machine, ledger, adv, machine.core().epoch_rounds() + 1, 12);

  for (std::uint32_t p = 12; p < n; ++p) {
    if (!machine.core().operative(p)) continue;
    const auto est = machine.core().last_estimate(p);
    ASSERT_TRUE(est.has_value());
    EXPECT_EQ(est->first, n - 12) << "process " << p;
  }
}

TEST(EpochCounting, SecondEpochCountsUpdatedValues) {
  // After epoch 1 everyone below the 15/30 threshold flips to 0; epoch 2
  // must count the *new* values (no stale-epoch leakage).
  const std::uint32_t n = 64;
  std::vector<std::uint8_t> inputs(n, 0);
  for (std::uint32_t p = 0; p < 16; ++p) inputs[p] = 1;  // 25% ones

  OptimalConfig cfg;
  cfg.t = 0;
  OptimalMachine machine(cfg, inputs);
  rng::Ledger ledger(n, 1);
  adversary::NullAdversary<Msg> adv;
  drive(machine, ledger, adv, 2 * machine.core().epoch_rounds() + 1, 0);

  for (std::uint32_t p = 0; p < n; ++p) {
    const auto est = machine.core().last_estimate(p);
    ASSERT_TRUE(est.has_value());
    EXPECT_EQ(est->first, 0u);   // everyone flipped to 0 after epoch 1
    EXPECT_EQ(est->second, n);
  }
  EXPECT_EQ(ledger.bits(), 0u);  // 25% is outside the dead zone: no coins
}

TEST(EpochCounting, DeadZoneDrawsExactlyOneCoinPerProcess) {
  const std::uint32_t n = 64;
  auto inputs = harness::make_inputs(harness::InputPattern::Alternating, n, 1);
  OptimalConfig cfg;
  cfg.t = 0;
  OptimalMachine machine(cfg, inputs);
  rng::Ledger ledger(n, 1);
  adversary::NullAdversary<Msg> adv;
  drive(machine, ledger, adv, machine.core().epoch_rounds() + 1, 0);
  EXPECT_EQ(ledger.bits(), n);  // 50% ones: every process flips once
  EXPECT_EQ(ledger.calls(), n);
}

TEST(EpochCounting, OperativeHistoryTracksSilencing) {
  const std::uint32_t n = 100;
  const std::uint32_t t = 3;
  auto inputs = harness::make_inputs(harness::InputPattern::Random, n, 5);
  OptimalConfig cfg;
  cfg.t = t;
  OptimalMachine machine(cfg, inputs);
  rng::Ledger ledger(n, 5);
  adversary::StaticCrashAdversary<Msg> adv({{10, 0}, {20, 0}, {30, 0}});
  sim::Runner<Msg> runner(n, t, &ledger, &adv);
  machine.set_fault_view(&runner.faults());
  runner.run(machine);
  const auto& hist = machine.core().operative_history();
  ASSERT_FALSE(hist.empty());
  // The three fully-silenced processes are inoperative from epoch 1 on;
  // nobody else should have been dragged down (fault-free links).
  for (auto count : hist) EXPECT_EQ(count, n - t);
}

}  // namespace
}  // namespace omx::core
