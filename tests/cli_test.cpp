// ArgParser: parsing forms, defaults, errors, usage text.
#include <gtest/gtest.h>

#include <vector>

#include "support/check.h"
#include "support/cli.h"

namespace omx {
namespace {

ArgParser make() {
  ArgParser p("tool", "test tool");
  p.add_option("n", "128", "process count");
  p.add_option("ratio", "0.5", "a ratio");
  p.add_option("name", "", "a string");
  p.add_flag("verbose", "talk more");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> args) {
  args.insert(args.begin(), "tool");
  return p.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApply) {
  auto p = make();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get_int("n"), 128);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.5);
  EXPECT_EQ(p.get("name"), "");
  EXPECT_FALSE(p.flag("verbose"));
}

TEST(Cli, SpaceAndEqualsForms) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--n", "64", "--ratio=0.25", "--verbose"}));
  EXPECT_EQ(p.get_int("n"), 64);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.25);
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(Cli, UnknownArgumentFails) {
  auto p = make();
  EXPECT_FALSE(parse(p, {"--bogus", "1"}));
  EXPECT_NE(p.error().find("bogus"), std::string::npos);
}

TEST(Cli, PositionalFails) {
  auto p = make();
  EXPECT_FALSE(parse(p, {"loose"}));
}

TEST(Cli, MissingValueFails) {
  auto p = make();
  EXPECT_FALSE(parse(p, {"--n"}));
  EXPECT_NE(p.error().find("missing value"), std::string::npos);
}

TEST(Cli, FlagWithValueFails) {
  auto p = make();
  EXPECT_FALSE(parse(p, {"--verbose=1"}));
}

TEST(Cli, HelpRequested) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--help"}));
  EXPECT_TRUE(p.help_requested());
  const auto usage = p.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("process count"), std::string::npos);
  EXPECT_NE(usage.find("default: 128"), std::string::npos);
}

TEST(Cli, TypeValidation) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--n", "abc"}));
  EXPECT_THROW(p.get_int("n"), PreconditionError);
  auto q = make();
  ASSERT_TRUE(parse(q, {"--ratio", "x2"}));
  EXPECT_THROW(q.get_double("ratio"), PreconditionError);
}

TEST(Cli, NegativeNumbers) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--n", "-1", "--ratio", "-0.5"}));
  EXPECT_EQ(p.get_int("n"), -1);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), -0.5);
}

TEST(Cli, UndeclaredQueriesThrow) {
  auto p = make();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.get("nope"), PreconditionError);
  EXPECT_THROW(p.flag("nope"), PreconditionError);
}

TEST(Cli, DuplicateDeclarationThrows) {
  ArgParser p("t", "d");
  p.add_option("x", "1", "h");
  EXPECT_THROW(p.add_option("x", "2", "h"), PreconditionError);
  EXPECT_THROW(p.add_flag("x", "h"), PreconditionError);
}

TEST(Cli, LastValueWins) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--n", "1", "--n", "2"}));
  EXPECT_EQ(p.get_int("n"), 2);
}

}  // namespace
}  // namespace omx
