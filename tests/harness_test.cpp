// The experiment harness itself: verdict semantics (agreement / validity /
// termination over the post-run corruption set), input construction, config
// validation, and time accounting.
#include <gtest/gtest.h>

#include <string>

#include "core/params.h"
#include "harness/experiment.h"
#include "rng/ledger.h"
#include "support/check.h"

namespace omx::harness {
namespace {

TEST(Harness, MakeInputsPatterns) {
  EXPECT_EQ(make_inputs(InputPattern::AllZero, 5, 1),
            (std::vector<std::uint8_t>{0, 0, 0, 0, 0}));
  EXPECT_EQ(make_inputs(InputPattern::AllOne, 4, 1),
            (std::vector<std::uint8_t>{1, 1, 1, 1}));
  EXPECT_EQ(make_inputs(InputPattern::Half, 4, 1),
            (std::vector<std::uint8_t>{1, 1, 0, 0}));
  EXPECT_EQ(make_inputs(InputPattern::OneDissent, 3, 1),
            (std::vector<std::uint8_t>{0, 1, 1}));
  EXPECT_EQ(make_inputs(InputPattern::Alternating, 4, 1),
            (std::vector<std::uint8_t>{0, 1, 0, 1}));
  // Random is seeded and fair-ish.
  const auto a = make_inputs(InputPattern::Random, 1000, 7);
  const auto b = make_inputs(InputPattern::Random, 1000, 7);
  const auto c = make_inputs(InputPattern::Random, 1000, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::uint32_t ones = 0;
  for (auto v : a) ones += v;
  EXPECT_NEAR(ones, 500, 80);
}

TEST(Harness, ToStringCoversEverything) {
  EXPECT_STREQ(to_string(Algo::Optimal), "optimal");
  EXPECT_STREQ(to_string(Algo::Param), "param");
  EXPECT_STREQ(to_string(Algo::FloodSet), "floodset");
  EXPECT_STREQ(to_string(Algo::BenOr), "benor");
  EXPECT_STREQ(to_string(Attack::None), "none");
  EXPECT_STREQ(to_string(Attack::SendOmission), "send-omit");
  EXPECT_STREQ(to_string(Attack::Chaos), "chaos");
  EXPECT_STREQ(to_string(InputPattern::Alternating), "alternating");
}

TEST(Harness, ExplicitInputsMustMatchN) {
  ExperimentConfig cfg;
  cfg.n = 8;
  cfg.explicit_inputs = {0, 1};  // wrong length
  EXPECT_THROW(run_experiment(cfg), PreconditionError);
}

TEST(Harness, ExplicitInputsOverridePattern) {
  ExperimentConfig cfg;
  cfg.algo = Algo::FloodSet;
  cfg.n = 9;
  cfg.t = 0;
  cfg.inputs = InputPattern::AllZero;          // would decide 0...
  cfg.explicit_inputs.assign(9, 1);            // ...but these say 1
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.decision, 1);
}

TEST(Harness, CoinHidingOnFloodSetIsRejected) {
  ExperimentConfig cfg;
  cfg.algo = Algo::FloodSet;
  cfg.attack = Attack::CoinHiding;  // no vote probe on a det. protocol
  cfg.n = 16;
  cfg.t = 1;
  EXPECT_THROW(run_experiment(cfg), PreconditionError);
}

TEST(Harness, TimeRoundsNeverExceedsEngineRounds) {
  for (auto algo : {Algo::Optimal, Algo::Param, Algo::FloodSet, Algo::BenOr}) {
    ExperimentConfig cfg;
    cfg.algo = algo;
    cfg.n = 64;
    cfg.x = 4;
    cfg.t = algo == Algo::Param ? core::Params::max_t_param(64)
                                : core::Params::max_t_optimal(64);
    cfg.attack = Attack::StaticCrash;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.ok());
    EXPECT_LE(r.time_rounds, r.metrics.rounds + 1) << to_string(algo);
    EXPECT_GE(r.time_rounds, 1u) << to_string(algo);
  }
}

TEST(Harness, ValidityVerdictUsesNonFaultyInputsOnly) {
  // Non-faulty unanimous 1, the (crashed) dissenter holds 0: the verdict
  // must demand decision == 1, and the algorithms deliver it.
  ExperimentConfig cfg;
  cfg.n = 60;
  cfg.t = 1;
  cfg.inputs = InputPattern::OneDissent;  // process 0 dissents...
  cfg.attack = Attack::StaticCrash;       // ...and the schedule may hit it
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    cfg.seed = seed;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.agreement);
    EXPECT_TRUE(r.validity) << "seed " << seed;
  }
}

TEST(Harness, BudgetFieldCapsLedger) {
  ExperimentConfig cfg;
  cfg.n = 64;
  cfg.t = 2;
  cfg.inputs = InputPattern::Alternating;  // would draw 64 coins uncapped
  cfg.random_bit_budget = 10;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.ok());
  EXPECT_LE(r.metrics.random_bits, 10u);
}

TEST(Harness, CorruptedCountNeverExceedsBudget) {
  for (auto attack : {Attack::StaticCrash, Attack::RandomOmission,
                      Attack::SplitBrain, Attack::GroupKiller, Attack::Chaos}) {
    ExperimentConfig cfg;
    cfg.n = 90;
    cfg.t = 3;
    cfg.attack = attack;
    const auto r = run_experiment(cfg);
    EXPECT_LE(r.corrupted, 3u) << to_string(attack);
  }
}

TEST(Harness, OperativeEndReportedForOperativeAlgorithmsOnly) {
  ExperimentConfig cfg;
  cfg.n = 64;
  cfg.t = 2;
  const auto opt = run_experiment(cfg);
  EXPECT_GT(opt.operative_end, 0u);
  cfg.algo = Algo::FloodSet;
  const auto flood = run_experiment(cfg);
  EXPECT_EQ(flood.operative_end, 0u);  // concept does not apply
}


// --- eager config validation: run_experiment rejects an invalid config up
// front with the offending values in the message, before building anything ---

std::string precondition_message(const ExperimentConfig& cfg) {
  try {
    run_experiment(cfg);
  } catch (const PreconditionError& e) {
    return e.what();
  }
  return "";
}

TEST(HarnessValidation, RejectsFaultBudgetAtLeastN) {
  ExperimentConfig cfg;
  cfg.algo = Algo::FloodSet;
  cfg.n = 8;
  cfg.t = 8;
  const std::string msg = precondition_message(cfg);
  ASSERT_FALSE(msg.empty()) << "t >= n was accepted";
  EXPECT_NE(msg.find("t=8"), std::string::npos) << msg;
  EXPECT_NE(msg.find("n=8"), std::string::npos) << msg;
}

TEST(HarnessValidation, RejectsZeroProcessesAndZeroSuperProcesses) {
  ExperimentConfig cfg;
  cfg.n = 0;
  EXPECT_FALSE(precondition_message(cfg).empty());
  cfg = ExperimentConfig{};
  cfg.algo = Algo::Param;
  cfg.n = 64;
  cfg.t = 1;
  cfg.x = 0;
  const std::string msg = precondition_message(cfg);
  ASSERT_FALSE(msg.empty()) << "x = 0 was accepted";
  EXPECT_NE(msg.find("x=0"), std::string::npos) << msg;
}

TEST(HarnessValidation, RejectsDropProbOutsideUnitInterval) {
  for (const double p : {-0.1, 1.5}) {
    ExperimentConfig cfg;
    cfg.algo = Algo::FloodSet;
    cfg.n = 8;
    cfg.t = 2;
    cfg.attack = Attack::RandomOmission;
    cfg.drop_prob = p;
    const std::string msg = precondition_message(cfg);
    ASSERT_FALSE(msg.empty()) << "drop_prob " << p << " was accepted";
    EXPECT_NE(msg.find("drop_prob"), std::string::npos) << msg;
  }
}

TEST(HarnessValidation, RejectsExplicitInputsOfWrongLength) {
  ExperimentConfig cfg;
  cfg.algo = Algo::FloodSet;
  cfg.n = 8;
  cfg.t = 2;
  cfg.explicit_inputs = {1, 0, 1};  // 3 entries for n = 8
  const std::string msg = precondition_message(cfg);
  ASSERT_FALSE(msg.empty()) << "short explicit_inputs was accepted";
  EXPECT_NE(msg.find("explicit_inputs"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("8"), std::string::npos) << msg;
}

TEST(HarnessValidation, FromStringRoundTripsEveryEnumerator) {
  for (const auto a : {Algo::Optimal, Algo::Param, Algo::FloodSet,
                       Algo::BenOr}) {
    Algo back;
    ASSERT_TRUE(algo_from_string(to_string(a), &back)) << to_string(a);
    EXPECT_EQ(back, a);
  }
  for (const auto a :
       {Attack::None, Attack::StaticCrash, Attack::RandomOmission,
        Attack::SendOmission, Attack::SplitBrain, Attack::GroupKiller,
        Attack::CoinHiding, Attack::Chaos}) {
    Attack back;
    ASSERT_TRUE(attack_from_string(to_string(a), &back)) << to_string(a);
    EXPECT_EQ(back, a);
  }
  for (const auto p :
       {InputPattern::AllZero, InputPattern::AllOne, InputPattern::Half,
        InputPattern::Random, InputPattern::OneDissent,
        InputPattern::Alternating}) {
    InputPattern back;
    ASSERT_TRUE(inputs_from_string(to_string(p), &back)) << to_string(p);
    EXPECT_EQ(back, p);
  }
  Algo a;
  Attack at;
  InputPattern ip;
  EXPECT_FALSE(algo_from_string("nope", &a));
  EXPECT_FALSE(attack_from_string("nope", &at));
  EXPECT_FALSE(inputs_from_string("nope", &ip));
}

}  // namespace
}  // namespace omx::harness
