// Unit coverage for the packed-representation primitives: PackedBits,
// the O(words) field-bits accounting, PackedView merge semantics, and the
// RunSet ring algebra — each checked against a brute-force oracle.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "core/packed_view.h"
#include "support/bits.h"
#include "support/packed_bits.h"
#include "support/run_set.h"

namespace omx {
namespace {

using core::PackedFlood;
using core::PackedView;
using support::PackedBits;
using support::Run;
using support::RunSet;
using support::RunSetPtr;
using support::ShiftedSet;

// ---------------------------------------------------------------------------
// field_bits_prefix: closed form == brute-force partial sums.

TEST(FieldBitsPrefix, MatchesBruteForcePartialSums) {
  std::uint64_t brute = 0;
  EXPECT_EQ(field_bits_prefix(0), 0u);
  for (std::uint64_t x = 0; x < 5000; ++x) {
    brute += field_bits(x);
    EXPECT_EQ(field_bits_prefix(x + 1), brute) << "x=" << x;
  }
}

TEST(FieldBitsPrefix, IntervalBillingMatchesPairLoop) {
  // interval_pair_bits([lo, hi)) == sum of (field_bits(id) + 1).
  const std::uint32_t lo = 37, hi = 4099;
  std::uint64_t brute = 0;
  for (std::uint32_t id = lo; id < hi; ++id) {
    brute += field_bits(id) + 1;
  }
  EXPECT_EQ(support::interval_pair_bits(lo, hi), brute);
  EXPECT_EQ(support::interval_pair_bits(5, 5), 0u);
}

// ---------------------------------------------------------------------------
// PackedBits basics, including n not a multiple of 64.

TEST(PackedBits, SetTestCountAtAwkwardSize) {
  PackedBits b(70);  // 2 words, top word mostly slack
  EXPECT_EQ(b.size(), 70u);
  EXPECT_EQ(b.num_words(), 2u);
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.count(), 0u);

  EXPECT_TRUE(b.test_and_set(0));
  EXPECT_FALSE(b.test_and_set(0));  // second set is not fresh
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(68));
  EXPECT_EQ(b.count(), 4u);

  std::vector<std::uint32_t> seen;
  b.for_each_set([&](std::uint32_t id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 63, 64, 69}));

  b.clear_all();
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.size(), 70u);  // clear keeps the size
}

TEST(PackedBits, SumFieldBitsMatchesPerIdLoop) {
  std::mt19937 rng(20240807);
  for (const std::uint32_t n : {1u, 64u, 70u, 100u, 1000u, 4096u}) {
    PackedBits b(n);
    std::uint64_t brute = 0;
    for (std::uint32_t id = 0; id < n; ++id) {
      if (rng() % 3 == 0) {
        b.set(id);
        brute += field_bits(id);
      }
    }
    EXPECT_EQ(support::sum_field_bits(b), brute) << "n=" << n;
  }
}

TEST(PackedBits, SumFieldBitsAllSet) {
  // All-set is the flood steady state; check against the closed form.
  const std::uint32_t n = 777;
  PackedBits b(n);
  for (std::uint32_t id = 0; id < n; ++id) b.set(id);
  EXPECT_EQ(support::sum_field_bits(b), field_bits_prefix(n));
}

// ---------------------------------------------------------------------------
// PackedView: empty / all-known / merge with fresh tracking.

TEST(PackedView, EmptyViewBlobIsOneBit) {
  PackedView v(100);
  EXPECT_FALSE(v.any());
  EXPECT_FALSE(v.full());
  EXPECT_EQ(v.known_count(), 0u);
  const auto blob = v.make_blob();
  EXPECT_EQ(blob->bits, 1u);  // the legacy empty FloodMsg also bills 1 bit
}

TEST(PackedView, AddAndReadBack) {
  PackedView v(70);
  EXPECT_TRUE(v.add(69, 1));
  EXPECT_TRUE(v.add(3, 0));
  EXPECT_FALSE(v.add(69, 0));  // duplicate add is a no-op...
  EXPECT_EQ(v.value_of(69), 1u);  // ...and cannot flip the stored bit
  EXPECT_EQ(v.value_of(3), 0u);
  EXPECT_FALSE(v.knows(4));
  EXPECT_EQ(v.known_count(), 2u);
  EXPECT_EQ(v.ones(), 1u);
  EXPECT_EQ(v.zeros(), 1u);
}

TEST(PackedView, AllKnownShortCircuitsAndCounts) {
  const std::uint32_t n = 130;
  PackedView v(n);
  std::uint32_t ones = 0;
  for (std::uint32_t id = 0; id < n; ++id) {
    const std::uint8_t bit = id % 3 == 0;
    ones += bit;
    v.add(id, bit);
  }
  EXPECT_TRUE(v.full());
  EXPECT_EQ(v.ones(), ones);
  EXPECT_EQ(v.zeros(), n - ones);
  // Blob billing == legacy FloodMsg billing for the same pair set.
  std::uint64_t brute = 1;
  for (std::uint32_t id = 0; id < n; ++id) {
    brute += field_bits(id) + 1;
  }
  EXPECT_EQ(v.make_blob()->bits, brute);
}

TEST(PackedView, MergeTracksFreshAndIgnoresKnownIds) {
  const std::uint32_t n = 100;
  PackedView a(n), fresh(n);
  a.add(1, 1);
  a.add(70, 0);

  PackedView b(n);
  b.add(1, 0);   // conflicting value for a known id must NOT overwrite
  b.add(2, 1);   // novel
  b.add(71, 1);  // novel
  const auto blob = b.make_blob();

  EXPECT_EQ(a.merge_from(*blob, &fresh), 2u);
  EXPECT_EQ(a.known_count(), 4u);
  EXPECT_EQ(a.value_of(1), 1u);  // first-learned value wins (legacy learn())
  EXPECT_EQ(a.value_of(2), 1u);
  EXPECT_EQ(a.value_of(71), 1u);
  // fresh mirrors exactly the novel ids.
  EXPECT_EQ(fresh.known_count(), 2u);
  EXPECT_TRUE(fresh.knows(2));
  EXPECT_TRUE(fresh.knows(71));
  EXPECT_FALSE(fresh.knows(1));

  // Re-merging the same blob learns nothing new.
  EXPECT_EQ(a.merge_from(*blob, &fresh), 0u);
  EXPECT_EQ(fresh.known_count(), 2u);
}

TEST(PackedView, ClearKeepsCapacityAndSize) {
  PackedView v(50);
  v.add(10, 1);
  v.clear_keep_capacity();
  EXPECT_EQ(v.size(), 50u);
  EXPECT_FALSE(v.any());
  EXPECT_TRUE(v.add(10, 0));
  EXPECT_EQ(v.value_of(10), 0u);  // the cleared value bit did not linger
}

// ---------------------------------------------------------------------------
// RunSet ring algebra vs a std::set oracle.

std::set<std::uint32_t> ids_of(const RunSet& s) {
  std::set<std::uint32_t> out;
  s.for_each_id([&](std::uint32_t id) { out.insert(id); });
  return out;
}

RunSetPtr from_ids(const std::set<std::uint32_t>& ids) {
  std::vector<Run> runs;
  for (std::uint32_t id : ids) {
    if (!runs.empty() && runs.back().hi == id) {
      ++runs.back().hi;
    } else {
      runs.push_back(Run{id, id + 1});
    }
  }
  return std::make_shared<RunSet>(std::move(runs));
}

TEST(RunSet, UnionShiftedMatchesSetOracle) {
  std::mt19937 rng(7);
  const std::uint32_t n = 257;  // prime-ish: exercises seam wrapping
  for (int iter = 0; iter < 50; ++iter) {
    std::set<std::uint32_t> base_ids, op1_ids, op2_ids;
    for (std::uint32_t id = 0; id < n; ++id) {
      if (rng() % 4 == 0) base_ids.insert(id);
      if (rng() % 5 == 0) op1_ids.insert(id);
      if (rng() % 7 == 0) op2_ids.insert(id);
    }
    base_ids.insert(0);
    const RunSetPtr base = from_ids(base_ids);
    const RunSetPtr op1 = from_ids(op1_ids);
    const RunSetPtr op2 = from_ids(op2_ids);
    const std::uint32_t s1 = rng() % n, s2 = rng() % n;

    const RunSetPtr got = support::union_shifted(
        *base, {ShiftedSet{op1.get(), s1}, ShiftedSet{op2.get(), s2}}, n);

    std::set<std::uint32_t> want = base_ids;
    for (std::uint32_t id : op1_ids) want.insert((id + s1) % n);
    for (std::uint32_t id : op2_ids) want.insert((id + s2) % n);
    ASSERT_EQ(ids_of(*got), want) << "iter " << iter;
    EXPECT_EQ(got->count(), want.size());
  }
}

TEST(RunSet, DifferenceMatchesSetOracle) {
  std::mt19937 rng(11);
  const std::uint32_t n = 200;
  for (int iter = 0; iter < 50; ++iter) {
    std::set<std::uint32_t> a_ids, b_ids;
    for (std::uint32_t id = 0; id < n; ++id) {
      if (rng() % 3 == 0) a_ids.insert(id);
      if (rng() % 3 == 0) b_ids.insert(id);
    }
    const RunSetPtr got = support::difference(*from_ids(a_ids),
                                              *from_ids(b_ids));
    std::set<std::uint32_t> want;
    for (std::uint32_t id : a_ids) {
      if (b_ids.count(id) == 0) want.insert(id);
    }
    ASSERT_EQ(ids_of(*got), want) << "iter " << iter;
  }
}

TEST(RunSet, DifferenceWithSelfIsTheSharedEmptySet) {
  const RunSetPtr a = from_ids({1, 2, 3, 50});
  const RunSetPtr d = support::difference(*a, *a);
  EXPECT_TRUE(d->empty());
  EXPECT_EQ(d.get(), RunSet::empty_set().get());  // canonical instance
}

TEST(RunSet, ShiftedPairBitsMatchesPerIdLoop) {
  std::mt19937 rng(13);
  const std::uint32_t n = 300;
  for (int iter = 0; iter < 20; ++iter) {
    std::set<std::uint32_t> ids;
    for (std::uint32_t id = 0; id < n; ++id) {
      if (rng() % 3 == 0) ids.insert(id);
    }
    const std::uint32_t rot = rng() % n;
    std::uint64_t brute = 0;
    for (std::uint32_t id : ids) {
      brute += field_bits((id + rot) % n) + 1;
    }
    EXPECT_EQ(support::shifted_pair_bits(*from_ids(ids), rot, n), brute)
        << "iter " << iter << " rot " << rot;
  }
}

TEST(RunSet, ContainsAgreesWithOracle) {
  const RunSetPtr s = from_ids({0, 1, 5, 6, 7, 63, 64, 199});
  for (std::uint32_t id = 0; id < 205; ++id) {
    const bool want = id <= 1 || (id >= 5 && id <= 7) || id == 63 ||
                      id == 64 || id == 199;
    EXPECT_EQ(s->contains(id), want) << id;
  }
  EXPECT_FALSE(RunSet::empty_set()->contains(0));
}

}  // namespace
}  // namespace omx
