#include <gtest/gtest.h>

#include "rng/ledger.h"
#include "support/check.h"

namespace omx::rng {
namespace {

TEST(Ledger, CountsCallsAndBits) {
  Ledger ledger(4, 1);
  EXPECT_EQ(ledger.calls(), 0u);
  EXPECT_EQ(ledger.bits(), 0u);
  ledger.source(0).draw_bit();
  EXPECT_EQ(ledger.calls(), 1u);
  EXPECT_EQ(ledger.bits(), 1u);
  ledger.source(1).draw_bits(17);
  EXPECT_EQ(ledger.calls(), 2u);
  EXPECT_EQ(ledger.bits(), 18u);
}

TEST(Ledger, PerProcessStreamsAreIndependentAndDeterministic) {
  Ledger a(2, 99), b(2, 99), c(2, 100);
  bool same_seed_same = true, diff_proc_differ = false, diff_seed_differ = false;
  for (int i = 0; i < 64; ++i) {
    const auto a0 = a.source(0).draw_bits(64);
    const auto a1 = a.source(1).draw_bits(64);
    const auto b0 = b.source(0).draw_bits(64);
    const auto c0 = c.source(0).draw_bits(64);
    if (a0 != b0) same_seed_same = false;
    if (a0 != a1) diff_proc_differ = true;
    if (a0 != c0) diff_seed_differ = true;
  }
  EXPECT_TRUE(same_seed_same);
  EXPECT_TRUE(diff_proc_differ);
  EXPECT_TRUE(diff_seed_differ);
}

TEST(Ledger, BitBudgetEnforced) {
  Ledger ledger(2, 5);
  ledger.set_bit_budget(3);
  auto& s = ledger.source(0);
  EXPECT_TRUE(s.can_draw(1));
  EXPECT_TRUE(s.can_draw(3));
  EXPECT_FALSE(s.can_draw(4));
  s.draw_bit();
  s.draw_bit();
  s.draw_bit();
  EXPECT_FALSE(s.can_draw(1));
  EXPECT_THROW(s.draw_bit(), BudgetExhausted);
  EXPECT_EQ(ledger.bits(), 3u);  // failed draw not billed
}

TEST(Ledger, CallBudgetEnforced) {
  Ledger ledger(1, 5);
  ledger.set_call_budget(2);
  auto& s = ledger.source(0);
  s.draw_bits(10);
  s.draw_bits(10);
  EXPECT_FALSE(s.can_draw(1));
  EXPECT_THROW(s.draw_bit(), BudgetExhausted);
  EXPECT_EQ(ledger.calls(), 2u);
}

TEST(Ledger, RoundWindowCounting) {
  Ledger ledger(3, 8);
  ledger.begin_round_window();
  EXPECT_EQ(ledger.calls_this_window(), 0u);
  ledger.source(0).draw_bit();
  ledger.source(2).draw_bit();
  EXPECT_EQ(ledger.calls_this_window(), 2u);
  ledger.begin_round_window();
  EXPECT_EQ(ledger.calls_this_window(), 0u);
  ledger.source(1).draw_bit();
  EXPECT_EQ(ledger.calls_this_window(), 1u);
}

TEST(Ledger, DrawBitsValidatesWidth) {
  Ledger ledger(1, 3);
  EXPECT_THROW(ledger.source(0).draw_bits(0), PreconditionError);
  EXPECT_THROW(ledger.source(0).draw_bits(65), PreconditionError);
  EXPECT_NO_THROW(ledger.source(0).draw_bits(64));
}

TEST(Ledger, SourceOutOfRangeThrows) {
  Ledger ledger(2, 3);
  EXPECT_THROW(ledger.source(2), PreconditionError);
}

TEST(Ledger, BitsAreNotWildlyBiased) {
  Ledger ledger(1, 1234);
  auto& s = ledger.source(0);
  int ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) ones += s.draw_bit() ? 1 : 0;
  EXPECT_NEAR(ones, trials / 2, trials / 20);
}

}  // namespace
}  // namespace omx::rng
