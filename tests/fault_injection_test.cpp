// Fault-injection referee self-tests: the engine's legality firewall must
// detect every class of illegal adversarial action (sim/fault_injection.h)
// with the precise exception — at thread count 1 and 8 alike, since the
// thread pool rethrows worker exceptions on the calling thread and bounded
// rng budgets force the serial billing path.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "rng/ledger.h"
#include "sim/fault_injection.h"
#include "sim/runner.h"
#include "support/check.h"

namespace omx::sim {
namespace {

using referee::Illegal;
using referee::IllegalActionAdversary;
using referee::OverdrawMachine;

struct Bit {
  std::uint8_t v = 0;
  std::uint64_t bit_size() const { return 1; }
};

/// Broadcasts to *everyone including itself* each round, so the wire always
/// carries both self-deliveries and honest-honest links to attack.
class SelfBroadcastMachine final : public Machine<Bit> {
 public:
  SelfBroadcastMachine(std::uint32_t n, std::uint32_t rounds)
      : n_(n), rounds_(rounds) {}
  std::uint32_t num_processes() const override { return n_; }
  void begin_round(std::uint32_t r) override { cur_ = r; }
  void round(ProcessId /*p*/, RoundIo<Bit>& io) override {
    if (cur_ < rounds_) io.send_to_all(Bit{1}, /*include_self=*/true);
  }
  bool finished() const override { return cur_ + 1 > rounds_; }

 private:
  std::uint32_t n_, rounds_, cur_ = 0;
};

/// Never finishes: food for the watchdog tests.
class StallMachine final : public Machine<Bit> {
 public:
  explicit StallMachine(std::uint32_t n) : n_(n) {}
  std::uint32_t num_processes() const override { return n_; }
  void round(ProcessId, RoundIo<Bit>&) override {}
  bool finished() const override { return false; }

 private:
  std::uint32_t n_;
};

Runner<Bit>::Options with_threads(unsigned threads) {
  Runner<Bit>::Options opts;
  opts.threads = threads;
  return opts;
}

// ---------------------------------------------------------------------------
// The class x thread-count matrix.

class FirewallMatrix
    : public ::testing::TestWithParam<std::tuple<Illegal, unsigned>> {};

const char* expected_substring(Illegal what) {
  switch (what) {
    case Illegal::HonestLinkDrop:
      return "between two non-corrupted processes";
    case Illegal::BudgetOverrun:
      return "corruption budget exceeded";
    case Illegal::SelfDeliveryDrop:
      return "omitted the self-delivery";
    case Illegal::WrongRoundDelivery:
      return "appeared on the wire after the computation phase was sealed";
  }
  return "?";
}

TEST_P(FirewallMatrix, EveryIllegalActionThrowsAdversaryViolation) {
  const auto [what, threads] = GetParam();
  const std::uint32_t n = 8;
  rng::Ledger ledger(n, 1);
  IllegalActionAdversary<Bit> adv(what);
  Runner<Bit> runner(n, /*t=*/2, &ledger, &adv, with_threads(threads));
  SelfBroadcastMachine m(n, 3);
  try {
    runner.run(m);
    FAIL() << "firewall hole: illegal action '" << referee::to_string(what)
           << "' went undetected at threads=" << threads;
  } catch (const AdversaryViolation& e) {
    EXPECT_TRUE(adv.fired());
    EXPECT_NE(std::string(e.what()).find(expected_substring(what)),
              std::string::npos)
        << "unexpected message: " << e.what();
    // Context enrichment: the violation names the round it happened in.
    EXPECT_NE(std::string(e.what()).find("round 0"), std::string::npos)
        << "missing round context: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, FirewallMatrix,
    ::testing::Combine(::testing::Values(Illegal::HonestLinkDrop,
                                         Illegal::BudgetOverrun,
                                         Illegal::SelfDeliveryDrop,
                                         Illegal::WrongRoundDelivery),
                       ::testing::Values(1u, 8u)),
    [](const auto& info) {
      std::string name = referee::to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_threads" + std::to_string(std::get<1>(info.param));
    });

// A legal adversary driven through the same machine must NOT trip the
// audit: corrupt one process, silence it, run to completion.
class LegalOmissionAdversary final : public Adversary<Bit> {
 public:
  void intervene(AdversaryContext<Bit>& ctx) override {
    ctx.corrupt(0);
    ctx.silence(0);
  }
};

TEST(Firewall, LegalOmissionsPassTheAudit) {
  for (const unsigned threads : {1u, 8u}) {
    const std::uint32_t n = 8;
    rng::Ledger ledger(n, 1);
    LegalOmissionAdversary adv;
    Runner<Bit> runner(n, 2, &ledger, &adv, with_threads(threads));
    SelfBroadcastMachine m(n, 3);
    const auto rr = runner.run(m);
    EXPECT_FALSE(rr.hit_round_cap);
    EXPECT_EQ(rr.metrics.corrupted, 1u);
    EXPECT_GT(rr.metrics.omitted, 0u);
  }
}

// ---------------------------------------------------------------------------
// rng ledger overdraft: protocol code that ignores can_draw() must surface
// BudgetExhausted at the exact same draw regardless of thread count
// (bounded budgets force the serial billing path).

TEST(Firewall, LedgerOverdraftThrowsBudgetExhaustedAtAnyThreadCount) {
  std::string what_serial;
  for (const unsigned threads : {1u, 8u}) {
    const std::uint32_t n = 8;
    rng::Ledger ledger(n, 1);
    ledger.set_bit_budget(64);  // exactly one 64-bit draw fits
    Adversary<Bit> benign;
    Runner<Bit> runner(n, 2, &ledger, &benign, with_threads(threads));
    SelfBroadcastMachine inner(n, 3);
    OverdrawMachine<Bit> m(&inner, /*who=*/0, /*draws_per_round=*/4);
    try {
      runner.run(m);
      FAIL() << "overdraft went unnoticed at threads=" << threads;
    } catch (const rng::BudgetExhausted& e) {
      const std::string what = e.what();
      // The message carries the accounting context.
      EXPECT_NE(what.find("process 0"), std::string::npos) << what;
      EXPECT_NE(what.find("bit budget 64"), std::string::npos) << what;
      if (threads == 1) {
        what_serial = what;
      } else {
        EXPECT_EQ(what, what_serial)
            << "exhaustion point depends on thread count";
      }
    }
  }
}

// A racked (parallel) round whose draws exceed the per-source slack bound
// promised to the ledger must fail loudly (InvariantError), never silently
// diverge from serial semantics. Serial runs of the same workload are fine.
TEST(Firewall, RackedSlackViolationIsLoud) {
  const std::uint32_t n = 8;
  // 70 x 64 bits = 4480 > the runner's default 4096-bit slack; the huge
  // finite budget keeps racked_admissible() true so the round goes racked.
  const auto run_with = [&](unsigned threads) {
    rng::Ledger ledger(n, 1);
    ledger.set_bit_budget(std::uint64_t{1} << 40);
    Adversary<Bit> benign;
    Runner<Bit> runner(n, 2, &ledger, &benign, with_threads(threads));
    SelfBroadcastMachine inner(n, 2);
    OverdrawMachine<Bit> m(&inner, /*who=*/3, /*draws_per_round=*/70);
    return runner.run(m);
  };
  EXPECT_NO_THROW(run_with(1));  // serial billing: no slack promise to break
  try {
    run_with(8);
    FAIL() << "slack violation in a racked phase went unnoticed";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("per-source slack"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Cooperative watchdog: a stalled protocol degrades into hit_deadline
// instead of spinning until the round cap.

TEST(Watchdog, DeadlineStopsAStalledRun) {
  const std::uint32_t n = 4;
  rng::Ledger ledger(n, 1);
  Adversary<Bit> benign;
  Runner<Bit>::Options opts;
  opts.deadline = std::chrono::milliseconds(20);
  opts.max_rounds = std::uint64_t{1} << 60;  // the cap must not be what stops us
  Runner<Bit> runner(n, 1, &ledger, &benign, opts);
  StallMachine m(n);
  const auto rr = runner.run(m);
  EXPECT_TRUE(rr.hit_deadline);
  EXPECT_FALSE(rr.hit_round_cap);
  EXPECT_GT(rr.metrics.rounds, 0u);  // it did make round progress first
}

TEST(Watchdog, ZeroDeadlineMeansNoWatchdog) {
  const std::uint32_t n = 4;
  rng::Ledger ledger(n, 1);
  Adversary<Bit> benign;
  Runner<Bit>::Options opts;
  opts.max_rounds = 64;  // the cap, not a deadline, ends this run
  Runner<Bit> runner(n, 1, &ledger, &benign, opts);
  StallMachine m(n);
  const auto rr = runner.run(m);
  EXPECT_FALSE(rr.hit_deadline);
  EXPECT_TRUE(rr.hit_round_cap);
  EXPECT_EQ(rr.metrics.rounds, 64u);
}

}  // namespace
}  // namespace omx::sim
