// The crash-safe sweep runner: verdict taxonomy, retry policy, checkpoint
// resume (including the byte-identity guarantee after an interrupt), config
// serialization/hashing, repro capture, and guarded_main's exit codes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/params.h"
#include "harness/sweep.h"
#include "rng/ledger.h"
#include "support/check.h"
#include "support/prng.h"

namespace omx::harness {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Per-test scratch directory under the gtest temp root.
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("omx_sweep_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A sub-millisecond trial: FloodSet at toy scale.
ExperimentConfig tiny_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.algo = Algo::FloodSet;
  cfg.attack = Attack::None;
  cfg.n = 8;
  cfg.t = 2;
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// Config serialization, parsing, hashing.

TEST(ConfigSerialization, RoundTripsThroughParse) {
  ExperimentConfig cfg;
  cfg.algo = Algo::Param;
  cfg.attack = Attack::CoinHiding;
  cfg.inputs = InputPattern::Alternating;
  cfg.explicit_inputs = {1, 0, 1, 1, 0, 1, 0, 0};
  cfg.n = 8;
  cfg.t = 3;
  cfg.x = 2;
  cfg.seed = 0xDEADBEEFCAFEull;
  cfg.random_bit_budget = 123456;
  cfg.drop_prob = 0.37;
  cfg.max_rounds = 99;
  cfg.deadline_ms = 1500;
  cfg.params = core::Params::paper();

  ExperimentConfig back;
  std::string err;
  ASSERT_TRUE(parse_config(serialize_config(cfg), &back, &err)) << err;
  // Canonical text equality == field equality for everything serialized.
  EXPECT_EQ(serialize_config(back), serialize_config(cfg));
  EXPECT_EQ(back.explicit_inputs, cfg.explicit_inputs);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_DOUBLE_EQ(back.drop_prob, cfg.drop_prob);
}

TEST(ConfigSerialization, ParseIgnoresCommentsAndRejectsGarbage) {
  ExperimentConfig cfg;
  std::string err;
  EXPECT_TRUE(parse_config("# comment\n\nn=16\nt=3\n", &cfg, &err));
  EXPECT_EQ(cfg.n, 16u);
  EXPECT_EQ(cfg.t, 3u);
  EXPECT_FALSE(parse_config("no equals sign here\n", &cfg, &err));
  EXPECT_FALSE(parse_config("unknown_key=1\n", &cfg, &err));
  EXPECT_FALSE(err.empty());
}

TEST(ConfigSerialization, ParseReportsByteOffsetOfFirstBadLine) {
  ExperimentConfig cfg;
  std::string err;
  std::size_t off = 99;
  EXPECT_TRUE(parse_config("n=16\n", &cfg, &err, &off));

  // Two good lines (13 + 12 bytes including newlines), then debris.
  EXPECT_FALSE(
      parse_config("algo=optimal\nattack=none\nbogus line\n", &cfg, &err, &off));
  EXPECT_EQ(off, 25u);

  // Offsets count raw bytes: CRLF line endings include the CR.
  EXPECT_FALSE(parse_config("algo=optimal\r\nbogus\r\n", &cfg, &err, &off));
  EXPECT_EQ(off, 14u);

  // A bad *value* points at its line, not at the start of the file.
  EXPECT_FALSE(parse_config("n=16\nalgo=quantum\n", &cfg, &err, &off));
  EXPECT_EQ(off, 5u);

  // The offset parameter stays optional for callers that only want yes/no.
  EXPECT_FALSE(parse_config("bogus\n", &cfg, &err));
}

TEST(ConfigHash, IgnoresWorkerLaneCountButNotSeeds) {
  ExperimentConfig a = tiny_config(7);
  ExperimentConfig b = a;
  b.threads = 8;  // bit-identical engine → must not change the key
  EXPECT_EQ(config_key(a), config_key(b));

  b = a;
  b.seed = 8;
  EXPECT_NE(config_key(a), config_key(b));
  EXPECT_EQ(config_key(a).size(), 16u);
}

// ---------------------------------------------------------------------------
// Verdict taxonomy through the isolation shell.

TEST(SweepVerdicts, OkTrialKeepsItsResult) {
  Sweep sweep(SweepOptions{});
  const auto trial = sweep.run(tiny_config(1));
  EXPECT_EQ(trial.verdict, Verdict::Ok);
  EXPECT_TRUE(trial.ok());
  EXPECT_TRUE(trial.error.empty());
  EXPECT_GT(trial.result.time_rounds, 0u);
  EXPECT_EQ(sweep.trials(), 1u);
  EXPECT_EQ(sweep.failures(), 0u);
}

TEST(SweepVerdicts, InvalidConfigIsAPreconditionVerdictNotACrash) {
  SweepOptions opts;
  opts.capture_repro = false;
  Sweep sweep(opts);
  auto cfg = tiny_config(1);
  cfg.t = cfg.n;  // violates t < n
  const auto trial = sweep.run(cfg);
  EXPECT_EQ(trial.verdict, Verdict::Precondition);
  EXPECT_FALSE(trial.ok());
  EXPECT_NE(trial.error.find("t < n"), std::string::npos) << trial.error;
  // The poisoned trial's metrics are zeroed, not half-filled.
  EXPECT_EQ(trial.result.time_rounds, 0u);
  EXPECT_EQ(sweep.failures(), 1u);
}

TEST(SweepVerdicts, RoundCapIsItsOwnVerdict) {
  Sweep sweep(SweepOptions{});
  auto cfg = tiny_config(1);
  cfg.t = 4;
  cfg.max_rounds = 2;  // FloodSet needs t+1 > 2 rounds
  const auto trial = sweep.run(cfg);
  EXPECT_EQ(trial.verdict, Verdict::RoundCap);
  EXPECT_TRUE(trial.result.hit_round_cap);
  EXPECT_FALSE(trial.ok());
}

TEST(SweepVerdicts, StalledTrialTimesOutInsteadOfHangingTheSweep) {
  SweepOptions opts;
  opts.trial_deadline_ms = 1;  // far below this workload's runtime
  Sweep sweep(opts);
  ExperimentConfig cfg;
  cfg.algo = Algo::FloodSet;
  cfg.n = 512;  // ~n^2 messages per round for t+1 rounds: >> 1ms
  cfg.t = core::Params::max_t_optimal(cfg.n);
  const auto trial = sweep.run(cfg);
  EXPECT_EQ(trial.verdict, Verdict::Timeout);
  EXPECT_TRUE(trial.result.hit_deadline);
  EXPECT_FALSE(trial.ok());
  EXPECT_EQ(sweep.failures(), 1u);
}

// ---------------------------------------------------------------------------
// Retry policy: transient verdicts re-run with perturbed seeds.

TEST(SweepRetries, TransientVerdictsRetryWithPerturbedSeeds) {
  SweepOptions opts;
  opts.max_attempts = 3;
  Sweep sweep(opts);
  auto cfg = tiny_config(1234);
  cfg.t = 4;
  cfg.max_rounds = 2;  // RoundCap on every attempt
  const auto trial = sweep.run(cfg);
  EXPECT_EQ(trial.verdict, Verdict::RoundCap);
  EXPECT_EQ(trial.attempts, 3u);
  // The recorded attempt's seed is the documented deterministic perturbation.
  EXPECT_EQ(trial.seed_used, mix64(1234, 0x5EED00 + 3));
}

TEST(SweepRetries, FailureVerdictsAreNotRetried) {
  SweepOptions opts;
  opts.max_attempts = 5;
  opts.capture_repro = false;
  Sweep sweep(opts);
  auto cfg = tiny_config(1);
  cfg.t = cfg.n;  // Precondition: deterministic, retrying is pointless
  const auto trial = sweep.run(cfg);
  EXPECT_EQ(trial.verdict, Verdict::Precondition);
  EXPECT_EQ(trial.attempts, 1u);
  EXPECT_EQ(trial.seed_used, 1u);
}

// ---------------------------------------------------------------------------
// Checkpointing and resume.

TEST(SweepCheckpoint, ResumeReplaysRecordedTrialsWithoutRerunning) {
  const fs::path dir = scratch("resume");
  SweepOptions opts;
  opts.checkpoint_path = (dir / "ckpt.jsonl").string();

  std::vector<TrialOutcome> first;
  {
    Sweep sweep(opts);
    for (std::uint64_t s = 1; s <= 3; ++s) {
      first.push_back(sweep.run(tiny_config(s)));
    }
    EXPECT_EQ(sweep.resumed(), 0u);
  }
  const std::string bytes_after_first = slurp(opts.checkpoint_path);
  EXPECT_EQ(std::count(bytes_after_first.begin(), bytes_after_first.end(),
                       '\n'),
            3);

  Sweep resumed(opts);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const auto trial = resumed.run(tiny_config(s));
    EXPECT_TRUE(trial.from_checkpoint);
    EXPECT_EQ(trial.verdict, first[s - 1].verdict);
    EXPECT_EQ(trial.result.time_rounds, first[s - 1].result.time_rounds);
    EXPECT_EQ(trial.result.metrics.comm_bits,
              first[s - 1].result.metrics.comm_bits);
    EXPECT_EQ(trial.result.decision, first[s - 1].result.decision);
  }
  EXPECT_EQ(resumed.trials(), 3u);
  EXPECT_EQ(resumed.resumed(), 3u);
  // Replay must not grow or rewrite the file.
  EXPECT_EQ(slurp(opts.checkpoint_path), bytes_after_first);
}

TEST(SweepCheckpoint, InterruptedSweepResumesToByteIdenticalResults) {
  const fs::path dir = scratch("interrupt");
  const int kTrials = 5;

  // The uninterrupted reference run.
  SweepOptions ref_opts;
  ref_opts.checkpoint_path = (dir / "reference.jsonl").string();
  {
    Sweep sweep(ref_opts);
    for (std::uint64_t s = 1; s <= kTrials; ++s) sweep.run(tiny_config(s));
  }
  const std::string reference = slurp(ref_opts.checkpoint_path);

  // Simulate kill -9 after two trials: keep two complete lines plus a torn
  // fragment of the third (what a mid-write kill leaves at worst).
  std::string torn;
  {
    std::istringstream is(reference);
    std::string line;
    for (int i = 0; i < 2 && std::getline(is, line); ++i) {
      torn += line;
      torn += '\n';
    }
    std::getline(is, line);
    torn += line.substr(0, line.size() / 2);  // no trailing newline
  }
  SweepOptions cut_opts;
  cut_opts.checkpoint_path = (dir / "interrupted.jsonl").string();
  {
    std::ofstream out(cut_opts.checkpoint_path, std::ios::binary);
    out << torn;
  }

  // Resume: the two recorded trials replay, the torn one re-runs.
  Sweep sweep(cut_opts);
  for (std::uint64_t s = 1; s <= kTrials; ++s) sweep.run(tiny_config(s));
  EXPECT_EQ(sweep.resumed(), 2u);
  EXPECT_EQ(sweep.trials(), std::uint64_t{kTrials});

  // The acceptance criterion: the final result table is byte-identical to
  // the uninterrupted run's.
  EXPECT_EQ(slurp(cut_opts.checkpoint_path), reference);
}

TEST(SweepCheckpoint, CheckpointLineRoundTripsAndRejectsTornPrefixes) {
  Sweep sweep{SweepOptions{}};
  const TrialOutcome outcome = sweep.run(tiny_config(3));
  const std::string key = config_key(tiny_config(3));
  const std::string line = checkpoint_line(key, outcome);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  std::string back_key;
  TrialOutcome back;
  ASSERT_TRUE(parse_checkpoint_line(line, &back_key, &back));
  EXPECT_EQ(back_key, key);
  EXPECT_TRUE(back.from_checkpoint);
  EXPECT_EQ(back.verdict, outcome.verdict);
  EXPECT_EQ(back.seed_used, outcome.seed_used);
  EXPECT_EQ(back.result.time_rounds, outcome.result.time_rounds);
  EXPECT_EQ(back.result.metrics.messages, outcome.result.metrics.messages);
  // Canonical: a replayed outcome re-serializes to the identical line (the
  // farm's shard merge and the checkpoint's byte-identity both lean on it).
  EXPECT_EQ(checkpoint_line(back_key, back), line);

  // Every proper prefix is what a kill -9 mid-write can leave behind; none
  // may parse (a half-line must burn the lease, never fake a result).
  for (std::size_t cut = 0; cut < line.size(); cut += 7) {
    EXPECT_FALSE(parse_checkpoint_line(line.substr(0, cut), &back_key, &back))
        << "prefix of length " << cut << " parsed";
  }
}

TEST(SweepCheckpoint, TornLineWarningNamesTheFinalLine) {
  // A checkpoint whose *final* line is torn is the expected kill -9
  // artifact; the loader must drop exactly that line, say so, and re-run
  // only the affected trial.
  const fs::path dir = scratch("torn_tail");
  SweepOptions ref_opts;
  ref_opts.checkpoint_path = (dir / "ref.jsonl").string();
  {
    Sweep sweep(ref_opts);
    for (std::uint64_t s = 1; s <= 3; ++s) sweep.run(tiny_config(s));
  }
  const std::string reference = slurp(ref_opts.checkpoint_path);

  // Truncate mid-way through the last line (no trailing newline).
  SweepOptions torn_opts;
  torn_opts.checkpoint_path = (dir / "torn.jsonl").string();
  {
    const std::size_t last_nl = reference.find_last_of('\n', reference.size() - 2);
    ASSERT_NE(last_nl, std::string::npos);
    std::ofstream out(torn_opts.checkpoint_path, std::ios::binary);
    out << reference.substr(0, last_nl + 1 + 10);
  }

  Sweep resumed(torn_opts);
  for (std::uint64_t s = 1; s <= 3; ++s) resumed.run(tiny_config(s));
  EXPECT_EQ(resumed.resumed(), 2u);   // the torn third line did not resume
  EXPECT_EQ(resumed.trials(), 3u);
  EXPECT_EQ(slurp(torn_opts.checkpoint_path), reference);
}

// ---------------------------------------------------------------------------
// Repro capture.

TEST(SweepRepro, ModelViolationsCaptureAReplayableConfig) {
  const fs::path dir = scratch("repro");
  SweepOptions opts;
  opts.repro_dir = (dir / "repro").string();
  Sweep sweep(opts);

  auto cfg = tiny_config(77);
  cfg.t = cfg.n + 3;  // Precondition — a model-violation verdict
  const auto trial = sweep.run(cfg);
  ASSERT_EQ(trial.verdict, Verdict::Precondition);
  ASSERT_FALSE(trial.repro_path.empty());
  EXPECT_EQ(fs::path(trial.repro_path).extension(), ".repro");
  EXPECT_TRUE(fs::exists(trial.repro_path));

  // The capture parses back to the exact offending config.
  ExperimentConfig replayed;
  std::string err;
  ASSERT_TRUE(parse_config(slurp(trial.repro_path), &replayed, &err)) << err;
  EXPECT_EQ(serialize_config(replayed), serialize_config(cfg));
  // And replaying it reproduces the failure class.
  EXPECT_THROW(run_experiment(replayed), PreconditionError);
}

TEST(SweepRepro, OkTrialsCaptureNothing) {
  const fs::path dir = scratch("repro_ok");
  SweepOptions opts;
  opts.repro_dir = (dir / "repro").string();
  Sweep sweep(opts);
  const auto trial = sweep.run(tiny_config(1));
  EXPECT_EQ(trial.verdict, Verdict::Ok);
  EXPECT_TRUE(trial.repro_path.empty());
  EXPECT_FALSE(fs::exists(dir / "repro"));  // not even an empty directory
}

// ---------------------------------------------------------------------------
// Environment-driven defaults and the summary line.

TEST(SweepOptionsEnv, ReadsTheDocumentedVariables) {
  ::setenv("OMX_SWEEP_CHECKPOINT", "ck.jsonl", 1);
  ::setenv("OMX_SWEEP_REPRO_DIR", "rdir", 1);
  ::setenv("OMX_SWEEP_DEADLINE_MS", "2500", 1);
  ::setenv("OMX_SWEEP_RETRIES", "2", 1);
  ::setenv("OMX_SWEEP_NO_REPRO", "1", 1);
  ::setenv("OMX_SWEEP_NO_TRACE", "1", 1);
  const SweepOptions o = SweepOptions::from_env();
  ::unsetenv("OMX_SWEEP_CHECKPOINT");
  ::unsetenv("OMX_SWEEP_REPRO_DIR");
  ::unsetenv("OMX_SWEEP_DEADLINE_MS");
  ::unsetenv("OMX_SWEEP_RETRIES");
  ::unsetenv("OMX_SWEEP_NO_REPRO");
  ::unsetenv("OMX_SWEEP_NO_TRACE");
  EXPECT_EQ(o.checkpoint_path, "ck.jsonl");
  EXPECT_EQ(o.repro_dir, "rdir");
  EXPECT_EQ(o.trial_deadline_ms, 2500u);
  EXPECT_EQ(o.max_attempts, 3u);  // 1 + retries
  EXPECT_FALSE(o.capture_repro);
  EXPECT_FALSE(o.capture_trace);
}

TEST(SweepSummary, QuietWhenAllOkLoudWhenNot) {
  Sweep quiet(SweepOptions{});
  quiet.run(tiny_config(1));
  std::ostringstream os;
  quiet.print_summary(os);
  EXPECT_TRUE(os.str().empty());

  SweepOptions opts;
  opts.capture_repro = false;
  Sweep loud(opts);
  loud.run(tiny_config(1));
  auto bad = tiny_config(2);
  bad.t = bad.n;
  loud.run(bad);
  os.str("");
  loud.print_summary(os);
  EXPECT_NE(os.str().find("1 ok"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("1 precondition"), std::string::npos) << os.str();
}

// ---------------------------------------------------------------------------
// guarded_main: the documented failure-class exit codes.

TEST(GuardedMain, MapsEachFailureClassToItsExitCode) {
  EXPECT_EQ(guarded_main([] { return 0; }), 0);
  EXPECT_EQ(guarded_main([] { return 7; }), 7);
  EXPECT_EQ(guarded_main([]() -> int { throw PreconditionError("p"); }), 2);
  EXPECT_EQ(guarded_main([]() -> int { throw InvariantError("i"); }), 3);
  EXPECT_EQ(guarded_main([]() -> int { throw AdversaryViolation("a"); }), 4);
  EXPECT_EQ(guarded_main([]() -> int { throw rng::BudgetExhausted("b"); }), 3);
  EXPECT_EQ(guarded_main([]() -> int { throw std::runtime_error("r"); }), 3);
  // Corrupt input is its own class (5), even though it is-a
  // PreconditionError so legacy EXPECT_THROW call sites keep passing.
  EXPECT_EQ(guarded_main([]() -> int {
              throw CorruptInputError("f.trace", 7, "bad");
            }),
            5);
}

TEST(GuardedMain, CorruptInputErrorCarriesPathAndOffset) {
  const CorruptInputError e("data/run.trace", 4096, "truncated record");
  EXPECT_EQ(e.path(), "data/run.trace");
  EXPECT_EQ(e.byte_offset(), 4096u);
  const std::string what = e.what();
  EXPECT_NE(what.find("data/run.trace"), std::string::npos) << what;
  EXPECT_NE(what.find("byte offset 4096"), std::string::npos) << what;
  EXPECT_NE(what.find("truncated record"), std::string::npos) << what;
}

}  // namespace
}  // namespace omx::harness
