// support::ThreadPool unit tests: lane coverage, barrier semantics,
// exception propagation, nested-call reentrancy, worker_count clamping.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <limits>
#include <set>
#include <stdexcept>
#include <vector>

#include "expsup/parallel.h"
#include "support/thread_pool.h"

namespace omx {
namespace {

TEST(ThreadPool, RunsEveryLaneExactlyOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](unsigned lane) { hits[lane].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  support::ThreadPool pool(1);
  unsigned seen = 99;
  pool.run([&](unsigned lane) { seen = lane; });
  EXPECT_EQ(seen, 0u);
}

TEST(ThreadPool, RunIsABarrier) {
  support::ThreadPool pool(3);
  // If run() returned before all lanes finished, some increments would be
  // missing when we read the counter right after.
  std::atomic<int> count{0};
  for (int iter = 0; iter < 50; ++iter) {
    pool.run([&](unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3 * (iter + 1));
  }
}

TEST(ThreadPool, FirstExceptionPropagatesToCaller) {
  support::ThreadPool pool(4);
  EXPECT_THROW(
      pool.run([](unsigned lane) {
        if (lane == 2) throw std::runtime_error("lane 2 failed");
      }),
      std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<int> count{0};
  pool.run([&](unsigned) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, NestedRunFromWorkerLaneExecutesInline) {
  support::ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  // A job that re-enters its own pool must not deadlock on the barrier;
  // the nested call degrades to inline sequential execution on that lane.
  pool.run([&](unsigned) {
    pool.run([&](unsigned) { inner_total.fetch_add(1); });
  });
  // 3 outer lanes x 3 inner lane-calls each.
  EXPECT_EQ(inner_total.load(), 9);
}

TEST(ThreadPool, SharedPoolIsSingletonAndSized) {
  support::ThreadPool& a = support::ThreadPool::shared();
  support::ThreadPool& b = support::ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  EXPECT_EQ(a.size(), support::ThreadPool::hardware_threads());
}

TEST(WorkerCount, ClampsToItemsAndHardware) {
  EXPECT_EQ(expsup::worker_count(0), 1u);
  EXPECT_EQ(expsup::worker_count(1), 1u);
  const unsigned hw = support::ThreadPool::hardware_threads();
  EXPECT_LE(expsup::worker_count(3), 3u);
  EXPECT_LE(expsup::worker_count(1000), hw);
  // Regression: a huge item count used to be narrowed to unsigned before
  // the comparison, wrapping to a tiny (or zero) worker count.
  const auto huge = static_cast<std::size_t>(
                        std::numeric_limits<unsigned>::max()) +
                    7;
  EXPECT_EQ(expsup::worker_count(huge), hw);
}

TEST(ParallelMap, PreservesOrderAndValues) {
  std::vector<int> items(257);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<int>(i);
  }
  const auto out = expsup::parallel_map(items, [](int x) { return 2 * x; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 2 * static_cast<int>(i));
  }
}

TEST(ParallelMap, RethrowsWorkerException) {
  std::vector<int> items(64, 1);
  items[37] = -1;
  EXPECT_THROW(expsup::parallel_map(items,
                                    [](int x) {
                                      if (x < 0) {
                                        throw std::runtime_error("bad item");
                                      }
                                      return x;
                                    }),
               std::runtime_error);
}

TEST(ParallelMap, NestedCallDoesNotDeadlock) {
  // Outer sweep over the shared pool; each item runs an inner sweep. The
  // inner call re-enters the same pool from a worker lane and must run
  // inline instead of blocking on the outer barrier.
  std::vector<int> outer(8);
  for (std::size_t i = 0; i < outer.size(); ++i) {
    outer[i] = static_cast<int>(i);
  }
  const auto sums = expsup::parallel_map(outer, [](int base) {
    std::vector<int> inner(16, base);
    const auto doubled =
        expsup::parallel_map(inner, [](int x) { return x + 1; });
    int sum = 0;
    for (int v : doubled) sum += v;
    return sum;
  });
  for (std::size_t i = 0; i < sums.size(); ++i) {
    EXPECT_EQ(sums[i], 16 * (static_cast<int>(i) + 1));
  }
}

}  // namespace
}  // namespace omx
