// The packed trace storage format (trace/codec.h): pack/unpack losslessness
// (byte-identity both directions), the TraceWriter packed path, the >5x
// compression target on flood-heavy traffic, and the corruption surface of
// the incremental decoder — truncated tails, flipped bytes, bad header
// flags and bad block markers are all CorruptInputError with the offending
// file and a byte offset, never a crash or a silently short read.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "support/check.h"
#include "trace/codec.h"
#include "trace/reader.h"
#include "trace/trace.h"

namespace omx::trace {
namespace {

namespace fs = std::filesystem;

fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("omx_codec_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const fs::path& p, const std::string& bytes) {
  std::ofstream(p, std::ios::binary | std::ios::trunc) << bytes;
}

/// A real trace to compress: an experiment run with the trace attached.
TraceData run_traced(const fs::path& path, harness::Algo algo,
                     harness::Attack attack, std::uint32_t n, bool packed) {
  harness::ExperimentConfig cfg;
  cfg.algo = algo;
  cfg.attack = attack;
  cfg.n = n;
  cfg.t = n / 8;
  cfg.seed = 7;
  cfg.trace_path = path.string();
  cfg.trace_packed = packed;
  (void)harness::run_experiment(cfg);
  return read_trace(path.string());
}

// ---------------------------------------------------------------------------
// Losslessness.

TEST(TraceCodec, PackUnpackIsTheIdentityBothWays) {
  const fs::path dir = scratch("identity");
  const TraceData raw = run_traced(dir / "raw.trace", harness::Algo::BenOr,
                                   harness::Attack::RandomOmission, 24,
                                   /*packed=*/false);
  ASSERT_FALSE(raw.packed);
  ASSERT_FALSE(raw.events.empty());

  write_trace(raw, (dir / "packed.trace").string(), /*packed=*/true);
  const TraceData packed = read_trace((dir / "packed.trace").string());
  EXPECT_TRUE(packed.packed);
  ASSERT_EQ(packed.events.size(), raw.events.size());
  EXPECT_EQ(0, std::memcmp(packed.events.data(), raw.events.data(),
                           raw.events.size() * sizeof(Event)));

  // unpack(pack(t)) is byte-identical to t, and pack(unpack(p)) to p.
  write_trace(packed, (dir / "raw2.trace").string(), /*packed=*/false);
  EXPECT_EQ(slurp(dir / "raw.trace"), slurp(dir / "raw2.trace"));
  write_trace(read_trace((dir / "raw2.trace").string()),
              (dir / "packed2.trace").string(), /*packed=*/true);
  EXPECT_EQ(slurp(dir / "packed.trace"), slurp(dir / "packed2.trace"));
}

TEST(TraceCodec, WriterPackedPathMatchesOfflinePack) {
  // The engine writing packed directly (trace_packed) must produce the
  // same file as packing the raw trace offline — same events, same block
  // boundaries (both go through the TraceWriter ring).
  const fs::path dir = scratch("writer");
  const TraceData raw = run_traced(dir / "raw.trace", harness::Algo::FloodSet,
                                   harness::Attack::RandomOmission, 32,
                                   /*packed=*/false);
  const TraceData live = run_traced(dir / "live.trace", harness::Algo::FloodSet,
                                    harness::Attack::RandomOmission, 32,
                                    /*packed=*/true);
  ASSERT_TRUE(live.packed);
  write_trace(raw, (dir / "offline.trace").string(), /*packed=*/true);
  EXPECT_EQ(slurp(dir / "live.trace"), slurp(dir / "offline.trace"));
}

TEST(TraceCodec, FloodTrafficCompressesPastFiveX) {
  const fs::path dir = scratch("ratio");
  const TraceData packed = run_traced(
      dir / "p.trace", harness::Algo::FloodSet,
      harness::Attack::RandomOmission, 128, /*packed=*/true);
  ASSERT_GT(packed.file_bytes, 0u);
  const double ratio = static_cast<double>(packed.raw_bytes()) /
                       static_cast<double>(packed.file_bytes);
  EXPECT_GT(ratio, 5.0) << "raw " << packed.raw_bytes() << " packed "
                        << packed.file_bytes;
}

TEST(TraceCodec, MultiBlockStreamsDecodeBlockIndependently) {
  // Two ring flushes -> two blocks; the second block's deltas must not
  // lean on the first (the decoder resets predecessors per block).
  const fs::path dir = scratch("blocks");
  const fs::path path = dir / "two.trace";
  std::vector<Event> events;
  {
    TraceWriter w(path.string(), 4, /*packed=*/true);
    for (std::uint32_t i = 0; i < TraceWriter::kRingEvents + 100; ++i) {
      const Event e{i, kSend, 0, i % 4, (i + 1) % 4, std::uint64_t{i} * 3};
      events.push_back(e);
      w.emit(e);
    }
    w.close();
  }
  const TraceData t = read_trace(path.string());
  ASSERT_EQ(t.events.size(), events.size());
  EXPECT_EQ(0, std::memcmp(t.events.data(), events.data(),
                           events.size() * sizeof(Event)));
}

// ---------------------------------------------------------------------------
// Corruption surface. Every mutilation is CorruptInputError carrying the
// path and a byte offset (the taxonomy contract: exit 5 via guarded_main).

class PackedCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = scratch("corrupt");
    path_ = dir_ / "p.trace";
    (void)run_traced(path_, harness::Algo::BenOr,
                     harness::Attack::RandomOmission, 24, /*packed=*/true);
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), sizeof(FileHeader) + 16);
  }

  /// Expect read_trace(path) to throw with the path and a plausible offset.
  void expect_corrupt(const fs::path& p, std::uint64_t min_offset,
                      std::uint64_t max_offset) {
    try {
      (void)read_trace(p.string());
      FAIL() << "read_trace accepted " << p;
    } catch (const CorruptInputError& e) {
      EXPECT_EQ(e.path(), p.string());
      EXPECT_GE(e.byte_offset(), min_offset);
      EXPECT_LE(e.byte_offset(), max_offset);
    }
  }

  fs::path dir_;
  fs::path path_;
  std::string bytes_;
};

TEST_F(PackedCorruption, TruncatedTail) {
  // A kill -9 mid-flush: the final block is cut short. The offset must
  // point into the torn block, not at 0.
  const fs::path torn = dir_ / "torn.trace";
  spit(torn, bytes_.substr(0, bytes_.size() - 9));
  expect_corrupt(torn, sizeof(FileHeader), bytes_.size());
}

TEST_F(PackedCorruption, BitFlippedBody) {
  // Flip one byte in the middle of the block body: the checksum (or, for
  // some flips, a column decode) must catch it.
  const fs::path flipped = dir_ / "flipped.trace";
  std::string b = bytes_;
  b[b.size() / 2] ^= 0x20;
  spit(flipped, b);
  expect_corrupt(flipped, sizeof(FileHeader), bytes_.size());
}

TEST_F(PackedCorruption, BadBlockMarker) {
  const fs::path bad = dir_ / "marker.trace";
  std::string b = bytes_;
  b[sizeof(FileHeader)] = 'X';  // first block's marker byte
  spit(bad, b);
  expect_corrupt(bad, sizeof(FileHeader), sizeof(FileHeader));
}

TEST_F(PackedCorruption, UnknownHeaderFlagBits) {
  // A flag word from the future (or a flipped bit): rejected at the header,
  // offset = the flag field itself.
  const fs::path bad = dir_ / "flags.trace";
  std::string b = bytes_;
  b[offsetof(FileHeader, flags)] |= 0x40;
  spit(bad, b);
  expect_corrupt(bad, offsetof(FileHeader, flags),
                 offsetof(FileHeader, flags));
}

TEST_F(PackedCorruption, PackedFilesCarryVersionTwo) {
  // The version bump is what makes pre-codec readers (which validate the
  // version but never validated the then-reserved flag word) reject packed
  // files instead of misparsing the blocks as raw 24-byte records.
  FileHeader h;
  std::memcpy(&h, bytes_.data(), sizeof h);
  EXPECT_EQ(h.version, kFormatVersionPacked);
  EXPECT_EQ(h.flags, kHeaderFlagPacked);
}

TEST_F(PackedCorruption, VersionAndPackedFlagMustAgree) {
  // A packed header downgraded to version 1 (and the reverse: the packed
  // flag cleared while version stays 2) is a stitched or flipped header —
  // rejected rather than trusting either field to pick the body layout.
  const std::uint32_t raw_version = kFormatVersion;
  std::string downgraded = bytes_;
  downgraded.replace(offsetof(FileHeader, version), sizeof raw_version,
                     reinterpret_cast<const char*>(&raw_version),
                     sizeof raw_version);
  const fs::path bad_version = dir_ / "downgraded.trace";
  spit(bad_version, downgraded);
  expect_corrupt(bad_version, offsetof(FileHeader, flags),
                 offsetof(FileHeader, flags));

  std::string unflagged = bytes_;
  unflagged[offsetof(FileHeader, flags)] &= ~0x01;
  const fs::path bad_flags = dir_ / "unflagged.trace";
  spit(bad_flags, unflagged);
  expect_corrupt(bad_flags, offsetof(FileHeader, flags),
                 offsetof(FileHeader, flags));
}

TEST_F(PackedCorruption, ImplausibleRecordCount) {
  // Corrupt the record-count varint to something past the ring capacity.
  const fs::path bad = dir_ / "count.trace";
  std::string b = bytes_;
  // marker | varint count … — make the count varint huge (5 x 0xff + 0x7f).
  b.replace(sizeof(FileHeader) + 1, 1, 1, '\xff');
  spit(bad, b);
  expect_corrupt(bad, sizeof(FileHeader), bytes_.size());
}

}  // namespace
}  // namespace omx::trace
