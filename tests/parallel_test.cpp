// expsup::parallel_map: order preservation, determinism, and equivalence
// with serial execution for real experiment workloads.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/params.h"
#include "expsup/parallel.h"
#include "harness/experiment.h"

namespace omx::expsup {
namespace {

TEST(Parallel, PreservesInputOrder) {
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  const auto out = parallel_map(items, [](int x) { return x * x; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(Parallel, EmptyInput) {
  std::vector<int> items;
  const auto out = parallel_map(items, [](int x) { return x; });
  EXPECT_TRUE(out.empty());
}

TEST(Parallel, WorkerCountBounds) {
  EXPECT_EQ(worker_count(0), 1u);
  EXPECT_GE(worker_count(1), 1u);
  EXPECT_LE(worker_count(1), 1u);
  EXPECT_GE(worker_count(1000), 1u);
}

TEST(Parallel, WorkerExceptionRethrownOnCallingThread) {
  // A throwing worker used to std::terminate the whole process; the pool
  // must instead cancel remaining work, join, and rethrow the first error.
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  EXPECT_THROW(parallel_map(items,
                            [](int x) {
                              if (x == 13) throw std::runtime_error("boom");
                              return x;
                            }),
               std::runtime_error);
}

TEST(Parallel, ExceptionMessagePreserved) {
  std::vector<int> items = {1};
  try {
    parallel_map(items, [](int) -> int { throw std::runtime_error("exact"); });
    FAIL() << "expected parallel_map to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "exact");
  }
}

TEST(Parallel, ExperimentRunsMatchSerialExactly) {
  // The property the bench harness relies on: parallelism never changes a
  // measured number.
  std::vector<harness::ExperimentConfig> configs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    harness::ExperimentConfig cfg;
    cfg.n = 64;
    cfg.t = core::Params::max_t_optimal(64);
    cfg.attack = harness::Attack::RandomOmission;
    cfg.inputs = harness::InputPattern::Alternating;
    cfg.seed = seed;
    configs.push_back(cfg);
  }
  const auto par = parallel_map(configs, [](const auto& cfg) {
    return harness::run_experiment(cfg);
  });
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto ser = harness::run_experiment(configs[i]);
    EXPECT_EQ(par[i].metrics.comm_bits, ser.metrics.comm_bits);
    EXPECT_EQ(par[i].metrics.random_bits, ser.metrics.random_bits);
    EXPECT_EQ(par[i].time_rounds, ser.time_rounds);
    EXPECT_EQ(par[i].decision, ser.decision);
  }
}

}  // namespace
}  // namespace omx::expsup
