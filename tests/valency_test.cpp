// Valency explorer: exhaustive model-checking of the flood-set game and
// the Lemma 13 classification on small instances.
#include <gtest/gtest.h>

#include <tuple>

#include "support/check.h"
#include "valency/explorer.h"

namespace omx::valency {
namespace {

class ExhaustiveCheck
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(ExhaustiveCheck, EveryCrashStrategyPreservesAgreementAndValidity) {
  const auto [n, t] = GetParam();
  GameConfig cfg{n, t, 0};
  const auto c = census(cfg);
  EXPECT_TRUE(c.all_agree)
      << "flood-set agreement violated by some adversary strategy";
  EXPECT_TRUE(c.all_valid);
  EXPECT_EQ(c.univalent_0 + c.univalent_1 + c.bivalent, 1u << n);
}

INSTANTIATE_TEST_SUITE_P(Grid, ExhaustiveCheck,
                         ::testing::Values(std::make_tuple(2u, 1u),
                                           std::make_tuple(3u, 1u),
                                           std::make_tuple(3u, 2u),
                                           std::make_tuple(4u, 1u),
                                           std::make_tuple(4u, 2u),
                                           std::make_tuple(5u, 1u)));

TEST(Valency, Lemma13BivalentAssignmentExists) {
  // Lemma 13 (deterministic analog): with one corruptible process, some
  // input assignment is not univalent.
  for (std::uint32_t n : {3u, 4u, 5u}) {
    GameConfig cfg{n, 1, 0};
    const auto c = census(cfg);
    EXPECT_GT(c.bivalent, 0u) << "n=" << n;
  }
}

TEST(Valency, UnanimousAssignmentsAreUnivalent) {
  for (std::uint32_t n : {3u, 4u}) {
    GameConfig cfg{n, 1, 0};
    const auto zeros = explore(cfg, std::vector<std::uint8_t>(n, 0));
    EXPECT_TRUE(zeros.can_decide_0);
    EXPECT_FALSE(zeros.can_decide_1);
    const auto ones = explore(cfg, std::vector<std::uint8_t>(n, 1));
    EXPECT_TRUE(ones.can_decide_1);
    EXPECT_FALSE(ones.can_decide_0);
  }
}

TEST(Valency, KnownBivalentInstance) {
  // n=3, inputs (0,1,1): crash a 1-voter before it speaks -> survivors see
  // {0,1}, tie -> 0; no crash -> majority 1. Classic bivalence.
  GameConfig cfg{3, 1, 0};
  const auto r = explore(cfg, {0, 1, 1});
  EXPECT_TRUE(r.bivalent());
  EXPECT_TRUE(r.agreement);
}

TEST(Valency, SingleDissenterCannotFlipLargeMajority) {
  // n=5, t=1, inputs (0,1,1,1,1): hiding one process changes the count to
  // (0 vs 3) at worst — still majority 1. Univalent.
  GameConfig cfg{5, 1, 0};
  const auto r = explore(cfg, {0, 1, 1, 1, 1});
  EXPECT_FALSE(r.can_decide_0);
  EXPECT_TRUE(r.can_decide_1);
}

TEST(Valency, MoreFaultsMeanMoreBivalence) {
  GameConfig one{3, 1, 0};
  GameConfig two{3, 2, 0};
  EXPECT_GT(census(two).bivalent, census(one).bivalent);
}

TEST(Valency, TooFewRoundsBreakAgreement) {
  // The t+1-round bound is tight: with only t rounds, a value can be
  // smuggled to a strict subset of survivors in the final round.
  GameConfig cfg{4, 2, 2};  // 2 rounds < t+1 = 3
  bool violated = false;
  for (std::uint32_t a = 0; a < 16 && !violated; ++a) {
    std::vector<std::uint8_t> inputs{
        static_cast<std::uint8_t>(a & 1), static_cast<std::uint8_t>((a >> 1) & 1),
        static_cast<std::uint8_t>((a >> 2) & 1),
        static_cast<std::uint8_t>((a >> 3) & 1)};
    violated = !explore(cfg, inputs).agreement;
  }
  EXPECT_TRUE(violated) << "t rounds should not suffice for agreement";
}

TEST(Valency, ExtraRoundsPreserveAgreement) {
  GameConfig cfg{3, 1, 4};  // more rounds than needed: still safe
  const auto c = census(cfg);
  EXPECT_TRUE(c.all_agree);
  EXPECT_TRUE(c.all_valid);
}

TEST(Valency, InputValidation) {
  EXPECT_THROW(explore(GameConfig{1, 0, 0}, {0}), PreconditionError);
  EXPECT_THROW(explore(GameConfig{6, 1, 0},
                       std::vector<std::uint8_t>(6, 0)),
               PreconditionError);
  EXPECT_THROW(explore(GameConfig{3, 3, 0}, {0, 0, 0}), PreconditionError);
  EXPECT_THROW(explore(GameConfig{3, 1, 0}, {0, 0}), PreconditionError);
}

TEST(Valency, ReportsExplorationSize) {
  GameConfig cfg{3, 1, 0};
  const auto r = explore(cfg, {0, 1, 1});
  EXPECT_GT(r.strategies, 1u);
  EXPECT_GT(r.states, 0u);
}

}  // namespace
}  // namespace omx::valency
