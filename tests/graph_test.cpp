// Communication graph: construction, determinism, Theorem 4 property
// validators, Lemma 3/4 machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "graph/comm_graph.h"
#include "graph/validate.h"
#include "support/check.h"

namespace omx::graph {
namespace {

TEST(CommGraph, RejectsMalformedAdjacency) {
  using Adj = std::vector<std::vector<Vertex>>;
  EXPECT_THROW(CommGraph(Adj{{1}, {}}), PreconditionError);   // asymmetric
  EXPECT_THROW(CommGraph(Adj{{0}}), PreconditionError);       // self-loop
  EXPECT_THROW(CommGraph(Adj{{1, 1}, {0, 0}}), PreconditionError);  // dup
  EXPECT_THROW(CommGraph(Adj{{5}, {0}}), PreconditionError);  // out of range
}

TEST(CommGraph, BasicAccessors) {
  CommGraph g({{1, 2}, {0}, {0}});
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(CommGraph, ErdosRenyiExtremes) {
  const auto empty = CommGraph::erdos_renyi(10, 0.0, 1);
  EXPECT_EQ(empty.num_edges(), 0u);
  const auto complete = CommGraph::erdos_renyi(10, 1.0, 1);
  EXPECT_EQ(complete.num_edges(), 45u);
}

TEST(CommGraph, ErdosRenyiDeterministicPerSeed) {
  const auto a = CommGraph::erdos_renyi(64, 0.2, 7);
  const auto b = CommGraph::erdos_renyi(64, 0.2, 7);
  const auto c = CommGraph::erdos_renyi(64, 0.2, 8);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (Vertex v = 0; v < 64; ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
  }
  EXPECT_NE(a.num_edges(), c.num_edges());  // overwhelmingly likely
}

TEST(CommGraph, ErdosRenyiEdgeCountNearExpectation) {
  const std::uint32_t n = 400;
  const double p = 0.05;
  const auto g = CommGraph::erdos_renyi(n, p, 3);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4 * std::sqrt(expected));
}

TEST(CommGraph, CommonForIsAFunctionOfNAndDelta) {
  const auto a = CommGraph::common_for(128, 28);
  const auto b = CommGraph::common_for(128, 28);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (Vertex v = 0; v < 128; ++v) ASSERT_EQ(a.degree(v), b.degree(v));
}

TEST(Validate, DegreeStats) {
  CommGraph g({{1, 2}, {0}, {0}});
  const auto s = degree_stats(g);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_NEAR(s.mean, 4.0 / 3.0, 1e-12);
  EXPECT_TRUE(degrees_within(g, 1, 2));
  EXPECT_FALSE(degrees_within(g, 2, 2));
}

TEST(Validate, DegreesConcentrateAroundDelta) {
  // Theorem 4 (iii) shape: at Δ = c log n the degrees concentrate.
  const std::uint32_t n = 1024, delta = 60;
  const auto g = CommGraph::common_for(n, delta);
  const auto s = degree_stats(g);
  EXPECT_NEAR(s.mean, delta, 2.0);
  EXPECT_GT(s.min, delta / 2);
  EXPECT_LT(s.max, 2 * delta);
}

TEST(Validate, ExpansionSampledHoldsAtLogDegree) {
  // Theorem 4 (i) shape: disjoint n/10-sets are always connected.
  const std::uint32_t n = 500;
  const auto g = CommGraph::common_for(n, 36);
  EXPECT_EQ(sampled_expansion_failure(g, n / 10, 300, 17), 0.0);
}

TEST(Validate, ExpansionFailsOnEmptyGraph) {
  const auto g = CommGraph::erdos_renyi(100, 0.0, 1);
  EXPECT_EQ(sampled_expansion_failure(g, 10, 50, 17), 1.0);
}

TEST(Validate, InternalEdges) {
  CommGraph g({{1, 2}, {0, 2}, {0, 1, 3}, {2}});
  const std::vector<Vertex> tri{0, 1, 2};
  EXPECT_EQ(internal_edges(g, tri), 3u);
  const std::vector<Vertex> pair{2, 3};
  EXPECT_EQ(internal_edges(g, pair), 1u);
  const std::vector<Vertex> far{0, 3};
  EXPECT_EQ(internal_edges(g, far), 0u);
}

TEST(Validate, ExactEdgeSparsityOnSmallGraphs) {
  // A path is very sparse: internal edges of any X <= |X| - 1 < |X|.
  CommGraph path({{1}, {0, 2}, {1, 3}, {2}});
  EXPECT_TRUE(exact_edge_sparse(path, 4, 1.0));
  // K4 has subsets with |edges| = 1.5|X|.
  CommGraph k4({{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}});
  EXPECT_FALSE(exact_edge_sparse(k4, 4, 1.0));
  EXPECT_TRUE(exact_edge_sparse(k4, 4, 1.5));
}

TEST(Validate, SampledEdgeSparsityMatchesTheorem4Shape) {
  const std::uint32_t n = 600;
  const std::uint32_t delta = 40;  // ~4 log2 n
  const auto g = CommGraph::common_for(n, delta);
  // Theorem 4 (ii): subsets up to n/10 have < (Δ/15)|X| internal edges.
  const double worst = sampled_max_internal_edge_ratio(g, n / 10, 200, 23);
  EXPECT_LT(worst, delta / 15.0 + 1.0);
}

TEST(Validate, PeelingKeepsAlmostEverythingAfterRemovals) {
  // Lemma 4 shape: removing T <= n/15 nodes leaves a min-degree->Δ/3 core
  // of size >= n - (4/3)|T| (we allow the lemma's slack exactly).
  const std::uint32_t n = 600;
  const std::uint32_t delta = 40;
  const auto g = CommGraph::common_for(n, delta);
  std::vector<Vertex> removed;
  for (Vertex v = 0; v < n / 15; ++v) removed.push_back(v * 7 % n);
  std::sort(removed.begin(), removed.end());
  removed.erase(std::unique(removed.begin(), removed.end()), removed.end());
  const auto survivors = peel_dense_subgraph(g, removed, delta / 3);
  EXPECT_GE(survivors.size() + (4 * removed.size()) / 3 + 1, n);
  // Survivors are disjoint from removed.
  std::set<Vertex> rem(removed.begin(), removed.end());
  for (Vertex v : survivors) EXPECT_EQ(rem.count(v), 0u);
  // And indeed have the required degree within the surviving set.
  std::set<Vertex> alive(survivors.begin(), survivors.end());
  for (Vertex v : survivors) {
    std::uint32_t d = 0;
    for (Vertex u : g.neighbors(v)) d += alive.count(u) ? 1 : 0;
    EXPECT_GE(d, delta / 3);
  }
}

TEST(Validate, PeelingSurvivesTargetedHighDegreeRemoval) {
  // Adversarial flavour of Lemma 4: remove the n/15 HIGHEST-degree nodes
  // (worst case for density) — the surviving core still meets the bound.
  const std::uint32_t n = 600;
  const std::uint32_t delta = 40;
  const auto g = CommGraph::common_for(n, delta);
  std::vector<std::pair<std::uint32_t, Vertex>> by_degree;
  for (Vertex v = 0; v < n; ++v) by_degree.emplace_back(g.degree(v), v);
  std::sort(by_degree.rbegin(), by_degree.rend());
  std::vector<Vertex> removed;
  for (std::uint32_t i = 0; i < n / 15; ++i)
    removed.push_back(by_degree[i].second);
  const auto survivors = peel_dense_subgraph(g, removed, delta / 3);
  EXPECT_GE(survivors.size() + (4 * removed.size()) / 3 + 1, n);
}

TEST(Validate, PeelingSurvivesContiguousBlockRemoval) {
  // Removing one contiguous id block (a whole region of √n-groups).
  const std::uint32_t n = 600;
  const std::uint32_t delta = 40;
  const auto g = CommGraph::common_for(n, delta);
  std::vector<Vertex> removed;
  for (Vertex v = 0; v < n / 15; ++v) removed.push_back(v);
  const auto survivors = peel_dense_subgraph(g, removed, delta / 3);
  EXPECT_GE(survivors.size() + (4 * removed.size()) / 3 + 1, n);
}

TEST(Validate, ExpansionHoldsAfterRemovals) {
  // Lemma 6's routing argument needs expansion among survivors too.
  const std::uint32_t n = 600;
  const auto g = CommGraph::common_for(n, 40);
  // Sample expansion restricted to the upper 90% of ids (lower 10% "dead"):
  // approximate by checking disjoint pairs drawn from the whole graph still
  // connect through at least one edge even if we forbid low-id endpoints.
  const auto sizes = neighborhood_growth(g, n - 1, 3, {});
  EXPECT_GE(sizes[3], n / 2);  // deep reach from an arbitrary survivor
}

TEST(Validate, PeelingEmptyRemovalKeepsAll) {
  const auto g = CommGraph::common_for(200, 30);
  const auto survivors = peel_dense_subgraph(g, {}, 10);
  EXPECT_EQ(survivors.size(), 200u);
}

TEST(Validate, PeelingHighThresholdRemovesAll) {
  const auto g = CommGraph::common_for(50, 6);
  const auto survivors = peel_dense_subgraph(g, {}, 49);
  EXPECT_TRUE(survivors.empty());
}

TEST(Validate, NeighborhoodGrowthDoublesUntilSaturation) {
  // Lemma 3 shape: |N^k(v)| grows at least geometrically up to ~n/10.
  const std::uint32_t n = 800;
  const auto g = CommGraph::common_for(n, 40);
  const auto sizes = neighborhood_growth(g, 0, 4, {});
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_GE(sizes[1], 20u);       // ~Δ
  EXPECT_GE(sizes[2], 2 * sizes[1]);
  EXPECT_GE(sizes.back(), n / 10);
}

TEST(Validate, EccentricityIsLogarithmicOnTheCommonGraph) {
  const std::uint32_t n = 800;
  const auto g = CommGraph::common_for(n, 40);
  const auto ecc = eccentricity(g, 5, {});
  EXPECT_GE(ecc, 2u);
  EXPECT_LE(ecc, 10u);  // ~log n with lots of slack
}

TEST(Validate, EccentricityRespectsAliveMask) {
  // 0-1-2-3 path, keep only {0,1}.
  CommGraph path({{1}, {0, 2}, {1, 3}, {2}});
  const std::vector<Vertex> alive{0, 1};
  EXPECT_EQ(eccentricity(path, 0, alive), 1u);
}

TEST(SharedCache, ConcurrentFirstTouchBuildsExactlyOnce) {
  // A (n, Δ) key never requested before, hit by many threads at once: all
  // callers must end up with the SAME instance and the cache must build
  // exactly one graph (per-key call_once), not one per racing thread.
  const std::uint32_t n = 557;  // unique to this test
  const std::uint32_t delta = 23;
  const std::uint64_t builds_before = CommGraph::common_for_shared_builds();

  constexpr unsigned kThreads = 8;
  std::vector<std::shared_ptr<const CommGraph>> got(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned i = 0; i < kThreads; ++i) {
      threads.emplace_back([&got, i] {
        got[i] = CommGraph::common_for_shared(n, delta);
      });
    }
    for (auto& th : threads) th.join();
  }

  for (unsigned i = 0; i < kThreads; ++i) {
    ASSERT_NE(got[i], nullptr);
    EXPECT_EQ(got[i].get(), got[0].get()) << "thread " << i;
  }
  EXPECT_EQ(CommGraph::common_for_shared_builds(), builds_before + 1);
  // Repeat touches are cache hits, not rebuilds.
  const auto again = CommGraph::common_for_shared(n, delta);
  EXPECT_EQ(again.get(), got[0].get());
  EXPECT_EQ(CommGraph::common_for_shared_builds(), builds_before + 1);
}

}  // namespace
}  // namespace omx::graph
