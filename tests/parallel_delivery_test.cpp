// The parallel delivery substrate (sim/message_plane.h) and the bulk
// adversary scan APIs (sim/adversary.h): segment stitching reproduces the
// serial wire exactly, pool-sharded counting-sort delivery yields
// bit-identical inboxes and metrics, drop_where/scan_messages match the
// serial scans (including rng draw order), the all-multicast streamed fast
// path replays the same messages, deliver_fused hands each compute shard
// the inboxes its lane just scattered, and the thread pool's per-lane busy
// counters actually tick.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/params.h"
#include "harness/experiment.h"
#include "sim/adversary.h"
#include "sim/message_plane.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "support/thread_pool.h"

namespace omx::sim {
namespace {

struct Pay {
  std::uint32_t v = 0;
  std::uint64_t bit_size() const { return 32; }
  bool operator==(const Pay&) const = default;
};

constexpr std::uint32_t kN = 64;
constexpr unsigned kLanes = 4;

// Queue a deterministic mixed wire (unicasts + broadcasts + multicasts)
// through `log`, restricted to senders in [lo, hi). With [0, n) this is
// exactly the serial round; per-shard ranges stitched in order reproduce it.
void queue_sends(SendLog<Pay>& log, std::uint32_t lo, std::uint32_t hi) {
  for (std::uint32_t p = lo; p < hi; ++p) {
    log.broadcast(p, Pay{p}, /*include_self=*/p % 2 == 0);
    log.send(p, (p + 7) % kN, Pay{p * 3 + 1});
    if (p % 3 == 0) {
      const ProcessId neigh[] = {(p + 1) % kN, (p + 5) % kN, (p + 9) % kN};
      log.multicast(p, neigh, Pay{p * 5 + 2});
    }
  }
}

// A sealed serial-reference plane over the wire above (n*n-scale logical
// messages, comfortably past kParallelGrain so the sharded paths engage).
void build_serial(MessagePlane<Pay>& plane, std::uint32_t round = 0) {
  plane.begin_round(round);
  queue_sends(plane.log(), 0, kN);
  plane.seal();
}

// The same wire staged across `kLanes` shard arenas and stitched.
void build_stitched(MessagePlane<Pay>& plane, std::vector<SendLog<Pay>>& stage,
                    std::uint32_t round = 0) {
  plane.begin_round(round);
  stage.assign(kLanes, SendLog<Pay>(kN));
  std::vector<SendLog<Pay>*> ptrs;
  for (unsigned w = 0; w < kLanes; ++w) {
    stage[w].set_round(round);
    queue_sends(stage[w], kN * w / kLanes, kN * (w + 1) / kLanes);
    ptrs.push_back(&stage[w]);
  }
  plane.stitch(ptrs);
  plane.seal();
}

TEST(Stitch, ReproducesSerialWireExactly) {
  MessagePlane<Pay> serial(kN);
  build_serial(serial);
  MessagePlane<Pay> stitched(kN);
  std::vector<SendLog<Pay>> stage;
  build_stitched(stitched, stage);

  ASSERT_EQ(stitched.num_messages(), serial.num_messages());
  ASSERT_GE(serial.num_messages(), MessagePlane<Pay>::kParallelGrain);
  for (std::size_t i = 0; i < serial.num_messages(); ++i) {
    ASSERT_EQ(stitched.from(i), serial.from(i)) << "index " << i;
    ASSERT_EQ(stitched.to(i), serial.to(i)) << "index " << i;
    ASSERT_EQ(stitched.payload(i), serial.payload(i)) << "index " << i;
    ASSERT_EQ(stitched.payload_bits(i), serial.payload_bits(i));
  }
  EXPECT_EQ(stitched.wire_bits(), serial.wire_bits());
}

// Drop a deterministic subset (every 5th message) on both planes.
template <class Plane>
void drop_some(Plane& plane) {
  for (std::size_t i = 0; i < plane.num_messages(); i += 5) {
    plane.mark_dropped(i);
  }
}

TEST(ParallelDelivery, InboxesAndMetricsMatchSerial) {
  MessagePlane<Pay> serial(kN);
  build_serial(serial);
  drop_some(serial);
  Metrics ms;
  serial.deliver(ms);

  support::ThreadPool pool(kLanes);
  MessagePlane<Pay> par(kN);
  std::vector<SendLog<Pay>> stage;
  build_stitched(par, stage);
  drop_some(par);
  Metrics mp;
  par.deliver(mp, nullptr, &pool, kLanes);

  EXPECT_EQ(mp.messages, ms.messages);
  EXPECT_EQ(mp.comm_bits, ms.comm_bits);
  EXPECT_EQ(mp.omitted, ms.omitted);
  for (ProcessId p = 0; p < kN; ++p) {
    const auto a = serial.inbox(p);
    const auto b = par.inbox(p);
    ASSERT_EQ(b.size(), a.size()) << "inbox of p" << p;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(b[i].from, a[i].from);
      EXPECT_EQ(b[i].to, a[i].to);
      EXPECT_EQ(b[i].payload, a[i].payload);
    }
  }
}

TEST(ParallelDelivery, FusedComputeSeesTheInboxesItsLaneScattered) {
  MessagePlane<Pay> serial(kN);
  build_serial(serial);
  Metrics ms;
  serial.deliver(ms);

  support::ThreadPool pool(kLanes);
  MessagePlane<Pay> par(kN);
  std::vector<SendLog<Pay>> stage;
  build_stitched(par, stage);
  Metrics mp;
  std::vector<std::size_t> seen_sizes(kN, 0);
  std::vector<std::uint64_t> seen_sums(kN, 0);
  par.deliver_fused(mp, pool, kLanes,
                    [&](unsigned, ProcessId lo, ProcessId hi) {
                      for (ProcessId p = lo; p < hi; ++p) {
                        for (const Message<Pay>& msg : par.staged_inbox(p)) {
                          ++seen_sizes[p];
                          seen_sums[p] += msg.payload.v;
                        }
                      }
                    });

  EXPECT_EQ(mp.messages, ms.messages);
  EXPECT_EQ(mp.comm_bits, ms.comm_bits);
  for (ProcessId p = 0; p < kN; ++p) {
    const auto ref = serial.inbox(p);
    EXPECT_EQ(seen_sizes[p], ref.size()) << "p" << p;
    std::uint64_t sum = 0;
    for (const auto& msg : ref) sum += msg.payload.v;
    EXPECT_EQ(seen_sums[p], sum) << "p" << p;
    // After the fused call, inbox() shows the same contents.
    const auto post = par.inbox(p);
    ASSERT_EQ(post.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(post[i].payload, ref[i].payload);
    }
  }
}

TEST(BulkAdversary, DropWhereMatchesSerialBitset) {
  const std::uint32_t kT = 8;
  auto run = [&](support::ThreadPool* pool, unsigned lanes,
                 MessagePlane<Pay>& plane) {
    FaultState faults(kN, kT);
    for (ProcessId p = 0; p < 4; ++p) faults.corrupt(p);
    AdversaryContext<Pay> ctx(0, &plane, &faults, pool, lanes);
    ctx.drop_where([](ProcessId from, ProcessId to) {
      return from < 4 || to < 4;
    });
  };

  MessagePlane<Pay> serial(kN);
  build_serial(serial);
  run(nullptr, 1, serial);

  support::ThreadPool pool(kLanes);
  MessagePlane<Pay> par(kN);
  std::vector<SendLog<Pay>> stage;
  build_stitched(par, stage);
  run(&pool, kLanes, par);

  ASSERT_EQ(par.num_messages(), serial.num_messages());
  EXPECT_GT(serial.num_dropped(), 0u);
  EXPECT_EQ(par.num_dropped(), serial.num_dropped());
  for (std::size_t i = 0; i < serial.num_messages(); ++i) {
    ASSERT_EQ(par.dropped(i), serial.dropped(i)) << "index " << i;
  }
}

TEST(BulkAdversary, DropWhereRejectsIllegalMatchInParallel) {
  support::ThreadPool pool(kLanes);
  MessagePlane<Pay> plane(kN);
  std::vector<SendLog<Pay>> stage;
  build_stitched(plane, stage);
  FaultState faults(kN, 2);
  faults.corrupt(0);
  AdversaryContext<Pay> ctx(0, &plane, &faults, &pool, kLanes);
  // Matches messages between non-corrupted endpoints: the legality firewall
  // must throw from the sharded scan exactly as it does serially.
  EXPECT_THROW(ctx.drop_where([](ProcessId from, ProcessId to) {
                 return from >= 10 && to >= 10;
               }),
               AdversaryViolation);
}

TEST(BulkAdversary, ScanMessagesConsumesInAscendingIndexOrder) {
  auto collect = [&](support::ThreadPool* pool, unsigned lanes,
                     MessagePlane<Pay>& plane) {
    FaultState faults(kN, 1);
    AdversaryContext<Pay> ctx(0, &plane, &faults, pool, lanes);
    std::vector<std::tuple<std::size_t, ProcessId, ProcessId>> hits;
    ctx.scan_messages(
        [](ProcessId from, ProcessId to) { return (from + to) % 7 == 0; },
        [&](std::size_t idx, ProcessId from, ProcessId to) {
          hits.emplace_back(idx, from, to);
        });
    return hits;
  };

  MessagePlane<Pay> serial(kN);
  build_serial(serial);
  const auto ref = collect(nullptr, 1, serial);
  ASSERT_FALSE(ref.empty());

  support::ThreadPool pool(kLanes);
  MessagePlane<Pay> par(kN);
  std::vector<SendLog<Pay>> stage;
  build_stitched(par, stage);
  const auto got = collect(&pool, kLanes, par);

  EXPECT_EQ(got, ref);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(std::get<0>(got[i - 1]), std::get<0>(got[i]));
  }
}

TEST(StreamedDelivery, AllMulticastWireTakesTheListOnlyPathCorrectly) {
  // Every send is a kList multicast (a graph-restricted machine's wire):
  // the streamed front buffer takes the O(degree)-per-receiver fast path.
  // Check against materialized delivery of the identical wire.
  auto queue = [](MessagePlane<Pay>& plane) {
    for (std::uint32_t p = 0; p < kN; ++p) {
      std::vector<ProcessId> neigh;
      for (std::uint32_t d = 1; d <= 20; ++d) neigh.push_back((p + d) % kN);
      plane.multicast(p, neigh, Pay{p});
    }
  };
  MessagePlane<Pay> mat(kN);
  mat.begin_round(0);
  queue(mat);
  mat.seal();
  drop_some(mat);
  Metrics mm;
  mat.deliver(mm);

  support::ThreadPool pool(kLanes);
  MessagePlane<Pay> str(kN);
  str.begin_round(0);
  queue(str);
  str.seal();
  drop_some(str);
  Metrics msr;
  str.deliver_streamed(msr, &pool, kLanes);

  EXPECT_EQ(msr.messages, mm.messages);
  EXPECT_EQ(msr.comm_bits, mm.comm_bits);
  EXPECT_EQ(msr.omitted, mm.omitted);
  for (ProcessId p = 0; p < kN; ++p) {
    const auto ref = mat.inbox(p);
    std::vector<std::pair<ProcessId, Pay>> got;
    str.stream_inbox(p, [&](ProcessId from, const Pay& pay) {
      got.emplace_back(from, pay);
    });
    ASSERT_EQ(got.size(), ref.size()) << "p" << p;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].first, ref[i].from);
      EXPECT_EQ(got[i].second, ref[i].payload);
    }
  }
}

TEST(ThreadPoolClocks, LaneBusyCountersTick) {
  support::ThreadPool pool(kLanes);
  for (unsigned w = 0; w < kLanes; ++w) {
    EXPECT_EQ(pool.lane_busy_ns(w), 0u);
  }
  pool.run([](unsigned) {
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 2'000'000; ++i) x += i;
  });
  for (unsigned w = 0; w < kLanes; ++w) {
    EXPECT_GT(pool.lane_busy_ns(w), 0u) << "lane " << w;
  }
}

TEST(EnginePipeline, FusedRoundsEngageAndMatchSerial) {
  auto run = [](unsigned threads, bool pipeline, sim::EngineStats* stats) {
    harness::ExperimentConfig cfg;
    cfg.algo = harness::Algo::FloodSet;
    cfg.attack = harness::Attack::RandomOmission;
    cfg.n = 96;
    cfg.t = core::Params::max_t_optimal(cfg.n);
    cfg.seed = 3;
    cfg.threads = threads;
    cfg.pipeline = pipeline;
    cfg.engine_stats = stats;
    return harness::run_experiment(cfg);
  };
  const auto serial = run(1, false, nullptr);
  sim::EngineStats stats;
  const auto piped = run(4, true, &stats);
  // The pipeline actually engaged (every round but the last can fuse) and
  // billed its rounds to fused_ns, and the observable run is unchanged.
  EXPECT_GT(stats.pipelined_rounds, 0u);
  EXPECT_EQ(stats.pipelined_rounds + 1, stats.rounds);
  EXPECT_GT(stats.fused_ns, 0u);
  ASSERT_EQ(stats.lane_busy_ns.size(), 4u);
  for (const std::uint64_t ns : stats.lane_busy_ns) EXPECT_GT(ns, 0u);
  EXPECT_EQ(piped.metrics.rounds, serial.metrics.rounds);
  EXPECT_EQ(piped.metrics.messages, serial.metrics.messages);
  EXPECT_EQ(piped.metrics.comm_bits, serial.metrics.comm_bits);
  EXPECT_EQ(piped.metrics.omitted, serial.metrics.omitted);
  EXPECT_EQ(piped.metrics.random_calls, serial.metrics.random_calls);
  EXPECT_EQ(piped.metrics.random_bits, serial.metrics.random_bits);
  EXPECT_EQ(piped.decision, serial.decision);
  EXPECT_EQ(piped.time_rounds, serial.time_rounds);
}

}  // namespace
}  // namespace omx::sim
