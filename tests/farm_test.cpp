// The sweep farm: lease/retry/backoff policy on an injected clock (no
// sleeping), shard scan/repair/merge torn-tail tolerance, and the daemon
// end-to-end — fork-isolated workers, crash and hang chaos via the test
// hooks, resume from shards, and the headline contract that a farm's merged
// output equals a single-process Sweep's checkpoint after canonical sort.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "farm/farm.h"
#include "farm/shard.h"
#include "farm/workqueue.h"
#include "harness/sweep.h"
#include "support/check.h"

namespace omx::farm {
namespace {

namespace fs = std::filesystem;

fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("omx_farm_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A sub-millisecond trial, same as sweep_test's.
harness::ExperimentConfig tiny(std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.algo = harness::Algo::FloodSet;
  cfg.attack = harness::Attack::None;
  cfg.n = 8;
  cfg.t = 2;
  cfg.seed = seed;
  return cfg;
}

std::vector<std::string> sorted_lines(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// Fast, quiet farm defaults for the in-process e2e tests.
FarmOptions fast_opts(const fs::path& dir) {
  FarmOptions o;
  o.dir = dir.string();
  o.workers = 3;
  o.backoff_base_ms = 1;
  o.serve_socket = false;
  o.use_artifact_cache = false;
  o.sweep.capture_repro = false;
  o.sweep.capture_trace = false;
  return o;
}

// ---------------------------------------------------------------------------
// WorkQueue: lease/retry/backoff semantics on an injected clock.

TEST(WorkQueue, LeaseExpiresOnceAndRetriesExactlyPerBudget) {
  std::uint64_t now = 0;
  WorkQueueOptions o;
  o.watchdog_ms = 100;
  o.max_attempts = 2;
  o.backoff_base_ms = 10;
  WorkQueue q(o, [&] { return now; });
  ASSERT_TRUE(q.add("k", tiny(1)));

  const auto idx = q.acquire(/*worker_slot=*/0, /*pid=*/111);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(q.item(*idx).attempts, 1u);
  EXPECT_EQ(q.item(*idx).lease_deadline_ms, 100u);

  now = 99;
  EXPECT_TRUE(q.expired().empty());
  now = 100;
  EXPECT_EQ(q.expired(), std::vector<std::size_t>{*idx});
  // The watchdog fires once per lease: the daemon SIGKILLs once, not in a
  // loop while the zombie is being reaped.
  EXPECT_TRUE(q.expired().empty());

  EXPECT_TRUE(q.fail(*idx));  // re-queued: budget allows a second lease
  EXPECT_EQ(q.count(ItemState::Pending), 1u);
  EXPECT_FALSE(q.acquire(0, 112).has_value());  // backoff gates it
  EXPECT_EQ(q.next_deadline_in(), std::uint64_t{10});

  now = 110;
  const auto again = q.acquire(0, 112);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(q.item(*again).attempts, 2u);
  EXPECT_EQ(q.retries(), 1u);  // re-leased exactly once

  now = 210;
  EXPECT_EQ(q.expired().size(), 1u);
  EXPECT_FALSE(q.fail(*again));  // budget exhausted
  EXPECT_EQ(q.count(ItemState::Failed), 1u);
  EXPECT_TRUE(q.all_settled());
  EXPECT_EQ(q.retries(), 1u);
}

TEST(WorkQueue, BackoffDoublesUpToTheCap) {
  std::uint64_t now = 0;
  WorkQueueOptions o;
  o.max_attempts = 5;
  o.backoff_base_ms = 100;
  o.backoff_cap_ms = 300;
  WorkQueue q(o, [&] { return now; });
  ASSERT_TRUE(q.add("k", tiny(1)));

  std::vector<std::uint64_t> waits;
  for (int round = 0; round < 4; ++round) {
    const auto idx = q.acquire(0, 1);
    ASSERT_TRUE(idx.has_value());
    ASSERT_TRUE(q.fail(*idx));
    waits.push_back(q.item(*idx).eligible_at_ms - now);
    now = q.item(*idx).eligible_at_ms;
  }
  EXPECT_EQ(waits, (std::vector<std::uint64_t>{100, 200, 300, 300}));
}

TEST(WorkQueue, RejectsDuplicateKeysAndUnknownResumes) {
  WorkQueue q(WorkQueueOptions{}, [] { return std::uint64_t{0}; });
  EXPECT_TRUE(q.add("k", tiny(1)));
  EXPECT_FALSE(q.add("k", tiny(1)));  // the grid must not double-run a cell
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.mark_done("unknown"));
  EXPECT_TRUE(q.mark_done("k"));
  EXPECT_TRUE(q.all_settled());
}

// ---------------------------------------------------------------------------
// Shards: torn-tail tolerance, repair, canonical merge.

std::string line_for(const std::string& key, std::uint64_t seed) {
  harness::TrialOutcome o;
  o.seed_used = seed;
  return harness::checkpoint_line(key, o);
}

TEST(Shards, ScanDropsTornLinesAndCollapsesDuplicates) {
  const fs::path dir = scratch("scan");
  const std::string a = line_for("aaaa", 1);
  const std::string b = line_for("bbbb", 2);
  {
    std::ofstream s0(dir / "worker-0.jsonl", std::ios::binary);
    s0 << a << "\n" << b.substr(0, b.size() / 2);  // torn tail, no newline
    std::ofstream s1(dir / "worker-1.jsonl", std::ios::binary);
    s1 << b << "\n" << a << "\n";  // b complete here; a duplicated
  }
  const ShardScan scan = scan_shards(dir.string());
  EXPECT_EQ(scan.lines.size(), 2u);
  EXPECT_EQ(scan.lines.at("aaaa"), a);
  EXPECT_EQ(scan.lines.at("bbbb"), b);
  EXPECT_EQ(scan.torn_lines, 1u);
  EXPECT_EQ(scan.duplicate_keys, 1u);
}

TEST(Shards, RepairRewritesTheParseablePrefixAtomically) {
  const fs::path dir = scratch("repair");
  const fs::path shard = dir / "worker-0.jsonl";
  const std::string a = line_for("aaaa", 1);
  const std::string b = line_for("bbbb", 2);
  {
    std::ofstream out(shard, std::ios::binary);
    out << a << "\n" << b.substr(0, 20);
  }
  EXPECT_EQ(repair_shard(shard.string()), 1u);
  {
    std::ifstream in(shard, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(os.str(), a + "\n");  // appends now start on a line boundary
  }
  EXPECT_EQ(repair_shard(shard.string()), 0u);            // already clean
  EXPECT_EQ(repair_shard((dir / "absent.jsonl").string()), 0u);
}

TEST(Shards, MergePublishesCanonicalKeyOrder) {
  const fs::path dir = scratch("merge");
  fs::create_directories(dir / "shards");
  const std::string z = line_for("zzzz", 1);
  const std::string a = line_for("aaaa", 2);
  {
    std::ofstream s0(dir / "shards" / "worker-0.jsonl", std::ios::binary);
    s0 << z << "\n";
    std::ofstream s1(dir / "shards" / "worker-1.jsonl", std::ios::binary);
    s1 << a << "\n";
  }
  const fs::path out = dir / "merged.jsonl";
  merge_shards((dir / "shards").string(), out.string());
  std::ifstream in(out, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), a + "\n" + z + "\n");
}

// ---------------------------------------------------------------------------
// Farm end-to-end (real fork/reap; trials are sub-millisecond).

TEST(Farm, MergedOutputEqualsSingleProcessSweep) {
  const fs::path dir = scratch("e2e");

  harness::SweepOptions ref_opts;
  ref_opts.checkpoint_path = (dir / "ref.jsonl").string();
  ref_opts.capture_repro = false;
  {
    harness::Sweep sweep(ref_opts);
    for (std::uint64_t s = 1; s <= 6; ++s) sweep.run(tiny(s));
  }

  Farm farm(fast_opts(dir / "farm"));
  for (std::uint64_t s = 1; s <= 6; ++s) ASSERT_TRUE(farm.add(tiny(s)));
  EXPECT_FALSE(farm.add(tiny(1)));  // duplicate cell rejected
  const FarmReport report = farm.run();

  EXPECT_EQ(report.items, 6u);
  EXPECT_EQ(report.done, 6u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.crashed_workers, 0u);
  EXPECT_EQ(report.exit_codes.at(0), 6u);
  EXPECT_TRUE(report.all_ok());

  EXPECT_EQ(sorted_lines(report.merged_path),
            sorted_lines(dir / "ref.jsonl"));
}

TEST(Farm, CrashedWorkerBurnsOnlyItsLeaseAndConvergesByteIdentically) {
  const fs::path dir = scratch("crash");

  harness::SweepOptions ref_opts;
  ref_opts.checkpoint_path = (dir / "ref.jsonl").string();
  ref_opts.capture_repro = false;
  {
    harness::Sweep sweep(ref_opts);
    for (std::uint64_t s = 1; s <= 4; ++s) sweep.run(tiny(s));
  }

  // First lease of seed 2's item SIGKILLs itself mid-worker; the retry
  // keeps the ORIGINAL seed, so the merged output still matches the
  // single-process reference byte for byte.
  ::setenv("OMX_FARM_TEST_CRASH_KEY", harness::config_key(tiny(2)).c_str(), 1);
  Farm farm(fast_opts(dir / "farm"));
  for (std::uint64_t s = 1; s <= 4; ++s) ASSERT_TRUE(farm.add(tiny(s)));
  const FarmReport report = farm.run();
  ::unsetenv("OMX_FARM_TEST_CRASH_KEY");

  EXPECT_EQ(report.crashed_workers, 1u);
  EXPECT_EQ(report.watchdog_kills, 0u);
  EXPECT_EQ(report.releases, 1u);  // re-leased exactly once
  EXPECT_EQ(report.done, 4u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(sorted_lines(report.merged_path),
            sorted_lines(dir / "ref.jsonl"));
}

TEST(Farm, HungWorkerIsWatchdogKilledAndExhaustsToASyntheticOutcome) {
  const fs::path dir = scratch("hang");
  const std::string hang_key = harness::config_key(tiny(2));
  ::setenv("OMX_FARM_TEST_HANG_KEY", hang_key.c_str(), 1);

  FarmOptions opts = fast_opts(dir / "farm");
  opts.watchdog_ms = 150;
  opts.max_attempts = 2;
  Farm farm(opts);
  for (std::uint64_t s = 1; s <= 3; ++s) ASSERT_TRUE(farm.add(tiny(s)));
  const FarmReport report = farm.run();
  ::unsetenv("OMX_FARM_TEST_HANG_KEY");

  // Hung on both leases: the watchdog killed each, the budget allowed one
  // re-lease, then the daemon recorded a synthetic outcome.
  EXPECT_EQ(report.watchdog_kills, 2u);
  EXPECT_EQ(report.crashed_workers, 0u);
  EXPECT_EQ(report.releases, 1u);
  EXPECT_EQ(report.done, 2u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_FALSE(report.all_ok());

  // Every queued key appears exactly once in the merge — the exhausted one
  // as a timeout-verdict line naming the farm as the cause.
  const auto lines = sorted_lines(report.merged_path);
  ASSERT_EQ(lines.size(), 3u);
  std::size_t hung_seen = 0;
  for (const auto& line : lines) {
    std::string key;
    harness::TrialOutcome out;
    ASSERT_TRUE(harness::parse_checkpoint_line(line, &key, &out)) << line;
    if (key == hang_key) {
      ++hung_seen;
      EXPECT_EQ(out.verdict, harness::Verdict::Timeout);
      EXPECT_EQ(out.attempts, 2u);
      EXPECT_NE(out.error.find("watchdog"), std::string::npos) << out.error;
    } else {
      EXPECT_EQ(out.verdict, harness::Verdict::Ok);
    }
  }
  EXPECT_EQ(hung_seen, 1u);
}

TEST(Farm, ResumesFromShardsAndToleratesTornTails) {
  const fs::path dir = scratch("resume");

  harness::SweepOptions ref_opts;
  ref_opts.checkpoint_path = (dir / "ref.jsonl").string();
  ref_opts.capture_repro = false;
  {
    harness::Sweep sweep(ref_opts);
    for (std::uint64_t s = 1; s <= 6; ++s) sweep.run(tiny(s));
  }

  // First daemon "dies" after covering half the grid.
  {
    Farm first(fast_opts(dir / "farm"));
    for (std::uint64_t s = 1; s <= 3; ++s) ASSERT_TRUE(first.add(tiny(s)));
    ASSERT_TRUE(first.run().all_ok());
  }
  // Simulate a worker killed mid-write before the daemon died: torn debris
  // at the tail of a shard.
  {
    std::ofstream shard(dir / "farm" / "shards" / "worker-0.jsonl",
                        std::ios::binary | std::ios::app);
    shard << "{\"key\":\"torn-by-kill-9";
  }

  Farm second(fast_opts(dir / "farm"));
  for (std::uint64_t s = 1; s <= 6; ++s) ASSERT_TRUE(second.add(tiny(s)));
  const FarmReport report = second.run();

  EXPECT_EQ(report.resumed, 3u);  // recorded items did not re-run
  EXPECT_EQ(report.done, 3u);
  EXPECT_GE(report.torn_shard_lines, 1u);  // the debris was repaired away
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(sorted_lines(report.merged_path),
            sorted_lines(dir / "ref.jsonl"));
}

// ---------------------------------------------------------------------------
// The status/results socket.

TEST(FarmSocket, QueryWithoutADaemonThrowsPrecondition) {
  const fs::path dir = scratch("no_daemon");
  EXPECT_THROW(Farm::query(dir.string(), "status"), PreconditionError);
}

TEST(FarmSocket, ServesStatusAndResultsWhileRunning) {
  const fs::path dir = scratch("socket");
  // The daemon child runs one item that hangs forever (no watchdog), so it
  // stays alive to be queried; the parent SIGKILLs it when done — which is
  // itself a daemon-death the farm design must shrug off.
  ::setenv("OMX_FARM_TEST_HANG_KEY", harness::config_key(tiny(1)).c_str(), 1);
  const pid_t daemon_pid = ::fork();
  ASSERT_GE(daemon_pid, 0);
  if (daemon_pid == 0) {
    FarmOptions opts = fast_opts(dir / "farm");
    opts.serve_socket = true;
    opts.workers = 1;
    Farm farm(opts);
    farm.add(tiny(1));
    farm.run();
    ::_exit(0);
  }
  ::unsetenv("OMX_FARM_TEST_HANG_KEY");

  std::string status;
  for (int i = 0; i < 250 && status.find("\"leased\":1") == std::string::npos;
       ++i) {
    try {
      status = Farm::query((dir / "farm").string(), "status");
    } catch (const PreconditionError&) {
      // Socket not up yet.
    }
    ::usleep(20 * 1000);
  }
  EXPECT_NE(status.find("\"items\":1"), std::string::npos) << status;
  EXPECT_NE(status.find("\"leased\":1"), std::string::npos) << status;

  const std::string results = Farm::query((dir / "farm").string(), "results");
  EXPECT_EQ(results, "");  // nothing durable yet — the only item hangs

  const std::string bogus = Farm::query((dir / "farm").string(), "frobnicate");
  EXPECT_NE(bogus.find("unknown request"), std::string::npos) << bogus;

  ::kill(daemon_pid, SIGKILL);
  int ignored = 0;
  ::waitpid(daemon_pid, &ignored, 0);
}

}  // namespace
}  // namespace omx::farm
