// Property suites for the paper's structural lemmas, checked on real
// executions under every adversary:
//   * Lemma 7: >= n - 3t processes stay operative at every epoch end.
//   * Lemma 8 corollary (used in Lemma 11): the (ones, zeros) estimates of
//     any two end-operative processes differ by at most 4t.
//   * Lemma 11 safety: if any operative process decided, every operative
//     process holds the same candidate value.
//   * Determinism: a run is a pure function of (config, seed).
#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "adversary/strategies.h"
#include "core/optimal_core.h"
#include "core/params.h"
#include "groups/partition.h"
#include "harness/experiment.h"
#include "rng/ledger.h"
#include "sim/runner.h"

namespace omx {
namespace {

using harness::Attack;

struct Run {
  std::unique_ptr<core::OptimalMachine> machine;
  sim::Metrics metrics;
  std::uint32_t t = 0;
  std::uint32_t n = 0;
};

Run run_optimal(std::uint32_t n, Attack attack, std::uint64_t seed) {
  Run out;
  out.n = n;
  out.t = core::Params::max_t_optimal(n);
  core::OptimalConfig mc;
  mc.t = out.t;
  auto inputs = harness::make_inputs(harness::InputPattern::Random, n, seed);
  out.machine = std::make_unique<core::OptimalMachine>(mc, inputs);

  rng::Ledger ledger(n, seed);
  std::unique_ptr<sim::Adversary<core::Msg>> adv;
  switch (attack) {
    case Attack::RandomOmission:
      adv = std::make_unique<adversary::RandomOmissionAdversary<core::Msg>>(
          n, out.t, 0.9, seed);
      break;
    case Attack::SplitBrain: {
      std::vector<sim::ProcessId> faulty;
      for (std::uint32_t i = 0; i < out.t; ++i) faulty.push_back(i * 5 % n);
      adv = std::make_unique<adversary::SplitBrainAdversary<core::Msg>>(
          n, std::move(faulty));
      break;
    }
    case Attack::GroupKiller: {
      groups::SqrtPartition part(n);
      std::vector<std::vector<sim::ProcessId>> gs;
      for (std::uint32_t g = 0; g < part.num_groups(); ++g) {
        gs.emplace_back(part.members(g).begin(), part.members(g).end());
      }
      adv = std::make_unique<adversary::GroupKillerAdversary<core::Msg>>(
          std::move(gs));
      break;
    }
    case Attack::CoinHiding:
      adv = std::make_unique<adversary::CoinHidingAdversary<core::Msg>>(
          out.machine.get(), &ledger);
      break;
    default:
      adv = std::make_unique<adversary::NullAdversary<core::Msg>>();
      break;
  }
  sim::Runner<core::Msg> runner(n, out.t, &ledger, adv.get());
  out.machine->set_fault_view(&runner.faults());
  out.metrics = runner.run(*out.machine).metrics;
  return out;
}

class LemmaProperties
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Attack,
                                                 std::uint64_t>> {};

TEST_P(LemmaProperties, OperativeCountNeverBelowNMinus3T) {
  const auto [n, attack, seed] = GetParam();
  const auto run = run_optimal(n, attack, seed);
  const auto& history = run.machine->core().operative_history();
  ASSERT_FALSE(history.empty());
  for (std::size_t e = 0; e < history.size(); ++e) {
    EXPECT_GE(history[e] + 3 * run.t, n)
        << "Lemma 7 violated in epoch " << e;
  }
  // Operative counts are monotone non-increasing (status is permanent).
  for (std::size_t e = 1; e < history.size(); ++e) {
    EXPECT_LE(history[e], history[e - 1]);
  }
}

TEST_P(LemmaProperties, EstimateDivergenceBoundedBy4T) {
  const auto [n, attack, seed] = GetParam();
  const auto run = run_optimal(n, attack, seed);
  const auto& core = run.machine->core();
  std::optional<std::pair<std::uint32_t, std::uint32_t>> reference;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (!core.operative(p)) continue;
    const auto est = core.last_estimate(p);
    if (!est) continue;
    if (!reference) {
      reference = est;
      continue;
    }
    const auto d1 = est->first > reference->first
                        ? est->first - reference->first
                        : reference->first - est->first;
    const auto d2 = est->second > reference->second
                        ? est->second - reference->second
                        : reference->second - est->second;
    EXPECT_LE(d1, 4 * run.t) << "ones estimates diverged beyond Lemma 8";
    EXPECT_LE(d2, 4 * run.t) << "zeros estimates diverged beyond Lemma 8";
  }
}

TEST_P(LemmaProperties, DecidedImpliesUnifiedOperativeValues) {
  const auto [n, attack, seed] = GetParam();
  const auto run = run_optimal(n, attack, seed);
  const auto& core = run.machine->core();
  bool any_decided = false;
  std::uint8_t decided_value = 0;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (core.operative(p) && core.decided_flag(p)) {
      any_decided = true;
      decided_value = core.value_of(p);
      break;
    }
  }
  if (!any_decided) GTEST_SKIP() << "no operative decider in this run";
  for (std::uint32_t p = 0; p < n; ++p) {
    if (core.operative(p)) {
      EXPECT_EQ(core.value_of(p), decided_value)
          << "Lemma 11 violated at process " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LemmaProperties,
    ::testing::Combine(::testing::Values(64u, 128u, 200u),
                       ::testing::Values(Attack::None, Attack::RandomOmission,
                                         Attack::SplitBrain,
                                         Attack::GroupKiller,
                                         Attack::CoinHiding),
                       ::testing::Values(1u, 2u)));

TEST(Determinism, SameSeedSameExecution) {
  harness::ExperimentConfig cfg;
  cfg.n = 100;
  cfg.t = core::Params::max_t_optimal(cfg.n);
  cfg.attack = Attack::RandomOmission;
  cfg.inputs = harness::InputPattern::Random;
  cfg.seed = 77;
  const auto a = harness::run_experiment(cfg);
  const auto b = harness::run_experiment(cfg);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.comm_bits, b.metrics.comm_bits);
  EXPECT_EQ(a.metrics.random_bits, b.metrics.random_bits);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.time_rounds, b.time_rounds);
}

TEST(Determinism, SeedChangesExecution) {
  harness::ExperimentConfig cfg;
  cfg.n = 100;
  cfg.t = core::Params::max_t_optimal(cfg.n);
  cfg.inputs = harness::InputPattern::Random;
  cfg.seed = 1;
  const auto a = harness::run_experiment(cfg);
  cfg.seed = 2;
  const auto b = harness::run_experiment(cfg);
  // Different inputs/coins: bit totals virtually never coincide exactly.
  EXPECT_NE(a.metrics.comm_bits, b.metrics.comm_bits);
}

TEST(RandomnessAccounting, MetricsMatchLedger) {
  const std::uint32_t n = 80;
  const std::uint32_t t = core::Params::max_t_optimal(n);
  core::OptimalConfig mc;
  mc.t = t;
  auto inputs = harness::make_inputs(harness::InputPattern::Random, n, 3);
  core::OptimalMachine machine(mc, inputs);
  rng::Ledger ledger(n, 3);
  adversary::NullAdversary<core::Msg> adv;
  sim::Runner<core::Msg> runner(n, t, &ledger, &adv);
  machine.set_fault_view(&runner.faults());
  const auto rr = runner.run(machine);
  EXPECT_EQ(rr.metrics.random_bits, ledger.bits());
  EXPECT_EQ(rr.metrics.random_calls, ledger.calls());
}

class ChaosFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosFuzz, SpecHoldsUnderRandomLegalAdversaries) {
  // The ChaosAdversary walks the space of legal strategies at random; the
  // probability-1 spec clauses must hold on every walk.
  const std::uint64_t seed = GetParam();
  for (auto algo : {harness::Algo::Optimal, harness::Algo::Param,
                    harness::Algo::FloodSet}) {
    harness::ExperimentConfig cfg;
    cfg.algo = algo;
    cfg.attack = harness::Attack::Chaos;
    cfg.n = 90;
    cfg.x = 3;
    cfg.t = algo == harness::Algo::Param
                ? core::Params::max_t_param(cfg.n)
                : core::Params::max_t_optimal(cfg.n);
    cfg.inputs = harness::InputPattern::Random;
    cfg.seed = seed;
    const auto r = harness::run_experiment(cfg);
    EXPECT_TRUE(r.agreement) << harness::to_string(algo) << " seed " << seed;
    EXPECT_TRUE(r.validity) << harness::to_string(algo) << " seed " << seed;
    EXPECT_TRUE(r.all_nonfaulty_decided)
        << harness::to_string(algo) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(BudgetedRandomness, DegradesDeterministicallyAndStaysCorrect) {
  for (std::uint64_t budget : {0ull, 16ull, 1000000ull}) {
    harness::ExperimentConfig cfg;
    cfg.n = 128;
    cfg.t = core::Params::max_t_optimal(cfg.n);
    cfg.attack = Attack::RandomOmission;
    cfg.inputs = harness::InputPattern::Random;
    cfg.random_bit_budget = budget;
    cfg.seed = 9;
    const auto r = harness::run_experiment(cfg);
    EXPECT_TRUE(r.ok()) << "budget=" << budget;
    EXPECT_LE(r.metrics.random_bits, budget);
  }
}

}  // namespace
}  // namespace omx
